package itemset

import "testing"

// FuzzFromKey checks that arbitrary byte strings never panic the key
// decoder, and that accepted keys round-trip.
func FuzzFromKey(f *testing.F) {
	f.Add("")
	f.Add(Key(New(1, 2, 3)))
	f.Add("abcd")
	f.Add(string([]byte{0, 0, 0, 2, 0, 0, 0, 1}))
	f.Fuzz(func(t *testing.T, k string) {
		s, err := FromKey(k)
		if err != nil {
			return
		}
		if Key(s) != k {
			t.Fatalf("accepted key %q does not round-trip", k)
		}
	})
}
