package itemset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCanonicalizes(t *testing.T) {
	s := New(5, 1, 3, 1, 5)
	want := Set{1, 3, 5}
	if !Equal(s, want) {
		t.Fatalf("New = %v, want %v", s, want)
	}
	if !IsCanonical(s) {
		t.Fatalf("New result not canonical: %v", s)
	}
}

func TestNewEmpty(t *testing.T) {
	if s := New(); len(s) != 0 {
		t.Fatalf("New() = %v, want empty", s)
	}
}

func TestCanonicalizeSingleton(t *testing.T) {
	s := Canonicalize(Set{7})
	if !Equal(s, Set{7}) {
		t.Fatalf("Canonicalize({7}) = %v", s)
	}
}

func TestIsCanonical(t *testing.T) {
	cases := []struct {
		s    Set
		want bool
	}{
		{nil, true},
		{Set{1}, true},
		{Set{1, 2, 3}, true},
		{Set{1, 1}, false},
		{Set{2, 1}, false},
	}
	for _, c := range cases {
		if got := IsCanonical(c.s); got != c.want {
			t.Errorf("IsCanonical(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(1, 2, 3)
	c := Clone(s)
	c[0] = 99
	if s[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if Clone(nil) != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Set
		want int
	}{
		{New(1), New(1, 2), -1},
		{New(1, 2), New(1), 1},
		{New(1, 2), New(1, 2), 0},
		{New(1, 2), New(1, 3), -1},
		{New(2, 3), New(1, 9), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	s := New(2, 4, 6)
	for _, x := range []Item{2, 4, 6} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false, want true", x)
		}
	}
	for _, x := range []Item{1, 3, 5, 7} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true, want false", x)
		}
	}
}

func TestSubset(t *testing.T) {
	cases := []struct {
		sub, sup Set
		want     bool
	}{
		{New(), New(1, 2), true},
		{New(1), New(1, 2), true},
		{New(2), New(1, 2), true},
		{New(1, 2), New(1, 2), true},
		{New(3), New(1, 2), false},
		{New(1, 3), New(1, 2), false},
		{New(1, 2, 3), New(1, 2), false},
	}
	for _, c := range cases {
		if got := Subset(c.sub, c.sup); got != c.want {
			t.Errorf("Subset(%v, %v) = %v, want %v", c.sub, c.sup, got, c.want)
		}
	}
}

func TestProperSubset(t *testing.T) {
	if ProperSubset(New(1, 2), New(1, 2)) {
		t.Error("set is a proper subset of itself")
	}
	if !ProperSubset(New(1), New(1, 2)) {
		t.Error("ProperSubset({1}, {1,2}) = false")
	}
}

func TestUnionIntersectDiff(t *testing.T) {
	a, b := New(1, 3, 5), New(2, 3, 6)
	if got := Union(a, b); !Equal(got, New(1, 2, 3, 5, 6)) {
		t.Errorf("Union = %v", got)
	}
	if got := Intersect(a, b); !Equal(got, New(3)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := Diff(a, b); !Equal(got, New(1, 5)) {
		t.Errorf("Diff = %v", got)
	}
	if got := Diff(b, a); !Equal(got, New(2, 6)) {
		t.Errorf("Diff = %v", got)
	}
}

func TestUnionWithEmpty(t *testing.T) {
	a := New(1, 2)
	if got := Union(a, nil); !Equal(got, a) {
		t.Errorf("Union(a, nil) = %v", got)
	}
	if got := Union(nil, a); !Equal(got, a) {
		t.Errorf("Union(nil, a) = %v", got)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	for _, s := range []Set{nil, New(0), New(1, 2, 3), New(1<<30, 1<<31+5)} {
		k := Key(s)
		got, err := FromKey(k)
		if err != nil {
			t.Fatalf("FromKey(Key(%v)): %v", s, err)
		}
		if !Equal(got, s) {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
}

func TestFromKeyErrors(t *testing.T) {
	if _, err := FromKey("abc"); err == nil {
		t.Error("FromKey on length-3 key should fail")
	}
	// Key of {2,1} cannot be built via Key, construct manually:
	bad := string([]byte{0, 0, 0, 2, 0, 0, 0, 1})
	if _, err := FromKey(bad); err == nil {
		t.Error("FromKey on non-canonical payload should fail")
	}
}

func TestKeyDistinct(t *testing.T) {
	seen := map[string]Set{}
	sets := []Set{New(1), New(2), New(1, 2), New(1, 2, 3), New(258), New(1, 258)}
	for _, s := range sets {
		k := Key(s)
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision between %v and %v", prev, s)
		}
		seen[k] = s
	}
}

func TestString(t *testing.T) {
	if got := New(3, 1).String(); got != "{1 3}" {
		t.Errorf("String = %q", got)
	}
	if got := New().String(); got != "{}" {
		t.Errorf("String(empty) = %q", got)
	}
}

func TestProperNonEmptySubsets(t *testing.T) {
	s := New(1, 2, 3)
	var got []Set
	if err := ProperNonEmptySubsets(s, func(sub Set) {
		got = append(got, Clone(sub))
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 { // 2^3 - 2
		t.Fatalf("got %d subsets, want 6: %v", len(got), got)
	}
	for _, sub := range got {
		if !ProperSubset(sub, s) {
			t.Errorf("%v is not a proper subset of %v", sub, s)
		}
		if !IsCanonical(sub) {
			t.Errorf("%v not canonical", sub)
		}
	}
}

func TestProperNonEmptySubsetsSmall(t *testing.T) {
	for _, s := range []Set{nil, New(1)} {
		n := 0
		if err := ProperNonEmptySubsets(s, func(Set) { n++ }); err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Errorf("%v: got %d subsets, want 0", s, n)
		}
	}
}

func TestProperNonEmptySubsetsTooLarge(t *testing.T) {
	s := make(Set, 21)
	for i := range s {
		s[i] = Item(i)
	}
	if err := ProperNonEmptySubsets(s, func(Set) {}); err == nil {
		t.Error("expected error for 21-item set")
	}
}

// randomSet draws a small random canonical set for property tests.
func randomSet(r *rand.Rand) Set {
	n := r.Intn(8)
	s := make(Set, n)
	for i := range s {
		s[i] = Item(r.Intn(30))
	}
	return Canonicalize(s)
}

func TestPropertyUnionCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randomSet(r), randomSet(r)
		return Equal(Union(a, b), Union(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyIntersectSubset(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randomSet(r), randomSet(r)
		i := Intersect(a, b)
		return Subset(i, a) && Subset(i, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDiffDisjointAndPartition(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randomSet(r), randomSet(r)
		d := Diff(a, b)
		i := Intersect(a, b)
		// d and b are disjoint; d ∪ i == a.
		return len(Intersect(d, b)) == 0 && Equal(Union(d, i), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeMorgan(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	u := New(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29)
	f := func() bool {
		a, b := randomSet(r), randomSet(r)
		// U \ (a ∪ b) == (U \ a) ∩ (U \ b)
		left := Diff(u, Union(a, b))
		right := Intersect(Diff(u, a), Diff(u, b))
		return Equal(left, right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyKeyInjective(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		a, b := randomSet(r), randomSet(r)
		return (Key(a) == Key(b)) == Equal(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSubset(b *testing.B) {
	sup := make(Set, 100)
	for i := range sup {
		sup[i] = Item(i * 3)
	}
	sub := New(3, 30, 150, 297)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Subset(sub, sup) {
			b.Fatal("unexpected")
		}
	}
}

func BenchmarkKey(b *testing.B) {
	s := make(Set, 20)
	for i := range s {
		s[i] = Item(i * 7)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Key(s)
	}
}
