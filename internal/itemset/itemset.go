// Package itemset provides the itemset algebra underlying temporal
// association rule mining: sorted, duplicate-free sets of item identifiers
// with the usual set operations, canonical map keys, and subset enumeration.
//
// An itemset is represented as a strictly increasing slice of Item values.
// All functions in this package require their inputs to be in canonical form
// (use New or Canonicalize to obtain one) and preserve canonical form in
// their outputs.
package itemset

import (
	"fmt"
	"sort"
	"strings"
)

// Item is a dictionary-encoded item identifier (see package txdb for the
// dictionary mapping identifiers to external names).
type Item = uint32

// Set is a canonical itemset: strictly increasing, duplicate-free items.
type Set []Item

// New builds a canonical Set from the given items. The input may be in any
// order and may contain duplicates; it is not modified.
func New(items ...Item) Set {
	s := make(Set, len(items))
	copy(s, items)
	return Canonicalize(s)
}

// Canonicalize sorts s in place, removes duplicates and returns the
// canonical prefix. The returned slice aliases s.
func Canonicalize(s Set) Set {
	if len(s) < 2 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// IsCanonical reports whether s is strictly increasing.
func IsCanonical(s Set) bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// Clone returns a copy of s that shares no storage with it.
func Clone(s Set) Set {
	if s == nil {
		return nil
	}
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Equal reports whether a and b contain exactly the same items.
func Equal(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Compare orders itemsets first by length, then lexicographically by item.
// It returns -1, 0 or +1. The length-first order matches the level-wise
// organization used by the miners.
func Compare(a, b Set) int {
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Contains reports whether s contains item x.
func (s Set) Contains(x Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// Subset reports whether every item of sub occurs in sup. Both must be
// canonical; the check is a linear merge.
func Subset(sub, sup Set) bool {
	if len(sub) > len(sup) {
		return false
	}
	j := 0
	for _, x := range sub {
		for j < len(sup) && sup[j] < x {
			j++
		}
		if j == len(sup) || sup[j] != x {
			return false
		}
		j++
	}
	return true
}

// ProperSubset reports whether sub ⊂ sup (subset and not equal).
func ProperSubset(sub, sup Set) bool {
	return len(sub) < len(sup) && Subset(sub, sup)
}

// Union returns the canonical union of a and b in fresh storage.
func Union(a, b Set) Set {
	out := make(Set, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Intersect returns the canonical intersection of a and b in fresh storage.
func Intersect(a, b Set) Set {
	out := make(Set, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Diff returns a \ b in fresh storage.
func Diff(a, b Set) Set {
	out := make(Set, 0, len(a))
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// Key returns a canonical string key for s, usable as a map key. The
// encoding is 4 bytes big-endian per item, so keys of equal sets compare
// equal and unequal sets produce distinct keys.
func Key(s Set) string {
	if len(s) == 0 {
		return ""
	}
	b := make([]byte, 4*len(s))
	for i, x := range s {
		b[4*i] = byte(x >> 24)
		b[4*i+1] = byte(x >> 16)
		b[4*i+2] = byte(x >> 8)
		b[4*i+3] = byte(x)
	}
	return string(b)
}

// AppendKey appends the Key encoding of x to b and returns the extended
// buffer. Hot loops maintain an incremental key alongside a growing set —
// append 4 bytes per item, truncate 4 on backtrack — and look maps up with
// m[string(b)], which the compiler keeps allocation-free.
func AppendKey(b []byte, x Item) []byte {
	return append(b, byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
}

// FromKey decodes a key produced by Key back into a Set.
func FromKey(k string) (Set, error) {
	if len(k)%4 != 0 {
		return nil, fmt.Errorf("itemset: malformed key of length %d", len(k))
	}
	s := make(Set, len(k)/4)
	for i := range s {
		s[i] = uint32(k[4*i])<<24 | uint32(k[4*i+1])<<16 | uint32(k[4*i+2])<<8 | uint32(k[4*i+3])
	}
	if !IsCanonical(s) {
		return nil, fmt.Errorf("itemset: key decodes to non-canonical set %v", s)
	}
	return s, nil
}

// String renders s as "{1 2 3}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte('}')
	return b.String()
}

// ProperNonEmptySubsets invokes fn for every proper, non-empty subset of s,
// reusing a scratch buffer between invocations; fn must not retain its
// argument (clone it if needed). Sets with more than 20 items are rejected
// to keep enumeration bounded.
func ProperNonEmptySubsets(s Set, fn func(Set)) error {
	n := len(s)
	if n > 20 {
		return fmt.Errorf("itemset: refusing to enumerate 2^%d subsets", n)
	}
	if n < 2 {
		return nil // no proper non-empty subsets beyond the empty/self cases
	}
	buf := make(Set, 0, n)
	for mask := uint32(1); mask < uint32(1)<<n-1; mask++ {
		buf = buf[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				buf = append(buf, s[i])
			}
		}
		fn(buf)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
