package tara

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"tara/internal/archive"
	"tara/internal/eps"
	"tara/internal/mining"
	"tara/internal/obs"
	"tara/internal/rules"
	"tara/internal/txdb"
)

// Knowledge-base serialization. The archive payload is stored verbatim (its
// in-memory encoding is already compact); the EPS index is *not* stored — it
// is derivable from the archive and is rebuilt on load, which keeps the
// format small and forward-compatible with index-layout changes.
//
// Format (uvarints unless noted):
//
//	magic "TARAKB1\n"
//	config: genSupp (float64 bits, fixed 8 bytes), genConf (same),
//	        maxLen, contentIndex (0/1), miner name (len-prefixed)
//	items:  count, then len-prefixed names in id order
//	rules:  count, then len-prefixed rule keys in id order
//	windows: count, then per window zigzag(start), zigzag(end), N
//	archive: the archive.WriteTo stream

const kbMagic = "TARAKB1\n"

// Save serializes the framework's knowledge base in the legacy TARAKB1
// stream format (see SaveMapped for the mapped container). The snapshot is
// encoded under the read lock — so a save taken while appends are in flight
// is a consistent whole-window state — and written to w after the lock is
// released, so a slow destination (disk, network) never blocks appends.
func (f *Framework) Save(w io.Writer) error {
	var buf bytes.Buffer
	if err := f.encodeLegacy(&buf); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// encodeLegacy writes the legacy stream into buf under the read lock.
func (f *Framework) encodeLegacy(buf *bytes.Buffer) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	bw := bufio.NewWriter(buf)
	var tmp [binary.MaxVarintLen64]byte
	writeUvarint := func(u uint64) error {
		n := binary.PutUvarint(tmp[:], u)
		_, err := bw.Write(tmp[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	writeFloat := func(v float64) error {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
		_, err := bw.Write(b[:])
		return err
	}

	if _, err := bw.WriteString(kbMagic); err != nil {
		return err
	}
	if err := writeFloat(f.cfg.GenMinSupport); err != nil {
		return err
	}
	if err := writeFloat(f.cfg.GenMinConf); err != nil {
		return err
	}
	if err := writeUvarint(uint64(f.cfg.MaxItemsetLen)); err != nil {
		return err
	}
	ci := uint64(0)
	if f.cfg.ContentIndex {
		ci = 1
	}
	if err := writeUvarint(ci); err != nil {
		return err
	}
	if err := writeString(f.cfg.miner().Name()); err != nil {
		return err
	}

	if err := writeUvarint(uint64(f.itemDict.Len())); err != nil {
		return err
	}
	for i := 0; i < f.itemDict.Len(); i++ {
		if err := writeString(f.itemDict.Name(txdb.Item(i))); err != nil {
			return err
		}
	}

	if err := writeUvarint(uint64(f.ruleDict.Len())); err != nil {
		return err
	}
	for i := 0; i < f.ruleDict.Len(); i++ {
		r, _ := f.ruleDict.Rule(rules.ID(i))
		if err := writeString(r.Key()); err != nil {
			return err
		}
	}

	if err := writeUvarint(uint64(len(f.windows))); err != nil {
		return err
	}
	for _, wi := range f.windows {
		if err := writeUvarint(zigzag64(wi.Period.Start)); err != nil {
			return err
		}
		if err := writeUvarint(zigzag64(wi.Period.End)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(wi.N)); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if _, err := f.arch.WriteTo(buf); err != nil {
		return err
	}
	return nil
}

// Load reconstructs a framework from a stream produced by Save. The EPS
// index is rebuilt from the archive. Mapped-container (TARAKB2) streams are
// detected and routed to the container reader: the bytes are read fully into
// memory, so such a framework reports load mode "bytes" — use Open to map
// the file instead of copying it.
func Load(r io.Reader) (*Framework, error) {
	br := bufio.NewReader(r)
	if sniffMapped(br) {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("tara: reading container: %w", err)
		}
		return OpenBytes(data)
	}
	magic := make([]byte, len(kbMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("tara: reading magic: %w", err)
	}
	if string(magic) != kbMagic {
		return nil, fmt.Errorf("tara: bad knowledge-base magic %q", magic)
	}
	readUvarint := func(what string) (uint64, error) {
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("tara: reading %s: %w", what, err)
		}
		return u, nil
	}
	readString := func(what string) (string, error) {
		l, err := readUvarint(what + " length")
		if err != nil {
			return "", err
		}
		if l > 1<<24 {
			return "", fmt.Errorf("tara: implausible %s length %d", what, l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", fmt.Errorf("tara: reading %s: %w", what, err)
		}
		return string(b), nil
	}
	readFloat := func(what string) (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, fmt.Errorf("tara: reading %s: %w", what, err)
		}
		return math.Float64frombits(binary.BigEndian.Uint64(b[:])), nil
	}

	var cfg Config
	var err error
	if cfg.GenMinSupport, err = readFloat("genSupp"); err != nil {
		return nil, err
	}
	if cfg.GenMinConf, err = readFloat("genConf"); err != nil {
		return nil, err
	}
	maxLen, err := readUvarint("maxLen")
	if err != nil {
		return nil, err
	}
	cfg.MaxItemsetLen = int(maxLen)
	ci, err := readUvarint("contentIndex")
	if err != nil {
		return nil, err
	}
	cfg.ContentIndex = ci == 1
	minerName, err := readString("miner name")
	if err != nil {
		return nil, err
	}
	cfg.Miner, err = mining.ByName(minerName)
	if err != nil {
		return nil, err
	}

	itemCount, err := readUvarint("item count")
	if err != nil {
		return nil, err
	}
	itemDict := txdb.NewDict()
	for i := uint64(0); i < itemCount; i++ {
		name, err := readString("item name")
		if err != nil {
			return nil, err
		}
		itemDict.Add(name)
	}

	ruleCount, err := readUvarint("rule count")
	if err != nil {
		return nil, err
	}
	ruleDict := rules.NewDict()
	for i := uint64(0); i < ruleCount; i++ {
		key, err := readString("rule key")
		if err != nil {
			return nil, err
		}
		rl, err := rules.FromKey(key)
		if err != nil {
			return nil, fmt.Errorf("tara: rule %d: %w", i, err)
		}
		if got := ruleDict.Add(rl); got != rules.ID(i) {
			return nil, fmt.Errorf("tara: rule %d interned as %d (duplicate key?)", i, got)
		}
	}

	windowCount, err := readUvarint("window count")
	if err != nil {
		return nil, err
	}
	if windowCount > 1<<24 {
		return nil, fmt.Errorf("tara: implausible window count %d", windowCount)
	}
	windows := make([]WindowInfo, windowCount)
	for i := range windows {
		s, err := readUvarint("window start")
		if err != nil {
			return nil, err
		}
		e, err := readUvarint("window end")
		if err != nil {
			return nil, err
		}
		n, err := readUvarint("window N")
		if err != nil {
			return nil, err
		}
		if n > math.MaxUint32 {
			return nil, fmt.Errorf("tara: window %d cardinality %d exceeds uint32", i, n)
		}
		windows[i] = WindowInfo{
			Index:  i,
			Period: txdb.Period{Start: unzigzag64(s), End: unzigzag64(e)},
			N:      uint32(n),
		}
	}

	arch, err := archive.ReadArchive(br)
	if err != nil {
		return nil, err
	}
	if arch.Windows() != len(windows) {
		return nil, fmt.Errorf("tara: archive has %d windows, metadata %d", arch.Windows(), len(windows))
	}

	f := &Framework{
		cfg:      cfg,
		itemDict: itemDict,
		ruleDict: ruleDict,
		arch:     arch,
		index:    eps.NewIndex(),
		windows:  windows,
		buildCtr: obs.NewCounterSet(buildCounterNames...),
	}
	if cfg.QueryCacheSize >= 0 {
		f.qcache = newQueryCache(cfg.QueryCacheSize)
	}
	if err := f.rebuildIndex(); err != nil {
		return nil, err
	}
	f.genCtr.Store(uint64(len(windows)))
	return f, nil
}

// rebuildIndex reconstructs the EPS index from the archive: each window's
// slice is built from the rules recorded for that window.
func (f *Framework) rebuildIndex() error {
	perWindow := make([][]eps.IDStats, len(f.windows))
	for _, id := range f.arch.Rules() {
		for _, e := range f.arch.Series(id) {
			if e.Window < 0 || e.Window >= len(f.windows) {
				return fmt.Errorf("tara: archived window %d out of range", e.Window)
			}
			perWindow[e.Window] = append(perWindow[e.Window], eps.IDStats{
				ID: id,
				Stats: rules.Stats{
					CountXY: e.CountXY, CountX: e.CountX, CountY: e.CountY,
					N: f.windows[e.Window].N,
				},
			})
		}
	}
	for w, ids := range perWindow {
		slice, err := eps.BuildSlice(w, f.windows[w].N, ids, eps.Options{
			ContentIndex: f.cfg.ContentIndex,
			Dict:         f.ruleDict,
		})
		if err != nil {
			return fmt.Errorf("tara: rebuilding window %d: %w", w, err)
		}
		if err := f.index.Append(slice); err != nil {
			return err
		}
	}
	return nil
}

func zigzag64(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag64(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
