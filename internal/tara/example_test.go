package tara_test

import (
	"fmt"
	"log"

	"tara/internal/tara"
	"tara/internal/txdb"
)

// exampleDB is a tiny two-day retail log with one habit that persists
// (milk+bread) and one that appears on day two (beer+chips).
func exampleDB() *txdb.DB {
	db := txdb.NewDB()
	day1 := [][]string{
		{"milk", "bread"}, {"milk", "bread"}, {"milk", "bread"},
		{"tea"}, {"milk", "bread"}, {"tea"},
	}
	for i, tx := range day1 {
		db.Add(int64(i), tx...)
	}
	day2 := [][]string{
		{"beer", "chips"}, {"milk", "bread"}, {"beer", "chips"},
		{"beer", "chips"}, {"milk", "bread"}, {"tea"},
	}
	for i, tx := range day2 {
		db.Add(int64(10+i), tx...)
	}
	return db
}

func ExampleBuild() {
	fw, err := tara.Build(exampleDB(), 10, 0, tara.Config{
		GenMinSupport: 0.1,
		GenMinConf:    0.1,
		MaxItemsetLen: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("windows:", fw.Windows())
	views, err := fw.Mine(1, 0.4, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range views {
		fmt.Printf("%s supp=%.2f conf=%.2f\n", v.Rule.Format(fw.ItemDict()), v.Support(), v.Confidence())
	}
	// Output:
	// windows: 2
	// [beer] => [chips] supp=0.50 conf=1.00
	// [chips] => [beer] supp=0.50 conf=1.00
}

func ExampleFramework_Recommend() {
	fw, err := tara.Build(exampleDB(), 10, 0, tara.Config{
		GenMinSupport: 0.1,
		GenMinConf:    0.1,
		MaxItemsetLen: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	region, err := fw.Recommend(1, 0.4, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	// Within this box, any (minsupp, minconf) returns the same two rules.
	fmt.Printf("stable for supp in (%.4g, %.4g], conf in (%.4g, %.4g], %d rules\n",
		region.LowSupp, region.HighSupp, region.LowConf, region.HighConf, region.NumRules)
	// Output:
	// stable for supp in (0.3333, 0.5], conf in (0, 1], 2 rules
}

func ExampleFramework_DrillDown() {
	fw, err := tara.Build(exampleDB(), 10, 0, tara.Config{
		GenMinSupport: 0.1,
		GenMinConf:    0.1,
		MaxItemsetLen: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	views, err := fw.Mine(0, 0.5, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := fw.DrillDown(views[0].ID, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(views[0].Rule.Format(fw.ItemDict()))
	for _, row := range rows {
		fmt.Printf("window %d: supp=%.2f\n", row.Window, row.Stats.Support())
	}
	// Output:
	// [milk] => [bread]
	// window 0: supp=0.67
	// window 1: supp=0.33
}
