package tara

import (
	"fmt"
	"sort"

	"tara/internal/rules"
)

// Periodicity exploration: the introduction motivates finding "the most
// significant rules that occur every weekend". With the archive holding
// every rule's per-window presence, cyclic behaviour reduces to folding the
// presence vector modulo a candidate period and looking for a phase that
// concentrates the qualifications.

// PeriodicSummary describes one rule's cyclic qualification pattern.
type PeriodicSummary struct {
	ID   rules.ID
	Rule rules.Rule
	// Period is the cycle length in windows the summary was computed for.
	Period int
	// BestPhase is the offset (0..Period-1) with the highest presence rate.
	BestPhase int
	// PhasePresence[p] is the fraction of windows at phase p in which the
	// rule qualified.
	PhasePresence []float64
	// Score is the periodicity strength: presence at the best phase minus
	// the mean presence at all other phases. 1 means the rule qualifies at
	// exactly one phase of every cycle and never elsewhere.
	Score float64
}

// FindPeriodic ranks rules by how periodically they qualify under
// (minSupp, minConf) across windows [from, to], folding at the given period
// (e.g. period 7 over daily windows finds weekly rules). Rules must qualify
// at least twice to be considered. Top k summaries are returned (all if
// k <= 0).
func (f *Framework) FindPeriodic(from, to int, minSupp, minConf float64, period int, k int) ([]PeriodicSummary, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return nil, err
	}
	if from < 0 || to >= len(f.windows) || from > to {
		return nil, fmt.Errorf("tara: periodic range [%d,%d] out of bounds (have %d windows)", from, to, len(f.windows))
	}
	nWindows := to - from + 1
	if period < 2 || period > nWindows {
		return nil, fmt.Errorf("tara: period %d outside [2,%d]", period, nWindows)
	}

	// Candidate rules and their qualification vectors.
	type presence struct {
		vec   []bool
		total int
	}
	cand := map[rules.ID]*presence{}
	for w := from; w <= to; w++ {
		slice, err := f.index.Slice(w)
		if err != nil {
			return nil, err
		}
		for _, id := range slice.Rules(minSupp, minConf) {
			p := cand[id]
			if p == nil {
				p = &presence{vec: make([]bool, nWindows)}
				cand[id] = p
			}
			p.vec[w-from] = true
			p.total++
		}
	}

	out := make([]PeriodicSummary, 0, len(cand))
	for id, p := range cand {
		if p.total < 2 {
			continue
		}
		phases := make([]float64, period)
		counts := make([]int, period)
		for i, present := range p.vec {
			ph := i % period
			counts[ph]++
			if present {
				phases[ph]++
			}
		}
		best, bestRate := 0, -1.0
		var sum float64
		for ph := range phases {
			if counts[ph] > 0 {
				phases[ph] /= float64(counts[ph])
			}
			sum += phases[ph]
			if phases[ph] > bestRate {
				best, bestRate = ph, phases[ph]
			}
		}
		others := (sum - bestRate) / float64(period-1)
		r, _ := f.ruleDict.Rule(id)
		out = append(out, PeriodicSummary{
			ID:            id,
			Rule:          r,
			Period:        period,
			BestPhase:     best,
			PhasePresence: phases,
			Score:         bestRate - others,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}
