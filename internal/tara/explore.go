package tara

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"tara/internal/archive"
	"tara/internal/eps"
	"tara/internal/itemset"
	"tara/internal/obs"
	"tara/internal/rules"
	"tara/internal/txdb"
)

// This file is the TARA Online Explorer: the query classes of Section 2.5
// answered purely from the knowledge base.
//
//	Q1  Mine + RuleTrajectories — rules for a setting in one window, with
//	    their parameter values examined across other windows.
//	Q2  Compare — evolving ruleset comparison between two settings.
//	Q3  Recommend — the time-aware stable region of a setting (TARA-R).
//	Q4  MineRollUp / DrillDown — coarser/finer time granularity.
//	Q5  RulesAbout — content-based exploration (TARA-S).

// RuleView is one rule materialized for query output.
type RuleView struct {
	ID    rules.ID
	Rule  rules.Rule
	Stats rules.Stats
}

// Support, Confidence and Lift are re-exported from Stats for convenience.
func (v RuleView) Support() float64    { return v.Stats.Support() }
func (v RuleView) Confidence() float64 { return v.Stats.Confidence() }
func (v RuleView) Lift() float64       { return v.Stats.Lift() }

// view materializes a rule id in window w using archived stats.
func (f *Framework) view(id rules.ID, w int) (RuleView, error) {
	r, ok := f.ruleDict.Rule(id)
	if !ok {
		return RuleView{}, fmt.Errorf("tara: unknown rule id %d", id)
	}
	st, ok := f.arch.StatsAt(id, w)
	if !ok {
		return RuleView{}, fmt.Errorf("tara: rule %d has no record in window %d", id, w)
	}
	return RuleView{ID: id, Rule: r, Stats: st}, nil
}

// Mine returns the rules satisfying (minSupp, minConf) in window w — the
// traditional temporal mining request, answered by quadrant collection over
// the window's parameter-space slice. The returned slice may be shared with
// the query cache and other callers: treat it as read-only. Callers that
// need a mutable answer use MineAppend with their own buffer.
func (f *Framework) Mine(w int, minSupp, minConf float64) ([]RuleView, error) {
	return f.MineTraced(nil, w, minSupp, minConf)
}

// MineAppend appends the Mine answer for (w, minSupp, minConf) to dst and
// returns the extended slice — the materialize-into variant for callers that
// pool their own buffers: a warm hit copies views from the shared cached
// answer into dst and allocates nothing when dst has capacity.
func (f *Framework) MineAppend(dst []RuleView, w int, minSupp, minConf float64) ([]RuleView, error) {
	return f.MineAppendTraced(nil, dst, w, minSupp, minConf)
}

// MineAppendTraced is MineAppend with per-stage span recording on tr.
func (f *Framework) MineAppendTraced(tr *obs.Trace, dst []RuleView, w int, minSupp, minConf float64) ([]RuleView, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	views, err := f.mineLocked(tr, w, minSupp, minConf)
	if err != nil {
		return dst, err
	}
	sp := tr.Start(obs.StageMaterialize)
	dst = append(dst, views...)
	sp.End()
	return dst, nil
}

// MineTraced is Mine with per-stage span recording on tr (nil disables
// tracing at the cost of a pointer check — the untraced path stays hot).
func (f *Framework) MineTraced(tr *obs.Trace, w int, minSupp, minConf float64) ([]RuleView, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.mineLocked(tr, w, minSupp, minConf)
}

// mineLocked is Mine's implementation; callers hold f.mu. The answer is
// served from the query cache when the request's stable region has been
// collected before (Lemma 4 makes the canonical cut a lossless key). The
// returned slice is the cached value itself — shared, immutable, and safe
// for concurrent readers; callers must treat it as read-only and copy (or
// use MineAppend) before mutating. Serving the shared slice is what makes a
// warm hit allocation-free.
func (f *Framework) mineLocked(tr *obs.Trace, w int, minSupp, minConf float64) ([]RuleView, error) {
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return nil, err
	}
	slice, err := f.index.Slice(w)
	if err != nil {
		return nil, err
	}
	if f.qcache == nil {
		return f.collectViews(tr, slice, w, minSupp, minConf)
	}
	sp := tr.Start(obs.StageCut)
	si, ci := slice.CutIndex(minSupp, minConf)
	sp.End()
	k := cacheKey{window: int32(w), class: classMine, a: cutKey(si, ci)}
	sp = tr.Start(obs.StageCacheProbe)
	v, ok := f.qcache.get(k)
	sp.End()
	if ok {
		return v.([]RuleView), nil
	}
	views, err := f.collectViews(tr, slice, w, minSupp, minConf)
	if err != nil {
		return nil, err
	}
	sp = tr.Start(obs.StageCacheProbe)
	f.qcache.put(k, views)
	sp.End()
	return views, nil
}

// idBufPool recycles the rule-id scratch buffers of the cold mine path: the
// ids live only between EPS collection and view materialization, so pooling
// them removes the one per-miss allocation whose size tracks the answer.
var idBufPool = sync.Pool{New: func() any { b := make([]rules.ID, 0, 1024); return &b }}

// collectViews runs the uncached mine pipeline: EPS quadrant collection into
// a pooled id buffer, then view materialization. The returned views are
// freshly allocated (they may be cached and shared afterwards).
func (f *Framework) collectViews(tr *obs.Trace, slice *eps.Slice, w int, minSupp, minConf float64) ([]RuleView, error) {
	bufp := idBufPool.Get().(*[]rules.ID)
	sp := tr.Start(obs.StageEPSLookup)
	ids := slice.AppendRules((*bufp)[:0], minSupp, minConf)
	sp.End()
	sp = tr.Start(obs.StageMaterialize)
	views, err := f.materializeViews(ids, w)
	sp.End()
	*bufp = ids[:0]
	idBufPool.Put(bufp)
	return views, err
}

// materializeViews resolves an id list against the archive for window w.
func (f *Framework) materializeViews(ids []rules.ID, w int) ([]RuleView, error) {
	out := make([]RuleView, len(ids))
	var err error
	for i, id := range ids {
		out[i], err = f.view(id, w)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Count returns the number of rules satisfying (minSupp, minConf) in window
// w without materializing them — the cheapest online probe, served from the
// cache's canonical cut when warm.
func (f *Framework) Count(w int, minSupp, minConf float64) (int, error) {
	return f.CountTraced(nil, w, minSupp, minConf)
}

// CountTraced is Count with per-stage span recording on tr (nil disables).
func (f *Framework) CountTraced(tr *obs.Trace, w int, minSupp, minConf float64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return 0, err
	}
	slice, err := f.index.Slice(w)
	if err != nil {
		return 0, err
	}
	if tr == nil {
		// Untraced fast path: Count is ~65ns warm, so even inlined inert
		// spans are a measurable tax here. One branch instead of four.
		if f.qcache == nil {
			return slice.Count(minSupp, minConf), nil
		}
		si, ci := slice.CutIndex(minSupp, minConf)
		k := cacheKey{window: int32(w), class: classCount, a: cutKey(si, ci)}
		if v, ok := f.qcache.get(k); ok {
			return v.(int), nil
		}
		n := slice.Count(minSupp, minConf)
		f.qcache.put(k, n)
		return n, nil
	}
	if f.qcache == nil {
		sp := tr.Start(obs.StageEPSLookup)
		n := slice.Count(minSupp, minConf)
		sp.End()
		return n, nil
	}
	sp := tr.Start(obs.StageCut)
	si, ci := slice.CutIndex(minSupp, minConf)
	sp.End()
	k := cacheKey{window: int32(w), class: classCount, a: cutKey(si, ci)}
	sp = tr.Start(obs.StageCacheProbe)
	v, ok := f.qcache.get(k)
	sp.End()
	if ok {
		return v.(int), nil
	}
	sp = tr.Start(obs.StageEPSLookup)
	n := slice.Count(minSupp, minConf)
	sp.End()
	sp = tr.Start(obs.StageCacheProbe)
	f.qcache.put(k, n)
	sp.End()
	return n, nil
}

// MineFiltered is Mine with additional interestingness thresholds beyond
// the two EPS dimensions — the "other measures can be plugged in" direction
// of Section 2.2.2. minLift filters on Formula 3 (values <= 0 disable it).
// The lift filter is a post-pass over the answer set: it is not an index
// dimension, so its cost is linear in the (support, confidence) answer.
func (f *Framework) MineFiltered(w int, minSupp, minConf, minLift float64) ([]RuleView, error) {
	return f.MineFilteredTraced(nil, w, minSupp, minConf, minLift)
}

// MineFilteredTraced is MineFiltered with per-stage span recording on tr.
// The lift post-pass counts toward the materialize stage.
func (f *Framework) MineFilteredTraced(tr *obs.Trace, w int, minSupp, minConf, minLift float64) ([]RuleView, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	views, err := f.mineLocked(tr, w, minSupp, minConf)
	if err != nil {
		return nil, err
	}
	if minLift <= 0 {
		return views, nil
	}
	// The unfiltered answer may be the shared cached slice, so the lift
	// post-pass filters into a fresh slice instead of compacting in place.
	sp := tr.Start(obs.StageMaterialize)
	out := make([]RuleView, 0, len(views))
	for _, v := range views {
		if v.Lift() >= minLift {
			out = append(out, v)
		}
	}
	sp.End()
	return out, nil
}

// MineMerged is the TARA-S variant of Mine: qualifying rules are collected
// by merging the per-region content indexes, the collection path the paper's
// TARA-S curves measure. It requires ContentIndex.
func (f *Framework) MineMerged(w int, minSupp, minConf float64) ([]RuleView, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return nil, err
	}
	slice, err := f.index.Slice(w)
	if err != nil {
		return nil, err
	}
	ids, err := slice.RulesMerged(minSupp, minConf)
	if err != nil {
		return nil, err
	}
	out := make([]RuleView, len(ids))
	for i, id := range ids {
		out[i], err = f.view(id, w)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// checkGenThresholds rejects requests below the pregeneration thresholds,
// which the knowledge base cannot answer ("time availability" of the
// parameter dimension mirrors Definition 8's of the time dimension).
func (f *Framework) checkGenThresholds(minSupp, minConf float64) error {
	if minSupp < f.cfg.GenMinSupport {
		return fmt.Errorf("tara: minsupp %g below generation threshold %g", minSupp, f.cfg.GenMinSupport)
	}
	if minConf < f.cfg.GenMinConf {
		return fmt.Errorf("tara: minconf %g below generation threshold %g", minConf, f.cfg.GenMinConf)
	}
	return nil
}

// RuleTrajectory is one Q1 answer row: a rule qualifying in the query
// window together with its archived statistics in every examined window
// (Present[i] false where the rule was not pregenerated).
type RuleTrajectory struct {
	ID      rules.ID
	Rule    rules.Rule
	Windows []int
	Stats   []rules.Stats
	Present []bool
}

// RuleTrajectories answers Q1: find rules satisfying the setting in window
// w, then examine their parameter values in the other specified windows.
func (f *Framework) RuleTrajectories(w int, minSupp, minConf float64, others []int) ([]RuleTrajectory, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return nil, err
	}
	slice, err := f.index.Slice(w)
	if err != nil {
		return nil, err
	}
	for _, o := range others {
		if o < 0 || o >= len(f.windows) {
			return nil, fmt.Errorf("tara: trajectory window %d out of range", o)
		}
	}
	ids := slice.Rules(minSupp, minConf)
	out := make([]RuleTrajectory, 0, len(ids))
	for _, id := range ids {
		r, ok := f.ruleDict.Rule(id)
		if !ok {
			return nil, fmt.Errorf("tara: unknown rule id %d", id)
		}
		tr := RuleTrajectory{
			ID:      id,
			Rule:    r,
			Windows: others,
			Stats:   make([]rules.Stats, len(others)),
			Present: make([]bool, len(others)),
		}
		// One decode pass per rule over the examined windows, served as a
		// view off the payload bytes (mapped KBs stay mapped) — not a
		// StatsAt probe per window, which re-decodes the series each time.
		f.arch.StatsIn(id, others, tr.Stats, tr.Present)
		out = append(out, tr)
	}
	return out, nil
}

// WindowDiff is the per-window outcome of a Q2 comparison.
type WindowDiff struct {
	Window int
	OnlyA  []rules.ID
	OnlyB  []rules.ID
}

// Compare answers Q2 in exact-match mode: for every requested window, the
// rules satisfying setting A but not B and vice versa.
func (f *Framework) Compare(windows []int, suppA, confA, suppB, confB float64) ([]WindowDiff, error) {
	return f.CompareTraced(nil, windows, suppA, confA, suppB, confB)
}

// CompareTraced is Compare with per-stage span recording on tr; spans
// accumulate across the requested windows.
func (f *Framework) CompareTraced(tr *obs.Trace, windows []int, suppA, confA, suppB, confB float64) ([]WindowDiff, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(suppA, confA); err != nil {
		return nil, err
	}
	if err := f.checkGenThresholds(suppB, confB); err != nil {
		return nil, err
	}
	out := make([]WindowDiff, 0, len(windows))
	for _, w := range windows {
		a, b, err := f.diffLocked(tr, w, suppA, confA, suppB, confB)
		if err != nil {
			return nil, err
		}
		out = append(out, WindowDiff{Window: w, OnlyA: a, OnlyB: b})
	}
	return out, nil
}

// diffLocked computes one window of a Q2 comparison, cached under the two
// settings' canonical cuts; callers hold f.mu. Like mineLocked, the returned
// id lists may be the shared cached value and are read-only.
func (f *Framework) diffLocked(tr *obs.Trace, w int, suppA, confA, suppB, confB float64) (onlyA, onlyB []rules.ID, err error) {
	slice, err := f.index.Slice(w)
	if err != nil {
		return nil, nil, err
	}
	if f.qcache == nil {
		sp := tr.Start(obs.StageEPSLookup)
		a, b := slice.Diff(suppA, confA, suppB, confB)
		sp.End()
		return a, b, nil
	}
	sp := tr.Start(obs.StageCut)
	siA, ciA := slice.CutIndex(suppA, confA)
	siB, ciB := slice.CutIndex(suppB, confB)
	sp.End()
	k := cacheKey{window: int32(w), class: classDiff, a: cutKey(siA, ciA), b: cutKey(siB, ciB)}
	sp = tr.Start(obs.StageCacheProbe)
	v, ok := f.qcache.get(k)
	sp.End()
	if ok {
		d := v.(diffValue)
		return d.onlyA, d.onlyB, nil
	}
	sp = tr.Start(obs.StageEPSLookup)
	a, b := slice.Diff(suppA, confA, suppB, confB)
	sp.End()
	sp = tr.Start(obs.StageCacheProbe)
	f.qcache.put(k, diffValue{onlyA: a, onlyB: b})
	sp.End()
	return a, b, nil
}

// Recommend answers Q3: the time-aware stable region around the request,
// telling the analyst how far the parameters can move before the output
// changes (the TARA-R response of the experiments).
func (f *Framework) Recommend(w int, minSupp, minConf float64) (eps.Region, error) {
	return f.RecommendTraced(nil, w, minSupp, minConf)
}

// RecommendTraced is Recommend with per-stage span recording on tr.
func (f *Framework) RecommendTraced(tr *obs.Trace, w int, minSupp, minConf float64) (eps.Region, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return eps.Region{}, err
	}
	slice, err := f.index.Slice(w)
	if err != nil {
		return eps.Region{}, err
	}
	if f.qcache == nil {
		sp := tr.Start(obs.StageEPSLookup)
		reg := slice.Region(minSupp, minConf)
		sp.End()
		return reg, nil
	}
	// A stable region is itself a function of the cut only: Region derives
	// every bound from the grid cell around the request, which the cut
	// indexes identify.
	sp := tr.Start(obs.StageCut)
	si, ci := slice.CutIndex(minSupp, minConf)
	sp.End()
	k := cacheKey{window: int32(w), class: classRegion, a: cutKey(si, ci)}
	sp = tr.Start(obs.StageCacheProbe)
	v, ok := f.qcache.get(k)
	sp.End()
	if ok {
		return v.(eps.Region), nil
	}
	sp = tr.Start(obs.StageEPSLookup)
	reg := slice.Region(minSupp, minConf)
	sp.End()
	sp = tr.Start(obs.StageCacheProbe)
	f.qcache.put(k, reg)
	sp.End()
	return reg, nil
}

// RollUpRule is one rule of a coarse-period mining answer. Stats are the
// exact sums over the windows where the rule was pregenerated;
// MaxSupportError bounds how much the period support may be underestimated
// because of windows where the rule fell below the generation thresholds.
type RollUpRule struct {
	ID      rules.ID
	Rule    rules.Rule
	Stats   rules.Stats
	Present int // windows of the period in which the rule was archived
	// MaxSupportError is the roll-up approximation bound: in each absent
	// window w the rule's count is < max(⌈s_gen·N_w⌉, ⌈c_gen·N_w⌉), so the
	// period support is underestimated by less than the sum of those caps
	// over absent windows divided by the period's N.
	MaxSupportError float64
}

// MineRollUp answers the coarse-granularity mining request (roll-up, Q4):
// rules whose exact rolled-up support and confidence over windows
// [from, to] meet the thresholds. Candidates are sound for the archived
// knowledge: any rule whose period support meets minSupp must reach minSupp
// in at least one window (a mean cannot exceed every component), so the
// union of per-window qualifying sets is screened. The residual
// approximation — contributions from windows where a rule fell below the
// generation thresholds — is quantified per rule by MaxSupportError.
func (f *Framework) MineRollUp(from, to int, minSupp, minConf float64) ([]RollUpRule, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return nil, err
	}
	if from < 0 || to >= len(f.windows) || from > to {
		return nil, fmt.Errorf("tara: roll-up range [%d,%d] out of bounds (have %d windows)", from, to, len(f.windows))
	}
	candidates := map[rules.ID]bool{}
	for w := from; w <= to; w++ {
		slice, err := f.index.Slice(w)
		if err != nil {
			return nil, err
		}
		for _, id := range slice.Rules(minSupp, 0) {
			candidates[id] = true
		}
	}
	var periodN uint32
	for w := from; w <= to; w++ {
		n, err := f.arch.WindowN(w)
		if err != nil {
			return nil, err
		}
		periodN += n
	}
	var out []RollUpRule
	for id := range candidates {
		st, present, err := f.arch.RollUp(id, from, to)
		if err != nil {
			return nil, err
		}
		if st.Support() < minSupp || st.Confidence() < minConf {
			continue
		}
		r, ok := f.ruleDict.Rule(id)
		if !ok {
			return nil, fmt.Errorf("tara: unknown rule id %d", id)
		}
		out = append(out, RollUpRule{
			ID:              id,
			Rule:            r,
			Stats:           st,
			Present:         present,
			MaxSupportError: f.rollUpErrorBound(id, from, to, periodN),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// rollUpErrorBound computes the support-underestimate bound for a rule over
// [from, to]: absent windows contribute strictly less than
// max(⌈s_gen·N_w⌉, ⌈c_gen·N_w⌉) joint occurrences each.
func (f *Framework) rollUpErrorBound(id rules.ID, from, to int, periodN uint32) float64 {
	presentIn := map[int]bool{}
	for _, e := range f.arch.Range(id, from, to) {
		presentIn[e.Window] = true
	}
	var missing float64
	for w := from; w <= to; w++ {
		if presentIn[w] {
			continue
		}
		n := float64(f.windows[w].N)
		capSupp := math.Ceil(f.cfg.GenMinSupport * n)
		capConf := math.Ceil(f.cfg.GenMinConf * n)
		missing += math.Max(capSupp, capConf)
	}
	if periodN == 0 {
		return 0
	}
	return missing / float64(periodN)
}

// RollUpSlice materializes a parameter-space slice for the coarse period
// [from, to] from the archive's exact rolled-up statistics, so stable-region
// recommendation (Q3) and ruleset comparison (Q2) work at coarse granularity
// too. The slice carries the same approximation caveat as MineRollUp: rules
// below the generation thresholds in some windows contribute only their
// archived counts. The window index of the returned slice is `from`.
func (f *Framework) RollUpSlice(from, to int) (*eps.Slice, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.rollUpSliceLocked(from, to)
}

// rollUpSliceLocked is RollUpSlice's implementation; callers hold f.mu.
func (f *Framework) rollUpSliceLocked(from, to int) (*eps.Slice, error) {
	if from < 0 || to >= len(f.windows) || from > to {
		return nil, fmt.Errorf("tara: roll-up range [%d,%d] out of bounds (have %d windows)", from, to, len(f.windows))
	}
	var ids []eps.IDStats
	for _, id := range f.arch.Rules() {
		st, present, err := f.arch.RollUp(id, from, to)
		if err != nil {
			return nil, err
		}
		if present == 0 {
			continue
		}
		ids = append(ids, eps.IDStats{ID: id, Stats: st})
	}
	var n uint32
	for w := from; w <= to; w++ {
		n += f.windows[w].N
	}
	return eps.BuildSlice(from, n, ids, eps.Options{
		ContentIndex: f.cfg.ContentIndex,
		Dict:         f.ruleDict,
	})
}

// RecommendRollUp answers Q3 at coarse granularity: the stable region of the
// rolled-up period [from, to] around the request point.
func (f *Framework) RecommendRollUp(from, to int, minSupp, minConf float64) (eps.Region, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return eps.Region{}, err
	}
	slice, err := f.rollUpSliceLocked(from, to)
	if err != nil {
		return eps.Region{}, err
	}
	return slice.Region(minSupp, minConf), nil
}

// WindowStats is one drill-down row: a rule's statistics in one window.
type WindowStats struct {
	Window  int
	Period  txdb.Period
	Stats   rules.Stats
	Present bool
}

// DrillDown answers the finer-granularity direction of Q4: the per-window
// statistics of a rule across [from, to].
func (f *Framework) DrillDown(id rules.ID, from, to int) ([]WindowStats, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if from < 0 || to >= len(f.windows) || from > to {
		return nil, fmt.Errorf("tara: drill-down range [%d,%d] out of bounds (have %d windows)", from, to, len(f.windows))
	}
	if _, ok := f.ruleDict.Rule(id); !ok {
		return nil, fmt.Errorf("tara: unknown rule id %d", id)
	}
	out := make([]WindowStats, 0, to-from+1)
	for w := from; w <= to; w++ {
		st, ok := f.arch.StatsAt(id, w)
		out = append(out, WindowStats{Window: w, Period: f.windows[w].Period, Stats: st, Present: ok})
	}
	return out, nil
}

// Trajectory exposes the archive trajectory of a rule for evolution
// measures (Definition 10).
func (f *Framework) Trajectory(id rules.ID, from, to int) (archive.Trajectory, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.arch.Trajectory(id, from, to)
}

// RulesAbout answers Q5: rules mentioning all given item names that satisfy
// the setting in window w. It requires the framework to have been built
// with ContentIndex (the TARA-S configuration).
func (f *Framework) RulesAbout(w int, minSupp, minConf float64, names []string) ([]RuleView, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return nil, err
	}
	slice, err := f.index.Slice(w)
	if err != nil {
		return nil, err
	}
	items := make(itemset.Set, 0, len(names))
	for _, n := range names {
		it, ok := f.itemDict.Lookup(n)
		if !ok {
			// Unknown item: no rule can mention it.
			return nil, nil
		}
		items = append(items, it)
	}
	items = itemset.Canonicalize(items)
	ids, err := slice.RulesWithItems(minSupp, minConf, items)
	if err != nil {
		return nil, err
	}
	out := make([]RuleView, len(ids))
	for i, id := range ids {
		out[i], err = f.view(id, w)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EvolutionMeasure selects how EvolutionSummaries are ranked.
type EvolutionMeasure int

const (
	// ByStability ranks most-stable first (highest fraction of small
	// support deltas).
	ByStability EvolutionMeasure = iota
	// ByCoverage ranks rules present in the most windows first.
	ByCoverage
	// ByVolatility ranks the most fluctuating rules first (highest support
	// standard deviation) — the "most significant change" exploration.
	ByVolatility
)

// EvolutionSummary scores one rule's behaviour across a window range.
type EvolutionSummary struct {
	ID        rules.ID
	Rule      rules.Rule
	Coverage  float64
	Stability float64
	StdDev    float64
}

// RankEvolution finds rules satisfying the setting in at least one window of
// [from, to] and ranks them by the chosen evolution measure, returning the
// top k (all if k <= 0). stabilityEps is the support-delta tolerance used by
// the stability measure.
func (f *Framework) RankEvolution(from, to int, minSupp, minConf float64, m EvolutionMeasure, stabilityEps float64, k int) ([]EvolutionSummary, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return nil, err
	}
	if from < 0 || to >= len(f.windows) || from > to {
		return nil, fmt.Errorf("tara: evolution range [%d,%d] out of bounds (have %d windows)", from, to, len(f.windows))
	}
	seen := map[rules.ID]bool{}
	for w := from; w <= to; w++ {
		slice, err := f.index.Slice(w)
		if err != nil {
			return nil, err
		}
		for _, id := range slice.Rules(minSupp, minConf) {
			seen[id] = true
		}
	}
	out := make([]EvolutionSummary, 0, len(seen))
	for id := range seen {
		tr, err := f.arch.Trajectory(id, from, to)
		if err != nil {
			return nil, err
		}
		r, _ := f.ruleDict.Rule(id)
		// Evolution materializes the support series once and derives all
		// three measures from shared moments; calling Coverage, Stability
		// and SupportStdDev separately would rebuild the series (and its
		// mean) per measure for every ranked rule.
		cov, stab, sd := tr.Evolution(stabilityEps)
		out = append(out, EvolutionSummary{
			ID:        id,
			Rule:      r,
			Coverage:  cov,
			Stability: stab,
			StdDev:    sd,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		var less bool
		switch m {
		case ByCoverage:
			less = a.Coverage > b.Coverage
			if a.Coverage == b.Coverage {
				return a.ID < b.ID
			}
		case ByVolatility:
			less = a.StdDev > b.StdDev
			if a.StdDev == b.StdDev {
				return a.ID < b.ID
			}
		default: // ByStability
			less = a.Stability > b.Stability
			if a.Stability == b.Stability {
				return a.ID < b.ID
			}
		}
		return less
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}
