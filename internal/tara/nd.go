package tara

import (
	"fmt"

	"tara/internal/eps"
)

// n-dimensional exploration (Definition 9 beyond the two evaluated
// parameters): the framework can materialize per-window slices of the
// (support × confidence × lift) space from the archive and answer mining
// and stable-region requests over all three measures. ND slices are built
// lazily from archived counts and cached; they add nothing to the offline
// phase unless used.

// ndSlice returns the cached n-dimensional slice for window w, building it
// on first use. Callers hold f.mu for reading; ndMu is acquired inside, and
// no writer ever takes ndMu, so the lock order is acyclic.
func (f *Framework) ndSlice(w int) (*eps.SliceND, error) {
	if w < 0 || w >= len(f.windows) {
		return nil, fmt.Errorf("tara: window %d out of range [0,%d)", w, len(f.windows))
	}
	f.ndMu.Lock()
	defer f.ndMu.Unlock()
	if s, ok := f.ndSlices[w]; ok {
		return s, nil
	}
	slice, err := f.index.Slice(w)
	if err != nil {
		return nil, err
	}
	var ids []eps.IDStats
	for _, l := range slice.Locations() {
		for _, id := range l.Rules {
			st, ok := f.arch.StatsAt(id, w)
			if !ok {
				return nil, fmt.Errorf("tara: rule %d missing from archive in window %d", id, w)
			}
			ids = append(ids, eps.IDStats{ID: id, Stats: st})
		}
	}
	s, err := eps.BuildSliceND(w, f.windows[w].N, ids, eps.StandardMeasures())
	if err != nil {
		return nil, err
	}
	if f.ndSlices == nil {
		f.ndSlices = map[int]*eps.SliceND{}
	}
	f.ndSlices[w] = s
	return s, nil
}

// MineND answers a three-measure mining request (support, confidence, lift
// lower bounds) from the window's n-dimensional parameter-space slice.
func (f *Framework) MineND(w int, minSupp, minConf, minLift float64) ([]RuleView, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return nil, err
	}
	s, err := f.ndSlice(w)
	if err != nil {
		return nil, err
	}
	ids, err := s.Rules([]float64{minSupp, minConf, minLift})
	if err != nil {
		return nil, err
	}
	out := make([]RuleView, len(ids))
	for i, id := range ids {
		out[i], err = f.view(id, w)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RecommendND returns the three-measure stable region around the request:
// how far each of minsupp, minconf and minlift can move without changing
// the answer.
func (f *Framework) RecommendND(w int, minSupp, minConf, minLift float64) (eps.RegionND, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return eps.RegionND{}, err
	}
	s, err := f.ndSlice(w)
	if err != nil {
		return eps.RegionND{}, err
	}
	return s.Region([]float64{minSupp, minConf, minLift})
}
