// Package tara implements the TARA framework of the paper: an interactive
// temporal association analytics system. The offline phase (Build /
// AppendWindow) runs the Association Generator over each tumbling window and
// constructs the knowledge base — the TAR Archive of per-rule parameter
// values across time plus the Evolving Parameter Space index of time-aware
// stable regions. The online Explorer methods (see explore.go) answer the
// paper's query classes Q1–Q5 from the knowledge base alone, without
// touching transaction data.
package tara

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tara/internal/archive"
	"tara/internal/eps"
	"tara/internal/kb"
	"tara/internal/mining"
	"tara/internal/obs"
	"tara/internal/rules"
	"tara/internal/traj"
	"tara/internal/txdb"
)

// Config parameterizes offline preprocessing.
type Config struct {
	// GenMinSupport is the generation-time minimum support (Table 4 of the
	// paper): rules below it are not pregenerated. Lower values make the
	// knowledge base larger but queries below the threshold unanswerable.
	GenMinSupport float64
	// GenMinConf is the generation-time minimum confidence.
	GenMinConf float64
	// MaxItemsetLen caps the length of mined itemsets (and thus |X∪Y|).
	// Non-positive means unlimited.
	MaxItemsetLen int
	// Miner selects the frequent-itemset algorithm; nil means Eclat.
	Miner mining.Miner
	// ContentIndex enables the TARA-S per-region rule content index that
	// accelerates content-based exploration (Q5).
	ContentIndex bool
	// Parallelism bounds the number of windows preprocessed concurrently
	// during Build / AppendWindows. 0 or 1 (and negative values) select the
	// legacy serial path; values above 1 run the pipelined parallel build
	// (see build.go), whose on-disk output is byte-identical to serial.
	// Callers wanting full parallelism pass runtime.GOMAXPROCS(0).
	Parallelism int
	// QueryCacheSize bounds the online query cache (see cache.go): the
	// number of canonicalized answers memoized across windows and query
	// classes. Zero selects DefaultQueryCacheSize; negative disables the
	// cache entirely (every query recollects from the EPS index).
	QueryCacheSize int
}

func (c Config) miner() mining.Miner {
	if c.Miner == nil {
		return mining.Eclat{}
	}
	return c.Miner
}

// parallelism normalizes Config.Parallelism: anything below 2 is the serial
// path.
func (c Config) parallelism() int {
	if c.Parallelism < 2 {
		return 1
	}
	return c.Parallelism
}

// Timing records where one window's preprocessing time went, the breakdown
// reported in Figure 9.
type Timing struct {
	Window      int
	Mine        time.Duration // frequent itemset generation
	RuleGen     time.Duration // rule derivation
	ArchiveTime time.Duration // rule-ID interning + TAR Archive append
	IndexTime   time.Duration // EPS slice construction
	// QueueWait is how long the mined window sat waiting for the ordered
	// commit stages of the parallel build (zero on the serial path): the
	// pipeline's head-of-line latency, not work.
	QueueWait time.Duration
	// Commit is the ordered committer's critical section beyond the archive
	// append — EPS index append plus knowledge-base bookkeeping under the
	// framework write lock.
	Commit      time.Duration
	NumItemsets int
	NumRules    int

	// Build telemetry beyond the Figure 9 breakdown.

	// NumLocations is the number of distinct (support, confidence) locations
	// in the window's EPS slice; SuppCuts × ConfCuts is its grid extent.
	NumLocations int
	SuppCuts     int
	ConfCuts     int
	// ArchiveBytes is the compressed archive growth this window caused.
	ArchiveBytes int
	// LevelCandidates / LevelFrequent report, per itemset length (index 0 =
	// length 1), how many candidates the miner counted and how many survived
	// support pruning. Candidates are only known for level-wise miners
	// (Apriori); pattern-growth miners leave LevelCandidates nil.
	LevelCandidates []int
	LevelFrequent   []int
}

// Total returns the window's total preprocessing work time. QueueWait is
// excluded: it is pipeline latency, not work, and including it would make
// parallel builds look more expensive than serial ones doing identical work.
func (t Timing) Total() time.Duration {
	return t.Mine + t.RuleGen + t.ArchiveTime + t.IndexTime + t.Commit
}

// WindowInfo is the retained metadata of a processed window; the raw
// transactions are not kept in the knowledge base.
type WindowInfo struct {
	Index  int
	Period txdb.Period
	N      uint32
}

// Framework is a built TARA instance: configuration, dictionaries and the
// knowledge base. All exported methods are safe for concurrent use, including
// queries running while AppendWindow grows the knowledge base: appends take
// the write lock, queries the read lock, so a query observes the knowledge
// base either before or after a window lands, never mid-append. cfg and
// itemDict are immutable after construction; ruleDict is internally
// synchronized (query paths resolve rule ids outside the framework lock).
//
// The raw Archive and Index accessors hand out the underlying structures
// without synchronization — they are for offline inspection and reporting,
// not for use concurrent with AppendWindow.
type Framework struct {
	cfg      Config
	itemDict *txdb.Dict
	ruleDict *rules.Dict
	arch     *archive.Archive
	index    *eps.Index
	windows  []WindowInfo
	timings  []Timing

	// mu guards the knowledge base: appendMined holds it for writing;
	// queries hold it for reading. Exported query methods lock it and call
	// unexported *Locked implementations, never each other, so a goroutine
	// holds at most one read lock (nested RLock can deadlock with a waiting
	// writer).
	mu sync.RWMutex

	ndMu     sync.Mutex // guards the lazy n-dimensional slice cache
	ndSlices map[int]*eps.SliceND

	// qcache memoizes canonicalized online answers (see cache.go); nil when
	// Config.QueryCacheSize is negative. It is internally synchronized —
	// query paths consult it while holding mu for reading, appendMined
	// invalidates while holding mu for writing.
	qcache *queryCache

	// buildCtr accumulates per-stage offline-build time and counts across
	// all committed windows (see build.go for the layout). Lock-free, so
	// pipeline workers account concurrently without touching mu.
	buildCtr *obs.CounterSet

	// genCtr counts committed windows monotonically; Generation() feeds
	// response validators (ETags) that must change whenever the knowledge
	// base grows. Bumped after the commit's write lock is released, so a
	// generation observed together with a query answer is never newer than
	// the knowledge base that produced the answer.
	genCtr atomic.Uint64

	// trajMu guards the lazily built columnar trajectory snapshot (traj.go).
	// Always acquired after mu; appends never take it, so snapshot builds
	// only contend with other trajectory queries.
	trajMu       sync.Mutex
	trajSnap     *traj.Snapshot
	trajRebuilds atomic.Uint64

	// appendHooks are run after every committed window, outside the
	// framework lock (a hook may issue queries). Registered via OnAppend;
	// the daemon uses this to invalidate its encoded-response cache.
	hooksMu     sync.Mutex
	appendHooks []func(window int)

	// kbf is the mapped knowledge-base container behind a framework returned
	// by Open / OpenBytes, nil otherwise; loadMode records how it entered
	// memory (see LoadMode). Both are set once at open and never change, so
	// they need no lock. The mapping must stay open for the framework's
	// lifetime — archive payloads, posting streams and rule keys are served
	// as views of the mapped bytes until an append promotes them.
	kbf      *kb.File
	loadMode string
}

// New returns an empty framework sharing the given item dictionary. Windows
// are added with AppendWindow; Build wraps partitioning plus appends.
func New(itemDict *txdb.Dict, cfg Config) *Framework {
	f := &Framework{
		cfg:      cfg,
		itemDict: itemDict,
		ruleDict: rules.NewDict(),
		arch:     archive.New(),
		index:    eps.NewIndex(),
		buildCtr: obs.NewCounterSet(buildCounterNames...),
	}
	if cfg.QueryCacheSize >= 0 {
		f.qcache = newQueryCache(cfg.QueryCacheSize)
	}
	return f
}

// Build partitions the database into count-based batches (numBatches) or,
// when windowSize > 0, into time-based tumbling windows, and preprocesses
// every window. It is the offline phase of Figure 2. With Config.Parallelism
// above 1 the windows flow through the pipelined parallel build (build.go);
// the knowledge base comes out byte-identical either way.
func Build(db *txdb.DB, windowSize int64, numBatches int, cfg Config) (*Framework, error) {
	return BuildContext(context.Background(), db, windowSize, numBatches, cfg)
}

// BuildContext is Build with cancellation: ctx aborts the build between
// windows (serial path) or cancels the whole worker pool (parallel path),
// returning the context's error. On failure the partially built framework is
// discarded, matching Build's all-or-nothing contract.
func BuildContext(ctx context.Context, db *txdb.DB, windowSize int64, numBatches int, cfg Config) (*Framework, error) {
	var (
		ws  []txdb.Window
		err error
	)
	if windowSize > 0 {
		ws, err = db.PartitionByTime(windowSize)
	} else {
		ws, err = db.PartitionByCount(numBatches)
	}
	if err != nil {
		return nil, err
	}
	f := New(db.Dict, cfg)
	if err := f.AppendWindows(ctx, ws); err != nil {
		return nil, err
	}
	return f, nil
}

// mined is the output of the mining phase for one window.
type mined struct {
	window  txdb.Window
	ruleSet []rules.WithStats
	timing  Timing
}

// AppendWindows preprocesses a batch of windows and extends the knowledge
// base in window order. With Config.Parallelism above 1 the batch runs
// through the pipelined parallel build (build.go); otherwise windows are
// processed one at a time. Either way the committed knowledge base is
// byte-identical, failed builds keep the consistent committed prefix, and
// ctx cancellation aborts cleanly with no goroutines left behind.
func (f *Framework) AppendWindows(ctx context.Context, ws []txdb.Window) error {
	if f.cfg.parallelism() > 1 && len(ws) > 1 {
		return f.appendWindowsPipeline(ctx, ws)
	}
	for _, w := range ws {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := f.AppendWindow(w); err != nil {
			return err
		}
	}
	return nil
}

// AppendWindow preprocesses one new window and extends the knowledge base —
// the incremental construction path (iPARAS): arriving batches are absorbed
// without reprocessing history. The window's index must equal Windows().
func (f *Framework) AppendWindow(w txdb.Window) error {
	m, err := f.mineWindow(w)
	if err != nil {
		return err
	}
	return f.appendMined(m)
}

// mineWindow runs the Association Generator for one window: frequent
// itemsets then rule derivation. It does not touch shared state.
func (f *Framework) mineWindow(w txdb.Window) (mined, error) {
	var m mined
	m.window = w
	minCount := mining.MinCountFor(f.cfg.GenMinSupport, len(w.Tx))

	start := time.Now()
	res, err := f.cfg.miner().Mine(w.Tx, mining.Params{MinCount: minCount, MaxLen: f.cfg.MaxItemsetLen})
	if err != nil {
		return m, fmt.Errorf("tara: window %d: mining: %w", w.Index, err)
	}
	m.timing.Mine = time.Since(start)
	m.timing.NumItemsets = res.Len()
	m.timing.LevelCandidates = res.LevelCandidates
	m.timing.LevelFrequent = res.FrequentPerLevel()

	start = time.Now()
	rs, err := rules.Generate(res, rules.GenParams{MinCount: minCount, MinConf: f.cfg.GenMinConf})
	if err != nil {
		return m, fmt.Errorf("tara: window %d: rule generation: %w", w.Index, err)
	}
	m.timing.RuleGen = time.Since(start)
	m.timing.NumRules = len(rs)
	m.timing.Window = w.Index
	m.ruleSet = rs
	return m, nil
}

// appendMined interns rules, builds the window's EPS slice and commits the
// window — the serial path. The pipelined build performs the same three
// steps in its sequencer / EPS / committer stages; both funnel into
// commitWindow, and both intern ids and append archive records in the same
// order, which is what keeps the knowledge base byte-identical across paths.
func (f *Framework) appendMined(m mined) error {
	start := time.Now()
	ids := f.internRules(m.ruleSet)
	m.timing.ArchiveTime = time.Since(start)

	start = time.Now()
	slice, err := f.buildSlice(m.window, ids)
	if err != nil {
		return err
	}
	m.timing.IndexTime = time.Since(start)
	return f.commitWindow(m, ids, slice)
}

// internRules resolves the window's rules to dense ids, in ruleSet order.
// The rule dictionary is internally synchronized and append-only, so ids may
// be interned before the window commits; an id that never commits (a later
// failure) is harmless — nothing in the archive or index references it.
func (f *Framework) internRules(rs []rules.WithStats) []eps.IDStats {
	ids := make([]eps.IDStats, len(rs))
	for i, r := range rs {
		ids[i] = eps.IDStats{ID: f.ruleDict.Add(r.Rule), Stats: r.Stats}
	}
	return ids
}

// buildSlice constructs the window's EPS slice from interned ids. Pure with
// respect to the knowledge base (the dictionary is read-locked internally),
// so pipeline workers run it concurrently.
func (f *Framework) buildSlice(w txdb.Window, ids []eps.IDStats) (*eps.Slice, error) {
	slice, err := eps.BuildSlice(w.Index, uint32(len(w.Tx)), ids, eps.Options{
		ContentIndex: f.cfg.ContentIndex,
		Dict:         f.ruleDict,
	})
	if err != nil {
		return nil, fmt.Errorf("tara: window %d: index: %w", w.Index, err)
	}
	return slice, nil
}

// commitWindow appends one fully prepared window to the knowledge base under
// the write lock, then bumps the generation and runs the append hooks with
// the lock released. Windows must commit in index order.
func (f *Framework) commitWindow(m mined, ids []eps.IDStats, slice *eps.Slice) error {
	if err := f.commitWindowLocked(m, ids, slice); err != nil {
		return err
	}
	f.genCtr.Add(1)
	f.notifyAppend(m.window.Index)
	return nil
}

// commitWindowLocked performs the commit proper: archive records (in ruleSet
// order — the byte-determinism anchor), the EPS slice, telemetry and window
// metadata, all under the write lock.
func (f *Framework) commitWindowLocked(m mined, ids []eps.IDStats, slice *eps.Slice) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := m.window
	if w.Index != len(f.windows) {
		return fmt.Errorf("tara: window %d appended at position %d", w.Index, len(f.windows))
	}

	start := time.Now()
	recs := make([]archive.Record, len(m.ruleSet))
	for i, r := range m.ruleSet {
		recs[i] = archive.Record{ID: ids[i].ID, CountXY: r.CountXY, CountX: r.CountX, CountY: r.CountY}
	}
	grew, err := f.arch.AppendWindow(uint32(len(w.Tx)), recs)
	if err != nil {
		return fmt.Errorf("tara: window %d: archive: %w", w.Index, err)
	}
	m.timing.ArchiveTime += time.Since(start)
	m.timing.ArchiveBytes = grew

	start = time.Now()
	if err := f.index.Append(slice); err != nil {
		return fmt.Errorf("tara: window %d: index: %w", w.Index, err)
	}
	m.timing.NumLocations = slice.NumLocations()
	m.timing.SuppCuts, m.timing.ConfCuts = slice.GridDims()
	f.timings = append(f.timings, m.timing)
	f.windows = append(f.windows, WindowInfo{Index: w.Index, Period: w.Period, N: uint32(len(w.Tx))})
	if f.qcache != nil {
		// Windows are append-only, so no stale entry for this index can
		// exist; invalidating anyway keeps "cached == fresh scan" a local
		// invariant rather than a global argument about construction order.
		f.qcache.invalidateWindow(w.Index)
	}
	m.timing.Commit += time.Since(start)
	f.recordBuildTiming(m.timing)
	return nil
}

// AppendRules extends the knowledge base with one window of premined rules,
// skipping the Association Generator: the archive and EPS slice are built
// directly from the provided per-rule statistics. It serves ingestion paths
// where rules arrive from an external miner, and the online-query benchmarks
// that need large, precisely shaped parameter-space slices. The window's
// index must equal Windows(), like AppendWindow.
func (f *Framework) AppendRules(w txdb.Window, rs []rules.WithStats) error {
	return f.appendMined(mined{
		window:  w,
		ruleSet: rs,
		timing:  Timing{Window: w.Index, NumRules: len(rs)},
	})
}

// OnAppend registers fn to run after every window commit, with the framework
// lock released (fn may query the framework). Hooks run on the committing
// goroutine in registration order. The daemon registers its encoded-response
// cache invalidation here, next to the query cache's built-in invalidation.
func (f *Framework) OnAppend(fn func(window int)) {
	f.hooksMu.Lock()
	f.appendHooks = append(f.appendHooks, fn)
	f.hooksMu.Unlock()
}

// notifyAppend runs the registered append hooks for window w.
func (f *Framework) notifyAppend(w int) {
	f.hooksMu.Lock()
	hooks := make([]func(int), len(f.appendHooks))
	copy(hooks, f.appendHooks)
	f.hooksMu.Unlock()
	for _, fn := range hooks {
		fn(w)
	}
}

// Generation returns the number of committed windows as a monotonic
// knowledge-base version. Any response validator derived from it (the
// daemon's ETags) changes whenever the knowledge base grows; since windows
// are append-only and immutable once committed, a (generation, window,
// canonical cut) triple identifies a query answer for all time.
func (f *Framework) Generation() uint64 { return f.genCtr.Load() }

// CanonicalCut maps a request point in window w to its stable region's
// canonical cut-grid indexes (Definition 12) — the memoization key Lemma 4
// licenses, exposed so response-level caches can canonicalize before
// hashing.
func (f *Framework) CanonicalCut(w int, minSupp, minConf float64) (si, ci int, err error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	slice, err := f.index.Slice(w)
	if err != nil {
		return 0, 0, err
	}
	si, ci = slice.CutIndex(minSupp, minConf)
	return si, ci, nil
}

// Windows returns the number of processed windows.
func (f *Framework) Windows() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.windows)
}

// Window returns metadata for window w.
func (f *Framework) Window(w int) (WindowInfo, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if w < 0 || w >= len(f.windows) {
		return WindowInfo{}, fmt.Errorf("tara: window %d out of range [0,%d)", w, len(f.windows))
	}
	return f.windows[w], nil
}

// WindowRange maps a time period to the windows it overlaps. It fails when
// the period misses every window.
func (f *Framework) WindowRange(p txdb.Period) (from, to int, err error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	from, to = -1, -1
	for _, w := range f.windows {
		if w.Period.Overlaps(p) {
			if from == -1 {
				from = w.Index
			}
			to = w.Index
		}
	}
	if from == -1 {
		return 0, 0, fmt.Errorf("tara: period %v overlaps no window", p)
	}
	return from, to, nil
}

// Timings returns a copy of the per-window preprocessing breakdown
// (Figure 9).
func (f *Framework) Timings() []Timing {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]Timing, len(f.timings))
	copy(out, f.timings)
	return out
}

// Summary describes the knowledge base for operators: per-window rule and
// location counts plus storage accounting.
type Summary struct {
	Windows          int
	Rules            int
	Items            int
	ArchiveEntries   int
	ArchiveBytes     int
	UncompressedByte int
	PerWindow        []WindowSummary
}

// WindowSummary is one window's slice statistics.
type WindowSummary struct {
	Window    int
	Period    txdb.Period
	N         uint32
	Rules     int
	Locations int
}

// Summarize computes the knowledge-base summary.
func (f *Framework) Summarize() Summary {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := Summary{
		Windows:          len(f.windows),
		Rules:            f.ruleDict.Len(),
		Items:            f.itemDict.Len(),
		ArchiveEntries:   f.arch.NumEntries(),
		ArchiveBytes:     f.arch.SizeBytes(),
		UncompressedByte: f.arch.UncompressedBytes(),
	}
	for _, wi := range f.windows {
		ws := WindowSummary{Window: wi.Index, Period: wi.Period, N: wi.N}
		if slice, err := f.index.Slice(wi.Index); err == nil {
			ws.Rules = slice.NumRuleRefs()
			ws.Locations = slice.NumLocations()
		}
		s.PerWindow = append(s.PerWindow, ws)
	}
	return s
}

// Config returns the framework's configuration.
func (f *Framework) Config() Config { return f.cfg }

// ItemDict returns the shared item dictionary.
func (f *Framework) ItemDict() *txdb.Dict { return f.itemDict }

// RuleDict returns the rule dictionary.
func (f *Framework) RuleDict() *rules.Dict { return f.ruleDict }

// Archive returns the TAR Archive for size reporting and direct inspection.
// The returned structure is NOT synchronized with AppendWindow; use it only
// when no append can be in flight.
func (f *Framework) Archive() *archive.Archive { return f.arch }

// Index returns the EPS index. Like Archive, the returned structure is NOT
// synchronized with AppendWindow.
func (f *Framework) Index() *eps.Index { return f.index }
