package tara

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tara/internal/kb"
	"tara/internal/rules"
)

// saveMapped serializes f in container format.
func saveMapped(t *testing.T, f *Framework) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.SaveMapped(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openMapped reopens a container image, closing it with the test.
func openMapped(t *testing.T, img []byte) *Framework {
	t.Helper()
	f, err := OpenBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// sameViews fails unless two answer sets agree rule for rule.
func sameViews(t *testing.T, what string, a, b []RuleView) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d rules", what, len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Stats != b[i].Stats || a[i].Rule.Key() != b[i].Rule.Key() {
			t.Fatalf("%s: rule %d differs: %+v vs %+v", what, i, a[i], b[i])
		}
	}
}

func TestSaveMappedOpenDifferential(t *testing.T) {
	cfg := defaultCfg()
	cfg.ContentIndex = true
	heap := build(t, cfg)
	mapped := openMapped(t, saveMapped(t, heap))

	if got := mapped.LoadMode(); got != "bytes" {
		t.Errorf("LoadMode = %q, want bytes", got)
	}
	if mapped.Windows() != heap.Windows() {
		t.Fatalf("windows: %d vs %d", mapped.Windows(), heap.Windows())
	}
	if mapped.Generation() != uint64(heap.Windows()) {
		t.Errorf("generation = %d, want %d", mapped.Generation(), heap.Windows())
	}
	if mapped.RuleDict().Len() != heap.RuleDict().Len() {
		t.Fatalf("rules: %d vs %d", mapped.RuleDict().Len(), heap.RuleDict().Len())
	}
	hc, mc := heap.Config(), mapped.Config()
	if hc.GenMinSupport != mc.GenMinSupport || hc.GenMinConf != mc.GenMinConf ||
		hc.MaxItemsetLen != mc.MaxItemsetLen || hc.ContentIndex != mc.ContentIndex {
		t.Fatalf("config: %+v vs %+v", mc, hc)
	}
	for w := 0; w < heap.Windows(); w++ {
		hw, _ := heap.Window(w)
		mw, _ := mapped.Window(w)
		if hw != mw {
			t.Errorf("window %d: %+v vs %+v", w, mw, hw)
		}
	}

	cuts := []struct{ supp, conf float64 }{
		{0.01, 0.05}, {0.02, 0.1}, {0.05, 0.2}, {0.1, 0.5}, {0.3, 0.9},
	}
	for w := 0; w < heap.Windows(); w++ {
		for _, c := range cuts {
			hv, err := heap.Mine(w, c.supp, c.conf)
			if err != nil {
				t.Fatal(err)
			}
			mv, err := mapped.Mine(w, c.supp, c.conf)
			if err != nil {
				t.Fatal(err)
			}
			sameViews(t, fmt.Sprintf("mine w=%d cut=%v", w, c), hv, mv)

			hn, err := heap.Count(w, c.supp, c.conf)
			if err != nil {
				t.Fatal(err)
			}
			mn, err := mapped.Count(w, c.supp, c.conf)
			if err != nil {
				t.Fatal(err)
			}
			if hn != mn {
				t.Fatalf("count w=%d cut=%v: %d vs %d", w, c, mn, hn)
			}
		}
	}

	// Content query (Q5) through the lazily built per-region item index.
	views, err := heap.Mine(0, 0.05, 0.2)
	if err != nil || len(views) == 0 {
		t.Fatalf("mine: %d views, err %v", len(views), err)
	}
	name := heap.ItemDict().Name(views[0].Rule.Items()[0])
	ha, err := heap.RulesAbout(0, 0.05, 0.2, []string{name})
	if err != nil {
		t.Fatal(err)
	}
	ma, err := mapped.RulesAbout(0, 0.05, 0.2, []string{name})
	if err != nil {
		t.Fatal(err)
	}
	sameViews(t, "about", ha, ma)

	// Trajectory (Q3) decodes archive payloads straight off the container.
	ht, err := heap.Trajectory(views[0].ID, 0, heap.Windows()-1)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := mapped.Trajectory(views[0].ID, 0, mapped.Windows()-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ht.Entries) != len(mt.Entries) {
		t.Fatalf("trajectory: %d vs %d entries", len(mt.Entries), len(ht.Entries))
	}
	for i := range ht.Entries {
		if ht.Entries[i] != mt.Entries[i] {
			t.Fatalf("trajectory entry %d: %+v vs %+v", i, mt.Entries[i], ht.Entries[i])
		}
	}

	// Roll-up (Q4) merges counts across windows.
	hr, err := heap.MineRollUp(0, heap.Windows()-1, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := mapped.MineRollUp(0, mapped.Windows()-1, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hr) != len(mr) {
		t.Fatalf("rollup: %d vs %d rules", len(mr), len(hr))
	}
	for i := range hr {
		if hr[i].ID != mr[i].ID || hr[i].Stats != mr[i].Stats {
			t.Fatalf("rollup rule %d differs", i)
		}
	}

	// Evolution diff (Q2).
	hd, err := heap.Compare([]int{0, 1, 2}, 0.05, 0.2, 0.02, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	md, err := mapped.Compare([]int{0, 1, 2}, 0.05, 0.2, 0.02, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hd) != len(md) {
		t.Fatalf("compare: %d vs %d windows", len(md), len(hd))
	}
	for i := range hd {
		if len(hd[i].OnlyA) != len(md[i].OnlyA) || len(hd[i].OnlyB) != len(md[i].OnlyB) {
			t.Fatalf("compare window %d differs", i)
		}
		for j := range hd[i].OnlyA {
			if hd[i].OnlyA[j] != md[i].OnlyA[j] {
				t.Fatalf("compare window %d OnlyA[%d] differs", i, j)
			}
		}
	}

	// The strongest equivalence check: both frameworks emit byte-identical
	// legacy streams, so every bit of knowledge-base state round-tripped.
	var hs, ms bytes.Buffer
	if err := heap.Save(&hs); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Save(&ms); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hs.Bytes(), ms.Bytes()) {
		t.Fatal("legacy Save bytes differ between heap and mapped frameworks")
	}
}

func TestMappedFrameworkExtendable(t *testing.T) {
	db := testDB(12, 600, 25)
	windows, err := db.PartitionByCount(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultCfg()
	cfg.ContentIndex = true
	heap := New(db.Dict, cfg)
	for _, w := range windows[:3] {
		if err := heap.AppendWindow(w); err != nil {
			t.Fatal(err)
		}
	}
	mapped := openMapped(t, saveMapped(t, heap))

	// Appending promotes the mapped archive to heap copies and forces the
	// lazy rule dictionary; both frameworks then agree byte for byte.
	for _, f := range []*Framework{heap, mapped} {
		if err := f.AppendWindow(windows[3]); err != nil {
			t.Fatal(err)
		}
	}
	if mapped.Windows() != 4 {
		t.Fatalf("windows = %d", mapped.Windows())
	}
	hv, err := heap.Mine(3, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := mapped.Mine(3, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	sameViews(t, "mine after append", hv, mv)

	var hs, ms bytes.Buffer
	if err := heap.Save(&hs); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Save(&ms); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hs.Bytes(), ms.Bytes()) {
		t.Fatal("legacy Save bytes differ after appending to a mapped framework")
	}

	// And the mapped stream re-saves identically too.
	img2 := saveMapped(t, mapped)
	img1 := saveMapped(t, heap)
	if !bytes.Equal(img1, img2) {
		t.Fatal("mapped Save bytes differ after appending to a mapped framework")
	}
}

func TestSaveMappedDeterministic(t *testing.T) {
	f := build(t, defaultCfg())
	if !bytes.Equal(saveMapped(t, f), saveMapped(t, f)) {
		t.Error("SaveMapped output not deterministic")
	}
}

func TestOpenAutoDetect(t *testing.T) {
	cfg := defaultCfg()
	cfg.ContentIndex = true
	f := build(t, cfg)
	dir := t.TempDir()

	legacy := filepath.Join(dir, "legacy.kb")
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacy, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	lf, err := Open(legacy)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	if lf.LoadMode() != "heap" {
		t.Errorf("legacy LoadMode = %q, want heap", lf.LoadMode())
	}

	mappedPath := filepath.Join(dir, "mapped.kb")
	if err := os.WriteFile(mappedPath, saveMapped(t, f), 0o644); err != nil {
		t.Fatal(err)
	}
	mf, err := Open(mappedPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if m := mf.LoadMode(); m != "mmap" && m != "readerat" {
		t.Errorf("mapped LoadMode = %q, want mmap or readerat", m)
	}
	if mf.Windows() != f.Windows() {
		t.Fatalf("windows: %d vs %d", mf.Windows(), f.Windows())
	}
	hv, err := f.Mine(0, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := mf.Mine(0, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	sameViews(t, "mine via Open", hv, mv)

	// Load detects a container stream arriving through the legacy entry.
	bf, err := Load(bytes.NewReader(saveMapped(t, f)))
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	if bf.LoadMode() != "bytes" {
		t.Errorf("Load of container LoadMode = %q, want bytes", bf.LoadMode())
	}

	if _, err := Open(filepath.Join(dir, "missing.kb")); err == nil {
		t.Error("Open of missing file succeeded")
	}
	junk := filepath.Join(dir, "junk.kb")
	if err := os.WriteFile(junk, []byte("not a knowledge base at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk); err == nil {
		t.Error("Open of junk file succeeded")
	}
}

func TestOpenBytesRejectsCorrupt(t *testing.T) {
	cfg := defaultCfg()
	cfg.ContentIndex = true
	img := saveMapped(t, build(t, cfg))

	// Truncations anywhere must fail cleanly — the container magic survives
	// in prefixes past 8 bytes, so every layer's bounds checks get exercised.
	for _, n := range []int{0, 4, 8, 12, 16, 40, 100, len(img) / 4, len(img) / 2, len(img) - 100, len(img) - 1} {
		if n < 0 || n >= len(img) {
			continue
		}
		if f, err := OpenBytes(img[:n:n]); err == nil {
			f.Close()
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}

	// A header section offset pointing past the file must be rejected.
	bad := append([]byte(nil), img...)
	// First table entry's offset field lives at byte 16+8.
	for i := 24; i < 32; i++ {
		bad[i] = 0xff
	}
	if f, err := OpenBytes(bad); err == nil {
		f.Close()
		t.Error("bad section offset accepted")
	}

	// Wrong container version.
	bad = append([]byte(nil), img...)
	bad[8] = 99
	if f, err := OpenBytes(bad); err == nil {
		f.Close()
		t.Error("bad version accepted")
	}

	// Flipping a byte inside the rule-key fence table must be caught at
	// open (fences must ascend and cover the blob).
	kf, err := kb.OpenBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := kf.Section(kb.SectionID(3))
	if err != nil {
		t.Fatal(err)
	}
	// Find the section's offset in the image to corrupt it in place.
	off := bytes.Index(img, sec[:16])
	if off < 0 {
		t.Fatal("rulekeys section not found in image")
	}
	bad = append([]byte(nil), img...)
	bad[off+6] = 0xff // high byte of the first fence offset
	if f, err := OpenBytes(bad); err == nil {
		f.Close()
		t.Error("corrupt rule-key fences accepted")
	}
}

// TestOpenBytesTruncationSweep drags a truncation point across the whole
// image with a small stride: no prefix may be accepted or panic.
func TestOpenBytesTruncationSweep(t *testing.T) {
	img := saveMapped(t, build(t, defaultCfg()))
	for n := 0; n < len(img); n += 7 {
		if f, err := OpenBytes(img[:n:n]); err == nil {
			f.Close()
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(img))
		}
	}
}

func FuzzOpenMapped(f *testing.F) {
	cfg := defaultCfg()
	cfg.ContentIndex = true
	db := testDB(3, 200, 15)
	fw, err := Build(db, 0, 2, cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fw.SaveMapped(&buf); err != nil {
		f.Fatal(err)
	}
	img := buf.Bytes()
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add([]byte(kb.Magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := OpenBytes(data)
		if err != nil {
			return
		}
		defer fr.Close()
		// Anything that opens must answer queries without panicking: the
		// validation at open is the only gate before the trusting hot paths.
		for w := 0; w < fr.Windows(); w++ {
			views, err := fr.Mine(w, fr.Config().GenMinSupport, fr.Config().GenMinConf)
			if err != nil {
				continue
			}
			if _, err := fr.Count(w, 0.05, 0.2); err != nil {
				t.Fatalf("count after successful mine: %v", err)
			}
			if len(views) > 0 {
				fr.Trajectory(views[0].ID, 0, fr.Windows()-1)
			}
		}
		fr.Summarize()
	})
}

func TestMappedSummarize(t *testing.T) {
	heap := build(t, defaultCfg())
	mapped := openMapped(t, saveMapped(t, heap))
	hs, ms := heap.Summarize(), mapped.Summarize()
	if hs.Windows != ms.Windows || hs.Rules != ms.Rules || hs.Items != ms.Items ||
		hs.ArchiveEntries != ms.ArchiveEntries {
		t.Fatalf("summary differs: %+v vs %+v", ms, hs)
	}
	for i := range hs.PerWindow {
		if hs.PerWindow[i] != ms.PerWindow[i] {
			t.Fatalf("window summary %d: %+v vs %+v", i, ms.PerWindow[i], hs.PerWindow[i])
		}
	}
}

func TestRuleDictLookupOnMapped(t *testing.T) {
	heap := build(t, defaultCfg())
	mapped := openMapped(t, saveMapped(t, heap))
	// Lookup forces the lazy dictionary; ids must match the heap ones.
	views, err := heap.Mine(0, 0.05, 0.2)
	if err != nil || len(views) == 0 {
		t.Fatalf("mine: %d views, err %v", len(views), err)
	}
	for _, v := range views {
		id, ok := mapped.RuleDict().Lookup(v.Rule)
		if !ok || id != v.ID {
			t.Fatalf("lookup %v: got (%d,%v), want %d", v.Rule, id, ok, v.ID)
		}
	}
	if mapped.RuleDict().Len() != heap.RuleDict().Len() {
		t.Fatalf("len after force: %d vs %d", mapped.RuleDict().Len(), heap.RuleDict().Len())
	}
	var id rules.ID = rules.ID(mapped.RuleDict().Len())
	if _, ok := mapped.RuleDict().Rule(id); ok {
		t.Error("out-of-range id resolved")
	}
}
