package tara

import (
	"fmt"
	"strings"
	"time"

	"tara/internal/archive"
)

// BuildReport aggregates the offline preprocessing telemetry across every
// processed window: where wall time went per phase (Figure 9), how much was
// mined and archived, and how well the TAR Archive compressed (Figure 12).
// It is the operator-facing companion to the per-window Timings.
type BuildReport struct {
	Windows   int `json:"windows"`
	Rules     int `json:"rules"`
	Items     int `json:"items"`
	Itemsets  int `json:"itemsets"`  // frequent itemsets summed over windows
	Locations int `json:"locations"` // EPS locations summed over windows

	// Parallelism is the configured build parallelism (1 = serial path).
	Parallelism int `json:"parallelism"`

	Mine    time.Duration `json:"mine_ns"`
	RuleGen time.Duration `json:"rulegen_ns"`
	Archive time.Duration `json:"archive_ns"`
	Index   time.Duration `json:"index_ns"`
	// Commit is the ordered committer's non-archive critical section (EPS
	// index append + bookkeeping); QueueWait is how long mined windows sat
	// waiting for the ordered stages — pipeline latency, excluded from Total.
	Commit    time.Duration `json:"commit_ns"`
	QueueWait time.Duration `json:"queue_wait_ns"`
	Total     time.Duration `json:"total_ns"`

	Storage archive.Telemetry `json:"storage"`

	// Timings is the per-window breakdown the totals were summed from.
	Timings []Timing `json:"timings,omitempty"`
}

// BuildReport computes the aggregate build telemetry. The per-window Timings
// are included by value; mutating them does not affect the framework.
func (f *Framework) BuildReport() BuildReport {
	f.mu.RLock()
	defer f.mu.RUnlock()
	r := BuildReport{
		Windows:     len(f.windows),
		Rules:       f.ruleDict.Len(),
		Items:       f.itemDict.Len(),
		Parallelism: f.cfg.parallelism(),
		Storage:     f.arch.Telemetry(),
		Timings:     make([]Timing, len(f.timings)),
	}
	copy(r.Timings, f.timings)
	for _, t := range f.timings {
		r.Itemsets += t.NumItemsets
		r.Locations += t.NumLocations
		r.Mine += t.Mine
		r.RuleGen += t.RuleGen
		r.Archive += t.ArchiveTime
		r.Index += t.IndexTime
		r.Commit += t.Commit
		r.QueueWait += t.QueueWait
	}
	r.Total = r.Mine + r.RuleGen + r.Archive + r.Index + r.Commit
	return r
}

// String renders the report as a short multi-line operator summary.
func (r BuildReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "build: %d windows, %d rules (%d records), %d items, %d itemsets, %d EPS locations\n",
		r.Windows, r.Rules, r.Storage.Entries, r.Items, r.Itemsets, r.Locations)
	fmt.Fprintf(&b, "build: phases mine=%v rulegen=%v archive=%v index=%v commit=%v total=%v (parallelism %d, queue wait %v)\n",
		r.Mine.Round(time.Microsecond), r.RuleGen.Round(time.Microsecond),
		r.Archive.Round(time.Microsecond), r.Index.Round(time.Microsecond),
		r.Commit.Round(time.Microsecond), r.Total.Round(time.Microsecond),
		r.Parallelism, r.QueueWait.Round(time.Microsecond))
	fmt.Fprintf(&b, "build: archive %d B compressed / %d B raw (%.2fx)",
		r.Storage.Bytes, r.Storage.UncompressedBytes, r.Storage.CompressionRatio)
	return b.String()
}

// PerLevelString formats a per-level count slice like "1:14 2:40 3:12".
// Telemetry printers share it for candidate/frequent level breakdowns.
func PerLevelString(counts []int) string {
	if len(counts) == 0 {
		return "-"
	}
	parts := make([]string, len(counts))
	for i, c := range counts {
		parts[i] = fmt.Sprintf("%d:%d", i+1, c)
	}
	return strings.Join(parts, " ")
}
