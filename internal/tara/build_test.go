package tara

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tara/internal/mining"
	"tara/internal/txdb"
)

// buildAt builds the same seeded database at the given parallelism with the
// content index on (the configuration whose serialized form covers every
// order-sensitive structure: dictionary, archive, window metadata).
func buildAt(t *testing.T, parallelism int) *Framework {
	t.Helper()
	db := testDB(31, 1600, 40)
	cfg := Config{
		GenMinSupport: 0.01,
		GenMinConf:    0.05,
		MaxItemsetLen: 4,
		ContentIndex:  true,
		Parallelism:   parallelism,
	}
	f, err := Build(db, 0, 8, cfg)
	if err != nil {
		t.Fatalf("Build(parallelism=%d): %v", parallelism, err)
	}
	return f
}

// TestParallelBuildByteIdentical is the differential proof behind the
// pipeline's determinism contract: the serialized knowledge base of every
// parallel build must equal the serial build's byte for byte, and each
// window's EPS cut locations must be identical.
func TestParallelBuildByteIdentical(t *testing.T) {
	serial := buildAt(t, 1)
	var want bytes.Buffer
	if err := serial.Save(&want); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		f := buildAt(t, p)
		var got bytes.Buffer
		if err := f.Save(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("parallelism %d: serialized KB differs from serial (%d vs %d bytes)",
				p, got.Len(), want.Len())
		}
		if f.Windows() != serial.Windows() {
			t.Fatalf("parallelism %d: %d windows, serial built %d", p, f.Windows(), serial.Windows())
		}
		for w := 0; w < serial.Windows(); w++ {
			ss, err := serial.Index().Slice(w)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := f.Index().Slice(w)
			if err != nil {
				t.Fatal(err)
			}
			if !equalFloats(ss.SupportCuts(), ps.SupportCuts()) ||
				!equalFloats(ss.ConfidenceCuts(), ps.ConfidenceCuts()) {
				t.Errorf("parallelism %d window %d: EPS cuts differ from serial", p, w)
			}
			if ss.NumLocations() != ps.NumLocations() {
				t.Errorf("parallelism %d window %d: %d EPS locations, serial has %d",
					p, w, ps.NumLocations(), ss.NumLocations())
			}
		}
		ctr := f.BuildCounters()
		if ctr["build_windows"] != int64(serial.Windows()) {
			t.Errorf("parallelism %d: build_windows counter = %d, want %d",
				p, ctr["build_windows"], serial.Windows())
		}
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// waitGoroutines fails the test if the goroutine count does not settle back
// to (roughly) its pre-build baseline — i.e. the pipeline leaked a stage.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d running, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestParallelBuildMinerFailureNoLeak checks the pipeline's error path: a
// failure in one window's miner surfaces as Build's error, the other stages
// unwind, and no goroutine outlives the call.
func TestParallelBuildMinerFailureNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	db := testDB(32, 800, 20)
	cfg := defaultCfg()
	cfg.Miner = newFailingMiner(2)
	cfg.Parallelism = 4
	if _, err := Build(db, 0, 8, cfg); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("Build error = %v, want injected failure", err)
	}
	waitGoroutines(t, base)
}

// cancelingMiner cancels the build's parent context partway through and then
// keeps mining normally, modelling an external shutdown racing the pipeline.
type cancelingMiner struct {
	after  atomic.Int64
	cancel context.CancelFunc
}

func (m *cancelingMiner) Name() string { return "canceling" }

func (m *cancelingMiner) Mine(tx []txdb.Transaction, p mining.Params) (*mining.Result, error) {
	if m.after.Add(-1) == 0 {
		m.cancel()
	}
	return mining.Eclat{}.Mine(tx, p)
}

// TestParallelBuildCancellation checks both cancellation paths: a context
// cancelled before the build starts, and one cancelled while the pipeline is
// mid-flight. Both must return the context error and leak nothing.
func TestParallelBuildCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	db := testDB(33, 800, 20)
	cfg := defaultCfg()
	cfg.Parallelism = 4

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(pre, db, 0, 8, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled BuildContext error = %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cm := &cancelingMiner{cancel: cancel}
	cm.after.Store(3)
	cfg.Miner = cm
	if _, err := BuildContext(ctx, db, 0, 8, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-build BuildContext error = %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)
}
