package tara

import (
	"fmt"
	"math"

	"tara/internal/obs"
	"tara/internal/rules"
	"tara/internal/traj"
)

// The trajectory query classes (/topk, /similar, /emerging) answered from
// the columnar trajectory engine. The framework keeps at most one columnar
// snapshot — the window-major transpose of the archive — cached next to the
// knowledge base, stamped with the KB generation that produced it. Windows
// are append-only, so the snapshot is either current or discarded whole:
// queries rebuild it lazily under trajMu when the generation moves (one
// batch decode pass), and every trajectory query of the same generation
// shares it. Lock order is f.mu (read) then f.trajMu; appends take f.mu for
// writing and never touch trajMu, so the order is deadlock-free.

// trajStabilityEps is the adjacent-support-delta tolerance of the stability
// aggregate, matching the eps the rank query class has always used.
const trajStabilityEps = 0.01

// trajSnapshotLocked returns the columnar snapshot for the current KB
// generation, rebuilding it if stale; callers hold f.mu for reading (which
// excludes appends, so the archive cannot move mid-build). The windows
// check backs up the generation check: a commit bumps the generation after
// releasing the write lock, so for one tiny interval the archive can be
// ahead of the counter.
func (f *Framework) trajSnapshotLocked(tr *obs.Trace) (*traj.Snapshot, error) {
	f.trajMu.Lock()
	defer f.trajMu.Unlock()
	if s := f.trajSnap; s != nil && s.Gen == f.genCtr.Load() && s.Windows() == len(f.windows) {
		return s, nil
	}
	sp := tr.Start(obs.StageSnapshot)
	s, err := traj.Build(f.arch)
	sp.End()
	if err != nil {
		return nil, err
	}
	// Stamp with the generation read after the build: the archive state we
	// decoded includes at least every window that bumped the counter so far.
	s.Gen = f.genCtr.Load()
	f.trajSnap = s
	f.trajRebuilds.Add(1)
	return s, nil
}

// trajAggValue is the query-cache payload of a trajectory aggregate matrix:
// the snapshot it was computed from pins its validity (same generation →
// same rows), so invalidation is the pointer comparison rather than a
// per-window sweep.
type trajAggValue struct {
	snap *traj.Snapshot
	aggs []traj.Aggregates
}

// trajRangeKey packs a window range for the query cache.
func trajRangeKey(from, to int) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// trajAggregatesLocked returns the per-rule aggregate matrix over [from, to],
// memoized in the query cache under (range, eps): different /topk parameter
// settings over the same range share one columnar pass. Callers hold f.mu
// for reading.
func (f *Framework) trajAggregatesLocked(tr *obs.Trace, s *traj.Snapshot, from, to int, eps float64) ([]traj.Aggregates, error) {
	if f.qcache == nil {
		sp := tr.Start(obs.StageColumnarScan)
		aggs, err := s.AggregateRange(from, to, eps)
		sp.End()
		return aggs, err
	}
	k := cacheKey{window: -1, class: classTraj, a: trajRangeKey(from, to), b: math.Float64bits(eps)}
	sp := tr.Start(obs.StageCacheProbe)
	v, ok := f.qcache.get(k)
	sp.End()
	if ok {
		if tv := v.(trajAggValue); tv.snap == s {
			return tv.aggs, nil
		}
	}
	sp = tr.Start(obs.StageColumnarScan)
	aggs, err := s.AggregateRange(from, to, eps)
	sp.End()
	if err != nil {
		return nil, err
	}
	f.qcache.put(k, trajAggValue{snap: s, aggs: aggs})
	return aggs, nil
}

// TrajRank is one row of a top-K trajectory ranking answer.
type TrajRank struct {
	ID    rules.ID
	Rule  rules.Rule
	Score float64
	Agg   traj.Aggregates
}

// TopKTrajectories ranks the rules qualifying in at least one window of
// [from, to] by the given trajectory measure over the columnar snapshot,
// returning the k best (score descending, rule id ascending on ties).
func (f *Framework) TopKTrajectories(from, to int, minSupp, minConf float64, m traj.Measure, k int) ([]TrajRank, error) {
	return f.TopKTrajectoriesTraced(nil, from, to, minSupp, minConf, m, k)
}

// TopKTrajectoriesTraced is TopKTrajectories with per-stage span recording.
func (f *Framework) TopKTrajectoriesTraced(tr *obs.Trace, from, to int, minSupp, minConf float64, m traj.Measure, k int) ([]TrajRank, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return nil, err
	}
	s, err := f.trajSnapshotLocked(tr)
	if err != nil {
		return nil, err
	}
	aggs, err := f.trajAggregatesLocked(tr, s, from, to, trajStabilityEps)
	if err != nil {
		return nil, err
	}
	sp := tr.Start(obs.StageColumnarScan)
	ranked, err := s.TopK(aggs, from, to, minSupp, minConf, m, k)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start(obs.StageMaterialize)
	defer sp.End()
	out := make([]TrajRank, len(ranked))
	for i, c := range ranked {
		r, ok := f.ruleDict.Rule(c.ID)
		if !ok {
			return nil, fmt.Errorf("tara: unknown rule id %d", c.ID)
		}
		out[i] = TrajRank{ID: c.ID, Rule: r, Score: c.Score, Agg: c.Agg}
	}
	return out, nil
}

// TrajNeighbor is one row of a trajectory similarity answer.
type TrajNeighbor struct {
	ID       rules.ID
	Rule     rules.Rule
	Distance float64
}

// SimilarTrajectories returns the k rules whose support series over
// [from, to] is nearest to the reference profile (one value per window of
// the range), distance ascending. minSupp/minConf of zero mean "every rule
// archived in the range"; nonzero thresholds restrict the candidate set and
// must meet the generation thresholds, like any other setting. pruned
// reports how many candidates the envelope lower bound skipped without a
// full distance computation.
func (f *Framework) SimilarTrajectories(from, to int, ref []float64, metric traj.Metric, minSupp, minConf float64, k int) ([]TrajNeighbor, int, error) {
	return f.SimilarTrajectoriesTraced(nil, from, to, ref, metric, minSupp, minConf, k)
}

// SimilarTrajectoriesTraced is SimilarTrajectories with span recording.
func (f *Framework) SimilarTrajectoriesTraced(tr *obs.Trace, from, to int, ref []float64, metric traj.Metric, minSupp, minConf float64, k int) ([]TrajNeighbor, int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if minSupp != 0 || minConf != 0 {
		if err := f.checkGenThresholds(minSupp, minConf); err != nil {
			return nil, 0, err
		}
	}
	s, err := f.trajSnapshotLocked(tr)
	if err != nil {
		return nil, 0, err
	}
	sp := tr.Start(obs.StageColumnarScan)
	near, pruned, err := s.Similar(from, to, ref, metric, minSupp, minConf, k)
	sp.End()
	if err != nil {
		return nil, 0, err
	}
	sp = tr.Start(obs.StageMaterialize)
	defer sp.End()
	out := make([]TrajNeighbor, len(near))
	for i, n := range near {
		r, ok := f.ruleDict.Rule(n.ID)
		if !ok {
			return nil, 0, fmt.Errorf("tara: unknown rule id %d", n.ID)
		}
		out[i] = TrajNeighbor{ID: n.ID, Rule: r, Distance: n.Distance}
	}
	return out, pruned, nil
}

// TrajEmergent is one row of an emergence answer: a rule that newly crossed
// the threshold in the range's last window.
type TrajEmergent struct {
	ID         rules.ID
	Rule       rules.Rule
	Support    float64
	Confidence float64
}

// EmergingRules returns the rules qualifying in window `to` but in no
// earlier window of [from, to] — the signal-detection question. to == -1
// selects the latest window. Results are ordered support descending.
func (f *Framework) EmergingRules(from, to int, minSupp, minConf float64) ([]TrajEmergent, error) {
	return f.EmergingRulesTraced(nil, from, to, minSupp, minConf)
}

// EmergingRulesTraced is EmergingRules with span recording.
func (f *Framework) EmergingRulesTraced(tr *obs.Trace, from, to int, minSupp, minConf float64) ([]TrajEmergent, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.checkGenThresholds(minSupp, minConf); err != nil {
		return nil, err
	}
	if to == -1 {
		to = len(f.windows) - 1
	}
	s, err := f.trajSnapshotLocked(tr)
	if err != nil {
		return nil, err
	}
	sp := tr.Start(obs.StageColumnarScan)
	em, err := s.Emerging(from, to, minSupp, minConf)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start(obs.StageMaterialize)
	defer sp.End()
	out := make([]TrajEmergent, len(em))
	for i, e := range em {
		r, ok := f.ruleDict.Rule(e.ID)
		if !ok {
			return nil, fmt.Errorf("tara: unknown rule id %d", e.ID)
		}
		out[i] = TrajEmergent{ID: e.ID, Rule: r, Support: e.Support, Confidence: e.Confidence}
	}
	return out, nil
}

// TrajStats is a point-in-time view of the columnar trajectory snapshot,
// surfaced on /metrics.
type TrajStats struct {
	// Built reports whether a snapshot currently exists.
	Built bool `json:"built"`
	// Generation is the KB generation the snapshot was built from.
	Generation uint64 `json:"generation"`
	Windows    int    `json:"windows"`
	Rules      int    `json:"rules"`
	// Entries is the number of (rule, window) records decoded at build.
	Entries int `json:"entries"`
	// MemBytes is the snapshot's estimated resident size.
	MemBytes int `json:"memBytes"`
	// Rebuilds counts snapshot builds over the framework's lifetime.
	Rebuilds uint64 `json:"rebuilds"`
}

// TrajStats snapshots the columnar engine's state. It takes only trajMu and
// is safe concurrent with queries and appends.
func (f *Framework) TrajStats() TrajStats {
	f.trajMu.Lock()
	s := f.trajSnap
	f.trajMu.Unlock()
	st := TrajStats{Rebuilds: f.trajRebuilds.Load()}
	if s != nil {
		st.Built = true
		st.Generation = s.Gen
		st.Windows = s.Windows()
		st.Rules = s.Rules()
		st.Entries = s.Entries()
		st.MemBytes = s.MemBytes()
	}
	return st
}
