package tara

import (
	"math"
	"sync"
	"testing"

	"tara/internal/itemset"
	"tara/internal/rules"
	"tara/internal/traj"
)

// trajCfg qualifies every generated rule for the trajectory classes.
func trajCfg() Config {
	return Config{GenMinSupport: 0.01, GenMinConf: 0.05, MaxItemsetLen: 3}
}

// disjointRules fabricates rules over item ids far above any mined
// vocabulary, so appending them never touches a pre-existing rule id.
func disjointRules(numRules int, n uint32, seed int64) []rules.WithStats {
	out := syntheticRules(numRules, n, seed)
	for i := range out {
		out[i].Rule.Ant = itemset.New(uint32(100000 + 2*i))
		out[i].Rule.Cons = itemset.New(uint32(100001 + 2*i))
	}
	return out
}

// TestTrajSnapshotReuseAndRebuild pins the snapshot lifecycle: one build
// serves every trajectory query of a generation, and an append discards it
// wholesale on the next query.
func TestTrajSnapshotReuseAndRebuild(t *testing.T) {
	f := build(t, trajCfg())
	if st := f.TrajStats(); st.Built || st.Rebuilds != 0 {
		t.Fatalf("snapshot exists before any trajectory query: %+v", st)
	}
	last := f.Windows() - 1
	if _, err := f.TopKTrajectories(0, last, 0.01, 0.05, traj.ByStability, 5); err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, f.Windows())
	if _, _, err := f.SimilarTrajectories(0, last, ref, traj.Euclidean, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.EmergingRules(0, -1, 0.01, 0.05); err != nil {
		t.Fatal(err)
	}
	st := f.TrajStats()
	if !st.Built || st.Rebuilds != 1 {
		t.Fatalf("three queries of one generation should share one build: %+v", st)
	}
	if st.Windows != f.Windows() {
		t.Fatalf("snapshot covers %d windows, framework has %d", st.Windows, f.Windows())
	}

	// Append a window; the next query must rebuild exactly once.
	w := syntheticWindow(f.Windows(), 500)
	if err := f.AppendRules(w, syntheticRules(20, 500, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.EmergingRules(0, -1, 0.01, 0.05); err != nil {
		t.Fatal(err)
	}
	st2 := f.TrajStats()
	if st2.Rebuilds != 2 || st2.Windows != f.Windows() || st2.Generation <= st.Generation {
		t.Fatalf("append did not force exactly one rebuild: before %+v after %+v", st, st2)
	}
}

// TestTopKTrajectoriesMatchesEvolution cross-checks the columnar ranking
// against the per-rule Trajectory decode path the explore API uses: every
// returned score must equal the rule's own Evolution/series recomputation.
func TestTopKTrajectoriesMatchesEvolution(t *testing.T) {
	f := build(t, trajCfg())
	last := f.Windows() - 1
	for _, m := range []traj.Measure{traj.ByStability, traj.ByDrift, traj.ByVolatility, traj.ByCoverage} {
		out, err := f.TopKTrajectories(0, last, 0.01, 0.05, m, 10)
		if err != nil {
			t.Fatalf("TopKTrajectories(%v): %v", m, err)
		}
		if len(out) == 0 {
			t.Fatalf("TopKTrajectories(%v) returned no rules", m)
		}
		for _, row := range out {
			tr, err := f.arch.Trajectory(row.ID, 0, last)
			if err != nil {
				t.Fatal(err)
			}
			cov, stab, sd := tr.Evolution(trajStabilityEps)
			s := tr.SupportSeries()
			var want float64
			switch m {
			case traj.ByStability:
				want = stab
			case traj.ByDrift:
				want = s[len(s)-1] - s[0]
			case traj.ByVolatility:
				want = sd
			case traj.ByCoverage:
				want = cov
			}
			if row.Score != want {
				t.Fatalf("measure %v rule %d: columnar score %v, per-rule decode %v", m, row.ID, row.Score, want)
			}
		}
		// Scores must be non-increasing.
		for i := 1; i < len(out); i++ {
			if out[i].Score > out[i-1].Score {
				t.Fatalf("measure %v: scores not descending at row %d: %v > %v", m, i, out[i].Score, out[i-1].Score)
			}
		}
	}
}

// TestTrajMappedMatchesHeapNoPromotion runs all three trajectory classes on
// a memory-mapped reopening of the same knowledge base: answers must be
// identical to the heap framework's, and the archive must stay mapped (the
// columnar build decodes views, never promotes).
func TestTrajMappedMatchesHeapNoPromotion(t *testing.T) {
	hf := build(t, trajCfg())
	mf := openMapped(t, saveMapped(t, hf))
	if !mf.arch.Mapped() {
		t.Fatal("reopened framework is not mapped")
	}
	last := hf.Windows() - 1
	ref := make([]float64, hf.Windows())
	for i := range ref {
		ref[i] = 0.02
	}

	ht, err := hf.TopKTrajectories(0, last, 0.01, 0.05, traj.ByDrift, 8)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := mf.TopKTrajectories(0, last, 0.01, 0.05, traj.ByDrift, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ht) != len(mt) {
		t.Fatalf("topk: heap %d rows, mapped %d", len(ht), len(mt))
	}
	for i := range ht {
		if ht[i].ID != mt[i].ID || ht[i].Score != mt[i].Score || ht[i].Agg != mt[i].Agg {
			t.Fatalf("topk row %d diverges: heap %+v mapped %+v", i, ht[i], mt[i])
		}
	}

	hs, _, err := hf.SimilarTrajectories(0, last, ref, traj.MaxNorm, 0, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err := mf.SimilarTrajectories(0, last, ref, traj.MaxNorm, 0, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != len(ms) {
		t.Fatalf("similar: heap %d rows, mapped %d", len(hs), len(ms))
	}
	for i := range hs {
		if hs[i].ID != ms[i].ID || hs[i].Distance != ms[i].Distance {
			t.Fatalf("similar row %d diverges: heap %+v mapped %+v", i, hs[i], ms[i])
		}
	}

	he, err := hf.EmergingRules(0, -1, 0.01, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	me, err := mf.EmergingRules(0, -1, 0.01, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(he) != len(me) {
		t.Fatalf("emerging: heap %d rows, mapped %d", len(he), len(me))
	}
	for i := range he {
		if he[i].ID != me[i].ID || he[i].Support != me[i].Support || he[i].Confidence != me[i].Confidence {
			t.Fatalf("emerging row %d diverges: heap %+v mapped %+v", i, he[i], me[i])
		}
	}

	if !mf.arch.Mapped() {
		t.Fatal("trajectory queries promoted the mapped archive to heap")
	}
}

// TestTrajThresholdPolicy pins the generation-threshold rules: topk and
// emerging always enforce them; similar only when a nonzero threshold is
// given (0,0 means "every archived rule competes").
func TestTrajThresholdPolicy(t *testing.T) {
	f := build(t, trajCfg())
	last := f.Windows() - 1
	ref := make([]float64, f.Windows())
	if _, err := f.TopKTrajectories(0, last, 0.001, 0.05, traj.ByStability, 5); err == nil {
		t.Error("topk below generation minsupp accepted")
	}
	if _, err := f.EmergingRules(0, -1, 0.01, 0.001); err == nil {
		t.Error("emerging below generation minconf accepted")
	}
	if _, _, err := f.SimilarTrajectories(0, last, ref, traj.Euclidean, 0, 0, 5); err != nil {
		t.Errorf("similar with zero thresholds rejected: %v", err)
	}
	if _, _, err := f.SimilarTrajectories(0, last, ref, traj.Euclidean, 0.001, 0.05, 5); err == nil {
		t.Error("similar with nonzero below-generation minsupp accepted")
	}
}

// TestTrajAggregateCacheAcrossGenerations asserts the memoized aggregate
// matrix cannot serve a stale generation: after an append changes window
// count, a same-range query reflects the new snapshot.
func TestTrajAggregateCacheAcrossGenerations(t *testing.T) {
	f := build(t, trajCfg())
	last := f.Windows() - 1
	before, err := f.TopKTrajectories(0, last, 0.01, 0.05, traj.ByCoverage, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// New window with a disjoint synthetic rule set: every pre-existing
	// rule's coverage over [0, last+1] shrinks by the factor (last+1)/(last+2).
	w := syntheticWindow(f.Windows(), 800)
	if err := f.AppendRules(w, disjointRules(10, 800, 3)); err != nil {
		t.Fatal(err)
	}
	after, err := f.TopKTrajectories(0, last+1, 0.01, 0.05, traj.ByCoverage, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cov := make(map[uint32]float64, len(after))
	for _, r := range after {
		cov[uint32(r.ID)] = r.Score
	}
	shrink := float64(last+1) / float64(last+2)
	for _, r := range before {
		got, ok := cov[uint32(r.ID)]
		if !ok {
			continue // fell below the top-1000 cut; irrelevant here
		}
		want := r.Score * shrink
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("rule %d coverage after append: %v, want %v (stale aggregate matrix?)", r.ID, got, want)
		}
	}
	// The same-range query as before the append must also recompute cleanly.
	again, err := f.TopKTrajectories(0, last, 0.01, 0.05, traj.ByCoverage, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(before) {
		t.Fatalf("same-range topk changed cardinality after append: %d vs %d", len(again), len(before))
	}
	for i := range again {
		if again[i].ID != before[i].ID || again[i].Score != before[i].Score {
			t.Fatalf("same-range topk row %d changed after append: %+v vs %+v", i, again[i], before[i])
		}
	}
}

// TestTrajConcurrentQueriesAndAppend hammers the three trajectory classes
// from parallel readers while windows append — the lock-order and
// snapshot-expiry proof to run under -race.
func TestTrajConcurrentQueriesAndAppend(t *testing.T) {
	f := build(t, trajCfg())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				last := f.Windows() - 1
				switch (g + i) % 3 {
				case 0:
					if _, err := f.TopKTrajectories(0, last, 0.01, 0.05, traj.ByStability, 5); err != nil {
						t.Errorf("topk: %v", err)
						return
					}
				case 1:
					ref := make([]float64, last+1)
					if _, _, err := f.SimilarTrajectories(0, last, ref, traj.Euclidean, 0, 0, 5); err != nil {
						t.Errorf("similar: %v", err)
						return
					}
				default:
					if _, err := f.EmergingRules(0, -1, 0.01, 0.05); err != nil {
						t.Errorf("emerging: %v", err)
						return
					}
				}
			}
		}(g)
	}
	for i := 0; i < 6; i++ {
		w := syntheticWindow(f.Windows(), 400)
		if err := f.AppendRules(w, disjointRules(15, 400, int64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if st := f.TrajStats(); st.Rebuilds == 0 {
		t.Fatal("no snapshot builds recorded under concurrent load")
	}
}
