package tara

// The pipelined parallel offline build.
//
// The paper's bargain is "pay offline, answer online for free": Figure 9
// shows preprocessing — per-window mining plus archive/EPS construction —
// dominating end-to-end cost. Mining is embarrassingly parallel across
// tumbling windows (each window sees only its own transactions), but the
// knowledge base itself is order-sensitive: rule ids are interned first-seen
// and the TAR Archive delta-encodes per-rule series in window order, so a
// free-for-all append would change every downstream byte. The pipeline
// therefore splits the work by its ordering needs:
//
//	mine pool (parallel)    — frequent itemsets + rule derivation per window
//	sequencer (ordered)     — rule-id interning, strictly in window order
//	EPS pool (parallel)     — per-window slice construction from interned ids
//	committer (ordered)     — archive append + index append + bookkeeping
//
// Determinism argument: rules.Generate emits each window's rules in a sorted
// canonical order, the sequencer interns those rules window-by-window in
// index order (so the dictionary assigns the exact ids the serial build
// would), and the committer appends archive records in the same (window,
// rule) order the serial build uses. Everything the knowledge base persists
// — dictionary order, archive bytes, window metadata — is therefore
// byte-identical to the serial build; the EPS slices are pure functions of
// (ids, stats) and come out identical too. TestParallelBuildByteIdentical
// proves it by comparing whole serialized knowledge bases.
//
// Cancellation: the first stage error (or a parent-context cancellation)
// cancels the pipeline context; every stage selects on it, the committer
// stops at a consistent window prefix, and Wait returns only after every
// goroutine has exited — no leaks, which the cancellation test checks under
// -race.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"tara/internal/eps"
	"tara/internal/txdb"
)

// Build-stage counter layout (Framework.BuildCounters): cumulative
// nanoseconds per pipeline stage plus committed-window and rule counts,
// accounted lock-free while workers run.
const (
	bcQueueWaitNs = iota
	bcMineNs
	bcRuleGenNs
	bcEPSNs
	bcArchiveNs
	bcCommitNs
	bcWindows
	bcRules
	numBuildCounters
)

var buildCounterNames = []string{
	"build_queue_wait_ns",
	"build_mine_ns",
	"build_rulegen_ns",
	"build_eps_ns",
	"build_archive_ns",
	"build_commit_ns",
	"build_windows",
	"build_rules",
}

// Compile-time guard: the name table and the index constants move together.
var _ = [1]struct{}{}[len(buildCounterNames)-numBuildCounters]

// BuildCounters returns a snapshot of the cumulative build-stage counters:
// per-stage nanoseconds (queue wait, mine, rulegen, eps, archive, commit)
// plus committed window and rule counts. Safe to call while a build is in
// flight; counters are updated as windows commit.
func (f *Framework) BuildCounters() map[string]int64 {
	return f.buildCtr.Snapshot()
}

// recordBuildTiming folds one committed window's timing into the build
// counters. Called with f.mu held (commitWindow), but the counters are
// atomic so readers never need the lock.
func (f *Framework) recordBuildTiming(t Timing) {
	f.buildCtr.AddDuration(bcQueueWaitNs, t.QueueWait)
	f.buildCtr.AddDuration(bcMineNs, t.Mine)
	f.buildCtr.AddDuration(bcRuleGenNs, t.RuleGen)
	f.buildCtr.AddDuration(bcEPSNs, t.IndexTime)
	f.buildCtr.AddDuration(bcArchiveNs, t.ArchiveTime)
	f.buildCtr.AddDuration(bcCommitNs, t.Commit)
	f.buildCtr.Add(bcWindows, 1)
	f.buildCtr.Add(bcRules, int64(t.NumRules))
}

// buildGroup is a minimal errgroup: it runs stage goroutines, records the
// first error, and cancels the shared context so every other stage unwinds.
// (Hand-rolled because the module is stdlib-only.)
type buildGroup struct {
	wg     sync.WaitGroup
	cancel context.CancelFunc
	mu     sync.Mutex
	err    error
}

func (g *buildGroup) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
			g.cancel()
		}
	}()
}

// Wait blocks until every stage goroutine has returned, then yields the
// first recorded error.
func (g *buildGroup) Wait() error {
	g.wg.Wait()
	g.cancel()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// appendWindowsPipeline runs the four-stage build over ws with
// cfg.parallelism() workers in each parallel pool. See the package comment
// at the top of this file for the design and determinism argument.
func (f *Framework) appendWindowsPipeline(parent context.Context, ws []txdb.Window) error {
	workers := f.cfg.parallelism()
	n := len(ws)
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	g := &buildGroup{cancel: cancel}

	// Per-window hand-off slots. A slot is written by exactly one producer
	// goroutine and read only after its ready channel closes, so the close
	// provides the happens-before edge; no slot needs a lock.
	type minedSlot struct {
		m       mined
		ids     []eps.IDStats
		slice   *eps.Slice
		minedAt time.Time // when mining finished; queue wait is measured from here
	}
	slots := make([]minedSlot, n)
	minedReady := make([]chan struct{}, n) // closed by the mine pool
	sliceReady := make([]chan struct{}, n) // closed by the EPS pool
	for i := range minedReady {
		minedReady[i] = make(chan struct{})
		sliceReady[i] = make(chan struct{})
	}

	// Stage 1 — mine pool: bounded workers pull window indices and run the
	// Association Generator. Window order does not matter here; results park
	// in their slot until the sequencer reaches them.
	mineCh := make(chan int)
	g.Go(func() error {
		defer close(mineCh)
		for i := range ws {
			select {
			case mineCh <- i:
			case <-ctx.Done():
				return nil // the cancelling stage's error wins
			}
		}
		return nil
	})
	for w := 0; w < workers; w++ {
		g.Go(func() error {
			for i := range mineCh {
				m, err := f.mineWindow(ws[i])
				if err != nil {
					return err
				}
				slots[i].m = m
				slots[i].minedAt = time.Now()
				close(minedReady[i])
				if ctx.Err() != nil {
					return nil
				}
			}
			return nil
		})
	}

	// Stage 2 — sequencer: interns rule ids strictly in window order, the
	// step that pins dictionary ids (and hence every archive byte) to the
	// serial build's assignment. Interning is cheap relative to mining, so
	// one ordered goroutine does not become the bottleneck.
	epsCh := make(chan int, workers)
	g.Go(func() error {
		defer close(epsCh)
		for i := 0; i < n; i++ {
			select {
			case <-minedReady[i]:
			case <-ctx.Done():
				return nil
			}
			s := &slots[i]
			s.m.timing.QueueWait = time.Since(s.minedAt)
			start := time.Now()
			s.ids = f.internRules(s.m.ruleSet)
			s.m.timing.ArchiveTime = time.Since(start)
			select {
			case epsCh <- i:
			case <-ctx.Done():
				return nil
			}
		}
		return nil
	})

	// Stage 3 — EPS pool: slice construction is the second-heaviest phase
	// (Figure 9) and depends only on the window's interned ids, so it runs
	// in parallel as soon as a window clears the sequencer.
	for w := 0; w < workers; w++ {
		g.Go(func() error {
			for i := range epsCh {
				s := &slots[i]
				start := time.Now()
				slice, err := f.buildSlice(s.m.window, s.ids)
				if err != nil {
					return err
				}
				s.m.timing.IndexTime = time.Since(start)
				s.slice = slice
				close(sliceReady[i])
				if ctx.Err() != nil {
					return nil
				}
			}
			return nil
		})
	}

	// Stage 4 — committer: appends archive records and the EPS slice in
	// window order under the framework write lock, so concurrent queries
	// observe whole windows and the archive's delta encoding sees windows
	// strictly sequentially.
	committed := 0
	g.Go(func() error {
		for i := 0; i < n; i++ {
			select {
			case <-sliceReady[i]:
			case <-ctx.Done():
				return nil
			}
			s := &slots[i]
			if err := f.commitWindow(s.m, s.ids, s.slice); err != nil {
				return err
			}
			committed++
		}
		return nil
	})

	if err := g.Wait(); err != nil {
		return err
	}
	if committed != n {
		// No stage failed, so the abort came from the parent context.
		if err := parent.Err(); err != nil {
			return err
		}
		return fmt.Errorf("tara: parallel build stopped after %d/%d windows", committed, n)
	}
	return nil
}
