package tara

import (
	"math/rand"
	"testing"

	"tara/internal/txdb"
)

// periodicDB plants a "weekend" association: the pair (W1, W2) co-occurs
// heavily in every third window and never otherwise; a steady pair (S1, S2)
// holds everywhere.
func periodicDB(windows, perWindow int) *txdb.DB {
	r := rand.New(rand.NewSource(77))
	db := txdb.NewDB()
	t := int64(0)
	for w := 0; w < windows; w++ {
		weekend := w%3 == 2
		for i := 0; i < perWindow; i++ {
			var names []string
			names = append(names, "S1", "S2")
			if weekend && r.Float64() < 0.8 {
				names = append(names, "W1", "W2")
			}
			names = append(names, "f"+string(rune('a'+r.Intn(8))))
			db.Add(t, names...)
			t++
		}
	}
	return db
}

func buildPeriodic(t *testing.T) *Framework {
	t.Helper()
	db := periodicDB(9, 100)
	f, err := Build(db, 100, 0, Config{GenMinSupport: 0.05, GenMinConf: 0.1, MaxItemsetLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	if f.Windows() != 9 {
		t.Fatalf("windows = %d", f.Windows())
	}
	return f
}

func TestFindPeriodicDetectsWeekendRule(t *testing.T) {
	f := buildPeriodic(t)
	out, err := f.FindPeriodic(0, 8, 0.3, 0.5, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no periodic summaries")
	}
	if out[0].Score != 1 {
		t.Errorf("top score = %g, want 1 (perfectly periodic rules exist)", out[0].Score)
	}
	// The W1/W2 pair must be among the perfectly periodic summaries (rules
	// involving W1 with steady items are equally periodic — W1 only exists
	// on weekends — so exact rank is tie-broken by id).
	w1, _ := f.ItemDict().Lookup("W1")
	w2, _ := f.ItemDict().Lookup("W2")
	found := false
	for _, s := range out {
		items := s.Rule.Items()
		if items.Contains(w1) && items.Contains(w2) {
			found = true
			if s.BestPhase != 2 {
				t.Errorf("W1/W2 BestPhase = %d, want 2", s.BestPhase)
			}
			if s.Score != 1 {
				t.Errorf("W1/W2 Score = %g, want 1", s.Score)
			}
			if s.PhasePresence[2] != 1 || s.PhasePresence[0] != 0 || s.PhasePresence[1] != 0 {
				t.Errorf("W1/W2 PhasePresence = %v", s.PhasePresence)
			}
			break
		}
	}
	if !found {
		t.Fatal("W1/W2 rule not among top periodic summaries")
	}
}

func TestFindPeriodicSteadyRuleScoresZero(t *testing.T) {
	f := buildPeriodic(t)
	out, err := f.FindPeriodic(0, 8, 0.3, 0.5, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := f.ItemDict().Lookup("S1")
	s2, _ := f.ItemDict().Lookup("S2")
	found := false
	for _, s := range out {
		items := s.Rule.Items()
		if items.Contains(s1) && items.Contains(s2) && len(items) == 2 {
			found = true
			if s.Score != 0 {
				t.Errorf("steady rule score = %g, want 0", s.Score)
			}
		}
	}
	if !found {
		t.Fatal("steady rule not among candidates")
	}
}

func TestFindPeriodicWrongPeriodScoresLower(t *testing.T) {
	f := buildPeriodic(t)
	right, err := f.FindPeriodic(0, 8, 0.3, 0.5, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Folding at period 2 cannot concentrate a period-3 signal: the top
	// score must drop.
	wrong, err := f.FindPeriodic(0, 8, 0.3, 0.5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(right) == 0 || len(wrong) == 0 {
		t.Fatal("missing summaries")
	}
	if wrong[0].Score >= right[0].Score {
		t.Errorf("wrong-period score %g >= right-period score %g", wrong[0].Score, right[0].Score)
	}
}

func TestFindPeriodicValidation(t *testing.T) {
	f := buildPeriodic(t)
	if _, err := f.FindPeriodic(0, 8, 0.3, 0.5, 1, 5); err == nil {
		t.Error("period 1 accepted")
	}
	if _, err := f.FindPeriodic(0, 8, 0.3, 0.5, 10, 5); err == nil {
		t.Error("period beyond range accepted")
	}
	if _, err := f.FindPeriodic(0, 99, 0.3, 0.5, 3, 5); err == nil {
		t.Error("bad range accepted")
	}
	if _, err := f.FindPeriodic(0, 8, 0.0001, 0.5, 3, 5); err == nil {
		t.Error("below-generation threshold accepted")
	}
}
