package tara

import (
	"container/list"
	"sync"
	"sync/atomic"

	"tara/internal/rules"
)

// The online query cache. Lemma 4 guarantees that every (minsupp, minconf)
// setting inside a time-aware stable region yields exactly the same ruleset,
// so a query result is fully determined by (window, canonical cut location,
// query class) — the cut location being the per-axis grid indexes that
// eps.Slice.CutIndex computes by binary search. The cache memoizes answers
// under that canonical key in a bounded, sharded LRU: canonicalization makes
// it lossless, sharding keeps concurrent readers off one mutex, and the
// bound keeps a daemon's memory flat under adversarial request streams.
//
// Cached values are immutable once stored and handed out as shared,
// read-only slices — a warm Mine hit returns the cached []RuleView itself,
// which is what makes the warm path allocation-free. Query paths therefore
// never mutate an answer in place (MineFiltered filters into a fresh slice);
// callers needing a private copy use MineAppend with their own buffer.
// Entries are invalidated per window when AppendWindow lands — windows are
// append-only and slices immutable, so this is defensive rather than
// load-bearing, but it makes the invariant "a cached entry always equals a
// fresh scan" locally checkable.

// queryClass enumerates the cached online query classes.
type queryClass uint8

const (
	classMine queryClass = iota
	classCount
	classRegion
	classDiff
	// classTraj memoizes trajectory aggregate matrices (traj.go). Its keys
	// use window -1 — outside any committed index, so invalidateWindow never
	// touches them; entries expire by snapshot-pointer comparison instead.
	classTraj
	numQueryClasses
)

// queryClassNames are the /metrics labels, indexed by queryClass.
var queryClassNames = [numQueryClasses]string{"mine", "count", "region", "diff", "traj"}

// cacheKey identifies one canonicalized query. a packs the request's cut
// grid indexes (support index high 32 bits, confidence index low 32); for
// diff queries b packs the second setting's cut, otherwise it is zero.
type cacheKey struct {
	window int32
	class  queryClass
	a, b   uint64
}

// cutKey packs a (support, confidence) cut-grid index pair.
func cutKey(si, ci int) uint64 { return uint64(uint32(si))<<32 | uint64(uint32(ci)) }

// diffValue is the cached payload of a Diff/Compare window.
type diffValue struct {
	onlyA, onlyB []rules.ID
}

const cacheShards = 16

// DefaultQueryCacheSize bounds the cache when Config.QueryCacheSize is zero.
const DefaultQueryCacheSize = 4096

type cacheEntry struct {
	key cacheKey
	val any
}

type cacheShard struct {
	mu    sync.Mutex
	lru   *list.List // front = most recent; values are *cacheEntry
	byKey map[cacheKey]*list.Element
}

// queryCache is the sharded LRU. Counters are atomics so CacheStats never
// contends with the query path beyond the shard mutexes.
type queryCache struct {
	shards      [cacheShards]cacheShard
	capPerShard int
	hits        [numQueryClasses]atomic.Uint64
	misses      [numQueryClasses]atomic.Uint64
	evictions   atomic.Uint64
}

func newQueryCache(size int) *queryCache {
	if size <= 0 {
		size = DefaultQueryCacheSize
	}
	per := (size + cacheShards - 1) / cacheShards
	if per < 1 {
		per = 1
	}
	c := &queryCache{capPerShard: per}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].byKey = make(map[cacheKey]*list.Element)
	}
	return c
}

// shardFor mixes the key fields so consecutive windows and cuts spread
// across shards.
func (c *queryCache) shardFor(k cacheKey) *cacheShard {
	h := uint64(k.window)*0x9E3779B97F4A7C15 + uint64(k.class)*0xBF58476D1CE4E5B9
	h ^= k.a * 0x94D049BB133111EB
	h ^= k.b*0xD6E8FEB86659FD93 + (h >> 29)
	return &c.shards[h%cacheShards]
}

// get returns the cached value for k and promotes it to most-recent.
func (c *queryCache) get(k cacheKey) (any, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	el, ok := sh.byKey[k]
	if ok {
		sh.lru.MoveToFront(el)
	}
	sh.mu.Unlock()
	if !ok {
		c.misses[k.class].Add(1)
		return nil, false
	}
	c.hits[k.class].Add(1)
	return el.Value.(*cacheEntry).val, true
}

// put stores v under k, evicting the shard's least-recent entry when full.
func (c *queryCache) put(k cacheKey, v any) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	if el, ok := sh.byKey[k]; ok {
		el.Value.(*cacheEntry).val = v
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		return
	}
	evicted := false
	if sh.lru.Len() >= c.capPerShard {
		back := sh.lru.Back()
		delete(sh.byKey, back.Value.(*cacheEntry).key)
		sh.lru.Remove(back)
		evicted = true
	}
	sh.byKey[k] = sh.lru.PushFront(&cacheEntry{key: k, val: v})
	sh.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// invalidateWindow drops every entry cached for window w.
func (c *queryCache) invalidateWindow(w int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; {
			next := el.Next()
			if e := el.Value.(*cacheEntry); e.key.window == int32(w) {
				delete(sh.byKey, e.key)
				sh.lru.Remove(el)
			}
			el = next
		}
		sh.mu.Unlock()
	}
}

// entries counts the currently cached results across shards.
func (c *queryCache) entries() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// CacheClassStats reports one query class's cache effectiveness.
type CacheClassStats struct {
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRatio float64 `json:"hitRatio"`
}

// CacheStats is a point-in-time snapshot of the online query cache, exposed
// by the daemon's /metrics endpoint.
type CacheStats struct {
	Enabled   bool                       `json:"enabled"`
	Entries   int                        `json:"entries"`
	Capacity  int                        `json:"capacity"`
	Hits      uint64                     `json:"hits"`
	Misses    uint64                     `json:"misses"`
	HitRatio  float64                    `json:"hitRatio"`
	Evictions uint64                     `json:"evictions"`
	Classes   map[string]CacheClassStats `json:"classes"`
}

func ratio(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// CacheStats snapshots the framework's query cache counters. It takes no
// framework lock and is safe to call concurrently with queries and appends.
func (f *Framework) CacheStats() CacheStats {
	if f.qcache == nil {
		return CacheStats{}
	}
	c := f.qcache
	s := CacheStats{
		Enabled:   true,
		Entries:   c.entries(),
		Capacity:  c.capPerShard * cacheShards,
		Evictions: c.evictions.Load(),
		Classes:   make(map[string]CacheClassStats, numQueryClasses),
	}
	for cl := queryClass(0); cl < numQueryClasses; cl++ {
		h, m := c.hits[cl].Load(), c.misses[cl].Load()
		s.Hits += h
		s.Misses += m
		s.Classes[queryClassNames[cl]] = CacheClassStats{Hits: h, Misses: m, HitRatio: ratio(h, m)}
	}
	s.HitRatio = ratio(s.Hits, s.Misses)
	return s
}
