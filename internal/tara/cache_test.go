package tara

import (
	"math/rand"
	"sync"
	"testing"

	"tara/internal/itemset"
	"tara/internal/rules"
	"tara/internal/txdb"
)

// syntheticWindow is a window shell for AppendRules: the transactions carry
// no items (the premined path never reads them), only the cardinality
// matters.
func syntheticWindow(index, n int) txdb.Window {
	return txdb.Window{
		Index:  index,
		Period: txdb.Period{Start: int64(index) * 1000, End: int64(index)*1000 + 999},
		Tx:     make([]txdb.Transaction, n),
	}
}

// syntheticRules fabricates numRules distinct rules with varied exact counts
// under n transactions.
func syntheticRules(numRules int, n uint32, seed int64) []rules.WithStats {
	r := rand.New(rand.NewSource(seed))
	out := make([]rules.WithStats, numRules)
	for i := range out {
		xy := uint32(1 + r.Intn(int(n)))
		x := xy + uint32(r.Intn(int(n-xy)+1))
		out[i] = rules.WithStats{
			Rule: rules.Rule{
				Ant:  itemset.New(uint32(10 + 2*i)),
				Cons: itemset.New(uint32(11 + 2*i)),
			},
			Stats: rules.Stats{CountXY: xy, CountX: x, CountY: x, N: n},
		}
	}
	return out
}

// The query-cache property: for any request point, the cached, canonicalized
// answer must be element-for-element identical to a cache-bypassing scan —
// Lemma 4 made executable. scanMine is that bypass: it collects through the
// retained reference scan and materializes outside the cache.
func scanMine(f *Framework, w int, minSupp, minConf float64) ([]RuleView, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	slice, err := f.index.Slice(w)
	if err != nil {
		return nil, err
	}
	return f.materializeViews(slice.ScanRules(minSupp, minConf), w)
}

// drawPoint picks a request point, on-grid with probability ~1/4 so cut
// boundaries are exercised.
func drawPoint(r *rand.Rand, f *Framework, w int) (float64, float64) {
	ms := f.cfg.GenMinSupport + r.Float64()*(1-f.cfg.GenMinSupport)
	mc := f.cfg.GenMinConf + r.Float64()*(1-f.cfg.GenMinConf)
	if r.Intn(4) == 0 {
		f.mu.RLock()
		slice, err := f.index.Slice(w)
		if err == nil && slice.NumLocations() > 0 {
			locs := slice.Locations()
			l := locs[r.Intn(len(locs))]
			if l.Supp >= f.cfg.GenMinSupport && l.Conf >= f.cfg.GenMinConf {
				ms, mc = l.Supp, l.Conf
			}
		}
		f.mu.RUnlock()
	}
	return ms, mc
}

// verifyPoint reports divergence with t.Errorf (not Fatalf) so it is safe to
// call from reader goroutines in the concurrency test.
func verifyPoint(t *testing.T, f *Framework, w int, ms, mc float64) {
	t.Helper()
	got, err := f.Mine(w, ms, mc)
	if err != nil {
		t.Errorf("Mine(%d,%g,%g): %v", w, ms, mc, err)
		return
	}
	want, err := scanMine(f, w, ms, mc)
	if err != nil {
		t.Errorf("scanMine(%d,%g,%g): %v", w, ms, mc, err)
		return
	}
	if len(got) != len(want) {
		t.Errorf("Mine(%d,%g,%g) = %d views, scan %d", w, ms, mc, len(got), len(want))
		return
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Stats != want[i].Stats {
			t.Errorf("Mine(%d,%g,%g)[%d] = {%d %v}, scan {%d %v}",
				w, ms, mc, i, got[i].ID, got[i].Stats, want[i].ID, want[i].Stats)
			return
		}
	}
	n, err := f.Count(w, ms, mc)
	if err != nil {
		t.Errorf("Count(%d,%g,%g): %v", w, ms, mc, err)
		return
	}
	if n != len(want) {
		t.Errorf("Count(%d,%g,%g) = %d, scan %d", w, ms, mc, n, len(want))
	}
}

func TestPropertyCachedQueriesMatchScan(t *testing.T) {
	cfg := defaultCfg()
	cfg.QueryCacheSize = 128 // small enough that evictions happen too
	f := build(t, cfg)
	r := rand.New(rand.NewSource(91))
	for w := 0; w < f.Windows(); w++ {
		for i := 0; i < 1000; i++ {
			ms, mc := drawPoint(r, f, w)
			verifyPoint(t, f, w, ms, mc)
			if t.Failed() {
				t.FailNow()
			}
			if i%7 == 0 {
				// Mine hands out the shared cached slice; MineFiltered must
				// filter into a fresh slice, never compact the shared answer
				// in place. The re-verify catches any such corruption.
				if _, err := f.MineFiltered(w, ms, mc, 1.1); err != nil {
					t.Fatal(err)
				}
				verifyPoint(t, f, w, ms, mc)
			}
			if i%11 == 0 {
				reg, err := f.Recommend(w, ms, mc)
				if err != nil {
					t.Fatal(err)
				}
				f.mu.RLock()
				slice, _ := f.index.Slice(w)
				fresh := slice.Region(ms, mc)
				f.mu.RUnlock()
				if reg != fresh {
					t.Fatalf("Recommend(%d,%g,%g) = %+v, fresh %+v", w, ms, mc, reg, fresh)
				}
			}
		}
	}
	st := f.CacheStats()
	if !st.Enabled || st.Hits == 0 {
		t.Fatalf("cache never hit: %+v", st)
	}
	if st.Entries > st.Capacity {
		t.Fatalf("cache over capacity: %d > %d", st.Entries, st.Capacity)
	}
	if mine := st.Classes["mine"]; mine.Hits == 0 || mine.HitRatio <= 0 {
		t.Fatalf("mine class never hit: %+v", mine)
	}
}

func TestPropertyCompareMatchesScan(t *testing.T) {
	f := build(t, defaultCfg())
	r := rand.New(rand.NewSource(92))
	windows := []int{0, 1, 2, 3}
	for i := 0; i < 300; i++ {
		sa, ca := drawPoint(r, f, 0)
		sb, cb := drawPoint(r, f, 0)
		diffs, err := f.Compare(windows, sa, ca, sb, cb)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diffs {
			f.mu.RLock()
			slice, _ := f.index.Slice(d.Window)
			wantA, wantB := slice.Diff(sa, ca, sb, cb)
			f.mu.RUnlock()
			if len(d.OnlyA) != len(wantA) || len(d.OnlyB) != len(wantB) {
				t.Fatalf("Compare window %d sizes (%d,%d), scan (%d,%d)",
					d.Window, len(d.OnlyA), len(d.OnlyB), len(wantA), len(wantB))
			}
			for j := range wantA {
				if d.OnlyA[j] != wantA[j] {
					t.Fatalf("Compare window %d onlyA diverges at %d", d.Window, j)
				}
			}
			for j := range wantB {
				if d.OnlyB[j] != wantB[j] {
					t.Fatalf("Compare window %d onlyB diverges at %d", d.Window, j)
				}
			}
		}
	}
	if st := f.CacheStats(); st.Classes["diff"].Hits == 0 {
		t.Fatalf("diff class never hit: %+v", st)
	}
}

// TestPropertyCacheUnderAppend runs cached queries concurrently with
// AppendWindow calls and verifies every answer against the bypassing scan —
// under -race this also proves the cache adds no new data races.
func TestPropertyCacheUnderAppend(t *testing.T) {
	cfg := defaultCfg()
	db := testDB(7, 900, 30)
	windows, err := db.PartitionByCount(6)
	if err != nil {
		t.Fatal(err)
	}
	f := New(db.Dict, cfg)
	if err := f.AppendWindow(windows[0]); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for !t.Failed() {
				select {
				case <-done:
					return
				default:
				}
				w := r.Intn(f.Windows())
				ms, mc := drawPoint(r, f, w)
				verifyPoint(t, f, w, ms, mc)
			}
		}(100 + int64(g))
	}
	for _, w := range windows[1:] {
		if err := f.AppendWindow(w); err != nil {
			t.Error(err)
			break
		}
	}
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}
	// After the interleaved appends settle, a full verification sweep over
	// every window must still agree with the bypassing scan.
	r := rand.New(rand.NewSource(93))
	for w := 0; w < f.Windows(); w++ {
		for i := 0; i < 200; i++ {
			ms, mc := drawPoint(r, f, w)
			verifyPoint(t, f, w, ms, mc)
		}
	}
}

// TestCacheDisabled: a negative QueryCacheSize must bypass memoization
// entirely while answering identically.
func TestCacheDisabled(t *testing.T) {
	cfg := defaultCfg()
	cfg.QueryCacheSize = -1
	f := build(t, cfg)
	r := rand.New(rand.NewSource(94))
	for i := 0; i < 50; i++ {
		ms, mc := drawPoint(r, f, 0)
		verifyPoint(t, f, 0, ms, mc)
	}
	if st := f.CacheStats(); st.Enabled || st.Hits+st.Misses != 0 {
		t.Fatalf("disabled cache recorded traffic: %+v", st)
	}
}

// TestCacheInvalidationOnAppend checks the per-window invalidation hook:
// entries for a window index are dropped when that window lands.
func TestCacheInvalidationOnAppend(t *testing.T) {
	c := newQueryCache(64)
	k0 := cacheKey{window: 0, class: classCount, a: cutKey(1, 2)}
	k1 := cacheKey{window: 1, class: classCount, a: cutKey(1, 2)}
	c.put(k0, 7)
	c.put(k1, 9)
	c.invalidateWindow(1)
	if _, ok := c.get(k1); ok {
		t.Fatal("window 1 entry survived invalidation")
	}
	if v, ok := c.get(k0); !ok || v.(int) != 7 {
		t.Fatal("window 0 entry lost by window-1 invalidation")
	}
}

// TestCacheEviction: the LRU bound holds and evictions are counted.
func TestCacheEviction(t *testing.T) {
	c := newQueryCache(cacheShards) // one entry per shard
	for i := 0; i < 10*cacheShards; i++ {
		c.put(cacheKey{window: int32(i), class: classMine, a: cutKey(i, i)}, i)
	}
	if n := c.entries(); n > cacheShards {
		t.Fatalf("cache holds %d entries, cap %d", n, cacheShards)
	}
	if c.evictions.Load() == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestAppendRules(t *testing.T) {
	f := New(txdb.NewDict(), Config{})
	w := syntheticWindow(0, 1000)
	rs := syntheticRules(50, 1000, 0)
	if err := f.AppendRules(w, rs); err != nil {
		t.Fatal(err)
	}
	if f.Windows() != 1 {
		t.Fatalf("Windows() = %d, want 1", f.Windows())
	}
	n, err := f.Count(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rs) {
		t.Fatalf("Count = %d, want %d", n, len(rs))
	}
	// Window index mismatch must be rejected, like AppendWindow.
	if err := f.AppendRules(syntheticWindow(5, 10), nil); err == nil {
		t.Fatal("out-of-order AppendRules accepted")
	}
}
