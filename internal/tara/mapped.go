package tara

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"tara/internal/archive"
	"tara/internal/eps"
	"tara/internal/kb"
	"tara/internal/mining"
	"tara/internal/obs"
	"tara/internal/rules"
	"tara/internal/txdb"
)

// Mapped knowledge-base persistence: the TARAKB2 container (internal/kb)
// holds the knowledge base in a query-ready layout, so Open serves cold
// lookups straight off the mapped file instead of re-deriving the EPS index
// from the archive the way Load does.
//
// Section contents (container framing is internal/kb's; integers are
// uvarints unless noted):
//
//	meta:     genSupp, genConf (float64 bits, little-endian, 8 bytes each),
//	          zigzag(maxLen), contentIndex (0/1), miner name (len-prefixed)
//	items:    count, then len-prefixed names in id order
//	rulekeys: count (uint32 LE), count+1 fence offsets (uint32 LE),
//	          concatenated key bytes — fences give O(1) access to any key,
//	          which is what lets the rule dictionary parse keys lazily
//	windows:  count, then per window zigzag(start), zigzag(end), N
//	archive:  the archive.AppendMapped block
//	eps:      slice count, then per window blockLen + eps.(*Slice).AppendMapped
//	          block — persisting the index is the point: Load rebuilds it
//	          from the archive (sorting, deduplication, postings encoding per
//	          window), Open just validates and aliases it
const (
	kbSecMeta     kb.SectionID = 1
	kbSecItems    kb.SectionID = 2
	kbSecRuleKeys kb.SectionID = 3
	kbSecWindows  kb.SectionID = 4
	kbSecArchive  kb.SectionID = 5
	kbSecEPS      kb.SectionID = 6
)

// SaveMapped serializes the knowledge base in the mapped (TARAKB2) container
// format. The snapshot is assembled under the read lock and written to w
// after the lock is released, so a slow destination never blocks appends.
func (f *Framework) SaveMapped(w io.Writer) error {
	b, err := f.buildContainer()
	if err != nil {
		return err
	}
	_, err = b.WriteTo(w)
	return err
}

// buildContainer encodes every section under the read lock.
func (f *Framework) buildContainer() (*kb.Builder, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()

	var meta []byte
	var f8 [8]byte
	binary.LittleEndian.PutUint64(f8[:], math.Float64bits(f.cfg.GenMinSupport))
	meta = append(meta, f8[:]...)
	binary.LittleEndian.PutUint64(f8[:], math.Float64bits(f.cfg.GenMinConf))
	meta = append(meta, f8[:]...)
	meta = binary.AppendUvarint(meta, zigzag64(int64(f.cfg.MaxItemsetLen)))
	ci := uint64(0)
	if f.cfg.ContentIndex {
		ci = 1
	}
	meta = binary.AppendUvarint(meta, ci)
	miner := f.cfg.miner().Name()
	meta = binary.AppendUvarint(meta, uint64(len(miner)))
	meta = append(meta, miner...)

	var items []byte
	items = binary.AppendUvarint(items, uint64(f.itemDict.Len()))
	for i := 0; i < f.itemDict.Len(); i++ {
		name := f.itemDict.Name(txdb.Item(i))
		items = binary.AppendUvarint(items, uint64(len(name)))
		items = append(items, name...)
	}

	numRules := f.ruleDict.Len()
	fences := make([]uint32, 0, numRules+1)
	var blob []byte
	for i := 0; i < numRules; i++ {
		fences = append(fences, uint32(len(blob)))
		r, ok := f.ruleDict.Rule(rules.ID(i))
		if !ok {
			return nil, fmt.Errorf("tara: rule %d missing from dictionary", i)
		}
		blob = append(blob, r.Key()...)
		if len(blob) > math.MaxUint32 {
			return nil, fmt.Errorf("tara: rule keys exceed container limit")
		}
	}
	fences = append(fences, uint32(len(blob)))
	rk := make([]byte, 0, 4*(numRules+2)+len(blob))
	rk = binary.LittleEndian.AppendUint32(rk, uint32(numRules))
	for _, fe := range fences {
		rk = binary.LittleEndian.AppendUint32(rk, fe)
	}
	rk = append(rk, blob...)

	var wins []byte
	wins = binary.AppendUvarint(wins, uint64(len(f.windows)))
	for _, wi := range f.windows {
		wins = binary.AppendUvarint(wins, zigzag64(wi.Period.Start))
		wins = binary.AppendUvarint(wins, zigzag64(wi.Period.End))
		wins = binary.AppendUvarint(wins, uint64(wi.N))
	}

	arch := f.arch.AppendMapped(nil)

	var epsSec []byte
	epsSec = binary.AppendUvarint(epsSec, uint64(len(f.windows)))
	var block []byte
	for w := range f.windows {
		slice, err := f.index.Slice(w)
		if err != nil {
			return nil, fmt.Errorf("tara: window %d: %w", w, err)
		}
		block = slice.AppendMapped(block[:0])
		epsSec = binary.AppendUvarint(epsSec, uint64(len(block)))
		epsSec = append(epsSec, block...)
	}

	b := &kb.Builder{}
	b.Add(kbSecMeta, meta)
	b.Add(kbSecItems, items)
	b.Add(kbSecRuleKeys, rk)
	b.Add(kbSecWindows, wins)
	b.Add(kbSecArchive, arch)
	b.Add(kbSecEPS, epsSec)
	return b, nil
}

// Open loads a knowledge base from path, auto-detecting the format. Mapped
// (TARAKB2) containers are memory-mapped when the platform allows it, with a
// portable io.ReaderAt fallback; queries then run against validated,
// lazily-materialized views of the file bytes, which is what makes cold
// start milliseconds instead of a full deserialize-and-rebuild. Legacy
// (TARAKB1) streams fall back to Load transparently.
//
// The returned framework owns the mapping; call Close when done with it, and
// not before the last query has returned.
func Open(path string) (*Framework, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [len(kbMagic)]byte
	_, err = io.ReadFull(fh, magic[:])
	if err == nil && string(magic[:]) == kbMagic {
		defer fh.Close()
		if _, err := fh.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		return Load(fh)
	}
	fh.Close()
	if err != nil {
		return nil, fmt.Errorf("tara: reading magic: %w", err)
	}
	kf, err := kb.Open(path)
	if err != nil {
		return nil, err
	}
	f, err := openKB(kf)
	if err != nil {
		kf.Close()
		return nil, err
	}
	return f, nil
}

// OpenBytes opens a mapped-format knowledge base held in memory — the
// zero-I/O twin of Open used by tests and benchmarks. The framework aliases
// b, which must not be mutated afterwards.
func OpenBytes(b []byte) (*Framework, error) {
	kf, err := kb.OpenBytes(b)
	if err != nil {
		return nil, err
	}
	f, err := openKB(kf)
	if err != nil {
		kf.Close()
		return nil, err
	}
	return f, nil
}

// openKB assembles a framework over an opened container. Every section is
// validated here or in the per-package restore paths (archive.OpenMapped,
// eps.RestoreSlice), so the query paths keep their trusted-bytes contract;
// what stays lazy — rule-key parsing, per-row rule lists, the content
// index — has been bounds-checked already and cannot fail structurally.
func openKB(kf *kb.File) (*Framework, error) {
	cfg, err := readMeta(kf)
	if err != nil {
		return nil, err
	}
	itemDict, err := readItems(kf)
	if err != nil {
		return nil, err
	}
	ruleDict, numRules, err := readRuleKeys(kf)
	if err != nil {
		return nil, err
	}
	windows, err := readWindows(kf)
	if err != nil {
		return nil, err
	}

	archSec, err := kf.Section(kbSecArchive)
	if err != nil {
		return nil, err
	}
	arch, err := archive.OpenMapped(archSec)
	if err != nil {
		return nil, err
	}
	if arch.Windows() != len(windows) {
		return nil, fmt.Errorf("tara: archive has %d windows, metadata %d", arch.Windows(), len(windows))
	}

	epsSec, err := kf.Section(kbSecEPS)
	if err != nil {
		return nil, err
	}
	index := eps.NewIndex()
	sc, n := binary.Uvarint(epsSec)
	if n <= 0 {
		return nil, fmt.Errorf("tara: eps section: bad slice count")
	}
	if sc != uint64(len(windows)) {
		return nil, fmt.Errorf("tara: eps section has %d slices, metadata %d windows", sc, len(windows))
	}
	rest := epsSec[n:]
	for w := range windows {
		bl, n := binary.Uvarint(rest)
		if n <= 0 || bl > uint64(len(rest)-n) {
			return nil, fmt.Errorf("tara: eps section: bad block length for window %d", w)
		}
		block := rest[n : n+int(bl) : n+int(bl)]
		rest = rest[n+int(bl):]
		slice, err := eps.RestoreSlice(w, block, numRules, eps.Options{
			ContentIndex: cfg.ContentIndex,
			Dict:         ruleDict,
		})
		if err != nil {
			return nil, fmt.Errorf("tara: window %d: %w", w, err)
		}
		if slice.N != windows[w].N {
			return nil, fmt.Errorf("tara: window %d slice has N=%d, metadata %d", w, slice.N, windows[w].N)
		}
		if err := index.Append(slice); err != nil {
			return nil, err
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("tara: eps section: %d trailing bytes", len(rest))
	}

	f := &Framework{
		cfg:      cfg,
		itemDict: itemDict,
		ruleDict: ruleDict,
		arch:     arch,
		index:    index,
		windows:  windows,
		buildCtr: obs.NewCounterSet(buildCounterNames...),
		kbf:      kf,
		loadMode: kf.Mode(),
	}
	if cfg.QueryCacheSize >= 0 {
		f.qcache = newQueryCache(cfg.QueryCacheSize)
	}
	f.genCtr.Store(uint64(len(windows)))
	return f, nil
}

func readMeta(kf *kb.File) (Config, error) {
	var cfg Config
	meta, err := kf.Section(kbSecMeta)
	if err != nil {
		return cfg, err
	}
	if len(meta) < 16 {
		return cfg, fmt.Errorf("tara: meta section truncated")
	}
	cfg.GenMinSupport = math.Float64frombits(binary.LittleEndian.Uint64(meta))
	cfg.GenMinConf = math.Float64frombits(binary.LittleEndian.Uint64(meta[8:]))
	rest := meta[16:]
	maxLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return cfg, fmt.Errorf("tara: meta section: bad maxLen")
	}
	cfg.MaxItemsetLen = int(unzigzag64(maxLen))
	rest = rest[n:]
	ci, n := binary.Uvarint(rest)
	if n <= 0 {
		return cfg, fmt.Errorf("tara: meta section: bad contentIndex")
	}
	cfg.ContentIndex = ci == 1
	rest = rest[n:]
	ml, n := binary.Uvarint(rest)
	if n <= 0 || ml > uint64(len(rest)-n) {
		return cfg, fmt.Errorf("tara: meta section: bad miner name")
	}
	cfg.Miner, err = mining.ByName(string(rest[n : n+int(ml)]))
	if err != nil {
		return cfg, err
	}
	if len(rest[n+int(ml):]) != 0 {
		return cfg, fmt.Errorf("tara: meta section: trailing bytes")
	}
	return cfg, nil
}

func readItems(kf *kb.File) (*txdb.Dict, error) {
	items, err := kf.Section(kbSecItems)
	if err != nil {
		return nil, err
	}
	count, n := binary.Uvarint(items)
	if n <= 0 {
		return nil, fmt.Errorf("tara: items section: bad count")
	}
	rest := items[n:]
	// Two bytes minimum per entry (length varint + at least nothing) cannot
	// hold: a length varint is at least one byte, so count is bounded.
	if count > uint64(len(rest))+1 {
		return nil, fmt.Errorf("tara: items section: implausible count %d", count)
	}
	d := txdb.NewDict()
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(rest)
		if n <= 0 || l > uint64(len(rest)-n) {
			return nil, fmt.Errorf("tara: items section: bad name %d", i)
		}
		d.Add(string(rest[n : n+int(l)]))
		rest = rest[n+int(l):]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("tara: items section: %d trailing bytes", len(rest))
	}
	if d.Len() != int(count) {
		return nil, fmt.Errorf("tara: items section: duplicate names")
	}
	return d, nil
}

// readRuleKeys validates the fence table and hands the dictionary a lazy
// view of the key blob: every key is length-delimited by the fences, so the
// dictionary can parse key i in O(|key|) on first use without Open paying
// for the parse (or the intern map) up front.
func readRuleKeys(kf *kb.File) (*rules.Dict, int, error) {
	rk, err := kf.Section(kbSecRuleKeys)
	if err != nil {
		return nil, 0, err
	}
	if len(rk) < 8 {
		return nil, 0, fmt.Errorf("tara: rulekeys section truncated")
	}
	count := int(binary.LittleEndian.Uint32(rk))
	if count+2 > (len(rk))/4+1 || 4+4*(count+1) > len(rk) {
		return nil, 0, fmt.Errorf("tara: rulekeys section: implausible count %d", count)
	}
	fenceBytes := rk[4 : 4+4*(count+1)]
	blob := rk[4+4*(count+1):]
	fences := make([]uint32, count+1)
	prev := uint32(0)
	for i := range fences {
		fences[i] = binary.LittleEndian.Uint32(fenceBytes[4*i:])
		if fences[i] < prev {
			return nil, 0, fmt.Errorf("tara: rulekeys section: fence %d decreases", i)
		}
		prev = fences[i]
	}
	if int(fences[count]) != len(blob) {
		return nil, 0, fmt.Errorf("tara: rulekeys section: fences cover %d of %d blob bytes", fences[count], len(blob))
	}
	d := rules.NewLazyDict(count, func(i int) []byte {
		return blob[fences[i]:fences[i+1]:fences[i+1]]
	})
	return d, count, nil
}

func readWindows(kf *kb.File) ([]WindowInfo, error) {
	wins, err := kf.Section(kbSecWindows)
	if err != nil {
		return nil, err
	}
	count, n := binary.Uvarint(wins)
	if n <= 0 {
		return nil, fmt.Errorf("tara: windows section: bad count")
	}
	rest := wins[n:]
	// Each window takes at least three varint bytes.
	if count > uint64(len(rest))/3+1 {
		return nil, fmt.Errorf("tara: windows section: implausible count %d", count)
	}
	out := make([]WindowInfo, count)
	for i := range out {
		var vals [3]uint64
		for j := range vals {
			v, n := binary.Uvarint(rest)
			if n <= 0 {
				return nil, fmt.Errorf("tara: windows section: bad window %d", i)
			}
			vals[j] = v
			rest = rest[n:]
		}
		if vals[2] > math.MaxUint32 {
			return nil, fmt.Errorf("tara: window %d cardinality %d exceeds uint32", i, vals[2])
		}
		out[i] = WindowInfo{
			Index:  i,
			Period: txdb.Period{Start: unzigzag64(vals[0]), End: unzigzag64(vals[1])},
			N:      uint32(vals[2]),
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("tara: windows section: %d trailing bytes", len(rest))
	}
	return out, nil
}

// LoadMode reports how the knowledge base entered memory: "heap" for built
// or legacy-loaded frameworks, "mmap" / "readerat" / "bytes" for mapped
// containers depending on how the platform let us access the file.
func (f *Framework) LoadMode() string {
	if f.loadMode == "" {
		return "heap"
	}
	return f.loadMode
}

// Close releases the knowledge-base mapping, if any. The framework must not
// be used afterwards: mapped frameworks serve queries from views of the
// file bytes, which Close invalidates. It is a no-op for built and
// legacy-loaded frameworks.
func (f *Framework) Close() error {
	if f.kbf == nil {
		return nil
	}
	return f.kbf.Close()
}

// sniffMapped reports whether the stream begins with the mapped-container
// magic; used by Load to route TARAKB2 bytes arriving through the legacy
// entry point.
func sniffMapped(br *bufio.Reader) bool {
	m, err := br.Peek(len(kb.Magic))
	return err == nil && string(m) == kb.Magic
}
