package tara

import (
	"bytes"
	"strings"
	"testing"

	"tara/internal/rules"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := defaultCfg()
	cfg.ContentIndex = true
	orig := build(t, cfg)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Windows() != orig.Windows() {
		t.Fatalf("windows: %d vs %d", loaded.Windows(), orig.Windows())
	}
	if loaded.RuleDict().Len() != orig.RuleDict().Len() {
		t.Fatalf("rules: %d vs %d", loaded.RuleDict().Len(), orig.RuleDict().Len())
	}
	if loaded.ItemDict().Len() != orig.ItemDict().Len() {
		t.Fatalf("items: %d vs %d", loaded.ItemDict().Len(), orig.ItemDict().Len())
	}
	lc, oc := loaded.Config(), orig.Config()
	if lc.GenMinSupport != oc.GenMinSupport || lc.GenMinConf != oc.GenMinConf ||
		lc.MaxItemsetLen != oc.MaxItemsetLen || lc.ContentIndex != oc.ContentIndex {
		t.Fatalf("config: %+v vs %+v", lc, oc)
	}

	// Window metadata round trips.
	for w := 0; w < orig.Windows(); w++ {
		ow, _ := orig.Window(w)
		lw, _ := loaded.Window(w)
		if ow != lw {
			t.Errorf("window %d: %+v vs %+v", w, lw, ow)
		}
	}

	// Every query answers identically on the loaded framework.
	for w := 0; w < orig.Windows(); w++ {
		a, err := orig.Mine(w, 0.05, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Mine(w, 0.05, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("window %d: %d vs %d rules", w, len(a), len(b))
		}
		bk := map[string]rules.Stats{}
		for _, v := range b {
			bk[v.Rule.Key()] = v.Stats
		}
		for _, v := range a {
			if st, ok := bk[v.Rule.Key()]; !ok || st != v.Stats {
				t.Fatalf("window %d: rule %v differs after reload", w, v.Rule)
			}
		}
	}

	// Rule names survive (dictionary order preserved).
	views, err := loaded.Mine(0, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	origViews, _ := orig.Mine(0, 0.05, 0.2)
	if views[0].Rule.Format(loaded.ItemDict()) != origViews[0].Rule.Format(orig.ItemDict()) {
		t.Error("item names differ after reload")
	}

	// Content-indexed query works on the reloaded knowledge base.
	name := loaded.ItemDict().Name(views[0].Rule.Items()[0])
	if _, err := loaded.RulesAbout(0, 0.05, 0.2, []string{name}); err != nil {
		t.Errorf("RulesAbout after reload: %v", err)
	}

	// Roll-up and trajectories also answer identically.
	ra, err := orig.MineRollUp(0, 3, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := loaded.MineRollUp(0, 3, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("roll-up: %d vs %d rules", len(ra), len(rb))
	}
}

func TestLoadedFrameworkExtendable(t *testing.T) {
	// AppendWindow after Load continues the stream.
	db := testDB(12, 600, 25)
	windows, err := db.PartitionByCount(4)
	if err != nil {
		t.Fatal(err)
	}
	f := New(db.Dict, defaultCfg())
	for _, w := range windows[:3] {
		if err := f.AppendWindow(w); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Item ids in windows[3] refer to db.Dict; the loaded dict preserved
	// id order, so appending is valid.
	if err := loaded.AppendWindow(windows[3]); err != nil {
		t.Fatal(err)
	}
	if loaded.Windows() != 4 {
		t.Fatalf("windows = %d", loaded.Windows())
	}
	if _, err := loaded.Mine(3, 0.05, 0.2); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Load(strings.NewReader("GARBAGE!")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream: take a valid prefix.
	f := build(t, defaultCfg())
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestSaveDeterministic(t *testing.T) {
	f := build(t, defaultCfg())
	var a, b bytes.Buffer
	if err := f.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Save output not deterministic")
	}
}
