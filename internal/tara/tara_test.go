package tara

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tara/internal/itemset"
	"tara/internal/mining"
	"tara/internal/rules"
	"tara/internal/txdb"
)

// testDB builds a reproducible random evolving database with mild item
// correlations so that rules exist at moderate thresholds.
func testDB(seed int64, nTx, nItems int) *txdb.DB {
	r := rand.New(rand.NewSource(seed))
	db := txdb.NewDB()
	// A few "pattern" item pairs that co-occur often.
	type pair struct{ a, b int }
	patterns := make([]pair, 5)
	for i := range patterns {
		patterns[i] = pair{r.Intn(nItems), r.Intn(nItems)}
	}
	for i := 0; i < nTx; i++ {
		var names []string
		p := patterns[r.Intn(len(patterns))]
		if r.Float64() < 0.6 {
			names = append(names, itemName(p.a), itemName(p.b))
		}
		for j := 0; j < 1+r.Intn(4); j++ {
			names = append(names, itemName(r.Intn(nItems)))
		}
		db.Add(int64(i), names...)
	}
	return db
}

func itemName(i int) string { return string(rune('A'+i/10)) + string(rune('0'+i%10)) }

func build(t *testing.T, cfg Config) *Framework {
	t.Helper()
	db := testDB(1, 600, 30)
	f, err := Build(db, 0, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func defaultCfg() Config {
	return Config{GenMinSupport: 0.01, GenMinConf: 0.05, MaxItemsetLen: 4}
}

func TestBuildBasics(t *testing.T) {
	f := build(t, defaultCfg())
	if f.Windows() != 4 {
		t.Fatalf("Windows = %d, want 4", f.Windows())
	}
	for w := 0; w < 4; w++ {
		info, err := f.Window(w)
		if err != nil {
			t.Fatal(err)
		}
		if info.N == 0 {
			t.Errorf("window %d empty", w)
		}
	}
	if _, err := f.Window(9); err == nil {
		t.Error("out-of-range window accepted")
	}
	if len(f.Timings()) != 4 {
		t.Errorf("Timings = %d entries", len(f.Timings()))
	}
	for _, tm := range f.Timings() {
		if tm.NumRules == 0 {
			t.Errorf("window %d generated no rules; thresholds too high for test data", tm.Window)
		}
		if tm.Total() <= 0 {
			t.Errorf("window %d total time not positive", tm.Window)
		}
	}
}

// mineDirect is the DCTAR-style ground truth: mine the window transactions
// from scratch at the query thresholds.
func mineDirect(t *testing.T, tx []txdb.Transaction, minSupp, minConf float64, maxLen int) map[string]rules.Stats {
	t.Helper()
	res, err := mining.Apriori{}.Mine(tx, mining.Params{
		MinCount: mining.MinCountFor(minSupp, len(tx)),
		MaxLen:   maxLen,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rules.Generate(res, rules.GenParams{
		MinCount: mining.MinCountFor(minSupp, len(tx)),
		MinConf:  minConf,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]rules.Stats{}
	for _, r := range rs {
		out[r.Rule.Key()] = r.Stats
	}
	return out
}

func TestMineMatchesDirectMining(t *testing.T) {
	db := testDB(2, 500, 25)
	cfg := defaultCfg()
	f, err := Build(db, 0, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := db.PartitionByCount(3)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		for _, q := range []struct{ s, c float64 }{{0.02, 0.1}, {0.05, 0.3}, {0.1, 0.5}} {
			got, err := f.Mine(w, q.s, q.c)
			if err != nil {
				t.Fatal(err)
			}
			want := mineDirect(t, windows[w].Tx, q.s, q.c, cfg.MaxItemsetLen)
			if len(got) != len(want) {
				t.Fatalf("window %d (%g,%g): TARA %d rules, direct %d", w, q.s, q.c, len(got), len(want))
			}
			for _, v := range got {
				st, ok := want[v.Rule.Key()]
				if !ok {
					t.Fatalf("window %d: TARA rule %v not in direct result", w, v.Rule)
				}
				if st != v.Stats {
					t.Fatalf("window %d rule %v: stats %+v vs direct %+v", w, v.Rule, v.Stats, st)
				}
			}
		}
	}
}

func TestMineRejectsBelowGeneration(t *testing.T) {
	f := build(t, defaultCfg())
	if _, err := f.Mine(0, 0.001, 0.5); err == nil {
		t.Error("minsupp below generation threshold accepted")
	}
	if _, err := f.Mine(0, 0.05, 0.01); err == nil {
		t.Error("minconf below generation threshold accepted")
	}
	if _, err := f.Mine(17, 0.05, 0.3); err == nil {
		t.Error("bad window accepted")
	}
}

func TestRuleTrajectories(t *testing.T) {
	f := build(t, defaultCfg())
	trs, err := f.RuleTrajectories(3, 0.05, 0.2, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) == 0 {
		t.Fatal("no trajectories returned")
	}
	for _, tr := range trs {
		if len(tr.Stats) != 3 || len(tr.Present) != 3 {
			t.Fatalf("trajectory shape wrong: %+v", tr)
		}
		for i, w := range tr.Windows {
			st, ok := f.Archive().StatsAt(tr.ID, w)
			if ok != tr.Present[i] {
				t.Errorf("rule %d window %d: present mismatch", tr.ID, w)
			}
			if ok && st != tr.Stats[i] {
				t.Errorf("rule %d window %d: stats mismatch", tr.ID, w)
			}
		}
	}
	if _, err := f.RuleTrajectories(0, 0.05, 0.2, []int{11}); err == nil {
		t.Error("bad trajectory window accepted")
	}
}

func TestCompare(t *testing.T) {
	f := build(t, defaultCfg())
	diffs, err := f.Compare([]int{0, 1, 2, 3}, 0.02, 0.1, 0.06, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 4 {
		t.Fatalf("got %d diffs", len(diffs))
	}
	for _, d := range diffs {
		// Validate against two Mine calls.
		a, err := f.Mine(d.Window, 0.02, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := f.Mine(d.Window, 0.06, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		inA := map[rules.ID]bool{}
		for _, v := range a {
			inA[v.ID] = true
		}
		inB := map[rules.ID]bool{}
		for _, v := range b {
			inB[v.ID] = true
		}
		wantOnlyA := 0
		for id := range inA {
			if !inB[id] {
				wantOnlyA++
			}
		}
		wantOnlyB := 0
		for id := range inB {
			if !inA[id] {
				wantOnlyB++
			}
		}
		if len(d.OnlyA) != wantOnlyA || len(d.OnlyB) != wantOnlyB {
			t.Errorf("window %d: diff (%d,%d), want (%d,%d)", d.Window, len(d.OnlyA), len(d.OnlyB), wantOnlyA, wantOnlyB)
		}
		for _, id := range d.OnlyA {
			if !inA[id] || inB[id] {
				t.Errorf("window %d: rule %d misclassified in OnlyA", d.Window, id)
			}
		}
	}
	// Setting B dominates A (lower thresholds): B-only nonempty, A-only empty.
	diffs, err = f.Compare([]int{0}, 0.06, 0.3, 0.02, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs[0].OnlyA) != 0 {
		t.Error("stricter setting claims exclusive rules")
	}
}

func TestRecommend(t *testing.T) {
	f := build(t, defaultCfg())
	reg, err := f.Recommend(0, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// The ruleset must be constant within the recommended region.
	base, err := f.Mine(0, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Empty != (len(base) == 0) {
		t.Fatalf("region empty=%v but %d rules", reg.Empty, len(base))
	}
	probeS := (reg.LowSupp + reg.HighSupp) / 2
	probeC := (reg.LowConf + reg.HighConf) / 2
	if probeS >= f.cfg.GenMinSupport && probeC >= f.cfg.GenMinConf {
		got, err := f.Mine(0, probeS, probeC)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(base) {
			t.Errorf("ruleset changed within recommended region: %d vs %d", len(got), len(base))
		}
	}
}

func TestMineRollUpExactOverPresentWindows(t *testing.T) {
	db := testDB(3, 400, 20)
	cfg := Config{GenMinSupport: 0.01, GenMinConf: 0, MaxItemsetLen: 3}
	f, err := Build(db, 0, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.MineRollUp(0, 3, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("roll-up returned no rules")
	}
	// Ground truth: count over all transactions.
	db2 := testDB(3, 400, 20)
	for _, r := range out {
		if r.Stats.Support() < 0.05 || r.Stats.Confidence() < 0.2 {
			t.Errorf("rule %v below thresholds: %+v", r.Rule, r.Stats)
		}
		var xy, x uint32
		union := r.Rule.Items()
		for _, tx := range db2.Tx {
			if itemset.Subset(union, tx.Items) {
				xy++
			}
			if itemset.Subset(r.Rule.Ant, tx.Items) {
				x++
			}
		}
		trueSupp := float64(xy) / float64(db2.Len())
		if r.Present == 4 {
			// Present everywhere: exact.
			if r.Stats.CountXY != xy || r.Stats.CountX != x {
				t.Errorf("rule %v rolled counts (%d,%d), true (%d,%d)", r.Rule, r.Stats.CountXY, r.Stats.CountX, xy, x)
			}
		}
		// Bound always holds: archived support underestimates by at most
		// MaxSupportError.
		if trueSupp-r.Stats.Support() > r.MaxSupportError+1e-12 {
			t.Errorf("rule %v: underestimate %g exceeds bound %g",
				r.Rule, trueSupp-r.Stats.Support(), r.MaxSupportError)
		}
	}
}

func TestRollUpApproximationBound(t *testing.T) {
	// The headline bound experiment: with nonzero generation thresholds,
	// every archived rule's period support underestimates truth by at most
	// the bound. Checked for all rules, not only qualifying ones.
	db := testDB(4, 500, 20)
	cfg := Config{GenMinSupport: 0.03, GenMinConf: 0.1, MaxItemsetLen: 3}
	f, err := Build(db, 0, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	db2 := testDB(4, 500, 20)
	var checked int
	for _, id := range f.Archive().Rules() {
		r, _ := f.RuleDict().Rule(id)
		st, _, err := f.Archive().RollUp(id, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		var xy uint32
		union := r.Items()
		for _, tx := range db2.Tx {
			if itemset.Subset(union, tx.Items) {
				xy++
			}
		}
		trueSupp := float64(xy) / float64(db2.Len())
		bound := f.rollUpErrorBound(id, 0, 4, uint32(db2.Len()))
		if trueSupp-st.Support() > bound+1e-12 {
			t.Errorf("rule %v: true %g archived %g bound %g", r, trueSupp, st.Support(), bound)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no rules archived")
	}
}

func TestDrillDown(t *testing.T) {
	f := build(t, defaultCfg())
	views, err := f.Mine(0, 0.05, 0.2)
	if err != nil || len(views) == 0 {
		t.Fatalf("Mine: %v (%d rules)", err, len(views))
	}
	id := views[0].ID
	rows, err := f.DrillDown(id, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("DrillDown rows = %d", len(rows))
	}
	if !rows[0].Present || rows[0].Stats != views[0].Stats {
		t.Errorf("window 0 stats mismatch: %+v vs %+v", rows[0].Stats, views[0].Stats)
	}
	if _, err := f.DrillDown(id, 2, 1); err == nil {
		t.Error("inverted drill-down range accepted")
	}
	if _, err := f.DrillDown(rules.ID(1<<30), 0, 3); err == nil {
		t.Error("unknown rule accepted")
	}
}

func TestRulesAbout(t *testing.T) {
	db := testDB(5, 500, 25)
	cfg := defaultCfg()
	cfg.ContentIndex = true
	f, err := Build(db, 0, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	all, err := f.Mine(0, 0.02, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Pick an item that occurs in some rule.
	var name string
	for _, v := range all {
		name = f.ItemDict().Name(v.Rule.Items()[0])
		break
	}
	got, err := f.RulesAbout(0, 0.02, 0.1, []string{name})
	if err != nil {
		t.Fatal(err)
	}
	item, _ := f.ItemDict().Lookup(name)
	want := 0
	for _, v := range all {
		if v.Rule.Items().Contains(item) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("RulesAbout(%q) = %d rules, want %d", name, len(got), want)
	}
	for _, v := range got {
		if !v.Rule.Items().Contains(item) {
			t.Errorf("rule %v does not mention %q", v.Rule, name)
		}
	}
	// Unknown item name: empty result, no error.
	none, err := f.RulesAbout(0, 0.02, 0.1, []string{"no-such-item"})
	if err != nil || none != nil {
		t.Errorf("unknown item: %v, %v", none, err)
	}
}

func TestRulesAboutRequiresContentIndex(t *testing.T) {
	f := build(t, defaultCfg())
	if _, err := f.RulesAbout(0, 0.05, 0.2, []string{"A0"}); err == nil {
		t.Error("content query without index accepted")
	}
}

func TestRankEvolution(t *testing.T) {
	f := build(t, defaultCfg())
	for _, m := range []EvolutionMeasure{ByStability, ByCoverage, ByVolatility} {
		out, err := f.RankEvolution(0, 3, 0.05, 0.2, m, 0.01, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			t.Fatal("no evolution summaries")
		}
		if len(out) > 10 {
			t.Errorf("topK not applied: %d", len(out))
		}
		for i := 1; i < len(out); i++ {
			var prev, cur float64
			switch m {
			case ByCoverage:
				prev, cur = out[i-1].Coverage, out[i].Coverage
			case ByVolatility:
				prev, cur = out[i-1].StdDev, out[i].StdDev
			default:
				prev, cur = out[i-1].Stability, out[i].Stability
			}
			if cur > prev {
				t.Errorf("measure %d: order violated at %d: %g > %g", m, i, cur, prev)
			}
		}
	}
}

func TestWindowRange(t *testing.T) {
	f := build(t, defaultCfg())
	w0, _ := f.Window(0)
	w3, _ := f.Window(3)
	from, to, err := f.WindowRange(txdb.Period{Start: w0.Period.Start, End: w3.Period.End})
	if err != nil || from != 0 || to != 3 {
		t.Errorf("WindowRange = (%d,%d,%v)", from, to, err)
	}
	from, to, err = f.WindowRange(w3.Period)
	if err != nil || from != 3 || to != 3 {
		t.Errorf("WindowRange single = (%d,%d,%v)", from, to, err)
	}
	if _, _, err := f.WindowRange(txdb.Period{Start: 1 << 40, End: 1<<40 + 1}); err == nil {
		t.Error("disjoint period accepted")
	}
}

func TestAppendWindowIncrementalEqualsBatch(t *testing.T) {
	db1 := testDB(6, 600, 25)
	cfg := defaultCfg()
	batch, err := Build(db1, 0, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}

	db2 := testDB(6, 600, 25)
	windows, err := db2.PartitionByCount(4)
	if err != nil {
		t.Fatal(err)
	}
	inc := New(db2.Dict, cfg)
	for _, w := range windows {
		if err := inc.AppendWindow(w); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 4; w++ {
		a, err := batch.Mine(w, 0.05, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := inc.Mine(w, 0.05, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("window %d: batch %d rules, incremental %d", w, len(a), len(b))
		}
		bk := map[string]rules.Stats{}
		for _, v := range b {
			bk[v.Rule.Key()] = v.Stats
		}
		for _, v := range a {
			if st, ok := bk[v.Rule.Key()]; !ok || st != v.Stats {
				t.Fatalf("window %d: rule %v differs between batch and incremental", w, v.Rule)
			}
		}
	}
}

func TestAppendWindowOutOfOrder(t *testing.T) {
	db := testDB(7, 100, 10)
	windows, err := db.PartitionByCount(2)
	if err != nil {
		t.Fatal(err)
	}
	f := New(db.Dict, defaultCfg())
	if err := f.AppendWindow(windows[1]); err == nil {
		t.Error("out-of-order window accepted")
	}
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	cfgSeq := defaultCfg()
	cfgPar := defaultCfg()
	cfgPar.Parallelism = 4
	db1 := testDB(8, 800, 25)
	db2 := testDB(8, 800, 25)
	seq, err := Build(db1, 0, 6, cfgSeq)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(db2, 0, 6, cfgPar)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 6; w++ {
		a, _ := seq.Mine(w, 0.05, 0.2)
		b, _ := par.Mine(w, 0.05, 0.2)
		if len(a) != len(b) {
			t.Fatalf("window %d: sequential %d rules, parallel %d", w, len(a), len(b))
		}
	}
}

func TestMinersProduceSameFramework(t *testing.T) {
	for _, m := range mining.Miners() {
		cfg := defaultCfg()
		cfg.Miner = m
		db := testDB(9, 300, 15)
		f, err := Build(db, 0, 2, cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		got, err := f.Mine(0, 0.05, 0.2)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(got) == 0 {
			t.Fatalf("%s: no rules", m.Name())
		}
	}
}

func TestBuildByTimeWindows(t *testing.T) {
	db := testDB(10, 400, 20) // timestamps 0..399
	f, err := Build(db, 100, 0, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if f.Windows() != 4 {
		t.Fatalf("Windows = %d, want 4", f.Windows())
	}
	info, _ := f.Window(1)
	if info.Period.Start != 100 || info.Period.End != 199 {
		t.Errorf("window 1 period %v", info.Period)
	}
}

func TestConcurrentQueries(t *testing.T) {
	cfg := defaultCfg()
	cfg.ContentIndex = true
	f := build(t, cfg)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				w := (g + i) % f.Windows()
				if _, err := f.Mine(w, 0.05, 0.2); err != nil {
					errs <- err
					return
				}
				if _, err := f.Recommend(w, 0.05, 0.2); err != nil {
					errs <- err
					return
				}
				if _, err := f.MineRollUp(0, f.Windows()-1, 0.05, 0.2); err != nil {
					errs <- err
					return
				}
				if _, err := f.Compare([]int{0, w}, 0.05, 0.2, 0.1, 0.4); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentAppendAndQueries interleaves incremental knowledge-base
// growth with the full online query mix on one Framework. Run under -race
// this locks in the appends-vs-queries synchronization: every query sees the
// knowledge base before or after a whole window lands, never mid-append.
func TestConcurrentAppendAndQueries(t *testing.T) {
	cfg := defaultCfg()
	cfg.ContentIndex = true
	db := testDB(21, 320, 18)
	windows, err := db.PartitionByCount(8)
	if err != nil {
		t.Fatal(err)
	}
	f := New(db.Dict, cfg)
	// Seed two windows so readers always have something to query.
	for _, w := range windows[:2] {
		if err := f.AppendWindow(w); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Writer: absorb the remaining windows one by one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, w := range windows[2:] {
			if err := f.AppendWindow(w); err != nil {
				fail(err)
				return
			}
		}
	}()

	// Readers: hammer the query classes against whatever prefix of the
	// knowledge base exists at the moment of each request.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				n := f.Windows() // grows concurrently; snapshot per iteration
				w := (g + i) % n
				if _, err := f.Mine(w, 0.1, 0.3); err != nil {
					fail(err)
					return
				}
				if _, err := f.Recommend(w, 0.1, 0.3); err != nil {
					fail(err)
					return
				}
				if _, err := f.MineRollUp(0, n-1, 0.15, 0.3); err != nil {
					fail(err)
					return
				}
				if _, err := f.RuleTrajectories(w, 0.15, 0.3, []int{0, w}); err != nil {
					fail(err)
					return
				}
				if _, err := f.Compare([]int{0, w}, 0.1, 0.3, 0.15, 0.4); err != nil {
					fail(err)
					return
				}
				if _, err := f.RulesAbout(w, 0.1, 0.3, []string{itemName(1)}); err != nil {
					fail(err)
					return
				}
				if s := f.Summarize(); s.Windows < 2 {
					fail(fmt.Errorf("summary lost windows: %d", s.Windows))
					return
				}
				// Snapshot the knowledge base every few iterations; Save is
				// the heaviest reader.
				if i%4 == 0 {
					if err := f.Save(discard{}); err != nil {
						fail(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if f.Windows() != len(windows) {
		t.Fatalf("Windows = %d after concurrent appends, want %d", f.Windows(), len(windows))
	}

	// The interleaving must not have perturbed the knowledge base: answers
	// match a framework built from the same data in one batch.
	db2 := testDB(21, 320, 18)
	batch, err := Build(db2, 0, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < len(windows); w++ {
		a, err := f.Mine(w, 0.1, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := batch.Mine(w, 0.1, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("window %d: concurrent-append framework has %d rules, batch %d", w, len(a), len(b))
		}
	}
}

// discard is an io.Writer sink for exercising Save under concurrency.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestMineMergedMatchesMine(t *testing.T) {
	cfg := defaultCfg()
	cfg.ContentIndex = true
	f := build(t, cfg)
	for w := 0; w < f.Windows(); w++ {
		plain, err := f.Mine(w, 0.05, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := f.MineMerged(w, 0.05, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) != len(merged) {
			t.Fatalf("window %d: plain %d, merged %d rules", w, len(plain), len(merged))
		}
		seen := map[rules.ID]rules.Stats{}
		for _, v := range merged {
			seen[v.ID] = v.Stats
		}
		for _, v := range plain {
			if st, ok := seen[v.ID]; !ok || st != v.Stats {
				t.Fatalf("window %d: rule %d differs between collection paths", w, v.ID)
			}
		}
	}
}

func TestMineMergedRequiresContentIndex(t *testing.T) {
	f := build(t, defaultCfg())
	if _, err := f.MineMerged(0, 0.05, 0.2); err == nil {
		t.Error("MineMerged without content index accepted")
	}
}

func TestSummarize(t *testing.T) {
	f := build(t, defaultCfg())
	s := f.Summarize()
	if s.Windows != 4 || s.Rules == 0 || s.Items == 0 {
		t.Fatalf("Summary = %+v", s)
	}
	if len(s.PerWindow) != 4 {
		t.Fatalf("PerWindow = %d entries", len(s.PerWindow))
	}
	totalRules := 0
	for _, w := range s.PerWindow {
		if w.N == 0 || w.Rules == 0 || w.Locations == 0 {
			t.Errorf("window %d summary empty: %+v", w.Window, w)
		}
		if w.Locations > w.Rules {
			t.Errorf("window %d: more locations than rules", w.Window)
		}
		totalRules += w.Rules
	}
	if totalRules != s.ArchiveEntries {
		t.Errorf("per-window rules %d != archive entries %d", totalRules, s.ArchiveEntries)
	}
	if s.ArchiveBytes <= 0 || s.ArchiveBytes >= s.UncompressedByte {
		t.Errorf("archive bytes %d vs uncompressed %d", s.ArchiveBytes, s.UncompressedByte)
	}
}

func TestRollUpSliceMatchesMineRollUp(t *testing.T) {
	f := build(t, defaultCfg())
	slice, err := f.RollUpSlice(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.MineRollUp(0, 3, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	got := slice.Rules(0.05, 0.2)
	if len(got) != len(want) {
		t.Fatalf("slice %d rules, MineRollUp %d", len(got), len(want))
	}
	wantIDs := map[rules.ID]bool{}
	for _, r := range want {
		wantIDs[r.ID] = true
	}
	for _, id := range got {
		if !wantIDs[id] {
			t.Fatalf("slice produced unexpected rule %d", id)
		}
	}
}

func TestRecommendRollUpStable(t *testing.T) {
	f := build(t, defaultCfg())
	reg, err := f.RecommendRollUp(0, 3, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := f.MineRollUp(0, 3, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Empty != (len(base) == 0) {
		t.Fatalf("region empty=%v but %d rules", reg.Empty, len(base))
	}
	if !reg.Empty && reg.NumRules != len(base) {
		t.Errorf("region rules %d, MineRollUp %d", reg.NumRules, len(base))
	}
	// Probe inside the region: identical answer.
	probeS := (reg.LowSupp + reg.HighSupp) / 2
	probeC := (reg.LowConf + reg.HighConf) / 2
	if probeS >= f.cfg.GenMinSupport && probeC >= f.cfg.GenMinConf {
		got, err := f.MineRollUp(0, 3, probeS, probeC)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(base) {
			t.Errorf("roll-up answer changed inside recommended region: %d vs %d", len(got), len(base))
		}
	}
	if _, err := f.RollUpSlice(2, 1); err == nil {
		t.Error("inverted roll-up slice range accepted")
	}
}

func TestMineFiltered(t *testing.T) {
	f := build(t, defaultCfg())
	all, err := f.MineFiltered(0, 0.05, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := f.Mine(0, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(plain) {
		t.Fatalf("lift<=0 should not filter: %d vs %d", len(all), len(plain))
	}
	// Pick a threshold strictly between the minimum and maximum observed
	// lift so the filter provably removes some rules and keeps others.
	lo, hi := plain[0].Lift(), plain[0].Lift()
	for _, v := range plain {
		if l := v.Lift(); l < lo {
			lo = l
		} else if l > hi {
			hi = l
		}
	}
	if lo == hi {
		t.Skip("all rules share one lift value in this window")
	}
	threshold := (lo + hi) / 2
	lifted, err := f.MineFiltered(0, 0.05, 0.2, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(lifted) == 0 || len(lifted) >= len(plain) {
		t.Fatalf("lift filter at %g kept %d of %d", threshold, len(lifted), len(plain))
	}
	for _, v := range lifted {
		if v.Lift() < threshold {
			t.Errorf("rule %v lift %g below threshold", v.Rule, v.Lift())
		}
	}
}

func TestMineNDMatchesFilteredMine(t *testing.T) {
	f := build(t, defaultCfg())
	for _, q := range []struct{ s, c, l float64 }{
		{0.05, 0.2, 0},
		{0.05, 0.2, 1.0},
		{0.05, 0.2, 1.5},
		{0.1, 0.4, 2.0},
	} {
		want, err := f.MineFiltered(0, q.s, q.c, q.l)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.MineND(0, q.s, q.c, q.l)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("(%g,%g,%g): ND %d rules, filtered %d", q.s, q.c, q.l, len(got), len(want))
		}
		ids := map[rules.ID]bool{}
		for _, v := range want {
			ids[v.ID] = true
		}
		for _, v := range got {
			if !ids[v.ID] {
				t.Fatalf("ND produced unexpected rule %d", v.ID)
			}
		}
	}
}

func TestRecommendND(t *testing.T) {
	f := build(t, defaultCfg())
	reg, err := f.RecommendND(0, 0.05, 0.2, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Low) != 3 || len(reg.Measures) != 3 {
		t.Fatalf("region shape: %+v", reg)
	}
	base, err := f.MineND(0, 0.05, 0.2, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if reg.NumRules != len(base) {
		t.Errorf("region rules %d, MineND %d", reg.NumRules, len(base))
	}
	// Probe inside the cell: same answer.
	probe := make([]float64, 3)
	for d := range probe {
		hi := reg.High[d]
		if math.IsInf(hi, 1) {
			hi = reg.Low[d] + 1
		}
		probe[d] = (reg.Low[d] + hi) / 2
	}
	if probe[0] >= f.cfg.GenMinSupport && probe[1] >= f.cfg.GenMinConf {
		got, err := f.MineND(0, probe[0], probe[1], probe[2])
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(base) {
			t.Errorf("answer changed inside ND region: %d vs %d", len(got), len(base))
		}
	}
	if _, err := f.RecommendND(99, 0.05, 0.2, 0); err == nil {
		t.Error("bad window accepted")
	}
}

func TestTrajectoryAccessor(t *testing.T) {
	f := build(t, defaultCfg())
	views, err := f.Mine(0, 0.05, 0.2)
	if err != nil || len(views) == 0 {
		t.Fatalf("Mine: %v", err)
	}
	tr, err := f.Trajectory(views[0].ID, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Coverage() <= 0 {
		t.Errorf("Coverage = %g", tr.Coverage())
	}
	if _, err := f.Trajectory(views[0].ID, 0, 99); err == nil {
		t.Error("bad trajectory range accepted")
	}
	if f.Index().Windows() != f.Windows() {
		t.Errorf("Index().Windows() = %d", f.Index().Windows())
	}
}

// failingMiner injects mining failures to exercise error propagation. Miners
// run from parallel Build workers, so the countdown must be atomic.
type failingMiner struct{ after atomic.Int64 }

func newFailingMiner(after int64) *failingMiner {
	m := &failingMiner{}
	m.after.Store(after)
	return m
}

func (m *failingMiner) Name() string { return "failing" }

func (m *failingMiner) Mine(tx []txdb.Transaction, p mining.Params) (*mining.Result, error) {
	if m.after.Add(-1) < 0 {
		return nil, errInjected
	}
	return mining.Eclat{}.Mine(tx, p)
}

var errInjected = fmt.Errorf("injected mining failure")

func TestBuildPropagatesMinerFailure(t *testing.T) {
	db := testDB(20, 200, 10)
	cfg := defaultCfg()
	cfg.Miner = newFailingMiner(0)
	if _, err := Build(db, 0, 2, cfg); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("Build error = %v, want injected failure", err)
	}
	// Failure in a later window, with parallel workers: still surfaces.
	db2 := testDB(20, 200, 10)
	cfg.Miner = newFailingMiner(1)
	cfg.Parallelism = 4
	if _, err := Build(db2, 0, 3, cfg); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("parallel Build error = %v, want injected failure", err)
	}
}

func TestBuildPropagatesPartitionErrors(t *testing.T) {
	db := testDB(21, 50, 5)
	if _, err := Build(db, -5, 0, defaultCfg()); err == nil {
		t.Error("negative window size with zero batches accepted")
	}
	// Degenerate partitions surface txdb's descriptive errors.
	if _, err := Build(db, 0, db.Len()+1, defaultCfg()); err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Errorf("more batches than transactions: err = %v, want txdb error", err)
	}
	p, _ := db.TimeRange()
	if _, err := Build(db, p.End-p.Start+2, 0, defaultCfg()); err == nil || !strings.Contains(err.Error(), "timestamp span") {
		t.Errorf("oversized window: err = %v, want txdb error", err)
	}
	empty := txdb.NewDB()
	if _, err := Build(empty, 0, 3, defaultCfg()); err == nil || !strings.Contains(err.Error(), "empty database") {
		t.Errorf("empty database: err = %v, want txdb error", err)
	}
}

func TestAppendWindowAfterFailureLeavesStateConsistent(t *testing.T) {
	db := testDB(22, 300, 10)
	windows, err := db.PartitionByCount(3)
	if err != nil {
		t.Fatal(err)
	}
	fm := newFailingMiner(1)
	cfg := defaultCfg()
	cfg.Miner = fm
	f := New(db.Dict, cfg)
	if err := f.AppendWindow(windows[0]); err != nil {
		t.Fatal(err)
	}
	if err := f.AppendWindow(windows[1]); err == nil {
		t.Fatal("second append should fail")
	}
	// The knowledge base still answers for the committed window, and the
	// failed window can be retried once the fault clears.
	if _, err := f.Mine(0, 0.05, 0.2); err != nil {
		t.Fatalf("Mine after failed append: %v", err)
	}
	fm.after.Store(10)
	if err := f.AppendWindow(windows[1]); err != nil {
		t.Fatalf("retry append: %v", err)
	}
	if f.Windows() != 2 {
		t.Errorf("Windows = %d after retry", f.Windows())
	}
}
