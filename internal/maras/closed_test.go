package maras

import (
	"math/rand"
	"testing"

	"tara/internal/itemset"
)

func TestClosedCandidatesPaperExample(t *testing.T) {
	d := paperExample()
	pairwise := NonSpuriousCandidates(d, 2)
	closed, err := ClosedCandidates(d, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(closed) != len(pairwise) {
		t.Fatalf("closed %d candidates, pairwise %d", len(closed), len(pairwise))
	}
	for i := range closed {
		if closed[i].Assoc.Key() != pairwise[i].Assoc.Key() || closed[i].Kind != pairwise[i].Kind {
			t.Errorf("candidate %d: closed %v/%v vs pairwise %v/%v", i,
				closed[i].Assoc.Format(d), closed[i].Kind,
				pairwise[i].Assoc.Format(d), pairwise[i].Kind)
		}
	}
}

// TestClosedCandidatesDeepIntersection documents the Lemma 1 subtlety: an
// association that is the intersection of three reports but of no pair is a
// closed association (Definition 5), found by the closed-lattice route but
// outside the literal pairwise Definition 4.
func TestClosedCandidatesDeepIntersection(t *testing.T) {
	d := NewDataset()
	// Drug x with ADR q is shared by all three; every pair also shares one
	// extra drug, so no pairwise intersection equals {x} => {q}.
	d.AddReport([]string{"x", "a", "b"}, []string{"q"})
	d.AddReport([]string{"x", "a", "c"}, []string{"q"})
	d.AddReport([]string{"x", "b", "c"}, []string{"q"})

	want := Association{
		Drugs: itemset.Set{mustDrug(t, d, "x")},
		ADRs:  itemset.Set{mustADR(t, d, "q")},
	}
	if contains(NonSpuriousCandidates(d, 1), want) {
		t.Error("pairwise generation unexpectedly produced the triple intersection")
	}
	closed, err := ClosedCandidates(d, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(closed, want) {
		t.Error("closed generation missed the triple intersection")
	}
	// And it is indeed closed by definition.
	cl, ok := Closure(d, want)
	if !ok || !itemset.Equal(cl.Drugs, want.Drugs) || !itemset.Equal(cl.ADRs, want.ADRs) {
		t.Errorf("closure = %v, %v", cl, ok)
	}
}

func mustDrug(t *testing.T, d *Dataset, name string) itemset.Item {
	t.Helper()
	id, ok := d.Drugs.Lookup(name)
	if !ok {
		t.Fatalf("drug %q unknown", name)
	}
	return id
}

func mustADR(t *testing.T, d *Dataset, name string) itemset.Item {
	t.Helper()
	id, ok := d.ADRs.Lookup(name)
	if !ok {
		t.Fatalf("ADR %q unknown", name)
	}
	return id
}

func contains(cands []Candidate, a Association) bool {
	key := a.Key()
	for _, c := range cands {
		if c.Assoc.Key() == key {
			return true
		}
	}
	return false
}

func TestPropertyClosedSupersetOfPairwise(t *testing.T) {
	// Every pairwise candidate (Definitions 3-4) is a closed association,
	// so the closed route must produce a superset; and every closed
	// candidate must pass the Closure check.
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		d := NewDataset()
		n := 10 + r.Intn(30)
		for i := 0; i < n; i++ {
			nd := 1 + r.Intn(3)
			na := 1 + r.Intn(2)
			drugs := make([]string, nd)
			for j := range drugs {
				drugs[j] = "d" + string(rune('0'+r.Intn(6)))
			}
			adrs := make([]string, na)
			for j := range adrs {
				adrs[j] = "a" + string(rune('0'+r.Intn(4)))
			}
			d.AddReport(drugs, adrs)
		}
		closed, err := ClosedCandidates(d, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		closedKeys := map[string]bool{}
		for _, c := range closed {
			closedKeys[c.Assoc.Key()] = true
			cl, ok := Closure(d, c.Assoc)
			if !ok {
				t.Fatalf("trial %d: closed candidate unsupported", trial)
			}
			if !itemset.Equal(cl.Drugs, c.Assoc.Drugs) || !itemset.Equal(cl.ADRs, c.Assoc.ADRs) {
				t.Fatalf("trial %d: candidate %v not closed (closure %v)",
					trial, c.Assoc.Format(d), cl.Format(d))
			}
		}
		for _, c := range NonSpuriousCandidates(d, 1) {
			if !closedKeys[c.Assoc.Key()] {
				t.Fatalf("trial %d: pairwise candidate %v missing from closed route",
					trial, c.Assoc.Format(d))
			}
		}
	}
}

func TestClosedCandidatesMinDrugsAndCount(t *testing.T) {
	d := NewDataset()
	d.AddReport([]string{"a", "b"}, []string{"x"})
	d.AddReport([]string{"a", "b"}, []string{"x"})
	d.AddReport([]string{"c"}, []string{"y"})
	out, err := ClosedCandidates(d, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Assoc.Format(d) != "a + b => x" {
		t.Errorf("candidates = %+v", out)
	}
	if out[0].Kind != Explicit {
		t.Errorf("kind = %v", out[0].Kind)
	}
}

func TestClosedCandidatesNilDataset(t *testing.T) {
	if _, err := ClosedCandidates(nil, 2, 1); err == nil {
		t.Error("nil dataset accepted")
	}
}
