package maras_test

import (
	"fmt"
	"log"

	"tara/internal/maras"
)

// A minimal spontaneous-reporting scenario: drugs A and B interact to cause
// "bleeding" (never seen with either drug alone), while drug C causes
// "nausea" on its own, confounding its co-prescriptions.
func exampleReports() *maras.Dataset {
	d := maras.NewDataset()
	for i := 0; i < 10; i++ {
		d.AddReport([]string{"A", "B"}, []string{"bleeding"})
		d.AddReport([]string{"A"}, []string{"rash"})
		d.AddReport([]string{"B"}, []string{"rash"})
		d.AddReport([]string{"C"}, []string{"nausea"})
		d.AddReport([]string{"C", "D"}, []string{"nausea"})
	}
	return d
}

func ExampleMine() {
	signals, err := maras.Mine(exampleReports(), maras.Params{MinSupportCount: 5})
	if err != nil {
		log.Fatal(err)
	}
	ds := exampleReports()
	for _, s := range maras.TopK(signals, 2) {
		fmt.Printf("%s contrast=%.2f conf=%.2f (%s)\n",
			s.Assoc.Format(ds), s.Contrast, s.Confidence, s.Kind)
	}
	// The true interaction ranks first with high contrast; the confounded
	// C+D pair scores zero because C alone fully explains nausea.

	// Output:
	// A + B => bleeding contrast=0.50 conf=1.00 (explicit)
	// C + D => nausea contrast=0.00 conf=1.00 (explicit)
}

func ExampleNonSpuriousCandidates() {
	d := maras.NewDataset()
	d.AddReport([]string{"d1", "d2", "d3"}, []string{"a1", "a2"})
	d.AddReport([]string{"d1", "d2", "d4"}, []string{"a1", "a2"})
	for _, c := range maras.NonSpuriousCandidates(d, 2) {
		fmt.Printf("%s (%s)\n", c.Assoc.Format(d), c.Kind)
	}
	// The two reports themselves are explicit; their intersection is
	// implicit; no spurious partial interpretation (like d1 => a2) appears.

	// Output:
	// d1 + d2 => a1, a2 (implicit)
	// d1 + d2 + d3 => a1, a2 (explicit)
	// d1 + d2 + d4 => a1, a2 (explicit)
}

func ExampleEvidence() {
	d := exampleReports()
	signals, err := maras.Mine(d, maras.Params{MinSupportCount: 5})
	if err != nil {
		log.Fatal(err)
	}
	top := signals[0]
	reports := maras.Evidence(d, top.Assoc, 3)
	fmt.Printf("%s is supported by reports %v (of %d)\n",
		top.Assoc.Format(d), reports, top.CountXY)
	// Output:
	// A + B => bleeding is supported by reports [0 5 10] (of 10)
}
