package maras

import (
	"fmt"
	"sort"

	"tara/internal/itemset"
	"tara/internal/stats"
)

// ContextRule is one contextual association of a CAC (Definition 6): a
// proper non-empty subset of the target's drugs implying the same ADRs,
// with its confidence.
type ContextRule struct {
	Drugs      itemset.Set
	Confidence float64
}

// Signal is one scored MDAR candidate: the target association, its
// evidence, its contextual association cluster and the contrast scores.
type Signal struct {
	Assoc      Association
	Kind       SupportKind
	CountXY    uint32  // reports containing D ∪ A
	CountX     uint32  // reports containing D
	Confidence float64 // Pc(R), Formula 2
	Lift       float64 // reporting ratio RR, Formula 3

	CAC []ContextRule

	ContrastMax float64 // Formula 5
	ContrastAvg float64 // Formula 6
	ContrastCV  float64 // Formula 7
	Contrast    float64 // Formula 9 (the ranking score)
}

// Params controls MARAS mining.
type Params struct {
	// MinSupportCount is the minimum number of reports containing D ∪ A
	// for a candidate to be scored (absolute count; default 2).
	MinSupportCount uint32
	// Theta is the coefficient-of-variation penalty weight θ ∈ [0,1] of
	// Formula 8 (default 0.75, the paper's worked-example setting).
	Theta float64
	// MaxDrugs caps the target antecedent size; CAC enumeration is
	// exponential in it (default 5).
	MaxDrugs int
}

func (p Params) withDefaults() Params {
	if p.MinSupportCount == 0 {
		p.MinSupportCount = 2
	}
	if p.Theta == 0 {
		p.Theta = 0.75
	}
	if p.MaxDrugs == 0 {
		p.MaxDrugs = 5
	}
	return p
}

func (p Params) validate() error {
	if p.Theta < 0 || p.Theta > 1 {
		return fmt.Errorf("maras: theta %g outside [0,1]", p.Theta)
	}
	if p.MaxDrugs < 2 {
		return fmt.Errorf("maras: MaxDrugs %d must be at least 2", p.MaxDrugs)
	}
	return nil
}

// ContrastMax is Formula 5: the target confidence minus the maximum
// contextual confidence.
func ContrastMax(target float64, context []float64) float64 {
	if len(context) == 0 {
		return target
	}
	max := context[0]
	for _, c := range context[1:] {
		if c > max {
			max = c
		}
	}
	return target - max
}

// ContrastAvg is Formula 6: the target confidence minus the mean contextual
// confidence.
func ContrastAvg(target float64, context []float64) float64 {
	if len(context) == 0 {
		return target
	}
	return target - stats.Mean(context)
}

// penaltyG is Formula 8: 1 - θ·Cv(confidences), with the sample coefficient
// of variation (pinned by the paper's worked example).
func penaltyG(confidences []float64, theta float64) float64 {
	return 1 - theta*stats.SampleCV(confidences)
}

// ContrastCV is Formula 7: ContrastAvg weighted by the dispersion penalty of
// the contextual confidences.
func ContrastCV(target float64, context []float64, theta float64) float64 {
	return ContrastAvg(target, context) * penaltyG(context, theta)
}

// contrastScore is Formula 9: contextual associations are grouped by drug
// count i; each level contributes its mean confidence gap, weighted by
// H(i,n) = 1-(i-1)/n (contexts with fewer drugs matter more) and by its own
// dispersion penalty G; levels are averaged. byLevel[i] holds the
// confidences of the contexts with i drugs (1 <= i <= n-1).
func contrastScore(target float64, byLevel map[int][]float64, n int, theta float64) float64 {
	if len(byLevel) == 0 {
		return target
	}
	var sum float64
	levels := 0
	for i := 1; i < n; i++ {
		confs := byLevel[i]
		if len(confs) == 0 {
			continue
		}
		var gap float64
		for _, c := range confs {
			gap += target - c
		}
		gap /= float64(len(confs))
		h := 1 - float64(i-1)/float64(n)
		sum += gap * h * penaltyG(confs, theta)
		levels++
	}
	if levels == 0 {
		return target
	}
	return sum / float64(levels)
}

// Mine runs the full MARAS pipeline: learn the non-spurious multi-drug
// Drug-ADR associations, build each target's Contextual Association Cluster,
// and score it with the contrast measure. Signals are returned ranked by
// descending contrast (ties: higher support, then association key).
func Mine(d *Dataset, p Params) ([]Signal, error) {
	if err := assertValid(d); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	ix := buildIndex(d)
	candidates := NonSpuriousCandidates(d, 2)
	var out []Signal
	for _, c := range candidates {
		if len(c.Assoc.Drugs) > p.MaxDrugs {
			continue
		}
		xy, x := ix.countAssoc(c.Assoc)
		if xy < p.MinSupportCount || x == 0 {
			continue
		}
		s := Signal{
			Assoc:      c.Assoc,
			Kind:       c.Kind,
			CountXY:    xy,
			CountX:     x,
			Confidence: float64(xy) / float64(x),
		}
		// Lift (reporting ratio): P(A|D) / P(A).
		if ay := ix.countADRs(c.Assoc.ADRs); ay > 0 {
			s.Lift = s.Confidence * float64(ix.n) / float64(ay)
		}
		byLevel := map[int][]float64{}
		var all []float64
		err := itemset.ProperNonEmptySubsets(c.Assoc.Drugs, func(sub itemset.Set) {
			ctx := Association{Drugs: itemset.Clone(sub), ADRs: c.Assoc.ADRs}
			cxy, cx := ix.countAssoc(ctx)
			conf := 0.0
			if cx > 0 {
				conf = float64(cxy) / float64(cx)
			}
			s.CAC = append(s.CAC, ContextRule{Drugs: ctx.Drugs, Confidence: conf})
			byLevel[len(sub)] = append(byLevel[len(sub)], conf)
			all = append(all, conf)
		})
		if err != nil {
			return nil, err
		}
		n := len(c.Assoc.Drugs)
		s.ContrastMax = ContrastMax(s.Confidence, all)
		s.ContrastAvg = ContrastAvg(s.Confidence, all)
		s.ContrastCV = ContrastCV(s.Confidence, all, p.Theta)
		s.Contrast = contrastScore(s.Confidence, byLevel, n, p.Theta)
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Contrast != b.Contrast {
			return a.Contrast > b.Contrast
		}
		if a.CountXY != b.CountXY {
			return a.CountXY > b.CountXY
		}
		return a.Assoc.Key() < b.Assoc.Key()
	})
	return out, nil
}

// countADRs returns the number of reports containing every ADR in as.
func (ix *index) countADRs(as itemset.Set) uint32 {
	ix.buf = ix.buf[:0]
	for _, x := range as {
		b, ok := ix.adrs[x]
		if !ok {
			return 0
		}
		ix.buf = append(ix.buf, b)
	}
	return andAll(ix.tmp, ix.buf).count()
}
