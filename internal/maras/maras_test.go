package maras

import (
	"math"
	"testing"

	"tara/internal/itemset"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// TestContrastCVWorkedExample reproduces the paper's worked example: CACs
// with confidences {1, 0.2, 0.8} and {1, 0.5, 0.55} at θ=0.75 score 0.18 and
// 0.45 respectively, flipping the preference relative to contrast_avg.
func TestContrastCVWorkedExample(t *testing.T) {
	c1 := []float64{0.2, 0.8}
	c2 := []float64{0.5, 0.55}
	if got := ContrastAvg(1, c1); !approx(got, 0.5, 1e-12) {
		t.Errorf("ContrastAvg(C1) = %g", got)
	}
	if got := ContrastAvg(1, c2); !approx(got, 0.475, 1e-12) {
		t.Errorf("ContrastAvg(C2) = %g", got)
	}
	// Plain averaging prefers C1 — the flaw the CV penalty fixes.
	if ContrastAvg(1, c1) <= ContrastAvg(1, c2) {
		t.Fatal("precondition violated: avg should favor C1")
	}
	cv1 := ContrastCV(1, c1, 0.75)
	cv2 := ContrastCV(1, c2, 0.75)
	if !approx(cv1, 0.1818, 0.001) {
		t.Errorf("ContrastCV(C1) = %g, want ~0.18", cv1)
	}
	if !approx(cv2, 0.4510, 0.001) {
		t.Errorf("ContrastCV(C2) = %g, want ~0.45", cv2)
	}
	if cv1 >= cv2 {
		t.Error("contrast_cv should favor C2 over C1")
	}
}

func TestContrastMax(t *testing.T) {
	if got := ContrastMax(0.9, []float64{0.2, 0.5}); !approx(got, 0.4, 1e-12) {
		t.Errorf("ContrastMax = %g", got)
	}
	// Negative when a drug subset explains the ADRs better.
	if got := ContrastMax(0.3, []float64{0.8}); got >= 0 {
		t.Errorf("ContrastMax = %g, want negative", got)
	}
	if got := ContrastMax(0.7, nil); got != 0.7 {
		t.Errorf("ContrastMax with empty context = %g", got)
	}
}

func TestContrastScoreLevelWeighting(t *testing.T) {
	// Two levels with identical gaps: level 1 (single drugs) carries
	// H(1,3)=1, level 2 carries H(2,3)=2/3, so a low-confidence singleton
	// context hurts less than... verify the exact arithmetic instead.
	target := 1.0
	byLevel := map[int][]float64{
		1: {0.5, 0.5, 0.5}, // gap 0.5, CV 0 => contribution 0.5 * 1
		2: {0.2, 0.2, 0.2}, // gap 0.8, CV 0 => contribution 0.8 * 2/3
	}
	got := contrastScore(target, byLevel, 3, 0.75)
	want := (0.5*1 + 0.8*(2.0/3)) / 2
	if !approx(got, want, 1e-12) {
		t.Errorf("contrastScore = %g, want %g", got, want)
	}
}

func TestContrastScoreEmptyContext(t *testing.T) {
	if got := contrastScore(0.8, nil, 2, 0.75); got != 0.8 {
		t.Errorf("empty-context score = %g", got)
	}
}

// paperExample builds the two-report example of Section 2.3.2.
func paperExample() *Dataset {
	d := NewDataset()
	d.AddReport([]string{"d1", "d2", "d3"}, []string{"a1", "a2"})
	d.AddReport([]string{"d1", "d2", "d4"}, []string{"a1", "a2"})
	return d
}

func TestNonSpuriousCandidatesPaperExample(t *testing.T) {
	d := paperExample()
	cands := NonSpuriousCandidates(d, 2)
	// Expected: R1 = d1d2d3 => a1a2 (explicit), R3 = d1d2d4 => a1a2
	// (explicit), R4 = d1d2 => a1a2 (implicit). Nothing else.
	if len(cands) != 3 {
		t.Fatalf("got %d candidates: %+v", len(cands), cands)
	}
	kinds := map[string]SupportKind{}
	for _, c := range cands {
		kinds[c.Assoc.Format(d)] = c.Kind
	}
	if k, ok := kinds["d1 + d2 + d3 => a1, a2"]; !ok || k != Explicit {
		t.Errorf("R1 missing or wrong kind: %v", kinds)
	}
	if k, ok := kinds["d1 + d2 + d4 => a1, a2"]; !ok || k != Explicit {
		t.Errorf("R3 missing or wrong kind: %v", kinds)
	}
	if k, ok := kinds["d1 + d2 => a1, a2"]; !ok || k != Implicit {
		t.Errorf("R4 missing or wrong kind: %v", kinds)
	}
}

func TestNoSpuriousPartialInterpretations(t *testing.T) {
	d := paperExample()
	cands := NonSpuriousCandidates(d, 1)
	for _, c := range cands {
		// Every candidate must be closed (Definition 5 / Lemma 1).
		cl, ok := Closure(d, c.Assoc)
		if !ok {
			t.Fatalf("candidate %v unsupported", c.Assoc.Format(d))
		}
		if !itemset.Equal(cl.Drugs, c.Assoc.Drugs) || !itemset.Equal(cl.ADRs, c.Assoc.ADRs) {
			t.Errorf("candidate %v not closed: closure %v", c.Assoc.Format(d), cl.Format(d))
		}
	}
	// The misleading partial interpretation d1 => a2 must not appear.
	for _, c := range cands {
		if c.Assoc.Format(d) == "d1 => a2" {
			t.Error("spurious partial interpretation generated")
		}
	}
}

func TestDedupExplicit(t *testing.T) {
	d := NewDataset()
	d.AddReport([]string{"x", "y"}, []string{"a"})
	d.AddReport([]string{"x", "y"}, []string{"a"}) // duplicate pattern
	cands := NonSpuriousCandidates(d, 2)
	if len(cands) != 1 || cands[0].Kind != Explicit {
		t.Fatalf("candidates = %+v", cands)
	}
}

func TestAddReportDropsEmpty(t *testing.T) {
	d := NewDataset()
	d.AddReport(nil, []string{"a"})
	d.AddReport([]string{"x"}, nil)
	if d.Len() != 0 {
		t.Errorf("empty-sided reports kept: %d", d.Len())
	}
}

func TestIsExplicitlySupported(t *testing.T) {
	d := paperExample()
	x, _ := d.Drugs.Lookup("d1")
	y, _ := d.Drugs.Lookup("d2")
	z, _ := d.Drugs.Lookup("d3")
	a1, _ := d.ADRs.Lookup("a1")
	a2, _ := d.ADRs.Lookup("a2")
	if !IsExplicitlySupported(d, Association{Drugs: itemset.New(x, y, z), ADRs: itemset.New(a1, a2)}) {
		t.Error("explicit report not recognized")
	}
	if IsExplicitlySupported(d, Association{Drugs: itemset.New(x, y), ADRs: itemset.New(a1, a2)}) {
		t.Error("implicit intersection claimed explicit")
	}
}

// plantedDataset builds a synthetic SRS where drugs A and B interact to
// cause ADR "inter" while drug C alone causes ADR "solo".
func plantedDataset() *Dataset {
	d := NewDataset()
	// A+B co-prescriptions: strong interaction ADR.
	for i := 0; i < 20; i++ {
		d.AddReport([]string{"A", "B"}, []string{"inter"})
	}
	// A alone and B alone: a different, mild ADR profile.
	for i := 0; i < 30; i++ {
		d.AddReport([]string{"A"}, []string{"mild"})
		d.AddReport([]string{"B"}, []string{"mild"})
	}
	// C causes solo regardless of co-medication.
	for i := 0; i < 25; i++ {
		d.AddReport([]string{"C"}, []string{"solo"})
		d.AddReport([]string{"C", "D"}, []string{"solo"})
	}
	return d
}

func TestMineFindsPlantedInteraction(t *testing.T) {
	d := plantedDataset()
	signals, err := Mine(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(signals) == 0 {
		t.Fatal("no signals")
	}
	top := signals[0]
	if got := top.Assoc.Format(d); got != "A + B => inter" {
		t.Fatalf("top signal = %q (contrast %g), want A+B=>inter; all: %d signals",
			got, top.Contrast, len(signals))
	}
	if top.Confidence != 1 {
		t.Errorf("top confidence = %g", top.Confidence)
	}
	if top.Contrast <= 0.5 {
		t.Errorf("top contrast = %g, expected strong", top.Contrast)
	}
	// The confounded C+D => solo signal must rank below: C alone explains
	// solo, so its contrast is weak.
	for _, s := range signals {
		if s.Assoc.Format(d) == "C + D => solo" {
			if s.Contrast >= top.Contrast {
				t.Errorf("confounded signal contrast %g not below planted %g", s.Contrast, top.Contrast)
			}
			if s.ContrastMax > 0.01 {
				t.Errorf("confounded ContrastMax = %g, want ~0", s.ContrastMax)
			}
		}
	}
}

func TestMineCACShape(t *testing.T) {
	d := NewDataset()
	for i := 0; i < 5; i++ {
		d.AddReport([]string{"p", "q", "r"}, []string{"z"})
	}
	signals, err := Mine(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range signals {
		if len(s.Assoc.Drugs) == 3 {
			found = true
			if len(s.CAC) != 6 { // 2^3 - 2 proper non-empty subsets
				t.Errorf("CAC size = %d, want 6", len(s.CAC))
			}
		}
	}
	if !found {
		t.Fatal("3-drug target not mined")
	}
}

func TestMineParamValidation(t *testing.T) {
	d := plantedDataset()
	if _, err := Mine(d, Params{Theta: 2}); err == nil {
		t.Error("theta > 1 accepted")
	}
	if _, err := Mine(d, Params{MaxDrugs: 1}); err == nil {
		t.Error("MaxDrugs 1 accepted")
	}
	if _, err := Mine(nil, Params{}); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestMineMinSupport(t *testing.T) {
	d := NewDataset()
	d.AddReport([]string{"a", "b"}, []string{"x"}) // support 1
	signals, err := Mine(d, Params{MinSupportCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(signals) != 0 {
		t.Errorf("below-support signal emitted: %+v", signals)
	}
	signals, err = Mine(d, Params{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(signals) != 1 {
		t.Errorf("signals = %d, want 1", len(signals))
	}
}

func TestMineDeterministic(t *testing.T) {
	d := plantedDataset()
	a, err := Mine(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i].Assoc.Key() != b[i].Assoc.Key() || a[i].Contrast != b[i].Contrast {
			t.Fatalf("rank %d differs", i)
		}
	}
}

func TestLiftComputation(t *testing.T) {
	d := NewDataset()
	// 10 reports: 4 with {a,b}=>x, 6 others with x from other drugs, so
	// P(x)=1.0 — lift of any rule onto x is 1.
	for i := 0; i < 4; i++ {
		d.AddReport([]string{"a", "b"}, []string{"x"})
	}
	for i := 0; i < 6; i++ {
		d.AddReport([]string{"c"}, []string{"x"})
	}
	signals, err := Mine(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(signals) != 1 {
		t.Fatalf("signals = %d", len(signals))
	}
	if !approx(signals[0].Lift, 1.0, 1e-12) {
		t.Errorf("Lift = %g, want 1", signals[0].Lift)
	}
}

func TestRankBaselineIncludesSpurious(t *testing.T) {
	d := NewDataset()
	// One pattern {a,b,c} => x seen 5 times. Baselines enumerate the
	// partial drug subsets; MARAS does not.
	for i := 0; i < 5; i++ {
		d.AddReport([]string{"a", "b", "c"}, []string{"x"})
	}
	base, err := RankBaseline(d, ByConfidence, 1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Subsets with >= 2 drugs: {ab},{ac},{bc},{abc} => 4 associations.
	if len(base) != 4 {
		t.Fatalf("baseline candidates = %d, want 4", len(base))
	}
	signals, err := Mine(d, Params{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(signals) != 1 {
		t.Fatalf("MARAS signals = %d, want 1 (non-spurious only)", len(signals))
	}
}

func TestRankBaselineOrdering(t *testing.T) {
	d := plantedDataset()
	for _, m := range []BaselineMeasure{ByConfidence, ByReportingRatio} {
		out, err := RankBaseline(d, m, 2, 5, 10)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(out); i++ {
			if out[i].Score > out[i-1].Score {
				t.Errorf("measure %d: order violated at %d", m, i)
			}
		}
	}
	if _, err := RankBaseline(d, ByConfidence, 1, 1, 0); err == nil {
		t.Error("maxDrugs 1 accepted")
	}
	if _, err := RankBaseline(nil, ByConfidence, 1, 5, 0); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestTopK(t *testing.T) {
	s := []Signal{{}, {}, {}}
	if got := TopK(s, 2); len(got) != 2 {
		t.Errorf("TopK(2) = %d", len(got))
	}
	if got := TopK(s, 0); len(got) != 3 {
		t.Errorf("TopK(0) = %d", len(got))
	}
	if got := TopK(s, 9); len(got) != 3 {
		t.Errorf("TopK(9) = %d", len(got))
	}
}

func TestAssociationKeyDistinct(t *testing.T) {
	a := Association{Drugs: itemset.New(1), ADRs: itemset.New(2, 3)}
	b := Association{Drugs: itemset.New(1, 2), ADRs: itemset.New(3)}
	if a.Key() == b.Key() {
		t.Error("associations with different splits share a key")
	}
}

func TestClosureUnsupported(t *testing.T) {
	d := paperExample()
	if _, ok := Closure(d, Association{Drugs: itemset.New(99), ADRs: itemset.New(0)}); ok {
		t.Error("closure of unsupported association reported ok")
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(129)
	if b.count() != 2 {
		t.Errorf("count = %d", b.count())
	}
	other := newBitset(130)
	other.set(129)
	dst := newBitset(130)
	if got := andAll(dst, []bitset{b, other}).count(); got != 1 {
		t.Errorf("andAll count = %d", got)
	}
	// Empty operand list yields all-ones.
	if got := andAll(dst, nil); got.count() == 0 {
		t.Error("andAll(nil) should saturate")
	}
}

func TestKindString(t *testing.T) {
	if Explicit.String() != "explicit" || Implicit.String() != "implicit" {
		t.Error("SupportKind strings wrong")
	}
}

func TestEvidence(t *testing.T) {
	d := paperExample()
	x, _ := d.Drugs.Lookup("d1")
	y, _ := d.Drugs.Lookup("d2")
	a1, _ := d.ADRs.Lookup("a1")
	a := Association{Drugs: itemset.New(x, y), ADRs: itemset.New(a1)}
	got := Evidence(d, a, 0)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Evidence = %v, want [0 1]", got)
	}
	if got := Evidence(d, a, 1); len(got) != 1 {
		t.Errorf("capped Evidence = %v", got)
	}
	none := Association{Drugs: itemset.New(99), ADRs: itemset.New(a1)}
	if got := Evidence(d, none, 0); got != nil {
		t.Errorf("Evidence of unsupported = %v", got)
	}
}
