package maras

import (
	"fmt"
	"sort"

	"tara/internal/itemset"
)

// BaselineSignal is an unfiltered multi-drug Drug-ADR association scored by
// a plain interestingness measure, as produced by the paper's two baseline
// columns in Table 2 (Confidence and Reporting Ratio). Baselines do not
// remove spurious partial interpretations, so their candidate space includes
// every drug-subset variant of each reported pattern.
type BaselineSignal struct {
	Assoc      Association
	CountXY    uint32
	Confidence float64
	Lift       float64
	Score      float64
}

// BaselineMeasure selects the baseline ranking score.
type BaselineMeasure int

const (
	// ByConfidence ranks by Formula 2 — the paper's "Confidence" column.
	ByConfidence BaselineMeasure = iota
	// ByReportingRatio ranks by lift/RR (Formula 3) — the "Reporting
	// Ratio" column.
	ByReportingRatio
)

// RankBaseline generates the spurious-inclusive candidate space (every
// multi-drug subset of every reported pattern paired with the pattern's
// ADRs) and ranks it by the chosen measure. minCount filters by joint
// support; maxDrugs caps enumeration.
func RankBaseline(d *Dataset, m BaselineMeasure, minCount uint32, maxDrugs int, topK int) ([]BaselineSignal, error) {
	if err := assertValid(d); err != nil {
		return nil, err
	}
	if maxDrugs < 2 {
		return nil, fmt.Errorf("maras: maxDrugs %d must be at least 2", maxDrugs)
	}
	ix := buildIndex(d)
	seen := map[string]bool{}
	var out []BaselineSignal
	consider := func(a Association) error {
		k := a.Key()
		if seen[k] {
			return nil
		}
		seen[k] = true
		xy, x := ix.countAssoc(a)
		if xy < minCount || x == 0 {
			return nil
		}
		s := BaselineSignal{
			Assoc:      a,
			CountXY:    xy,
			Confidence: float64(xy) / float64(x),
		}
		if ay := ix.countADRs(a.ADRs); ay > 0 {
			s.Lift = s.Confidence * float64(ix.n) / float64(ay)
		}
		if m == ByReportingRatio {
			s.Score = s.Lift
		} else {
			s.Score = s.Confidence
		}
		out = append(out, s)
		return nil
	}
	for _, r := range d.Reports {
		drugs := r.Drugs
		if len(drugs) > maxDrugs {
			drugs = drugs[:maxDrugs]
		}
		if len(drugs) < 2 {
			continue
		}
		if err := consider(Association{Drugs: drugs, ADRs: r.ADRs}); err != nil {
			return nil, err
		}
		err := itemset.ProperNonEmptySubsets(drugs, func(sub itemset.Set) {
			if len(sub) < 2 {
				return
			}
			// Error from consider is impossible today; keep the shape for
			// future counting failures.
			_ = consider(Association{Drugs: itemset.Clone(sub), ADRs: r.ADRs})
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.CountXY != b.CountXY {
			return a.CountXY > b.CountXY
		}
		return a.Assoc.Key() < b.Assoc.Key()
	})
	if topK > 0 && topK < len(out) {
		out = out[:topK]
	}
	return out, nil
}

// TopK truncates a ranked signal list.
func TopK(signals []Signal, k int) []Signal {
	if k > 0 && k < len(signals) {
		return signals[:k]
	}
	return signals
}
