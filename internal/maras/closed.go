package maras

import (
	"fmt"
	"sort"

	"tara/internal/itemset"
	"tara/internal/mining"
	"tara/internal/txdb"
)

// adrOffset maps ADR identifiers into an item id range disjoint from drugs,
// so a report can be mined as one flat transaction (I_Drug ∩ I_ADR = ∅).
const adrOffset itemset.Item = 1 << 24

// ClosedCandidates learns the non-spurious Drug-ADR associations via closed
// frequent-itemset mining over the flattened reports — the other direction
// of Lemma 1 ("identifying S_exp ∪ S_imp is equivalent to identifying
// closed associations"). Unlike NonSpuriousCandidates, which follows the
// paper's pairwise Definitions 3–4 literally, the closed-lattice route also
// captures associations only expressible as intersections of three or more
// reports; the two coincide on typical SRS data and on the paper's worked
// examples (see the cross-check tests).
//
// minCount is the absolute support threshold of the closed mining pass
// (at least 1); candidates with fewer supporting reports are not produced.
func ClosedCandidates(d *Dataset, minDrugs int, minCount uint32) ([]Candidate, error) {
	if err := assertValid(d); err != nil {
		return nil, err
	}
	if uint32(d.Drugs.Len()) >= uint32(adrOffset) {
		return nil, fmt.Errorf("maras: %d drugs exceed the id space", d.Drugs.Len())
	}
	tx := make([]txdb.Transaction, len(d.Reports))
	for i, r := range d.Reports {
		items := make(itemset.Set, 0, len(r.Drugs)+len(r.ADRs))
		items = append(items, r.Drugs...)
		for _, a := range r.ADRs {
			items = append(items, a+adrOffset)
		}
		tx[i] = txdb.Transaction{Time: int64(i), Items: itemset.Canonicalize(items)}
	}
	res, err := mining.Closed(mining.Eclat{}, tx, mining.Params{MinCount: minCount})
	if err != nil {
		return nil, err
	}
	var out []Candidate
	for _, fs := range res.Sets {
		var drugs, adrs itemset.Set
		for _, it := range fs.Items {
			if it >= adrOffset {
				adrs = append(adrs, it-adrOffset)
			} else {
				drugs = append(drugs, it)
			}
		}
		if len(drugs) < minDrugs || len(adrs) == 0 {
			continue
		}
		a := Association{Drugs: drugs, ADRs: adrs}
		kind := Implicit
		if IsExplicitlySupported(d, a) {
			kind = Explicit
		}
		out = append(out, Candidate{Assoc: a, Kind: kind})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Assoc.Key() < out[j].Assoc.Key() })
	return out, nil
}
