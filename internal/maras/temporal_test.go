package maras

import (
	"strings"
	"testing"
)

// quarterWith builds one quarter of reports; when interacting is true the
// A+B => inter signal is present, otherwise A and B appear only solo.
func quarterWith(interacting bool) *Dataset {
	d := NewDataset()
	for i := 0; i < 25; i++ {
		d.AddReport([]string{"A"}, []string{"mild"})
		d.AddReport([]string{"B"}, []string{"mild"})
		d.AddReport([]string{"C", "D"}, []string{"steady"})
	}
	if interacting {
		for i := 0; i < 15; i++ {
			d.AddReport([]string{"A", "B"}, []string{"inter"})
		}
	}
	return d
}

func TestTemporalMineEmergingSignal(t *testing.T) {
	quarters := []*Dataset{
		quarterWith(false),
		quarterWith(false),
		quarterWith(true), // the interaction appears in the newest quarter
	}
	out, err := TemporalMine(quarters, Params{MinSupportCount: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no temporal signals")
	}
	top := out[0]
	if !strings.Contains(top.Label, "inter") {
		t.Fatalf("top emerging signal = %q, want the A+B interaction", top.Label)
	}
	if top.Present[0] || top.Present[1] || !top.Present[2] {
		t.Errorf("Present = %v, want only the last quarter", top.Present)
	}
	if top.Emerging <= 0 {
		t.Errorf("Emerging = %g, want positive", top.Emerging)
	}
	if top.Peak != top.Contrast[2] {
		t.Errorf("Peak = %g, Contrast[2] = %g", top.Peak, top.Contrast[2])
	}
}

func TestTemporalMineSteadySignalNotEmerging(t *testing.T) {
	quarters := []*Dataset{quarterWith(true), quarterWith(true), quarterWith(true)}
	out, err := TemporalMine(quarters, Params{MinSupportCount: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range out {
		if strings.Contains(s.Label, "steady") {
			if s.Emerging > 1e-9 {
				t.Errorf("steady signal Emerging = %g, want ~0", s.Emerging)
			}
			for qi, p := range s.Present {
				if !p {
					t.Errorf("steady signal absent in quarter %d", qi)
				}
			}
		}
	}
}

func TestPersistentFilter(t *testing.T) {
	quarters := []*Dataset{quarterWith(false), quarterWith(true), quarterWith(true)}
	out, err := TemporalMine(quarters, Params{MinSupportCount: 5})
	if err != nil {
		t.Fatal(err)
	}
	persistent := Persistent(out, 3)
	for _, s := range persistent {
		for qi, p := range s.Present {
			if !p {
				t.Errorf("persistent signal %q absent in quarter %d", s.Label, qi)
			}
		}
	}
	// The late-appearing interaction must be filtered out at minQuarters 3
	// but kept at 2.
	for _, s := range persistent {
		if strings.Contains(s.Label, "inter") {
			t.Error("interaction present in only 2 quarters survived minQuarters=3")
		}
	}
	found := false
	for _, s := range Persistent(out, 2) {
		if strings.Contains(s.Label, "inter") {
			found = true
		}
	}
	if !found {
		t.Error("interaction missing from minQuarters=2 filter")
	}
}

func TestTemporalMineSingleQuarter(t *testing.T) {
	out, err := TemporalMine([]*Dataset{quarterWith(true)}, Params{MinSupportCount: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no signals from single quarter")
	}
	// With one quarter, Emerging equals the quarter's contrast.
	for _, s := range out {
		if s.Emerging != s.Contrast[0] {
			t.Errorf("single-quarter Emerging = %g, contrast %g", s.Emerging, s.Contrast[0])
		}
	}
}

func TestTemporalMineErrors(t *testing.T) {
	if _, err := TemporalMine(nil, Params{}); err == nil {
		t.Error("empty quarter list accepted")
	}
	if _, err := TemporalMine([]*Dataset{quarterWith(true)}, Params{Theta: 5}); err == nil {
		t.Error("bad params accepted")
	}
}
