// Package maras implements MARAS, the multi-drug adverse reaction signaling
// machinery of the paper (Section 2.3): non-spurious Drug–ADR association
// learning via explicitly/implicitly supported associations (Definitions
// 2–5, Lemma 1), Contextual Association Clusters (Definitions 6–7), and the
// contrast interestingness measure (Formulas 5–9) that ranks MDAR signals.
package maras

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"tara/internal/itemset"
	"tara/internal/txdb"
)

// Report is one spontaneous ADR report: the reported drug combination and
// the observed adverse reactions, in their respective identifier spaces.
type Report struct {
	Drugs itemset.Set
	ADRs  itemset.Set
}

// Dataset is a collection of ADR reports with separate drug and ADR
// dictionaries (the paper's I_Drug and I_ADR are disjoint by construction).
type Dataset struct {
	Drugs   *txdb.Dict
	ADRs    *txdb.Dict
	Reports []Report
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{Drugs: txdb.NewDict(), ADRs: txdb.NewDict()}
}

// AddReport appends a report given drug and ADR names. Reports without at
// least one drug and one ADR are silently dropped — they carry no
// association evidence.
func (d *Dataset) AddReport(drugs, adrs []string) {
	if len(drugs) == 0 || len(adrs) == 0 {
		return
	}
	ds := make(itemset.Set, 0, len(drugs))
	for _, n := range drugs {
		ds = append(ds, d.Drugs.Add(n))
	}
	as := make(itemset.Set, 0, len(adrs))
	for _, n := range adrs {
		as = append(as, d.ADRs.Add(n))
	}
	d.Reports = append(d.Reports, Report{
		Drugs: itemset.Canonicalize(ds),
		ADRs:  itemset.Canonicalize(as),
	})
}

// Len returns the number of reports.
func (d *Dataset) Len() int { return len(d.Reports) }

// Association is a Drug-ADR association D ⇒ A (Definition 2).
type Association struct {
	Drugs itemset.Set
	ADRs  itemset.Set
}

// Key returns a canonical string key (drug-set length, drug key, ADR key).
func (a Association) Key() string {
	var b strings.Builder
	b.Grow(2 + 4*(len(a.Drugs)+len(a.ADRs)))
	b.WriteByte(byte(len(a.Drugs)))
	b.WriteString(itemset.Key(a.Drugs))
	b.WriteString(itemset.Key(a.ADRs))
	return b.String()
}

// Format renders the association with dictionary names.
func (a Association) Format(d *Dataset) string {
	var b strings.Builder
	for i, x := range a.Drugs {
		if i > 0 {
			b.WriteString(" + ")
		}
		b.WriteString(d.Drugs.Name(x))
	}
	b.WriteString(" => ")
	for i, x := range a.ADRs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.ADRs.Name(x))
	}
	return b.String()
}

// SupportKind classifies how a non-spurious association is evidenced.
type SupportKind int

const (
	// Explicit: at least one report contains exactly these drugs and ADRs
	// and nothing else (Definition 3).
	Explicit SupportKind = iota
	// Implicit: the association is the intersection of at least two
	// reports' drug and ADR sets and is not explicit (Definition 4).
	Implicit
)

func (k SupportKind) String() string {
	if k == Explicit {
		return "explicit"
	}
	return "implicit"
}

// bitset over report indexes.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << (i % 64) }

func (b bitset) count() uint32 {
	var c int
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return uint32(c)
}

func andAll(dst bitset, sets []bitset) bitset {
	if len(sets) == 0 {
		for i := range dst {
			dst[i] = ^uint64(0)
		}
		return dst
	}
	copy(dst, sets[0])
	for _, s := range sets[1:] {
		for i := range dst {
			dst[i] &= s[i]
		}
	}
	return dst
}

// index provides occurrence bitsets per drug and per ADR for fast support
// and confidence counting.
type index struct {
	n     int
	drugs map[itemset.Item]bitset
	adrs  map[itemset.Item]bitset
	buf   []bitset // reusable AND operands
	tmp   bitset
	tmp2  bitset
}

func buildIndex(d *Dataset) *index {
	ix := &index{
		n:     len(d.Reports),
		drugs: map[itemset.Item]bitset{},
		adrs:  map[itemset.Item]bitset{},
	}
	for i, r := range d.Reports {
		for _, x := range r.Drugs {
			b := ix.drugs[x]
			if b == nil {
				b = newBitset(ix.n)
				ix.drugs[x] = b
			}
			b.set(i)
		}
		for _, x := range r.ADRs {
			b := ix.adrs[x]
			if b == nil {
				b = newBitset(ix.n)
				ix.adrs[x] = b
			}
			b.set(i)
		}
	}
	ix.tmp = newBitset(ix.n)
	ix.tmp2 = newBitset(ix.n)
	return ix
}

// countDrugs returns the number of reports containing every drug in ds.
func (ix *index) countDrugs(ds itemset.Set) uint32 {
	ix.buf = ix.buf[:0]
	for _, x := range ds {
		b, ok := ix.drugs[x]
		if !ok {
			return 0
		}
		ix.buf = append(ix.buf, b)
	}
	return andAll(ix.tmp, ix.buf).count()
}

// countAssoc returns (|reports ⊇ D∪A|, |reports ⊇ D|).
func (ix *index) countAssoc(a Association) (xy, x uint32) {
	ix.buf = ix.buf[:0]
	for _, d := range a.Drugs {
		b, ok := ix.drugs[d]
		if !ok {
			return 0, 0
		}
		ix.buf = append(ix.buf, b)
	}
	x = andAll(ix.tmp, ix.buf).count()
	if x == 0 {
		return 0, 0
	}
	ix.buf = ix.buf[:0]
	ix.buf = append(ix.buf, ix.tmp)
	for _, d := range a.ADRs {
		b, ok := ix.adrs[d]
		if !ok {
			return 0, x
		}
		ix.buf = append(ix.buf, b)
	}
	xy = andAll(ix.tmp2, ix.buf).count()
	return xy, x
}

// Candidate is a non-spurious Drug-ADR association with its evidence kind.
type Candidate struct {
	Assoc Association
	Kind  SupportKind
}

// NonSpuriousCandidates learns the explicitly and implicitly supported
// Drug-ADR associations of the dataset per Definitions 3 and 4: deduplicated
// whole reports are explicit; pairwise drug/ADR intersections of distinct
// report patterns that are not themselves reports are implicit. Spurious
// partial interpretations are never generated (Lemma 1). Only associations
// with at least minDrugs drugs and one ADR are returned — MDAR signaling
// uses minDrugs = 2.
func NonSpuriousCandidates(d *Dataset, minDrugs int) []Candidate {
	type pattern struct {
		drugs, adrs itemset.Set
	}
	seen := map[string]pattern{}
	var uniq []pattern
	for _, r := range d.Reports {
		k := Association{Drugs: r.Drugs, ADRs: r.ADRs}.Key()
		if _, ok := seen[k]; ok {
			continue
		}
		p := pattern{drugs: r.Drugs, adrs: r.ADRs}
		seen[k] = p
		uniq = append(uniq, p)
	}
	explicit := map[string]bool{}
	var out []Candidate
	for _, p := range uniq {
		a := Association{Drugs: p.drugs, ADRs: p.adrs}
		explicit[a.Key()] = true
		if len(p.drugs) >= minDrugs {
			out = append(out, Candidate{Assoc: a, Kind: Explicit})
		}
	}
	implicit := map[string]bool{}
	for i := 0; i < len(uniq); i++ {
		for j := i + 1; j < len(uniq); j++ {
			ds := itemset.Intersect(uniq[i].drugs, uniq[j].drugs)
			if len(ds) < minDrugs {
				continue
			}
			as := itemset.Intersect(uniq[i].adrs, uniq[j].adrs)
			if len(as) == 0 {
				continue
			}
			a := Association{Drugs: ds, ADRs: as}
			k := a.Key()
			if explicit[k] || implicit[k] {
				continue
			}
			implicit[k] = true
			out = append(out, Candidate{Assoc: a, Kind: Implicit})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Assoc.Key() < out[j].Assoc.Key() })
	return out
}

// IsExplicitlySupported reports whether some report matches the association
// exactly (Definition 3).
func IsExplicitlySupported(d *Dataset, a Association) bool {
	for _, r := range d.Reports {
		if itemset.Equal(r.Drugs, a.Drugs) && itemset.Equal(r.ADRs, a.ADRs) {
			return true
		}
	}
	return false
}

// Closure returns the intersection of all reports containing the
// association; the association is closed (Definition 5) iff the closure
// equals the association itself. ok is false when no report contains it.
func Closure(d *Dataset, a Association) (Association, bool) {
	var drugs, adrs itemset.Set
	found := false
	for _, r := range d.Reports {
		if !itemset.Subset(a.Drugs, r.Drugs) || !itemset.Subset(a.ADRs, r.ADRs) {
			continue
		}
		if !found {
			drugs, adrs = itemset.Clone(r.Drugs), itemset.Clone(r.ADRs)
			found = true
			continue
		}
		drugs = itemset.Intersect(drugs, r.Drugs)
		adrs = itemset.Intersect(adrs, r.ADRs)
	}
	if !found {
		return Association{}, false
	}
	return Association{Drugs: drugs, ADRs: adrs}, true
}

// assertValid panics on malformed datasets in debug paths; exported mining
// entry points validate inputs instead.
func assertValid(d *Dataset) error {
	if d == nil {
		return fmt.Errorf("maras: nil dataset")
	}
	return nil
}

// Evidence returns the indices of the reports supporting an association
// (reports containing every drug and every ADR), in report order — the raw
// material a drug-safety evaluator reviews when validating a signal, as in
// the paper's case studies. maxReports caps the answer; non-positive means
// all.
func Evidence(d *Dataset, a Association, maxReports int) []int {
	var out []int
	for i, r := range d.Reports {
		if !itemset.Subset(a.Drugs, r.Drugs) || !itemset.Subset(a.ADRs, r.ADRs) {
			continue
		}
		out = append(out, i)
		if maxReports > 0 && len(out) >= maxReports {
			break
		}
	}
	return out
}
