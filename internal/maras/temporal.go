package maras

import (
	"fmt"
	"sort"

	"tara/internal/stats"
)

// Temporal signal analytics (the MeDIAR direction of the paper's Chapter 2
// manuscripts): MARAS is run per reporting quarter and signals are tracked
// across quarters, so a drug-safety reviewer can separate emerging
// interactions from long-known ones.

// TemporalSignal is one association's trace across quarters. Quarters where
// the association was not mined (below support, or not non-spurious there)
// have Present false and zero entries.
type TemporalSignal struct {
	// Label is the association rendered with the quarter dictionaries'
	// names; names are the cross-quarter identity since each quarter's
	// Dataset has its own id space.
	Label    string
	Present  []bool
	Contrast []float64
	Count    []uint32
	// Emerging scores how strongly the signal strengthens toward the most
	// recent quarter: contrast in the last quarter minus the mean contrast
	// before it (absent quarters contribute zero).
	Emerging float64
	// Peak is the maximum contrast across quarters.
	Peak float64
}

// TemporalMine runs MARAS over each quarter and aligns the signals by
// association label. Quarters must be in chronological order. Signals are
// returned sorted by descending Emerging score (ties by label).
func TemporalMine(quarters []*Dataset, p Params) ([]TemporalSignal, error) {
	if len(quarters) == 0 {
		return nil, fmt.Errorf("maras: no quarters")
	}
	n := len(quarters)
	byLabel := map[string]*TemporalSignal{}
	for qi, ds := range quarters {
		signals, err := Mine(ds, p)
		if err != nil {
			return nil, fmt.Errorf("maras: quarter %d: %w", qi, err)
		}
		for _, s := range signals {
			label := s.Assoc.Format(ds)
			ts := byLabel[label]
			if ts == nil {
				ts = &TemporalSignal{
					Label:    label,
					Present:  make([]bool, n),
					Contrast: make([]float64, n),
					Count:    make([]uint32, n),
				}
				byLabel[label] = ts
			}
			ts.Present[qi] = true
			ts.Contrast[qi] = s.Contrast
			ts.Count[qi] = s.CountXY
		}
	}
	out := make([]TemporalSignal, 0, len(byLabel))
	for _, ts := range byLabel {
		last := ts.Contrast[n-1]
		if n == 1 {
			ts.Emerging = last
		} else {
			ts.Emerging = last - stats.Mean(ts.Contrast[:n-1])
		}
		for _, c := range ts.Contrast {
			if c > ts.Peak {
				ts.Peak = c
			}
		}
		out = append(out, *ts)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Emerging != out[j].Emerging {
			return out[i].Emerging > out[j].Emerging
		}
		return out[i].Label < out[j].Label
	})
	return out, nil
}

// Persistent filters temporal signals to those present in at least
// minQuarters quarters — the long-standing interactions.
func Persistent(signals []TemporalSignal, minQuarters int) []TemporalSignal {
	var out []TemporalSignal
	for _, s := range signals {
		present := 0
		for _, p := range s.Present {
			if p {
				present++
			}
		}
		if present >= minQuarters {
			out = append(out, s)
		}
	}
	return out
}
