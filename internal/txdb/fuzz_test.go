package txdb

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseFIMI checks that arbitrary FIMI-format input never panics the
// reader and that every accepted database satisfies the parser's contract:
// maxTx caps the transaction count, timestamps are the dense 0..Len-1
// sequence, every transaction is non-empty, and item names never contain
// whitespace (Fields would have split them).
func FuzzParseFIMI(f *testing.F) {
	f.Add("1 2 3\n4 5\n", 0)
	f.Add("# comment\n\na b c\n", 0)
	f.Add("x\ny\nz\n", 2)
	f.Add("  padded   fields \n", 1)
	f.Fuzz(func(t *testing.T, in string, maxTx int) {
		db, err := ReadFIMI(strings.NewReader(in), maxTx)
		if err != nil {
			return
		}
		if maxTx > 0 && db.Len() > maxTx {
			t.Fatalf("maxTx=%d but parsed %d transactions", maxTx, db.Len())
		}
		for i, tx := range db.Tx {
			if tx.Time != int64(i) {
				t.Fatalf("transaction %d has timestamp %d, want dense sequence", i, tx.Time)
			}
			if len(tx.Items) == 0 {
				t.Fatalf("transaction %d is empty", i)
			}
			for _, it := range tx.Items {
				if name := db.Dict.Name(it); strings.ContainsAny(name, " \t\n\r") || name == "" {
					t.Fatalf("transaction %d has malformed item name %q", i, name)
				}
			}
		}
		// FIMI serialization round-trips to the same transaction count, as
		// long as no canonicalized transaction starts with a '#' item (such a
		// line would re-parse as a comment).
		for _, tx := range db.Tx {
			if strings.HasPrefix(db.Dict.Name(tx.Items[0]), "#") {
				return
			}
		}
		var buf bytes.Buffer
		if err := db.WriteFIMI(&buf); err != nil {
			t.Fatalf("WriteFIMI of accepted db: %v", err)
		}
		db2, err := ReadFIMI(&buf, 0)
		if err != nil {
			t.Fatalf("re-ReadFIMI of serialized db: %v", err)
		}
		if db2.Len() != db.Len() {
			t.Fatalf("FIMI round trip changed length: %d vs %d", db2.Len(), db.Len())
		}
	})
}

// FuzzRead checks that arbitrary input never panics the reader, and that
// accepted databases re-serialize and re-parse to the same transaction
// count (write/read idempotence).
func FuzzRead(f *testing.F) {
	f.Add("10\ta b c\n20\td\n")
	f.Add("# comment\n\n5\tx\n")
	f.Add("notab\n")
	f.Add("99999999999999999999\ta\n")
	f.Fuzz(func(t *testing.T, in string) {
		db, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := db.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo of accepted db: %v", err)
		}
		db2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read of serialized db: %v", err)
		}
		if db2.Len() != db.Len() {
			t.Fatalf("round trip changed length: %d vs %d", db2.Len(), db.Len())
		}
	})
}
