package txdb

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary input never panics the reader, and that
// accepted databases re-serialize and re-parse to the same transaction
// count (write/read idempotence).
func FuzzRead(f *testing.F) {
	f.Add("10\ta b c\n20\td\n")
	f.Add("# comment\n\n5\tx\n")
	f.Add("notab\n")
	f.Add("99999999999999999999\ta\n")
	f.Fuzz(func(t *testing.T, in string) {
		db, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := db.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo of accepted db: %v", err)
		}
		db2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read of serialized db: %v", err)
		}
		if db2.Len() != db.Len() {
			t.Fatalf("round trip changed length: %d vs %d", db2.Len(), db.Len())
		}
	})
}
