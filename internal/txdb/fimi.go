package txdb

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadFIMI parses the FIMI repository format used by the paper's real
// datasets (retail.dat, webdocs.dat): one transaction per line, items as
// space-separated tokens, no timestamps. Transactions receive sequential
// timestamps in file order, which is the datasets' chronological order, so
// PartitionByCount reproduces the paper's equal-sized batches.
//
// maxTx caps how many transactions to read; non-positive means all.
func ReadFIMI(r io.Reader, maxTx int) (*DB, error) {
	db := NewDB()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		if maxTx > 0 && db.Len() >= maxTx {
			break
		}
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		db.Add(int64(db.Len()), strings.Fields(text)...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("txdb: fimi line %d: %v", line, err)
	}
	return db, nil
}

// WriteFIMI serializes the database in FIMI format (timestamps dropped).
func (db *DB) WriteFIMI(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range db.Tx {
		for i, it := range t.Items {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(db.Dict.Name(it)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
