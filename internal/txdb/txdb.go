// Package txdb implements the temporal transaction database that TARA mines:
// dictionary-encoded items, timestamped transactions, and the tumbling-window
// partitioning of Definition 8 in the paper ("time availability") that fixes
// the finest time granularity every other component operates at.
package txdb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tara/internal/itemset"
)

// Item re-exports the dictionary-encoded item identifier.
type Item = itemset.Item

// Transaction is a single timestamped transaction: a canonical itemset that
// occurred at Time. Time units are opaque (the window size is expressed in
// the same units).
type Transaction struct {
	Time  int64
	Items itemset.Set
}

// Period is a closed time period [Start, End].
type Period struct {
	Start, End int64
}

// Contains reports whether t falls inside the period.
func (p Period) Contains(t int64) bool { return p.Start <= t && t <= p.End }

// Overlaps reports whether two periods intersect.
func (p Period) Overlaps(q Period) bool { return p.Start <= q.End && q.Start <= p.End }

// String renders the period as "[start,end]".
func (p Period) String() string { return fmt.Sprintf("[%d,%d]", p.Start, p.End) }

// Dict maps external item names to dense Item identifiers and back. The zero
// value is ready to use.
type Dict struct {
	ids   map[string]Item
	names []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{ids: map[string]Item{}} }

// Add returns the identifier for name, allocating a new one on first sight.
func (d *Dict) Add(name string) Item {
	if d.ids == nil {
		d.ids = map[string]Item{}
	}
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := Item(len(d.names))
	d.ids[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the identifier for name if it has been added.
func (d *Dict) Lookup(name string) (Item, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the external name of id, or a placeholder for unknown ids.
func (d *Dict) Name(id Item) string {
	if int(id) < len(d.names) {
		return d.names[id]
	}
	return fmt.Sprintf("item#%d", id)
}

// Len returns the number of distinct items.
func (d *Dict) Len() int { return len(d.names) }

// DB is an evolving transaction database ordered by time.
type DB struct {
	Dict *Dict
	Tx   []Transaction
}

// NewDB returns an empty database with a fresh dictionary.
func NewDB() *DB { return &DB{Dict: NewDict()} }

// Add appends a transaction with the given timestamp and item names.
// Names are dictionary-encoded; duplicates within a transaction collapse.
func (db *DB) Add(time int64, names ...string) {
	items := make(itemset.Set, 0, len(names))
	for _, n := range names {
		items = append(items, db.Dict.Add(n))
	}
	db.Tx = append(db.Tx, Transaction{Time: time, Items: itemset.Canonicalize(items)})
}

// AddItems appends a transaction of already-encoded items. The items are
// canonicalized in place.
func (db *DB) AddItems(time int64, items itemset.Set) {
	db.Tx = append(db.Tx, Transaction{Time: time, Items: itemset.Canonicalize(items)})
}

// Len returns the number of transactions.
func (db *DB) Len() int { return len(db.Tx) }

// SortByTime orders transactions chronologically (stable, so insertion order
// breaks ties).
func (db *DB) SortByTime() {
	sort.SliceStable(db.Tx, func(i, j int) bool { return db.Tx[i].Time < db.Tx[j].Time })
}

// TimeRange returns the closed period spanned by the database. ok is false
// for an empty database.
func (db *DB) TimeRange() (p Period, ok bool) {
	if len(db.Tx) == 0 {
		return Period{}, false
	}
	p.Start, p.End = db.Tx[0].Time, db.Tx[0].Time
	for _, t := range db.Tx[1:] {
		if t.Time < p.Start {
			p.Start = t.Time
		}
		if t.Time > p.End {
			p.End = t.Time
		}
	}
	return p, true
}

// Stats summarizes a database for reporting (Table 3 of the paper).
type Stats struct {
	Transactions int
	UniqueItems  int
	AvgLen       float64
	MaxLen       int
	Period       Period
}

// Stats computes summary statistics over the database. UniqueItems counts
// items that actually occur in transactions, which may be fewer than
// Dict.Len if the dictionary has unused entries.
func (db *DB) Stats() Stats {
	var s Stats
	s.Transactions = len(db.Tx)
	seen := map[Item]bool{}
	total := 0
	for _, t := range db.Tx {
		total += len(t.Items)
		if len(t.Items) > s.MaxLen {
			s.MaxLen = len(t.Items)
		}
		for _, it := range t.Items {
			seen[it] = true
		}
	}
	s.UniqueItems = len(seen)
	if s.Transactions > 0 {
		s.AvgLen = float64(total) / float64(s.Transactions)
	}
	s.Period, _ = db.TimeRange()
	return s
}

// Window is one tumbling window of the evolving database: the transactions
// whose timestamps fall in Period, at window index Index.
type Window struct {
	Index  int
	Period Period
	Tx     []Transaction
}

// MaxWindows bounds how many tumbling windows a partitioning may produce.
// A sparse database with a tiny window size would otherwise materialize one
// Window struct per empty time slot — an easy way to exhaust memory from a
// single bad parameter.
const MaxWindows = 1 << 22

// PartitionByTime splits the database into consecutive tumbling windows of
// the given size (in time units), starting at the earliest timestamp. Empty
// windows inside the covered range are kept so that window indexes remain a
// contiguous time axis. Transactions must not be mutated afterwards; windows
// alias the database storage. The database is sorted by time as a side
// effect.
//
// Degenerate inputs are rejected with descriptive errors rather than
// producing empty or single-window partitions: an empty database, a window
// size exceeding the timestamp span (which cannot partition anything), and a
// window size so small the covered range would explode into more than
// MaxWindows windows.
func (db *DB) PartitionByTime(windowSize int64) ([]Window, error) {
	if windowSize <= 0 {
		return nil, fmt.Errorf("txdb: window size must be positive, got %d", windowSize)
	}
	if len(db.Tx) == 0 {
		return nil, fmt.Errorf("txdb: cannot partition an empty database")
	}
	db.SortByTime()
	start := db.Tx[0].Time
	end := db.Tx[len(db.Tx)-1].Time
	span := end - start + 1 // closed period length in time units
	if windowSize > span {
		return nil, fmt.Errorf("txdb: window size %d exceeds the timestamp span %d ([%d,%d]); the database cannot be partitioned at that granularity",
			windowSize, span, start, end)
	}
	if (end-start)/windowSize >= MaxWindows {
		return nil, fmt.Errorf("txdb: window size %d over span [%d,%d] would produce %d windows (limit %d)",
			windowSize, start, end, (end-start)/windowSize+1, MaxWindows)
	}
	n := int((end-start)/windowSize) + 1
	windows := make([]Window, n)
	for i := range windows {
		ws := start + int64(i)*windowSize
		windows[i] = Window{Index: i, Period: Period{Start: ws, End: ws + windowSize - 1}}
	}
	lo := 0
	for i := range windows {
		hi := lo
		for hi < len(db.Tx) && windows[i].Period.Contains(db.Tx[hi].Time) {
			hi++
		}
		windows[i].Tx = db.Tx[lo:hi]
		lo = hi
	}
	return windows, nil
}

// PartitionByCount splits the database into n equal-sized batches in time
// order, mirroring how the paper partitions its benchmark datasets ("5
// equal-sized batches"). Each batch's Period is the span of its own
// transactions. The final batch absorbs the remainder.
//
// Degenerate inputs are rejected with descriptive errors rather than
// silently producing fewer or empty batches: an empty database, and a batch
// count exceeding the number of transactions (which would force zero-length
// windows).
func (db *DB) PartitionByCount(n int) ([]Window, error) {
	if n <= 0 {
		return nil, fmt.Errorf("txdb: batch count must be positive, got %d", n)
	}
	if len(db.Tx) == 0 {
		return nil, fmt.Errorf("txdb: cannot partition an empty database")
	}
	if n > len(db.Tx) {
		return nil, fmt.Errorf("txdb: %d batches exceed the %d transactions available; every batch would need at least one transaction", n, len(db.Tx))
	}
	db.SortByTime()
	per := len(db.Tx) / n
	windows := make([]Window, n)
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if i == n-1 {
			hi = len(db.Tx)
		}
		tx := db.Tx[lo:hi]
		windows[i] = Window{
			Index:  i,
			Period: Period{Start: tx[0].Time, End: tx[len(tx)-1].Time},
			Tx:     tx,
		}
	}
	return windows, nil
}

// InPeriod returns the transactions whose timestamps fall in p, in time
// order. The database must already be sorted by time (Partition* sort it).
func (db *DB) InPeriod(p Period) []Transaction {
	if p.Start > p.End {
		return nil
	}
	lo := sort.Search(len(db.Tx), func(i int) bool { return db.Tx[i].Time >= p.Start })
	hi := sort.Search(len(db.Tx), func(i int) bool { return db.Tx[i].Time > p.End })
	return db.Tx[lo:hi]
}

// WriteTo serializes the database as one transaction per line:
// "timestamp<TAB>name name name...". It returns the number of bytes written.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, t := range db.Tx {
		var sb strings.Builder
		sb.WriteString(strconv.FormatInt(t.Time, 10))
		sb.WriteByte('\t')
		for i, it := range t.Items {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(db.Dict.Name(it))
		}
		sb.WriteByte('\n')
		m, err := bw.WriteString(sb.String())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses the WriteTo format into a fresh database.
func Read(r io.Reader) (*DB, error) {
	db := NewDB()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		tab := strings.IndexByte(text, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("txdb: line %d: missing tab separator", line)
		}
		ts, err := strconv.ParseInt(text[:tab], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("txdb: line %d: bad timestamp: %v", line, err)
		}
		names := strings.Fields(text[tab+1:])
		db.Add(ts, names...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("txdb: read: %v", err)
	}
	return db, nil
}
