package txdb

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadFIMI(t *testing.T) {
	in := "1 2 3\n4 5\n\n# comment\n2 3\n"
	db, err := ReadFIMI(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d", db.Len())
	}
	if db.Tx[0].Time != 0 || db.Tx[2].Time != 2 {
		t.Errorf("timestamps not sequential: %d %d", db.Tx[0].Time, db.Tx[2].Time)
	}
	if len(db.Tx[0].Items) != 3 || len(db.Tx[1].Items) != 2 {
		t.Errorf("item counts wrong")
	}
}

func TestReadFIMIMaxTx(t *testing.T) {
	in := "1\n2\n3\n4\n"
	db, err := ReadFIMI(strings.NewReader(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d, want 2", db.Len())
	}
}

func TestFIMIRoundTrip(t *testing.T) {
	db := NewDB()
	db.Add(0, "10", "20", "30")
	db.Add(1, "20")
	var buf bytes.Buffer
	if err := db.WriteFIMI(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFIMI(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("round trip lost transactions")
	}
	for i := range db.Tx {
		if len(got.Tx[i].Items) != len(db.Tx[i].Items) {
			t.Errorf("tx %d item count differs", i)
		}
		for j := range db.Tx[i].Items {
			if got.Dict.Name(got.Tx[i].Items[j]) != db.Dict.Name(db.Tx[i].Items[j]) {
				t.Errorf("tx %d item %d differs", i, j)
			}
		}
	}
}

func TestReadFIMIEmpty(t *testing.T) {
	db, err := ReadFIMI(strings.NewReader(""), 0)
	if err != nil || db.Len() != 0 {
		t.Errorf("empty input: %v, %d tx", err, db.Len())
	}
}
