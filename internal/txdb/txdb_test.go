package txdb

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tara/internal/itemset"
)

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	a := d.Add("apple")
	b := d.Add("banana")
	if a == b {
		t.Fatal("distinct names got same id")
	}
	if got := d.Add("apple"); got != a {
		t.Errorf("re-Add returned %d, want %d", got, a)
	}
	if d.Name(a) != "apple" || d.Name(b) != "banana" {
		t.Errorf("Name mismatch: %q %q", d.Name(a), d.Name(b))
	}
	if id, ok := d.Lookup("banana"); !ok || id != b {
		t.Errorf("Lookup(banana) = %d,%v", id, ok)
	}
	if _, ok := d.Lookup("cherry"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDictZeroValue(t *testing.T) {
	var d Dict
	id := d.Add("x")
	if d.Name(id) != "x" {
		t.Error("zero-value Dict unusable")
	}
}

func TestDictUnknownName(t *testing.T) {
	d := NewDict()
	if got := d.Name(42); got != "item#42" {
		t.Errorf("Name(42) = %q", got)
	}
}

func TestAddCanonicalizes(t *testing.T) {
	db := NewDB()
	db.Add(1, "b", "a", "b")
	tx := db.Tx[0]
	if len(tx.Items) != 2 {
		t.Fatalf("items = %v, want 2 distinct", tx.Items)
	}
	if !itemset.IsCanonical(tx.Items) {
		t.Fatalf("items not canonical: %v", tx.Items)
	}
}

func TestPeriod(t *testing.T) {
	p := Period{Start: 10, End: 20}
	if !p.Contains(10) || !p.Contains(20) || !p.Contains(15) {
		t.Error("Contains failed on boundary/interior")
	}
	if p.Contains(9) || p.Contains(21) {
		t.Error("Contains accepted outside point")
	}
	if !p.Overlaps(Period{20, 30}) || p.Overlaps(Period{21, 30}) {
		t.Error("Overlaps incorrect")
	}
	if p.String() != "[10,20]" {
		t.Errorf("String = %q", p.String())
	}
}

func TestTimeRange(t *testing.T) {
	db := NewDB()
	if _, ok := db.TimeRange(); ok {
		t.Error("TimeRange on empty db should be !ok")
	}
	db.Add(5, "a")
	db.Add(2, "b")
	db.Add(9, "c")
	p, ok := db.TimeRange()
	if !ok || p.Start != 2 || p.End != 9 {
		t.Errorf("TimeRange = %v, %v", p, ok)
	}
}

func TestStats(t *testing.T) {
	db := NewDB()
	db.Add(1, "a", "b")
	db.Add(2, "a", "b", "c")
	db.Add(3, "a")
	s := db.Stats()
	if s.Transactions != 3 || s.UniqueItems != 3 || s.MaxLen != 3 {
		t.Errorf("Stats = %+v", s)
	}
	if s.AvgLen != 2 {
		t.Errorf("AvgLen = %g, want 2", s.AvgLen)
	}
	if s.Period.Start != 1 || s.Period.End != 3 {
		t.Errorf("Period = %v", s.Period)
	}
}

func TestPartitionByTime(t *testing.T) {
	db := NewDB()
	for _, ts := range []int64{0, 5, 19, 20, 39, 45, 80} {
		db.Add(ts, "x")
	}
	ws, err := db.PartitionByTime(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 5 { // periods [0,19] [20,39] [40,59] [60,79] [80,99]
		t.Fatalf("got %d windows, want 5", len(ws))
	}
	wantCounts := []int{3, 2, 1, 0, 1}
	for i, w := range ws {
		if w.Index != i {
			t.Errorf("window %d has Index %d", i, w.Index)
		}
		if len(w.Tx) != wantCounts[i] {
			t.Errorf("window %d has %d tx, want %d", i, len(w.Tx), wantCounts[i])
		}
		for _, tx := range w.Tx {
			if !w.Period.Contains(tx.Time) {
				t.Errorf("window %d period %v excludes tx at %d", i, w.Period, tx.Time)
			}
		}
	}
}

func TestPartitionByTimeErrors(t *testing.T) {
	db := NewDB()
	db.Add(1, "a")
	if _, err := db.PartitionByTime(0); err == nil {
		t.Error("window size 0 accepted")
	}
	empty := NewDB()
	if _, err := empty.PartitionByTime(10); err == nil || !strings.Contains(err.Error(), "empty database") {
		t.Errorf("empty db: err = %v, want descriptive error", err)
	}
	// Window size exceeding the timestamp span cannot partition anything.
	span := NewDB()
	span.Add(10, "a")
	span.Add(19, "b")
	if _, err := span.PartitionByTime(100); err == nil || !strings.Contains(err.Error(), "exceeds the timestamp span") {
		t.Errorf("oversized window: err = %v, want span error", err)
	}
	// Window size exactly equal to the span is the coarsest legal partition.
	if ws, err := span.PartitionByTime(10); err != nil || len(ws) != 1 {
		t.Errorf("span-sized window: %v, %v; want one window", ws, err)
	}
	// A sparse time axis with a tiny window size must not materialize an
	// unbounded number of empty windows.
	sparse := NewDB()
	sparse.Add(0, "a")
	sparse.Add(1<<40, "b")
	if _, err := sparse.PartitionByTime(1); err == nil || !strings.Contains(err.Error(), "windows") {
		t.Errorf("window explosion: err = %v, want limit error", err)
	}
}

func TestPartitionByCount(t *testing.T) {
	db := NewDB()
	for i := int64(0); i < 11; i++ {
		db.Add(i, "x")
	}
	ws, err := db.PartitionByCount(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("got %d batches", len(ws))
	}
	if len(ws[0].Tx) != 3 || len(ws[1].Tx) != 3 || len(ws[2].Tx) != 5 {
		t.Errorf("batch sizes %d %d %d", len(ws[0].Tx), len(ws[1].Tx), len(ws[2].Tx))
	}
	// periods cover their own transactions
	if ws[2].Period.Start != 6 || ws[2].Period.End != 10 {
		t.Errorf("last period %v", ws[2].Period)
	}
}

func TestPartitionByCountMoreBatchesThanTx(t *testing.T) {
	db := NewDB()
	db.Add(1, "a")
	db.Add(2, "b")
	_, err := db.PartitionByCount(5)
	if err == nil || !strings.Contains(err.Error(), "exceed the 2 transactions") {
		t.Fatalf("err = %v, want descriptive error for 5 batches over 2 transactions", err)
	}
	// Exactly one transaction per batch is the finest legal partition.
	ws, err := db.PartitionByCount(2)
	if err != nil || len(ws) != 2 {
		t.Fatalf("2 batches over 2 tx: %v, %v", ws, err)
	}
}

func TestPartitionByCountErrors(t *testing.T) {
	db := NewDB()
	db.Add(1, "a")
	if _, err := db.PartitionByCount(0); err == nil {
		t.Error("count 0 accepted")
	}
	empty := NewDB()
	if _, err := empty.PartitionByCount(1); err == nil || !strings.Contains(err.Error(), "empty database") {
		t.Errorf("empty db: err = %v, want descriptive error", err)
	}
}

func TestInPeriod(t *testing.T) {
	db := NewDB()
	for _, ts := range []int64{1, 3, 5, 7, 9} {
		db.Add(ts, "x")
	}
	db.SortByTime()
	got := db.InPeriod(Period{3, 7})
	if len(got) != 3 {
		t.Fatalf("InPeriod returned %d tx, want 3", len(got))
	}
	if got[0].Time != 3 || got[2].Time != 7 {
		t.Errorf("wrong boundary transactions: %v", got)
	}
	if n := len(db.InPeriod(Period{100, 200})); n != 0 {
		t.Errorf("out-of-range period returned %d tx", n)
	}
}

func TestIORoundTrip(t *testing.T) {
	db := NewDB()
	db.Add(10, "milk", "bread")
	db.Add(20, "beer")
	db.Add(30, "milk", "diapers", "beer")
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("round trip lost transactions: %d vs %d", got.Len(), db.Len())
	}
	for i := range db.Tx {
		if got.Tx[i].Time != db.Tx[i].Time {
			t.Errorf("tx %d time %d vs %d", i, got.Tx[i].Time, db.Tx[i].Time)
		}
		if len(got.Tx[i].Items) != len(db.Tx[i].Items) {
			t.Errorf("tx %d item count differs", i)
		}
		for j, it := range got.Tx[i].Items {
			if got.Dict.Name(it) != db.Dict.Name(db.Tx[i].Items[j]) {
				t.Errorf("tx %d item %d name differs", i, j)
			}
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n10\ta b\n"
	db, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("notab\n")); err == nil {
		t.Error("missing tab accepted")
	}
	if _, err := Read(strings.NewReader("xyz\ta b\n")); err == nil {
		t.Error("bad timestamp accepted")
	}
}

func TestPropertyPartitionPreservesAllTransactions(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		db := NewDB()
		n := 1 + r.Intn(60)
		for i := 0; i < n; i++ {
			db.Add(int64(r.Intn(200)), "i"+string(rune('a'+r.Intn(10))))
		}
		size := int64(1 + r.Intn(50))
		p, _ := db.TimeRange()
		ws, err := db.PartitionByTime(size)
		if size > p.End-p.Start+1 {
			// Oversized windows are a degenerate partition and must error.
			return err != nil
		}
		if err != nil {
			return false
		}
		total := 0
		for i, w := range ws {
			total += len(w.Tx)
			if i > 0 && ws[i-1].Period.End+1 != w.Period.Start {
				return false // windows must tile the time axis
			}
			for _, tx := range w.Tx {
				if !w.Period.Contains(tx.Time) {
					return false
				}
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInPeriodMatchesFilter(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	f := func() bool {
		db := NewDB()
		n := r.Intn(50)
		for i := 0; i < n; i++ {
			db.Add(int64(r.Intn(100)), "x")
		}
		db.SortByTime()
		p := Period{Start: int64(r.Intn(100)), End: int64(r.Intn(100))}
		got := db.InPeriod(p)
		want := 0
		for _, tx := range db.Tx {
			if p.Contains(tx.Time) {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPartitionByTimeNegativeTimestamps(t *testing.T) {
	db := NewDB()
	for _, ts := range []int64{-25, -10, -1, 0, 5} {
		db.Add(ts, "x")
	}
	ws, err := db.PartitionByTime(10)
	if err != nil {
		t.Fatal(err)
	}
	if ws[0].Period.Start != -25 {
		t.Errorf("first window starts at %d", ws[0].Period.Start)
	}
	total := 0
	for i, w := range ws {
		total += len(w.Tx)
		if i > 0 && ws[i-1].Period.End+1 != w.Period.Start {
			t.Errorf("windows not contiguous at %d", i)
		}
	}
	if total != 5 {
		t.Errorf("lost transactions: %d", total)
	}
}
