package harness

import (
	"fmt"
	"runtime"
	"time"

	"tara/internal/baselines"
	"tara/internal/tara"
	"tara/internal/txdb"
)

// Systems bundles TARA and the three competitors built over one dataset, so
// each figure's workload runs against identical data.
type Systems struct {
	Spec    DatasetSpec
	DB      *txdb.DB
	Windows []txdb.Window
	TARA    *tara.Framework // built with ContentIndex for the TARA-S paths
	DCTAR   *baselines.DCTAR
	HMine   *baselines.HMineSystem
	PARAS   *baselines.PARAS
}

// BuildSystems generates the dataset at the given scale and constructs all
// four systems with the spec's Table 4 thresholds.
func BuildSystems(spec DatasetSpec, scale float64) (*Systems, error) {
	db, err := spec.Build(scale)
	if err != nil {
		return nil, err
	}
	windows, err := db.PartitionByCount(spec.Batches)
	if err != nil {
		return nil, err
	}
	fw, err := tara.Build(db, 0, spec.Batches, tara.Config{
		GenMinSupport: spec.GenSupp,
		GenMinConf:    spec.GenConf,
		MaxItemsetLen: spec.MaxLen,
		ContentIndex:  true,
		Parallelism:   runtime.GOMAXPROCS(0),
	})
	if err != nil {
		return nil, fmt.Errorf("harness: building TARA for %s: %w", spec.Name, err)
	}
	hm, err := baselines.BuildHMine(windows, spec.GenSupp, spec.MaxLen)
	if err != nil {
		return nil, fmt.Errorf("harness: building H-Mine for %s: %w", spec.Name, err)
	}
	pr, err := baselines.BuildPARAS(windows, spec.GenSupp, spec.GenConf, spec.MaxLen, nil)
	if err != nil {
		return nil, fmt.Errorf("harness: building PARAS for %s: %w", spec.Name, err)
	}
	return &Systems{
		Spec:    spec,
		DB:      db,
		Windows: windows,
		TARA:    fw,
		DCTAR:   baselines.NewDCTAR(windows, nil, spec.MaxLen),
		HMine:   hm,
		PARAS:   pr,
	}, nil
}

// BaseWindow returns the Q1 base window (the newest) and the examined
// previous windows (up to three, as in the paper's setup).
func (s *Systems) BaseWindow() (base int, others []int) {
	base = len(s.Windows) - 1
	for w := base - 3; w < base; w++ {
		if w >= 0 {
			others = append(others, w)
		}
	}
	return base, others
}

// CompareWindows returns the four newest windows used by the Q2 experiments.
func (s *Systems) CompareWindows() []int {
	n := len(s.Windows)
	start := n - 4
	if start < 0 {
		start = 0
	}
	out := make([]int, 0, 4)
	for w := start; w < n; w++ {
		out = append(out, w)
	}
	return out
}

// TARASTrajectories runs the Q1 workload through the TARA-S collection path:
// merged content-index collection in the base window, then archive lookups
// for the examined windows.
func (s *Systems) TARASTrajectories(base int, minSupp, minConf float64, others []int) (int, error) {
	views, err := s.TARA.MineMerged(base, minSupp, minConf)
	if err != nil {
		return 0, err
	}
	for _, v := range views {
		for _, w := range others {
			s.TARA.Archive().StatsAt(v.ID, w)
		}
	}
	return len(views), nil
}

// BuildTARAOnly builds just the TARA framework over a prebuilt database,
// sequentially, for preprocessing benchmarks.
func BuildTARAOnly(db *txdb.DB, spec DatasetSpec) (*tara.Framework, error) {
	return tara.Build(db, 0, spec.Batches, tara.Config{
		GenMinSupport: spec.GenSupp,
		GenMinConf:    spec.GenConf,
		MaxItemsetLen: spec.MaxLen,
	})
}

// BuildHMineOnly builds just the H-Mine itemset baseline over prebuilt
// windows, for preprocessing benchmarks.
func BuildHMineOnly(windows []txdb.Window, spec DatasetSpec) (*baselines.HMineSystem, error) {
	return baselines.BuildHMine(windows, spec.GenSupp, spec.MaxLen)
}

// timeIt measures fn's wall time, repeating fast operations until at least
// minSample has elapsed so sub-microsecond answers are measurable.
func timeIt(fn func() error) (time.Duration, error) {
	const (
		minSample = 2 * time.Millisecond
		maxIters  = 10000
	)
	start := time.Now()
	if err := fn(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if elapsed >= minSample {
		return elapsed, nil
	}
	iters := 1
	for elapsed < minSample && iters < maxIters {
		n := iters // double the work each round
		for i := 0; i < n; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		iters += n
		elapsed = time.Since(start)
	}
	return elapsed / time.Duration(iters), nil
}
