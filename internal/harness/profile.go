package harness

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// Hot-function attribution from a CPU profile, without importing a profile
// library: runtime/pprof emits the gzip-compressed profile.proto wire
// format, and the handful of fields needed for FLAT attribution (sample
// values, each sample's leaf location, location -> function -> name) decode
// with a plain protobuf walk. Fields outside that set are skipped by wire
// type, so richer profiles (labels, mappings, comments) parse fine.

// HotFunc is one function's flat share of the profile.
type HotFunc struct {
	Name string `json:"name"`
	// FlatNanos is CPU time attributed to samples whose leaf frame is this
	// function (the last sample value, which for CPU profiles is
	// nanoseconds).
	FlatNanos int64   `json:"flatNanos"`
	Percent   float64 `json:"percent"`
}

// ProfileReport is the parsed hot-function view of one CPU profile.
type ProfileReport struct {
	Samples    int       `json:"samples"`
	TotalNanos int64     `json:"totalNanos"`
	Top        []HotFunc `json:"top"`
	// Err records a capture or parse failure; the rest of the report is
	// empty when set.
	Err string `json:"err,omitempty"`
}

// ParseProfile decodes a pprof CPU profile (gzip + profile.proto) and
// returns the topN functions by flat time. Parse failures are reported in
// the Err field, never as a panic — the profile rides along with a load
// report and must not sink it.
func ParseProfile(data []byte, topN int) *ProfileReport {
	rep, err := parseProfile(data, topN)
	if err != nil {
		return &ProfileReport{Err: err.Error()}
	}
	return rep
}

// profSample is one decoded Sample message: its leaf location and last
// value.
type profSample struct {
	leafLoc uint64
	value   int64
}

func parseProfile(data []byte, topN int) (*ProfileReport, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("profile: not gzip: %w", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("profile: decompress: %w", err)
	}

	var (
		samples  []profSample
		locFunc  = map[uint64]uint64{} // location id -> leaf-line function id
		funcName = map[uint64]uint64{} // function id -> string table index
		strtab   []string
	)
	// Top-level Profile message: 2=sample, 4=location, 5=function,
	// 6=string_table.
	err = walkMessage(raw, func(field int, wire int, v uint64, msg []byte) error {
		switch field {
		case 2: // Sample{1: location_id repeated, 2: value repeated}
			var locs []uint64
			var vals []int64
			if err := walkMessage(msg, func(f, w int, u uint64, m []byte) error {
				switch f {
				case 1:
					if w == 2 { // packed
						us, err := unpackVarints(m)
						if err != nil {
							return err
						}
						locs = append(locs, us...)
					} else {
						locs = append(locs, u)
					}
				case 2:
					if w == 2 {
						us, err := unpackVarints(m)
						if err != nil {
							return err
						}
						for _, x := range us {
							vals = append(vals, int64(x))
						}
					} else {
						vals = append(vals, int64(u))
					}
				}
				return nil
			}); err != nil {
				return err
			}
			if len(locs) > 0 && len(vals) > 0 {
				// The last value type of a CPU profile is cpu/nanoseconds;
				// location_id[0] is the leaf frame.
				samples = append(samples, profSample{leafLoc: locs[0], value: vals[len(vals)-1]})
			}
		case 4: // Location{1: id, 4: line repeated}
			var id, fn uint64
			if err := walkMessage(msg, func(f, w int, u uint64, m []byte) error {
				switch f {
				case 1:
					id = u
				case 4: // Line{1: function_id}; first line is the leaf
					if fn == 0 {
						if err := walkMessage(m, func(lf, lw int, lu uint64, _ []byte) error {
							if lf == 1 {
								fn = lu
							}
							return nil
						}); err != nil {
							return err
						}
					}
				}
				return nil
			}); err != nil {
				return err
			}
			if id != 0 {
				locFunc[id] = fn
			}
		case 5: // Function{1: id, 2: name string-index}
			var id, name uint64
			if err := walkMessage(msg, func(f, w int, u uint64, _ []byte) error {
				switch f {
				case 1:
					id = u
				case 2:
					name = u
				}
				return nil
			}); err != nil {
				return err
			}
			if id != 0 {
				funcName[id] = name
			}
		case 6: // string_table
			strtab = append(strtab, string(msg))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	nameOf := func(loc uint64) string {
		fn, ok := locFunc[loc]
		if !ok || fn == 0 {
			return "(unknown)"
		}
		idx, ok := funcName[fn]
		if !ok || idx >= uint64(len(strtab)) {
			return "(unknown)"
		}
		return strtab[idx]
	}

	flat := map[string]int64{}
	var total int64
	for _, s := range samples {
		flat[nameOf(s.leafLoc)] += s.value
		total += s.value
	}
	rep := &ProfileReport{Samples: len(samples), TotalNanos: total}
	for name, v := range flat {
		rep.Top = append(rep.Top, HotFunc{Name: name, FlatNanos: v})
	}
	sort.Slice(rep.Top, func(i, j int) bool {
		if rep.Top[i].FlatNanos != rep.Top[j].FlatNanos {
			return rep.Top[i].FlatNanos > rep.Top[j].FlatNanos
		}
		return rep.Top[i].Name < rep.Top[j].Name
	})
	if len(rep.Top) > topN {
		rep.Top = rep.Top[:topN]
	}
	if total > 0 {
		for i := range rep.Top {
			rep.Top[i].Percent = 100 * float64(rep.Top[i].FlatNanos) / float64(total)
		}
	}
	return rep, nil
}

// walkMessage decodes one protobuf message, calling fn per field with the
// field number, wire type, the varint value (wire type 0) and the
// length-delimited payload (wire type 2). Fixed32/fixed64 fields are skipped.
func walkMessage(b []byte, fn func(field, wire int, v uint64, msg []byte) error) error {
	for len(b) > 0 {
		key, n, err := readVarint(b)
		if err != nil {
			return err
		}
		b = b[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0: // varint
			v, n, err := readVarint(b)
			if err != nil {
				return err
			}
			b = b[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(b) < 8 {
				return fmt.Errorf("profile: truncated fixed64")
			}
			b = b[8:]
		case 2: // length-delimited
			l, n, err := readVarint(b)
			if err != nil {
				return err
			}
			b = b[n:]
			if uint64(len(b)) < l {
				return fmt.Errorf("profile: truncated field %d", field)
			}
			if err := fn(field, wire, 0, b[:l]); err != nil {
				return err
			}
			b = b[l:]
		case 5: // fixed32
			if len(b) < 4 {
				return fmt.Errorf("profile: truncated fixed32")
			}
			b = b[4:]
		default:
			return fmt.Errorf("profile: unsupported wire type %d", wire)
		}
	}
	return nil
}

// unpackVarints decodes a packed repeated-varint payload.
func unpackVarints(b []byte) ([]uint64, error) {
	var out []uint64
	for len(b) > 0 {
		v, n, err := readVarint(b)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		b = b[n:]
	}
	return out, nil
}

func readVarint(b []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i]&0x80 == 0 {
			return v, i + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("profile: truncated varint")
}

// PrintProfile renders the hot-function table.
func PrintProfile(w io.Writer, p *ProfileReport) {
	if p.Err != "" {
		fmt.Fprintf(w, "cpu profile: %s\n", p.Err)
		return
	}
	fmt.Fprintf(w, "cpu profile at peak load — %d samples, %.0fms total\n", p.Samples, float64(p.TotalNanos)/1e6)
	for _, f := range p.Top {
		fmt.Fprintf(w, "  %6.2f%% %12d ns  %s\n", f.Percent, f.FlatNanos, f.Name)
	}
}
