package harness

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"tara/internal/itemset"
	"tara/internal/rules"
	"tara/internal/server"
	"tara/internal/tara"
	"tara/internal/traj"
	"tara/internal/txdb"
)

// The trajectory experiment measures the columnar trajectory engine: a
// full-archive aggregate scan (coverage, mean, stddev, stability, drift for
// every rule) through the window-major columnar snapshot versus the naive
// per-rule Series() decode, plus warm endpoint latency for the three
// trajectory query classes (/topk, /similar, /emerging). The knowledge base
// is premined with controlled evolution: drifting, oscillating, vanishing
// and late-emerging rules, so every query class has a non-trivial answer.

const (
	// trajWindows is the archive depth; deep enough that per-rule varint
	// decode dominates the naive scan.
	trajWindows = 12
	// trajReps is how many times each scan is repeated; medians are kept.
	trajReps = 9
	// trajWarmRequests is the per-endpoint request count for the warm
	// latency distribution.
	trajWarmRequests = 200
	// trajSupp/trajConf are the query thresholds (at the generation
	// thresholds, so every archived rule qualifies somewhere).
	trajSupp = 0.005
	trajConf = 0.1
)

// TrajReport is the JSON document the trajectory experiment emits
// (BENCH_trajectory.json).
type TrajReport struct {
	Windows int `json:"windows"`
	Rules   int `json:"rules"`
	Entries int `json:"entries"`
	Reps    int `json:"reps"`
	// SnapshotBuildMillis is the median one-off columnar transpose cost
	// (paid once per KB generation, amortized over every trajectory query).
	SnapshotBuildMillis float64 `json:"snapshotBuildMillis"`
	SnapshotBytes       int     `json:"snapshotBytes"`
	// ColumnarScanMicros is the median full-archive aggregate scan through
	// the columnar snapshot; NaiveScanMicros the same scan through per-rule
	// Trajectory decodes.
	ColumnarScanMicros float64 `json:"columnarScanMicros"`
	NaiveScanMicros    float64 `json:"naiveScanMicros"`
	// ScanSpeedup is naive over columnar (higher is better; gate >= 5x).
	ScanSpeedup     float64 `json:"scanSpeedup"`
	ScanSpeedupPass bool    `json:"scanSpeedupPass"`
	// DifferentialPass records that every aggregate of the columnar scan was
	// bit-identical to the per-rule decode oracle.
	DifferentialPass bool `json:"differentialPass"`
	// Warm endpoint latency (µs): p50/p99 over trajWarmRequests sequential
	// in-process requests per endpoint, after one warming request.
	TopKP50Micros     float64 `json:"topkP50Micros"`
	TopKP99Micros     float64 `json:"topkP99Micros"`
	SimilarP50Micros  float64 `json:"similarP50Micros"`
	SimilarP99Micros  float64 `json:"similarP99Micros"`
	EmergingP50Micros float64 `json:"emergingP50Micros"`
	EmergingP99Micros float64 `json:"emergingP99Micros"`
	// WarmP50Pass gates every endpoint's p50 under 1ms.
	WarmP50Pass bool `json:"warmP50Pass"`
	// EmergingRows sanity-checks that the emergence class has a non-empty
	// answer on the synthetic evolution.
	EmergingRows int `json:"emergingRows"`
	// PrunedFraction is the share of similarity candidates skipped by the
	// envelope lower bound on the measured /similar query shape.
	PrunedFraction float64 `json:"prunedFraction"`
}

// TrajFramework premines a knowledge base with controlled rule evolution:
// stable, drifting, oscillating, vanishing and late-emerging populations.
// The root trajectory benchmarks build on it too.
func TrajFramework(scale float64) (*tara.Framework, error) {
	nRules := int(4000 * scale)
	if nRules < 200 {
		nRules = 200
	}
	const n = 20000 // |D_w| per window
	f := tara.New(txdb.NewDict(), tara.Config{GenMinSupport: trajSupp, GenMinConf: trajConf})
	for w := 0; w < trajWindows; w++ {
		recs := make([]rules.WithStats, 0, nRules)
		for i := 0; i < nRules; i++ {
			// Base support in [0.01, 0.06), evolved per population.
			base := 0.01 + 0.05*float64(i%997)/997
			sup := base
			switch i % 5 {
			case 1: // rising drift
				sup = base * (1 + float64(w)/float64(trajWindows))
			case 2: // oscillating
				sup = base * (1 + 0.5*math.Sin(float64(w)+float64(i)))
			case 3: // vanishing: absent from the midpoint on
				if w >= trajWindows/2 {
					continue
				}
			case 4: // late-emerging: absent until the newest window
				if w < trajWindows-1 {
					continue
				}
			}
			xy := uint32(sup * n)
			if xy == 0 {
				xy = 1
			}
			x := xy + uint32(i%7)*xy/4
			recs = append(recs, rules.WithStats{
				Rule: rules.Rule{
					Ant:  itemset.New(uint32(10 + 2*i)),
					Cons: itemset.New(uint32(11 + 2*i)),
				},
				Stats: rules.Stats{CountXY: xy, CountX: x, CountY: x, N: n},
			})
		}
		win := txdb.Window{
			Index:  w,
			Period: txdb.Period{Start: int64(w) * 1000, End: int64(w)*1000 + 999},
			Tx:     make([]txdb.Transaction, n),
		}
		if err := f.AppendRules(win, recs); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// TrajNaiveScan computes every rule's aggregates through the per-rule
// decode path (Trajectory -> zero-filled series), the oracle the columnar
// engine replaces. Results are indexed like the snapshot's rows.
func TrajNaiveScan(f *tara.Framework, s *traj.Snapshot, eps float64) ([]traj.Aggregates, error) {
	arch := f.Archive()
	last := s.Windows() - 1
	out := make([]traj.Aggregates, s.Rules())
	for r := 0; r < s.Rules(); r++ {
		tr, err := arch.Trajectory(s.ID(r), 0, last)
		if err != nil {
			return nil, err
		}
		cov, stab, sd := tr.Evolution(eps)
		series := tr.SupportSeries()
		sum := 0.0
		for _, v := range series {
			sum += v
		}
		out[r] = traj.Aggregates{
			Coverage:  cov,
			Mean:      sum / float64(len(series)),
			StdDev:    sd,
			Stability: stab,
			Drift:     series[len(series)-1] - series[0],
		}
	}
	return out, nil
}

func medianMicros(ds []time.Duration) float64 {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return float64(ds[len(ds)/2].Nanoseconds()) / 1e3
}

// measureEndpoint drives one endpoint with sequential in-process requests
// after a warming request and returns the p50/p99 latency in microseconds.
func measureEndpoint(h http.Handler, url string) (p50, p99 float64, err error) {
	lat := make([]time.Duration, 0, trajWarmRequests)
	for i := -1; i < trajWarmRequests; i++ {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return 0, 0, err
		}
		rec := &statusRecorder{}
		t0 := time.Now()
		h.ServeHTTP(rec, req)
		d := time.Since(t0)
		if rec.status != 0 && rec.status != http.StatusOK {
			return 0, 0, fmt.Errorf("harness: GET %s: status %d", url, rec.status)
		}
		if i >= 0 { // the warming request is not part of the distribution
			lat = append(lat, d)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50 = float64(lat[len(lat)/2].Nanoseconds()) / 1e3
	p99 = float64(lat[len(lat)*99/100].Nanoseconds()) / 1e3
	return p50, p99, nil
}

// TrajBench runs the trajectory experiment and returns its report.
func TrajBench(scale float64) (*TrajReport, error) {
	if scale <= 0 {
		scale = 1
	}
	f, err := TrajFramework(scale)
	if err != nil {
		return nil, err
	}
	const eps = 0.01

	// Median snapshot build (the once-per-generation transpose).
	var builds []time.Duration
	var snap *traj.Snapshot
	for i := 0; i < trajReps; i++ {
		start := time.Now()
		s, err := traj.Build(f.Archive())
		if err != nil {
			return nil, err
		}
		builds = append(builds, time.Since(start))
		snap = s
	}
	last := snap.Windows() - 1

	rep := &TrajReport{
		Windows:             snap.Windows(),
		Rules:               snap.Rules(),
		Entries:             snap.Entries(),
		Reps:                trajReps,
		SnapshotBuildMillis: medianMicros(builds) / 1e3,
		SnapshotBytes:       snap.MemBytes(),
	}

	// Columnar vs naive full-archive aggregate scan, with the differential
	// check on every rep: each aggregate must be bit-identical.
	var colScan, naiScan []time.Duration
	rep.DifferentialPass = true
	for i := 0; i < trajReps; i++ {
		start := time.Now()
		cols, err := snap.AggregateRange(0, last, eps)
		if err != nil {
			return nil, err
		}
		colScan = append(colScan, time.Since(start))

		start = time.Now()
		naive, err := TrajNaiveScan(f, snap, eps)
		if err != nil {
			return nil, err
		}
		naiScan = append(naiScan, time.Since(start))

		for r := range cols {
			if cols[r] != naive[r] {
				rep.DifferentialPass = false
				return nil, fmt.Errorf("harness: columnar aggregates diverge from per-rule decode at rule %d: %+v vs %+v",
					snap.ID(r), cols[r], naive[r])
			}
		}
	}
	rep.ColumnarScanMicros = medianMicros(colScan)
	rep.NaiveScanMicros = medianMicros(naiScan)
	if rep.ColumnarScanMicros > 0 {
		rep.ScanSpeedup = rep.NaiveScanMicros / rep.ColumnarScanMicros
	}
	rep.ScanSpeedupPass = rep.ScanSpeedup >= 5

	// Prune effectiveness on the measured /similar shape.
	ref := make([]float64, last+1)
	for i := range ref {
		ref[i] = 0.03
	}
	if _, pruned, err := snap.Similar(0, last, ref, traj.Euclidean, 0, 0, 10); err != nil {
		return nil, err
	} else if snap.Rules() > 0 {
		rep.PrunedFraction = float64(pruned) / float64(snap.Rules())
	}

	// Emergence sanity: the late-emerging population must surface.
	em, err := f.EmergingRules(0, -1, trajSupp, trajConf)
	if err != nil {
		return nil, err
	}
	rep.EmergingRows = len(em)

	// Warm endpoint latency through the full daemon stack.
	srv, err := server.New(server.Config{
		Framework: f,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		return nil, err
	}
	h := srv.Handler()
	refCSV := strings.TrimSuffix(strings.Repeat("0.03,", last+1), ",")
	if rep.TopKP50Micros, rep.TopKP99Micros, err = measureEndpoint(h,
		fmt.Sprintf("/topk?from=0&to=%d&supp=%g&conf=%g&by=drift&k=10", last, trajSupp, trajConf)); err != nil {
		return nil, err
	}
	if rep.SimilarP50Micros, rep.SimilarP99Micros, err = measureEndpoint(h,
		fmt.Sprintf("/similar?from=0&to=%d&ref=%s&k=10", last, refCSV)); err != nil {
		return nil, err
	}
	if rep.EmergingP50Micros, rep.EmergingP99Micros, err = measureEndpoint(h,
		fmt.Sprintf("/emerging?from=0&supp=%g&conf=%g", trajSupp, trajConf)); err != nil {
		return nil, err
	}
	rep.WarmP50Pass = rep.TopKP50Micros < 1000 && rep.SimilarP50Micros < 1000 && rep.EmergingP50Micros < 1000
	return rep, nil
}

// RunTraj prints the trajectory experiment as a table.
func RunTraj(w io.Writer, scale float64) error {
	rep, err := TrajBench(scale)
	if err != nil {
		return err
	}
	return PrintTraj(w, rep)
}

// PrintTraj renders an already-measured report (so one run can feed both
// the table and the JSON artifact).
func PrintTraj(w io.Writer, rep *TrajReport) error {
	fmt.Fprintf(w, "Columnar trajectory engine — %d windows, %d rules, %d entries; snapshot %d bytes, built in %.2f ms (median of %d)\n",
		rep.Windows, rep.Rules, rep.Entries, rep.SnapshotBytes, rep.SnapshotBuildMillis, rep.Reps)
	fmt.Fprintf(w, "%-34s %14s\n", "full-archive aggregate scan", "micros")
	fmt.Fprintf(w, "%-34s %14.1f\n", "columnar (window-major floats)", rep.ColumnarScanMicros)
	fmt.Fprintf(w, "%-34s %14.1f\n", "naive (per-rule varint decode)", rep.NaiveScanMicros)
	fmt.Fprintf(w, "speedup %.1fx (gate >= 5x: %v); aggregates bit-identical: %v\n",
		rep.ScanSpeedup, rep.ScanSpeedupPass, rep.DifferentialPass)
	fmt.Fprintf(w, "%-12s %12s %12s\n", "endpoint", "warm-p50-µs", "warm-p99-µs")
	fmt.Fprintf(w, "%-12s %12.1f %12.1f\n", "/topk", rep.TopKP50Micros, rep.TopKP99Micros)
	fmt.Fprintf(w, "%-12s %12.1f %12.1f\n", "/similar", rep.SimilarP50Micros, rep.SimilarP99Micros)
	fmt.Fprintf(w, "%-12s %12.1f %12.1f\n", "/emerging", rep.EmergingP50Micros, rep.EmergingP99Micros)
	fmt.Fprintf(w, "warm p50 < 1ms on all three: %v; emerging rows %d; similar candidates pruned %.0f%%\n",
		rep.WarmP50Pass, rep.EmergingRows, rep.PrunedFraction*100)
	return nil
}
