// Package harness drives the paper's experiments end to end: it generates
// the four benchmark datasets at a configurable scale, builds TARA and the
// three competitor systems, runs each figure's workload, and prints the
// rows/series the paper reports. cmd/tarabench is a thin wrapper; the
// root-level bench_test.go reuses the same builders for testing.B benches.
package harness

import (
	"fmt"

	"tara/internal/gen"
	"tara/internal/txdb"
)

// DatasetSpec describes one benchmark dataset: its generator, its window
// count, and the Table 4 index-construction thresholds together with the
// query sweeps of Figures 7–11. Transaction counts scale linearly with the
// harness scale factor; the paper's absolute sizes (Table 3) are noted in
// the comments.
type DatasetSpec struct {
	Name      string
	Batches   int
	GenSupp   float64 // Table 4 support threshold
	GenConf   float64 // Table 4 confidence threshold
	MaxLen    int     // itemset length cap (see EXPERIMENTS.md)
	SuppSweep []float64
	ConfSweep []float64
	FixedSupp float64
	FixedConf float64
	Build     func(scale float64) (*txdb.DB, error)
}

// scaled applies the scale factor with an explicit floor: below it, windows
// become so small that the generation support threshold corresponds to a
// count of 1 and the frequent-itemset lattice degenerates to "everything".
func scaled(base int, scale float64, floor int) int {
	n := int(float64(base) * scale)
	if n < floor {
		n = floor
	}
	return n
}

// Datasets returns the four benchmark dataset specs. scale 1.0 is the
// repository default (sized so the full suite runs in minutes on a laptop);
// the paper's originals are 2–3 orders of magnitude larger.
func Datasets() []DatasetSpec {
	return []DatasetSpec{
		{
			// Paper: Belgian retail, 8.8M transactions (100x replicated),
			// 16,470 items, avg length 10, thresholds (0.0002, 0.1).
			Name:      "retail",
			Batches:   10,
			GenSupp:   0.005,
			GenConf:   0.1,
			MaxLen:    4,
			SuppSweep: []float64{0.005, 0.01, 0.02, 0.04, 0.08},
			ConfSweep: []float64{0.1, 0.2, 0.4, 0.6, 0.8},
			FixedSupp: 0.005,
			FixedConf: 0.4, // the paper's retail fig7 setting
			Build: func(scale float64) (*txdb.DB, error) {
				return gen.Retail(gen.RetailParams{
					Transactions: scaled(20000, scale, 4000),
					NumItems:     2000,
					AvgLen:       10,
					Seed:         101,
				})
			},
		},
		{
			// Paper: T5kL50N100 (IBM Quest), 5M transactions, 23,870 items,
			// avg length 50, thresholds (0.0012, 0.2).
			Name:      "t5k",
			Batches:   5,
			GenSupp:   0.01,
			GenConf:   0.2,
			MaxLen:    4,
			SuppSweep: []float64{0.01, 0.02, 0.04, 0.08, 0.16},
			ConfSweep: []float64{0.2, 0.3, 0.45, 0.6, 0.8},
			FixedSupp: 0.01,
			FixedConf: 0.2,
			Build: func(scale float64) (*txdb.DB, error) {
				return gen.Quest(gen.QuestParams{
					Transactions: scaled(10000, scale, 1500),
					AvgTransLen:  25,
					NumItems:     1200,
					NumPatterns:  400,
					AvgPatLen:    4,
					Seed:         102,
				})
			},
		},
		{
			// Paper: T2kL100N1k (IBM Quest), 2M transactions, 30,551 items,
			// avg length 100, thresholds (0.001, 0.2).
			Name:      "t2k",
			Batches:   5,
			GenSupp:   0.01,
			GenConf:   0.2,
			MaxLen:    4,
			SuppSweep: []float64{0.01, 0.02, 0.04, 0.08, 0.16},
			ConfSweep: []float64{0.2, 0.3, 0.45, 0.6, 0.8},
			FixedSupp: 0.01,
			FixedConf: 0.2,
			Build: func(scale float64) (*txdb.DB, error) {
				return gen.Quest(gen.QuestParams{
					Transactions: scaled(4000, scale, 1500),
					AvgTransLen:  40,
					NumItems:     1500,
					NumPatterns:  600,
					AvgPatLen:    5,
					Seed:         103,
				})
			},
		},
		{
			// Paper: webdocs, 1.69M documents, 5.3M terms, avg length 177,
			// thresholds (0.1123, 0.2).
			Name:      "webdocs",
			Batches:   5,
			GenSupp:   0.2,
			GenConf:   0.2,
			MaxLen:    3, // webdocs is dense; length-4 lattices explode (see EXPERIMENTS.md)
			SuppSweep: []float64{0.2, 0.25, 0.3, 0.35, 0.45},
			ConfSweep: []float64{0.2, 0.3, 0.45, 0.6, 0.8},
			FixedSupp: 0.2,
			FixedConf: 0.4,
			Build: func(scale float64) (*txdb.DB, error) {
				return gen.Webdocs(gen.WebdocsParams{
					Transactions: scaled(3000, scale, 800),
					NumItems:     20000,
					AvgLen:       60,
					Seed:         104,
				})
			},
		},
	}
}

// DatasetByName finds a spec by name.
func DatasetByName(name string) (DatasetSpec, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("harness: unknown dataset %q", name)
}
