package harness

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"testing"
	"time"
)

// TestLoadBenchSmall runs the open-loop experiment at toy scale with explicit
// rates (no calibration) and checks the report's structural invariants: the
// cold + warm-below + warm-above phase shape, rate accounting, per-class
// bookkeeping that sums to the phase totals, and ordered latency quantiles.
func TestLoadBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a knowledge base and offers ~1s of load")
	}
	rep, err := LoadBench(0.05, LoadOptions{
		PhaseDuration: 250 * time.Millisecond,
		Rates:         []float64{100, 400},
		Admission:     "static",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CapacityQPS != 0 {
		t.Errorf("CapacityQPS = %g with explicit rates, want 0 (no calibration)", rep.CapacityQPS)
	}
	if rep.Adaptive != nil {
		t.Errorf("Admission:static still produced an adaptive section")
	}
	wantNames := []string{"cold", "warm-below", "warm-above"}
	if len(rep.Phases) != len(wantNames) {
		t.Fatalf("got %d phases, want %d", len(rep.Phases), len(wantNames))
	}
	wantRates := []float64{100, 100, 400}
	for i, ph := range rep.Phases {
		if ph.Name != wantNames[i] {
			t.Errorf("phase %d name = %q, want %q", i, ph.Name, wantNames[i])
		}
		if ph.OfferedQPS != wantRates[i] {
			t.Errorf("phase %q offeredQPS = %g, want %g", ph.Name, ph.OfferedQPS, wantRates[i])
		}
		if ph.Seconds <= 0 {
			t.Errorf("phase %q seconds = %g, want > 0", ph.Name, ph.Seconds)
		}
		if ph.Requests == 0 {
			t.Errorf("phase %q generated no requests", ph.Name)
		}
		if ph.GeneratedQPS <= 0 {
			t.Errorf("phase %q generatedQPS = %g, want > 0", ph.Name, ph.GeneratedQPS)
		}
		if ph.ShedRate < 0 || ph.ShedRate > 1 {
			t.Errorf("phase %q shedRate = %g outside [0,1]", ph.Name, ph.ShedRate)
		}
		var sum int
		for _, c := range ph.Classes {
			sum += c.Requests
			if got := c.OK + c.Shed + c.Timeouts + c.Errors; got != c.Requests {
				t.Errorf("phase %q class %q: ok+shed+timeouts+errors=%d != requests=%d",
					ph.Name, c.Class, got, c.Requests)
			}
			if c.OK > 0 {
				if c.P50Micros > c.P95Micros || c.P95Micros > c.P99Micros || c.P99Micros > c.P999Micros {
					t.Errorf("phase %q class %q: quantiles out of order: p50=%g p95=%g p99=%g p999=%g",
						ph.Name, c.Class, c.P50Micros, c.P95Micros, c.P99Micros, c.P999Micros)
				}
				if c.P999Micros > c.MaxMicros {
					t.Errorf("phase %q class %q: p999=%g > max=%g", ph.Name, c.Class, c.P999Micros, c.MaxMicros)
				}
			}
		}
		if sum != ph.Requests {
			t.Errorf("phase %q: class requests sum to %d, phase total %d", ph.Name, sum, ph.Requests)
		}
		if r := ph.ByteCache.HitRatio; r < 0 || r > 1 {
			t.Errorf("phase %q byteCache hitRatio = %g outside [0,1]", ph.Name, r)
		}
	}
	// Warm phases on the same server must see a byte cache at least as warm
	// as the cold phase's.
	if cold, warm := rep.Phases[0].ByteCache.HitRatio, rep.Phases[1].ByteCache.HitRatio; warm < cold {
		t.Errorf("warm-below byte-cache hit ratio %g below cold phase's %g", warm, cold)
	}

	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
	var back LoadReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Phases) != len(rep.Phases) {
		t.Errorf("round-trip lost phases: %d != %d", len(back.Phases), len(rep.Phases))
	}
}

// TestLoadBenchAdaptiveSmall runs the default (adaptive) experiment at toy
// scale and checks the adaptive section's shape: the ramp + steady phases, a
// non-empty limit trajectory that stays within the controller's bounds, a
// converged limit inside [min,max], and the per-class p99 comparison against
// the static warm-above phase.
func TestLoadBenchAdaptiveSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two knowledge bases and offers ~2s of load")
	}
	rep, err := LoadBench(0.05, LoadOptions{
		PhaseDuration: 250 * time.Millisecond,
		Rates:         []float64{100, 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	ad := rep.Adaptive
	if ad == nil {
		t.Fatal("default options produced no adaptive section")
	}
	if ad.MinLimit <= 0 || ad.MaxLimit < ad.MinLimit {
		t.Fatalf("bounds [%d,%d] malformed", ad.MinLimit, ad.MaxLimit)
	}
	if len(ad.Trajectory) == 0 {
		t.Fatal("empty limit trajectory")
	}
	lastOff := -1.0
	for i, s := range ad.Trajectory {
		if s.Limit < ad.MinLimit || s.Limit > ad.MaxLimit {
			t.Errorf("trajectory[%d]: limit %d outside [%d,%d]", i, s.Limit, ad.MinLimit, ad.MaxLimit)
		}
		if s.OffsetMillis <= lastOff {
			t.Errorf("trajectory[%d]: offset %g not increasing (prev %g)", i, s.OffsetMillis, lastOff)
		}
		lastOff = s.OffsetMillis
		if s.OfferedQPS < 100 || s.OfferedQPS > 400 {
			t.Errorf("trajectory[%d]: offeredQPS %g outside the [100,400] schedule", i, s.OfferedQPS)
		}
		if s.InFlight < 0 {
			t.Errorf("trajectory[%d]: inFlight %d < 0", i, s.InFlight)
		}
	}
	if ad.ConvergedLimit < ad.MinLimit || ad.ConvergedLimit > ad.MaxLimit {
		t.Errorf("convergedLimit %d outside [%d,%d]", ad.ConvergedLimit, ad.MinLimit, ad.MaxLimit)
	}
	wantNames := []string{"adaptive-ramp", "adaptive-above"}
	if len(ad.Phases) != len(wantNames) {
		t.Fatalf("adaptive section has %d phases, want %d", len(ad.Phases), len(wantNames))
	}
	for i, ph := range ad.Phases {
		if ph.Name != wantNames[i] {
			t.Errorf("adaptive phase %d = %q, want %q", i, ph.Name, wantNames[i])
		}
		if ph.Requests == 0 {
			t.Errorf("adaptive phase %q generated no requests", ph.Name)
		}
		var sum int
		for _, c := range ph.Classes {
			sum += c.Requests
			if got := c.OK + c.Shed + c.Timeouts + c.Errors; got != c.Requests {
				t.Errorf("adaptive phase %q class %q: ok+shed+timeouts+errors=%d != requests=%d",
					ph.Name, c.Class, got, c.Requests)
			}
		}
		if sum != ph.Requests {
			t.Errorf("adaptive phase %q: class requests sum to %d, phase total %d", ph.Name, sum, ph.Requests)
		}
	}
	if len(ad.P99VsStatic) == 0 {
		t.Error("no per-class p99 comparison against the static warm-above phase")
	}
	for _, c := range ad.P99VsStatic {
		if c.Class == "" {
			t.Errorf("p99VsStatic entry with empty class: %+v", c)
		}
	}

	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
	var back LoadReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Adaptive == nil || len(back.Adaptive.Trajectory) != len(ad.Trajectory) {
		t.Error("round-trip lost the adaptive section")
	}
}

// Minimal protobuf encoders for building a synthetic pprof profile: varints,
// wire-type-0 fields and length-delimited fields.
func pbVarint(v uint64) []byte {
	var b []byte
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func pbVint(field int, v uint64) []byte {
	return append(pbVarint(uint64(field)<<3|0), pbVarint(v)...)
}

func pbBytes(field int, payload []byte) []byte {
	b := append(pbVarint(uint64(field)<<3|2), pbVarint(uint64(len(payload)))...)
	return append(b, payload...)
}

// TestParseProfile decodes a hand-encoded CPU profile: two functions, one
// with 900ns flat and one with 100ns, mixing packed and unpacked repeated
// fields to cover both decode paths.
func TestParseProfile(t *testing.T) {
	// Sample 1: leaf location 1, values [5, 900] (count, nanos) — unpacked.
	sample1 := append(pbVint(1, 1), pbVint(2, 5)...)
	sample1 = append(sample1, pbVint(2, 900)...)
	// Sample 2: locations [2, 1] and values [1, 100] — packed.
	locs := append(pbVarint(2), pbVarint(1)...)
	vals := append(pbVarint(1), pbVarint(100)...)
	sample2 := append(pbBytes(1, locs), pbBytes(2, vals)...)

	line1 := pbVint(1, 1) // Line{function_id: 1}
	line2 := pbVint(1, 2)
	loc1 := append(pbVint(1, 1), pbBytes(4, line1)...) // Location{id: 1, line}
	loc2 := append(pbVint(1, 2), pbBytes(4, line2)...)
	fn1 := append(pbVint(1, 1), pbVint(2, 1)...) // Function{id: 1, name: strtab[1]}
	fn2 := append(pbVint(1, 2), pbVint(2, 2)...)

	var profile []byte
	profile = append(profile, pbBytes(2, sample1)...)
	profile = append(profile, pbBytes(2, sample2)...)
	profile = append(profile, pbBytes(4, loc1)...)
	profile = append(profile, pbBytes(4, loc2)...)
	profile = append(profile, pbBytes(5, fn1)...)
	profile = append(profile, pbBytes(5, fn2)...)
	profile = append(profile, pbBytes(6, []byte(""))...) // strtab[0] is always ""
	profile = append(profile, pbBytes(6, []byte("hotFunc"))...)
	profile = append(profile, pbBytes(6, []byte("coldFunc"))...)

	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(profile); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	rep := ParseProfile(gz.Bytes(), 10)
	if rep.Err != "" {
		t.Fatalf("ParseProfile: %s", rep.Err)
	}
	if rep.Samples != 2 {
		t.Errorf("Samples = %d, want 2", rep.Samples)
	}
	if rep.TotalNanos != 1000 {
		t.Errorf("TotalNanos = %d, want 1000", rep.TotalNanos)
	}
	if len(rep.Top) != 2 {
		t.Fatalf("Top = %+v, want 2 functions", rep.Top)
	}
	if rep.Top[0].Name != "hotFunc" || rep.Top[0].FlatNanos != 900 || rep.Top[0].Percent != 90 {
		t.Errorf("Top[0] = %+v, want hotFunc 900ns 90%%", rep.Top[0])
	}
	if rep.Top[1].Name != "coldFunc" || rep.Top[1].FlatNanos != 100 || rep.Top[1].Percent != 10 {
		t.Errorf("Top[1] = %+v, want coldFunc 100ns 10%%", rep.Top[1])
	}
}

// TestParseProfileTopN checks truncation to topN.
func TestParseProfileTopN(t *testing.T) {
	sample := append(pbVint(1, 1), pbVint(2, 10)...)
	var profile []byte
	profile = append(profile, pbBytes(2, sample)...)
	profile = append(profile, pbBytes(6, []byte(""))...)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(profile)
	zw.Close()
	rep := ParseProfile(gz.Bytes(), 0)
	if rep.Err != "" {
		t.Fatalf("ParseProfile: %s", rep.Err)
	}
	// Location 1 has no Location message, so it attributes to "(unknown)";
	// topN=0 truncates the table away while keeping the totals.
	if len(rep.Top) != 0 || rep.TotalNanos != 10 {
		t.Errorf("topN=0: Top=%+v TotalNanos=%d, want empty table with total 10", rep.Top, rep.TotalNanos)
	}
}

// TestParseProfileErrors checks malformed inputs surface as Err, never panic.
func TestParseProfileErrors(t *testing.T) {
	for name, data := range map[string][]byte{
		"not gzip":  []byte("definitely not a gzip stream"),
		"empty":     nil,
		"truncated": {0x1f, 0x8b, 0x08},
	} {
		if rep := ParseProfile(data, 5); rep.Err == "" {
			t.Errorf("%s: ParseProfile returned no error: %+v", name, rep)
		}
	}
	// A gzip stream wrapping garbage protobuf must also fail gracefully.
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write([]byte{0xff, 0xff, 0xff})
	zw.Close()
	if rep := ParseProfile(gz.Bytes(), 5); rep.Err == "" {
		t.Errorf("garbage protobuf: ParseProfile returned no error: %+v", rep)
	}
}
