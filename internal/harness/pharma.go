package harness

import (
	"fmt"
	"io"

	"tara/internal/gen"
	"tara/internal/maras"
	"tara/internal/stats"
)

// faersQuarter generates one synthetic FAERS quarter. Seeds vary per year
// and quarter so every quarter is an independent draw, as in the paper's
// 2013–2015 quarterly evaluation.
func faersQuarter(year, quarter int, scale float64) (*maras.Dataset, []gen.DDI, error) {
	return gen.FAERS(gen.FAERSParams{
		Reports:  scaled(6000, scale, 1500),
		NumDrugs: 80,
		NumADRs:  60,
		NumDDIs:  15,
		Seed:     int64(year*10 + quarter),
	})
}

// marasMinSupport is the absolute joint-support floor for scored signals in
// the pharmacovigilance experiments.
const marasMinSupport = 8

// precisionAtKs computes precision at each requested K for one mined
// quarter against its planted ground truth.
func precisionAtKs(ds *maras.Dataset, truth []gen.DDI, signals []maras.Signal, ks []int) []float64 {
	truthKeys := map[string]bool{}
	for _, d := range truth {
		truthKeys[d.Key()] = true
	}
	maxK := ks[len(ks)-1]
	ranked := make([]string, 0, maxK)
	for _, s := range maras.TopK(signals, maxK) {
		hit := ""
		for _, k := range gen.SignalKeys(ds, s) {
			if truthKeys[k] {
				hit = k
				break
			}
		}
		ranked = append(ranked, hit)
	}
	hitSet := map[string]bool{"": false}
	for _, r := range ranked {
		if r != "" {
			hitSet[r] = true
		}
	}
	out := make([]float64, len(ks))
	for i, k := range ks {
		out[i] = stats.PrecisionAtK(ranked, hitSet, k)
	}
	return out
}

// RunFig6 regenerates Figure 6: precision of the top-K MARAS MDAR signals,
// averaged over four quarters per year, for three years of synthetic FAERS
// data.
func RunFig6(w io.Writer, scale float64) error {
	fmt.Fprintln(w, "Figure 6 — precision of top-K MARAS MDAR signals (synthetic FAERS, planted DDIs)")
	years := []int{2013, 2014, 2015}
	ks := []int{5, 10, 15, 20, 25, 30}
	perYear := make(map[int][]float64)
	for _, y := range years {
		sums := make([]float64, len(ks))
		for q := 1; q <= 4; q++ {
			ds, truth, err := faersQuarter(y, q, scale)
			if err != nil {
				return err
			}
			signals, err := maras.Mine(ds, maras.Params{MinSupportCount: marasMinSupport})
			if err != nil {
				return err
			}
			ps := precisionAtKs(ds, truth, signals, ks)
			for i := range sums {
				sums[i] += ps[i]
			}
		}
		for i := range sums {
			sums[i] /= 4
		}
		perYear[y] = sums
	}
	fmt.Fprintf(w, "%-6s", "K")
	for _, y := range years {
		fmt.Fprintf(w, " %10d", y)
	}
	fmt.Fprintln(w)
	for i, k := range ks {
		fmt.Fprintf(w, "%-6d", k)
		for _, y := range years {
			fmt.Fprintf(w, " %10.3f", perYear[y][i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunTab2 regenerates Table 2: the top-5 MDAR signals of one quarter as
// ranked by plain confidence, by reporting ratio, and by MARAS contrast,
// with ground-truth hits marked.
func RunTab2(w io.Writer, scale float64) error {
	ds, truth, err := faersQuarter(2015, 3, scale)
	if err != nil {
		return err
	}
	truthKeys := map[string]bool{}
	for _, d := range truth {
		truthKeys[d.Key()] = true
	}
	mark := func(keys []string) string {
		for _, k := range keys {
			if truthKeys[k] {
				return " [TRUE DDI]"
			}
		}
		return ""
	}

	fmt.Fprintln(w, "Table 2 — top-5 MDAR signals, 3rd quarter of 2015 (synthetic)")
	byConf, err := maras.RankBaseline(ds, maras.ByConfidence, marasMinSupport, 5, 5)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  ranked by Confidence:")
	for i, s := range byConf {
		keys := baselineKeys(ds, s)
		fmt.Fprintf(w, "   %d. %-55s conf=%.3f%s\n", i+1, s.Assoc.Format(ds), s.Confidence, mark(keys))
	}
	byRR, err := maras.RankBaseline(ds, maras.ByReportingRatio, marasMinSupport, 5, 5)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  ranked by Reporting Ratio (lift):")
	for i, s := range byRR {
		keys := baselineKeys(ds, s)
		fmt.Fprintf(w, "   %d. %-55s RR=%.2f%s\n", i+1, s.Assoc.Format(ds), s.Lift, mark(keys))
	}
	signals, err := maras.Mine(ds, maras.Params{MinSupportCount: marasMinSupport})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  ranked by MARAS contrast:")
	for i, s := range maras.TopK(signals, 5) {
		fmt.Fprintf(w, "   %d. %-55s contrast=%.3f%s\n", i+1, s.Assoc.Format(ds), s.Contrast, mark(gen.SignalKeys(ds, s)))
	}

	// Where do MARAS's true hits rank under the baselines? (The paper's
	// point: confidence ranks its case-study signal 2,436th.)
	fullConf, err := maras.RankBaseline(ds, maras.ByConfidence, marasMinSupport, 5, 0)
	if err != nil {
		return err
	}
	for i, s := range maras.TopK(signals, 3) {
		keys := gen.SignalKeys(ds, s)
		hit := ""
		for _, k := range keys {
			if truthKeys[k] {
				hit = k
			}
		}
		if hit == "" {
			continue
		}
		rank := baselineRankOf(ds, fullConf, s)
		if rank == 0 {
			fmt.Fprintf(w, "  MARAS #%d (%s) does not appear among the %d confidence-ranked associations at all (only partial interpretations do)\n",
				i+1, s.Assoc.Format(ds), len(fullConf))
		} else {
			fmt.Fprintf(w, "  MARAS #%d (%s) ranks %d of %d by plain confidence\n",
				i+1, s.Assoc.Format(ds), rank, len(fullConf))
		}
	}
	return nil
}

// baselineKeys renders a baseline signal's ground-truth match keys.
func baselineKeys(ds *maras.Dataset, s maras.BaselineSignal) []string {
	if len(s.Assoc.Drugs) != 2 {
		return nil
	}
	a := ds.Drugs.Name(s.Assoc.Drugs[0])
	b := ds.Drugs.Name(s.Assoc.Drugs[1])
	if b < a {
		a, b = b, a
	}
	keys := make([]string, 0, len(s.Assoc.ADRs))
	for _, adr := range s.Assoc.ADRs {
		keys = append(keys, a+"+"+b+"=>"+ds.ADRs.Name(adr))
	}
	return keys
}

// baselineRankOf finds the 1-based position of a MARAS signal's association
// in a baseline ranking (0 if absent).
func baselineRankOf(ds *maras.Dataset, ranked []maras.BaselineSignal, s maras.Signal) int {
	key := s.Assoc.Key()
	for i, b := range ranked {
		if b.Assoc.Key() == key {
			return i + 1
		}
	}
	return 0
}
