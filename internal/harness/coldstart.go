package harness

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"tara/internal/gen"
	"tara/internal/mining"
	"tara/internal/tara"
)

// The cold-start experiment measures the mapped knowledge-base container:
// time-to-first-query of tara.Open over the mapped layout versus the legacy
// streaming Load, on the daemon's default retail knowledge base. Both modes
// open the same logical knowledge base from disk and then answer the same
// cold query sweep (Mine + Count over every window), so the report separates
// time-to-ready from the lazy-materialization cost the mapped path defers
// into the first queries.

const (
	// coldStartReps is how many times each mode reopens the knowledge base;
	// the report keeps medians.
	coldStartReps = 7
	// coldMineSupp/Conf are the cold-sweep thresholds: above the generation
	// thresholds, so answers are a realistic subset that still forces rule
	// materialization.
	coldMineSupp = 0.01
	coldMineConf = 0.2
)

// ColdStartReport is the JSON document the cold-start experiment emits
// (BENCH_coldstart.json).
type ColdStartReport struct {
	Transactions int `json:"transactions"`
	Windows      int `json:"windows"`
	Rules        int `json:"rules"`
	LegacyBytes  int `json:"legacyBytes"`
	MappedBytes  int `json:"mappedBytes"`
	Reps         int `json:"reps"`
	// Median time from file path to a ready *Framework.
	HeapLoadMillis   float64 `json:"heapLoadMillis"`
	MappedOpenMillis float64 `json:"mappedOpenMillis"`
	// OpenSpeedup is heap load over mapped open (higher is better).
	OpenSpeedup float64 `json:"openSpeedup"`
	// Median time for the cold query sweep (Mine + Count over every window)
	// on a freshly opened framework.
	HeapColdSweepMicros   float64 `json:"heapColdSweepMicros"`
	MappedColdSweepMicros float64 `json:"mappedColdSweepMicros"`
	// ColdSweepRatio is mapped over heap (lower is better; 1.0 = parity).
	ColdSweepRatio float64 `json:"coldSweepRatio"`
	// MappedLoadMode is what tara.Open reported: "mmap" where the platform
	// maps, "readerat" on the portable fallback.
	MappedLoadMode string `json:"mappedLoadMode"`
	// Acceptance gates: mapped open at least 10x faster than the legacy
	// load, cold mapped queries within 2x of heap.
	OpenSpeedupPass bool `json:"openSpeedupPass"`
	ColdSweepPass   bool `json:"coldSweepPass"`
}

// coldStartFramework builds the daemon's default knowledge base (retail
// generator, ten windows, the Table 4 retail thresholds) at the given scale.
func coldStartFramework(scale float64) (*tara.Framework, error) {
	tx := int(20000 * scale)
	if tx < 500 {
		tx = 500
	}
	db, err := gen.Retail(gen.RetailParams{Transactions: tx, NumItems: 2000, AvgLen: 10, Seed: 1})
	if err != nil {
		return nil, err
	}
	m, err := mining.ByName("eclat")
	if err != nil {
		return nil, err
	}
	return tara.Build(db, 0, 10, tara.Config{
		GenMinSupport: 0.005,
		GenMinConf:    0.1,
		MaxItemsetLen: 4,
		Miner:         m,
		ContentIndex:  true,
	})
}

// ColdStartImages builds the experiment's knowledge base once and returns it
// serialized in both on-disk formats, for the root cold-start benchmarks.
func ColdStartImages(scale float64) (legacy, mapped []byte, err error) {
	f, err := coldStartFramework(scale)
	if err != nil {
		return nil, nil, err
	}
	var lbuf, mbuf bytes.Buffer
	if err := f.Save(&lbuf); err != nil {
		return nil, nil, err
	}
	if err := f.SaveMapped(&mbuf); err != nil {
		return nil, nil, err
	}
	return lbuf.Bytes(), mbuf.Bytes(), nil
}

// coldSweep runs the cold query sweep on a freshly opened framework and
// returns its duration plus the total answer size (the modes must agree).
func coldSweep(f *tara.Framework) (time.Duration, int, error) {
	start := time.Now()
	total := 0
	for w := 0; w < f.Windows(); w++ {
		views, err := f.Mine(w, coldMineSupp, coldMineConf)
		if err != nil {
			return 0, 0, err
		}
		total += len(views)
		n, err := f.Count(w, coldMineSupp, coldMineConf)
		if err != nil {
			return 0, 0, err
		}
		total += n
	}
	return time.Since(start), total, nil
}

func medianMillis(ds []time.Duration) float64 {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return float64(ds[len(ds)/2].Nanoseconds()) / 1e6
}

// ColdStartBench runs the cold-start experiment and returns its report.
func ColdStartBench(scale float64) (*ColdStartReport, error) {
	if scale <= 0 {
		scale = 1
	}
	f, err := coldStartFramework(scale)
	if err != nil {
		return nil, err
	}
	rep := &ColdStartReport{
		Transactions: int(20000 * scale),
		Windows:      f.Windows(),
		Rules:        f.RuleDict().Len(),
		Reps:         coldStartReps,
	}

	dir, err := os.MkdirTemp("", "tara-coldstart")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	legacyPath := filepath.Join(dir, "kb.legacy")
	mappedPath := filepath.Join(dir, "kb.mapped")
	var lbuf, mbuf bytes.Buffer
	if err := f.Save(&lbuf); err != nil {
		return nil, err
	}
	if err := f.SaveMapped(&mbuf); err != nil {
		return nil, err
	}
	rep.LegacyBytes, rep.MappedBytes = lbuf.Len(), mbuf.Len()
	if err := os.WriteFile(legacyPath, lbuf.Bytes(), 0o644); err != nil {
		return nil, err
	}
	if err := os.WriteFile(mappedPath, mbuf.Bytes(), 0o644); err != nil {
		return nil, err
	}

	var heapLoad, mappedOpen, heapSweep, mappedSweep []time.Duration
	heapTotal, mappedTotal := -1, -1
	for i := 0; i < coldStartReps; i++ {
		// Settle the heap before each timed open so garbage from the
		// previous rep's sweep is not collected inside the timed region.
		runtime.GC()
		start := time.Now()
		fh, err := os.Open(legacyPath)
		if err != nil {
			return nil, err
		}
		hf, err := tara.Load(fh)
		fh.Close()
		if err != nil {
			return nil, err
		}
		heapLoad = append(heapLoad, time.Since(start))
		d, total, err := coldSweep(hf)
		if err != nil {
			return nil, err
		}
		heapSweep = append(heapSweep, d)
		heapTotal = total

		runtime.GC()
		start = time.Now()
		mf, err := tara.Open(mappedPath)
		if err != nil {
			return nil, err
		}
		mappedOpen = append(mappedOpen, time.Since(start))
		d, total, err = coldSweep(mf)
		if err != nil {
			mf.Close()
			return nil, err
		}
		mappedSweep = append(mappedSweep, d)
		mappedTotal = total
		if heapTotal != mappedTotal {
			mf.Close()
			return nil, fmt.Errorf("harness: cold sweep diverged: heap answered %d, mapped %d", heapTotal, mappedTotal)
		}
		rep.MappedLoadMode = mf.LoadMode()
		if err := mf.Close(); err != nil {
			return nil, err
		}
	}

	rep.HeapLoadMillis = medianMillis(heapLoad)
	rep.MappedOpenMillis = medianMillis(mappedOpen)
	rep.HeapColdSweepMicros = medianMillis(heapSweep) * 1e3
	rep.MappedColdSweepMicros = medianMillis(mappedSweep) * 1e3
	if rep.MappedOpenMillis > 0 {
		rep.OpenSpeedup = rep.HeapLoadMillis / rep.MappedOpenMillis
	}
	if rep.HeapColdSweepMicros > 0 {
		rep.ColdSweepRatio = rep.MappedColdSweepMicros / rep.HeapColdSweepMicros
	}
	rep.OpenSpeedupPass = rep.OpenSpeedup >= 10
	rep.ColdSweepPass = rep.ColdSweepRatio <= 2
	return rep, nil
}

// RunColdStart prints the cold-start experiment as a table.
func RunColdStart(w io.Writer, scale float64) error {
	rep, err := ColdStartBench(scale)
	if err != nil {
		return err
	}
	return PrintColdStart(w, rep)
}

// PrintColdStart renders an already-measured report (so one run can feed
// both the table and the JSON artifact).
func PrintColdStart(w io.Writer, rep *ColdStartReport) error {
	fmt.Fprintf(w, "Cold start — %d windows, %d rules; legacy %d bytes, mapped %d bytes, %d reps (medians)\n",
		rep.Windows, rep.Rules, rep.LegacyBytes, rep.MappedBytes, rep.Reps)
	fmt.Fprintf(w, "%-22s %14s %16s\n", "mode", "open-ms", "cold-sweep-µs")
	fmt.Fprintf(w, "%-22s %14.3f %16.1f\n", "heap (legacy load)", rep.HeapLoadMillis, rep.HeapColdSweepMicros)
	fmt.Fprintf(w, "%-22s %14.3f %16.1f\n", "mapped ("+rep.MappedLoadMode+")", rep.MappedOpenMillis, rep.MappedColdSweepMicros)
	fmt.Fprintf(w, "open speedup %.1fx (gate >= 10x: %v); cold sweep ratio %.2fx of heap (gate <= 2x: %v)\n",
		rep.OpenSpeedup, rep.OpenSpeedupPass, rep.ColdSweepRatio, rep.ColdSweepPass)
	return nil
}
