package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tara/internal/gen"
	"tara/internal/txdb"
)

// tinySpec is a miniature dataset used to smoke-test every experiment
// runner quickly; the real specs run at full size in cmd/tarabench.
func tinySpec() DatasetSpec {
	return DatasetSpec{
		Name:      "tiny",
		Batches:   4,
		GenSupp:   0.01,
		GenConf:   0.1,
		MaxLen:    3,
		SuppSweep: []float64{0.01, 0.04},
		ConfSweep: []float64{0.1, 0.5},
		FixedSupp: 0.01,
		FixedConf: 0.3,
		Build: func(scale float64) (*txdb.DB, error) {
			return gen.Retail(gen.RetailParams{
				Transactions: 1200,
				NumItems:     200,
				AvgLen:       8,
				Seed:         7,
			})
		},
	}
}

func TestDatasetByName(t *testing.T) {
	for _, name := range []string{"retail", "t5k", "t2k", "webdocs"} {
		spec, err := DatasetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Name != name {
			t.Errorf("DatasetByName(%q).Name = %q", name, spec.Name)
		}
		if spec.GenSupp <= 0 || spec.GenConf < 0 || spec.Batches <= 0 {
			t.Errorf("%s: implausible spec %+v", name, spec)
		}
		if len(spec.SuppSweep) == 0 || len(spec.ConfSweep) == 0 {
			t.Errorf("%s: missing sweeps", name)
		}
		if spec.SuppSweep[0] < spec.GenSupp {
			t.Errorf("%s: sweep starts below generation threshold", name)
		}
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestBuildSystems(t *testing.T) {
	sys, err := BuildSystems(tinySpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if sys.TARA.Windows() != 4 {
		t.Errorf("TARA windows = %d", sys.TARA.Windows())
	}
	base, others := sys.BaseWindow()
	if base != 3 || len(others) != 3 {
		t.Errorf("BaseWindow = %d, %v", base, others)
	}
	if got := sys.CompareWindows(); len(got) != 4 || got[3] != 3 {
		t.Errorf("CompareWindows = %v", got)
	}
}

func TestTimeIt(t *testing.T) {
	d, err := timeIt(func() error { time.Sleep(3 * time.Millisecond); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if d < 2*time.Millisecond {
		t.Errorf("timeIt = %v for a 3ms op", d)
	}
	d, err = timeIt(func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 {
		t.Errorf("timeIt = %v", d)
	}
}

func TestFig7SmokeTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig7(&buf, 1, []DatasetSpec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tiny") || !strings.Contains(out, "supp=0.04") {
		t.Errorf("unexpected fig7 output:\n%s", out)
	}
}

func TestFig8SmokeTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig8(&buf, 1, []DatasetSpec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "conf=0.5") {
		t.Errorf("unexpected fig8 output:\n%s", buf.String())
	}
}

func TestFig9SmokeTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig9(&buf, 1, []DatasetSpec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TARA/H-Mine") {
		t.Errorf("unexpected fig9 output:\n%s", buf.String())
	}
}

func TestFig10And11SmokeTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig10(&buf, 1, []DatasetSpec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	if err := runFig11(&buf, 1, []DatasetSpec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "supp2=") || !strings.Contains(buf.String(), "conf2=") {
		t.Errorf("unexpected fig10/11 output:\n%s", buf.String())
	}
}

func TestFig12SmokeTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig12(&buf, 1, []DatasetSpec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tar-archive") {
		t.Errorf("unexpected fig12 output:\n%s", buf.String())
	}
}

func TestRollUpSmokeTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := runRollUp(&buf, 1, []DatasetSpec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "true") {
		t.Errorf("roll-up bound not confirmed:\n%s", buf.String())
	}
}

func TestTab3SmokeTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := runTab3(&buf, 1, []DatasetSpec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tiny") {
		t.Errorf("unexpected tab3 output:\n%s", buf.String())
	}
}

func TestFig6AndTab2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pharmacovigilance smoke skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := RunFig6(&buf, 0.05); err != nil { // floors keep quarters at 1500 reports
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2013") {
		t.Errorf("unexpected fig6 output:\n%s", buf.String())
	}
	buf.Reset()
	if err := RunTab2(&buf, 0.05); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Confidence", "Reporting Ratio", "MARAS"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab2 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDispatcher(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("tab4", &buf, 1); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output from tab4")
	}
	if err := Run("fig99", &buf, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(ExperimentIDs()) != len(Experiments) {
		t.Error("ExperimentIDs incomplete")
	}
}

func TestQ1TimesOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	// The headline result, at small scale: TARA answers the Q1 workload
	// faster than DCTAR's from-scratch mining.
	spec := tinySpec()
	sys, err := BuildSystems(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	times, err := q1Times(sys, spec.FixedSupp, spec.FixedConf)
	if err != nil {
		t.Fatal(err)
	}
	if times["TARA"] >= times["DCTAR"] {
		t.Errorf("TARA %v not faster than DCTAR %v", times["TARA"], times["DCTAR"])
	}
	if times["TARA-R"] <= 0 || times["HMine"] <= 0 || times["PARAS"] <= 0 {
		t.Errorf("missing timings: %v", times)
	}
}

func TestTab4MentionsPaperThresholds(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTab4(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"0.0002", "0.0012", "0.1123"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 output missing paper threshold %s:\n%s", want, out)
		}
	}
}

func TestRunCSVSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CSV smoke skipped in -short mode")
	}
	// Patch in the tiny spec by calling the internals directly: RunCSV
	// iterates the real specs, so use the smallest sweep via fig10 at the
	// floor scale but verify only the header and shape on one dataset by
	// intercepting early — instead, run the collector machinery directly.
	col := newCSVCollector("fig7")
	col.add("tiny", "supp=0.01", map[string]time.Duration{"TARA": time.Microsecond, "DCTAR": time.Millisecond})
	var buf bytes.Buffer
	if err := col.flush(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "experiment,dataset,param,system,ns") {
		t.Errorf("missing CSV header: %q", out)
	}
	if !strings.Contains(out, "fig7,tiny,supp=0.01,TARA,1000") {
		t.Errorf("missing row: %q", out)
	}
	if !strings.Contains(out, "DCTAR,1000000") {
		t.Errorf("missing DCTAR row: %q", out)
	}
}

func TestRunCSVUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := RunCSV("fig9", &buf, 1); err == nil {
		t.Error("fig9 has no CSV form but was accepted")
	}
}

// TestTab1MatchesPaperValues verifies the running example reproduces the
// exact published parameter values for R1..R6 across T1 and T2.
func TestTab1MatchesPaperValues(t *testing.T) {
	fw, err := BuildTab1()
	if err != nil {
		t.Fatal(err)
	}
	find := func(w int, ant, cons string) (supp, conf float64, ok bool) {
		views, err := fw.Mine(w, 0.05, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range views {
			if v.Rule.Format(fw.ItemDict()) == "["+ant+"] => ["+cons+"]" {
				return v.Support(), v.Confidence(), true
			}
		}
		return 0, 0, false
	}
	approx := func(a, b float64) bool { return a > b-0.005 && a < b+0.005 }
	cases := []struct {
		w          int
		ant, cons  string
		supp, conf float64
	}{
		{0, "a", "b", 2.0 / 11, 0.5},  // R1 in T1: (0.18, 0.5)
		{0, "b", "a", 2.0 / 11, 0.4},  // R2 in T1: (0.18, 0.4)
		{0, "a", "c", 2.0 / 11, 0.5},  // R3 in T1: (0.18, 0.5)
		{0, "c", "a", 2.0 / 11, 0.5},  // R4 in T1: (0.18, 0.5)
		{0, "c", "b", 1.0 / 11, 0.25}, // R5 in T1: (0.09, 0.25)
		{1, "a", "b", 1.0 / 9, 0.25},  // R1 in T2: (0.11, 0.25)
		{1, "b", "a", 1.0 / 9, 0.5},   // R2 in T2: (0.11, 0.5)
		{1, "a", "c", 3.0 / 9, 0.75},  // R3 in T2: (0.33, 0.75)
		{1, "c", "a", 3.0 / 9, 0.75},  // R4 in T2: (0.33, 0.75)
		{1, "c", "b", 1.0 / 9, 0.25},  // R5 in T2: (0.11, 0.25)
		{1, "b", "c", 1.0 / 9, 0.5},   // R6 in T2: (0.11, 0.5)
	}
	for _, c := range cases {
		supp, conf, ok := find(c.w, c.ant, c.cons)
		if !ok {
			t.Fatalf("rule %s=>%s missing in window %d", c.ant, c.cons, c.w)
		}
		if !approx(supp, c.supp) || !approx(conf, c.conf) {
			t.Errorf("window %d %s=>%s: (%.3f, %.3f), want (%.3f, %.3f)",
				c.w, c.ant, c.cons, supp, conf, c.supp, c.conf)
		}
	}
	// R6 (b=>c) must be absent in T1 (confidence 1/5 = 0.2 < 0.25).
	if _, _, ok := find(0, "b", "c"); ok {
		t.Error("R6 unexpectedly present in T1")
	}
}

func TestRunTab1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTab1(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "(0.18, 0.50)", "(0.33, 0.75)", "(0.11, 0.25)"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab1 output missing %q:\n%s", want, out)
		}
	}
}
