package harness

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"tara/internal/tara"
)

// The build experiment measures the PR's offline-path work: the end-to-end
// knowledge-base construction (per-window mining → EPS → ordered archive
// commit) serially and at increasing parallelism over the standard synthetic
// retail workload, asserting along the way that every parallel build's
// serialized knowledge base is byte-identical to the serial one — the
// pipeline's determinism contract, measured and proven in the same artifact.

// buildBenchScale enlarges the retail dataset relative to the harness
// default so per-window mining dominates and parallel speedup is visible.
const buildBenchScale = 1.0

// BuildBenchPoint is one measured build at a fixed parallelism.
type BuildBenchPoint struct {
	Parallelism int `json:"parallelism"`
	// GoMaxProcs is the effective runtime.GOMAXPROCS when this point ran —
	// the true core budget, whatever parallelism was requested. Requested
	// parallelism above it means workers time-shared cores.
	GoMaxProcs int     `json:"gomaxprocs"`
	WallMillis float64 `json:"wallMillis"`
	// Speedup is serial wall time over this point's wall time.
	Speedup float64 `json:"speedupVsSerial"`
	// Per-stage work sums across windows (not wall time: stages overlap
	// across workers), from the framework's build telemetry.
	MineMillis      float64 `json:"mineMillis"`
	RuleGenMillis   float64 `json:"rulegenMillis"`
	EPSMillis       float64 `json:"epsMillis"`
	ArchiveMillis   float64 `json:"archiveMillis"`
	CommitMillis    float64 `json:"commitMillis"`
	QueueWaitMillis float64 `json:"queueWaitMillis"`
	// ByteIdentical reports whether this build's serialized knowledge base
	// equals the serial build's, byte for byte.
	ByteIdentical bool `json:"byteIdentical"`
	// Warning flags measurement conditions that make this point's numbers
	// unrepresentative (currently: parallelism oversubscribing GOMAXPROCS).
	Warning string `json:"warning,omitempty"`
}

// BuildBenchReport is the JSON document the build experiment emits
// (BENCH_build.json).
type BuildBenchReport struct {
	Dataset      string            `json:"dataset"`
	Transactions int               `json:"transactions"`
	Windows      int               `json:"windows"`
	Rules        int               `json:"rules"`
	KBBytes      int               `json:"kbBytes"`
	GoMaxProcs   int               `json:"gomaxprocs"`
	Points       []BuildBenchPoint `json:"points"`
	// SpeedupAt4 is the acceptance headline: serial wall over parallelism-4
	// wall (0 when parallelism 4 was not measured).
	SpeedupAt4 float64 `json:"speedupAt4"`
	// AllByteIdentical is the conjunction of every point's determinism check.
	AllByteIdentical bool `json:"allByteIdentical"`
	// Warnings collects every point's measurement caveat so a reader of the
	// JSON artifact alone sees them without scanning the points.
	Warnings []string `json:"warnings,omitempty"`
}

// buildParallelisms returns the measured parallelism ladder: serial, 2, 4,
// and full GOMAXPROCS when it exceeds 4.
func buildParallelisms(maxPar int) []int {
	ladder := []int{1, 2, 4}
	if maxPar > 4 {
		ladder = append(ladder, maxPar)
	}
	return ladder
}

// BuildBench runs the offline-build experiment at the given scale. maxPar
// caps the ladder's top rung; non-positive means runtime.GOMAXPROCS(0).
func BuildBench(scale float64, maxPar int) (*BuildBenchReport, error) {
	if scale <= 0 {
		scale = 1
	}
	if maxPar <= 0 {
		maxPar = runtime.GOMAXPROCS(0)
	}
	spec, err := DatasetByName("retail")
	if err != nil {
		return nil, err
	}
	db, err := spec.Build(scale * buildBenchScale)
	if err != nil {
		return nil, err
	}
	rep := &BuildBenchReport{
		Dataset:          spec.Name,
		Transactions:     db.Len(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		AllByteIdentical: true,
	}

	var serialKB []byte
	var serialWall time.Duration
	for _, p := range buildParallelisms(maxPar) {
		cfg := tara.Config{
			GenMinSupport: spec.GenSupp,
			GenMinConf:    spec.GenConf,
			MaxItemsetLen: spec.MaxLen,
			ContentIndex:  true,
			Parallelism:   p,
		}
		start := time.Now()
		fw, err := tara.Build(db, 0, spec.Batches, cfg)
		if err != nil {
			return nil, fmt.Errorf("harness: build at parallelism %d: %w", p, err)
		}
		wall := time.Since(start)

		var kb bytes.Buffer
		if err := fw.Save(&kb); err != nil {
			return nil, fmt.Errorf("harness: serializing KB at parallelism %d: %w", p, err)
		}
		pt := BuildBenchPoint{
			Parallelism:   p,
			GoMaxProcs:    runtime.GOMAXPROCS(0),
			WallMillis:    float64(wall.Microseconds()) / 1e3,
			ByteIdentical: true,
		}
		if p > pt.GoMaxProcs {
			pt.Warning = fmt.Sprintf(
				"parallelism %d exceeds GOMAXPROCS %d: workers time-share %d core(s), speedup at this point is not meaningful",
				p, pt.GoMaxProcs, pt.GoMaxProcs)
			rep.Warnings = append(rep.Warnings, pt.Warning)
			fmt.Fprintln(os.Stderr, "tarabench: warning:", pt.Warning)
		}
		if p == 1 {
			serialKB = kb.Bytes()
			serialWall = wall
			rep.Windows = fw.Windows()
			rep.Rules = fw.RuleDict().Len()
			rep.KBBytes = kb.Len()
		} else {
			pt.ByteIdentical = bytes.Equal(kb.Bytes(), serialKB)
			if !pt.ByteIdentical {
				rep.AllByteIdentical = false
			}
		}
		if wall > 0 {
			pt.Speedup = float64(serialWall) / float64(wall)
		}
		ctr := fw.BuildCounters()
		ms := func(name string) float64 { return float64(ctr[name]) / 1e6 }
		pt.MineMillis = ms("build_mine_ns")
		pt.RuleGenMillis = ms("build_rulegen_ns")
		pt.EPSMillis = ms("build_eps_ns")
		pt.ArchiveMillis = ms("build_archive_ns")
		pt.CommitMillis = ms("build_commit_ns")
		pt.QueueWaitMillis = ms("build_queue_wait_ns")
		rep.Points = append(rep.Points, pt)
		if p == 4 && wall > 0 {
			rep.SpeedupAt4 = float64(serialWall) / float64(wall)
		}
	}
	return rep, nil
}

// RunBuild prints the offline-build experiment as a table (the "build"
// experiment of cmd/tarabench).
func RunBuild(w io.Writer, scale float64) error {
	rep, err := BuildBench(scale, 0)
	if err != nil {
		return err
	}
	return PrintBuild(w, rep)
}

// PrintBuild renders an already-measured build report.
func PrintBuild(w io.Writer, rep *BuildBenchReport) error {
	fmt.Fprintf(w, "Offline build — %s, %d transactions, %d windows, %d rules (GOMAXPROCS %d)\n",
		rep.Dataset, rep.Transactions, rep.Windows, rep.Rules, rep.GoMaxProcs)
	fmt.Fprintf(w, "%-12s %10s %9s %10s %10s %10s %10s %10s %10s %10s\n",
		"parallelism", "wall-ms", "speedup", "mine-ms", "rulegen", "eps-ms", "archive", "commit", "queuewait", "identical")
	for _, p := range rep.Points {
		fmt.Fprintf(w, "%-12d %10.1f %8.2fx %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f %10v\n",
			p.Parallelism, p.WallMillis, p.Speedup, p.MineMillis, p.RuleGenMillis,
			p.EPSMillis, p.ArchiveMillis, p.CommitMillis, p.QueueWaitMillis, p.ByteIdentical)
	}
	fmt.Fprintf(w, "determinism: all parallel knowledge bases byte-identical to serial: %v\n", rep.AllByteIdentical)
	if rep.SpeedupAt4 > 0 {
		fmt.Fprintf(w, "speedup at parallelism 4: %.2fx\n", rep.SpeedupAt4)
	}
	for _, warn := range rep.Warnings {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
	return nil
}
