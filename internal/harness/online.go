package harness

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"testing"
	"time"

	"tara/internal/itemset"
	"tara/internal/obs"
	"tara/internal/rules"
	"tara/internal/server"
	"tara/internal/tara"
	"tara/internal/txdb"
)

// The online-query experiment measures the PR's serving-path work on one
// large EPS slice: the retained pre-optimization linear scan (ScanRules /
// ScanCount), the accelerated cold lookup (skip structure + suffix counts),
// and the warm cached answer (stable-region memoization). Each mode answers
// the same request points; per-query latencies are reported as p50/p95.

// onlineLocations is the slice size at scale 1 — the acceptance target of
// the optimization (a 10k-location slice).
const onlineLocations = 10000

// onlinePoints is the number of random request points timed per mode.
const onlinePoints = 300

// OnlineQuantiles summarizes one mode's per-query latencies.
type OnlineQuantiles struct {
	P50Micros  float64 `json:"p50Micros"`
	P95Micros  float64 `json:"p95Micros"`
	MeanMicros float64 `json:"meanMicros"`
}

// OnlineMode reports the mine and count latencies of one serving mode.
type OnlineMode struct {
	Mine  OnlineQuantiles `json:"mine"`
	Count OnlineQuantiles `json:"count"`
}

// OnlineReport is the JSON document the online experiment emits
// (BENCH_online_query.json).
type OnlineReport struct {
	Locations int `json:"locations"`
	Rules     int `json:"rules"`
	Points    int `json:"points"`
	// ScanBaseline is the pre-optimization linear scan over every location.
	ScanBaseline OnlineMode `json:"scanBaseline"`
	// ColdAccelerated is the skip-structure lookup with a cold cache.
	ColdAccelerated OnlineMode `json:"coldAccelerated"`
	// WarmCached replays the same points against the primed query cache.
	WarmCached OnlineMode `json:"warmCached"`
	// Speedups are scanBaseline p50 over the named mode's p50.
	SpeedupColdMine  float64 `json:"speedupColdMineP50"`
	SpeedupColdCount float64 `json:"speedupColdCountP50"`
	SpeedupWarmMine  float64 `json:"speedupWarmMineP50"`
	SpeedupWarmCount float64 `json:"speedupWarmCountP50"`
	// Cache is the query-cache counter snapshot after the warm pass.
	Cache tara.CacheStats `json:"cache"`
	// WarmMineAllocs measures the warm Mine hit (shared cached views) and
	// WarmMineAppendAllocs the zero-copy MineAppend path into a caller-owned
	// reused buffer — the per-op allocation story of the warm serving path.
	WarmMineAllocs       OnlineAllocStats `json:"warmMineAllocs"`
	WarmMineAppendAllocs OnlineAllocStats `json:"warmMineAppendAllocs"`
	// EncodedWarmMine times the full daemon path (ServeHTTP over /mine) with
	// the encoded-response byte cache warm: pre-encoded bytes straight to the
	// wire. EncodedWarmMineAllocs is the same path's per-op allocations, and
	// ResponseCache the byte-cache counters after the encoded pass.
	EncodedWarmMine       OnlineQuantiles       `json:"encodedWarmMine"`
	EncodedWarmMineAllocs OnlineAllocStats      `json:"encodedWarmMineAllocs"`
	ResponseCache         server.ByteCacheStats `json:"responseCache"`
	// EncodedColdMine times the same /mine path with the byte cache disabled,
	// so every request pays the streaming encode; EncodedGzipMine serves the
	// warm gzip-precompressed variant (Accept-Encoding: gzip); and
	// EncodedPagedMine serves a warm limit=100 page.
	EncodedColdMine  OnlineQuantiles `json:"encodedColdMine"`
	EncodedGzipMine  OnlineQuantiles `json:"encodedGzipMine"`
	EncodedPagedMine OnlineQuantiles `json:"encodedPagedMine"`
	// Mean response-body sizes (bytes) over the request points per content
	// coding — the wire saving the precompressed variants buy.
	IdentityBodyBytesMean float64 `json:"identityBodyBytesMean"`
	GzipBodyBytesMean     float64 `json:"gzipBodyBytesMean"`
}

// OnlineAllocStats reports the allocation behavior of one warm-path
// operation, measured with testing.Benchmark over the request points.
type OnlineAllocStats struct {
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
}

// measureAllocs runs fn under testing.Benchmark with allocation reporting.
func measureAllocs(fn func() error) (OnlineAllocStats, error) {
	var err error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if e := fn(); e != nil {
				err = e
				b.FailNow()
			}
		}
	})
	if err != nil {
		return OnlineAllocStats{}, err
	}
	return OnlineAllocStats{
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}, nil
}

// OnlineFramework builds a one-window framework whose slice has ~locations
// distinct parametric locations, ingested through the premined AppendRules
// path (mining real transactions to that density would dominate the
// experiment without exercising the serving path any harder).
func OnlineFramework(locations int, seed int64) (*tara.Framework, error) {
	return onlineFrameworkCfg(locations, seed, tara.Config{})
}

func onlineFrameworkCfg(locations int, seed int64, cfg tara.Config) (*tara.Framework, error) {
	const n = 1 << 20 // window cardinality; supports ~locations distinct counts
	r := rand.New(rand.NewSource(seed))
	rs := make([]rules.WithStats, locations)
	for i := range rs {
		xy := uint32(1 + r.Intn(n))
		x := xy + uint32(r.Intn(n-int(xy)+1))
		rs[i] = rules.WithStats{
			Rule: rules.Rule{
				Ant:  itemset.New(uint32(10 + 2*i)),
				Cons: itemset.New(uint32(11 + 2*i)),
			},
			Stats: rules.Stats{CountXY: xy, CountX: x, CountY: x, N: n},
		}
	}
	f := tara.New(txdb.NewDict(), cfg)
	w := txdb.Window{
		Index:  0,
		Period: txdb.Period{Start: 0, End: 999},
		Tx:     make([]txdb.Transaction, n),
	}
	if err := f.AppendRules(w, rs); err != nil {
		return nil, err
	}
	return f, nil
}

// onlinePointsFor draws the request points; mid-to-high thresholds keep
// answer sets a realistic fraction of the slice.
func onlinePointsFor(count int, seed int64) [][2]float64 {
	r := rand.New(rand.NewSource(seed))
	pts := make([][2]float64, count)
	for i := range pts {
		pts[i] = [2]float64{r.Float64(), r.Float64()}
	}
	return pts
}

// quantiles reduces per-query durations to the report's summary.
func quantiles(ds []time.Duration) OnlineQuantiles {
	if len(ds) == 0 {
		return OnlineQuantiles{}
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i].Nanoseconds()) / 1e3
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return OnlineQuantiles{
		P50Micros:  at(0.50),
		P95Micros:  at(0.95),
		MeanMicros: float64(sum.Nanoseconds()) / float64(len(ds)) / 1e3,
	}
}

// timeEach records fn's latency per point, keeping the best of two runs so
// one GC pause (materialization allocates the whole answer) does not smear a
// mode's quantiles.
func timeEach(pts [][2]float64, fn func(ms, mc float64) error) ([]time.Duration, error) {
	out := make([]time.Duration, len(pts))
	for i, p := range pts {
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			if err := fn(p[0], p[1]); err != nil {
				return nil, err
			}
			if d := time.Since(start); rep == 0 || d < out[i] {
				out[i] = d
			}
		}
	}
	return out, nil
}

// OnlineBench runs the online-query experiment and returns its report.
func OnlineBench(scale float64) (*OnlineReport, error) {
	if scale <= 0 {
		scale = 1
	}
	locations := int(float64(onlineLocations) * scale)
	if locations < 100 {
		locations = 100
	}
	f, err := OnlineFramework(locations, 41)
	if err != nil {
		return nil, err
	}
	slice, err := f.Index().Slice(0)
	if err != nil {
		return nil, err
	}
	pts := onlinePointsFor(onlinePoints, 42)
	rep := &OnlineReport{
		Locations: slice.NumLocations(),
		Rules:     locations,
		Points:    len(pts),
	}

	// materialize reproduces the Mine answer-building step (rule dictionary
	// and archive lookups), so both pre-optimization and cold modes measure
	// the full serving path, not just the id collection.
	dict, arch := f.RuleDict(), f.Archive()
	materialize := func(ids []rules.ID) error {
		views := make([]tara.RuleView, len(ids))
		for i, id := range ids {
			r, ok := dict.Rule(id)
			if !ok {
				return fmt.Errorf("harness: unknown rule id %d", id)
			}
			st, ok := arch.StatsAt(id, 0)
			if !ok {
				return fmt.Errorf("harness: rule %d missing archived stats", id)
			}
			views[i] = tara.RuleView{ID: id, Rule: r, Stats: st}
		}
		return nil
	}

	// Pre-optimization baseline: full-slice reference scan + materialization
	// (what Mine did before the skip structure and the cache existed).
	scanMine, err := timeEach(pts, func(ms, mc float64) error {
		return materialize(slice.ScanRules(ms, mc))
	})
	if err != nil {
		return nil, err
	}
	scanCount, err := timeEach(pts, func(ms, mc float64) error {
		slice.ScanCount(ms, mc)
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.ScanBaseline = OnlineMode{Mine: quantiles(scanMine), Count: quantiles(scanCount)}

	// Cold accelerated: skip-structure lookups, no memoization involved.
	coldMine, err := timeEach(pts, func(ms, mc float64) error {
		return materialize(slice.Rules(ms, mc))
	})
	if err != nil {
		return nil, err
	}
	coldCount, err := timeEach(pts, func(ms, mc float64) error {
		slice.Count(ms, mc)
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.ColdAccelerated = OnlineMode{Mine: quantiles(coldMine), Count: quantiles(coldCount)}

	// Warm cached: prime every point through the framework, then replay.
	for _, p := range pts {
		if _, err := f.Mine(0, p[0], p[1]); err != nil {
			return nil, err
		}
		if _, err := f.Count(0, p[0], p[1]); err != nil {
			return nil, err
		}
	}
	warmMine, err := timeEach(pts, func(ms, mc float64) error {
		_, err := f.Mine(0, ms, mc)
		return err
	})
	if err != nil {
		return nil, err
	}
	warmCount, err := timeEach(pts, func(ms, mc float64) error {
		_, err := f.Count(0, ms, mc)
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.WarmCached = OnlineMode{Mine: quantiles(warmMine), Count: quantiles(warmCount)}

	div := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	rep.SpeedupColdMine = div(rep.ScanBaseline.Mine.P50Micros, rep.ColdAccelerated.Mine.P50Micros)
	rep.SpeedupColdCount = div(rep.ScanBaseline.Count.P50Micros, rep.ColdAccelerated.Count.P50Micros)
	rep.SpeedupWarmMine = div(rep.ScanBaseline.Mine.P50Micros, rep.WarmCached.Mine.P50Micros)
	rep.SpeedupWarmCount = div(rep.ScanBaseline.Count.P50Micros, rep.WarmCached.Count.P50Micros)
	rep.Cache = f.CacheStats()

	// Warm-path allocations: the shared-view Mine hit and the zero-copy
	// MineAppend into one reused caller buffer, cycling over the primed
	// points so per-op numbers average the workload, not a single answer.
	i := 0
	rep.WarmMineAllocs, err = measureAllocs(func() error {
		p := pts[i%len(pts)]
		i++
		_, err := f.Mine(0, p[0], p[1])
		return err
	})
	if err != nil {
		return nil, err
	}
	var dst []tara.RuleView
	i = 0
	rep.WarmMineAppendAllocs, err = measureAllocs(func() error {
		p := pts[i%len(pts)]
		i++
		var err error
		dst, err = f.MineAppend(dst[:0], 0, p[0], p[1])
		return err
	})
	if err != nil {
		return nil, err
	}

	// Encoded-server mode: the daemon's full /mine path over ServeHTTP with
	// the byte cache warm, so the measurement covers routing, tracing and the
	// cached-bytes write — everything but the TCP socket.
	if err := onlineEncodedPass(f, pts, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// discardResponseWriter swallows the response body so the encoded pass times
// the daemon's work, not a recorder's buffering.
type discardResponseWriter struct{ h http.Header }

func (d *discardResponseWriter) Header() http.Header {
	if d.h == nil {
		d.h = http.Header{}
	}
	return d.h
}
func (d *discardResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardResponseWriter) WriteHeader(int)             {}

// countingResponseWriter tallies body bytes while discarding them, for the
// per-coding body-size means.
type countingResponseWriter struct {
	h http.Header
	n int64
}

func (c *countingResponseWriter) Header() http.Header {
	if c.h == nil {
		c.h = http.Header{}
	}
	return c.h
}
func (c *countingResponseWriter) Write(b []byte) (int, error) {
	c.n += int64(len(b))
	return len(b), nil
}
func (c *countingResponseWriter) WriteHeader(int) {}

// timeServe measures best-of-two ServeHTTP latency per request.
func timeServe(h http.Handler, reqs []*http.Request) []time.Duration {
	w := &discardResponseWriter{}
	out := make([]time.Duration, len(reqs))
	for i, r := range reqs {
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			h.ServeHTTP(w, r)
			if d := time.Since(start); rep == 0 || d < out[i] {
				out[i] = d
			}
		}
	}
	return out
}

// onlineEncodedPass builds a Server over f, primes the encoded-response byte
// cache with every request point, then measures warm ServeHTTP latency and
// allocations and snapshots the byte-cache counters into rep.
func onlineEncodedPass(f *tara.Framework, pts [][2]float64, rep *OnlineReport) error {
	srv, err := server.New(server.Config{
		Framework: f,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		return err
	}
	h := srv.Handler()
	reqs := make([]*http.Request, len(pts))
	for i, p := range pts {
		reqs[i], err = http.NewRequest(http.MethodGet,
			fmt.Sprintf("/mine?w=0&supp=%v&conf=%v", p[0], p[1]), nil)
		if err != nil {
			return err
		}
	}
	w := &discardResponseWriter{}
	for _, r := range reqs {
		h.ServeHTTP(w, r)
	}
	rep.EncodedWarmMine = quantiles(timeServe(h, reqs))
	i := 0
	rep.EncodedWarmMineAllocs, err = measureAllocs(func() error {
		h.ServeHTTP(w, reqs[i%len(reqs)])
		i++
		return nil
	})
	if err != nil {
		return err
	}

	// Gzip-coded warm pass: the same points asked with Accept-Encoding: gzip,
	// which derives the precompressed variants on first ask and then serves
	// them from the cache. The first sweep also tallies per-coding body sizes.
	gzReqs := make([]*http.Request, len(reqs))
	for i, r := range reqs {
		gr := r.Clone(r.Context())
		gr.Header.Set("Accept-Encoding", "gzip")
		gzReqs[i] = gr
	}
	var idBytes, gzBytes int64
	for i, r := range reqs {
		cw := &countingResponseWriter{}
		h.ServeHTTP(cw, r)
		idBytes += cw.n
		cw = &countingResponseWriter{}
		h.ServeHTTP(cw, gzReqs[i])
		gzBytes += cw.n
	}
	rep.IdentityBodyBytesMean = float64(idBytes) / float64(len(reqs))
	rep.GzipBodyBytesMean = float64(gzBytes) / float64(len(reqs))
	rep.EncodedGzipMine = quantiles(timeServe(h, gzReqs))

	// Paged warm pass: first 100 rows of each answer.
	pagedReqs := make([]*http.Request, len(pts))
	for i, p := range pts {
		pagedReqs[i], err = http.NewRequest(http.MethodGet,
			fmt.Sprintf("/mine?w=0&supp=%v&conf=%v&limit=100", p[0], p[1]), nil)
		if err != nil {
			return err
		}
	}
	for _, r := range pagedReqs {
		h.ServeHTTP(w, r)
	}
	rep.EncodedPagedMine = quantiles(timeServe(h, pagedReqs))

	rep.ResponseCache = srv.ByteCacheStats()
	if rep.ResponseCache.Hits == 0 {
		return fmt.Errorf("harness: encoded pass never hit the byte cache: %+v", rep.ResponseCache)
	}

	// Cold encoded pass: a server with the byte cache disabled, so every
	// request pays the streaming encode over the warm query cache — the
	// encode tail in isolation.
	coldSrv, err := server.New(server.Config{
		Framework:     f,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
		ByteCacheSize: -1,
	})
	if err != nil {
		return err
	}
	rep.EncodedColdMine = quantiles(timeServe(coldSrv.Handler(), reqs))
	return nil
}

// OnlineStageBreakdown is the traced online experiment: mean per-stage Mine
// time (µs) over the request points, cold (cache disabled, every query walks
// the EPS slice) and warm (query cache primed, answers replayed).
type OnlineStageBreakdown struct {
	Points int                `json:"points"`
	Cold   map[string]float64 `json:"coldMeanMicros"`
	Warm   map[string]float64 `json:"warmMeanMicros"`
}

// OnlineTrace runs traced Mine calls over the online experiment's request
// points and reports where the time goes per stage. The cold pass uses a
// framework with the query cache disabled so every point pays the full
// canonical-cut + EPS-lookup path; the warm pass primes a cached framework
// first and then replays.
func OnlineTrace(scale float64) (*OnlineStageBreakdown, error) {
	if scale <= 0 {
		scale = 1
	}
	locations := int(float64(onlineLocations) * scale)
	if locations < 100 {
		locations = 100
	}
	pts := onlinePointsFor(onlinePoints, 42)

	tracePass := func(f *tara.Framework) (map[string]float64, error) {
		var nanos [obs.NumStages]int64
		for _, p := range pts {
			tr := obs.NewTrace("")
			if _, err := f.MineTraced(tr, 0, p[0], p[1]); err != nil {
				return nil, err
			}
			for _, s := range obs.Stages() {
				nanos[s] += int64(tr.StageDur(s))
			}
		}
		out := map[string]float64{}
		for _, s := range obs.Stages() {
			if nanos[s] > 0 {
				out[s.String()] = float64(nanos[s]) / 1e3 / float64(len(pts))
			}
		}
		return out, nil
	}

	coldFw, err := onlineFrameworkCfg(locations, 41, tara.Config{QueryCacheSize: -1})
	if err != nil {
		return nil, err
	}
	cold, err := tracePass(coldFw)
	if err != nil {
		return nil, err
	}

	warmFw, err := onlineFrameworkCfg(locations, 41, tara.Config{})
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		if _, err := warmFw.Mine(0, p[0], p[1]); err != nil {
			return nil, err
		}
	}
	warm, err := tracePass(warmFw)
	if err != nil {
		return nil, err
	}
	return &OnlineStageBreakdown{Points: len(pts), Cold: cold, Warm: warm}, nil
}

// PrintOnlineTrace renders the traced breakdown, one row per stage in
// pipeline order.
func PrintOnlineTrace(w io.Writer, rep *OnlineStageBreakdown) error {
	fmt.Fprintf(w, "Per-stage Mine breakdown — mean µs over %d points\n", rep.Points)
	fmt.Fprintf(w, "%-15s %12s %12s\n", "stage", "cold", "warm")
	var coldTotal, warmTotal float64
	for _, s := range obs.Stages() {
		name := s.String()
		c, cok := rep.Cold[name]
		h, wok := rep.Warm[name]
		if !cok && !wok {
			continue
		}
		fmt.Fprintf(w, "%-15s %12.2f %12.2f\n", name, c, h)
		coldTotal += c
		warmTotal += h
	}
	fmt.Fprintf(w, "%-15s %12.2f %12.2f\n", "total", coldTotal, warmTotal)
	return nil
}

// RunOnline prints the online-query experiment as a paper-style table.
func RunOnline(w io.Writer, scale float64) error {
	rep, err := OnlineBench(scale)
	if err != nil {
		return err
	}
	return PrintOnline(w, rep)
}

// PrintOnline renders an already-measured report (so one run can feed both
// the table and the JSON artifact).
func PrintOnline(w io.Writer, rep *OnlineReport) error {
	fmt.Fprintf(w, "Online query path — %d locations, %d request points per mode\n", rep.Locations, rep.Points)
	fmt.Fprintf(w, "%-18s %12s %12s %12s %12s\n", "mode", "mine-p50µs", "mine-p95µs", "count-p50µs", "count-p95µs")
	row := func(name string, m OnlineMode) {
		fmt.Fprintf(w, "%-18s %12.2f %12.2f %12.2f %12.2f\n",
			name, m.Mine.P50Micros, m.Mine.P95Micros, m.Count.P50Micros, m.Count.P95Micros)
	}
	row("scan-baseline", rep.ScanBaseline)
	row("cold-accelerated", rep.ColdAccelerated)
	row("warm-cached", rep.WarmCached)
	fmt.Fprintf(w, "speedup vs scan p50: cold mine %.1fx, cold count %.1fx, warm mine %.1fx, warm count %.1fx\n",
		rep.SpeedupColdMine, rep.SpeedupColdCount, rep.SpeedupWarmMine, rep.SpeedupWarmCount)
	fmt.Fprintf(w, "cache: %d/%d entries, hit ratio %.3f (%d hits, %d misses)\n",
		rep.Cache.Entries, rep.Cache.Capacity, rep.Cache.HitRatio, rep.Cache.Hits, rep.Cache.Misses)
	fmt.Fprintf(w, "warm allocs/op: mine %d (%d B), mine-append %d (%d B), encoded %d (%d B)\n",
		rep.WarmMineAllocs.AllocsPerOp, rep.WarmMineAllocs.BytesPerOp,
		rep.WarmMineAppendAllocs.AllocsPerOp, rep.WarmMineAppendAllocs.BytesPerOp,
		rep.EncodedWarmMineAllocs.AllocsPerOp, rep.EncodedWarmMineAllocs.BytesPerOp)
	fmt.Fprintf(w, "encoded warm mine: p50 %.2fµs p95 %.2fµs; response byte cache hit ratio %.3f (%d hits / %d requests)\n",
		rep.EncodedWarmMine.P50Micros, rep.EncodedWarmMine.P95Micros,
		rep.ResponseCache.HitRatio, rep.ResponseCache.Hits, rep.ResponseCache.Requests)
	fmt.Fprintf(w, "encoded modes p50µs: cold-stream %.2f, gzip-warm %.2f, paged-warm %.2f\n",
		rep.EncodedColdMine.P50Micros, rep.EncodedGzipMine.P50Micros, rep.EncodedPagedMine.P50Micros)
	fmt.Fprintf(w, "mean body bytes: identity %.0f, gzip %.0f (%.1fx smaller)\n",
		rep.IdentityBodyBytesMean, rep.GzipBodyBytesMean,
		func() float64 {
			if rep.GzipBodyBytesMean == 0 {
				return 0
			}
			return rep.IdentityBodyBytesMean / rep.GzipBodyBytesMean
		}())
	return nil
}
