package harness

import (
	"fmt"
	"io"
	"sort"

	"tara/internal/mining"
	"tara/internal/tara"
	"tara/internal/txdb"
)

// Tab1DB reconstructs the paper's running example (Table 1, Figures 4–5):
// two windows T1 (11 transactions) and T2 (9 transactions) over items
// {a, b, c} whose itemset supports and rule parameters match the published
// values exactly — e.g. R1 (a⇒b) at (0.18, 0.5) in T1 and (0.11, 0.25) in
// T2, and R3/R4 at (0.33, 0.75) in T2. Empty transactions pad the window
// cardinalities, as the paper's fractions (x/11, x/9) require.
func Tab1DB() *txdb.DB {
	db := txdb.NewDB()
	t := int64(0)
	add := func(count int, names ...string) {
		for i := 0; i < count; i++ {
			db.Add(t, names...)
			t++
		}
	}
	// Window T1 = [0,10]: counts a=4 b=5 c=4, ab=2 ac=2 bc=1, no abc.
	add(2, "a", "b")
	add(2, "a", "c")
	add(1, "b", "c")
	add(2, "b")
	add(1, "c")
	add(3) // padding to |T1| = 11
	t = 20
	// Window T2 = [20,28]: counts a=4 b=2 c=4, ab=1 ac=3 bc=1, no abc.
	add(1, "a", "b")
	add(3, "a", "c")
	add(1, "b", "c")
	add(4) // padding to |T2| = 9
	return db
}

// BuildTab1 constructs the TARA framework of the running example with the
// thresholds the paper's figures use (minsupp 0.05, minconf 0.25).
func BuildTab1() (*tara.Framework, error) {
	return tara.Build(Tab1DB(), 20, 0, tara.Config{
		GenMinSupport: 0.05,
		GenMinConf:    0.25,
		MaxItemsetLen: 2,
	})
}

// RunTab1 regenerates Table 1: the pregenerated itemset supports and rule
// parameters of the running example, per window.
func RunTab1(w io.Writer, _ float64) error {
	db := Tab1DB()
	windows, err := db.PartitionByTime(20)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 1 — pregenerated temporal association rules (the paper's running example)")
	fmt.Fprintln(w, "  (a) itemset supports (minsupp = 0.05)")
	fmt.Fprintf(w, "      %-8s", "itemset")
	for i := range windows {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("T%d", i+1))
	}
	fmt.Fprintln(w)
	type row struct {
		name string
		vals []string
	}
	rowsByName := map[string]*row{}
	var order []string
	for i, win := range windows {
		res, err := mining.Eclat{}.Mine(win.Tx, mining.Params{
			MinCount: mining.MinCountFor(0.05, len(win.Tx)),
			MaxLen:   2,
		})
		if err != nil {
			return err
		}
		res.Sort()
		for _, fs := range res.Sets {
			name := ""
			for _, it := range fs.Items {
				name += db.Dict.Name(it)
			}
			r := rowsByName[name]
			if r == nil {
				r = &row{name: name, vals: make([]string, len(windows))}
				rowsByName[name] = r
				order = append(order, name)
			}
			r.vals[i] = fmt.Sprintf("%.2f", float64(fs.Count)/float64(len(win.Tx)))
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if len(order[i]) != len(order[j]) {
			return len(order[i]) < len(order[j])
		}
		return order[i] < order[j]
	})
	for _, name := range order {
		r := rowsByName[name]
		fmt.Fprintf(w, "      %-8s", r.name)
		for _, v := range r.vals {
			if v == "" {
				v = "-"
			}
			fmt.Fprintf(w, " %8s", v)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "  (b) rules (minconf = 0.25): (support, confidence)")
	fw, err := BuildTab1()
	if err != nil {
		return err
	}
	views0, err := fw.Mine(0, 0.05, 0.25)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "      %-12s %14s %14s\n", "rule", "T1", "T2")
	for _, v := range views0 {
		cell2 := "-"
		if st, ok := fw.Archive().StatsAt(v.ID, 1); ok && st.Confidence() >= 0.25 {
			cell2 = fmt.Sprintf("(%.2f, %.2f)", st.Support(), st.Confidence())
		}
		fmt.Fprintf(w, "      %-12s %14s %14s\n",
			v.Rule.Format(fw.ItemDict()),
			fmt.Sprintf("(%.2f, %.2f)", v.Support(), v.Confidence()),
			cell2)
	}
	// Rules present only in T2 (the paper's R6).
	views1, err := fw.Mine(1, 0.05, 0.25)
	if err != nil {
		return err
	}
	for _, v := range views1 {
		if _, ok := fw.Archive().StatsAt(v.ID, 0); ok {
			continue
		}
		fmt.Fprintf(w, "      %-12s %14s %14s\n",
			v.Rule.Format(fw.ItemDict()), "-",
			fmt.Sprintf("(%.2f, %.2f)", v.Support(), v.Confidence()))
	}
	return nil
}
