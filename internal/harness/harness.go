package harness

import (
	"fmt"
	"io"
	"sort"
)

// RunTab3 regenerates Table 3: the statistics of the four benchmark
// datasets at the chosen scale.
func RunTab3(w io.Writer, scale float64) error {
	return runTab3(w, scale, Datasets())
}

func runTab3(w io.Writer, scale float64, specs []DatasetSpec) error {
	fmt.Fprintln(w, "Table 3 — datasets (scaled; see DESIGN.md for the paper's originals)")
	fmt.Fprintf(w, "%-10s %14s %14s %10s %10s\n", "dataset", "transactions", "unique-items", "avg-len", "batches")
	for _, spec := range specs {
		db, err := spec.Build(scale)
		if err != nil {
			return err
		}
		s := db.Stats()
		fmt.Fprintf(w, "%-10s %14d %14d %10.1f %10d\n",
			spec.Name, s.Transactions, s.UniqueItems, s.AvgLen, spec.Batches)
	}
	return nil
}

// RunTab4 regenerates Table 4: the index-construction thresholds per
// dataset, alongside the paper's originals.
func RunTab4(w io.Writer, _ float64) error {
	fmt.Fprintln(w, "Table 4 — thresholds for index construction")
	fmt.Fprintf(w, "%-10s %12s %12s %24s\n", "dataset", "gen-supp", "gen-conf", "paper (supp, conf)")
	paper := map[string]string{
		"retail":  "(0.0002, 0.1)",
		"t5k":     "(0.0012, 0.2)",
		"t2k":     "(0.001, 0.2)",
		"webdocs": "(0.1123, 0.2)",
	}
	for _, spec := range Datasets() {
		fmt.Fprintf(w, "%-10s %12g %12g %24s\n", spec.Name, spec.GenSupp, spec.GenConf, paper[spec.Name])
	}
	return nil
}

// Experiments maps experiment ids to their runners.
var Experiments = map[string]func(io.Writer, float64) error{
	"tab1":      RunTab1,
	"fig6":      RunFig6,
	"fig7":      RunFig7,
	"fig8":      RunFig8,
	"fig9":      RunFig9,
	"fig10":     RunFig10,
	"fig11":     RunFig11,
	"fig12":     RunFig12,
	"tab2":      RunTab2,
	"tab3":      RunTab3,
	"tab4":      RunTab4,
	"rollup":    RunRollUp,
	"online":    RunOnline,
	"build":     RunBuild,
	"coldstart": RunColdStart,
	"load":      RunLoad,
	"traj":      RunTraj,
}

// ExperimentIDs lists the experiment ids in run order.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(Experiments))
	for id := range Experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run dispatches one experiment (or "all") at the given scale.
func Run(exp string, w io.Writer, scale float64) error {
	if scale <= 0 {
		scale = 1
	}
	if exp == "all" {
		for _, id := range ExperimentIDs() {
			if err := Run(id, w, scale); err != nil {
				return fmt.Errorf("harness: %s: %w", id, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	fn, ok := Experiments[exp]
	if !ok {
		return fmt.Errorf("harness: unknown experiment %q (have %v, all)", exp, ExperimentIDs())
	}
	return fn(w, scale)
}
