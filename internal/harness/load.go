package harness

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tara/internal/itemset"
	"tara/internal/rules"
	"tara/internal/server"
	"tara/internal/tara"
	"tara/internal/txdb"
)

// The load experiment is the SLO evidence layer's harness: an OPEN-LOOP
// generator (arrivals follow a Poisson process at a fixed offered rate,
// independent of completions) driving the daemon's full handler chain —
// routing, tracing, admission, timeout wrapper, byte cache — to and past
// saturation. Closed-loop clients hide overload by slowing down with the
// server (coordinated omission); an open-loop client keeps offering work at
// the configured rate, so shed (429), timeout (503) and queue-wait numbers
// reflect what real independent clients would see.
//
// The run is phased: a calibration pass (closed loop, discarded) measures the
// box's capacity, then a fresh server serves a cold phase and a warm phase at
// ~half capacity and an overload phase at ~2x capacity. Request parameters
// and windows are drawn zipfian — a hot head that the query/byte caches can
// absorb plus a long tail that always misses — and the query-class mix spans
// byte-cacheable classes (mine, count, recommend) and the uncacheable
// trajectory class.

// loadClass is one query class in the generated mix.
type loadClass struct {
	name   string  // class label in the report (the endpoint's op name)
	weight float64 // fraction of arrivals
	url    func(g *loadGen) string
}

// loadClasses is the generated workload mix: mostly mine (the paper's
// primary interactive query), count and recommend (also byte-cacheable),
// plus trajectory (multi-window, never byte-cached) to keep uncacheable
// pressure on the admission path.
var loadClasses = []loadClass{
	{name: "mine", weight: 0.50, url: func(g *loadGen) string {
		p := g.point()
		return fmt.Sprintf("/mine?w=%d&supp=%v&conf=%v", g.window(), p[0], p[1])
	}},
	{name: "count", weight: 0.25, url: func(g *loadGen) string {
		p := g.point()
		return fmt.Sprintf("/count?w=%d&supp=%v&conf=%v", g.window(), p[0], p[1])
	}},
	{name: "recommend", weight: 0.15, url: func(g *loadGen) string {
		p := g.point()
		return fmt.Sprintf("/recommend?w=%d&supp=%v&conf=%v", g.window(), p[0], p[1])
	}},
	{name: "traj", weight: 0.10, url: func(g *loadGen) string {
		p := g.point()
		w := g.window()
		in := ""
		for i := 0; i < g.windows; i++ {
			if i == w {
				continue
			}
			if in != "" {
				in += ","
			}
			in += fmt.Sprint(i)
		}
		return fmt.Sprintf("/trajectory?w=%d&supp=%v&conf=%v&in=%s", w, p[0], p[1], in)
	}},
}

// loadGen draws request URLs for one phase: zipfian over a fixed pool of
// parameter points (hot head for the caches, long tail of misses) and
// zipfian over windows. Not safe for concurrent use; the arrival loop owns
// it.
type loadGen struct {
	r       *rand.Rand
	points  [][2]float64
	pzipf   *rand.Zipf
	windows int
	wzipf   *rand.Zipf
}

func newLoadGen(points [][2]float64, windows int, seed int64) *loadGen {
	r := rand.New(rand.NewSource(seed))
	return &loadGen{
		r:       r,
		points:  points,
		pzipf:   rand.NewZipf(r, 1.2, 1, uint64(len(points)-1)),
		windows: windows,
		wzipf:   rand.NewZipf(r, 1.3, 1, uint64(windows-1)),
	}
}

func (g *loadGen) point() [2]float64 { return g.points[g.pzipf.Uint64()] }
func (g *loadGen) window() int       { return int(g.wzipf.Uint64()) }

// class picks a query class by mix weight.
func (g *loadGen) class() int {
	x := g.r.Float64()
	for i, c := range loadClasses {
		if x < c.weight {
			return i
		}
		x -= c.weight
	}
	return 0
}

// LoadOptions configures the load experiment. Zero values select defaults
// sized for a checked-in benchmark run; tests shrink them.
type LoadOptions struct {
	// PhaseDuration is how long each measured phase offers load. Default 3s.
	PhaseDuration time.Duration
	// Rates, when non-empty, are explicit offered rates (QPS) replacing the
	// calibrated below/above-saturation pair. Each rate becomes one warm
	// phase (the cold phase always runs at the first rate).
	Rates []float64
	// MaxInFlight caps the server's concurrently executing queries. Default
	// GOMAXPROCS: queries are CPU-bound, so one slot per core is the point
	// where admission control binds before the run queue does — a larger
	// limiter never fills (the CPU saturates first) and the overload phase
	// would show scheduler collapse instead of clean sheds.
	MaxInFlight int
	// QueueWait is the server's admission queue bound. Default 100ms —
	// several times the heaviest query's service time, so below saturation
	// queued requests are admitted (the queue drains faster than patience
	// runs out) while above saturation the growing queue pushes waits past
	// the bound and requests shed.
	QueueWait time.Duration
	// Timeout is the server's per-request timeout. Default 2s.
	Timeout time.Duration
	// Profile captures a CPU profile during the overload phase and reports
	// hot-function attribution.
	Profile bool
	// Seed fixes the workload; 0 selects the default.
	Seed int64
	// Admission selects the experiment's scope: "" or "adaptive" (the
	// default) appends the adaptive-admission section — a second cold server
	// under the AIMD controller, driven through a load ramp and a steady
	// above-saturation phase — while "static" runs only the legacy
	// fixed-cap phases.
	Admission string
}

func (o *LoadOptions) defaults() {
	if o.PhaseDuration <= 0 {
		o.PhaseDuration = 3 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if o.QueueWait <= 0 {
		o.QueueWait = 100 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
}

// LoadClassStats is one query class's outcome within one phase. Latency
// quantiles cover ADMITTED requests only (status < 400): shed requests are
// answered in microseconds and would drag the percentiles toward zero
// exactly when the server is refusing work.
type LoadClassStats struct {
	Class    string `json:"class"`
	Requests int    `json:"requests"`
	OK       int    `json:"ok"`
	Shed     int    `json:"shed"`
	Timeouts int    `json:"timeouts"`
	Errors   int    `json:"errors"`
	// Latency of admitted requests, microseconds.
	P50Micros  float64 `json:"p50Micros"`
	P95Micros  float64 `json:"p95Micros"`
	P99Micros  float64 `json:"p99Micros"`
	P999Micros float64 `json:"p999Micros"`
	MeanMicros float64 `json:"meanMicros"`
	MaxMicros  float64 `json:"maxMicros"`
}

// LoadCacheDelta is a cache's activity within one phase.
type LoadCacheDelta struct {
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRatio float64 `json:"hitRatio"`
}

// LoadPhase is one measured phase of the load run.
type LoadPhase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// OfferedQPS is the configured arrival rate; GeneratedQPS is the rate
	// the arrival loop actually achieved (it can lag on a saturated box);
	// CompletedQPS counts every response, AchievedQPS only status<400.
	OfferedQPS   float64 `json:"offeredQPS"`
	GeneratedQPS float64 `json:"generatedQPS"`
	CompletedQPS float64 `json:"completedQPS"`
	AchievedQPS  float64 `json:"achievedQPS"`
	Requests     int     `json:"requests"`
	// ShedRate and TimeoutRate are fractions of all responses in the phase.
	ShedRate    float64 `json:"shedRate"`
	TimeoutRate float64 `json:"timeoutRate"`
	// ClientDropped counts arrivals the generator discarded because the
	// client-side outstanding-request cap was full — offered load the
	// server never saw (reported, never silently elided).
	ClientDropped int              `json:"clientDropped"`
	Classes       []LoadClassStats `json:"classes"`
	QueryCache    LoadCacheDelta   `json:"queryCache"`
	ByteCache     LoadCacheDelta   `json:"byteCache"`
}

// LoadReport is the JSON document the load experiment emits
// (BENCH_load.json).
type LoadReport struct {
	Locations   int     `json:"locationsPerWindow"`
	Windows     int     `json:"windows"`
	MaxInFlight int     `json:"maxInFlight"`
	QueueWaitMS float64 `json:"queueWaitMillis"`
	TimeoutMS   float64 `json:"timeoutMillis"`
	// CapacityQPS is the closed-loop calibrated throughput the phase rates
	// are derived from (0 when explicit rates were given).
	CapacityQPS float64     `json:"capacityQPS"`
	Phases      []LoadPhase `json:"phases"`
	// Adaptive is the adaptive-admission section: the same workload against
	// a cold server under the AIMD controller (nil when Admission:"static"
	// skipped it).
	Adaptive *AdaptiveLoadReport `json:"adaptive,omitempty"`
	// Profile is the overload-phase CPU profile's hot-function attribution
	// (nil unless profiling was requested).
	Profile *ProfileReport `json:"profile,omitempty"`
}

// LimitSample is one point of the adaptive controller's limit trajectory,
// sampled on a fixed cadence across the ramp and steady phases.
type LimitSample struct {
	OffsetMillis float64 `json:"offsetMillis"`
	OfferedQPS   float64 `json:"offeredQPS"`
	Limit        int     `json:"limit"`
	InFlight     int     `json:"inFlight"`
}

// ClassP99 compares one query class's admitted p99 between the tuned static
// cap and the adaptive controller at the same above-saturation offered rate.
type ClassP99 struct {
	Class          string  `json:"class"`
	StaticMicros   float64 `json:"staticP99Micros"`
	AdaptiveMicros float64 `json:"adaptiveP99Micros"`
}

// AdaptiveLoadReport is the adaptive-admission evidence: the controller's
// limit trajectory while the offered load ramps across the capacity knee,
// the limit it converged to, and the admitted tail latency next to the
// tuned static cap's at the same overload rate.
type AdaptiveLoadReport struct {
	MinLimit int `json:"minLimit"`
	MaxLimit int `json:"maxLimit"`
	// ConvergedLimit is the median limit over the steady (post-ramp) phase's
	// trajectory samples.
	ConvergedLimit int    `json:"convergedLimit"`
	Increases      uint64 `json:"increases"`
	Decreases      uint64 `json:"decreases"`
	// Trajectory is the sampled (offered rate, limit, in-flight) path; the
	// ramp covers its first two thirds, the steady phase the rest.
	Trajectory []LimitSample `json:"trajectory"`
	// Phases are adaptive-ramp and adaptive-above, in the same shape as the
	// top-level static phases (per-class sheds included).
	Phases []LoadPhase `json:"phases"`
	// P99VsStatic pairs each class's admitted p99 in adaptive-above with the
	// static warm-above phase's, per class.
	P99VsStatic []ClassP99 `json:"p99VsStatic"`
}

// loadOutcome is one completed request.
type loadOutcome struct {
	class  int
	status int
	dur    time.Duration
}

// loadCollector accumulates outcomes; one mutex is fine at harness rates
// (a few tens of thousands of appends per second).
type loadCollector struct {
	mu  sync.Mutex
	out []loadOutcome
}

func (c *loadCollector) add(o loadOutcome) {
	c.mu.Lock()
	c.out = append(c.out, o)
	c.mu.Unlock()
}

// statusRecorder keeps the status code and discards the body.
type statusRecorder struct {
	h      http.Header
	status int
}

func (s *statusRecorder) Header() http.Header {
	if s.h == nil {
		s.h = http.Header{}
	}
	return s.h
}
func (s *statusRecorder) Write(b []byte) (int, error) { return len(b), nil }
func (s *statusRecorder) WriteHeader(code int)        { s.status = code }

// loadFramework builds a small multi-window knowledge base through the
// premined AppendRules path: the same rule identities in every window with
// window-varying counts, so trajectory queries have real cross-window work.
func loadFramework(locations, windows int, seed int64) (*tara.Framework, error) {
	const n = 1 << 16 // window cardinality
	f := tara.New(txdb.NewDict(), tara.Config{})
	for wi := 0; wi < windows; wi++ {
		r := rand.New(rand.NewSource(seed + int64(wi)))
		rs := make([]rules.WithStats, locations)
		for i := range rs {
			xy := uint32(1 + r.Intn(n))
			x := xy + uint32(r.Intn(n-int(xy)+1))
			rs[i] = rules.WithStats{
				Rule: rules.Rule{
					Ant:  itemset.New(uint32(10 + 2*i)),
					Cons: itemset.New(uint32(11 + 2*i)),
				},
				Stats: rules.Stats{CountXY: xy, CountX: x, CountY: x, N: n},
			}
		}
		w := txdb.Window{
			Index:  wi,
			Period: txdb.Period{Start: int64(wi * 1000), End: int64(wi*1000 + 999)},
			Tx:     make([]txdb.Transaction, n),
		}
		if err := f.AppendRules(w, rs); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func newLoadServer(f *tara.Framework, opts LoadOptions) (*server.Server, error) {
	return server.New(server.Config{
		Framework:      f,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
		RequestTimeout: opts.Timeout,
		MaxInFlight:    opts.MaxInFlight,
		QueueWait:      opts.QueueWait,
	})
}

// calibrate measures closed-loop WARM capacity: a first closed-loop window
// primes the caches (discarded), a second measures. MaxInFlight workers each
// keep one request outstanding, which keeps the limiter exactly full without
// shedding. The server it warms is thrown away — the measured phases start
// from their own cold server.
func calibrate(h http.Handler, g *loadGen, workers int, d time.Duration) float64 {
	// Pre-draw a URL pool so workers don't share the generator.
	urls := make([]string, 256)
	for i := range urls {
		urls[i] = loadClasses[g.class()].url(g)
	}
	pass := func(d time.Duration) float64 {
		var done atomic.Int64
		deadline := time.Now().Add(d)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rec := &statusRecorder{}
				for i := w; time.Now().Before(deadline); i++ {
					req, err := http.NewRequest(http.MethodGet, urls[i%len(urls)], nil)
					if err != nil {
						return
					}
					rec.status = 0
					h.ServeHTTP(rec, req)
					done.Add(1)
				}
			}(w)
		}
		wg.Wait()
		return float64(done.Load()) / d.Seconds()
	}
	pass(d) // warm the caches; a cold measurement would understate capacity
	return pass(d)
}

// runPhase offers Poisson arrivals at rate QPS for d, each dispatched to its
// own goroutine (open loop: the arrival clock never waits for completions).
// A client-side outstanding cap bounds goroutine growth past saturation;
// arrivals dropped by the cap are counted, not hidden.
func runPhase(h http.Handler, g *loadGen, name string, rate float64, d time.Duration,
	qc func() tara.CacheStats, bc func() server.ByteCacheStats) LoadPhase {
	return runPhaseRate(h, g, name, func(time.Duration) float64 { return rate }, rate, d, qc, bc)
}

// runPhaseRate is runPhase with a time-varying offered rate: rateAt maps
// elapsed phase time to the instantaneous arrival rate, which is what the
// adaptive experiment's ramp uses to sweep the offered load across the
// capacity knee within one phase. offered is the rate recorded in the report
// (the peak for a ramp).
func runPhaseRate(h http.Handler, g *loadGen, name string, rateAt func(time.Duration) float64,
	offered float64, d time.Duration, qc func() tara.CacheStats, bc func() server.ByteCacheStats) LoadPhase {
	const maxOutstanding = 2048
	qc0, bc0 := qc(), bc()
	col := &loadCollector{}
	sem := make(chan struct{}, maxOutstanding)
	var wg sync.WaitGroup
	var generated, dropped int
	start := time.Now()
	deadline := start.Add(d)
	next := start
	for next.Before(deadline) {
		if now := time.Now(); next.After(now) {
			time.Sleep(next.Sub(now))
		}
		// Fire every arrival that has come due; on a loaded box the sleep
		// can overshoot several inter-arrival gaps, and firing the backlog
		// in a burst is exactly what an open-loop client does.
		for now := time.Now(); !next.After(now) && next.Before(deadline); {
			ci := g.class()
			url := loadClasses[ci].url(g)
			generated++
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func(ci int, url string) {
					defer wg.Done()
					defer func() { <-sem }()
					req, err := http.NewRequest(http.MethodGet, url, nil)
					if err != nil {
						return
					}
					rec := &statusRecorder{}
					t0 := time.Now()
					h.ServeHTTP(rec, req)
					dur := time.Since(t0)
					status := rec.status
					if status == 0 {
						status = http.StatusOK
					}
					col.add(loadOutcome{class: ci, status: status, dur: dur})
				}(ci, url)
			default:
				dropped++
			}
			next = next.Add(time.Duration(g.r.ExpFloat64() / rateAt(next.Sub(start)) * float64(time.Second)))
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	qc1, bc1 := qc(), bc()

	ph := LoadPhase{
		Name:          name,
		Seconds:       elapsed.Seconds(),
		OfferedQPS:    offered,
		GeneratedQPS:  float64(generated) / d.Seconds(),
		Requests:      len(col.out),
		ClientDropped: dropped,
		QueryCache:    cacheDelta(qc1.Hits-qc0.Hits, qc1.Misses-qc0.Misses),
		ByteCache:     cacheDelta(bc1.Hits-bc0.Hits, bc1.Misses-bc0.Misses),
	}

	var ok, shed, timeouts int
	perClass := make([][]time.Duration, len(loadClasses))
	stats := make([]LoadClassStats, len(loadClasses))
	for i, c := range loadClasses {
		stats[i].Class = c.name
	}
	for _, o := range col.out {
		st := &stats[o.class]
		st.Requests++
		switch {
		case o.status == http.StatusTooManyRequests:
			st.Shed++
			shed++
		case o.status == http.StatusServiceUnavailable:
			st.Timeouts++
			timeouts++
		case o.status >= 400:
			st.Errors++
		default:
			st.OK++
			ok++
			perClass[o.class] = append(perClass[o.class], o.dur)
		}
	}
	for i := range stats {
		fillLatency(&stats[i], perClass[i])
	}
	ph.Classes = stats
	ph.CompletedQPS = float64(len(col.out)) / elapsed.Seconds()
	ph.AchievedQPS = float64(ok) / elapsed.Seconds()
	if n := len(col.out); n > 0 {
		ph.ShedRate = float64(shed) / float64(n)
		ph.TimeoutRate = float64(timeouts) / float64(n)
	}
	return ph
}

func cacheDelta(hits, misses uint64) LoadCacheDelta {
	d := LoadCacheDelta{Hits: hits, Misses: misses}
	if t := hits + misses; t > 0 {
		d.HitRatio = float64(hits) / float64(t)
	}
	return d
}

// fillLatency sorts the admitted durations and fills the quantile fields.
func fillLatency(st *LoadClassStats, ds []time.Duration) {
	if len(ds) == 0 {
		return
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(ds)-1))
		return float64(ds[i]) / 1e3
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	st.P50Micros = at(0.50)
	st.P95Micros = at(0.95)
	st.P99Micros = at(0.99)
	st.P999Micros = at(0.999)
	st.MeanMicros = float64(sum) / float64(len(ds)) / 1e3
	st.MaxMicros = float64(ds[len(ds)-1]) / 1e3
}

// LoadBench runs the load experiment and returns its report.
func LoadBench(scale float64, opts LoadOptions) (*LoadReport, error) {
	opts.defaults()
	if scale <= 0 {
		scale = 1
	}
	// Sized so the uncacheable tail queries cost ~10ms+ of CPU: heavy
	// enough that the runtime preempts a request mid-execution under load,
	// which is what lets an admission limiter actually fill on a small box
	// (shorter handlers run to completion and serialize through the
	// scheduler instead).
	locations := int(10000 * scale)
	if locations < 500 {
		locations = 500
	}
	const windows = 4

	points := onlinePointsFor(64, opts.Seed)
	rep := &LoadReport{
		Locations:   locations,
		Windows:     windows,
		MaxInFlight: opts.MaxInFlight,
		QueueWaitMS: float64(opts.QueueWait) / float64(time.Millisecond),
		TimeoutMS:   float64(opts.Timeout) / float64(time.Millisecond),
	}

	rates := opts.Rates
	if len(rates) == 0 {
		// Calibrate on a sacrificial server (calibration warms every cache),
		// then pick one rate clearly below and one clearly above capacity.
		calFw, err := loadFramework(locations, windows, opts.Seed)
		if err != nil {
			return nil, err
		}
		calSrv, err := newLoadServer(calFw, opts)
		if err != nil {
			return nil, err
		}
		calDur := opts.PhaseDuration / 3
		if calDur < 200*time.Millisecond {
			calDur = 200 * time.Millisecond
		}
		cap := calibrate(calSrv.Handler(), newLoadGen(points, windows, opts.Seed), opts.MaxInFlight, calDur)
		if cap < 10 {
			cap = 10
		}
		rep.CapacityQPS = cap
		rates = []float64{0.5 * cap, 2 * cap}
	}

	// The measured server starts cold: fresh framework, empty caches.
	f, err := loadFramework(locations, windows, opts.Seed)
	if err != nil {
		return nil, err
	}
	srv, err := newLoadServer(f, opts)
	if err != nil {
		return nil, err
	}
	h := srv.Handler()
	qc, bc := f.CacheStats, srv.ByteCacheStats
	g := newLoadGen(points, windows, opts.Seed+1)

	// Phase 1: cold caches at the below-saturation rate.
	rep.Phases = append(rep.Phases, runPhase(h, g, "cold", rates[0], opts.PhaseDuration, qc, bc))
	// Phase 2..n: warm phases, one per rate (the same server, caches primed
	// by everything before).
	for i, rate := range rates {
		name := fmt.Sprintf("warm-rate%d", i+1)
		switch {
		case len(rates) == 2 && i == 0:
			name = "warm-below"
		case len(rates) == 2 && i == 1:
			name = "warm-above"
		}
		if opts.Profile && i == len(rates)-1 {
			// Profile the last (peak) phase: StartCPUProfile can fail when
			// another profile is live; the report records that instead of
			// failing the run.
			var buf bytes.Buffer
			if err := pprof.StartCPUProfile(&buf); err != nil {
				rep.Profile = &ProfileReport{Err: err.Error()}
			} else {
				ph := runPhase(h, g, name, rate, opts.PhaseDuration, qc, bc)
				pprof.StopCPUProfile()
				rep.Phases = append(rep.Phases, ph)
				rep.Profile = ParseProfile(buf.Bytes(), 10)
				continue
			}
		}
		rep.Phases = append(rep.Phases, runPhase(h, g, name, rate, opts.PhaseDuration, qc, bc))
	}

	if opts.Admission != "static" {
		ad, err := runAdaptive(points, locations, windows, rates[0], rates[len(rates)-1],
			&rep.Phases[len(rep.Phases)-1], opts)
		if err != nil {
			return nil, err
		}
		rep.Adaptive = ad
	}
	return rep, nil
}

// runAdaptive reruns the workload against a second cold server in adaptive
// admission mode: a ramp phase sweeps the offered rate from below to above
// the capacity knee (twice the usual phase length, so the controller sees
// both regimes) while a sampler records the limit trajectory, then a steady
// phase holds the static run's above-saturation rate so the admitted tail is
// directly comparable to the tuned static cap's warm-above phase. The
// controller starts from its cold default (MinLimit), with headroom well
// above the tuned static cap so convergence is earned, not clamped.
func runAdaptive(points [][2]float64, locations, windows int, low, high float64,
	staticAbove *LoadPhase, opts LoadOptions) (*AdaptiveLoadReport, error) {
	f, err := loadFramework(locations, windows, opts.Seed)
	if err != nil {
		return nil, err
	}
	maxLimit := 4 * opts.MaxInFlight
	if maxLimit < 8 {
		maxLimit = 8
	}
	srv, err := server.New(server.Config{
		Framework:      f,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
		RequestTimeout: opts.Timeout,
		MaxInFlight:    maxLimit,
		AdmissionMode:  "adaptive",
		QueueWait:      opts.QueueWait,
	})
	if err != nil {
		return nil, err
	}
	h := srv.Handler()
	qc, bc := f.CacheStats, srv.ByteCacheStats
	g := newLoadGen(points, windows, opts.Seed+2)

	rampDur := 2 * opts.PhaseDuration
	rateAt := func(t time.Duration) float64 {
		frac := float64(t) / float64(rampDur)
		if frac > 1 {
			frac = 1
		}
		return low + (high-low)*frac
	}

	a0 := srv.Admission()
	ad := &AdaptiveLoadReport{MinLimit: a0.MinLimit, MaxLimit: a0.MaxLimit}

	// The trajectory sampler spans both phases; its offsets are from the
	// ramp's start, so rateAt doubles as the schedule of offered rates.
	interval := opts.PhaseDuration / 20
	if interval > 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	t0 := time.Now()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				off := now.Sub(t0)
				snap := srv.Admission()
				ad.Trajectory = append(ad.Trajectory, LimitSample{
					OffsetMillis: float64(off) / float64(time.Millisecond),
					OfferedQPS:   rateAt(off),
					Limit:        snap.Limit,
					InFlight:     snap.InFlight,
				})
			}
		}
	}()
	ad.Phases = append(ad.Phases, runPhaseRate(h, g, "adaptive-ramp", rateAt, high, rampDur, qc, bc))
	ad.Phases = append(ad.Phases, runPhase(h, g, "adaptive-above", high, opts.PhaseDuration, qc, bc))
	close(stop)
	<-done

	final := srv.Admission()
	ad.Increases, ad.Decreases = final.Increases, final.Decreases
	ad.ConvergedLimit = convergedLimit(ad.Trajectory, float64(rampDur)/float64(time.Millisecond))
	above := ad.Phases[len(ad.Phases)-1]
	for _, sc := range staticAbove.Classes {
		for _, ac := range above.Classes {
			if ac.Class == sc.Class && (sc.OK > 0 || ac.OK > 0) {
				ad.P99VsStatic = append(ad.P99VsStatic, ClassP99{
					Class:          sc.Class,
					StaticMicros:   sc.P99Micros,
					AdaptiveMicros: ac.P99Micros,
				})
			}
		}
	}
	return ad, nil
}

// convergedLimit is the median limit over the post-ramp (steady-phase)
// trajectory samples; a run too short to have any falls back to the last
// quarter of all samples.
func convergedLimit(traj []LimitSample, rampMillis float64) int {
	var tail []int
	for _, s := range traj {
		if s.OffsetMillis >= rampMillis {
			tail = append(tail, s.Limit)
		}
	}
	if len(tail) == 0 && len(traj) > 0 {
		for _, s := range traj[len(traj)-(len(traj)+3)/4:] {
			tail = append(tail, s.Limit)
		}
	}
	if len(tail) == 0 {
		return 0
	}
	sort.Ints(tail)
	return tail[len(tail)/2]
}

// RunLoad prints the load experiment with default options.
func RunLoad(w io.Writer, scale float64) error {
	rep, err := LoadBench(scale, LoadOptions{})
	if err != nil {
		return err
	}
	return PrintLoad(w, rep)
}

// PrintLoad renders an already-measured load report.
func PrintLoad(w io.Writer, rep *LoadReport) error {
	fmt.Fprintf(w, "Open-loop load — %d locations x %d windows, maxInFlight=%d, queueWait=%gms, timeout=%gms\n",
		rep.Locations, rep.Windows, rep.MaxInFlight, rep.QueueWaitMS, rep.TimeoutMS)
	if rep.CapacityQPS > 0 {
		fmt.Fprintf(w, "calibrated capacity: %.0f QPS (closed loop)\n", rep.CapacityQPS)
	}
	for _, ph := range rep.Phases {
		printLoadPhase(w, ph)
	}
	if ad := rep.Adaptive; ad != nil {
		fmt.Fprintf(w, "\nadaptive admission — limit bounds [%d,%d], converged %d, %d raises / %d backoffs, %d trajectory samples\n",
			ad.MinLimit, ad.MaxLimit, ad.ConvergedLimit, ad.Increases, ad.Decreases, len(ad.Trajectory))
		for _, ph := range ad.Phases {
			printLoadPhase(w, ph)
		}
		for _, c := range ad.P99VsStatic {
			fmt.Fprintf(w, "  p99 %-10s static %10.1fµs   adaptive %10.1fµs\n",
				c.Class, c.StaticMicros, c.AdaptiveMicros)
		}
	}
	if rep.Profile != nil {
		fmt.Fprintln(w)
		PrintProfile(w, rep.Profile)
	}
	return nil
}

func printLoadPhase(w io.Writer, ph LoadPhase) {
	fmt.Fprintf(w, "\nphase %-14s offered %.0f QPS, achieved %.0f QPS (completed %.0f), shed %.1f%%, timeout %.1f%%, clientDropped %d\n",
		ph.Name, ph.OfferedQPS, ph.AchievedQPS, ph.CompletedQPS, 100*ph.ShedRate, 100*ph.TimeoutRate, ph.ClientDropped)
	fmt.Fprintf(w, "  caches: query %.3f hit ratio (%d/%d), byte %.3f (%d/%d)\n",
		ph.QueryCache.HitRatio, ph.QueryCache.Hits, ph.QueryCache.Hits+ph.QueryCache.Misses,
		ph.ByteCache.HitRatio, ph.ByteCache.Hits, ph.ByteCache.Hits+ph.ByteCache.Misses)
	fmt.Fprintf(w, "  %-10s %9s %8s %6s %8s %10s %10s %10s %10s\n",
		"class", "requests", "ok", "shed", "timeout", "p50µs", "p95µs", "p99µs", "p99.9µs")
	for _, c := range ph.Classes {
		if c.Requests == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-10s %9d %8d %6d %8d %10.1f %10.1f %10.1f %10.1f\n",
			c.Class, c.Requests, c.OK, c.Shed, c.Timeouts, c.P50Micros, c.P95Micros, c.P99Micros, c.P999Micros)
	}
}
