package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV output for the online-time experiments, so the figure series can be
// plotted directly. Each row is (experiment, dataset, parameter, system,
// nanoseconds).

// csvCollector accumulates timing rows and flushes them as CSV.
type csvCollector struct {
	exp  string
	rows [][]string
}

func newCSVCollector(exp string) *csvCollector {
	return &csvCollector{exp: exp, rows: [][]string{{"experiment", "dataset", "param", "system", "ns"}}}
}

func (c *csvCollector) add(dataset, param string, times map[string]time.Duration) {
	for _, sys := range systemOrder {
		d, ok := times[sys]
		if !ok {
			continue
		}
		c.rows = append(c.rows, []string{c.exp, dataset, param, sys, strconv.FormatInt(d.Nanoseconds(), 10)})
	}
}

func (c *csvCollector) flush(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(c.rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// RunCSV runs one of the online-time experiments (fig7, fig8, fig10, fig11)
// and writes its series as CSV instead of the text table.
func RunCSV(exp string, w io.Writer, scale float64) error {
	if scale <= 0 {
		scale = 1
	}
	type point struct {
		param      string
		supp, conf float64
		second     bool // Q2 experiments vary the second setting
		supp2      float64
		conf2      float64
	}
	sweep := func(spec DatasetSpec) []point {
		var pts []point
		switch exp {
		case "fig7":
			for _, s := range spec.SuppSweep {
				pts = append(pts, point{param: fmt.Sprintf("supp=%g", s), supp: s, conf: spec.FixedConf})
			}
		case "fig8":
			for _, c := range spec.ConfSweep {
				pts = append(pts, point{param: fmt.Sprintf("conf=%g", c), supp: spec.FixedSupp, conf: c})
			}
		case "fig10":
			for _, s2 := range spec.SuppSweep {
				pts = append(pts, point{
					param: fmt.Sprintf("supp2=%g", s2), supp: spec.FixedSupp, conf: spec.FixedConf,
					second: true, supp2: s2, conf2: spec.FixedConf,
				})
			}
		case "fig11":
			for _, c2 := range spec.ConfSweep {
				pts = append(pts, point{
					param: fmt.Sprintf("conf2=%g", c2), supp: spec.FixedSupp, conf: spec.FixedConf,
					second: true, supp2: spec.FixedSupp, conf2: c2,
				})
			}
		}
		return pts
	}
	col := newCSVCollector(exp)
	for _, spec := range Datasets() {
		pts := sweep(spec)
		if len(pts) == 0 {
			return fmt.Errorf("harness: experiment %q has no CSV form (only fig7, fig8, fig10, fig11)", exp)
		}
		sys, err := BuildSystems(spec, scale)
		if err != nil {
			return err
		}
		for _, p := range pts {
			var times map[string]time.Duration
			if p.second {
				times, err = q2Times(sys, p.supp, p.conf, p.supp2, p.conf2)
			} else {
				times, err = q1Times(sys, p.supp, p.conf)
			}
			if err != nil {
				return err
			}
			col.add(spec.Name, p.param, times)
		}
	}
	return col.flush(w)
}
