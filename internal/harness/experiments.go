package harness

import (
	"fmt"
	"io"
	"time"

	"tara/internal/baselines"
	"tara/internal/itemset"
	"tara/internal/mining"
	"tara/internal/tara"
	"tara/internal/txdb"
)

// systemOrder fixes the column order of the online-time tables.
var systemOrder = []string{"TARA", "TARA-S", "TARA-R", "HMine", "PARAS", "DCTAR"}

func printTimeHeader(w io.Writer, param string) {
	fmt.Fprintf(w, "%-10s %-12s", "dataset", param)
	for _, s := range systemOrder {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
}

func printTimeRow(w io.Writer, dataset, param string, times map[string]time.Duration) {
	fmt.Fprintf(w, "%-10s %-12s", dataset, param)
	for _, s := range systemOrder {
		d, ok := times[s]
		if !ok {
			fmt.Fprintf(w, " %12s", "-")
			continue
		}
		fmt.Fprintf(w, " %12s", d.Round(10*time.Nanosecond))
	}
	fmt.Fprintln(w)
}

// q1Times runs the Figure 7/8 workload (Q1 trajectory + Q3 recommendation)
// at one parameter point for every system.
func q1Times(sys *Systems, minSupp, minConf float64) (map[string]time.Duration, error) {
	base, others := sys.BaseWindow()
	times := map[string]time.Duration{}
	var err error

	if times["TARA"], err = timeIt(func() error {
		_, e := sys.TARA.RuleTrajectories(base, minSupp, minConf, others)
		return e
	}); err != nil {
		return nil, err
	}
	if times["TARA-S"], err = timeIt(func() error {
		_, e := sys.TARASTrajectories(base, minSupp, minConf, others)
		return e
	}); err != nil {
		return nil, err
	}
	if times["TARA-R"], err = timeIt(func() error {
		_, e := sys.TARA.Recommend(base, minSupp, minConf)
		return e
	}); err != nil {
		return nil, err
	}
	if times["HMine"], err = timeIt(func() error {
		_, e := sys.HMine.Trajectories(base, minSupp, minConf, others)
		return e
	}); err != nil {
		return nil, err
	}
	if times["PARAS"], err = timeIt(func() error {
		_, e := sys.PARAS.Trajectories(base, minSupp, minConf, others)
		return e
	}); err != nil {
		return nil, err
	}
	if times["DCTAR"], err = timeIt(func() error {
		_, e := sys.DCTAR.Trajectories(base, minSupp, minConf, others)
		return e
	}); err != nil {
		return nil, err
	}
	return times, nil
}

// RunFig7 regenerates Figure 7: online Q1/Q3 time varying minimum support
// at each dataset's fixed confidence.
func RunFig7(w io.Writer, scale float64) error {
	return runFig7(w, scale, Datasets())
}

func runFig7(w io.Writer, scale float64, specs []DatasetSpec) error {
	fmt.Fprintln(w, "Figure 7 — rule trajectory & parameter recommendation: varying support")
	printTimeHeader(w, "minsupp")
	for _, spec := range specs {
		sys, err := BuildSystems(spec, scale)
		if err != nil {
			return err
		}
		for _, supp := range spec.SuppSweep {
			times, err := q1Times(sys, supp, spec.FixedConf)
			if err != nil {
				return err
			}
			printTimeRow(w, spec.Name, fmt.Sprintf("supp=%g", supp), times)
		}
	}
	return nil
}

// RunFig8 regenerates Figure 8: the same workload varying minimum
// confidence at fixed support.
func RunFig8(w io.Writer, scale float64) error {
	return runFig8(w, scale, Datasets())
}

func runFig8(w io.Writer, scale float64, specs []DatasetSpec) error {
	fmt.Fprintln(w, "Figure 8 — rule trajectory & parameter recommendation: varying confidence")
	printTimeHeader(w, "minconf")
	for _, spec := range specs {
		sys, err := BuildSystems(spec, scale)
		if err != nil {
			return err
		}
		for _, conf := range spec.ConfSweep {
			times, err := q1Times(sys, spec.FixedSupp, conf)
			if err != nil {
				return err
			}
			printTimeRow(w, spec.Name, fmt.Sprintf("conf=%g", conf), times)
		}
	}
	return nil
}

// RunFig9 regenerates Figure 9: offline preprocessing time per window, with
// TARA's task breakdown against H-Mine's itemset pregeneration.
func RunFig9(w io.Writer, scale float64) error {
	return runFig9(w, scale, Datasets())
}

func runFig9(w io.Writer, scale float64, specs []DatasetSpec) error {
	fmt.Fprintln(w, "Figure 9 — offline preprocessing time per window")
	fmt.Fprintf(w, "%-10s %-7s %12s %12s %12s %12s %12s %12s %10s\n",
		"dataset", "window", "hmine", "tara-total", "itemsets", "rulegen", "archive", "epsindex", "overhead")
	for _, spec := range specs {
		// Build sequentially and with the H-Mine miner as TARA's itemset
		// engine, so the breakdown isolates TARA's *additional* tasks (rule
		// generation, archive, EPS index) exactly as the paper's Figure 9
		// does — not the difference between mining algorithms.
		fw, err := buildTaraWithMiner(spec, scale, mining.HMine{})
		if err != nil {
			return err
		}
		db, err := spec.Build(scale)
		if err != nil {
			return err
		}
		windows, err := db.PartitionByCount(spec.Batches)
		if err != nil {
			return err
		}
		hmine, err := buildHMineBaseline(windows, spec)
		if err != nil {
			return err
		}
		hm := hmine.PrepTimes()
		var hTotal, tTotal time.Duration
		for i, tm := range fw.Timings() {
			overhead := float64(tm.Total()-hm[i]) / float64(hm[i]) * 100
			fmt.Fprintf(w, "%-10s %-7d %12s %12s %12s %12s %12s %12s %9.1f%%\n",
				spec.Name, i,
				hm[i].Round(time.Microsecond),
				tm.Total().Round(time.Microsecond),
				tm.Mine.Round(time.Microsecond),
				tm.RuleGen.Round(time.Microsecond),
				tm.ArchiveTime.Round(time.Microsecond),
				tm.IndexTime.Round(time.Microsecond),
				overhead)
			hTotal += hm[i]
			tTotal += tm.Total()
		}
		fmt.Fprintf(w, "%-10s %-7s %12s %12s  (TARA/H-Mine = %.2fx)\n",
			spec.Name, "total", hTotal.Round(time.Microsecond), tTotal.Round(time.Microsecond),
			float64(tTotal)/float64(hTotal))
		rep := fw.BuildReport()
		fmt.Fprintf(w, "%-10s telemetry: %d itemsets, %d EPS locations, archive %dB/%dB (%.2fx compression)\n",
			spec.Name, rep.Itemsets, rep.Locations,
			rep.Storage.Bytes, rep.Storage.UncompressedBytes, rep.Storage.CompressionRatio)
		for _, tm := range rep.Timings {
			fmt.Fprintf(w, "%-10s   window %-3d grid=%dx%d locations=%-6d archiveB=%-7d frequent=[%s]\n",
				spec.Name, tm.Window, tm.SuppCuts, tm.ConfCuts, tm.NumLocations,
				tm.ArchiveBytes, tara.PerLevelString(tm.LevelFrequent))
		}
	}
	return nil
}

// q2Times runs the Figure 10/11 workload at one parameter point.
func q2Times(sys *Systems, suppA, confA, suppB, confB float64) (map[string]time.Duration, error) {
	wins := sys.CompareWindows()
	times := map[string]time.Duration{}
	var err error
	if times["TARA"], err = timeIt(func() error {
		_, e := sys.TARA.Compare(wins, suppA, confA, suppB, confB)
		return e
	}); err != nil {
		return nil, err
	}
	if times["HMine"], err = timeIt(func() error {
		_, e := sys.HMine.Compare(wins, suppA, confA, suppB, confB)
		return e
	}); err != nil {
		return nil, err
	}
	if times["PARAS"], err = timeIt(func() error {
		_, e := sys.PARAS.Compare(wins, suppA, confA, suppB, confB)
		return e
	}); err != nil {
		return nil, err
	}
	if times["DCTAR"], err = timeIt(func() error {
		_, e := sys.DCTAR.Compare(wins, suppA, confA, suppB, confB)
		return e
	}); err != nil {
		return nil, err
	}
	return times, nil
}

// RunFig10 regenerates Figure 10: ruleset comparison time varying the second
// setting's support.
func RunFig10(w io.Writer, scale float64) error {
	return runFig10(w, scale, Datasets())
}

func runFig10(w io.Writer, scale float64, specs []DatasetSpec) error {
	fmt.Fprintln(w, "Figure 10 — ruleset comparison: varying 2nd support")
	printTimeHeader(w, "minsupp2")
	for _, spec := range specs {
		sys, err := BuildSystems(spec, scale)
		if err != nil {
			return err
		}
		for _, supp2 := range spec.SuppSweep {
			times, err := q2Times(sys, spec.FixedSupp, spec.FixedConf, supp2, spec.FixedConf)
			if err != nil {
				return err
			}
			printTimeRow(w, spec.Name, fmt.Sprintf("supp2=%g", supp2), times)
		}
	}
	return nil
}

// RunFig11 regenerates Figure 11: ruleset comparison time varying the second
// setting's confidence.
func RunFig11(w io.Writer, scale float64) error {
	return runFig11(w, scale, Datasets())
}

func runFig11(w io.Writer, scale float64, specs []DatasetSpec) error {
	fmt.Fprintln(w, "Figure 11 — ruleset comparison: varying 2nd confidence")
	printTimeHeader(w, "minconf2")
	for _, spec := range specs {
		sys, err := BuildSystems(spec, scale)
		if err != nil {
			return err
		}
		for _, conf2 := range spec.ConfSweep {
			times, err := q2Times(sys, spec.FixedSupp, spec.FixedConf, spec.FixedSupp, conf2)
			if err != nil {
				return err
			}
			printTimeRow(w, spec.Name, fmt.Sprintf("conf2=%g", conf2), times)
		}
	}
	return nil
}

// RunFig12 regenerates Figure 12: the sizes of the pregenerated structures —
// H-Mine's itemset index, the TAR Archive, and what uncompressed per-rule
// parameter storage would occupy.
func RunFig12(w io.Writer, scale float64) error {
	return runFig12(w, scale, Datasets())
}

func runFig12(w io.Writer, scale float64, specs []DatasetSpec) error {
	fmt.Fprintln(w, "Figure 12 — size of the pregenerated information")
	fmt.Fprintf(w, "%-10s %14s %14s %14s %10s %10s\n",
		"dataset", "hmine-index", "tar-archive", "uncompressed", "rules", "itemsets")
	for _, spec := range specs {
		sys, err := BuildSystems(spec, scale)
		if err != nil {
			return err
		}
		arch := sys.TARA.Archive()
		fmt.Fprintf(w, "%-10s %14d %14d %14d %10d %10d\n",
			spec.Name,
			sys.HMine.IndexBytes(),
			arch.SizeBytes(),
			arch.UncompressedBytes(),
			arch.NumEntries(),
			sys.HMine.NumItemsets())
	}
	return nil
}

// RunRollUp validates the roll-up approximation bound experiment: TARA's
// coarse-period answers are compared against exact mining of the whole
// period, and every rule's support underestimate must stay within its
// reported bound.
func RunRollUp(w io.Writer, scale float64) error {
	return runRollUp(w, scale, Datasets())
}

func runRollUp(w io.Writer, scale float64, specs []DatasetSpec) error {
	fmt.Fprintln(w, "Roll-up — approximation bound validation")
	fmt.Fprintf(w, "%-10s %8s %8s %14s %14s %8s\n",
		"dataset", "rules", "checked", "max-underest", "max-bound", "ok")
	if len(specs) > 2 {
		specs = specs[:2] // retail and t5k suffice; others identical in kind
	}
	for _, spec := range specs {
		sys, err := BuildSystems(spec, scale)
		if err != nil {
			return err
		}
		from, to := 0, len(sys.Windows)-1
		querySupp := 2 * spec.GenSupp
		out, err := sys.TARA.MineRollUp(from, to, querySupp, spec.GenConf)
		if err != nil {
			return err
		}
		var maxUnder, maxBound float64
		ok := true
		checked := 0
		for _, r := range out {
			if checked >= 200 {
				break
			}
			checked++
			var xy uint32
			union := r.Rule.Items()
			for _, tx := range sys.DB.Tx {
				if itemset.Subset(union, tx.Items) {
					xy++
				}
			}
			trueSupp := float64(xy) / float64(sys.DB.Len())
			under := trueSupp - r.Stats.Support()
			if under > maxUnder {
				maxUnder = under
			}
			if r.MaxSupportError > maxBound {
				maxBound = r.MaxSupportError
			}
			if under > r.MaxSupportError+1e-12 {
				ok = false
			}
		}
		fmt.Fprintf(w, "%-10s %8d %8d %14.6f %14.6f %8v\n",
			spec.Name, len(out), checked, maxUnder, maxBound, ok)
		if !ok {
			return fmt.Errorf("harness: roll-up bound violated on %s", spec.Name)
		}
	}
	return nil
}

// buildTaraWithMiner builds a fresh framework sequentially with an explicit
// itemset miner.
func buildTaraWithMiner(spec DatasetSpec, scale float64, m mining.Miner) (*tara.Framework, error) {
	db, err := spec.Build(scale)
	if err != nil {
		return nil, err
	}
	return tara.Build(db, 0, spec.Batches, tara.Config{
		GenMinSupport: spec.GenSupp,
		GenMinConf:    spec.GenConf,
		MaxItemsetLen: spec.MaxLen,
		Miner:         m,
	})
}

// buildHMineBaseline wraps baselines.BuildHMine with the spec's thresholds.
func buildHMineBaseline(windows []txdb.Window, spec DatasetSpec) (*baselines.HMineSystem, error) {
	return baselines.BuildHMine(windows, spec.GenSupp, spec.MaxLen)
}
