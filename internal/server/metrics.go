package server

import (
	"expvar"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tara/internal/obs"
	"tara/internal/tara"
)

// Per-endpoint request metrics: lock-free counters plus power-of-two bucketed
// latency histograms (obs.Hist) from which /metrics derives p50/p95/p99, and
// per-stage histograms aggregated from request traces. All fields are atomics
// so observation never contends with request handling; snapshots taken during
// traffic are approximate but internally safe.

type endpointStats struct {
	// class is the query class served at this endpoint (the textual-syntax
	// op name, e.g. "about" for /content); set at registration, read-only.
	class    string
	requests atomic.Uint64
	errors   atomic.Uint64
	// writeFailures counts responses whose body encode or wire write failed
	// after the status line was committed — the client saw a truncated
	// body. These are invisible to the status-code error counter (the
	// status was already 200), so they get their own series.
	writeFailures atomic.Uint64
	// inFlight gauges requests currently inside the endpoint's handler
	// (including any time spent queued for an in-flight slot).
	inFlight atomic.Int64
	// shed counts requests this endpoint answered 429 because no in-flight
	// slot freed up in time; timeouts counts requests the timeout wrapper
	// cut off with 503. Both are incremented strictly AFTER the endpoint's
	// requests counter (the middleware bumps requests on entry), and
	// snapshots read them BEFORE requests, so shed <= requests and
	// timeouts <= requests hold in every observable snapshot.
	shed     atomic.Uint64
	timeouts atomic.Uint64
	latency  obs.Hist
	// queueWait is the time from request arrival to the query starting to
	// decode — admission queueing plus router/middleware overhead. Shed
	// requests never observe it (they were not admitted).
	queueWait obs.Hist
}

// countWrite folds a response-write error into the endpoint's
// truncated-write counter; nil errors and a nil receiver (handlers without
// an endpoint slot) are no-ops.
func (st *endpointStats) countWrite(err error) {
	if err != nil && st != nil {
		st.writeFailures.Add(1)
	}
}

// registry holds every endpoint's stats. The endpoint set is fixed at
// construction, so the map is read-only afterwards and needs no lock.
type registry struct {
	start     time.Time
	shed      atomic.Uint64
	endpoints map[string]*endpointStats
	// stages aggregates per-stage durations across all traced requests; index
	// by obs.Stage.
	stages [obs.NumStages]obs.Hist
	// slow retains the slowest request traces, served at /debug/slow.
	slow *obs.SlowRing
	// cacheStats, when set, contributes the framework's query-cache counters
	// to every snapshot (and thus to both /metrics and /debug/vars).
	cacheStats func() tara.CacheStats
	// byteStats, when set, contributes the encoded-response byte cache's
	// counters the same way.
	byteStats func() ByteCacheStats
	// kbResidency, when set, reports the archive's byte footprint and
	// whether its payloads are still mmap-aliased (versus promoted to the
	// heap) — the residency half of the kb load-mode story.
	kbResidency func() (bytes int, mapped bool)
	// kbLoadMode and kbLoadMillis describe how the knowledge base reached
	// memory at startup; set once in New, read-only afterwards.
	kbLoadMode   string
	kbLoadMillis int64
	// admission, when set, contributes the admission layer's snapshot
	// (mode, limit in force, per-QoS-class counters) to /metrics.
	admission func() AdmissionSnapshot
	// trajStats, when set, contributes the columnar trajectory snapshot's
	// state (generation, dimensions, resident bytes, rebuild count).
	trajStats func() tara.TrajStats
}

func newRegistry(slowTraces int) *registry {
	return &registry{
		start:     time.Now(),
		endpoints: map[string]*endpointStats{},
		slow:      obs.NewSlowRing(slowTraces),
	}
}

// endpoint registers (or returns) the stats slot for name, serving query
// class class. Only called while building the mux, before any traffic.
func (r *registry) endpoint(name, class string) *endpointStats {
	st, ok := r.endpoints[name]
	if !ok {
		st = &endpointStats{class: class}
		r.endpoints[name] = st
	}
	return st
}

// recordTrace folds a finished request trace into the per-stage histograms
// and offers it to the slow-trace ring. Stages the request never entered
// (zero duration) are not observed, so stage counts reflect executions, not
// requests.
func (r *registry) recordTrace(endpoint, class string, status int, start time.Time, tr *obs.Trace) {
	if tr == nil {
		return
	}
	for _, s := range obs.Stages() {
		if d := tr.StageDur(s); d > 0 {
			r.stages[s].Observe(d)
		}
	}
	r.slow.Offer(&obs.SlowTrace{
		ID:          tr.ID(),
		Endpoint:    endpoint,
		Class:       class,
		Status:      status,
		Start:       start,
		TotalMicros: float64(tr.Total()) / float64(time.Microsecond),
		Stages:      tr.Stages(),
	})
}

// LatencySnapshot reports the latency distribution of one endpoint.
type LatencySnapshot struct {
	Count      uint64  `json:"count"`
	MeanMicros float64 `json:"meanMicros"`
	P50Micros  uint64  `json:"p50Micros"`
	P95Micros  uint64  `json:"p95Micros"`
	P99Micros  uint64  `json:"p99Micros"`
}

func latencySnapshot(h *obs.Hist) LatencySnapshot {
	return LatencySnapshot{
		Count:      h.Count(),
		MeanMicros: h.MeanMicros(),
		P50Micros:  h.Quantile(0.50),
		P95Micros:  h.Quantile(0.95),
		P99Micros:  h.Quantile(0.99),
	}
}

// EndpointSnapshot reports one endpoint's counters and latency quantiles.
type EndpointSnapshot struct {
	// Class is the query class the endpoint serves (e.g. "about" for the
	// /content endpoint).
	Class         string `json:"class"`
	Requests      uint64 `json:"requests"`
	Errors        uint64 `json:"errors"`
	WriteFailures uint64 `json:"writeFailures"`
	// InFlight gauges requests currently executing (or queued for an
	// in-flight slot) at this endpoint.
	InFlight int64 `json:"inFlight"`
	// Shed counts requests answered 429 by the admission limiter; Timeouts
	// counts requests cut off with 503 by the per-request timeout.
	Shed     uint64          `json:"shed"`
	Timeouts uint64          `json:"timeouts"`
	Latency  LatencySnapshot `json:"latency"`
	// QueueWait is the admission-queueing delay distribution of admitted
	// requests (arrival to query decode).
	QueueWait LatencySnapshot `json:"queueWait"`
}

// MetricsSnapshot is the /metrics response body.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Goroutines    int     `json:"goroutines"`
	// KBLoadMode is how the knowledge base reached memory at startup:
	// "heap" (legacy deserialization or fresh build), "mmap", "readerat"
	// or "bytes" (mapped container without a live mapping).
	KBLoadMode string `json:"kbLoadMode"`
	// KBLoadMillis is the startup load (or build) duration in milliseconds.
	KBLoadMillis int64 `json:"kbLoadMillis"`
	// KBArchiveBytes is the TAR Archive's encoded footprint;
	// KBArchiveMapped reports whether those bytes are still mmap-aliased
	// (true until a write promotes them to the heap).
	KBArchiveBytes  int    `json:"kbArchiveBytes"`
	KBArchiveMapped bool   `json:"kbArchiveMapped"`
	Shed            uint64 `json:"shed"`
	// Admission is the in-flight admission layer's view: the mode in force,
	// the current (possibly controller-moved) limit, and in adaptive mode
	// the AIMD decision counters plus per-QoS-class limit/shed/borrow
	// counters.
	Admission AdmissionSnapshot `json:"admission"`
	// Runtime is the Go runtime's resource view: heap, GC cycles, and the
	// GC-pause and scheduler-latency distributions.
	Runtime       obs.RuntimeSnapshot `json:"runtime"`
	QueryCache    tara.CacheStats     `json:"queryCache"`
	ResponseCache ByteCacheStats      `json:"responseCache"`
	// Trajectory is the columnar trajectory engine's snapshot state: whether
	// one is resident, its generation and dimensions, and how many rebuilds
	// the framework has paid.
	Trajectory tara.TrajStats              `json:"trajectory"`
	Endpoints  map[string]EndpointSnapshot `json:"endpoints"`
	// Stages reports the per-stage latency distributions aggregated across
	// all traced query requests, keyed by stage name (decode, canonical-cut,
	// cache-probe, eps-lookup, materialize, encode, encode-cached).
	Stages map[string]LatencySnapshot `json:"stages"`
}

func (r *registry) snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		KBLoadMode:    r.kbLoadMode,
		KBLoadMillis:  r.kbLoadMillis,
		Shed:          r.shed.Load(),
		Endpoints:     make(map[string]EndpointSnapshot, len(r.endpoints)),
		Stages:        make(map[string]LatencySnapshot, obs.NumStages),
	}
	snap.Runtime = obs.ReadRuntime()
	if r.admission != nil {
		snap.Admission = r.admission()
	}
	if r.cacheStats != nil {
		snap.QueryCache = r.cacheStats()
	}
	if r.byteStats != nil {
		snap.ResponseCache = r.byteStats()
	}
	if r.kbResidency != nil {
		snap.KBArchiveBytes, snap.KBArchiveMapped = r.kbResidency()
	}
	if r.trajStats != nil {
		snap.Trajectory = r.trajStats()
	}
	for name, st := range r.endpoints {
		// The middleware bumps requests on entry, before any outcome counter
		// or histogram observation, so reading every outcome (latency,
		// queue wait, shed, timeouts, errors) BEFORE requests keeps each of
		// them <= Requests even while requests land mid-snapshot.
		lat := latencySnapshot(&st.latency)
		qw := latencySnapshot(&st.queueWait)
		shed := st.shed.Load()
		timeouts := st.timeouts.Load()
		errors := st.errors.Load()
		snap.Endpoints[name] = EndpointSnapshot{
			Class:         st.class,
			Requests:      st.requests.Load(),
			Errors:        errors,
			WriteFailures: st.writeFailures.Load(),
			InFlight:      st.inFlight.Load(),
			Shed:          shed,
			Timeouts:      timeouts,
			Latency:       lat,
			QueueWait:     qw,
		}
	}
	for _, s := range obs.Stages() {
		if h := &r.stages[s]; h.Count() > 0 {
			snap.Stages[s.String()] = latencySnapshot(h)
		}
	}
	return snap
}

// The process-global expvar name: expvar.Publish panics on duplicates, and
// tests construct many Servers in one process, so the name is published once
// with a closure that always reads the most recently published registry —
// the expvar output tracks the newest Server instead of freezing on the
// first one built.
var (
	publishOnce  sync.Once
	publishedReg atomic.Pointer[registry]
)

// publish exposes the snapshot under expvar as "tarad", so the standard
// /debug/vars machinery (and anything scraping it) sees the same numbers as
// /metrics.
func (r *registry) publish() {
	publishedReg.Store(r)
	publishOnce.Do(func() {
		expvar.Publish("tarad", expvar.Func(func() any {
			if reg := publishedReg.Load(); reg != nil {
				return reg.snapshot()
			}
			return nil
		}))
	})
}
