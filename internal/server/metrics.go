package server

import (
	"expvar"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tara/internal/tara"
)

// Per-endpoint request metrics: lock-free counters plus a power-of-two
// bucketed latency histogram from which /metrics derives p50/p95/p99. All
// fields are atomics so observation never contends with request handling;
// snapshots taken during traffic are approximate but internally safe.

// histBuckets spans sub-microsecond to ~9 minutes in powers of two.
const histBuckets = 30

type latencyHist struct {
	count  atomic.Uint64
	sumUS  atomic.Uint64
	bucket [histBuckets]atomic.Uint64
}

// observe files d into the bucket whose upper bound is the smallest
// power-of-two number of microseconds >= d.
func (h *latencyHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	i := bits.Len64(us) // 0µs -> 0, 1µs -> 1, (2^k..2^(k+1)-1]µs -> k+1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.bucket[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// quantile returns an upper bound (in microseconds) on the q-quantile of the
// observed latencies, at power-of-two resolution.
func (h *latencyHist) quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range histBuckets {
		cum += h.bucket[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			return (uint64(1) << i) - 1
		}
	}
	return (uint64(1) << (histBuckets - 1)) - 1
}

type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	latency  latencyHist
}

// registry holds every endpoint's stats. The endpoint set is fixed at
// construction, so the map is read-only afterwards and needs no lock.
type registry struct {
	start     time.Time
	shed      atomic.Uint64
	endpoints map[string]*endpointStats
	// cacheStats, when set, contributes the framework's query-cache counters
	// to every snapshot (and thus to both /metrics and /debug/vars).
	cacheStats func() tara.CacheStats
}

func newRegistry() *registry {
	return &registry{start: time.Now(), endpoints: map[string]*endpointStats{}}
}

// endpoint registers (or returns) the stats slot for name. Only called while
// building the mux, before any traffic.
func (r *registry) endpoint(name string) *endpointStats {
	st, ok := r.endpoints[name]
	if !ok {
		st = &endpointStats{}
		r.endpoints[name] = st
	}
	return st
}

// LatencySnapshot reports the latency distribution of one endpoint.
type LatencySnapshot struct {
	Count      uint64  `json:"count"`
	MeanMicros float64 `json:"meanMicros"`
	P50Micros  uint64  `json:"p50Micros"`
	P95Micros  uint64  `json:"p95Micros"`
	P99Micros  uint64  `json:"p99Micros"`
}

// EndpointSnapshot reports one endpoint's counters and latency quantiles.
type EndpointSnapshot struct {
	Requests uint64          `json:"requests"`
	Errors   uint64          `json:"errors"`
	Latency  LatencySnapshot `json:"latency"`
}

// MetricsSnapshot is the /metrics response body.
type MetricsSnapshot struct {
	UptimeSeconds float64                     `json:"uptimeSeconds"`
	Goroutines    int                         `json:"goroutines"`
	Shed          uint64                      `json:"shed"`
	QueryCache    tara.CacheStats             `json:"queryCache"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
}

func (r *registry) snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		Shed:          r.shed.Load(),
		Endpoints:     make(map[string]EndpointSnapshot, len(r.endpoints)),
	}
	if r.cacheStats != nil {
		snap.QueryCache = r.cacheStats()
	}
	for name, st := range r.endpoints {
		count := st.latency.count.Load()
		mean := 0.0
		if count > 0 {
			mean = float64(st.latency.sumUS.Load()) / float64(count)
		}
		snap.Endpoints[name] = EndpointSnapshot{
			Requests: st.requests.Load(),
			Errors:   st.errors.Load(),
			Latency: LatencySnapshot{
				Count:      count,
				MeanMicros: mean,
				P50Micros:  st.latency.quantile(0.50),
				P95Micros:  st.latency.quantile(0.95),
				P99Micros:  st.latency.quantile(0.99),
			},
		}
	}
	return snap
}

// publishOnce guards the process-global expvar name: expvar.Publish panics on
// duplicates, and tests construct many Servers in one process. The first
// registry wins — in the daemon there is exactly one.
var publishOnce sync.Once

// publish exposes the snapshot under expvar as "tarad", so the standard
// /debug/vars machinery (and anything scraping it) sees the same numbers as
// /metrics.
func (r *registry) publish() {
	publishOnce.Do(func() {
		expvar.Publish("tarad", expvar.Func(func() any { return r.snapshot() }))
	})
}
