package server

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tara/internal/gen"
	"tara/internal/mining"
	"tara/internal/tara"
	"tara/internal/txdb"
)

// Run is the tarad entry point: parse flags, load (or build) the knowledge
// base, and serve until SIGINT/SIGTERM, draining in-flight requests before
// returning. stderr receives the structured log.
func Run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("tarad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8775", "listen address")
		kbFile   = fs.String("kb", "", "load a previously saved knowledge base instead of building")
		mmapOn   = fs.Bool("mmap", false, "memory-map the -kb file (mapped container format) instead of deserializing it into the heap")
		load     = fs.String("load", "", "build from transactions in a TSV file (timestamp<TAB>item item ...)")
		fimi     = fs.String("fimi", "", "build from transactions in a FIMI-format file")
		maxTx    = fs.Int("maxtx", 0, "cap transactions read from -fimi (0 = all)")
		generate = fs.String("gen", "retail", "generate a dataset: retail, quest or webdocs (ignored with -load)")
		tx       = fs.Int("tx", 20000, "transactions to generate")
		items    = fs.Int("items", 2000, "item vocabulary size for generation")
		avgLen   = fs.Int("avglen", 10, "average transaction length for generation")
		seed     = fs.Int64("seed", 1, "generator seed")
		batches  = fs.Int("batches", 10, "number of equal-sized windows")
		winSize  = fs.Int64("window", 0, "time-based window size (overrides -batches when > 0)")
		genSupp  = fs.Float64("supp", 0.005, "generation minimum support")
		genConf  = fs.Float64("conf", 0.1, "generation minimum confidence")
		maxLen   = fs.Int("maxlen", 4, "maximum itemset length")
		miner    = fs.String("miner", "eclat", "mining algorithm: apriori, eclat, fpgrowth, hmine")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "windows preprocessed concurrently during build (0 or 1 = serial)")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-request timeout")
		inflight = fs.Int("maxinflight", 256, "max concurrently executing queries (-1 = unlimited; in adaptive mode, the controller's upper bound)")
		adm      = fs.String("admission", "adaptive", "in-flight admission policy: adaptive (AIMD latency-feedback limit with per-class QoS guarantees) or static (fixed -maxinflight cap, the legacy behavior)")
		minLimit = fs.Int("minlimit", 2, "adaptive admission's lowest (and cold-start) in-flight limit")
		admWin   = fs.Duration("admissionwindow", 200*time.Millisecond, "adaptive admission's AIMD decision cadence")
		admTol   = fs.Float64("admissiontolerance", 2.0, "adaptive admission's p99 breach tolerance over the baseline")
		qwait    = fs.Duration("queuewait", 0, "max time a request may queue for an in-flight slot before 429 (0 = shed immediately)")
		pprofOn  = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		slowN    = fs.Int("slowtraces", 32, "slowest request traces retained for /debug/slow")
		bcache   = fs.Int("bytecache", 0, "encoded-response byte cache entries (0 = default, -1 = disabled)")
		gzipOn   = fs.Bool("gzip", true, "store and serve gzip-precompressed variants of cached responses")
		gzipMin  = fs.Int("gzipmin", 0, "smallest response body (bytes) to gzip (0 = default 1024)")
		drain    = fs.Duration("drain", 15*time.Second, "max time to drain in-flight requests on shutdown")
	)
	// -slowring is the documented name for the slow-trace ring size;
	// -slowtraces remains as the original spelling. Both set the same value.
	fs.IntVar(slowN, "slowring", 32, "alias for -slowtraces")
	if err := fs.Parse(args); err != nil {
		return err
	}
	log := slog.New(slog.NewTextHandler(stderr, nil))

	start := time.Now()
	fw, err := loadOrBuild(log, *kbFile, *mmapOn, *load, *fimi, *maxTx, *generate, *tx, *items, *avgLen,
		*seed, *batches, *winSize, *genSupp, *genConf, *maxLen, *miner, *parallel)
	if err != nil {
		return err
	}
	defer fw.Close()
	kbLoadMillis := time.Since(start).Milliseconds()
	log.Info("knowledge base ready",
		"windows", fw.Windows(),
		"rules", fw.RuleDict().Len(),
		"archiveBytes", fw.Archive().SizeBytes(),
		"loadMode", fw.LoadMode(),
		"loadMillis", kbLoadMillis,
		"elapsed", time.Since(start).Round(time.Millisecond),
	)
	// Loaded knowledge bases carry no per-window timings; only a fresh build
	// has phase telemetry worth logging.
	if rep := fw.BuildReport(); rep.Total > 0 {
		log.Info("build telemetry",
			"mine", rep.Mine.Round(time.Millisecond),
			"rulegen", rep.RuleGen.Round(time.Millisecond),
			"archive", rep.Archive.Round(time.Millisecond),
			"index", rep.Index.Round(time.Millisecond),
			"commit", rep.Commit.Round(time.Millisecond),
			"queueWait", rep.QueueWait.Round(time.Millisecond),
			"parallelism", rep.Parallelism,
			"itemsets", rep.Itemsets,
			"epsLocations", rep.Locations,
			"compression", fmt.Sprintf("%.2fx", rep.Storage.CompressionRatio),
		)
	}

	gzMin := *gzipMin
	if !*gzipOn {
		gzMin = -1
	}
	admMode := *adm
	if *inflight < 0 && admMode == "adaptive" {
		// -maxinflight -1 asks for no limiter at all; honor it rather than
		// erroring out of the adaptive default.
		log.Info("admission disabled: -maxinflight -1 overrides -admission adaptive")
		admMode = "static"
	}
	s, err := New(Config{
		Framework:          fw,
		Logger:             log,
		RequestTimeout:     *timeout,
		MaxInFlight:        *inflight,
		AdmissionMode:      admMode,
		MinLimit:           *minLimit,
		AdmissionWindow:    *admWin,
		AdmissionTolerance: *admTol,
		QueueWait:          *qwait,
		EnablePprof:        *pprofOn,
		SlowTraces:         *slowN,
		ByteCacheSize:      *bcache,
		GzipMinBytes:       gzMin,
		KBLoadMode:         fw.LoadMode(),
		KBLoadMillis:       kbLoadMillis,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln, *drain)
}

// Serve answers requests on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get up to
// drainTimeout to finish. The listener is always closed when Serve returns.
func (s *Server) Serve(ctx context.Context, ln net.Listener, drainTimeout time.Duration) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ErrorLog:          slog.NewLogLogger(s.log.Handler(), slog.LevelWarn),
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.log.Info("listening", "addr", ln.Addr().String())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.log.Info("shutting down, draining in-flight requests", "timeout", drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("server: drain incomplete: %w", err)
		}
		<-errc // srv.Serve has returned http.ErrServerClosed
		s.log.Info("drained, goodbye")
		return nil
	}
}

// loadOrBuild either restores a persisted knowledge base or builds one from
// loaded/generated transactions, mirroring the cmd/tara startup path.
func loadOrBuild(log *slog.Logger, kbFile string, mmapOn bool, load, fimi string, maxTx int, generate string,
	tx, items, avgLen int, seed int64, batches int, winSize int64,
	genSupp, genConf float64, maxLen int, miner string, parallel int) (*tara.Framework, error) {
	if kbFile != "" {
		if mmapOn {
			log.Info("mapping knowledge base", "file", kbFile)
			return tara.Open(kbFile)
		}
		f, err := os.Open(kbFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		log.Info("loading knowledge base", "file", kbFile)
		return tara.Load(f)
	}
	db, err := loadOrGenerate(load, fimi, maxTx, generate, tx, items, avgLen, seed)
	if err != nil {
		return nil, err
	}
	m, err := mining.ByName(miner)
	if err != nil {
		return nil, err
	}
	log.Info("building knowledge base", "transactions", db.Len(), "miner", miner, "parallelism", parallel)
	return tara.Build(db, winSize, batches, tara.Config{
		GenMinSupport: genSupp,
		GenMinConf:    genConf,
		MaxItemsetLen: maxLen,
		Miner:         m,
		ContentIndex:  true,
		Parallelism:   parallel,
	})
}

func loadOrGenerate(load, fimi string, maxTx int, generator string, tx, items, avgLen int, seed int64) (*txdb.DB, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return txdb.Read(f)
	}
	if fimi != "" {
		f, err := os.Open(fimi)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return txdb.ReadFIMI(f, maxTx)
	}
	switch generator {
	case "retail":
		return gen.Retail(gen.RetailParams{Transactions: tx, NumItems: items, AvgLen: avgLen, Seed: seed})
	case "quest":
		return gen.Quest(gen.QuestParams{Transactions: tx, AvgTransLen: avgLen, NumItems: items, Seed: seed})
	case "webdocs":
		return gen.Webdocs(gen.WebdocsParams{Transactions: tx, NumItems: items, AvgLen: avgLen, Seed: seed})
	}
	return nil, fmt.Errorf("unknown generator %q (want retail, quest or webdocs)", generator)
}
