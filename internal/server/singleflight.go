package server

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent work on one byte-cache key: the first
// caller (the leader) runs fn while every concurrent duplicate waits for the
// leader's result instead of repeating the materialize+encode. A thundering
// herd of N cold misses on one canonical key therefore costs one encode.
// Flights are keyed by the full byteCacheKey, so identity encodes and gzip
// derivations (which use the enc-variant key) coalesce independently.
type flightGroup struct {
	mu sync.Mutex
	m  map[byteCacheKey]*flight
}

// flight is one in-progress computation; done is closed once the result
// fields are final. A failed computation carries errMsg and the HTTP status
// to answer with, mirroring how the leader itself would have responded.
type flight struct {
	done   chan struct{}
	entry  *byteCacheEntry
	errMsg string
	status int
}

// do runs fn once per key among concurrent callers. joined reports that this
// call waited on another caller's fn; ok is false only when ctx was
// cancelled while waiting (the caller's response is owned by whatever
// cancelled it — typically the timeout wrapper). The leader's flight is
// always resolved and removed, even if fn panics, so waiters cannot hang on
// a dead leader; a panic surfaces as a nil entry with no error message.
func (g *flightGroup) do(ctx context.Context, k byteCacheKey, fn func() (*byteCacheEntry, string, int)) (e *byteCacheEntry, errMsg string, status int, joined, ok bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[byteCacheKey]*flight)
	}
	if f, dup := g.m[k]; dup {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.entry, f.errMsg, f.status, true, true
		case <-ctx.Done():
			return nil, "", 0, true, false
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[k] = f
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.m, k)
		g.mu.Unlock()
		close(f.done)
	}()
	f.entry, f.errMsg, f.status = fn()
	return f.entry, f.errMsg, f.status, false, true
}
