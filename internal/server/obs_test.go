package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tara/internal/obs"
	"tara/internal/query"
)

// TestDebugTraceIntegration issues a ?debug=trace mine query and checks the
// returned stage breakdown: the trace honors the inbound X-Request-ID, names
// at least four known stages, and the stage durations sum to no more than the
// latency observed at the endpoint.
func TestDebugTraceIntegration(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const reqID = "trace-test-42"
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/mine?w=0&supp=0.02&conf=0.2&debug=trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", reqID)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Errorf("X-Request-ID echoed as %q, want %q", got, reqID)
	}

	var traced tracedBody
	if err := json.Unmarshal(body, &traced); err != nil {
		t.Fatalf("decoding traced body: %v", err)
	}
	if traced.Trace.ID != reqID {
		t.Errorf("trace id %q, want %q", traced.Trace.ID, reqID)
	}
	// The wrapped result must still be the normal mine answer.
	var res query.MineResult
	if err := json.Unmarshal(traced.Result, &res); err != nil {
		t.Fatalf("decoding wrapped result: %v", err)
	}
	if res.Window != 0 || res.Count == 0 {
		t.Errorf("wrapped result window=%d count=%d, want window 0 and rules", res.Window, res.Count)
	}

	known := map[string]bool{}
	for _, st := range obs.Stages() {
		known[st.String()] = true
	}
	var stageSum float64
	for _, st := range traced.Trace.Stages {
		if !known[st.Stage] {
			t.Errorf("unknown stage %q in trace", st.Stage)
		}
		if st.Micros < 0 {
			t.Errorf("stage %s has negative duration %v", st.Stage, st.Micros)
		}
		stageSum += st.Micros
	}
	if len(traced.Trace.Stages) < 4 {
		t.Fatalf("trace has %d stages (%+v), want >= 4", len(traced.Trace.Stages), traced.Trace.Stages)
	}
	if stageSum > traced.Trace.TotalMicros {
		t.Errorf("stage sum %.1fµs exceeds trace total %.1fµs", stageSum, traced.Trace.TotalMicros)
	}
	if clientUS := float64(elapsed) / float64(time.Microsecond); stageSum > clientUS {
		t.Errorf("stage sum %.1fµs exceeds client-observed latency %.1fµs", stageSum, clientUS)
	}
	// The endpoint histogram observed this request end to end, so its sum
	// (whole microseconds) bounds the stage sum too.
	st := s.metrics.endpoints["mine"]
	if got, want := st.latency.Count(), uint64(1); got != want {
		t.Fatalf("endpoint observed %d requests, want %d", got, want)
	}
	if endpointUS := float64(st.latency.SumMicros() + 1); stageSum > endpointUS {
		t.Errorf("stage sum %.1fµs exceeds endpoint-observed latency %.0fµs", stageSum, endpointUS)
	}

	// The same trace must have landed in the stage histograms and slow ring.
	snap := s.metrics.snapshot()
	if len(snap.Stages) < 4 {
		t.Errorf("/metrics stages = %v, want >= 4 populated", snap.Stages)
	}
	slow := s.metrics.slow.Snapshot()
	if len(slow) != 1 || slow[0].ID != reqID {
		t.Fatalf("slow ring = %+v, want the one traced request", slow)
	}

	code, body := get(t, ts.URL, "/debug/slow")
	if code != http.StatusOK {
		t.Fatalf("/debug/slow status %d", code)
	}
	var slowBody []obs.SlowTrace
	if err := json.Unmarshal(body, &slowBody); err != nil {
		t.Fatalf("decoding /debug/slow: %v", err)
	}
	if len(slowBody) != 1 || slowBody[0].ID != reqID || slowBody[0].Endpoint != "mine" {
		t.Fatalf("/debug/slow = %s, want the mine trace", body)
	}
}

// TestUntracedResponseUnchanged checks that without ?debug=trace the answer
// body is the plain result — tracing must be opt-in per request.
func TestUntracedResponseUnchanged(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL, "/mine?w=0&supp=0.02&conf=0.2")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var v map[string]json.RawMessage
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if _, ok := v["trace"]; ok {
		t.Fatalf("untraced response contains a trace envelope: %s", body)
	}
	if _, ok := v["rules"]; !ok {
		t.Fatalf("untraced response is not the plain mine result: %s", body)
	}
}

// Prometheus text-format (version 0.0.4) conformance checking, applied to
// every exported series: metric and label names match the spec's character
// sets, label values use only the legal escapes (\\, \", \n), every sample's
// metric family carries HELP and TYPE metadata, no two sample lines repeat
// the same (name, label set) series, histogram buckets are cumulative and
// close with a +Inf bucket equal to the series _count.

var (
	promMetricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parsePromLabels parses the inside of a {...} label block, validating label
// names and value escaping. Returns the labels as sorted `name=value` pairs
// (values unescaped) for series identity.
func parsePromLabels(s string) ([]string, error) {
	var out []string
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("no '=' in label segment %q", s)
		}
		name := s[:eq]
		if !promLabelNameRe.MatchString(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s: value not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %s: dangling backslash", name)
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: illegal escape \\%c", name, s[i+1])
				}
				i++
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			if c == '\n' {
				return nil, fmt.Errorf("label %s: raw newline in value", name)
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", name)
		}
		out = append(out, name+"="+val.String())
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	sort.Strings(out)
	return out, nil
}

// checkPromExposition validates a full exposition body against the rules
// above.
func checkPromExposition(t *testing.T, text string) {
	t.Helper()
	helped := map[string]bool{}
	typed := map[string]string{}
	seen := map[string]int{}         // series identity -> first line
	bucketCum := map[string]uint64{} // histogram key -> last cumulative value
	infSeen := map[string]uint64{}
	counts := map[string]uint64{}

	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			helped[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if typed[f[2]] != "" {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, f[2])
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := series
		var labels []string
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated labels: %q", ln+1, line)
			}
			name = series[:i]
			labels, err = parsePromLabels(series[i+1 : len(series)-1])
			if err != nil {
				t.Fatalf("line %d: %v: %q", ln+1, err, line)
			}
		}
		if !promMetricNameRe.MatchString(name) {
			t.Fatalf("line %d: illegal metric name %q", ln+1, name)
		}
		id := name + "{" + strings.Join(labels, ",") + "}"
		if first, dup := seen[id]; dup {
			t.Fatalf("line %d: duplicate series %s (first at line %d)", ln+1, id, first)
		}
		seen[id] = ln + 1
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && typed[b] == "histogram" {
				base = b
			}
		}
		if !helped[base] || typed[base] == "" {
			t.Fatalf("line %d: series %q lacks HELP/TYPE metadata (base %q)", ln+1, line, base)
		}
		if typed[base] == "histogram" {
			// Key bucket series by their non-le labels so cumulativeness is
			// checked per labeled histogram.
			var le string
			var rest []string
			for _, kv := range labels {
				if v, ok := strings.CutPrefix(kv, "le="); ok {
					le = v
				} else {
					rest = append(rest, kv)
				}
			}
			key := base + "|" + strings.Join(rest, ",")
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if uint64(val) < bucketCum[key] {
					t.Fatalf("line %d: bucket not cumulative (%d < %d): %q", ln+1, uint64(val), bucketCum[key], line)
				}
				bucketCum[key] = uint64(val)
				if le == "+Inf" {
					infSeen[key] = uint64(val)
				}
			case strings.HasSuffix(name, "_count"):
				counts[key] = uint64(val)
			}
		}
	}
	if len(typed) == 0 {
		t.Fatal("no typed series in exposition")
	}
	for key, c := range counts {
		inf, ok := infSeen[key]
		if !ok {
			t.Errorf("histogram %s has no +Inf bucket", key)
		} else if inf != c {
			t.Errorf("histogram %s: +Inf bucket %d != count %d", key, inf, c)
		}
	}
}

// TestPromLabelParser pins the checker's own label grammar: legal escapes
// round-trip, illegal ones are rejected — so a conformance pass over the
// real exposition means the escaping rules were actually exercised.
func TestPromLabelParser(t *testing.T) {
	if got, err := parsePromLabels(`a="x\\y\"z\n",b="w"`); err != nil || strings.Join(got, "|") != "a=x\\y\"z\n|b=w" {
		t.Fatalf("legal labels: got %q, err %v", got, err)
	}
	for _, bad := range []string{`a="x\t"`, `a=x`, `1a="x"`, `a="x`} {
		if _, err := parsePromLabels(bad); err == nil {
			t.Errorf("parsePromLabels(%q) accepted, want error", bad)
		}
	}
}

// TestPrometheusExposition drives traffic and validates the
// /metrics?format=prometheus output with the minimal exposition checker.
func TestPrometheusExposition(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		if code, body := get(t, ts.URL, "/mine?w=0&supp=0.02&conf=0.2"); code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
	}
	get(t, ts.URL, "/mine?w=999&supp=0.02&conf=0.2") // one error

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	text := string(body)
	checkPromExposition(t, text)

	for _, want := range []string{
		`tarad_requests_total{endpoint="mine"} 6`,
		`tarad_request_errors_total{endpoint="mine"} 1`,
		`tarad_request_duration_seconds_count{endpoint="mine"} 6`,
		`tarad_stage_duration_seconds_bucket{stage="decode",`,
		"tarad_query_cache_hits_total",
		"tarad_uptime_seconds",
		"tarad_kb_load_millis",
		`tarad_kb_load_info{mode="` + s.fw.LoadMode() + `"} 1`,
		`tarad_request_shed_total{endpoint="mine"} 0`,
		`tarad_request_timeouts_total{endpoint="mine"} 0`,
		`tarad_in_flight_requests{endpoint="mine"} 0`,
		// Queue wait is observed only on admission inside the handler; byte-cache
		// hits answer upstream of the limiter, so only the cold miss and the
		// w=999 error request pass through admission.
		`tarad_queue_wait_seconds_count{endpoint="mine"} 2`,
		"tarad_go_heap_live_bytes",
		"tarad_go_heap_goal_bytes",
		"tarad_go_gc_cycles_total",
		`tarad_go_gc_pause_seconds_bucket{le="+Inf"}`,
		`tarad_go_sched_latency_seconds_count`,
		"tarad_kb_archive_bytes",
		"tarad_kb_archive_mapped",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestMetricsConcurrentSnapshot hammers one endpoint from 8 goroutines while
// reading snapshots in a loop: request counts must grow monotonically and
// every histogram view must stay internally consistent. Run under -race this
// is the lock-free metrics path's correctness check.
func TestMetricsConcurrentSnapshot(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodGet, "/count?w=0&supp=0.02&conf=0.2", nil)
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("status %d: %s", rec.Code, rec.Body)
					return
				}
			}
		}()
	}

	snapErrs := make(chan error, 1)
	go func() {
		defer close(snapErrs)
		var lastReq, lastCount uint64
		for !stop.Load() {
			snap := s.metrics.snapshot()
			ep := snap.Endpoints["count"]
			if ep.Requests < lastReq {
				snapErrs <- fmt.Errorf("requests went backwards: %d -> %d", lastReq, ep.Requests)
				return
			}
			if ep.Latency.Count < lastCount {
				snapErrs <- fmt.Errorf("latency count went backwards: %d -> %d", lastCount, ep.Latency.Count)
				return
			}
			if ep.Latency.Count > ep.Requests {
				snapErrs <- fmt.Errorf("latency count %d > requests %d", ep.Latency.Count, ep.Requests)
				return
			}
			if l := ep.Latency; l.P50Micros > l.P95Micros || l.P95Micros > l.P99Micros {
				snapErrs <- fmt.Errorf("quantiles out of order: %+v", l)
				return
			}
			// The raw bucket view must never show fewer observations in the
			// buckets than in the count (the snapshot read order guarantee).
			hs := s.metrics.endpoints["count"].latency.Snapshot()
			var bucketTotal uint64
			for _, b := range hs.Buckets {
				bucketTotal += b
			}
			if bucketTotal < hs.Count {
				snapErrs <- fmt.Errorf("bucket total %d < count %d", bucketTotal, hs.Count)
				return
			}
			lastReq, lastCount = ep.Requests, ep.Latency.Count
		}
	}()

	wg.Wait()
	stop.Store(true)
	if err, ok := <-snapErrs; ok && err != nil {
		t.Fatal(err)
	}

	snap := s.metrics.snapshot()
	ep := snap.Endpoints["count"]
	if want := uint64(workers * perWorker); ep.Requests != want || ep.Latency.Count != want {
		t.Fatalf("final requests=%d latencyCount=%d, want %d", ep.Requests, ep.Latency.Count, want)
	}
}

// TestExpvarTracksNewestRegistry pins the publishOnce fix: expvar's "tarad"
// var must reflect the most recently constructed Server, not the first one
// the process ever built.
func TestExpvarTracksNewestRegistry(t *testing.T) {
	a := newTestServer(t, Config{})
	ha := a.Handler()
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		ha.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/count?w=0&supp=0.02&conf=0.2", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("server A status %d", rec.Code)
		}
	}

	b := newTestServer(t, Config{}) // New publishes, making B current
	hb := b.Handler()
	rec := httptest.NewRecorder()
	hb.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/count?w=0&supp=0.02&conf=0.2", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("server B status %d", rec.Code)
	}

	v := expvar.Get("tarad")
	if v == nil {
		t.Fatal("expvar tarad not published")
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("decoding expvar tarad: %v", err)
	}
	if got := snap.Endpoints["count"].Requests; got != 1 {
		t.Fatalf("expvar count requests = %d, want 1 (server B); stale registry?", got)
	}
}
