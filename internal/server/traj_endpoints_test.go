package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tara/internal/gen"
	"tara/internal/mining"
	"tara/internal/query"
	"tara/internal/tara"
	"tara/internal/traj"
)

// TestTrajEndpointsAnswer drives /topk, /similar and /emerging end to end
// and cross-checks each payload against the framework's direct answer.
func TestTrajEndpointsAnswer(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	fw := s.fw
	last := fw.Windows() - 1
	rebuilds0 := fw.TrajStats().Rebuilds

	code, body := get(t, ts.URL, fmt.Sprintf("/topk?from=0&to=%d&supp=0.01&conf=0.1&by=drift&k=5", last))
	if code != http.StatusOK {
		t.Fatalf("/topk: status %d: %s", code, body)
	}
	var tk query.TopKResult
	if err := json.Unmarshal(body, &tk); err != nil {
		t.Fatalf("/topk: decoding: %v", err)
	}
	if tk.By != "drift" || tk.K != 5 || tk.Count == 0 || tk.Count > 5 {
		t.Fatalf("/topk envelope: %+v", tk)
	}
	want, err := fw.TopKTrajectories(0, last, 0.01, 0.1, traj.ByDrift, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != tk.Count {
		t.Fatalf("/topk returned %d rules, framework %d", tk.Count, len(want))
	}
	for i, row := range tk.Rules {
		if row.ID != uint32(want[i].ID) || row.Score != want[i].Score {
			t.Fatalf("/topk row %d: (%d, %v) vs framework (%d, %v)", i, row.ID, row.Score, want[i].ID, want[i].Score)
		}
		if row.Stability != want[i].Agg.Stability || row.Coverage != want[i].Agg.Coverage {
			t.Fatalf("/topk row %d aggregates diverge: %+v vs %+v", i, row, want[i].Agg)
		}
	}

	ref := make([]string, last+1)
	for i := range ref {
		ref[i] = "0.02"
	}
	code, body = get(t, ts.URL, fmt.Sprintf("/similar?from=0&to=%d&ref=%s&metric=max&k=5", last, strings.Join(ref, ",")))
	if code != http.StatusOK {
		t.Fatalf("/similar: status %d: %s", code, body)
	}
	var sm query.SimilarResult
	if err := json.Unmarshal(body, &sm); err != nil {
		t.Fatalf("/similar: decoding: %v", err)
	}
	if sm.Metric != "max" || sm.Count == 0 || sm.Count > 5 {
		t.Fatalf("/similar envelope: %+v", sm)
	}
	refF := make([]float64, last+1)
	for i := range refF {
		refF[i] = 0.02
	}
	neigh, _, err := fw.SimilarTrajectories(0, last, refF, traj.MaxNorm, 0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(neigh) != sm.Count {
		t.Fatalf("/similar returned %d rules, framework %d", sm.Count, len(neigh))
	}
	for i, row := range sm.Rules {
		if row.ID != uint32(neigh[i].ID) || row.Distance != neigh[i].Distance {
			t.Fatalf("/similar row %d: (%d, %v) vs framework (%d, %v)", i, row.ID, row.Distance, neigh[i].ID, neigh[i].Distance)
		}
	}

	code, body = get(t, ts.URL, "/emerging?from=0&supp=0.01&conf=0.1")
	if code != http.StatusOK {
		t.Fatalf("/emerging: status %d: %s", code, body)
	}
	var em query.EmergingResult
	if err := json.Unmarshal(body, &em); err != nil {
		t.Fatalf("/emerging: decoding: %v", err)
	}
	if em.To != last {
		t.Fatalf("/emerging resolved to window %d, want latest %d", em.To, last)
	}
	eWant, err := fw.EmergingRules(0, -1, 0.01, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if em.Total != len(eWant) {
		t.Fatalf("/emerging total %d, framework %d", em.Total, len(eWant))
	}
	for i, row := range em.Rules {
		if row.ID != uint32(eWant[i].ID) || row.Support != eWant[i].Support {
			t.Fatalf("/emerging row %d: (%d, %v) vs framework (%d, %v)", i, row.ID, row.Support, eWant[i].ID, eWant[i].Support)
		}
	}

	// One generation: at most one build serves all of the above.
	if st := fw.TrajStats(); !st.Built || st.Rebuilds-rebuilds0 > 1 {
		t.Fatalf("snapshot stats after three endpoint hits: %+v (started at %d rebuilds)", st, rebuilds0)
	}
}

// TestTrajEndpointsByteCacheAndETag: trajectory answers over committed
// windows are cacheable; a repeat GET must hit the encoded-response cache
// and a conditional GET must answer 304.
func TestTrajEndpointsByteCacheAndETag(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	last := s.fw.Windows() - 1

	paths := []string{
		fmt.Sprintf("/topk?from=0&to=%d&supp=0.01&conf=0.1&k=7", last),
		fmt.Sprintf("/similar?from=0&to=%d&ref=%s", last, strings.TrimSuffix(strings.Repeat("0.01,", last+1), ",")),
		"/emerging?from=0&supp=0.01&conf=0.1",
	}
	for _, p := range paths {
		code, body, hdr := getWithHeaders(t, ts.URL, p, nil)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", p, code, body)
		}
		etag := hdr.Get("ETag")
		if etag == "" {
			t.Fatalf("GET %s: no ETag on a cacheable trajectory answer", p)
		}
		before := s.bcache.stats().Hits
		code2, body2, hdr2 := getWithHeaders(t, ts.URL, p, nil)
		if code2 != http.StatusOK || string(body2) != string(body) {
			t.Fatalf("repeat GET %s: status %d, body stable=%v", p, code2, string(body2) == string(body))
		}
		if hdr2.Get("ETag") != etag {
			t.Fatalf("repeat GET %s: tag moved %q -> %q", p, etag, hdr2.Get("ETag"))
		}
		if after := s.bcache.stats().Hits; after <= before {
			t.Fatalf("repeat GET %s did not hit the byte cache (hits %d -> %d)", p, before, after)
		}
		code3, b304, _ := getWithHeaders(t, ts.URL, p, map[string]string{"If-None-Match": etag})
		if code3 != http.StatusNotModified || len(b304) != 0 {
			t.Fatalf("conditional GET %s: status %d, %d body bytes, want 304 empty", p, code3, len(b304))
		}
	}

	// Distinct parameters must key distinct entries: a different k, metric
	// or reference profile cannot collide.
	_, _, h1 := getWithHeaders(t, ts.URL, paths[0], nil)
	_, _, h2 := getWithHeaders(t, ts.URL, strings.Replace(paths[0], "k=7", "k=3", 1), nil)
	if h1.Get("ETag") == h2.Get("ETag") {
		t.Fatal("different k shares an ETag")
	}
	_, _, h3 := getWithHeaders(t, ts.URL, paths[1], nil)
	_, _, h4 := getWithHeaders(t, ts.URL, strings.Replace(paths[1], "0.01", "0.02", 1), nil)
	if h3.Get("ETag") == h4.Get("ETag") {
		t.Fatal("different reference profile shares an ETag")
	}
}

// TestTrajEmergingFreshAfterAppend: /emerging without to= follows the newest
// window, so an append must produce a fresh answer — new resolved window,
// new ETag — while explicit-range answers stay stable.
func TestTrajEmergingFreshAfterAppend(t *testing.T) {
	db, err := gen.Retail(gen.RetailParams{Transactions: 400, NumItems: 40, AvgLen: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	windows, err := db.PartitionByCount(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tara.Config{GenMinSupport: 0.01, GenMinConf: 0.1, MaxItemsetLen: 3, Miner: mining.Eclat{}}
	fw := tara.New(db.Dict, cfg)
	for _, w := range windows[:3] {
		if err := fw.AppendWindow(w); err != nil {
			t.Fatal(err)
		}
	}
	s := newTestServer(t, Config{Framework: fw})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const emergingPath = "/emerging?from=0&supp=0.01&conf=0.1"
	code, body1, hdr1 := getWithHeaders(t, ts.URL, emergingPath, nil)
	if code != http.StatusOK {
		t.Fatalf("emerging before append: status %d: %s", code, body1)
	}
	var before query.EmergingResult
	if err := json.Unmarshal(body1, &before); err != nil {
		t.Fatal(err)
	}
	if before.To != 2 {
		t.Fatalf("resolved window %d before append, want 2", before.To)
	}
	fixedPath := "/topk?from=0&to=2&supp=0.01&conf=0.1"
	_, bodyFixed1, hdrFixed1 := getWithHeaders(t, ts.URL, fixedPath, nil)

	if err := fw.AppendWindow(windows[3]); err != nil {
		t.Fatal(err)
	}

	code, body2, hdr2 := getWithHeaders(t, ts.URL, emergingPath, nil)
	if code != http.StatusOK {
		t.Fatalf("emerging after append: status %d: %s", code, body2)
	}
	var after query.EmergingResult
	if err := json.Unmarshal(body2, &after); err != nil {
		t.Fatal(err)
	}
	if after.To != 3 {
		t.Fatalf("resolved window %d after append, want 3 (stale cached answer?)", after.To)
	}
	if hdr1.Get("ETag") == hdr2.Get("ETag") {
		t.Fatal("emerging ETag did not move with the newest window")
	}
	// A conditional GET with the stale tag must get the fresh body.
	code, body3, _ := getWithHeaders(t, ts.URL, emergingPath, map[string]string{"If-None-Match": hdr1.Get("ETag")})
	if code != http.StatusOK || string(body3) != string(body2) {
		t.Fatalf("stale conditional: status %d, fresh body=%v", code, string(body3) == string(body2))
	}

	// The explicit-range answer is a pure function of committed windows:
	// identical body and tag across the append.
	_, bodyFixed2, hdrFixed2 := getWithHeaders(t, ts.URL, fixedPath, nil)
	if string(bodyFixed1) != string(bodyFixed2) || hdrFixed1.Get("ETag") != hdrFixed2.Get("ETag") {
		t.Fatal("explicit-range /topk answer changed across an append")
	}
}

// TestTrajEndpointsBadRequests: malformed or unanswerable trajectory
// queries must answer 400 with a JSON error.
func TestTrajEndpointsBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	last := s.fw.Windows() - 1
	for _, p := range []string{
		"/topk?from=0&to=3",                                            // missing thresholds
		"/topk?from=0&to=3&supp=0.01&conf=0.1&by=bogus",                // unknown measure
		"/topk?from=0&to=99&supp=0.01&conf=0.1",                        // range beyond windows
		"/topk?from=0&to=3&supp=0.001&conf=0.1",                        // below generation threshold
		"/similar?from=0&to=3",                                         // missing ref
		"/similar?from=0&to=3&ref=0.1,nope",                            // malformed ref value
		"/similar?from=0&to=3&ref=0.1,2.5,0.1,0.1",                     // ref outside [0,1]
		fmt.Sprintf("/similar?from=0&to=%d&ref=0.1", last),             // ref length mismatch
		"/similar?from=0&to=3&ref=0.1,0.1,0.1,0.1&metric=l7",           // unknown metric
		"/emerging?supp=0.01&conf=0.1",                                 // missing from
		fmt.Sprintf("/emerging?from=%d&to=0&supp=0.01&conf=0.1", last), // inverted range
	} {
		code, body := get(t, ts.URL, p)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400 (%s)", p, code, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("GET %s: error payload %q", p, body)
		}
	}
}

// TestTrajEndpointsPagination: limit/offset page through the ranked rows
// with a stable total.
func TestTrajEndpointsPagination(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	last := s.fw.Windows() - 1

	full := fmt.Sprintf("/topk?from=0&to=%d&supp=0.01&conf=0.1&k=50", last)
	code, body := get(t, ts.URL, full)
	if code != http.StatusOK {
		t.Fatalf("full page: status %d", code)
	}
	var all query.TopKResult
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	if all.Count < 3 {
		t.Skipf("only %d qualifying rules; pagination needs at least 3", all.Count)
	}
	code, body = get(t, ts.URL, full+"&limit=2&offset=1")
	if code != http.StatusOK {
		t.Fatalf("paged: status %d", code)
	}
	var page query.TopKResult
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != all.Total || page.Offset != 1 || page.Count != 2 {
		t.Fatalf("page envelope: %+v (full total %d)", page, all.Total)
	}
	for i := 0; i < 2; i++ {
		if page.Rules[i].ID != all.Rules[i+1].ID {
			t.Fatalf("page row %d is rule %d, want %d", i, page.Rules[i].ID, all.Rules[i+1].ID)
		}
	}
}

// TestTrajMetricsSurface: after trajectory traffic, /metrics carries the
// snapshot block and the Prometheus rendering exposes the gauges.
func TestTrajMetricsSurface(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	last := s.fw.Windows() - 1
	if code, _ := get(t, ts.URL, fmt.Sprintf("/topk?from=0&to=%d&supp=0.01&conf=0.1", last)); code != http.StatusOK {
		t.Fatalf("warming topk: status %d", code)
	}
	code, body := get(t, ts.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	var snap struct {
		Trajectory tara.TrajStats `json:"trajectory"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Trajectory.Built || snap.Trajectory.Rules == 0 || snap.Trajectory.MemBytes == 0 {
		t.Fatalf("trajectory metrics block: %+v", snap.Trajectory)
	}
	code, body = get(t, ts.URL, "/metrics?format=prometheus")
	if code != http.StatusOK {
		t.Fatalf("prometheus metrics: status %d", code)
	}
	text := string(body)
	for _, m := range []string{"tarad_traj_snapshot_built 1", "tarad_traj_snapshot_rebuilds_total", "tarad_traj_snapshot_bytes"} {
		if !strings.Contains(text, m) {
			t.Errorf("prometheus output missing %q", m)
		}
	}
}
