// Package server implements tarad, the TARA query-serving daemon: an
// HTTP/JSON front end over a read-only tara.Framework knowledge base.
//
// Every exploration class of the paper is an endpoint (GET or POST form),
// taking the same parameters as the cmd/tara textual syntax:
//
//	/mine        w=0 supp=0.01 conf=0.2 [lift=1.5]     traditional mining
//	/count       w=0 supp=0.01 conf=0.2                qualifying-ruleset cardinality
//	/trajectory  w=3 supp=0.01 conf=0.2 in=0,1,2       Q1 rule trajectories
//	/diff        w=0,1,2 a=0.01,0.2 b=0.05,0.3         Q2 ruleset comparison
//	/recommend   w=0 supp=0.01 conf=0.2 [lift=1.5]     Q3 stable region
//	/rollup      from=0 to=3 supp=0.01 conf=0.2        Q4 coarse granularity
//	/drill       rule=12 from=0 to=3                   Q4 fine granularity
//	/content     w=0 supp=0.01 conf=0.2 items=a,b      Q5 content exploration
//	/rank        from=0 to=3 supp=… conf=… by=… k=10   evolution ranking
//	/periodic    from=0 to=8 supp=… conf=… period=7    cyclic qualification
//	/plot        w=0 [supp=0.01 conf=0.2]              parameter-space panorama
//	/topk        from=0 to=3 supp=… conf=… by=… k=10   columnar trajectory ranking
//	/similar     from=0 to=3 ref=0.1,0.2,… metric=…    trajectory similarity search
//	/emerging    from=0 supp=… conf=… [to=5]           newly qualifying rules
//
// The last three answer from the columnar trajectory engine (internal/traj):
// a window-major snapshot of the whole archive, rebuilt lazily per KB
// generation, whose aggregate scans, bounded-heap ranking, envelope-pruned
// similarity search and emergence detection run over contiguous float64
// columns instead of per-rule payload decodes. Their answers range over
// committed (immutable) windows only, so they byte-cache under their raw
// parameters; /emerging without to= follows the newest window and is keyed
// against the resolved index.
//
// plus /stats (knowledge-base summary), /healthz, and /metrics with
// per-endpoint request counters, latency quantiles (p50/p95/p99), per-stage
// latency histograms, the framework's query-cache hit/miss/eviction counters
// and the encoded-response byte cache's counters. /metrics?format=prometheus
// renders the same data in Prometheus text exposition format.
//
// The rule-list classes (mine, content, trajectory, rollup) accept
// limit/offset pagination; their envelopes report the unpaginated total and
// the served offset alongside count. Rule-list bodies are encoded by a
// streaming row encoder (query.MineStream) that converts one reused row at a
// time in ~32KB chunks instead of materializing the whole answer.
//
// The single-window query classes whose answer is a pure function of the
// canonical cut — mine, count, recommend without a lift bound — are served
// through an encoded-response byte cache (bytecache.go): warm repeats write
// pre-encoded JSON straight to the wire (on a fast path ahead of the timeout
// wrapper, which would otherwise copy every body through its own buffer) and
// carry a strong ETag, so clients sending If-None-Match get 304 Not Modified
// without any body. If-None-Match is evaluated with RFC 9110 weak
// comparison, so proxies that downgrade tags to W/"..." still revalidate.
// Concurrent cold misses on one key are coalesced: a single materialize+
// encode answers the whole herd. When gzip is enabled (Config.GzipMinBytes
// >= 0), bodies at least that large get a gzip-precompressed cache variant
// negotiated via Accept-Encoding, served with Content-Encoding: gzip, a
// distinct "-gz" ETag and Vary: Accept-Encoding. The cache is invalidated
// per window when the knowledge base grows.
//
// Every request carries a trace (ID from an inbound X-Request-ID header when
// present, echoed on the response) whose named stages — decode,
// canonical-cut, cache-probe, eps-lookup, materialize, encode, and
// encode-cached for byte-cache hits — time the query's path through the
// knowledge base. Appending ?debug=trace to any query endpoint wraps the
// response with the request's stage breakdown (bypassing the byte cache),
// and /debug/slow lists the slowest traces seen so far.
//
// Requests are served concurrently; the Framework's query methods are safe
// against a writer appending windows, so a daemon can stay up while the
// knowledge base grows. Each request is bounded by a timeout, and a
// fixed-size in-flight limiter sheds excess load with 429 instead of
// queueing without bound.
package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"tara/internal/obs"
	"tara/internal/query"
	"tara/internal/tara"
)

// Config configures a Server. Zero values select sensible defaults.
type Config struct {
	// Framework is the knowledge base to serve. Required.
	Framework *tara.Framework
	// Logger receives one structured line per request. Defaults to
	// slog.Default().
	Logger *slog.Logger
	// RequestTimeout bounds each query request end to end; requests that
	// exceed it answer 503. Defaults to 10s.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently executing query requests; excess
	// requests are shed with 429. Defaults to 256. Negative disables the
	// limiter. In adaptive mode this is the controller's hard upper bound.
	MaxInFlight int
	// AdmissionMode selects the in-flight admission policy: "static" (the
	// default, and the legacy behavior: a fixed MaxInFlight cap) or
	// "adaptive" (an AIMD latency-feedback controller moves the limit
	// within [MinLimit, MaxInFlight] and weighted per-QoS-class guarantees
	// keep cheap query classes schedulable during shed episodes; see
	// admission.go).
	AdmissionMode string
	// MinLimit is the adaptive controller's lower bound (and cold-start
	// limit). Zero selects 2; ignored in static mode.
	MinLimit int
	// AdmissionWindow is the adaptive controller's decision cadence — how
	// often the AIMD loop inspects the windowed latency and moves the limit.
	// Zero selects the 200ms default; ignored in static mode.
	AdmissionWindow time.Duration
	// AdmissionTolerance is how far the windowed p99 may run above the
	// controller's baseline before the window counts as a breach (a
	// multiplicative factor). Zero selects the 2.0 default; ignored in
	// static mode.
	AdmissionTolerance float64
	// QueueWait bounds how long a request may wait for an in-flight slot
	// before being shed with 429. Zero (the default) sheds the moment no
	// slot is free — the pre-queue behavior. A small bound (a few ms)
	// absorbs Poisson arrival bursts at high load without letting queue
	// delay grow unbounded; the wait is observed per endpoint as the
	// queueWait histogram on /metrics.
	QueueWait time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// SlowTraces sizes the ring of slowest request traces kept for
	// /debug/slow. Non-positive selects 32.
	SlowTraces int
	// ByteCacheSize bounds the encoded-response byte cache (see
	// bytecache.go): the number of pre-encoded JSON bodies kept for the
	// cacheable query classes. Zero selects DefaultByteCacheSize; negative
	// disables the cache (every response is encoded per request).
	ByteCacheSize int
	// GzipMinBytes sets the smallest cached body that gets a
	// gzip-precompressed variant negotiated via Accept-Encoding. Zero
	// selects DefaultGzipMinBytes; negative disables gzip variants
	// entirely (identity bodies only, no Vary header).
	GzipMinBytes int
	// KBLoadMode records how the knowledge base reached memory ("heap",
	// "mmap", "readerat" or "bytes"); surfaced on /metrics. Empty selects
	// the framework's own load mode.
	KBLoadMode string
	// KBLoadMillis records how long the startup load (or build) took, in
	// milliseconds; surfaced on /metrics.
	KBLoadMillis int64
}

// DefaultGzipMinBytes is the gzip threshold when Config.GzipMinBytes is
// zero: bodies below 1KB rarely repay the compression and the extra cache
// entry.
const DefaultGzipMinBytes = 1024

// Server answers TARA exploration queries over HTTP. Create with New; it is
// safe for concurrent use by any number of connections.
type Server struct {
	fw        *tara.Framework
	log       *slog.Logger
	timeout   time.Duration
	limiter   chan struct{} // static mode: nil = unlimited; buffered to MaxInFlight
	queueWait time.Duration // max wait for a limiter slot; 0 = shed immediately
	// adm and ctrl are the adaptive admission layer (nil in static mode):
	// a dynamic-limit semaphore with per-QoS-class guarantees, and the AIMD
	// controller that owns its limit.
	adm     *qosSem
	ctrl    *aimdController
	mux     *http.ServeMux
	metrics *registry
	// bcache serves pre-encoded response bytes for the cacheable query
	// classes; nil when Config.ByteCacheSize is negative.
	bcache *byteCache
	// flights coalesces concurrent encodes (and gzip derivations) of one
	// byte-cache key.
	flights flightGroup
	// gzipMin is the resolved Config.GzipMinBytes; negative = disabled.
	gzipMin int
	// encodes counts materialize+encode executions on the byte-cacheable
	// path — the denominator the singleflight layer shrinks.
	encodes atomic.Uint64

	// delay, when set (tests only), runs inside each query handler after
	// the limiter slot is taken and before the query executes.
	delay func(endpoint string)
	// encodeHook, when set (tests only), runs inside the singleflight
	// leader before it re-checks the cache and encodes.
	encodeHook func()
}

// endpoints maps each HTTP route to the query operation it decodes as (the
// same op names the textual syntax uses).
var endpoints = []struct{ path, op string }{
	{"/mine", "mine"},
	{"/count", "count"},
	{"/trajectory", "traj"},
	{"/diff", "compare"},
	{"/recommend", "recommend"},
	{"/rollup", "rollup"},
	{"/drill", "drill"},
	{"/content", "about"},
	{"/rank", "rank"},
	{"/periodic", "periodic"},
	{"/plot", "plot"},
	{"/topk", "topk"},
	{"/similar", "similar"},
	{"/emerging", "emerging"},
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Framework == nil {
		return nil, fmt.Errorf("server: Config.Framework is required")
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	timeout := cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	slowTraces := cfg.SlowTraces
	if slowTraces <= 0 {
		slowTraces = 32
	}
	s := &Server{
		fw:        cfg.Framework,
		log:       log,
		timeout:   timeout,
		queueWait: cfg.QueueWait,
		mux:       http.NewServeMux(),
		metrics:   newRegistry(slowTraces),
		gzipMin:   cfg.GzipMinBytes,
	}
	if s.gzipMin == 0 {
		s.gzipMin = DefaultGzipMinBytes
	}
	s.metrics.cacheStats = s.fw.CacheStats
	s.metrics.kbResidency = func() (int, bool) {
		a := s.fw.Archive()
		return a.SizeBytes(), a.Mapped()
	}
	s.metrics.kbLoadMode = cfg.KBLoadMode
	if s.metrics.kbLoadMode == "" {
		s.metrics.kbLoadMode = s.fw.LoadMode()
	}
	s.metrics.trajStats = s.fw.TrajStats
	s.metrics.kbLoadMillis = cfg.KBLoadMillis
	if cfg.ByteCacheSize >= 0 {
		s.bcache = newByteCache(cfg.ByteCacheSize)
		// Invalidate encoded bytes for a window the moment it commits, the
		// same per-window discipline as the framework's query cache.
		s.fw.OnAppend(s.bcache.invalidateWindow)
		s.metrics.byteStats = s.bcache.stats
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = 256
	}
	switch cfg.AdmissionMode {
	case "", "static":
		if maxInFlight > 0 {
			s.limiter = make(chan struct{}, maxInFlight)
		}
		// maxInFlight < 0: unlimited, no limiter at all.
	case "adaptive":
		if maxInFlight < 0 {
			return nil, fmt.Errorf("server: adaptive admission needs a finite MaxInFlight (got %d)", cfg.MaxInFlight)
		}
		minLimit := cfg.MinLimit
		if minLimit <= 0 {
			minLimit = 2
		}
		if minLimit > maxInFlight {
			minLimit = maxInFlight
		}
		acfg := defaultAIMDConfig(minLimit, maxInFlight)
		if cfg.AdmissionWindow > 0 {
			acfg.Window = cfg.AdmissionWindow
		}
		if cfg.AdmissionTolerance > 0 {
			acfg.Tolerance = cfg.AdmissionTolerance
		}
		s.adm = newQoSSem(minLimit)
		s.ctrl = newAIMDController(acfg, s.adm, nil)
	default:
		return nil, fmt.Errorf("server: unknown AdmissionMode %q (want static or adaptive)", cfg.AdmissionMode)
	}
	s.metrics.admission = s.admissionSnapshot

	for _, e := range endpoints {
		name, op := e.path[1:], e.op
		st := s.metrics.endpoint(name, op)
		inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s.answer(name, op, st, w, r)
		})
		h := http.TimeoutHandler(inner, timeout, `{"error":"request timed out"}`+"\n")
		s.mux.Handle(e.path, s.instrument(name, st, s.cacheFirst(op, st, h)))
	}
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	s.mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.fw.Summarize())
	})
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			s.metrics.writePrometheus(w)
			return
		}
		writeJSON(w, http.StatusOK, s.metrics.snapshot())
	})
	s.mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		traces := s.metrics.slow.Snapshot()
		if class := r.URL.Query().Get("class"); class != "" {
			filtered := make([]obs.SlowTrace, 0, len(traces))
			for _, t := range traces {
				if t.Class == class {
					filtered = append(filtered, t)
				}
			}
			traces = filtered
		}
		writeJSON(w, http.StatusOK, traces)
	})
	if cfg.EnablePprof {
		// Profiling endpoints expose stacks, heap contents and CPU samples;
		// they are opt-in and must never face an untrusted network.
		log.Warn("pprof enabled: /debug/pprof/ exposes profiling data (stacks, heap, CPU); do not expose this listener to untrusted networks")
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.metrics.publish()
	return s, nil
}

// Handler returns the root handler, ready to mount on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// instrument wraps a query route with tracing, request counting, latency
// observation and structured logging. The limiter and timeout live inside so
// that shed (429) and timed-out (503) requests are counted and timed like any
// other. Every request gets a trace: its ID comes from an inbound
// X-Request-ID header when present (so traces correlate across services) and
// is echoed back on the response. Stage durations are atomics, so a handler
// goroutine abandoned by the timeout wrapper can keep writing spans while
// this records the trace — the record is a safe point-in-time view.
//
// Counter ordering discipline: requests is bumped on ENTRY, before the
// handler can record any outcome (shed, timeout, error, latency), and
// snapshot readers load outcomes before requests — so every snapshot
// satisfies shed <= requests, timeouts <= requests, errors <= requests and
// latency.count <= requests, even mid-traffic.
func (s *Server) instrument(name string, st *endpointStats, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewID()
		}
		tr := obs.NewTrace(id)
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(obs.WithTrace(r.Context(), tr))

		st.requests.Add(1)
		st.inFlight.Add(1)
		defer st.inFlight.Add(-1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		d := time.Since(start)
		tr.Finish()
		if rec.status >= 400 {
			st.errors.Add(1)
		}
		if rec.status == http.StatusServiceUnavailable {
			// Only the timeout wrapper answers 503 on these routes.
			st.timeouts.Add(1)
		}
		st.latency.Observe(d)
		s.metrics.recordTrace(name, st.class, rec.status, start, tr)
		s.log.Info("request",
			"endpoint", name,
			"trace", id,
			"status", rec.status,
			"duration", d,
			"remote", r.RemoteAddr,
		)
	})
}

// probedKey marks a request context whose byte-cache probe already ran (and
// was counted) on the cacheFirst fast path, so the inner handler doesn't
// probe — and count — the same request twice.
type probedKey struct{}

// cacheFirst answers warm byte-cache hits before the request enters the
// timeout wrapper. http.TimeoutHandler copies every response body through
// its own buffer, so a warm hit served inside it pays a body-sized
// allocation per request; here the cached bytes go straight to the wire.
// Misses mark the context with their key and fall through to the normal
// pipeline. Only plain GETs take the fast path — POST forms and
// ?debug=trace keep their existing route.
func (s *Server) cacheFirst(op string, st *endpointStats, h http.Handler) http.Handler {
	if s.bcache == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || r.URL.Query().Get("debug") == "trace" {
			h.ServeHTTP(w, r)
			return
		}
		tr := obs.FromContext(r.Context())
		sp := tr.Start(obs.StageDecode)
		q, err := query.FromValues(op, r.URL.Query())
		sp.End()
		if err != nil {
			// Let the inner handler produce the canonical error response.
			h.ServeHTTP(w, r)
			return
		}
		// The canonicalized query is discarded here: on a miss the inner
		// handler re-decodes and re-keys, and the singleflight leader
		// executes that canonicalized form.
		key, _, ok := s.byteCacheKeyFor(q)
		if !ok {
			h.ServeHTTP(w, r)
			return
		}
		if e, hit := s.bcache.get(key); hit {
			sp := tr.Start(obs.StageEncodeCached)
			s.writeEntry(st, w, r, e)
			sp.End()
			return
		}
		h.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), probedKey{}, key)))
	})
}

// answer decodes, executes and encodes one query request.
func (s *Server) answer(name, op string, st *endpointStats, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	tr := obs.FromContext(r.Context())
	switch {
	case s.adm != nil:
		qc := qosClassOf(op)
		if !s.adm.acquire(r.Context(), qc, s.queueWait) {
			s.metrics.shed.Add(1)
			st.shed.Add(1)
			st.countWrite(writeError(w, http.StatusTooManyRequests, "server at capacity, retry later"))
			return
		}
		admitted := time.Now()
		defer func() {
			// Feed the controller before freeing the slot, so the observed
			// occupancy includes this request.
			s.ctrl.observe(time.Since(admitted))
			s.adm.release(qc)
		}()
	case s.limiter != nil:
		if !s.admit(r) {
			s.metrics.shed.Add(1)
			st.shed.Add(1)
			st.countWrite(writeError(w, http.StatusTooManyRequests, "server at capacity, retry later"))
			return
		}
		defer func() { <-s.limiter }()
	}
	// Queue wait: elapsed time from request arrival (trace creation in the
	// instrument middleware) to here — admission queueing plus router and
	// timeout-wrapper overhead. Shed requests never observe it.
	st.queueWait.Observe(tr.Total())
	if s.delay != nil {
		s.delay(name)
	}
	sp := tr.Start(obs.StageDecode)
	values := r.URL.Query()
	if r.Method == http.MethodPost {
		if err := r.ParseForm(); err != nil {
			sp.End()
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		values = r.Form
	}
	q, err := query.FromValues(op, values)
	sp.End()
	if err != nil {
		st.countWrite(writeError(w, http.StatusBadRequest, err.Error()))
		return
	}
	if s.bcache != nil && values.Get("debug") != "trace" {
		if key, cq, ok := s.byteCacheKeyFor(q); ok {
			s.answerCached(key, st, w, r, tr, cq)
			return
		}
	}
	res, err := query.AnswerTraced(s.fw, q, tr)
	if err != nil {
		// The knowledge base is read-only: a failing query is a bad
		// request (window out of range, unknown rule, ...), not a
		// server fault.
		st.countWrite(writeError(w, http.StatusBadRequest, err.Error()))
		return
	}
	if values.Get("debug") == "trace" {
		s.writeTraced(st, w, tr, res)
		return
	}
	sp = tr.Start(obs.StageEncode)
	st.countWrite(writeResult(w, res))
	sp.End()
}

// Admission returns the admission layer's current view: mode, limit in
// force, occupancy, and (in adaptive mode) the controller's baseline and
// per-QoS-class counters. The load harness samples this to record the limit
// trajectory.
func (s *Server) Admission() AdmissionSnapshot { return s.admissionSnapshot() }

func (s *Server) admissionSnapshot() AdmissionSnapshot {
	if s.ctrl != nil {
		return s.ctrl.snapshot()
	}
	if s.limiter != nil {
		return AdmissionSnapshot{
			Mode:     "static",
			Limit:    cap(s.limiter),
			InFlight: len(s.limiter),
		}
	}
	return AdmissionSnapshot{Mode: "unlimited", Limit: -1}
}

// admit takes an in-flight limiter slot, waiting up to queueWait for one to
// free. It reports false when the request must be shed. The caller releases
// the slot. Only called with a non-nil limiter.
func (s *Server) admit(r *http.Request) bool {
	select {
	case s.limiter <- struct{}{}:
		return true
	default:
	}
	if s.queueWait <= 0 {
		return false
	}
	t := time.NewTimer(s.queueWait)
	defer t.Stop()
	select {
	case s.limiter <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-r.Context().Done():
		// The client gave up (or the timeout wrapper fired) while queued;
		// shedding is the honest answer — the work never started.
		return false
	}
}

// answerCached serves a byte-cacheable query. A warm hit (probed here for
// POST requests; the cacheFirst fast path already probed — and context-
// marked — GETs) writes the cached immutable body under the encode-cached
// span without touching the knowledge base. A miss enters the singleflight
// group: one leader runs the query, encodes once (streamed when the result
// supports it, byte-identical to writeJSON either way) and stores the
// bytes, while every concurrent duplicate waits for that entry instead of
// repeating the work.
func (s *Server) answerCached(key byteCacheKey, st *endpointStats, w http.ResponseWriter, r *http.Request, tr *obs.Trace, q query.Query) {
	if probed, _ := r.Context().Value(probedKey{}).(byteCacheKey); probed != key {
		if e, ok := s.bcache.get(key); ok {
			sp := tr.Start(obs.StageEncodeCached)
			s.writeEntry(st, w, r, e)
			sp.End()
			return
		}
	}
	e, errMsg, status, joined, ok := s.flights.do(r.Context(), key, func() (*byteCacheEntry, string, int) {
		if s.encodeHook != nil {
			s.encodeHook()
		}
		// A just-departed leader may have stored the entry between this
		// request's miss and winning the flight: re-check without counting
		// a second probe.
		if e, ok := s.bcache.peek(key); ok {
			return e, "", 0
		}
		// The generation is read before the query executes: a window
		// committing in between can only make the stored tag
		// over-discriminating (a fresh tag for identical bytes), never make
		// two different bodies share one.
		gen := s.fw.Generation()
		res, err := query.AnswerTraced(s.fw, q, tr)
		if err != nil {
			return nil, err.Error(), http.StatusBadRequest
		}
		sp := tr.Start(obs.StageEncode)
		body, err := encodeBody(res)
		sp.End()
		if err != nil {
			return nil, err.Error(), http.StatusInternalServerError
		}
		s.encodes.Add(1)
		e := &byteCacheEntry{key: key, etag: etagFor(gen, key), body: body}
		s.bcache.put(e)
		return e, "", 0
	})
	if !ok {
		// Context cancelled while waiting on another request's encode; the
		// timeout wrapper owns the response now.
		return
	}
	if joined {
		s.bcache.coalesced.Add(1)
	}
	if errMsg != "" {
		st.countWrite(writeError(w, status, errMsg))
		return
	}
	if e == nil {
		st.countWrite(writeError(w, http.StatusInternalServerError, "encode failed"))
		return
	}
	sp := tr.Start(obs.StageEncodeCached)
	s.writeEntry(st, w, r, e)
	sp.End()
}

// writeEntry writes one cached encoded response: negotiate the content
// coding, answer 304 when If-None-Match matches the selected
// representation's tag, otherwise write the immutable body with its exact
// length. Failed wire writes land in the endpoint's writeFailures counter.
func (s *Server) writeEntry(st *endpointStats, w http.ResponseWriter, r *http.Request, e *byteCacheEntry) {
	if s.gzipMin > 0 {
		w.Header().Set("Vary", "Accept-Encoding")
		if e.key.enc == encIdentity && len(e.body) >= s.gzipMin && acceptsGzip(r.Header.Get("Accept-Encoding")) {
			if gz, ok := s.gzipVariant(r.Context(), e); ok {
				e = gz
			}
		}
	}
	w.Header().Set("ETag", e.etag)
	if etagMatches(r.Header.Get("If-None-Match"), e.etag) {
		s.bcache.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if e.key.enc == encGzip {
		w.Header().Set("Content-Encoding", "gzip")
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(e.body)))
	w.WriteHeader(http.StatusOK)
	_, err := w.Write(e.body)
	st.countWrite(err)
}

// gzipVariant returns the gzip-coded twin of identity entry e, deriving and
// caching it on first use. Compression of one key is coalesced through the
// flight group, and the variant is only stored while the identity entry is
// still resident with the same tag — an invalidation racing the derivation
// can therefore never resurrect stale bytes under a fresh window.
func (s *Server) gzipVariant(ctx context.Context, e *byteCacheEntry) (*byteCacheEntry, bool) {
	gzKey := e.key
	gzKey.enc = encGzip
	want := gzipTag(e.etag)
	if gz, ok := s.bcache.peek(gzKey); ok && gz.etag == want {
		return gz, true
	}
	gz, _, _, _, ok := s.flights.do(ctx, gzKey, func() (*byteCacheEntry, string, int) {
		if gz, ok := s.bcache.peek(gzKey); ok && gz.etag == want {
			return gz, "", 0
		}
		var buf bytes.Buffer
		zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
		if err == nil {
			_, err = zw.Write(e.body)
		}
		if cerr := zw.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err.Error(), 0
		}
		gz := &byteCacheEntry{key: gzKey, etag: want, body: buf.Bytes()}
		if id, resident := s.bcache.peek(e.key); resident && id.etag == e.etag {
			s.bcache.put(gz)
		}
		return gz, "", 0
	})
	if !ok || gz == nil {
		return nil, false
	}
	return gz, true
}

// acceptsGzip reports whether an Accept-Encoding header value admits the
// gzip coding: a gzip, x-gzip or * member whose q parameter (if any) is not
// zero. An absent or empty header keeps the identity coding.
func acceptsGzip(hdr string) bool {
	for _, part := range strings.Split(hdr, ",") {
		coding, params, _ := strings.Cut(part, ";")
		switch strings.ToLower(strings.TrimSpace(coding)) {
		case "gzip", "x-gzip", "*":
		default:
			continue
		}
		params = strings.ReplaceAll(params, " ", "")
		if q, ok := strings.CutPrefix(params, "q="); ok {
			if v, err := strconv.ParseFloat(q, 64); err == nil && v == 0 {
				continue
			}
		}
		return true
	}
	return false
}

// encodeBody renders res exactly as writeResult would put it on the wire:
// streamed when the result supports it, one json.Marshal plus the trailing
// newline otherwise.
func encodeBody(res any) ([]byte, error) {
	if sr, ok := res.(query.Streamer); ok {
		var buf bytes.Buffer
		if err := sr.StreamJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	body, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// tracedBody is the ?debug=trace response envelope: the normal result plus
// the request's per-stage breakdown.
type tracedBody struct {
	Result json.RawMessage `json:"result"`
	Trace  traceBody       `json:"trace"`
}

type traceBody struct {
	ID          string            `json:"id"`
	TotalMicros float64           `json:"totalMicros"`
	Stages      []obs.StageTiming `json:"stages"`
}

// writeTraced encodes res with the trace's stage breakdown attached. The
// result is pre-marshaled inside the encode span so the reported encode stage
// covers the real serialization work; only the small envelope is written
// outside it.
func (s *Server) writeTraced(st *endpointStats, w http.ResponseWriter, tr *obs.Trace, res any) {
	sp := tr.Start(obs.StageEncode)
	raw, err := json.Marshal(res)
	sp.End()
	if err != nil {
		st.countWrite(writeError(w, http.StatusInternalServerError, err.Error()))
		return
	}
	tr.Finish()
	st.countWrite(writeJSON(w, http.StatusOK, tracedBody{
		Result: raw,
		Trace: traceBody{
			ID:          tr.ID(),
			TotalMicros: float64(tr.Total()) / float64(time.Microsecond),
			Stages:      tr.Stages(),
		},
	}))
}

// statusRecorder captures the status code written by the wrapped handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// writeResult writes res as a 200 response body: streamed in chunks when
// the result implements query.Streamer, one json.Encoder pass otherwise.
// The returned error covers both encode and wire failures — too late for a
// status change either way (the client sees a truncated body), but callers
// fold it into the endpoint's writeFailures counter so truncation is
// observable instead of silent.
func writeResult(w http.ResponseWriter, res any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if sr, ok := res.(query.Streamer); ok {
		return sr.StreamJSON(w)
	}
	return json.NewEncoder(w).Encode(res)
}

// writeJSON encodes v as the response body. A non-nil return means the
// body is truncated or failed mid-write; the status line is already gone,
// so the caller's only recourse is to count it (see endpointStats.countWrite).
func writeJSON(w http.ResponseWriter, code int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	return json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) error {
	return writeJSON(w, code, errorBody{Error: msg})
}
