// Package server implements tarad, the TARA query-serving daemon: an
// HTTP/JSON front end over a read-only tara.Framework knowledge base.
//
// Every exploration class of the paper is an endpoint (GET or POST form),
// taking the same parameters as the cmd/tara textual syntax:
//
//	/mine        w=0 supp=0.01 conf=0.2 [lift=1.5]     traditional mining
//	/count       w=0 supp=0.01 conf=0.2                qualifying-ruleset cardinality
//	/trajectory  w=3 supp=0.01 conf=0.2 in=0,1,2       Q1 rule trajectories
//	/diff        w=0,1,2 a=0.01,0.2 b=0.05,0.3         Q2 ruleset comparison
//	/recommend   w=0 supp=0.01 conf=0.2 [lift=1.5]     Q3 stable region
//	/rollup      from=0 to=3 supp=0.01 conf=0.2        Q4 coarse granularity
//	/drill       rule=12 from=0 to=3                   Q4 fine granularity
//	/content     w=0 supp=0.01 conf=0.2 items=a,b      Q5 content exploration
//	/rank        from=0 to=3 supp=… conf=… by=… k=10   evolution ranking
//	/periodic    from=0 to=8 supp=… conf=… period=7    cyclic qualification
//	/plot        w=0 [supp=0.01 conf=0.2]              parameter-space panorama
//
// plus /stats (knowledge-base summary), /healthz, and /metrics with
// per-endpoint request counters, latency quantiles (p50/p95/p99), per-stage
// latency histograms, the framework's query-cache hit/miss/eviction counters
// and the encoded-response byte cache's counters. /metrics?format=prometheus
// renders the same data in Prometheus text exposition format.
//
// The single-window query classes whose answer is a pure function of the
// canonical cut — mine, count, recommend without a lift bound — are served
// through an encoded-response byte cache (bytecache.go): warm repeats write
// pre-encoded JSON straight to the wire and carry a strong ETag, so clients
// sending If-None-Match get 304 Not Modified without any body. The cache is
// invalidated per window when the knowledge base grows.
//
// Every request carries a trace (ID from an inbound X-Request-ID header when
// present, echoed on the response) whose named stages — decode,
// canonical-cut, cache-probe, eps-lookup, materialize, encode, and
// encode-cached for byte-cache hits — time the query's path through the
// knowledge base. Appending ?debug=trace to any query endpoint wraps the
// response with the request's stage breakdown (bypassing the byte cache),
// and /debug/slow lists the slowest traces seen so far.
//
// Requests are served concurrently; the Framework's query methods are safe
// against a writer appending windows, so a daemon can stay up while the
// knowledge base grows. Each request is bounded by a timeout, and a
// fixed-size in-flight limiter sheds excess load with 429 instead of
// queueing without bound.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"tara/internal/obs"
	"tara/internal/query"
	"tara/internal/tara"
)

// Config configures a Server. Zero values select sensible defaults.
type Config struct {
	// Framework is the knowledge base to serve. Required.
	Framework *tara.Framework
	// Logger receives one structured line per request. Defaults to
	// slog.Default().
	Logger *slog.Logger
	// RequestTimeout bounds each query request end to end; requests that
	// exceed it answer 503. Defaults to 10s.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently executing query requests; excess
	// requests are shed immediately with 429. Defaults to 256. Negative
	// disables the limiter.
	MaxInFlight int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// SlowTraces sizes the ring of slowest request traces kept for
	// /debug/slow. Non-positive selects 32.
	SlowTraces int
	// ByteCacheSize bounds the encoded-response byte cache (see
	// bytecache.go): the number of pre-encoded JSON bodies kept for the
	// cacheable query classes. Zero selects DefaultByteCacheSize; negative
	// disables the cache (every response is encoded per request).
	ByteCacheSize int
}

// Server answers TARA exploration queries over HTTP. Create with New; it is
// safe for concurrent use by any number of connections.
type Server struct {
	fw      *tara.Framework
	log     *slog.Logger
	timeout time.Duration
	limiter chan struct{} // nil = unlimited; buffered to MaxInFlight
	mux     *http.ServeMux
	metrics *registry
	// bcache serves pre-encoded response bytes for the cacheable query
	// classes; nil when Config.ByteCacheSize is negative.
	bcache *byteCache

	// delay, when set (tests only), runs inside each query handler after
	// the limiter slot is taken and before the query executes.
	delay func(endpoint string)
}

// endpoints maps each HTTP route to the query operation it decodes as (the
// same op names the textual syntax uses).
var endpoints = []struct{ path, op string }{
	{"/mine", "mine"},
	{"/count", "count"},
	{"/trajectory", "traj"},
	{"/diff", "compare"},
	{"/recommend", "recommend"},
	{"/rollup", "rollup"},
	{"/drill", "drill"},
	{"/content", "about"},
	{"/rank", "rank"},
	{"/periodic", "periodic"},
	{"/plot", "plot"},
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Framework == nil {
		return nil, fmt.Errorf("server: Config.Framework is required")
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	timeout := cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	slowTraces := cfg.SlowTraces
	if slowTraces <= 0 {
		slowTraces = 32
	}
	s := &Server{
		fw:      cfg.Framework,
		log:     log,
		timeout: timeout,
		mux:     http.NewServeMux(),
		metrics: newRegistry(slowTraces),
	}
	s.metrics.cacheStats = s.fw.CacheStats
	if cfg.ByteCacheSize >= 0 {
		s.bcache = newByteCache(cfg.ByteCacheSize)
		// Invalidate encoded bytes for a window the moment it commits, the
		// same per-window discipline as the framework's query cache.
		s.fw.OnAppend(s.bcache.invalidateWindow)
		s.metrics.byteStats = s.bcache.stats
	}
	switch {
	case cfg.MaxInFlight < 0:
		// unlimited
	case cfg.MaxInFlight == 0:
		s.limiter = make(chan struct{}, 256)
	default:
		s.limiter = make(chan struct{}, cfg.MaxInFlight)
	}

	for _, e := range endpoints {
		st := s.metrics.endpoint(e.path[1:])
		inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s.answer(e.path[1:], e.op, w, r)
		})
		h := http.TimeoutHandler(inner, timeout, `{"error":"request timed out"}`+"\n")
		s.mux.Handle(e.path, s.instrument(e.path[1:], st, h))
	}
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	s.mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.fw.Summarize())
	})
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			s.metrics.writePrometheus(w)
			return
		}
		writeJSON(w, http.StatusOK, s.metrics.snapshot())
	})
	s.mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.metrics.slow.Snapshot())
	})
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.metrics.publish()
	return s, nil
}

// Handler returns the root handler, ready to mount on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// instrument wraps a query route with tracing, request counting, latency
// observation and structured logging. The limiter and timeout live inside so
// that shed (429) and timed-out (503) requests are counted and timed like any
// other. Every request gets a trace: its ID comes from an inbound
// X-Request-ID header when present (so traces correlate across services) and
// is echoed back on the response. Stage durations are atomics, so a handler
// goroutine abandoned by the timeout wrapper can keep writing spans while
// this records the trace — the record is a safe point-in-time view.
func (s *Server) instrument(name string, st *endpointStats, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewID()
		}
		tr := obs.NewTrace(id)
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(obs.WithTrace(r.Context(), tr))

		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		d := time.Since(start)
		tr.Finish()
		st.requests.Add(1)
		if rec.status >= 400 {
			st.errors.Add(1)
		}
		st.latency.Observe(d)
		s.metrics.recordTrace(name, rec.status, start, tr)
		s.log.Info("request",
			"endpoint", name,
			"trace", id,
			"status", rec.status,
			"duration", d,
			"remote", r.RemoteAddr,
		)
	})
}

// answer decodes, executes and encodes one query request.
func (s *Server) answer(name, op string, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if s.limiter != nil {
		select {
		case s.limiter <- struct{}{}:
			defer func() { <-s.limiter }()
		default:
			s.metrics.shed.Add(1)
			writeError(w, http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
	}
	if s.delay != nil {
		s.delay(name)
	}
	tr := obs.FromContext(r.Context())
	sp := tr.Start(obs.StageDecode)
	values := r.URL.Query()
	if r.Method == http.MethodPost {
		if err := r.ParseForm(); err != nil {
			sp.End()
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		values = r.Form
	}
	q, err := query.FromValues(op, values)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.bcache != nil && values.Get("debug") != "trace" {
		if key, ok := s.byteCacheKeyFor(q); ok {
			s.answerCached(key, w, r, tr, q)
			return
		}
	}
	res, err := query.AnswerTraced(s.fw, q, tr)
	if err != nil {
		// The knowledge base is read-only: a failing query is a bad
		// request (window out of range, unknown rule, ...), not a
		// server fault.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if values.Get("debug") == "trace" {
		s.writeTraced(w, tr, res)
		return
	}
	sp = tr.Start(obs.StageEncode)
	writeJSON(w, http.StatusOK, res)
	sp.End()
}

// answerCached serves a byte-cacheable query. A warm hit writes the cached
// immutable body (or answers 304 on an If-None-Match match) under the
// encode-cached span without touching the knowledge base; a miss runs the
// normal pipeline, encodes once via json.Marshal plus the trailing newline —
// byte-identical to writeJSON's json.Encoder output — and stores the bytes
// for the next request.
func (s *Server) answerCached(key byteCacheKey, w http.ResponseWriter, r *http.Request, tr *obs.Trace, q query.Query) {
	if e, ok := s.bcache.get(key); ok {
		sp := tr.Start(obs.StageEncodeCached)
		w.Header().Set("ETag", e.etag)
		if etagMatches(r.Header.Get("If-None-Match"), e.etag) {
			s.bcache.notModified.Add(1)
			w.WriteHeader(http.StatusNotModified)
			sp.End()
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(e.body)
		sp.End()
		return
	}
	// The generation is read before the query executes: a window committing
	// in between can only make the stored tag over-discriminating (a fresh
	// tag for identical bytes), never make two different bodies share one.
	gen := s.fw.Generation()
	res, err := query.AnswerTraced(s.fw, q, tr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp := tr.Start(obs.StageEncode)
	body, err := json.Marshal(res)
	sp.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	body = append(body, '\n')
	etag := etagFor(gen, key)
	s.bcache.put(&byteCacheEntry{key: key, etag: etag, body: body})
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		s.bcache.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// tracedBody is the ?debug=trace response envelope: the normal result plus
// the request's per-stage breakdown.
type tracedBody struct {
	Result json.RawMessage `json:"result"`
	Trace  traceBody       `json:"trace"`
}

type traceBody struct {
	ID          string            `json:"id"`
	TotalMicros float64           `json:"totalMicros"`
	Stages      []obs.StageTiming `json:"stages"`
}

// writeTraced encodes res with the trace's stage breakdown attached. The
// result is pre-marshaled inside the encode span so the reported encode stage
// covers the real serialization work; only the small envelope is written
// outside it.
func (s *Server) writeTraced(w http.ResponseWriter, tr *obs.Trace, res any) {
	sp := tr.Start(obs.StageEncode)
	raw, err := json.Marshal(res)
	sp.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	tr.Finish()
	writeJSON(w, http.StatusOK, tracedBody{
		Result: raw,
		Trace: traceBody{
			ID:          tr.ID(),
			TotalMicros: float64(tr.Total()) / float64(time.Microsecond),
			Stages:      tr.Stages(),
		},
	})
}

// statusRecorder captures the status code written by the wrapped handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Too late for a status change; the connection will show the
		// truncated body.
		return
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}
