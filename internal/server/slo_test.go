package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tara/internal/obs"
)

// TestShedOrderingConsistency drives a MaxInFlight=1 server with enough
// concurrency that most requests are shed, while a reader loops over
// snapshots. The lock-free counters promise that every snapshot — taken at
// any instant, under -race — satisfies shed+timeouts+errors <= requests and
// latency.count <= requests, because requests is bumped on handler entry and
// outcome counters are loaded before requests.
func TestShedOrderingConsistency(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1, ByteCacheSize: -1})
	s.delay = func(string) { time.Sleep(200 * time.Microsecond) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := http.Get(ts.URL + "/mine?w=0&supp=0.02&conf=0.2")
				if err != nil {
					t.Errorf("GET /mine: %v", err)
					return
				}
				resp.Body.Close()
			}
		}()
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	var sawShed bool
	for time.Now().Before(deadline) {
		snap := s.metrics.snapshot()
		ep := snap.Endpoints["mine"]
		// A shed request is also an error (429 >= 400), so the counters
		// overlap; each one is individually bounded by requests.
		if ep.Shed > ep.Requests {
			t.Fatalf("snapshot violates ordering: shed=%d > requests=%d", ep.Shed, ep.Requests)
		}
		if ep.Timeouts > ep.Requests {
			t.Fatalf("snapshot violates ordering: timeouts=%d > requests=%d", ep.Timeouts, ep.Requests)
		}
		if ep.Errors > ep.Requests {
			t.Fatalf("snapshot violates ordering: errors=%d > requests=%d", ep.Errors, ep.Requests)
		}
		if ep.Latency.Count > ep.Requests {
			t.Fatalf("snapshot violates ordering: latency.count=%d > requests=%d", ep.Latency.Count, ep.Requests)
		}
		if ep.QueueWait.Count > ep.Requests {
			t.Fatalf("snapshot violates ordering: queueWait.count=%d > requests=%d", ep.QueueWait.Count, ep.Requests)
		}
		if ep.InFlight < 0 {
			t.Fatalf("snapshot violates ordering: inFlight=%d < 0", ep.InFlight)
		}
		if ep.Shed > 0 {
			sawShed = true
		}
	}
	stop.Store(true)
	wg.Wait()
	if !sawShed {
		t.Error("expected at least one shed request with MaxInFlight=1 and 8 clients")
	}
	snap := s.metrics.snapshot()
	if ep := snap.Endpoints["mine"]; ep.InFlight != 0 {
		t.Errorf("inFlight=%d after traffic stopped, want 0", ep.InFlight)
	}
}

// TestInFlightGauge parks one request inside the handler and watches the
// per-endpoint gauge rise to 1 and fall back to 0 after release.
func TestInFlightGauge(t *testing.T) {
	s := newTestServer(t, Config{ByteCacheSize: -1})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.delay = func(string) {
		close(entered)
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/count?w=0&supp=0.02&conf=0.2")
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	<-entered
	if got := s.metrics.snapshot().Endpoints["count"].InFlight; got != 1 {
		t.Errorf("inFlight while parked = %d, want 1", got)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("GET /count: %v", err)
	}
	if got := s.metrics.snapshot().Endpoints["count"].InFlight; got != 0 {
		t.Errorf("inFlight after completion = %d, want 0", got)
	}
}

// TestQueueWaitAdmission pins the single in-flight slot and checks the two
// admission policies: with a queue-wait budget the second request waits for
// the slot and succeeds; with none it is shed the moment the probe fails.
func TestQueueWaitAdmission(t *testing.T) {
	t.Run("bounded wait admits", func(t *testing.T) {
		s := newTestServer(t, Config{MaxInFlight: 1, QueueWait: 5 * time.Second, ByteCacheSize: -1})
		entered := make(chan struct{}, 1)
		release := make(chan struct{})
		var first atomic.Bool
		s.delay = func(string) {
			if first.CompareAndSwap(false, true) {
				entered <- struct{}{}
				<-release
			}
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		done := make(chan int, 1)
		go func() {
			st, _ := get(t, ts.URL, "/mine?w=0&supp=0.02&conf=0.2")
			done <- st
		}()
		<-entered // holder owns the slot

		second := make(chan int, 1)
		go func() {
			st, _ := get(t, ts.URL, "/mine?w=1&supp=0.02&conf=0.2")
			second <- st
		}()
		// Give the second request time to reach the queue, then free the slot.
		time.Sleep(50 * time.Millisecond)
		close(release)

		if st := <-done; st != http.StatusOK {
			t.Errorf("holder status = %d, want 200", st)
		}
		if st := <-second; st != http.StatusOK {
			t.Errorf("queued request status = %d, want 200 (admitted after wait)", st)
		}
		ep := s.metrics.snapshot().Endpoints["mine"]
		if ep.Shed != 0 {
			t.Errorf("shed = %d, want 0 with a 5s queue-wait budget", ep.Shed)
		}
		if ep.QueueWait.Count != 2 {
			t.Errorf("queueWait.count = %d, want 2 (both requests admitted)", ep.QueueWait.Count)
		}
	})

	t.Run("zero wait sheds", func(t *testing.T) {
		s := newTestServer(t, Config{MaxInFlight: 1, QueueWait: 0, ByteCacheSize: -1})
		entered := make(chan struct{}, 1)
		release := make(chan struct{})
		var first atomic.Bool
		s.delay = func(string) {
			if first.CompareAndSwap(false, true) {
				entered <- struct{}{}
				<-release
			}
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		done := make(chan int, 1)
		go func() {
			st, _ := get(t, ts.URL, "/mine?w=0&supp=0.02&conf=0.2")
			done <- st
		}()
		<-entered

		st, body := get(t, ts.URL, "/mine?w=1&supp=0.02&conf=0.2")
		if st != http.StatusTooManyRequests {
			t.Errorf("second request status = %d, want 429: %s", st, body)
		}
		close(release)
		if st := <-done; st != http.StatusOK {
			t.Errorf("holder status = %d, want 200", st)
		}
		ep := s.metrics.snapshot().Endpoints["mine"]
		if ep.Shed != 1 {
			t.Errorf("shed = %d, want 1", ep.Shed)
		}
		if ep.QueueWait.Count != 1 {
			t.Errorf("queueWait.count = %d, want 1 (shed requests never observe it)", ep.QueueWait.Count)
		}
	})
}

// TestSlowClassFilter exercises /debug/slow?class=: traffic on two endpoints
// of different query classes, then the filtered view must contain only the
// requested class while the unfiltered view contains both.
func TestSlowClassFilter(t *testing.T) {
	s := newTestServer(t, Config{SlowTraces: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if st, body := get(t, ts.URL, fmt.Sprintf("/mine?w=%d&supp=0.02&conf=0.2", i)); st != http.StatusOK {
			t.Fatalf("GET /mine: %d: %s", st, body)
		}
		if st, body := get(t, ts.URL, fmt.Sprintf("/count?w=%d&supp=0.02&conf=0.2", i)); st != http.StatusOK {
			t.Fatalf("GET /count: %d: %s", st, body)
		}
	}

	decode := func(path string) []obs.SlowTrace {
		st, body := get(t, ts.URL, path)
		if st != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, st, body)
		}
		var traces []obs.SlowTrace
		if err := json.Unmarshal(body, &traces); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
		return traces
	}

	all := decode("/debug/slow")
	classes := map[string]bool{}
	for _, tr := range all {
		classes[tr.Class] = true
	}
	if !classes["mine"] || !classes["count"] {
		t.Fatalf("unfiltered /debug/slow classes = %v, want both mine and count", classes)
	}

	mineOnly := decode("/debug/slow?class=mine")
	if len(mineOnly) == 0 {
		t.Fatal("/debug/slow?class=mine returned no traces")
	}
	for _, tr := range mineOnly {
		if tr.Class != "mine" {
			t.Errorf("filtered trace has class %q endpoint %q, want class mine", tr.Class, tr.Endpoint)
		}
	}
	if len(mineOnly) >= len(all) {
		t.Errorf("filter removed nothing: %d filtered vs %d total", len(mineOnly), len(all))
	}

	if none := decode("/debug/slow?class=nosuch"); len(none) != 0 {
		t.Errorf("/debug/slow?class=nosuch returned %d traces, want 0", len(none))
	}
}

// TestPprofGating checks that /debug/pprof/ is absent by default, present
// with EnablePprof, and that enabling it logs the exposure warning.
func TestPprofGating(t *testing.T) {
	t.Run("default off", func(t *testing.T) {
		s := newTestServer(t, Config{})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		st, _ := get(t, ts.URL, "/debug/pprof/")
		if st != http.StatusNotFound {
			t.Errorf("GET /debug/pprof/ without -pprof = %d, want 404", st)
		}
	})

	t.Run("opt-in on with warning", func(t *testing.T) {
		var logBuf bytes.Buffer
		s := newTestServer(t, Config{
			EnablePprof: true,
			Logger:      slog.New(slog.NewTextHandler(&logBuf, nil)),
		})
		if !strings.Contains(logBuf.String(), "pprof enabled") {
			t.Errorf("enabling pprof logged no warning: %q", logBuf.String())
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		st, body := get(t, ts.URL, "/debug/pprof/")
		if st != http.StatusOK {
			t.Errorf("GET /debug/pprof/ with -pprof = %d: %s", st, body)
		}
		if !bytes.Contains(body, []byte("goroutine")) {
			t.Errorf("pprof index does not list profiles: %s", body)
		}
	})
}
