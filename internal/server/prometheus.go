package server

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"time"

	"tara/internal/obs"
)

// Prometheus text exposition (version 0.0.4) for /metrics?format=prometheus.
// Rendered straight from the registry's atomics — no intermediate snapshot —
// so histogram buckets, sums and counts come from one consistent read order
// (obs.Hist.Snapshot) per series.

// writePrometheus renders the registry in Prometheus text format.
func (r *registry) writePrometheus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeGauge(w, "tarad_uptime_seconds", "Seconds since the server registry was created.", time.Since(r.start).Seconds())
	writeGauge(w, "tarad_goroutines", "Number of live goroutines.", float64(runtime.NumGoroutine()))
	if r.kbLoadMode != "" {
		writeGauge(w, "tarad_kb_load_millis", "Startup knowledge-base load (or build) duration in milliseconds.", float64(r.kbLoadMillis))
		fmt.Fprintf(w, "# HELP tarad_kb_load_info Knowledge-base load mode at startup; the value is always 1.\n# TYPE tarad_kb_load_info gauge\ntarad_kb_load_info{mode=%q} 1\n", r.kbLoadMode)
	}
	if r.kbResidency != nil {
		bytes, mapped := r.kbResidency()
		writeGauge(w, "tarad_kb_archive_bytes", "TAR Archive encoded footprint in bytes.", float64(bytes))
		var m float64
		if mapped {
			m = 1
		}
		writeGauge(w, "tarad_kb_archive_mapped", "1 when the archive payload is still mmap-aliased, 0 once promoted to the heap.", m)
	}
	writeRuntime(w)
	writeCounter(w, "tarad_shed_requests_total", "Requests shed with 429 by the in-flight limiter.", float64(r.shed.Load()))
	if r.admission != nil {
		writeAdmission(w, r.admission())
	}

	if r.cacheStats != nil {
		cs := r.cacheStats()
		writeCounter(w, "tarad_query_cache_hits_total", "Query-cache hits.", float64(cs.Hits))
		writeCounter(w, "tarad_query_cache_misses_total", "Query-cache misses.", float64(cs.Misses))
		writeCounter(w, "tarad_query_cache_evictions_total", "Query-cache evictions.", float64(cs.Evictions))
		writeGauge(w, "tarad_query_cache_entries", "Query-cache resident entries.", float64(cs.Entries))
	}

	if r.byteStats != nil {
		bs := r.byteStats()
		writeCounter(w, "tarad_response_cache_requests_total", "Byte-cacheable requests probed against the encoded-response cache.", float64(bs.Requests))
		writeCounter(w, "tarad_response_cache_hits_total", "Encoded-response cache hits served from cached bytes.", float64(bs.Hits))
		writeCounter(w, "tarad_response_cache_misses_total", "Encoded-response cache misses.", float64(bs.Misses))
		writeCounter(w, "tarad_response_cache_not_modified_total", "Conditional requests answered 304 via ETag match.", float64(bs.NotModified))
		writeCounter(w, "tarad_response_cache_evictions_total", "Encoded-response cache evictions.", float64(bs.Evictions))
		writeCounter(w, "tarad_response_cache_invalidations_total", "Encoded responses dropped by per-window invalidation.", float64(bs.Invalidations))
		writeCounter(w, "tarad_response_cache_coalesced_total", "Requests that joined another request's in-progress encode instead of encoding themselves.", float64(bs.Coalesced))
		writeGauge(w, "tarad_response_cache_entries", "Encoded-response cache resident entries.", float64(bs.Entries))
	}

	if r.trajStats != nil {
		ts := r.trajStats()
		var built float64
		if ts.Built {
			built = 1
		}
		writeGauge(w, "tarad_traj_snapshot_built", "1 when a columnar trajectory snapshot is resident, 0 before the first trajectory query.", built)
		writeGauge(w, "tarad_traj_snapshot_generation", "KB generation the resident trajectory snapshot was built from.", float64(ts.Generation))
		writeGauge(w, "tarad_traj_snapshot_rules", "Rule rows in the resident trajectory snapshot.", float64(ts.Rules))
		writeGauge(w, "tarad_traj_snapshot_windows", "Windows in the resident trajectory snapshot.", float64(ts.Windows))
		writeGauge(w, "tarad_traj_snapshot_bytes", "Estimated resident size of the trajectory snapshot's columns.", float64(ts.MemBytes))
		writeCounter(w, "tarad_traj_snapshot_rebuilds_total", "Columnar trajectory snapshot builds since process start.", float64(ts.Rebuilds))
	}

	names := make([]string, 0, len(r.endpoints))
	for name := range r.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintln(w, "# HELP tarad_requests_total Requests handled, by endpoint.")
	fmt.Fprintln(w, "# TYPE tarad_requests_total counter")
	for _, name := range names {
		fmt.Fprintf(w, "tarad_requests_total{endpoint=%q} %d\n", name, r.endpoints[name].requests.Load())
	}
	fmt.Fprintln(w, "# HELP tarad_request_errors_total Requests answered with status >= 400, by endpoint.")
	fmt.Fprintln(w, "# TYPE tarad_request_errors_total counter")
	for _, name := range names {
		fmt.Fprintf(w, "tarad_request_errors_total{endpoint=%q} %d\n", name, r.endpoints[name].errors.Load())
	}
	fmt.Fprintln(w, "# HELP tarad_response_write_failures_total Responses whose body encode or wire write failed after the status line, by endpoint.")
	fmt.Fprintln(w, "# TYPE tarad_response_write_failures_total counter")
	for _, name := range names {
		fmt.Fprintf(w, "tarad_response_write_failures_total{endpoint=%q} %d\n", name, r.endpoints[name].writeFailures.Load())
	}
	fmt.Fprintln(w, "# HELP tarad_request_shed_total Requests shed with 429 by the admission limiter, by endpoint.")
	fmt.Fprintln(w, "# TYPE tarad_request_shed_total counter")
	for _, name := range names {
		fmt.Fprintf(w, "tarad_request_shed_total{endpoint=%q} %d\n", name, r.endpoints[name].shed.Load())
	}
	fmt.Fprintln(w, "# HELP tarad_request_timeouts_total Requests cut off with 503 by the per-request timeout, by endpoint.")
	fmt.Fprintln(w, "# TYPE tarad_request_timeouts_total counter")
	for _, name := range names {
		fmt.Fprintf(w, "tarad_request_timeouts_total{endpoint=%q} %d\n", name, r.endpoints[name].timeouts.Load())
	}
	fmt.Fprintln(w, "# HELP tarad_in_flight_requests Requests currently executing or queued for an in-flight slot, by endpoint.")
	fmt.Fprintln(w, "# TYPE tarad_in_flight_requests gauge")
	for _, name := range names {
		fmt.Fprintf(w, "tarad_in_flight_requests{endpoint=%q} %d\n", name, r.endpoints[name].inFlight.Load())
	}

	fmt.Fprintln(w, "# HELP tarad_request_duration_seconds Request latency, by endpoint.")
	fmt.Fprintln(w, "# TYPE tarad_request_duration_seconds histogram")
	for _, name := range names {
		writeHistSeries(w, "tarad_request_duration_seconds", "endpoint", name, r.endpoints[name].latency.Snapshot())
	}

	fmt.Fprintln(w, "# HELP tarad_queue_wait_seconds Admission-queue wait of admitted requests, by endpoint.")
	fmt.Fprintln(w, "# TYPE tarad_queue_wait_seconds histogram")
	for _, name := range names {
		writeHistSeries(w, "tarad_queue_wait_seconds", "endpoint", name, r.endpoints[name].queueWait.Snapshot())
	}

	fmt.Fprintln(w, "# HELP tarad_stage_duration_seconds Per-stage query latency, aggregated over traced requests.")
	fmt.Fprintln(w, "# TYPE tarad_stage_duration_seconds histogram")
	for _, s := range obs.Stages() {
		if h := &r.stages[s]; h.Count() > 0 {
			writeHistSeries(w, "tarad_stage_duration_seconds", "stage", s.String(), h.Snapshot())
		}
	}
}

// writeAdmission renders the admission layer: the limit in force (labeled
// per QoS class, with class="total" for the whole semaphore), occupancy, and
// — in adaptive mode — the controller's baseline, its per-window decision
// counters, and the per-class shed/borrow counters the QoS weighting exists
// to explain.
func writeAdmission(w io.Writer, a AdmissionSnapshot) {
	fmt.Fprintf(w, "# HELP tarad_admission_info Admission mode in force; the value is always 1.\n# TYPE tarad_admission_info gauge\ntarad_admission_info{mode=%q} 1\n", a.Mode)
	fmt.Fprintln(w, "# HELP tarad_admission_limit In-flight limit in force, by QoS class (class=\"total\" is the whole semaphore; per-class values are guaranteed shares).")
	fmt.Fprintln(w, "# TYPE tarad_admission_limit gauge")
	fmt.Fprintf(w, "tarad_admission_limit{class=\"total\"} %d\n", a.Limit)
	for _, c := range a.Classes {
		fmt.Fprintf(w, "tarad_admission_limit{class=%q} %d\n", c.Class, c.Limit)
	}
	fmt.Fprintln(w, "# HELP tarad_admission_in_flight Admission slots held, by QoS class.")
	fmt.Fprintln(w, "# TYPE tarad_admission_in_flight gauge")
	fmt.Fprintf(w, "tarad_admission_in_flight{class=\"total\"} %d\n", a.InFlight)
	for _, c := range a.Classes {
		fmt.Fprintf(w, "tarad_admission_in_flight{class=%q} %d\n", c.Class, c.InFlight)
	}
	if len(a.Classes) > 0 {
		fmt.Fprintln(w, "# HELP tarad_admission_requests_total Admission attempts, by QoS class.")
		fmt.Fprintln(w, "# TYPE tarad_admission_requests_total counter")
		for _, c := range a.Classes {
			fmt.Fprintf(w, "tarad_admission_requests_total{class=%q} %d\n", c.Class, c.Requests)
		}
		fmt.Fprintln(w, "# HELP tarad_admission_shed_total Admission attempts refused (429), by QoS class.")
		fmt.Fprintln(w, "# TYPE tarad_admission_shed_total counter")
		for _, c := range a.Classes {
			fmt.Fprintf(w, "tarad_admission_shed_total{class=%q} %d\n", c.Class, c.Shed)
		}
		fmt.Fprintln(w, "# HELP tarad_admission_borrowed_total Admissions that borrowed another QoS class's idle share.")
		fmt.Fprintln(w, "# TYPE tarad_admission_borrowed_total counter")
		for _, c := range a.Classes {
			fmt.Fprintf(w, "tarad_admission_borrowed_total{class=%q} %d\n", c.Class, c.Borrowed)
		}
	}
	if a.Mode == "adaptive" {
		writeGauge(w, "tarad_admission_baseline_p99_seconds", "AIMD controller's drift-bounded minimum of windowed p99 service latency.", a.BaselineP99Micros/1e6)
		fmt.Fprintln(w, "# HELP tarad_admission_limit_changes_total AIMD controller limit decisions, by direction (hold = no change).")
		fmt.Fprintln(w, "# TYPE tarad_admission_limit_changes_total counter")
		fmt.Fprintf(w, "tarad_admission_limit_changes_total{direction=\"up\"} %d\n", a.Increases)
		fmt.Fprintf(w, "tarad_admission_limit_changes_total{direction=\"down\"} %d\n", a.Decreases)
		fmt.Fprintf(w, "tarad_admission_limit_changes_total{direction=\"hold\"} %d\n", a.Holds)
	}
}

func writeGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

func writeCounter(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
}

// writeRuntime emits the Go runtime resource series: heap gauges, GC cycle
// counter, and the GC-pause / scheduler-latency distributions re-bucketed
// from runtime/metrics. These are the series that explain tail latency —
// pauses for p99.9 spikes, scheduler latency for CPU saturation.
func writeRuntime(w io.Writer) {
	rt := obs.ReadRuntime()
	writeGauge(w, "tarad_go_heap_live_bytes", "Bytes of live heap objects.", float64(rt.HeapLiveBytes))
	writeGauge(w, "tarad_go_heap_goal_bytes", "Heap size the garbage collector is aiming to keep under.", float64(rt.HeapGoalBytes))
	writeCounter(w, "tarad_go_gc_cycles_total", "Completed GC cycles since process start.", float64(rt.GCCycles))
	writeRuntimeHist(w, "tarad_go_gc_pause_seconds", "Distribution of stop-the-world GC pause latencies.", rt.GCPause)
	writeRuntimeHist(w, "tarad_go_sched_latency_seconds", "Distribution of time goroutines spent runnable before running.", rt.SchedLatency)
}

// writeRuntimeHist renders a RuntimeHist as an unlabeled Prometheus
// histogram. Zero-count buckets are elided (the runtime exports hundreds of
// fine-grained buckets, nearly all empty); cumulative counts stay exact
// because elision only skips repeat values. runtime/metrics does not track a
// duration sum, so the _sum sample is omitted — scrapers derive rates from
// _count and the bucket distribution.
func writeRuntimeHist(w io.Writer, name, help string, h obs.RuntimeHist) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if c == 0 || i >= len(h.Bounds) {
			continue
		}
		b := h.Bounds[i]
		if b > 1e300 { // +Inf terminal bucket: the explicit +Inf line covers it
			continue
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// writeHistSeries emits one labeled histogram series: cumulative _bucket
// lines with power-of-two le bounds (in seconds), then _sum and _count. The
// +Inf bucket and _count both use the bucket total, which under concurrent
// observation can momentarily exceed the count field of the snapshot — the
// exposition stays internally consistent either way.
func writeHistSeries(w io.Writer, name, label, value string, snap obs.HistSnapshot) {
	var cum uint64
	for i, c := range snap.Buckets {
		cum += c
		if c == 0 && i > 20 {
			// Skip empty tail buckets beyond ~1s to bound output; the +Inf
			// line below still closes the series.
			continue
		}
		le := float64(obs.BucketBound(i)) / 1e6
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"%g\"} %d\n", name, label, value, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, value, cum)
	fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, label, value, float64(snap.SumMicros)/1e6)
	fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, value, cum)
}
