package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"tara/internal/gen"
	"tara/internal/mining"
	"tara/internal/tara"
)

// getWithHeaders performs a GET returning status, body and the response
// headers, for the ETag/If-None-Match tests.
func getWithHeaders(t *testing.T, base, path string, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, body, resp.Header
}

// TestByteCacheDifferential proves the byte cache is invisible to clients:
// every query class answers with byte-identical status and body whether the
// cache is enabled or disabled, including warm repeats served straight from
// cached bytes. The cached server is hammered by concurrent clients so that
// under -race this doubles as the cache's data-race check.
func TestByteCacheDifferential(t *testing.T) {
	fw := testFramework(t)
	cached := newTestServer(t, Config{})                 // byte cache on (default size)
	plain := newTestServer(t, Config{ByteCacheSize: -1}) // byte cache off
	tsCached := httptest.NewServer(cached.Handler())
	defer tsCached.Close()
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()

	item := url.QueryEscape(anItemName(t, fw))
	paths := []string{
		// Byte-cacheable classes: mine (with and without a lift filter),
		// count, recommend without lift.
		"/mine?w=0&supp=0.02&conf=0.2",
		"/mine?w=1&supp=0.02&conf=0.2&lift=1.1",
		"/count?w=0&supp=0.02&conf=0.2",
		"/count?w=2&supp=0.05&conf=0.3",
		"/recommend?w=1&supp=0.02&conf=0.2",
		// Not byte-cacheable: ND recommend, multi-window and content classes
		// must flow through the normal path identically.
		"/recommend?w=1&supp=0.02&conf=0.2&lift=1.1",
		"/trajectory?w=0&supp=0.02&conf=0.2&in=0,1,2,3",
		"/diff?w=0,1,2,3&a=0.02,0.2&b=0.05,0.3",
		"/rollup?from=0&to=3&supp=0.02&conf=0.2",
		"/drill?rule=0&from=0&to=3",
		"/content?w=0&supp=0.02&conf=0.2&items=" + item,
		"/rank?from=0&to=3&supp=0.02&conf=0.2&k=5",
		"/periodic?from=0&to=3&supp=0.02&conf=0.2&period=2&k=5",
		"/plot?w=0",
	}

	// Reference answers from the cache-disabled server.
	want := make(map[string]struct {
		code int
		body []byte
	}, len(paths))
	for _, p := range paths {
		code, body := get(t, tsPlain.URL, p)
		want[p] = struct {
			code int
			body []byte
		}{code, body}
	}

	// Hammer the cached server: 8 concurrent clients, several iterations per
	// path, so the first touch is a miss and every later one a warm hit — all
	// must be byte-identical to the cache-disabled reference.
	const clients = 8
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, p := range paths {
					resp, err := http.Get(tsCached.URL + p)
					if err != nil {
						errs <- fmt.Errorf("GET %s: %v", p, err)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errs <- fmt.Errorf("GET %s: read: %v", p, err)
						return
					}
					w := want[p]
					if resp.StatusCode != w.code {
						errs <- fmt.Errorf("GET %s: status %d, want %d", p, resp.StatusCode, w.code)
						return
					}
					if !bytes.Equal(body, w.body) {
						errs <- fmt.Errorf("GET %s: cached body diverges:\n got %s\nwant %s", p, body, w.body)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := cached.bcache.stats()
	if st.Hits == 0 {
		t.Fatalf("differential run never hit the byte cache: %+v", st)
	}
	if st.Requests < st.Hits+st.Misses {
		t.Fatalf("counter ordering violated in final stats: %+v", st)
	}
	if ps := plain.bcache.stats(); ps.Enabled || ps.Requests != 0 {
		t.Fatalf("disabled byte cache recorded traffic: %+v", ps)
	}
}

// TestByteCacheETagAndNotModified covers the conditional-request protocol:
// cacheable answers carry a strong ETag, If-None-Match short-circuits to an
// empty 304 on both the warm and cold paths, and non-cacheable responses
// carry no ETag at all.
func TestByteCacheETagAndNotModified(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const path = "/mine?w=0&supp=0.02&conf=0.2"
	code, body, hdr := getWithHeaders(t, ts.URL, path, nil)
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("first GET: status %d, %d body bytes", code, len(body))
	}
	etag := hdr.Get("ETag")
	if etag == "" || etag[0] != '"' {
		t.Fatalf("missing or unquoted ETag: %q", etag)
	}

	// Warm conditional: 304, empty body, same tag.
	code, b304, hdr := getWithHeaders(t, ts.URL, path, map[string]string{"If-None-Match": etag})
	if code != http.StatusNotModified || len(b304) != 0 {
		t.Fatalf("warm conditional: status %d, %d body bytes, want 304 empty", code, len(b304))
	}
	if hdr.Get("ETag") != etag {
		t.Fatalf("304 carries tag %q, want %q", hdr.Get("ETag"), etag)
	}

	// Cold conditional: a fresh server (empty cache) over the same knowledge
	// base derives the same generation-keyed tag, so the miss path must also
	// answer 304.
	s2 := newTestServer(t, Config{})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	code, b304, _ = getWithHeaders(t, ts2.URL, path, map[string]string{"If-None-Match": etag})
	if code != http.StatusNotModified || len(b304) != 0 {
		t.Fatalf("cold conditional: status %d, %d body bytes, want 304 empty", code, len(b304))
	}

	// Stale or foreign tags must get the full body; * matches anything.
	code, full, _ := getWithHeaders(t, ts.URL, path, map[string]string{"If-None-Match": `"0123456789abcdef"`})
	if code != http.StatusOK || !bytes.Equal(full, body) {
		t.Fatalf("mismatched tag: status %d, body equal=%v", code, bytes.Equal(full, body))
	}
	code, _, _ = getWithHeaders(t, ts.URL, path, map[string]string{"If-None-Match": `"nope", ` + etag})
	if code != http.StatusNotModified {
		t.Fatalf("tag list containing the entity tag: status %d, want 304", code)
	}
	code, _, _ = getWithHeaders(t, ts.URL, path, map[string]string{"If-None-Match": "*"})
	if code != http.StatusNotModified {
		t.Fatalf("If-None-Match: *: status %d, want 304", code)
	}

	// A different cut point must answer with a different tag.
	_, _, hdr2 := getWithHeaders(t, ts.URL, "/mine?w=0&supp=0.05&conf=0.3", nil)
	if tag2 := hdr2.Get("ETag"); tag2 == "" || tag2 == etag {
		t.Fatalf("distinct cut shares tag: %q vs %q", tag2, etag)
	}

	// Non-cacheable classes and the trace debug path carry no ETag.
	for _, p := range []string{
		"/diff?w=0,1,2,3&a=0.02,0.2&b=0.05,0.3",
		"/recommend?w=1&supp=0.02&conf=0.2&lift=1.1",
		path + "&debug=trace",
	} {
		code, _, hdr := getWithHeaders(t, ts.URL, p, nil)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d", p, code)
		}
		if tag := hdr.Get("ETag"); tag != "" {
			t.Errorf("GET %s: unexpected ETag %q on uncacheable response", p, tag)
		}
	}

	if st := s.bcache.stats(); st.NotModified < 3 {
		t.Fatalf("notModified counter = %d, want >= 3: %+v", st.NotModified, st)
	}
}

// TestByteCacheDisabled: a negative ByteCacheSize must leave the cache out of
// the pipeline entirely — no ETag headers, no response-cache metrics.
func TestByteCacheDisabled(t *testing.T) {
	s := newTestServer(t, Config{ByteCacheSize: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if s.bcache != nil {
		t.Fatal("bcache constructed despite ByteCacheSize=-1")
	}
	code, _, hdr := getWithHeaders(t, ts.URL, "/mine?w=0&supp=0.02&conf=0.2", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if tag := hdr.Get("ETag"); tag != "" {
		t.Fatalf("ETag %q present with cache disabled", tag)
	}
	code, body := get(t, ts.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ResponseCache.Enabled {
		t.Fatalf("responseCache enabled in /metrics with cache off: %+v", snap.ResponseCache)
	}
}

// TestByteCacheInvalidationOnAppend is the staleness property test: when a
// window commits, exactly that window's encoded bytes are dropped — entries
// for other windows survive — and a subsequent identical query returns the
// updated bytes under a fresh ETag, never a stale poisoned body.
//
// The serving framework holds windows 0..2; a twin framework built with all
// four windows acts as the oracle, both for the correct window-3 body and for
// the canonical cut the window-3 query will map to — which lets the test
// plant a poisoned cache entry under the exact key the real query will probe
// after the append.
func TestByteCacheInvalidationOnAppend(t *testing.T) {
	db, err := gen.Retail(gen.RetailParams{Transactions: 400, NumItems: 40, AvgLen: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	windows, err := db.PartitionByCount(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tara.Config{
		GenMinSupport: 0.01,
		GenMinConf:    0.1,
		MaxItemsetLen: 3,
		Miner:         mining.Eclat{},
	}
	serving := tara.New(db.Dict, cfg)
	oracle := tara.New(db.Dict, cfg)
	for i, w := range windows {
		if err := oracle.AppendWindow(w); err != nil {
			t.Fatal(err)
		}
		if i < 3 {
			if err := serving.AppendWindow(w); err != nil {
				t.Fatal(err)
			}
		}
	}

	s := newTestServer(t, Config{Framework: serving})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	so := newTestServer(t, Config{Framework: oracle, ByteCacheSize: -1})
	tso := httptest.NewServer(so.Handler())
	defer tso.Close()

	const supp, conf = 0.02, 0.2
	pathFor := func(w int) string { return fmt.Sprintf("/count?w=%d&supp=%g&conf=%g", w, supp, conf) }

	// Warm the cache for the existing windows and remember their bodies.
	bodies := make([][]byte, 3)
	for w := 0; w < 3; w++ {
		code, body := get(t, ts.URL, pathFor(w))
		if code != http.StatusOK {
			t.Fatalf("warming window %d: status %d", w, code)
		}
		bodies[w] = body
	}

	// Plant a poisoned entry under the key the post-append window-3 query
	// will use. The builds are deterministic, so the oracle's canonical cut
	// for window 3 is the cut the serving framework will have after its own
	// append.
	si, ci, err := oracle.CanonicalCut(3, supp, conf)
	if err != nil {
		t.Fatal(err)
	}
	poisonKey := byteCacheKey{class: byteCount, window: 3, cut: cutKey(si, ci)}
	poisonTag := `"feedfacefeedface"`
	s.bcache.put(&byteCacheEntry{key: poisonKey, etag: poisonTag, body: []byte(`{"poisoned":true}` + "\n")})

	entriesBefore := s.bcache.entries()
	if entriesBefore != 4 {
		t.Fatalf("expected 4 resident entries before append, have %d", entriesBefore)
	}

	// The append must fire the OnAppend hook and drop exactly the window-3
	// entry: the poisoned body, and nothing else.
	if err := serving.AppendWindow(windows[3]); err != nil {
		t.Fatal(err)
	}
	st := s.bcache.stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want exactly 1 (the poisoned window-3 entry): %+v", st.Invalidations, st)
	}
	if st.Entries != 3 {
		t.Fatalf("entries = %d after invalidation, want 3 untouched windows", st.Entries)
	}

	// Untouched windows still answer from cache with unchanged bytes.
	hitsBefore := st.Hits
	for w := 0; w < 3; w++ {
		code, body := get(t, ts.URL, pathFor(w))
		if code != http.StatusOK || !bytes.Equal(body, bodies[w]) {
			t.Fatalf("window %d after append: status %d, body changed=%v", w, code, !bytes.Equal(body, bodies[w]))
		}
	}
	if st := s.bcache.stats(); st.Hits < hitsBefore+3 {
		t.Fatalf("untouched windows did not serve from cache: hits %d -> %d", hitsBefore, st.Hits)
	}

	// The touched window must answer freshly: correct bytes (oracle agrees),
	// not the poisoned body, under a tag that is not the poisoned tag.
	code, fresh, hdr := getWithHeaders(t, ts.URL, pathFor(3), nil)
	if code != http.StatusOK {
		t.Fatalf("window 3 after append: status %d", code)
	}
	if bytes.Contains(fresh, []byte("poisoned")) {
		t.Fatalf("stale poisoned body served after append: %s", fresh)
	}
	_, want := get(t, tso.URL, pathFor(3))
	if !bytes.Equal(fresh, want) {
		t.Fatalf("window 3 body diverges from oracle:\n got %s\nwant %s", fresh, want)
	}
	if tag := hdr.Get("ETag"); tag == "" || tag == poisonTag {
		t.Fatalf("window 3 answered under stale tag %q", tag)
	}
}

// TestByteCacheStatsOrderingUnderLoad snapshots the response-cache counters
// while concurrent clients drive cacheable traffic and asserts the ordering
// invariants — hits <= requests and hits+misses <= requests — hold in every
// mid-flight snapshot. Run under -race this also exercises the snapshot path
// against concurrent counter updates.
func TestByteCacheStatsOrderingUnderLoad(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	paths := []string{
		"/mine?w=0&supp=0.02&conf=0.2",
		"/count?w=1&supp=0.02&conf=0.2",
		"/count?w=2&supp=0.05&conf=0.3",
		"/recommend?w=3&supp=0.02&conf=0.2",
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				p := paths[(seed+i)%len(paths)]
				resp, err := http.Get(ts.URL + p)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	// Snapshot continuously until the traffic drains; every snapshot, however
	// it interleaves with in-flight counter updates, must satisfy the
	// ordering invariants.
	for i := 0; ; i++ {
		st := s.bcache.stats()
		if st.Hits > st.Requests {
			t.Fatalf("snapshot %d: hits %d > requests %d", i, st.Hits, st.Requests)
		}
		if st.Hits+st.Misses > st.Requests {
			t.Fatalf("snapshot %d: hits %d + misses %d > requests %d", i, st.Hits, st.Misses, st.Requests)
		}
		if st.HitRatio < 0 || st.HitRatio > 1 {
			t.Fatalf("snapshot %d: hit ratio %v out of range", i, st.HitRatio)
		}
		select {
		case <-finished:
			if st := s.bcache.stats(); st.Hits == 0 {
				t.Fatalf("load test never hit the cache: %+v", st)
			}
			return
		default:
		}
	}
}

// TestByteCacheLRUAndSameKeyPut: unit coverage for the shard mechanics —
// the LRU bound holds with evictions counted, and a same-key put keeps the
// resident entry (the key is a lossless function of the body).
func TestByteCacheLRUAndSameKeyPut(t *testing.T) {
	c := newByteCache(byteCacheShards) // one entry per shard
	for i := 0; i < 10*byteCacheShards; i++ {
		c.put(&byteCacheEntry{
			key:  byteCacheKey{class: byteMine, window: int32(i), cut: cutKey(i, i)},
			etag: fmt.Sprintf("%q", fmt.Sprintf("%016x", i)),
			body: []byte("{}\n"),
		})
	}
	if n := c.entries(); n > byteCacheShards {
		t.Fatalf("cache holds %d entries, cap %d", n, byteCacheShards)
	}
	if c.evictions.Load() == 0 {
		t.Fatal("no evictions recorded")
	}

	k := byteCacheKey{class: byteCount, window: 7, cut: cutKey(1, 2)}
	first := &byteCacheEntry{key: k, etag: `"a"`, body: []byte(`1` + "\n")}
	c.put(first)
	c.put(&byteCacheEntry{key: k, etag: `"b"`, body: []byte(`2` + "\n")})
	if e, ok := c.get(k); !ok || e != first {
		t.Fatalf("same-key put replaced the resident entry: %+v", e)
	}
}

func TestEtagMatches(t *testing.T) {
	const tag = `"00c0ffee00c0ffee"`
	cases := []struct {
		name   string
		header string
		etag   string
		want   bool
	}{
		{"empty header", "", tag, false},
		{"exact", tag, tag, true},
		{"star", "*", tag, true},
		{"other tag", `"other"`, tag, false},
		{"list containing tag", `"other", ` + tag, tag, true},
		{"surrounding space", ` ` + tag + ` `, tag, true},
		{"list without tag", `"other", "another"`, tag, false},

		// RFC 9110 §13.1.2: If-None-Match uses WEAK comparison — a W/
		// prefix on either side is ignored; only the opaque tags must match.
		// This is what an origin sees behind a proxy (e.g. nginx) that
		// downgrades tags to weak when it re-compresses bodies.
		{"weak candidate vs strong tag", `W/` + tag, tag, true},
		{"weak candidate in list", `"other", W/` + tag, tag, true},
		{"strong candidate vs weak tag", tag, `W/` + tag, true},
		{"weak vs weak", `W/` + tag, `W/` + tag, true},
		{"weak candidate, different opaque", `W/"other"`, tag, false},

		// Entity-tag list parsing: commas are legal inside a quoted opaque
		// tag, so the header must be parsed as quoted strings, not split
		// blindly on commas.
		{"comma inside tag, match", `"a,b"`, `"a,b"`, true},
		{"comma inside tag, no match", `"a,b"`, `"c"`, false},
		{"comma-tag then match", `"a,b", ` + tag, tag, true},
		{"weak comma-tag then match", `W/"x,y", ` + tag, tag, true},
		{"tag is a list member prefix", `"00c0ffee"`, tag, false},

		// Malformed members are skipped, not matched.
		{"unquoted garbage", `00c0ffee00c0ffee`, tag, false},
		{"unquoted garbage then match", `garbage, ` + tag, tag, true},
		{"unterminated tag", `"unterminated`, tag, false},
		{"bare W/", `W/`, tag, false},
		{"empty members", `,, ` + tag + ` ,`, tag, true},

		// Per-encoding tags: the gzip variant's "-gz" tag never validates
		// against the identity tag, and vice versa.
		{"identity tag vs gzip tag", tag, gzipTag(tag), false},
		{"gzip tag vs gzip tag", gzipTag(tag), gzipTag(tag), true},
	}
	for _, c := range cases {
		if got := etagMatches(c.header, c.etag); got != c.want {
			t.Errorf("%s: etagMatches(%q, %q) = %v, want %v", c.name, c.header, c.etag, got, c.want)
		}
	}
}
