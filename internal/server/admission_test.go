package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestComputeGuarantees(t *testing.T) {
	cases := []struct {
		limit int
		want  [numQoSClasses]int
	}{
		{0, [numQoSClasses]int{0, 0}},
		{1, [numQoSClasses]int{1, 0}},
		{2, [numQoSClasses]int{2, 0}},
		{3, [numQoSClasses]int{2, 1}},
		{4, [numQoSClasses]int{3, 1}},
		{8, [numQoSClasses]int{6, 2}},
		{256, [numQoSClasses]int{192, 64}},
	}
	for _, c := range cases {
		got := computeGuarantees(c.limit)
		if got != c.want {
			t.Errorf("computeGuarantees(%d) = %v, want %v", c.limit, got, c.want)
		}
		sum := 0
		for _, g := range got {
			sum += g
		}
		if c.limit > 0 && sum != c.limit {
			t.Errorf("computeGuarantees(%d) sums to %d, want the full limit", c.limit, sum)
		}
	}
}

// TestQoSSemBorrowHeadroom checks the anti-starvation contract directly on
// the semaphore: with limit 4 (guarantees 3 interactive / 1 analytic), the
// analytic class may borrow idle interactive slots but never the last free
// slot, so an arriving interactive request is always admitted.
func TestQoSSemBorrowHeadroom(t *testing.T) {
	s := newQoSSem(4)
	ctx := context.Background()

	got := 0
	for s.acquire(ctx, qosAnalytic, 0) {
		got++
	}
	if got != 3 {
		t.Fatalf("analytic acquired %d of 4 slots, want 3 (one reserved for interactive)", got)
	}
	if b := s.counters[qosAnalytic].borrowed.Load(); b != 2 {
		t.Errorf("analytic borrowed = %d, want 2 (slots beyond its guarantee of 1)", b)
	}
	if sh := s.counters[qosAnalytic].shed.Load(); sh != 1 {
		t.Errorf("analytic shed = %d, want 1 (the refused borrow)", sh)
	}
	if !s.acquire(ctx, qosInteractive, 0) {
		t.Fatal("interactive refused while below its guarantee — starved by analytic borrowers")
	}
	// Semaphore is now exactly full; everyone is refused without a wait.
	if s.acquire(ctx, qosInteractive, 0) || s.acquire(ctx, qosAnalytic, 0) {
		t.Fatal("admission past the limit")
	}
	// A freed borrowed slot must flow to a queued interactive waiter, not
	// back to an analytic borrower queued ahead of it.
	results := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if s.acquire(ctx, qosAnalytic, time.Second) {
			results <- "analytic"
		}
	}()
	time.Sleep(20 * time.Millisecond) // analytic queues first
	go func() {
		defer wg.Done()
		if s.acquire(ctx, qosInteractive, time.Second) {
			results <- "interactive"
		}
	}()
	time.Sleep(20 * time.Millisecond)
	s.release(qosAnalytic)
	if first := <-results; first != "interactive" {
		t.Errorf("first granted waiter = %q, want interactive (class-aware grant)", first)
	}
	// The queued analytic waiter still may not take the LAST free slot while
	// interactive sits below its guarantee; freeing an interactive slot
	// restores borrow headroom and drains it.
	s.release(qosAnalytic)
	s.release(qosInteractive)
	if second := <-results; second != "analytic" {
		t.Errorf("second granted waiter = %q, want analytic (borrow headroom restored)", second)
	}
	wg.Wait()
}

// TestQoSSemSetLimitWakesWaiters queues a waiter against a full semaphore
// and checks that raising the limit grants it without any release.
func TestQoSSemSetLimitWakesWaiters(t *testing.T) {
	s := newQoSSem(1)
	ctx := context.Background()
	if !s.acquire(ctx, qosInteractive, 0) {
		t.Fatal("first acquire refused")
	}
	granted := make(chan bool, 1)
	go func() { granted <- s.acquire(ctx, qosInteractive, 5*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	s.setLimit(2)
	select {
	case ok := <-granted:
		if !ok {
			t.Fatal("waiter shed after limit raise")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not granted after limit raise")
	}
}

// fakeClock is the controller's injectable deterministic clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// aimdHarness drives a controller with a deterministic clock. fill/drain
// saturate the semaphore so healthy windows count as limiter-binding.
type aimdHarness struct {
	clock *fakeClock
	sem   *qosSem
	ctrl  *aimdController
}

func newAIMDHarness(cfg aimdConfig) *aimdHarness {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	sem := newQoSSem(1)
	return &aimdHarness{clock: clock, sem: sem, ctrl: newAIMDController(cfg, sem, clock.Now)}
}

// window feeds one decision window: n samples of latency d with the
// semaphore held full (binding), then a clock step past the window edge and
// one more sample to trigger the decision.
func (h *aimdHarness) window(t *testing.T, n int, d time.Duration) {
	t.Helper()
	ctx := context.Background()
	held := 0
	for h.sem.acquire(ctx, qosInteractive, 0) {
		held++
	}
	for i := 0; i < n-1; i++ {
		h.ctrl.observe(d)
	}
	h.clock.Advance(h.ctrl.cfg.Window)
	h.ctrl.observe(d) // window mature: this observation decides
	for ; held > 0; held-- {
		h.sem.release(qosInteractive)
	}
}

func testAIMDConfig() aimdConfig {
	return aimdConfig{
		Min: 2, Max: 16, Initial: 2,
		Window:     100 * time.Millisecond,
		MinSamples: 4,
		Tolerance:  2.0,
		Increase:   1,
		Backoff:    0.5,
		// No drift: the baseline pins to the fastest window, making breach
		// arithmetic exact in these tests.
		BaselineDrift: 1.0,
		WindowCap:     256,
	}
}

// TestAIMDAdditiveIncrease: healthy, limiter-binding windows grow the limit
// one step per window and clamp at Max.
func TestAIMDAdditiveIncrease(t *testing.T) {
	h := newAIMDHarness(testAIMDConfig())
	for i := 0; i < 40; i++ {
		h.window(t, 8, time.Millisecond)
	}
	if got := h.ctrl.Limit(); got != 16 {
		t.Errorf("limit after 40 healthy binding windows = %d, want clamped Max 16", got)
	}
	if inc := h.ctrl.increases.Load(); inc != 14 {
		t.Errorf("increases = %d, want 14 (2 -> 16 by +1)", inc)
	}
}

// TestAIMDMultiplicativeDecrease: a sustained p99 breach halves the limit per
// window until the Min clamp.
func TestAIMDMultiplicativeDecrease(t *testing.T) {
	h := newAIMDHarness(testAIMDConfig())
	// Establish a 1ms baseline and grow to the max.
	for i := 0; i < 20; i++ {
		h.window(t, 8, time.Millisecond)
	}
	if got := h.ctrl.Limit(); got != 16 {
		t.Fatalf("limit after growth = %d, want 16", got)
	}
	// 10ms >> tolerance(2) * baseline(1ms): every window is a breach.
	h.window(t, 8, 10*time.Millisecond)
	if got := h.ctrl.Limit(); got != 8 {
		t.Errorf("limit after first breach window = %d, want 8 (x0.5)", got)
	}
	for i := 0; i < 5; i++ {
		h.window(t, 8, 10*time.Millisecond)
	}
	if got := h.ctrl.Limit(); got != 2 {
		t.Errorf("limit after sustained breach = %d, want Min 2", got)
	}
	if dec := h.ctrl.decreases.Load(); dec != 3 {
		t.Errorf("decreases = %d, want 3 (16 -> 8 -> 4 -> 2)", dec)
	}
}

// TestAIMDRecovery: after a breach-driven collapse, healthy windows grow the
// limit again.
func TestAIMDRecovery(t *testing.T) {
	h := newAIMDHarness(testAIMDConfig())
	for i := 0; i < 10; i++ {
		h.window(t, 8, time.Millisecond)
	}
	for i := 0; i < 8; i++ {
		h.window(t, 8, 20*time.Millisecond) // overload episode
	}
	if got := h.ctrl.Limit(); got != 2 {
		t.Fatalf("limit after overload = %d, want Min 2", got)
	}
	for i := 0; i < 6; i++ {
		h.window(t, 8, time.Millisecond) // load drops: healthy again
	}
	if got := h.ctrl.Limit(); got != 8 {
		t.Errorf("limit after recovery = %d, want 8 (2 + 6 healthy windows)", got)
	}
}

// TestAIMDBoundsProperty feeds pseudo-random latency sequences (with random
// window fills, some non-binding) and asserts the limit never leaves
// [Min, Max] and that a mature window always lands exactly one decision.
func TestAIMDBoundsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		cfg := testAIMDConfig()
		cfg.Min = 1 + r.Intn(4)
		cfg.Max = cfg.Min + r.Intn(30)
		cfg.Initial = cfg.Min + r.Intn(cfg.Max-cfg.Min+1)
		cfg.BaselineDrift = 1.0 + r.Float64()*0.05
		h := newAIMDHarness(cfg)
		for w := 0; w < 60; w++ {
			lat := time.Duration(1+r.Intn(20000)) * time.Microsecond
			if r.Intn(3) == 0 {
				// Non-binding window: observe without holding the semaphore
				// full, then advance past the edge.
				for i := 0; i < cfg.MinSamples; i++ {
					h.ctrl.observe(lat)
				}
				h.clock.Advance(cfg.Window)
				h.ctrl.observe(lat)
			} else {
				h.window(t, cfg.MinSamples+r.Intn(8), lat)
			}
			if got := h.ctrl.Limit(); got < cfg.Min || got > cfg.Max {
				t.Fatalf("trial %d window %d: limit %d outside [%d,%d]", trial, w, got, cfg.Min, cfg.Max)
			}
		}
		decisions := h.ctrl.increases.Load() + h.ctrl.decreases.Load() + h.ctrl.holds.Load()
		if decisions != 60 {
			t.Errorf("trial %d: %d decisions over 60 mature windows", trial, decisions)
		}
	}
}

// TestAdaptiveServerEndToEnd boots a server in adaptive mode, serves mixed
// classes, and checks the admission block on /metrics JSON and the
// Prometheus exposition (including conformance of the new series).
func TestAdaptiveServerEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{AdmissionMode: "adaptive", MaxInFlight: 8, MinLimit: 2, ByteCacheSize: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	paths := []string{
		"/mine?w=0&supp=0.02&conf=0.2",
		"/count?w=0&supp=0.02&conf=0.2",
		"/trajectory?w=0&supp=0.02&conf=0.2&in=0,1,2,3",
		"/rollup?from=0&to=3&supp=0.02&conf=0.2",
	}
	for i := 0; i < 3; i++ {
		for _, p := range paths {
			if st, body := get(t, ts.URL, p); st != http.StatusOK {
				t.Fatalf("GET %s: %d: %s", p, st, body)
			}
		}
	}

	var snap MetricsSnapshot
	if st, body := get(t, ts.URL, "/metrics"); st != http.StatusOK {
		t.Fatalf("GET /metrics: %d", st)
	} else if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	a := snap.Admission
	if a.Mode != "adaptive" {
		t.Errorf("admission.mode = %q, want adaptive", a.Mode)
	}
	if a.Limit < a.MinLimit || a.Limit > a.MaxLimit {
		t.Errorf("admission.limit %d outside [%d,%d]", a.Limit, a.MinLimit, a.MaxLimit)
	}
	if a.MinLimit != 2 || a.MaxLimit != 8 {
		t.Errorf("bounds = [%d,%d], want [2,8]", a.MinLimit, a.MaxLimit)
	}
	if len(a.Classes) != numQoSClasses {
		t.Fatalf("admission.classes has %d entries, want %d", len(a.Classes), numQoSClasses)
	}
	byName := map[string]AdmissionClassSnapshot{}
	sumGuarantee := 0
	for _, c := range a.Classes {
		byName[c.Class] = c
		sumGuarantee += c.Limit
		if c.Admitted+c.Shed > c.Requests {
			t.Errorf("class %s: admitted+shed=%d > requests=%d", c.Class, c.Admitted+c.Shed, c.Requests)
		}
	}
	if sumGuarantee != a.Limit {
		t.Errorf("class guarantees sum to %d, want the limit %d", sumGuarantee, a.Limit)
	}
	if byName["interactive"].Admitted == 0 || byName["analytic"].Admitted == 0 {
		t.Errorf("expected admissions in both classes: %+v", a.Classes)
	}

	st, body := get(t, ts.URL, "/metrics?format=prometheus")
	if st != http.StatusOK {
		t.Fatalf("GET /metrics?format=prometheus: %d", st)
	}
	text := string(body)
	checkPromExposition(t, text)
	for _, series := range []string{
		`tarad_admission_info{mode="adaptive"} 1`,
		`tarad_admission_limit{class="total"}`,
		`tarad_admission_limit{class="interactive"}`,
		`tarad_admission_limit{class="analytic"}`,
		`tarad_admission_shed_total{class="interactive"}`,
		`tarad_admission_shed_total{class="analytic"}`,
		`tarad_admission_borrowed_total{class="analytic"}`,
		`tarad_admission_limit_changes_total{direction="up"}`,
		`tarad_admission_baseline_p99_seconds`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("prometheus exposition missing %s", series)
		}
	}
}

// TestAdaptiveModeValidation covers constructor-time rejection.
func TestAdaptiveModeValidation(t *testing.T) {
	fw := testFramework(t)
	if _, err := New(Config{Framework: fw, Logger: quietLogger(), AdmissionMode: "adaptive", MaxInFlight: -1}); err == nil {
		t.Error("adaptive + unlimited MaxInFlight accepted, want error")
	}
	if _, err := New(Config{Framework: fw, Logger: quietLogger(), AdmissionMode: "gradient"}); err == nil {
		t.Error("unknown admission mode accepted, want error")
	}
	// MinLimit above MaxInFlight clamps instead of failing.
	s, err := New(Config{Framework: fw, Logger: quietLogger(), AdmissionMode: "adaptive", MaxInFlight: 4, MinLimit: 99})
	if err != nil {
		t.Fatalf("MinLimit > MaxInFlight: %v", err)
	}
	if got := s.Admission().Limit; got != 4 {
		t.Errorf("clamped limit = %d, want 4", got)
	}
}

// TestAdmissionConfigOverrides checks the -admissionwindow and
// -admissiontolerance plumbing: Config values reach the AIMD controller,
// and zero values keep the defaults.
func TestAdmissionConfigOverrides(t *testing.T) {
	fw := testFramework(t)
	s, err := New(Config{
		Framework: fw, Logger: quietLogger(), AdmissionMode: "adaptive", MaxInFlight: 8,
		AdmissionWindow:    50 * time.Millisecond,
		AdmissionTolerance: 3.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ctrl.cfg.Window; got != 50*time.Millisecond {
		t.Errorf("Window = %v, want 50ms", got)
	}
	if got := s.ctrl.cfg.Tolerance; got != 3.5 {
		t.Errorf("Tolerance = %v, want 3.5", got)
	}
	s, err = New(Config{Framework: fw, Logger: quietLogger(), AdmissionMode: "adaptive", MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ctrl.cfg.Window; got != 200*time.Millisecond {
		t.Errorf("default Window = %v, want 200ms", got)
	}
	if got := s.ctrl.cfg.Tolerance; got != 2.0 {
		t.Errorf("default Tolerance = %v, want 2.0", got)
	}
}

// TestAdaptiveShedOrderingConsistency is the adaptive twin of
// TestShedOrderingConsistency, extended to the per-QoS-class admission
// counters: under mixed-class shed traffic with the controller moving the
// limit, every concurrently observed snapshot must satisfy, per class,
// borrowed <= admitted, admitted+shed <= requests, and a limit within
// bounds. Run with -race.
func TestAdaptiveShedOrderingConsistency(t *testing.T) {
	s := newTestServer(t, Config{
		AdmissionMode: "adaptive",
		MinLimit:      1,
		MaxInFlight:   2,
		ByteCacheSize: -1,
	})
	s.delay = func(string) { time.Sleep(200 * time.Microsecond) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	urls := []string{
		ts.URL + "/mine?w=0&supp=0.02&conf=0.2",
		ts.URL + "/count?w=0&supp=0.02&conf=0.2",
		ts.URL + "/trajectory?w=0&supp=0.02&conf=0.2&in=0,1,2,3",
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; !stop.Load(); j++ {
				resp, err := http.Get(urls[(i+j)%len(urls)])
				if err != nil {
					t.Errorf("GET: %v", err)
					return
				}
				resp.Body.Close()
			}
		}(i)
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	var sawShed bool
	for time.Now().Before(deadline) {
		a := s.Admission()
		if a.Limit < a.MinLimit || a.Limit > a.MaxLimit {
			t.Fatalf("limit %d outside [%d,%d]", a.Limit, a.MinLimit, a.MaxLimit)
		}
		if a.InFlight < 0 {
			t.Fatalf("inFlight = %d < 0", a.InFlight)
		}
		for _, c := range a.Classes {
			if c.Shed > c.Requests {
				t.Fatalf("class %s: shed=%d > requests=%d", c.Class, c.Shed, c.Requests)
			}
			if c.Admitted+c.Shed > c.Requests {
				t.Fatalf("class %s: admitted+shed=%d > requests=%d", c.Class, c.Admitted+c.Shed, c.Requests)
			}
			if c.Borrowed > c.Admitted {
				t.Fatalf("class %s: borrowed=%d > admitted=%d", c.Class, c.Borrowed, c.Admitted)
			}
			if c.Shed > 0 {
				sawShed = true
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if !sawShed {
		t.Error("expected per-class sheds with maxinflight 2 and 8 clients")
	}
	if got := s.Admission().InFlight; got != 0 {
		t.Errorf("inFlight=%d after traffic stopped, want 0", got)
	}
}

// TestDaemonUsageListsAdmissionFlags runs the shared tarad/`tara serve` flag
// set's usage output (daemon.go is the single flag source for both binaries)
// and checks every admission-related flag is present and documented.
func TestDaemonUsageListsAdmissionFlags(t *testing.T) {
	var buf strings.Builder
	err := Run([]string{"-h"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "help requested") {
		t.Fatalf("Run(-h) err = %v, want flag.ErrHelp", err)
	}
	usage := buf.String()
	for _, flagName := range []string{
		"-addr", "-maxinflight", "-queuewait", "-admission", "-minlimit",
		"-admissionwindow", "-admissiontolerance",
		"-timeout", "-bytecache", "-gzip", "-slowtraces", "-mmap",
	} {
		if !strings.Contains(usage, fmt.Sprintf("\n  %s ", flagName)) &&
			!strings.Contains(usage, fmt.Sprintf("\n  %s\n", flagName)) {
			t.Errorf("usage output missing %s:\n%s", flagName, usage)
		}
	}
	for _, def := range []string{"(default 256)", "(default \"adaptive\")", "(default 2)", "(default 200ms)"} {
		if !strings.Contains(usage, def) {
			t.Errorf("usage output missing default %q", def)
		}
	}
}
