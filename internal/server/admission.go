package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"tara/internal/obs"
)

// Adaptive admission control.
//
// The static in-flight cap (Config.MaxInFlight, a buffered channel) is the
// right shape but the wrong number on every box except the one it was tuned
// on: too high and overload shows up as queueing delay and timeout storms
// before a single request sheds; too low and the box idles while clients are
// refused. Adaptive mode replaces the fixed cap with a latency-feedback
// AIMD controller over a dynamic-limit semaphore, keeping MaxInFlight as the
// hard upper bound and -admission=static as the untouched legacy path.
//
// Two layers:
//
//   - qosSem: a semaphore whose limit can change at runtime, with weighted
//     per-class slot guarantees. Query classes are grouped into QoS classes
//     (interactive: mine/count/recommend/drill — the cheap, byte-cacheable
//     point lookups; analytic: trajectory/rollup/diff/... — the multi-window
//     scans). Each class is guaranteed a weighted share of the limit; a
//     class past its share may borrow idle slots, but never the last free
//     slot of a class still below its guarantee — so during a shed episode
//     the expensive classes cannot starve the cheap ones, while an idle
//     class's share stays available for borrowing (work-conserving).
//
//   - aimdController: additive-increase / multiplicative-decrease on the
//     semaphore's limit, driven by the p99 of admitted-request service
//     latency over short windows against a drift-bounded minimum baseline
//     (the controller's estimate of the un-queued service tail). Healthy
//     window with the limiter binding: limit += 1. Window p99 beyond
//     tolerance x baseline: limit = limit * backoff. Always clamped to
//     [minLimit, maxLimit]. The clock is injectable, so tests drive window
//     rolls deterministically.

// QoS classes: indexes into qosClasses and every per-class array.
const (
	qosInteractive = iota
	qosAnalytic
	numQoSClasses
)

// qosClasses names the QoS classes and fixes their guarantee weights:
// interactive gets 3 slots for every 1 analytic slot. The split follows
// measured cost, not endpoint prestige — an interactive query is a single
// canonical-cut lookup (often a byte-cache or query-cache hit), an analytic
// query walks many windows or materializes cross-window state.
var qosClasses = [numQoSClasses]struct {
	name   string
	weight int
}{
	{name: "interactive", weight: 3},
	{name: "analytic", weight: 1},
}

// qosClassOf maps a query op (the textual-syntax class name used at
// registration) to its QoS class. Unknown ops count as analytic — the
// conservative side for an op someone adds without updating this table.
func qosClassOf(op string) int {
	switch op {
	case "mine", "count", "recommend", "drill":
		return qosInteractive
	}
	return qosAnalytic
}

// qosCounters is one QoS class's admission bookkeeping. Ordering discipline
// (the same one endpointStats uses): requests is bumped on ENTRY to acquire,
// before any outcome lands, and outcomes are written admitted-then-borrowed;
// snapshot readers load borrowed, then admitted, then shed, then requests —
// so borrowed <= admitted and admitted+shed <= requests hold in every
// concurrently observed snapshot.
type qosCounters struct {
	requests atomic.Uint64
	admitted atomic.Uint64
	shed     atomic.Uint64
	borrowed atomic.Uint64
}

// qosWaiter is one queued acquire. granted is written under the semaphore
// mutex before ready is closed; a waiter whose timer raced the grant checks
// it under the same mutex and keeps the slot.
type qosWaiter struct {
	class   int
	borrow  bool
	granted bool
	ready   chan struct{}
}

// qosSem is a dynamic-limit counting semaphore with weighted per-class
// guarantees and FIFO-scan queued admission.
type qosSem struct {
	mu        sync.Mutex
	limit     int
	total     int
	inflight  [numQoSClasses]int
	guarantee [numQoSClasses]int
	waiters   []*qosWaiter

	counters [numQoSClasses]qosCounters
}

func newQoSSem(limit int) *qosSem {
	s := &qosSem{}
	s.setLimit(limit)
	return s
}

// computeGuarantees splits limit slots among the QoS classes proportionally
// to weight (largest-remainder rounding, ties to the lower index), so the
// guarantees always sum exactly to the limit.
func computeGuarantees(limit int) [numQoSClasses]int {
	var g [numQoSClasses]int
	if limit <= 0 {
		return g
	}
	totalW := 0
	for _, c := range qosClasses {
		totalW += c.weight
	}
	assigned := 0
	var rem [numQoSClasses]int
	for i, c := range qosClasses {
		g[i] = limit * c.weight / totalW
		rem[i] = limit * c.weight % totalW
		assigned += g[i]
	}
	for assigned < limit {
		best := 0
		for i := 1; i < numQoSClasses; i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		g[best]++
		rem[best] = -1
		assigned++
	}
	return g
}

// canAdmit reports whether class c may take a slot right now, and whether
// doing so is a borrow (c at or past its guarantee, dipping into slack).
// A borrower must leave one free slot for every OTHER class still below its
// guarantee — that headroom is what freed slots drain into, so a protected
// class always makes progress toward its share no matter how hungry the
// borrowers are. Callers hold s.mu.
func (s *qosSem) canAdmit(c int) (borrow, ok bool) {
	free := s.limit - s.total
	if free <= 0 {
		return false, false
	}
	if s.inflight[c] < s.guarantee[c] {
		return false, true
	}
	reserved := 0
	for i := range s.guarantee {
		if i != c && s.inflight[i] < s.guarantee[i] {
			reserved++
		}
	}
	return true, free > reserved
}

// admitLocked takes a slot for class c. Callers hold s.mu and have checked
// canAdmit; the borrow/admitted counters are written by the acquiring
// goroutine outside the mutex (see the ordering note on qosCounters).
func (s *qosSem) admitLocked(c int) {
	s.total++
	s.inflight[c]++
}

// acquire takes a slot for class c, queueing up to wait for one when none is
// admissible immediately. It reports whether the slot was granted; the caller
// must release(c) exactly once when it was.
func (s *qosSem) acquire(ctx context.Context, c int, wait time.Duration) bool {
	s.counters[c].requests.Add(1)
	s.mu.Lock()
	if borrow, ok := s.canAdmit(c); ok {
		s.admitLocked(c)
		s.mu.Unlock()
		s.counters[c].admitted.Add(1)
		if borrow {
			s.counters[c].borrowed.Add(1)
		}
		return true
	}
	if wait <= 0 {
		s.mu.Unlock()
		s.counters[c].shed.Add(1)
		return false
	}
	w := &qosWaiter{class: c, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-w.ready:
		s.counters[c].admitted.Add(1)
		if w.borrow {
			s.counters[c].borrowed.Add(1)
		}
		return true
	case <-t.C:
	case <-ctx.Done():
		// The client gave up (or the timeout wrapper fired) while queued;
		// shedding is the honest answer — the work never started.
	}
	s.mu.Lock()
	if w.granted {
		// The grant raced the timer: the slot is already accounted to us, so
		// keep it — the handler runs and releases normally.
		s.mu.Unlock()
		s.counters[c].admitted.Add(1)
		if w.borrow {
			s.counters[c].borrowed.Add(1)
		}
		return true
	}
	for i, q := range s.waiters {
		if q == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	s.counters[c].shed.Add(1)
	return false
}

// release returns class c's slot and hands freed capacity to queued waiters.
func (s *qosSem) release(c int) {
	s.mu.Lock()
	s.inflight[c]--
	s.total--
	s.grantLocked()
	s.mu.Unlock()
}

// grantLocked admits every queued waiter the current occupancy allows, in
// arrival order per scan — but class-aware: a blocked analytic waiter does
// not wall off an interactive waiter behind it whose guarantee still has
// room. Callers hold s.mu.
func (s *qosSem) grantLocked() {
	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if borrow, ok := s.canAdmit(w.class); ok {
			s.admitLocked(w.class)
			w.borrow = borrow
			w.granted = true
			close(w.ready)
			continue
		}
		kept = append(kept, w)
	}
	s.waiters = kept
}

// setLimit changes the semaphore's limit, recomputes the per-class
// guarantees, and admits any waiters a raised limit now covers. Lowering the
// limit never evicts running requests; occupancy drains down to the new
// limit as they release.
func (s *qosSem) setLimit(n int) {
	s.mu.Lock()
	s.limit = n
	s.guarantee = computeGuarantees(n)
	s.grantLocked()
	s.mu.Unlock()
}

// current returns the total slots held right now.
func (s *qosSem) current() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// aimdConfig parameterizes the controller. The zero value is unusable; use
// defaultAIMDConfig.
type aimdConfig struct {
	// Min and Max clamp the limit; Initial is the cold-start limit.
	Min, Max, Initial int
	// Window is the decision cadence; a window also needs MinSamples
	// observations before the controller acts on it.
	Window     time.Duration
	MinSamples int
	// Tolerance is how far the windowed p99 may run above the baseline
	// before the window counts as a breach.
	Tolerance float64
	// Increase is the additive step on a healthy, limiter-binding window;
	// Backoff is the multiplicative factor on a breach.
	Increase int
	Backoff  float64
	// BaselineDrift relaxes the baseline upward per healthy-or-breached
	// window, so a legitimately slower workload regime does not read as a
	// permanent breach against a stale minimum.
	BaselineDrift float64
	// WindowCap bounds the per-window sample ring.
	WindowCap int
}

func defaultAIMDConfig(min, max int) aimdConfig {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	initial := min
	return aimdConfig{
		Min:           min,
		Max:           max,
		Initial:       initial,
		Window:        200 * time.Millisecond,
		MinSamples:    20,
		Tolerance:     2.0,
		Increase:      1,
		Backoff:       0.75,
		BaselineDrift: 1.02,
		WindowCap:     2048,
	}
}

// aimdController owns the qosSem limit in adaptive mode. observe is called
// once per admitted request (with the slot still held, so the semaphore's
// occupancy includes the observer); everything else is read-only telemetry.
type aimdController struct {
	cfg aimdConfig
	sem *qosSem
	now func() time.Time // injectable clock; time.Now in production

	mu          sync.Mutex
	limit       int
	baselineUS  float64
	win         *obs.SampleWindow
	winStart    time.Time
	winMaxBusy  int  // max semaphore occupancy seen this window
	winHasStart bool // winStart initialized lazily on the first sample

	increases atomic.Uint64
	decreases atomic.Uint64
	holds     atomic.Uint64
}

func newAIMDController(cfg aimdConfig, sem *qosSem, now func() time.Time) *aimdController {
	if now == nil {
		now = time.Now
	}
	if cfg.Initial < cfg.Min {
		cfg.Initial = cfg.Min
	}
	if cfg.Initial > cfg.Max {
		cfg.Initial = cfg.Max
	}
	c := &aimdController{
		cfg:   cfg,
		sem:   sem,
		now:   now,
		limit: cfg.Initial,
		win:   obs.NewSampleWindow(cfg.WindowCap),
	}
	sem.setLimit(c.limit)
	return c
}

// observe feeds one admitted request's service latency (admission to
// completion) into the current window and, when the window is mature, runs
// one AIMD decision:
//
//	breach  (p99 > tolerance*baseline): limit *= backoff   (clamped to min)
//	healthy and the limiter was binding: limit += increase (clamped to max)
//	healthy with slack:                  hold — growing an un-bound limit
//	                                     would only pre-authorize a burst
//
// The baseline is a drift-bounded minimum of windowed p99s: it snaps down to
// any faster window immediately and relaxes upward by BaselineDrift per
// decision otherwise, tracking the un-queued service tail without letting a
// long overload episode teach the controller that congestion is normal.
func (c *aimdController) observe(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	busy := c.sem.current()

	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if !c.winHasStart {
		c.winStart = now
		c.winHasStart = true
	}
	c.win.Add(us)
	if busy > c.winMaxBusy {
		c.winMaxBusy = busy
	}
	if now.Sub(c.winStart) < c.cfg.Window || c.win.Len() < c.cfg.MinSamples {
		return
	}
	p99 := c.win.Quantile(0.99)
	// Binding is measured against the admittable capacity, not the raw
	// limit: the per-class borrow headroom keeps up to numQoSClasses-1
	// slots free while some class is idle, so a single-class workload can
	// never occupy more than limit-1 slots — and would otherwise never
	// look binding no matter how hard it pushes.
	binding := c.winMaxBusy >= c.limit-(numQoSClasses-1)
	c.win.Reset()
	c.winStart = now
	c.winMaxBusy = 0

	if c.baselineUS == 0 || p99 < c.baselineUS {
		c.baselineUS = p99
	} else {
		c.baselineUS *= c.cfg.BaselineDrift
	}

	switch {
	case p99 > c.cfg.Tolerance*c.baselineUS:
		next := int(float64(c.limit) * c.cfg.Backoff)
		if next >= c.limit {
			next = c.limit - 1
		}
		if next < c.cfg.Min {
			next = c.cfg.Min
		}
		if next != c.limit {
			c.limit = next
			c.sem.setLimit(next)
			c.decreases.Add(1)
		} else {
			c.holds.Add(1)
		}
	case binding:
		next := c.limit + c.cfg.Increase
		if next > c.cfg.Max {
			next = c.cfg.Max
		}
		if next != c.limit {
			c.limit = next
			c.sem.setLimit(next)
			c.increases.Add(1)
		} else {
			c.holds.Add(1)
		}
	default:
		c.holds.Add(1)
	}
}

// Limit returns the controller's current limit.
func (c *aimdController) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit
}

// AdmissionClassSnapshot is one QoS class's slice of an AdmissionSnapshot.
type AdmissionClassSnapshot struct {
	Class string `json:"class"`
	// Limit is the class's guaranteed slot share at the current limit;
	// InFlight is its held slots (which can exceed Limit while borrowing).
	Limit    int `json:"limit"`
	InFlight int `json:"inFlight"`
	// Requests counts admission attempts; Admitted and Shed their outcomes;
	// Borrowed the admissions that used another class's idle share.
	Requests uint64 `json:"requests"`
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	Borrowed uint64 `json:"borrowed"`
}

// AdmissionSnapshot is the admission layer's /metrics block.
type AdmissionSnapshot struct {
	// Mode is "static", "adaptive" or "unlimited".
	Mode string `json:"mode"`
	// Limit is the in-flight cap in force right now (-1 when unlimited);
	// adaptive mode moves it within [MinLimit, MaxLimit].
	Limit    int `json:"limit"`
	MinLimit int `json:"minLimit,omitempty"`
	MaxLimit int `json:"maxLimit,omitempty"`
	InFlight int `json:"inFlight"`
	// BaselineP99Micros is the controller's current un-queued tail estimate;
	// Increases/Decreases/Holds count its per-window decisions.
	BaselineP99Micros float64                  `json:"baselineP99Micros,omitempty"`
	Increases         uint64                   `json:"increases,omitempty"`
	Decreases         uint64                   `json:"decreases,omitempty"`
	Holds             uint64                   `json:"holds,omitempty"`
	Classes           []AdmissionClassSnapshot `json:"classes,omitempty"`
}

// snapshot assembles the adaptive admission view. Per-class outcome counters
// are loaded before requests (and borrowed before admitted), preserving the
// registry-wide snapshot invariants under concurrent traffic.
func (c *aimdController) snapshot() AdmissionSnapshot {
	s := c.sem
	var classes [numQoSClasses]AdmissionClassSnapshot
	for i := range s.counters {
		ct := &s.counters[i]
		borrowed := ct.borrowed.Load()
		admitted := ct.admitted.Load()
		shed := ct.shed.Load()
		classes[i] = AdmissionClassSnapshot{
			Class:    qosClasses[i].name,
			Borrowed: borrowed,
			Admitted: admitted,
			Shed:     shed,
			Requests: ct.requests.Load(),
		}
	}
	c.mu.Lock()
	limit := c.limit
	baseline := c.baselineUS
	c.mu.Unlock()
	s.mu.Lock()
	total := s.total
	for i := range classes {
		classes[i].Limit = s.guarantee[i]
		classes[i].InFlight = s.inflight[i]
	}
	s.mu.Unlock()
	return AdmissionSnapshot{
		Mode:              "adaptive",
		Limit:             limit,
		MinLimit:          c.cfg.Min,
		MaxLimit:          c.cfg.Max,
		InFlight:          total,
		BaselineP99Micros: baseline,
		Increases:         c.increases.Load(),
		Decreases:         c.decreases.Load(),
		Holds:             c.holds.Load(),
		Classes:           classes[:],
	}
}
