package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tara/internal/query"
)

// identityClient never asks for (or transparently decodes) any content
// coding, so the bytes it reads are exactly the identity representation.
var identityClient = &http.Client{Transport: &http.Transport{DisableCompression: true}}

// getCoded performs a GET with an explicit Accept-Encoding and transparent
// decompression disabled, returning the raw (possibly compressed) body and
// headers.
func getCoded(t *testing.T, base, path, acceptEncoding string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acceptEncoding != "" {
		req.Header.Set("Accept-Encoding", acceptEncoding)
	}
	resp, err := identityClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, body, resp.Header
}

func gunzip(t *testing.T, b []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("gzip reader: %v", err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	if err := zr.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGzipIdentityDifferential proves the gzip variant path is invisible to
// clients: for every query class, a gzip-negotiated response decompresses to
// bytes identical to the identity response, ETags differ per coding, and
// cacheable compressed responses carry Vary: Accept-Encoding. Concurrent
// clients hammer the mixed-coding warm path so that under -race this doubles
// as the variant derivation's data-race check.
func TestGzipIdentityDifferential(t *testing.T) {
	fw := testFramework(t)
	s := newTestServer(t, Config{GzipMinBytes: 1}) // compress every cacheable body
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	item := url.QueryEscape(anItemName(t, fw))
	paths := []string{
		// Byte-cacheable classes (these grow gzip variants).
		"/mine?w=0&supp=0.02&conf=0.2",
		"/mine?w=1&supp=0.02&conf=0.2&lift=1.1",
		"/mine?w=0&supp=0.02&conf=0.2&limit=5",
		"/mine?w=0&supp=0.02&conf=0.2&limit=5&offset=5",
		"/count?w=0&supp=0.02&conf=0.2",
		"/recommend?w=1&supp=0.02&conf=0.2",
		// Non-cacheable classes: served identity-coded either way, but the
		// differential must still hold.
		"/recommend?w=1&supp=0.02&conf=0.2&lift=1.1",
		"/trajectory?w=0&supp=0.02&conf=0.2&in=0,1,2,3",
		"/trajectory?w=0&supp=0.02&conf=0.2&in=0,1,2,3&limit=3",
		"/diff?w=0,1,2,3&a=0.02,0.2&b=0.05,0.3",
		"/rollup?from=0&to=3&supp=0.02&conf=0.2&limit=4&offset=2",
		"/drill?rule=0&from=0&to=3",
		"/content?w=0&supp=0.02&conf=0.2&items=" + item,
		"/rank?from=0&to=3&supp=0.02&conf=0.2&k=5",
		"/periodic?from=0&to=3&supp=0.02&conf=0.2&period=2&k=5",
		"/plot?w=0",
	}

	// Identity reference bodies.
	want := make(map[string][]byte, len(paths))
	for _, p := range paths {
		code, body, _ := getCoded(t, ts.URL, p, "")
		if code != http.StatusOK {
			t.Fatalf("GET %s (identity): status %d", p, code)
		}
		want[p] = body
	}

	check := func(p, accept string) error {
		code, body, hdr := getCoded(t, ts.URL, p, accept)
		if code != http.StatusOK {
			return fmt.Errorf("GET %s (%q): status %d", p, accept, code)
		}
		if hdr.Get("Content-Encoding") == "gzip" {
			if !strings.Contains(hdr.Get("Vary"), "Accept-Encoding") {
				return fmt.Errorf("GET %s: gzip response without Vary: Accept-Encoding", p)
			}
			if tag := hdr.Get("ETag"); !strings.HasSuffix(tag, `-gz"`) {
				return fmt.Errorf("GET %s: gzip response with non-variant ETag %q", p, tag)
			}
			zr, err := gzip.NewReader(bytes.NewReader(body))
			if err != nil {
				return fmt.Errorf("GET %s: gzip reader: %v", p, err)
			}
			body, err = io.ReadAll(zr)
			if err != nil {
				return fmt.Errorf("GET %s: gunzip: %v", p, err)
			}
		}
		if !bytes.Equal(body, want[p]) {
			return fmt.Errorf("GET %s (%q): decoded body diverges from identity:\n got %s\nwant %s", p, accept, body, want[p])
		}
		return nil
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			accepts := []string{"gzip", "", "x-gzip", "gzip;q=0.5", "identity, gzip"}
			for i := 0; i < 3; i++ {
				for j, p := range paths {
					if err := check(p, accepts[(seed+i+j)%len(accepts)]); err != nil {
						errs <- err
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The cacheable paths must actually have been served compressed at least
	// once (the differential would pass vacuously otherwise).
	_, _, hdr := getCoded(t, ts.URL, paths[0], "gzip")
	if hdr.Get("Content-Encoding") != "gzip" {
		t.Fatalf("warm cacheable response not gzip-coded: headers %v", hdr)
	}

	// A gzip-refusing client must get identity even though a variant exists.
	_, _, hdr = getCoded(t, ts.URL, paths[0], "gzip;q=0")
	if hdr.Get("Content-Encoding") == "gzip" {
		t.Fatal("gzip served despite q=0 refusal")
	}
}

// TestGzipConditionalAndDisabled covers the per-encoding conditional
// protocol — each coding revalidates only against its own tag — and the
// GzipMinBytes switch (negative disables variants and the Vary header;
// bodies below the threshold stay identity).
func TestGzipConditionalAndDisabled(t *testing.T) {
	s := newTestServer(t, Config{GzipMinBytes: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const path = "/mine?w=0&supp=0.02&conf=0.2"
	_, _, idHdr := getCoded(t, ts.URL, path, "")
	_, _, gzHdr := getCoded(t, ts.URL, path, "gzip")
	idTag, gzTag := idHdr.Get("ETag"), gzHdr.Get("ETag")
	if idTag == "" || gzTag == "" || idTag == gzTag {
		t.Fatalf("per-encoding tags: identity %q, gzip %q", idTag, gzTag)
	}
	if gzTag != gzipTag(idTag) {
		t.Fatalf("gzip tag %q is not the -gz twin of %q", gzTag, idTag)
	}

	// Matching coding + matching tag → 304; the other coding's tag → 200.
	req := func(accept, inm string) int {
		r, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if accept != "" {
			r.Header.Set("Accept-Encoding", accept)
		}
		r.Header.Set("If-None-Match", inm)
		resp, err := identityClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := req("gzip", gzTag); code != http.StatusNotModified {
		t.Fatalf("gzip + gzip tag: status %d, want 304", code)
	}
	if code := req("", idTag); code != http.StatusNotModified {
		t.Fatalf("identity + identity tag: status %d, want 304", code)
	}
	if code := req("gzip", idTag); code != http.StatusOK {
		t.Fatalf("gzip + identity tag: status %d, want 200", code)
	}
	if code := req("", gzTag); code != http.StatusOK {
		t.Fatalf("identity + gzip tag: status %d, want 200", code)
	}
	// A proxy-weakened variant tag still revalidates (RFC 9110 weak compare).
	if code := req("gzip", "W/"+gzTag); code != http.StatusNotModified {
		t.Fatalf("gzip + weak gzip tag: status %d, want 304", code)
	}

	// Gzip disabled: no variants, no Vary, identity bytes for gzip askers.
	off := newTestServer(t, Config{GzipMinBytes: -1})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	_, _, hdr := getCoded(t, tsOff.URL, path, "gzip")
	if hdr.Get("Content-Encoding") == "gzip" || hdr.Get("Vary") != "" {
		t.Fatalf("gzip-disabled server negotiated a coding: %v", hdr)
	}

	// Threshold: with the default 1KB floor, tiny bodies (/count) stay
	// identity even with gzip on.
	def := newTestServer(t, Config{})
	tsDef := httptest.NewServer(def.Handler())
	defer tsDef.Close()
	_, _, hdr = getCoded(t, tsDef.URL, "/count?w=0&supp=0.02&conf=0.2", "gzip")
	if hdr.Get("Content-Encoding") == "gzip" {
		t.Fatal("sub-threshold body gzip-coded")
	}
}

// TestSingleflightColdMiss shows N concurrent cold misses on one canonical
// key perform exactly one materialize+encode: the leader is parked inside
// the encode seam while the rest of the herd arrives, and on release every
// request answers 200 with identical bodies off that single encode.
func TestSingleflightColdMiss(t *testing.T) {
	s := newTestServer(t, Config{})
	release := make(chan struct{})
	var hookCalls atomic.Int32
	s.encodeHook = func() {
		hookCalls.Add(1)
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	const path = "/mine?w=2&supp=0.02&conf=0.2"
	missesBefore := s.bcache.stats().Misses

	type reply struct {
		code int
		body []byte
	}
	replies := make(chan reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Error(err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			replies <- reply{resp.StatusCode, body}
		}()
	}

	// Release the parked leader only once the whole herd has probed the
	// cache (every probe is a counted miss on this cold key).
	deadline := time.Now().Add(10 * time.Second)
	for s.bcache.stats().Misses < missesBefore+n {
		if time.Now().After(deadline) {
			t.Fatalf("herd never arrived: misses %d, want %d", s.bcache.stats().Misses, missesBefore+n)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // probes → flight joins
	close(release)
	wg.Wait()
	close(replies)

	var first []byte
	for r := range replies {
		if r.code != http.StatusOK {
			t.Fatalf("herd member got status %d: %s", r.code, r.body)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Fatalf("herd bodies diverge:\n%s\nvs\n%s", first, r.body)
		}
	}
	if got := s.encodes.Load(); got != 1 {
		t.Fatalf("herd of %d performed %d encodes, want exactly 1", n, got)
	}
	if st := s.bcache.stats(); st.Coalesced == 0 {
		t.Fatalf("no request coalesced onto the leader's encode: %+v", st)
	}
}

// TestMinePaginationHTTP covers limit/offset end to end on /mine: envelope
// bookkeeping (total/offset/count), the served rows being the right slice of
// the full listing, independent cache keys and ETags per page, and 304
// revalidation for a page.
func TestMinePaginationHTTP(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const base = "/mine?w=0&supp=0.02&conf=0.2"
	var full query.MineResult
	code, body := get(t, ts.URL, base)
	if code != http.StatusOK {
		t.Fatalf("full listing: status %d", code)
	}
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if full.Total != full.Count || full.Offset != 0 || len(full.Rules) != full.Count {
		t.Fatalf("unpaginated envelope inconsistent: total=%d offset=%d count=%d rules=%d",
			full.Total, full.Offset, full.Count, len(full.Rules))
	}
	if full.Total < 4 {
		t.Fatalf("need >= 4 rules to exercise pagination, have %d", full.Total)
	}

	limit, offset := 2, 1
	var page query.MineResult
	code, body = get(t, ts.URL, fmt.Sprintf("%s&limit=%d&offset=%d", base, limit, offset))
	if code != http.StatusOK {
		t.Fatalf("page: status %d", code)
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != full.Total || page.Offset != offset || page.Count != limit || len(page.Rules) != limit {
		t.Fatalf("page envelope: total=%d offset=%d count=%d rules=%d, want total=%d offset=%d count=%d",
			page.Total, page.Offset, page.Count, len(page.Rules), full.Total, offset, limit)
	}
	for i, r := range page.Rules {
		a, _ := json.Marshal(r)
		b, _ := json.Marshal(full.Rules[offset+i])
		if !bytes.Equal(a, b) {
			t.Fatalf("page row %d diverges from full listing row %d:\n%s\nvs\n%s", i, offset+i, a, b)
		}
	}

	// An offset past the end yields an empty page with intact bookkeeping.
	var empty query.MineResult
	_, body = get(t, ts.URL, fmt.Sprintf("%s&offset=%d", base, full.Total+10))
	if err := json.Unmarshal(body, &empty); err != nil {
		t.Fatal(err)
	}
	if empty.Total != full.Total || empty.Count != 0 || len(empty.Rules) != 0 {
		t.Fatalf("past-the-end page: total=%d count=%d rules=%d", empty.Total, empty.Count, len(empty.Rules))
	}

	// Pages cache independently under distinct ETags, and revalidate.
	_, _, h0 := getWithHeaders(t, ts.URL, base, nil)
	_, _, h1 := getWithHeaders(t, ts.URL, base+"&limit=2&offset=1", nil)
	_, _, h2 := getWithHeaders(t, ts.URL, base+"&limit=2&offset=3", nil)
	t0, t1, t2 := h0.Get("ETag"), h1.Get("ETag"), h2.Get("ETag")
	if t0 == "" || t1 == "" || t2 == "" || t0 == t1 || t1 == t2 || t0 == t2 {
		t.Fatalf("page ETags not distinct: %q %q %q", t0, t1, t2)
	}
	code, b304, _ := getWithHeaders(t, ts.URL, base+"&limit=2&offset=1", map[string]string{"If-None-Match": t1})
	if code != http.StatusNotModified || len(b304) != 0 {
		t.Fatalf("page revalidation: status %d, %d body bytes, want 304 empty", code, len(b304))
	}

	// limit=0 with an offset means "from offset to the end".
	var tail query.MineResult
	_, body = get(t, ts.URL, base+"&offset=2")
	if err := json.Unmarshal(body, &tail); err != nil {
		t.Fatal(err)
	}
	if tail.Count != full.Total-2 || tail.Offset != 2 {
		t.Fatalf("offset-only page: count=%d offset=%d, want %d/2", tail.Count, tail.Offset, full.Total-2)
	}
}

// TestPaginationValidation: negative, non-integer and int32-overflowing
// limit/offset values answer 400 with the typed error body, mirroring the
// NaN/Inf threshold validation.
func TestPaginationValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := []string{
		"/mine?w=0&supp=0.02&conf=0.2&limit=-1",
		"/mine?w=0&supp=0.02&conf=0.2&offset=-5",
		"/mine?w=0&supp=0.02&conf=0.2&limit=abc",
		"/mine?w=0&supp=0.02&conf=0.2&limit=1.5",
		"/mine?w=0&supp=0.02&conf=0.2&limit=2147483648",  // int32 overflow
		"/mine?w=0&supp=0.02&conf=0.2&offset=9999999999", // int64-range overflow
		"/content?w=0&supp=0.02&conf=0.2&items=x&offset=-1",
		"/trajectory?w=0&supp=0.02&conf=0.2&in=0,1&limit=-2",
		"/rollup?from=0&to=3&supp=0.02&conf=0.2&limit=nan",
	}
	for _, p := range bad {
		code, body := get(t, ts.URL, p)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", p, code)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("GET %s: malformed error body %q (%v)", p, body, err)
		}
	}

	// Valid edge values pass.
	for _, p := range []string{
		"/mine?w=0&supp=0.02&conf=0.2&limit=0&offset=0",
		"/mine?w=0&supp=0.02&conf=0.2&limit=2147483647",
	} {
		if code, body := get(t, ts.URL, p); code != http.StatusOK {
			t.Errorf("GET %s: status %d, body %s", p, code, body)
		}
	}
}

// failingWriter is a ResponseWriter whose wire is broken: every body write
// errors. Status and headers still land, mirroring a peer that vanished
// after the response line.
type failingWriter struct {
	hdr    http.Header
	status int
}

func (f *failingWriter) Header() http.Header {
	if f.hdr == nil {
		f.hdr = http.Header{}
	}
	return f.hdr
}
func (f *failingWriter) WriteHeader(code int) { f.status = code }
func (f *failingWriter) Write([]byte) (int, error) {
	return 0, fmt.Errorf("broken pipe (test)")
}

// TestWriteFailureCounter: a failed body write is counted per endpoint and
// surfaced on /metrics and the Prometheus exposition instead of vanishing.
func TestWriteFailureCounter(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm the cache so the broken request takes the fast path, whose write
	// goes straight to the (failing) wire.
	const path = "/mine?w=0&supp=0.02&conf=0.2"
	if code, _ := get(t, ts.URL, path); code != http.StatusOK {
		t.Fatal("warming failed")
	}

	req := httptest.NewRequest(http.MethodGet, path, nil)
	fw := &failingWriter{}
	s.Handler().ServeHTTP(fw, req)
	if fw.status != http.StatusOK {
		t.Fatalf("broken-wire request: status %d", fw.status)
	}

	code, body := get(t, ts.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Endpoints["mine"].WriteFailures; got != 1 {
		t.Fatalf("mine writeFailures = %d, want 1 (snapshot: %+v)", got, snap.Endpoints["mine"])
	}

	code, prom := get(t, ts.URL, "/metrics?format=prometheus")
	if code != http.StatusOK {
		t.Fatalf("prometheus exposition status %d", code)
	}
	if !strings.Contains(string(prom), `tarad_response_write_failures_total{endpoint="mine"} 1`) {
		t.Fatalf("prometheus exposition missing write-failure series:\n%s", prom)
	}
	if !strings.Contains(string(prom), "tarad_response_cache_coalesced_total") {
		t.Fatal("prometheus exposition missing coalesced counter")
	}
}

// TestPaginatedEnvelopes checks trajectory and rollup answers carry the same
// total/offset/count bookkeeping as mine.
func TestPaginatedEnvelopes(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var full query.TrajectoryResult
	_, body := get(t, ts.URL, "/trajectory?w=0&supp=0.02&conf=0.2&in=0,1,2,3")
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if full.Total < 2 {
		t.Skipf("need >= 2 trajectories, have %d", full.Total)
	}
	var page query.TrajectoryResult
	_, body = get(t, ts.URL, "/trajectory?w=0&supp=0.02&conf=0.2&in=0,1,2,3&limit=1&offset=1")
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != full.Total || page.Offset != 1 || page.Count != 1 || len(page.Rules) != 1 {
		t.Fatalf("trajectory page: %+v", page)
	}
	if page.Rules[0].ID != full.Rules[1].ID {
		t.Fatalf("trajectory page row: id %d, want %d", page.Rules[0].ID, full.Rules[1].ID)
	}

	var ru query.RollUpResult
	_, body = get(t, ts.URL, "/rollup?from=0&to=3&supp=0.02&conf=0.2&limit=2&offset=1")
	if err := json.Unmarshal(body, &ru); err != nil {
		t.Fatal(err)
	}
	if ru.Offset != 1 || ru.Count > 2 || ru.Count != len(ru.Rules) || ru.Total < ru.Count {
		t.Fatalf("rollup page: total=%d offset=%d count=%d rules=%d", ru.Total, ru.Offset, ru.Count, len(ru.Rules))
	}
}
