package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sync"
	"testing"
	"time"

	"tara/internal/gen"
	"tara/internal/mining"
	"tara/internal/query"
	"tara/internal/tara"
)

// The knowledge base is read-only for the daemon, so all tests share one
// build (construction dominates test time under -race).
var (
	fwOnce sync.Once
	fwVal  *tara.Framework
	fwErr  error
)

func testFramework(t *testing.T) *tara.Framework {
	t.Helper()
	fwOnce.Do(func() {
		db, err := gen.Retail(gen.RetailParams{Transactions: 600, NumItems: 80, AvgLen: 8, Seed: 7})
		if err != nil {
			fwErr = err
			return
		}
		fwVal, fwErr = tara.Build(db, 0, 4, tara.Config{
			GenMinSupport: 0.01,
			GenMinConf:    0.1,
			MaxItemsetLen: 3,
			Miner:         mining.Eclat{},
			ContentIndex:  true,
			Parallelism:   2,
		})
		if fwErr != nil || os.Getenv("TARA_SERVER_LOADMODE") != "mmap" {
			return
		}
		// CI runs the whole server suite a second time against a mapped
		// knowledge base: save the built framework in the mapped container
		// format and reopen it via mmap, so every endpoint test exercises
		// the lazily materialized serving path. The temp file must outlive
		// the process-shared fixture, so it is not tied to a testing.T.
		f, err := os.CreateTemp("", "tara-server-*.kb")
		if err != nil {
			fwErr = err
			return
		}
		defer os.Remove(f.Name())
		if fwErr = fwVal.SaveMapped(f); fwErr != nil {
			f.Close()
			return
		}
		if fwErr = f.Close(); fwErr != nil {
			return
		}
		fwVal, fwErr = tara.Open(f.Name())
	})
	if fwErr != nil {
		t.Fatalf("building test framework: %v", fwErr)
	}
	return fwVal
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Framework == nil {
		cfg.Framework = testFramework(t)
	}
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// anItemName returns the name of an item that participates in at least one
// qualifying rule, so /content queries have a non-trivial answer.
func anItemName(t *testing.T, fw *tara.Framework) string {
	t.Helper()
	views, err := fw.Mine(0, 0.01, 0.1)
	if err != nil || len(views) == 0 {
		t.Fatalf("Mine for item name: %d views, err=%v", len(views), err)
	}
	return fw.ItemDict().Name(views[0].Rule.Ant[0])
}

func get(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestEndpointsServeConcurrently drives every query endpoint with 10
// concurrent clients each (all endpoints in flight at once) and checks each
// answer is valid JSON with HTTP 200. Run under -race this doubles as the
// daemon's data-race check.
func TestEndpointsServeConcurrently(t *testing.T) {
	fw := testFramework(t)
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	item := url.QueryEscape(anItemName(t, fw))
	paths := []string{
		"/mine?w=0&supp=0.02&conf=0.2",
		"/count?w=0&supp=0.02&conf=0.2",
		"/trajectory?w=0&supp=0.02&conf=0.2&in=0,1,2,3",
		"/diff?w=0,1,2,3&a=0.02,0.2&b=0.05,0.3",
		"/recommend?w=1&supp=0.02&conf=0.2",
		"/rollup?from=0&to=3&supp=0.02&conf=0.2",
		"/drill?rule=0&from=0&to=3",
		"/content?w=0&supp=0.02&conf=0.2&items=" + item,
		"/rank?from=0&to=3&supp=0.02&conf=0.2&k=5",
		"/periodic?from=0&to=3&supp=0.02&conf=0.2&period=2&k=5",
		"/plot?w=0",
	}

	const clients = 10
	const iters = 2
	var wg sync.WaitGroup
	errs := make(chan error, len(paths)*clients)
	for _, p := range paths {
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					resp, err := http.Get(ts.URL + p)
					if err != nil {
						errs <- fmt.Errorf("GET %s: %v", p, err)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errs <- fmt.Errorf("GET %s: read: %v", p, err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("GET %s: status %d: %s", p, resp.StatusCode, body)
						return
					}
					var v map[string]any
					if err := json.Unmarshal(body, &v); err != nil {
						errs <- fmt.Errorf("GET %s: bad JSON: %v", p, err)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMineAnswerMatchesFramework cross-checks the HTTP answer against a
// direct framework call.
func TestMineAnswerMatchesFramework(t *testing.T) {
	fw := testFramework(t)
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	views, err := fw.Mine(1, 0.02, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.URL, "/mine?w=1&supp=0.02&conf=0.2")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var res query.MineResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if res.Window != 1 || res.Count != len(views) || len(res.Rules) != len(views) {
		t.Fatalf("got window=%d count=%d rules=%d, want window=1 count=%d", res.Window, res.Count, len(res.Rules), len(views))
	}
	for _, r := range res.Rules {
		if r.Support < 0.02 || r.Confidence < 0.2 {
			t.Errorf("rule #%d (%.5f, %.3f) below thresholds", r.ID, r.Support, r.Confidence)
		}
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		path string
		want int
	}{
		{"/mine", http.StatusBadRequest},                          // missing params
		{"/mine?w=0&supp=abc&conf=0.2", http.StatusBadRequest},    // unparseable
		{"/mine?w=0&supp=NaN&conf=0.2", http.StatusBadRequest},    // non-finite
		{"/mine?w=0&supp=2&conf=0.2", http.StatusBadRequest},      // out of [0,1]
		{"/mine?w=99&supp=0.02&conf=0.2", http.StatusBadRequest},  // window out of range
		{"/drill?rule=999999&from=0&to=3", http.StatusBadRequest}, // unknown rule
		{"/rank?from=0&to=3&supp=0.02&conf=0.2&by=nope", http.StatusBadRequest},
		{"/nosuch", http.StatusNotFound},
	}
	for _, c := range cases {
		code, body := get(t, ts.URL, c.path)
		if code != c.want {
			t.Errorf("GET %s: status %d, want %d (%s)", c.path, code, c.want, body)
		}
		if c.want == http.StatusBadRequest {
			var e errorBody
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("GET %s: error body %q not structured", c.path, body)
			}
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/mine?w=0&supp=0.02&conf=0.2", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /mine: status %d, want 405", resp.StatusCode)
	}
}

// TestInFlightLimiterSheds holds MaxInFlight slots busy and checks that
// further requests are shed with 429 instead of queueing.
func TestInFlightLimiterSheds(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s := newTestServer(t, Config{MaxInFlight: 2})
	s.delay = func(string) {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const path = "/mine?w=0&supp=0.02&conf=0.2"
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("slot holders did not enter")
		}
	}
	// Both slots are held: these must all shed immediately.
	for i := 0; i < 4; i++ {
		code, body := get(t, ts.URL, path)
		if code != http.StatusTooManyRequests {
			t.Errorf("overload request %d: status %d, want 429 (%s)", i, code, body)
		}
	}
	close(release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("slot holder %d: status %d, want 200", i, code)
		}
	}
	snap := s.metrics.snapshot()
	if snap.Shed < 4 {
		t.Errorf("shed counter = %d, want >= 4", snap.Shed)
	}
}

// TestRequestTimeout checks that a slow query answers 503 within the
// configured bound rather than hanging the client.
func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	s.delay = func(string) { time.Sleep(400 * time.Millisecond) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	code, _ := get(t, ts.URL, "/mine?w=0&supp=0.02&conf=0.2")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("timeout answer took %v", d)
	}
	snap := s.metrics.snapshot()
	ep := snap.Endpoints["mine"]
	if ep.Requests != 1 || ep.Errors != 1 {
		t.Errorf("timed-out request not counted: %+v", ep)
	}
}

// TestMetrics drives traffic and checks the /metrics answer: per-endpoint
// request and error counters, and ordered latency quantiles.
func TestMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const good = 20
	for i := 0; i < good; i++ {
		if code, body := get(t, ts.URL, "/mine?w=0&supp=0.02&conf=0.2"); code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
	}
	for i := 0; i < 2; i++ {
		get(t, ts.URL, "/mine?w=999&supp=0.02&conf=0.2")
	}

	code, body := get(t, ts.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	ep, ok := snap.Endpoints["mine"]
	if !ok {
		t.Fatalf("no mine endpoint in %s", body)
	}
	if ep.Requests != good+2 || ep.Errors != 2 {
		t.Errorf("mine: requests=%d errors=%d, want %d and 2", ep.Requests, ep.Errors, good+2)
	}
	l := ep.Latency
	if l.Count != good+2 {
		t.Errorf("latency count = %d, want %d", l.Count, good+2)
	}
	if l.P50Micros > l.P95Micros || l.P95Micros > l.P99Micros {
		t.Errorf("quantiles out of order: p50=%d p95=%d p99=%d", l.P50Micros, l.P95Micros, l.P99Micros)
	}
	if l.Count > 0 && l.MeanMicros <= 0 {
		t.Errorf("mean %v not positive with %d observations", l.MeanMicros, l.Count)
	}
	if idle, ok := snap.Endpoints["rollup"]; !ok || idle.Requests != 0 {
		t.Errorf("idle endpoint rollup: %+v, ok=%v", idle, ok)
	}
	// Config{} left KBLoadMode empty, so New fell back to the framework's
	// own load mode ("heap" built in-process, "mmap" when the suite runs
	// against a mapped knowledge base).
	if snap.KBLoadMode != s.fw.LoadMode() {
		t.Errorf("kbLoadMode = %q, want %q", snap.KBLoadMode, s.fw.LoadMode())
	}
	if snap.KBLoadMillis < 0 {
		t.Errorf("kbLoadMillis = %d, want >= 0", snap.KBLoadMillis)
	}
}

// TestMetricsQueryCache drives repeated identical queries and checks that
// /metrics reports the framework's query cache doing its job: nonzero hits
// and a nonzero per-class hit ratio. The framework (and so the cache) is
// shared across tests, so assertions are lower bounds, not exact counts.
func TestMetricsQueryCache(t *testing.T) {
	fw := testFramework(t)
	// The byte cache would absorb the warm repeats before they reach the
	// framework; disable it so this test keeps exercising the query cache.
	s := newTestServer(t, Config{ByteCacheSize: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var want query.CountResult
	for i := 0; i < 20; i++ {
		code, body := get(t, ts.URL, "/count?w=0&supp=0.02&conf=0.2")
		if code != http.StatusOK {
			t.Fatalf("/count status %d: %s", code, body)
		}
		var res query.CountResult
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("decoding /count: %v", err)
		}
		if i == 0 {
			want = res
			views, err := fw.Mine(0, 0.02, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != len(views) {
				t.Fatalf("/count = %d, framework mines %d", res.Count, len(views))
			}
		} else if res != want {
			t.Fatalf("cached /count diverged: %+v vs %+v", res, want)
		}
		if code, body := get(t, ts.URL, "/mine?w=0&supp=0.02&conf=0.2"); code != http.StatusOK {
			t.Fatalf("/mine status %d: %s", code, body)
		}
	}

	code, body := get(t, ts.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	qc := snap.QueryCache
	if !qc.Enabled {
		t.Fatalf("query cache not enabled in /metrics: %s", body)
	}
	if qc.Hits == 0 || qc.HitRatio <= 0 {
		t.Fatalf("query cache never hit: %+v", qc)
	}
	for _, class := range []string{"count", "mine"} {
		if cl := qc.Classes[class]; cl.Hits == 0 || cl.HitRatio <= 0 {
			t.Fatalf("%s class never hit: %+v", class, qc)
		}
	}
	if qc.Entries == 0 || qc.Entries > qc.Capacity {
		t.Fatalf("implausible cache occupancy: %+v", qc)
	}
}

// TestGracefulDrain cancels the serve context (the SIGTERM path) while a
// request is in flight and checks the request still completes with 200.
func TestGracefulDrain(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s := newTestServer(t, Config{})
	s.delay = func(string) {
		entered <- struct{}{}
		<-release
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln, 10*time.Second) }()

	base := "http://" + ln.Addr().String()
	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/mine?w=0&supp=0.02&conf=0.2")
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never entered the handler")
	}

	cancel() // the same path SIGTERM takes via signal.NotifyContext
	// Shutdown is now in progress; the in-flight request must survive it.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case code := <-reqDone:
		if code != http.StatusOK {
			t.Errorf("in-flight request: status %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never finished")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve returned %v, want nil after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after drain")
	}
}

func TestNewRequiresFramework(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a framework succeeded")
	}
}

// BenchmarkServerMineQPS measures end-to-end /mine throughput over real HTTP
// connections with parallel clients.
func BenchmarkServerMineQPS(b *testing.B) {
	db, err := gen.Retail(gen.RetailParams{Transactions: 600, NumItems: 80, AvgLen: 8, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	fw, err := tara.Build(db, 0, 4, tara.Config{
		GenMinSupport: 0.01, GenMinConf: 0.1, MaxItemsetLen: 3,
		Miner: mining.Eclat{}, ContentIndex: true, Parallelism: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{Framework: fw, Logger: quietLogger()})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/mine?w=0&supp=0.02&conf=0.2"

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Get(url)
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}
