package server

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"tara/internal/query"
	"tara/internal/traj"
)

// The encoded-response byte cache: the last hop of the zero-copy pipeline.
// Lemma 4 already makes a query answer a pure function of (window, canonical
// cut, query class, extra filter parameters); since committed windows are
// immutable, the *encoded JSON body* is one too. The daemon therefore caches
// final response bytes under that key and serves warm hits by writing the
// cached slice straight to the wire — no decode of the knowledge base, no
// view materialization, no JSON encoding. Entries are immutable byte views:
// stored once, never written again, shared by every concurrent reader.
//
// Each entry carries a strong ETag — a hash of the knowledge-base generation
// plus the canonical key — so two equal ETags imply byte-identical bodies.
// Conditional requests (If-None-Match) short-circuit to 304 without touching
// the body. Entries are invalidated per window through Framework.OnAppend,
// mirroring the query cache's invalidation; windows are append-only, so this
// is defensive, but it keeps "a cached body always equals a fresh encode"
// locally checkable.
//
// Cacheable classes are the single-window, cut-determined ones: mine (the
// lift filter rides along in the key as raw float bits, the limit/offset
// page in the page field), count, and recommend without a lift bound (the
// ND recommend path depends on more than the 2-D cut). Diff spans multiple
// windows with per-window cuts and stays on the query cache only.
//
// The trajectory classes (topk, similar, emerging) cache too, under their
// raw parameters instead of a canonical cut: their answers range over
// committed windows only, and committed windows are immutable, so an answer
// over an explicit [from, to] is a pure function of the request for all
// time. Emerging's open-ended to=-1 form is canonicalized to the latest
// committed window before keying, which both pins the answer and lets the
// per-window invalidation discipline stand unchanged (a key's window field
// is its range's last window; a window being committed right now can never
// equal the resolved `to` of an already-cached entry).
//
// Bodies are stored per content coding: the identity entry is canonical and
// a gzip-compressed variant (same key, enc=encGzip, "-gz"-suffixed ETag) is
// derived from it on the first gzip-accepting request. Per-window
// invalidation drops every coding of a window's entries alike, since enc is
// part of the key but not of the window match.

// byteClass enumerates the byte-cached response classes.
type byteClass uint8

const (
	byteMine byteClass = iota
	byteCount
	byteRecommend
	byteTopK
	byteSimilar
	byteEmerging
	numByteClasses
)

// Content codings a cached body may be stored under. Identity is the
// canonical entry written by the encode path; the gzip variant is derived
// lazily from it on the first gzip-accepting request (see gzipVariant).
const (
	encIdentity uint8 = iota
	encGzip
)

// byteCacheKey identifies one encoded response. cut packs the canonical
// cut-grid indexes (cutKey layout: support index high 32 bits, confidence
// low 32) — or, for the trajectory classes, the raw [from, to] window range;
// lift carries math.Float64bits of the mine lift filter (trajectory: the
// minSupp threshold bits) so distinct filters never share bytes; page packs
// the limit/offset pagination (pageKey layout) so each page caches
// independently; enc is the content coding of the stored body. x and ref
// are the trajectory classes' extra parameters (zero/empty elsewhere): x
// packs minConf bits plus the measure-or-metric and k pair, ref is the
// similarity reference profile in lossless shortest round-trip text.
type byteCacheKey struct {
	class  byteClass
	enc    uint8
	window int32
	cut    uint64
	lift   uint64
	page   uint64
	x      uint64
	x2     uint64
	ref    string
}

// pageKey packs the pagination parameters: offset in the high 32 bits,
// limit in the low 32. Both are validated to fit int32 at decode time.
func pageKey(limit, offset int) uint64 {
	return uint64(uint32(offset))<<32 | uint64(uint32(limit))
}

// DefaultByteCacheSize bounds the cache when Config.ByteCacheSize is zero.
const DefaultByteCacheSize = 2048

const byteCacheShards = 16

type byteCacheEntry struct {
	key  byteCacheKey
	etag string
	body []byte // immutable after store; includes the trailing newline
}

type byteCacheShard struct {
	mu    sync.Mutex
	lru   *list.List // front = most recent; values are *byteCacheEntry
	byKey map[byteCacheKey]*list.Element
}

// byteCache is the sharded LRU over encoded responses. All counters are
// atomics; the write/read ordering discipline matters for snapshots — see
// the comments on get and stats.
type byteCache struct {
	shards      [byteCacheShards]byteCacheShard
	capPerShard int

	// requests counts probes of cacheable requests; the handler bumps it
	// (inside get) BEFORE the hit/miss outcome is counted, so a snapshot
	// that reads outcomes first can never observe hits+misses > requests.
	requests      atomic.Uint64
	hits          atomic.Uint64
	misses        atomic.Uint64
	notModified   atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
	// coalesced counts requests that joined another request's in-progress
	// encode through the singleflight layer instead of encoding themselves.
	coalesced atomic.Uint64
}

func newByteCache(size int) *byteCache {
	if size <= 0 {
		size = DefaultByteCacheSize
	}
	per := (size + byteCacheShards - 1) / byteCacheShards
	if per < 1 {
		per = 1
	}
	c := &byteCache{capPerShard: per}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].byKey = make(map[byteCacheKey]*list.Element)
	}
	return c
}

func (c *byteCache) shardFor(k byteCacheKey) *byteCacheShard {
	h := uint64(k.window)*0x9E3779B97F4A7C15 + uint64(k.class)*0xBF58476D1CE4E5B9
	h ^= k.cut * 0x94D049BB133111EB
	h ^= k.lift*0xD6E8FEB86659FD93 + (h >> 29)
	h ^= k.page*0xC2B2AE3D27D4EB4F + uint64(k.enc)*0xFF51AFD7ED558CCD
	h ^= k.x*0xA24BAED4963EE407 + k.x2*0x9FB21C651E98DF25 + uint64(len(k.ref))*0x8EBC6AF09C88C6E3
	return &c.shards[h%byteCacheShards]
}

// get probes for k's encoded response, promoting a hit to most-recent. The
// request is counted before its outcome so hits <= requests holds under any
// snapshot interleaving (the same discipline as the middleware's
// requests-before-latency ordering).
func (c *byteCache) get(k byteCacheKey) (*byteCacheEntry, bool) {
	c.requests.Add(1)
	sh := c.shardFor(k)
	sh.mu.Lock()
	el, ok := sh.byKey[k]
	if ok {
		sh.lru.MoveToFront(el)
	}
	sh.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*byteCacheEntry), true
}

// peek is get without the request/outcome accounting: a non-counting lookup
// for re-checks whose original probe was already counted (the singleflight
// leader's double-check, gzip-variant derivation). A hit still refreshes
// recency.
func (c *byteCache) peek(k byteCacheKey) (*byteCacheEntry, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	el, ok := sh.byKey[k]
	if ok {
		sh.lru.MoveToFront(el)
	}
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	return el.Value.(*byteCacheEntry), true
}

// put stores an encoded response, evicting the shard's least-recent entry
// when full. The entry's body must never be mutated after this call.
func (c *byteCache) put(e *byteCacheEntry) {
	sh := c.shardFor(e.key)
	sh.mu.Lock()
	if el, ok := sh.byKey[e.key]; ok {
		// Same key means same bytes (the key is a lossless function of the
		// body); keep the resident entry and just refresh recency.
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		return
	}
	evicted := false
	if sh.lru.Len() >= c.capPerShard {
		back := sh.lru.Back()
		delete(sh.byKey, back.Value.(*byteCacheEntry).key)
		sh.lru.Remove(back)
		evicted = true
	}
	sh.byKey[e.key] = sh.lru.PushFront(e)
	sh.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// invalidateWindow drops every encoded response cached for window w; other
// windows' entries are untouched. Registered with Framework.OnAppend.
func (c *byteCache) invalidateWindow(w int) {
	dropped := uint64(0)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; {
			next := el.Next()
			if e := el.Value.(*byteCacheEntry); e.key.window == int32(w) {
				delete(sh.byKey, e.key)
				sh.lru.Remove(el)
				dropped++
			}
			el = next
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		c.invalidations.Add(dropped)
	}
}

// entries counts resident encoded responses across shards.
func (c *byteCache) entries() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// ByteCacheStats is the /metrics view of the encoded-response cache.
type ByteCacheStats struct {
	Enabled       bool    `json:"enabled"`
	Entries       int     `json:"entries"`
	Capacity      int     `json:"capacity"`
	Requests      uint64  `json:"requests"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	HitRatio      float64 `json:"hitRatio"`
	NotModified   uint64  `json:"notModified"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
	Coalesced     uint64  `json:"coalesced"`
}

// ByteCacheStats reports the encoded-response cache's counters; the zero
// value (Enabled false) when the cache is disabled. Exported for the bench
// harness and /metrics.
func (s *Server) ByteCacheStats() ByteCacheStats { return s.bcache.stats() }

// stats snapshots the counters. Outcome counters (hits, misses, notModified)
// are read BEFORE requests: get increments requests first and the outcome
// second, so this order guarantees Hits+Misses <= Requests and
// Hits <= Requests in every mid-traffic snapshot — the same discipline as
// the latency/requests fix in the endpoint middleware.
func (c *byteCache) stats() ByteCacheStats {
	if c == nil {
		return ByteCacheStats{}
	}
	s := ByteCacheStats{
		Enabled:       true,
		Capacity:      c.capPerShard * byteCacheShards,
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		NotModified:   c.notModified.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Coalesced:     c.coalesced.Load(),
	}
	s.Requests = c.requests.Load()
	s.Entries = c.entries()
	if s.Hits+s.Misses > 0 {
		s.HitRatio = float64(s.Hits) / float64(s.Hits+s.Misses)
	}
	return s
}

// byteCacheKeyFor canonicalizes a decoded query to its byte-cache key, or
// reports the request not byte-cacheable; the returned query is the one to
// execute on a miss (identical to the input except for emerging's resolved
// to, which must match the key). Single-window classes key on the canonical
// cut (plus the lift filter bits); a recommend with a lift bound answers
// from the ND region path and is excluded. Trajectory classes key on their
// raw parameters over an already-committed window range.
func (s *Server) byteCacheKeyFor(q query.Query) (byteCacheKey, query.Query, bool) {
	var class byteClass
	lift := uint64(0)
	page := uint64(0)
	switch q.Kind {
	case query.Mine:
		class = byteMine
		lift = math.Float64bits(q.MinLift)
		page = pageKey(q.Limit, q.Offset)
	case query.Count:
		class = byteCount
	case query.Recommend:
		if q.MinLift > 0 {
			return byteCacheKey{}, q, false
		}
		class = byteRecommend
	case query.TopK, query.Similar, query.Emerging:
		return s.trajByteCacheKey(q)
	default:
		return byteCacheKey{}, q, false
	}
	si, ci, err := s.fw.CanonicalCut(q.Window, q.MinSupp, q.MinConf)
	if err != nil {
		// Out-of-range window and friends: let the normal path produce the
		// error response (errors are not cached).
		return byteCacheKey{}, q, false
	}
	return byteCacheKey{class: class, window: int32(q.Window), cut: cutKey(si, ci), lift: lift, page: page}, q, true
}

// trajByteCacheKey keys a trajectory query. The key is a lossless function
// of every answer-shaping parameter: range (cut), thresholds (lift, x low
// bits... see field docs), measure/metric and k (x2), pagination (page) and
// the similarity profile (ref). Emerging's to=-1 is resolved here so the
// executed query and the key always agree on the range.
func (s *Server) trajByteCacheKey(q query.Query) (byteCacheKey, query.Query, bool) {
	if q.Kind == query.Emerging && q.To == -1 {
		q.To = s.fw.Windows() - 1
	}
	if q.From < 0 || q.To < q.From || q.To >= s.fw.Windows() {
		// Out-of-range: let the normal path produce the error response.
		return byteCacheKey{}, q, false
	}
	k := byteCacheKey{
		window: int32(q.To),
		cut:    cutKey(q.From, q.To),
		lift:   math.Float64bits(q.MinSupp),
		x:      math.Float64bits(q.MinConf),
		page:   pageKey(q.Limit, q.Offset),
	}
	switch q.Kind {
	case query.TopK:
		m, err := traj.MeasureByName(q.Measure)
		if err != nil {
			return byteCacheKey{}, q, false
		}
		k.class = byteTopK
		k.x2 = uint64(uint32(m))<<32 | uint64(uint32(q.TopK))
	case query.Similar:
		m, err := traj.MetricByName(q.Metric)
		if err != nil {
			return byteCacheKey{}, q, false
		}
		k.class = byteSimilar
		k.x2 = uint64(uint32(m))<<32 | uint64(uint32(q.TopK))
		parts := make([]string, len(q.Ref))
		for i, v := range q.Ref {
			// Shortest round-trip formatting is injective on float64, so two
			// different profiles can never share a key.
			parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		k.ref = strings.Join(parts, ",")
	case query.Emerging:
		k.class = byteEmerging
	}
	return k, q, true
}

// cutKey packs the canonical cut-grid index pair, mirroring the query
// cache's layout in internal/tara.
func cutKey(si, ci int) uint64 { return uint64(uint32(si))<<32 | uint64(uint32(ci)) }

// etagFor derives the strong entity tag of a cacheable response: a quoted
// FNV-64a hash over the knowledge-base generation and the canonical key.
// Committed windows are immutable, so (generation, key) -> body is a
// function and equal ETags imply byte-identical bodies — strong comparison
// as RFC 9110 defines it.
func etagFor(generation uint64, k byteCacheKey) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(generation)
	put(uint64(k.class))
	put(uint64(uint32(k.window)))
	put(k.cut)
	put(k.lift)
	put(k.page)
	put(k.x)
	put(k.x2)
	h.Write([]byte(k.ref))
	return fmt.Sprintf("%q", fmt.Sprintf("%016x", h.Sum64()))
}

// gzipTag derives the gzip representation's entity tag from the identity
// tag: the same opaque hash with a "-gz" suffix inside the quotes. RFC 9110
// wants distinct representations of a resource to carry distinct tags, so
// the two codings never validate against each other.
func gzipTag(identity string) string {
	return identity[:len(identity)-1] + `-gz"`
}

// etagMatches evaluates If-None-Match per RFC 9110 §13.1.2: weak comparison
// (a W/ prefix on either side is ignored; the opaque tags must be
// identical) over a properly parsed entity-tag list — commas are legal
// inside a quoted opaque tag, so the header cannot be split blindly on
// commas. "*" matches any current representation. Weak comparison matters in
// practice: intermediaries legitimately downgrade tags to weak (nginx does
// whenever it re-compresses a body), and a strong-only comparison makes
// revalidation behind such a proxy permanently miss.
func etagMatches(headerVal, etag string) bool {
	ours := strings.TrimPrefix(etag, "W/")
	rest := headerVal
	for rest != "" {
		rest = strings.TrimLeft(rest, " \t,")
		if rest == "" {
			return false
		}
		if rest[0] == '*' {
			return true
		}
		cand := strings.TrimPrefix(rest, "W/")
		if len(cand) < 2 || cand[0] != '"' {
			// Malformed member: skip to the next comma and keep parsing.
			i := strings.IndexByte(rest, ',')
			if i < 0 {
				return false
			}
			rest = rest[i+1:]
			continue
		}
		end := strings.IndexByte(cand[1:], '"')
		if end < 0 {
			// Unterminated tag: nothing further to parse.
			return false
		}
		if cand[:end+2] == ours {
			return true
		}
		rest = cand[end+2:]
	}
	return false
}
