package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBucketEdges pins the histogram's bucket assignment: bucket i covers
// (2^(i-1), 2^i] microseconds with bucket 0 = [0,1], so exact powers of two
// file into the bucket whose bound names them — the off-by-one the old
// bits.Len64(us) indexing got wrong (it pushed 2^k into bucket k+1, making
// quantile bounds up to 2x loose, and split 0µs and 1µs into different
// buckets).
func TestBucketEdges(t *testing.T) {
	cases := []struct {
		us   uint64
		want int
	}{
		{0, 0}, {1, 0}, // sub-microsecond and 1µs share bucket 0
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {7, 3}, {8, 3},
		{9, 4}, {15, 4}, {16, 4},
		{17, 5},
		{1023, 10}, {1024, 10}, {1025, 11},
		{1 << 20, 20}, {1<<20 + 1, 21},
		{1 << 29, 29},
		{1<<29 + 1, 29},     // clamped into the last bucket
		{1 << 40, 29},       // far overflow clamps too
		{^uint64(0), 29},    // max value
		{1<<28 + 1, 29},     // first value past bucket 28's bound
		{1 << 28, 28},       // exactly on bucket 28's bound
		{(1 << 28) - 1, 28}, // inside bucket 28
	}
	for _, c := range cases {
		if got := bucketFor(c.us); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.us, got, c.want)
		}
	}
	// Every bucket's bound is an inclusive upper edge: observing exactly
	// BucketBound(i) must land in bucket i, and one more must not.
	for i := 0; i < NumBuckets; i++ {
		if got := bucketFor(BucketBound(i)); got != i {
			t.Errorf("bucketFor(BucketBound(%d)=%d) = %d, want %d", i, BucketBound(i), got, i)
		}
		if i+1 < NumBuckets {
			if got := bucketFor(BucketBound(i) + 1); got != i+1 {
				t.Errorf("bucketFor(%d) = %d, want %d", BucketBound(i)+1, got, i+1)
			}
		}
	}
}

// TestQuantileUpperBounds is the table-driven quantile contract: for any
// observed set, Quantile(q) is an inclusive upper bound on the true
// q-quantile, equal to the bound of the bucket holding it.
func TestQuantileUpperBounds(t *testing.T) {
	cases := []struct {
		name    string
		obs     []uint64
		q       float64
		want    uint64
		trueQ   uint64 // the exact quantile value, to assert want >= trueQ
		comment string
	}{
		{"empty", nil, 0.5, 0, 0, "empty histogram answers 0"},
		{"single-zero", []uint64{0}, 0.5, 1, 0, "bucket 0 bound is 1µs"},
		{"single-one", []uint64{1}, 0.99, 1, 1, "1µs is bucket 0's edge"},
		{"exact-power", []uint64{1024}, 0.5, 1024, 1024, "power of two reports itself, not 2047"},
		{"mixed-p50", []uint64{1, 2, 3, 100, 200}, 0.5, 4, 3, "median 3 rounds up to bucket edge 4"},
		{"mixed-p95", []uint64{1, 1, 1, 1, 1, 1, 1, 1, 1, 900}, 0.95, 1024, 900, "tail lands in (512,1024]"},
		{"all-same", []uint64{7, 7, 7, 7}, 0.99, 8, 7, "uniform values share bucket (4,8]"},
		{"overflow", []uint64{1 << 40}, 0.5, 1 << 29, 1 << 40, "clamped tail reports the last bound"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var h Hist
			for _, us := range c.obs {
				h.ObserveMicros(us)
			}
			got := h.Quantile(c.q)
			if got != c.want {
				t.Errorf("Quantile(%g) = %d, want %d (%s)", c.q, got, c.want, c.comment)
			}
			// The bound property (except the clamped-overflow bucket, whose
			// bound is by construction a floor on huge values).
			if c.trueQ <= BucketBound(NumBuckets-1) && got < c.trueQ {
				t.Errorf("Quantile(%g) = %d below true quantile %d", c.q, got, c.trueQ)
			}
		})
	}
}

func TestQuantileMonotone(t *testing.T) {
	var h Hist
	for us := uint64(0); us < 5000; us += 13 {
		h.ObserveMicros(us)
	}
	qs := []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1.0}
	prev := uint64(0)
	for _, q := range qs {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%g) = %d < previous %d", q, v, prev)
		}
		prev = v
	}
}

// TestHistSnapshotConsistent checks the count-then-buckets snapshot order:
// under concurrent observation, sum(Buckets) >= Count in every snapshot.
func TestHistSnapshotConsistent(t *testing.T) {
	var h Hist
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			us := uint64(g)
			for {
				select {
				case <-stop:
					return
				default:
					h.ObserveMicros(us % 4096)
					us += 7
				}
			}
		}(g)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	var lastCount uint64
	for time.Now().Before(deadline) {
		s := h.Snapshot()
		var sum uint64
		for _, b := range s.Buckets {
			sum += b
		}
		if sum < s.Count {
			t.Fatalf("snapshot tore: bucket sum %d < count %d", sum, s.Count)
		}
		if s.Count < lastCount {
			t.Fatalf("count went backwards: %d -> %d", lastCount, s.Count)
		}
		lastCount = s.Count
	}
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	var sum uint64
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != s.Count {
		t.Fatalf("quiescent mismatch: bucket sum %d != count %d", sum, s.Count)
	}
}

func TestTraceStagesAndNilSafety(t *testing.T) {
	var nilTr *Trace
	sp := nilTr.Start(StageDecode)
	sp.End() // must not panic
	nilTr.Add(StageCut, time.Millisecond)
	nilTr.Finish()
	if nilTr.ID() != "" || nilTr.Total() != 0 || nilTr.Stages() != nil {
		t.Fatal("nil trace leaked state")
	}

	tr := NewTrace("req-1")
	if tr.ID() != "req-1" {
		t.Fatalf("ID = %q", tr.ID())
	}
	tr.Add(StageDecode, 5*time.Microsecond)
	tr.Add(StageEPSLookup, 10*time.Microsecond)
	tr.Add(StageEPSLookup, 10*time.Microsecond) // accumulates
	tr.Finish()
	st := tr.Stages()
	if len(st) != 2 {
		t.Fatalf("Stages = %v, want 2 entries", st)
	}
	if st[0].Stage != "decode" || st[1].Stage != "eps-lookup" {
		t.Fatalf("stage order/names wrong: %v", st)
	}
	if st[1].Micros != 20 {
		t.Fatalf("eps-lookup = %vµs, want 20", st[1].Micros)
	}
	if tr.StageDur(StageCacheProbe) != 0 {
		t.Fatal("unrecorded stage nonzero")
	}
	if tr.Total() <= 0 {
		t.Fatal("finished total not positive")
	}
}

func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context produced a trace")
	}
	tr := NewTrace("")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
	if tr.ID() == "" {
		t.Fatal("NewTrace(\"\") did not mint an id")
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestSlowRingKeepsSlowest(t *testing.T) {
	r := NewSlowRing(4)
	for i := 1; i <= 10; i++ {
		r.Offer(&SlowTrace{ID: fmt.Sprintf("t%d", i), TotalMicros: float64(i)})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d traces, want 4", len(got))
	}
	for i, st := range got {
		want := float64(10 - i)
		if st.TotalMicros != want {
			t.Errorf("slot %d = %v µs, want %v (snapshot %v)", i, st.TotalMicros, want, got)
		}
	}
	// A candidate cheaper than everything retained is rejected.
	r.Offer(&SlowTrace{ID: "cheap", TotalMicros: 1})
	for _, st := range r.Snapshot() {
		if st.ID == "cheap" {
			t.Fatal("ring admitted a trace cheaper than its minimum")
		}
	}
}

func TestSlowRingConcurrent(t *testing.T) {
	r := NewSlowRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Offer(&SlowTrace{ID: fmt.Sprintf("g%d-%d", g, i), TotalMicros: float64(i)})
			}
		}(g)
	}
	wg.Wait()
	got := r.Snapshot()
	if len(got) == 0 || len(got) > 8 {
		t.Fatalf("snapshot size %d out of bounds", len(got))
	}
	// Best-effort top-N: everything retained should at least be from the
	// expensive end of the offered range.
	for _, st := range got {
		if st.TotalMicros < 400 {
			t.Errorf("retained cheap trace %v", st)
		}
	}
}
