package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestSampleWindowQuantiles(t *testing.T) {
	w := NewSampleWindow(100)
	if got := w.Quantile(0.99); got != 0 {
		t.Errorf("empty window quantile = %g, want 0", got)
	}
	for i := 1; i <= 100; i++ {
		w.Add(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := w.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := w.Max(); got != 100 {
		t.Errorf("Max = %g, want 100", got)
	}
}

// TestSampleWindowRing checks that a full window retains exactly the most
// recent cap samples: after overwriting with a higher regime, the old regime
// must be invisible.
func TestSampleWindowRing(t *testing.T) {
	w := NewSampleWindow(8)
	for i := 0; i < 8; i++ {
		w.Add(1)
	}
	for i := 0; i < 8; i++ {
		w.Add(1000)
	}
	if got := w.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	if got := w.Total(); got != 16 {
		t.Errorf("Total = %d, want 16", got)
	}
	if got := w.Quantile(0); got != 1000 {
		t.Errorf("min after overwrite = %g, want 1000 (old regime must be evicted)", got)
	}
	w.Reset()
	if w.Len() != 0 || w.Total() != 0 {
		t.Errorf("after Reset: Len=%d Total=%d, want 0,0", w.Len(), w.Total())
	}
	w.Add(7)
	if got := w.Quantile(0.5); got != 7 {
		t.Errorf("quantile after reset+add = %g, want 7", got)
	}
}

// TestSampleWindowAgainstSort cross-checks nearest-rank quantiles against a
// direct sort on random data, including a partially filled window.
func TestSampleWindowAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 3, 17, 64} {
		w := NewSampleWindow(64)
		vals := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			v := r.Float64() * 1e4
			w.Add(v)
			vals = append(vals, v)
		}
		sort.Float64s(vals)
		for _, q := range []float64{0.01, 0.5, 0.9, 0.99} {
			i := int(math.Ceil(q*float64(n))) - 1
			if i < 0 {
				i = 0
			}
			if got, want := w.Quantile(q), vals[i]; got != want {
				t.Errorf("n=%d Quantile(%g) = %g, want %g", n, q, got, want)
			}
		}
	}
}

func TestSampleWindowDropsNaN(t *testing.T) {
	w := NewSampleWindow(4)
	w.Add(math.NaN())
	w.Add(2)
	if w.Len() != 1 || w.Total() != 1 {
		t.Errorf("NaN counted: Len=%d Total=%d, want 1,1", w.Len(), w.Total())
	}
	if got := w.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) = %g, want 2", got)
	}
}
