package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// Runtime observability: a point-in-time view of the Go runtime's resource
// state, read through runtime/metrics so the serving path never pays for a
// stop-the-world ReadMemStats. The SLO evidence layer cares about exactly the
// series that explain tail latency under load — GC pauses (the classic p99.9
// villain), scheduler latency (the saturation signal: how long runnable
// goroutines wait for a thread), live heap (the GC pressure input) — so those
// are what RuntimeSnapshot carries, alongside the goroutine and GC-cycle
// gauges that bound them.

// runtimeMetricNames are the runtime/metrics samples one ReadRuntime reads.
// Order matters: it pairs with the indexing in ReadRuntime.
var runtimeMetricNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/goal:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// RuntimeHist summarizes one runtime/metrics duration distribution (GC
// pauses, scheduler latencies). Quantiles are inclusive upper bounds at the
// runtime's own bucket resolution. Bounds/Counts carry the raw bucket view
// for exposition formats that want the full distribution: Bounds[i] is the
// exclusive upper edge (in seconds) of the bucket counted by Counts[i], with
// a final +Inf bucket when the runtime reports one.
type RuntimeHist struct {
	Count     uint64    `json:"count"`
	P50Micros float64   `json:"p50Micros"`
	P99Micros float64   `json:"p99Micros"`
	MaxMicros float64   `json:"maxMicros"`
	Bounds    []float64 `json:"-"`
	Counts    []uint64  `json:"-"`
}

// RuntimeSnapshot is the /metrics view of the Go runtime.
type RuntimeSnapshot struct {
	// Goroutines counts live goroutines (the runtime's own gauge, which can
	// differ slightly from runtime.NumGoroutine under churn).
	Goroutines uint64 `json:"goroutines"`
	// HeapLiveBytes is the bytes of live heap objects — the GC's input.
	HeapLiveBytes uint64 `json:"heapLiveBytes"`
	// HeapGoalBytes is the size the GC is currently aiming to keep the heap
	// under; live bytes approaching the goal means a collection is imminent.
	HeapGoalBytes uint64 `json:"heapGoalBytes"`
	// GCCycles counts completed GC cycles since process start.
	GCCycles uint64 `json:"gcCycles"`
	// GCPause is the distribution of stop-the-world pause latencies.
	GCPause RuntimeHist `json:"gcPause"`
	// SchedLatency is the distribution of time goroutines spent runnable
	// before running — the direct measure of CPU saturation.
	SchedLatency RuntimeHist `json:"schedLatency"`
}

// ReadRuntime samples the runtime's resource state. It is safe to call
// concurrently and costs a few microseconds; callers snapshotting /metrics
// call it per scrape, not per request.
func ReadRuntime() RuntimeSnapshot {
	samples := make([]metrics.Sample, len(runtimeMetricNames))
	for i, name := range runtimeMetricNames {
		samples[i].Name = name
	}
	metrics.Read(samples)

	u64 := func(i int) uint64 {
		if samples[i].Value.Kind() == metrics.KindUint64 {
			return samples[i].Value.Uint64()
		}
		return 0
	}
	hist := func(i int) RuntimeHist {
		if samples[i].Value.Kind() != metrics.KindFloat64Histogram {
			return RuntimeHist{}
		}
		return summarizeFloat64Hist(samples[i].Value.Float64Histogram())
	}
	snap := RuntimeSnapshot{
		Goroutines:    u64(0),
		HeapLiveBytes: u64(1),
		HeapGoalBytes: u64(2),
		GCCycles:      u64(3),
		GCPause:       hist(4),
		SchedLatency:  hist(5),
	}
	if snap.Goroutines == 0 {
		// A runtime that doesn't export the gauge (KindBad on some future
		// toolchain) still reports something useful.
		snap.Goroutines = uint64(runtime.NumGoroutine())
	}
	return snap
}

// summarizeFloat64Hist reduces a runtime Float64Histogram (bucket boundaries
// in seconds) to the snapshot's quantile view, keeping the raw buckets for
// Prometheus exposition. The runtime's first boundary may be -Inf and the
// last +Inf; quantile answers use each bucket's finite upper edge, falling
// back to the lower edge for the +Inf bucket.
func summarizeFloat64Hist(h *metrics.Float64Histogram) RuntimeHist {
	if h == nil || len(h.Counts) == 0 {
		return RuntimeHist{}
	}
	out := RuntimeHist{Counts: h.Counts}
	// Buckets has len(Counts)+1 boundaries; bucket i spans
	// [Buckets[i], Buckets[i+1]). Record the upper edges.
	out.Bounds = h.Buckets[1:]
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	out.Count = total
	if total == 0 {
		return out
	}
	upper := func(i int) float64 {
		b := out.Bounds[i]
		if isInf(b) && i > 0 {
			return h.Buckets[i] // +Inf bucket: report its finite lower edge
		}
		return b
	}
	quantile := func(q float64) float64 {
		target := uint64(math.Ceil(q * float64(total)))
		if target == 0 {
			target = 1
		}
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			if cum >= target {
				return upper(i) * 1e6
			}
		}
		return upper(len(h.Counts)-1) * 1e6
	}
	out.P50Micros = quantile(0.50)
	out.P99Micros = quantile(0.99)
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			out.MaxMicros = upper(i) * 1e6
			break
		}
	}
	return out
}

func isInf(f float64) bool { return f > 1e300 || f < -1e300 }
