package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// SlowTrace is one captured slow request, as served by /debug/slow. Endpoint
// is the HTTP route the request arrived on; Class is the query class it
// decoded as (the textual-syntax op name, e.g. "about" for /content), so
// consumers filtering by workload class don't have to know the route table.
type SlowTrace struct {
	ID          string        `json:"id"`
	Endpoint    string        `json:"endpoint"`
	Class       string        `json:"class"`
	Status      int           `json:"status"`
	Start       time.Time     `json:"start"`
	TotalMicros float64       `json:"totalMicros"`
	Stages      []StageTiming `json:"stages"`
}

// SlowRing retains approximately the N slowest traces seen so far in a fixed
// array of atomic slots. Offer replaces the currently-cheapest slot when the
// candidate is slower; the scan-then-CAS is not globally atomic, so under
// heavy contention a near-minimum may survive a round — an accepted
// inaccuracy that buys a lock-free hot path. Slots only ever get slower
// entries (monotone per CAS), so the ring converges on the true top-N of a
// stable workload.
type SlowRing struct {
	slots []atomic.Pointer[SlowTrace]
}

// NewSlowRing returns a ring retaining n traces (min 1).
func NewSlowRing(n int) *SlowRing {
	if n < 1 {
		n = 1
	}
	return &SlowRing{slots: make([]atomic.Pointer[SlowTrace], n)}
}

// Cap returns the ring's capacity.
func (r *SlowRing) Cap() int { return len(r.slots) }

// Offer considers t for retention. Nil traces are ignored.
func (r *SlowRing) Offer(t *SlowTrace) {
	if t == nil {
		return
	}
	// Find the cheapest slot (empty slots are cheapest of all).
	minIdx, minVal := -1, (*SlowTrace)(nil)
	for i := range r.slots {
		cur := r.slots[i].Load()
		if cur == nil {
			minIdx, minVal = i, nil
			break
		}
		if minVal == nil || cur.TotalMicros < minVal.TotalMicros {
			minIdx, minVal = i, cur
		}
	}
	if minVal != nil && t.TotalMicros <= minVal.TotalMicros {
		return
	}
	// Lost CAS means another goroutine just updated this slot; dropping the
	// candidate keeps Offer wait-free, and the competing entry was observed
	// at least as recently.
	r.slots[minIdx].CompareAndSwap(minVal, t)
}

// Snapshot returns the retained traces, slowest first.
func (r *SlowRing) Snapshot() []SlowTrace {
	out := make([]SlowTrace, 0, len(r.slots))
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			out = append(out, *t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalMicros > out[j].TotalMicros })
	return out
}
