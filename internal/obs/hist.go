package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a lock-free latency histogram over power-of-two microsecond
// buckets. Bucket i covers (2^(i-1), 2^i] microseconds, with bucket 0
// covering [0, 1]; BucketBound(i) = 2^i is each bucket's inclusive upper
// edge, so exact powers of two land in the bucket whose bound names them and
// every quantile answer is a true upper bound at power-of-two resolution.
//
// All fields are atomics: observation never contends with snapshotting, and
// the write order (buckets, then count, then sum) pairs with the snapshot
// read order (count, then sum, then buckets) to guarantee that any snapshot
// sees sum(Buckets) >= Count — concurrent readers get internally consistent,
// slightly stale views rather than torn ones.
type Hist struct {
	count   atomic.Uint64
	sumUS   atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// NumBuckets spans [0,1]µs through 2^29µs (~9 minutes); larger observations
// clamp into the last bucket.
const NumBuckets = 30

// BucketBound returns bucket i's inclusive upper edge in microseconds: 2^i.
func BucketBound(i int) uint64 { return uint64(1) << i }

// bucketFor files us microseconds into its bucket index.
func bucketFor(us uint64) int {
	if us <= 1 {
		return 0
	}
	i := bits.Len64(us - 1) // (2^(k-1), 2^k] -> k
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	h.ObserveMicros(uint64(d.Microseconds()))
}

// ObserveMicros records one latency given in microseconds.
func (h *Hist) ObserveMicros(us uint64) {
	h.buckets[bucketFor(us)].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// SumMicros returns the sum of observed microseconds.
func (h *Hist) SumMicros() uint64 { return h.sumUS.Load() }

// MeanMicros returns the mean observed latency, 0 when empty.
func (h *Hist) MeanMicros() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sumUS.Load()) / float64(c)
}

// Quantile returns an inclusive upper bound (in microseconds) on the
// q-quantile of the observed latencies, at power-of-two resolution: the
// bound of the first bucket whose cumulative count reaches ⌈q·total⌉.
// Returns 0 when the histogram is empty.
func (h *Hist) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return BucketBound(i)
		}
	}
	// Concurrent increments can make count lead the bucket loads; the last
	// bucket's bound stays a valid upper bound.
	return BucketBound(NumBuckets - 1)
}

// HistSnapshot is a point-in-time copy of a Hist, used by the Prometheus
// renderer. Loaded count-first, so sum(Buckets) >= Count always holds.
type HistSnapshot struct {
	Count     uint64
	SumMicros uint64
	Buckets   [NumBuckets]uint64
}

// Snapshot copies the histogram's counters.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.SumMicros = h.sumUS.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}
