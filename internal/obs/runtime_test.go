package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"testing"
)

// TestReadRuntimeSanity forces a GC so every series has data, then checks the
// snapshot is internally consistent: live heap below (or at) the goal's order
// of magnitude, nonzero gauges, and histograms whose quantiles are ordered.
func TestReadRuntimeSanity(t *testing.T) {
	runtime.GC()
	snap := ReadRuntime()

	if snap.Goroutines == 0 {
		t.Error("Goroutines = 0, want > 0")
	}
	if snap.HeapLiveBytes == 0 {
		t.Error("HeapLiveBytes = 0, want > 0")
	}
	if snap.HeapGoalBytes == 0 {
		t.Error("HeapGoalBytes = 0, want > 0")
	}
	if snap.GCCycles == 0 {
		t.Error("GCCycles = 0 after an explicit runtime.GC()")
	}
	if snap.GCPause.Count == 0 {
		t.Error("GCPause.Count = 0 after an explicit runtime.GC()")
	}
	for name, h := range map[string]RuntimeHist{"GCPause": snap.GCPause, "SchedLatency": snap.SchedLatency} {
		if h.Count == 0 {
			continue
		}
		if h.P50Micros > h.P99Micros {
			t.Errorf("%s: p50 %g > p99 %g", name, h.P50Micros, h.P99Micros)
		}
		if h.P99Micros > h.MaxMicros {
			t.Errorf("%s: p99 %g > max %g", name, h.P99Micros, h.MaxMicros)
		}
		if len(h.Bounds) != len(h.Counts) {
			t.Errorf("%s: %d bounds for %d counts", name, len(h.Bounds), len(h.Counts))
		}
	}
}

// TestSummarizeFloat64Hist pins the quantile arithmetic on a hand-built
// histogram: 10 observations over three buckets with known upper edges.
func TestSummarizeFloat64Hist(t *testing.T) {
	h := &metrics.Float64Histogram{
		// Buckets i spans [Buckets[i], Buckets[i+1]); runtime histograms open
		// with -Inf and close with +Inf.
		Counts:  []uint64{6, 3, 1},
		Buckets: []float64{math.Inf(-1), 0.001, 0.002, math.Inf(1)},
	}
	got := summarizeFloat64Hist(h)
	if got.Count != 10 {
		t.Fatalf("Count = %d, want 10", got.Count)
	}
	// p50 target = ceil(0.5*10) = 5th observation -> first bucket, upper edge
	// 1ms = 1000us.
	if got.P50Micros != 1000 {
		t.Errorf("P50Micros = %g, want 1000", got.P50Micros)
	}
	// p99 target = ceil(0.99*10) = 10th observation -> +Inf bucket, which
	// reports its finite lower edge 2ms.
	if got.P99Micros != 2000 {
		t.Errorf("P99Micros = %g, want 2000", got.P99Micros)
	}
	if got.MaxMicros != 2000 {
		t.Errorf("MaxMicros = %g, want 2000", got.MaxMicros)
	}
	if len(got.Bounds) != 3 || got.Bounds[0] != 0.001 || !isInf(got.Bounds[2]) {
		t.Errorf("Bounds = %v, want [0.001 0.002 +Inf]", got.Bounds)
	}
}

// TestSummarizeFloat64HistEmpty checks the degenerate shapes: nil histogram
// and all-zero counts.
func TestSummarizeFloat64HistEmpty(t *testing.T) {
	if got := summarizeFloat64Hist(nil); got.Count != 0 {
		t.Errorf("nil histogram Count = %d, want 0", got.Count)
	}
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 0},
		Buckets: []float64{0, 0.001, 0.002},
	}
	got := summarizeFloat64Hist(h)
	if got.Count != 0 || got.P50Micros != 0 || got.MaxMicros != 0 {
		t.Errorf("empty histogram = %+v, want zero summary", got)
	}
	if len(got.Bounds) != 2 {
		t.Errorf("empty histogram kept %d bounds, want 2", len(got.Bounds))
	}
}
