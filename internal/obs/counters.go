package obs

import (
	"sync/atomic"
	"time"
)

// CounterSet is a fixed set of named monotonic counters sharing the
// package's lock-free discipline: writers Add through atomics, readers
// snapshot without coordination. The offline build pipeline uses one to
// account per-stage time (queue wait, mine, rule generation, EPS
// construction, ordered commit) while worker goroutines run concurrently —
// the same role the per-request Trace plays on the online path, but
// aggregated across all windows instead of scoped to one request.
//
// Like Trace, every method is safe on a nil *CounterSet, so paths built
// without counters pay only a nil check.
type CounterSet struct {
	names []string
	vals  []atomic.Int64
}

// NewCounterSet returns a counter set with one counter per name. Counters
// are addressed by index, matching the order of names.
func NewCounterSet(names ...string) *CounterSet {
	return &CounterSet{names: names, vals: make([]atomic.Int64, len(names))}
}

// Add increments counter i by delta. Out-of-range indices are ignored so a
// stale index from a caller compiled against a different layout cannot
// panic the pipeline.
func (c *CounterSet) Add(i int, delta int64) {
	if c == nil || i < 0 || i >= len(c.vals) {
		return
	}
	c.vals[i].Add(delta)
}

// AddDuration increments counter i by d's nanoseconds.
func (c *CounterSet) AddDuration(i int, d time.Duration) {
	c.Add(i, int64(d))
}

// Value returns counter i's current value (0 for nil sets or out-of-range
// indices).
func (c *CounterSet) Value(i int) int64 {
	if c == nil || i < 0 || i >= len(c.vals) {
		return 0
	}
	return c.vals[i].Load()
}

// Names returns the counter names in index order. The returned slice is a
// copy.
func (c *CounterSet) Names() []string {
	if c == nil {
		return nil
	}
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Snapshot returns a name → value map. Values are loaded individually, so a
// snapshot taken mid-update is per-counter consistent (each value was
// current at its load), matching Hist's snapshot semantics.
func (c *CounterSet) Snapshot() map[string]int64 {
	if c == nil {
		return nil
	}
	out := make(map[string]int64, len(c.names))
	for i, n := range c.names {
		out[n] = c.vals[i].Load()
	}
	return out
}
