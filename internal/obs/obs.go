// Package obs is tara's lightweight observability core: request traces with
// named per-stage spans, monotonic power-of-two latency histograms, and a
// bounded slow-trace ring — all built on atomics so the hot serving path
// never takes a lock to be observed.
//
// The design is allocation-conscious: a Trace is one allocation per traced
// request (stage durations live in a fixed array of atomics), spans are
// values, and every method is safe on a nil *Trace so untraced callers (the
// framework benchmarks, library users) pay only a nil check.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// Stage names one step of the online answering path. The stages mirror the
// serving pipeline: decode → canonical-cut → cache-probe → eps-lookup →
// materialize → encode. Offline phases reuse the same Trace machinery under
// their own stage ids.
type Stage uint8

const (
	// StageDecode is request parsing and validation.
	StageDecode Stage = iota
	// StageCut is canonical-cut computation (EPS grid binary search).
	StageCut
	// StageCacheProbe is the query-cache lookup (and store on miss).
	StageCacheProbe
	// StageEPSLookup is id collection from the EPS slice (skip-chain walk).
	StageEPSLookup
	// StageMaterialize resolves rule ids against dictionary and archive.
	StageMaterialize
	// StageEncode is response serialization.
	StageEncode
	// StageEncodeCached is a pre-encoded response served from the daemon's
	// byte cache: the only work is the cache probe and the wire write, so
	// this span replaces eps-lookup/materialize/encode on a warm hit.
	StageEncodeCached
	// StageSnapshot is the columnar trajectory snapshot (re)build: one batch
	// decode pass over every archive payload. Only the first trajectory
	// query after a KB generation change pays it.
	StageSnapshot
	// StageColumnarScan is the columnar work of the trajectory query
	// classes: aggregate streaming, top-K ranking, similarity search or
	// emergence detection over the snapshot's window-major columns.
	StageColumnarScan

	// NumStages bounds the per-trace stage array.
	NumStages
)

var stageNames = [NumStages]string{
	"decode",
	"canonical-cut",
	"cache-probe",
	"eps-lookup",
	"materialize",
	"encode",
	"encode-cached",
	"snapshot-build",
	"columnar-scan",
}

// String returns the stage's wire name (used in JSON, logs and /metrics).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage-%d", uint8(s))
}

// Stages lists every stage in pipeline order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Trace accumulates the per-stage time of one request. Durations are atomic
// so a snapshot (metrics recording, slow-trace capture) taken while a
// timed-out handler goroutine is still running never races. A single request
// goroutine writes; readers only load.
type Trace struct {
	id    string
	start time.Time // carries Go's monotonic clock reading
	nanos [NumStages]atomic.Int64
	total atomic.Int64 // set by Finish; 0 until then
}

// NewTrace starts a trace. An empty id draws a fresh one from NewID.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewID()
	}
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace id ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a span for stage s. On a nil trace it returns an inert span,
// so instrumented code needs no enabled-checks.
func (t *Trace) Start(s Stage) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: s, start: time.Now()}
}

// Add records d against stage s directly (used when the caller already
// measured the interval).
func (t *Trace) Add(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.nanos[s].Add(int64(d))
}

// Finish stamps the trace's total wall time (from NewTrace to now). Calling
// it again overwrites the total.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.total.Store(int64(time.Since(t.start)))
}

// Total returns the finished total, or the running elapsed time when Finish
// has not been called yet.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	if n := t.total.Load(); n > 0 {
		return time.Duration(n)
	}
	return time.Since(t.start)
}

// StageDur returns the accumulated duration of stage s.
func (t *Trace) StageDur(s Stage) time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.nanos[s].Load())
}

// StageTiming is one recorded stage, serialized for ?debug=trace responses
// and /debug/slow.
type StageTiming struct {
	Stage  string  `json:"stage"`
	Micros float64 `json:"micros"`
}

// Stages returns the recorded (nonzero) stages in pipeline order.
func (t *Trace) Stages() []StageTiming {
	if t == nil {
		return nil
	}
	out := make([]StageTiming, 0, NumStages)
	for s := Stage(0); s < NumStages; s++ {
		if n := t.nanos[s].Load(); n > 0 {
			out = append(out, StageTiming{Stage: s.String(), Micros: float64(n) / 1e3})
		}
	}
	return out
}

// Span measures one stage interval; End adds the elapsed time to the trace.
// The zero Span (from a nil trace) is inert.
type Span struct {
	t     *Trace
	stage Stage
	start time.Time
}

// End closes the span, accumulating its duration on the owning trace. Safe
// to call on the zero Span; calling twice double-counts, don't.
func (sp Span) End() {
	if sp.t == nil {
		return
	}
	sp.t.nanos[sp.stage].Add(int64(time.Since(sp.start)))
}

// Trace ids: a per-process random prefix plus an atomic sequence keeps ids
// unique across restarts without per-request entropy reads.
var (
	idPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to the clock; uniqueness within the process still
			// holds via the sequence.
			now := time.Now().UnixNano()
			b[0], b[1], b[2], b[3] = byte(now>>24), byte(now>>16), byte(now>>8), byte(now)
		}
		return hex.EncodeToString(b[:])
	}()
	idSeq atomic.Uint64
)

// NewID returns a fresh process-unique trace id.
func NewID() string {
	return fmt.Sprintf("%s-%08x", idPrefix, idSeq.Add(1))
}

// ctxKey keys the trace in a context.
type ctxKey struct{}

// WithTrace returns a context carrying tr.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the context's trace, or nil when untraced.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
