package obs

import (
	"math"
	"sort"
)

// SampleWindow is a fixed-capacity window of float64 observations with exact
// quantiles, built for feedback controllers that decide once per short window
// (hundreds of samples) rather than per observation: Hist's power-of-two
// buckets quantize quantiles in 2x steps, far too coarse to compare a
// windowed p99 against a tolerance band a few tens of percent wide.
//
// The window is a ring: once full, new samples overwrite the oldest, so a
// quantile always describes the most recent cap observations. Not safe for
// concurrent use — the owner (the admission controller, which already holds
// its own mutex per observation) serializes access.
type SampleWindow struct {
	buf   []float64
	next  int // ring write position
	total int // samples added since the last Reset
	// scratch holds the sort copy so steady-state quantile calls do not
	// allocate.
	scratch []float64
}

// NewSampleWindow returns a window retaining the last cap samples.
// Non-positive caps select 1024.
func NewSampleWindow(cap int) *SampleWindow {
	if cap <= 0 {
		cap = 1024
	}
	return &SampleWindow{buf: make([]float64, 0, cap)}
}

// Add records one observation, evicting the oldest when the window is full.
// NaN observations are dropped — a poisoned sample must not be able to pin a
// quantile forever.
func (w *SampleWindow) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, v)
	} else {
		w.buf[w.next] = v
		w.next = (w.next + 1) % len(w.buf)
	}
	w.total++
}

// Len reports the samples currently held (at most the window capacity).
func (w *SampleWindow) Len() int { return len(w.buf) }

// Total reports the samples added since the last Reset, including ones the
// ring has already overwritten.
func (w *SampleWindow) Total() int { return w.total }

// Quantile returns the q-quantile (nearest-rank on the sorted window) of the
// retained samples; 0 when the window is empty. q is clamped to [0, 1].
func (w *SampleWindow) Quantile(q float64) float64 {
	n := len(w.buf)
	if n == 0 {
		return 0
	}
	w.scratch = append(w.scratch[:0], w.buf...)
	sort.Float64s(w.scratch)
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return w.scratch[i]
}

// Max returns the largest retained sample, 0 when empty.
func (w *SampleWindow) Max() float64 {
	var m float64
	for i, v := range w.buf {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Reset empties the window.
func (w *SampleWindow) Reset() {
	w.buf = w.buf[:0]
	w.next = 0
	w.total = 0
}
