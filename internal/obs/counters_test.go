package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterSetBasics(t *testing.T) {
	c := NewCounterSet("mine", "eps", "commit")
	c.Add(0, 5)
	c.Add(0, 7)
	c.AddDuration(1, 3*time.Microsecond)
	if got := c.Value(0); got != 12 {
		t.Errorf("Value(0) = %d, want 12", got)
	}
	if got := c.Value(1); got != 3000 {
		t.Errorf("Value(1) = %d, want 3000", got)
	}
	snap := c.Snapshot()
	if snap["mine"] != 12 || snap["eps"] != 3000 || snap["commit"] != 0 {
		t.Errorf("Snapshot = %v", snap)
	}
	names := c.Names()
	if len(names) != 3 || names[0] != "mine" || names[2] != "commit" {
		t.Errorf("Names = %v", names)
	}
	// Mutating the returned slice must not affect the set.
	names[0] = "clobbered"
	if c.Names()[0] != "mine" {
		t.Error("Names returned the internal slice")
	}
}

func TestCounterSetOutOfRangeAndNil(t *testing.T) {
	c := NewCounterSet("only")
	c.Add(-1, 10)
	c.Add(1, 10)
	if got := c.Value(-1); got != 0 {
		t.Errorf("Value(-1) = %d", got)
	}
	if got := c.Value(1); got != 0 {
		t.Errorf("Value(1) = %d", got)
	}
	if got := c.Value(0); got != 0 {
		t.Errorf("out-of-range Add leaked into counter 0: %d", got)
	}

	var nilSet *CounterSet
	nilSet.Add(0, 1) // must not panic
	nilSet.AddDuration(0, time.Second)
	if nilSet.Value(0) != 0 || nilSet.Snapshot() != nil || nilSet.Names() != nil {
		t.Error("nil CounterSet should read as empty")
	}
}

// TestCounterSetConcurrent exercises parallel writers under -race and checks
// the final sums are exact.
func TestCounterSetConcurrent(t *testing.T) {
	c := NewCounterSet("a", "b")
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(0, 1)
				c.Add(1, 2)
				_ = c.Snapshot() // readers race with writers
			}
		}()
	}
	wg.Wait()
	if got := c.Value(0); got != goroutines*perG {
		t.Errorf("counter a = %d, want %d", got, goroutines*perG)
	}
	if got := c.Value(1); got != 2*goroutines*perG {
		t.Errorf("counter b = %d, want %d", got, 2*goroutines*perG)
	}
}
