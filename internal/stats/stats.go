// Package stats provides the small statistical helpers used across the TARA
// and MARAS implementations: moments, coefficient of variation, z-scores,
// and the precision@K metric used by the MARAS evaluation (Figure 6 of the
// paper).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than one
// element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoefficientOfVariation returns StdDev/Mean (population form). It returns 0
// when the mean is 0 to keep the measure well defined on degenerate inputs.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// SampleVariance returns the Bessel-corrected (n-1) variance, or 0 for fewer
// than two elements.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// SampleStdDev returns the sample standard deviation.
func SampleStdDev(xs []float64) float64 { return math.Sqrt(SampleVariance(xs)) }

// SampleCV returns SampleStdDev/Mean, the dispersion measure used by the
// MARAS contrast score's penalty term G (Formula 8) — the paper's worked
// example (contrast_cv of 0.18 and 0.45 at θ=0.75) pins the sample form.
// It returns 0 when the mean is 0.
func SampleCV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return SampleStdDev(xs) / m
}

// ZScore returns (x - mean(ref)) / stddev(ref). When ref has zero variance
// the z-score is defined as 0 (x indistinguishable from the reference).
func ZScore(x float64, ref []float64) float64 {
	sd := StdDev(ref)
	if sd == 0 {
		return 0
	}
	return (x - Mean(ref)) / sd
}

// PrecisionAtK returns the fraction of the first k ranked identifiers that
// occur in the truth set. If fewer than k results exist, the available
// prefix is scored against k per the usual precision@K convention of the
// paper (missing slots count as misses). k must be positive.
func PrecisionAtK(ranked []string, truth map[string]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	hits := 0
	for i := 0; i < k && i < len(ranked); i++ {
		if truth[ranked[i]] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// MinMax returns the smallest and largest values in xs. It panics on an
// empty slice; callers guard for that.
func MinMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
