package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !approx(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !approx(got, 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); !approx(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %g", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance(single) = %g", got)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // mean 5, sd 2
	if got := CoefficientOfVariation(xs); !approx(got, 0.4, 1e-12) {
		t.Errorf("CV = %g, want 0.4", got)
	}
	if got := CoefficientOfVariation([]float64{0, 0}); got != 0 {
		t.Errorf("CV of zeros = %g, want 0", got)
	}
}

func TestZScore(t *testing.T) {
	ref := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := ZScore(7, ref); !approx(got, 1, 1e-12) {
		t.Errorf("ZScore(7) = %g, want 1", got)
	}
	if got := ZScore(5, []float64{3, 3, 3}); got != 0 {
		t.Errorf("ZScore with zero-variance ref = %g, want 0", got)
	}
}

func TestPrecisionAtK(t *testing.T) {
	truth := map[string]bool{"a": true, "c": true, "e": true}
	ranked := []string{"a", "b", "c", "d"}
	cases := []struct {
		k    int
		want float64
	}{
		{1, 1},
		{2, 0.5},
		{3, 2.0 / 3},
		{4, 0.5},
		{8, 0.25}, // prefix shorter than k: misses fill the tail
		{0, 0},
		{-1, 0},
	}
	for _, c := range cases {
		if got := PrecisionAtK(ranked, truth, c.k); !approx(got, c.want, 1e-12) {
			t.Errorf("PrecisionAtK(k=%d) = %g, want %g", c.k, got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%g, %g), want (-1, 7)", lo, hi)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {120, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !approx(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %g", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestPropertyVarianceNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		n := r.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMeanShiftInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		n := 1 + r.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		shift := r.NormFloat64() * 5
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = xs[i] + shift
		}
		// Variance is shift-invariant; mean shifts by shift.
		return approx(Variance(xs), Variance(ys), 1e-9) &&
			approx(Mean(ys), Mean(xs)+shift, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyPrecisionRange(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		n := r.Intn(10)
		ranked := make([]string, n)
		truth := map[string]bool{}
		for i := range ranked {
			ranked[i] = string(rune('a' + r.Intn(5)))
			if r.Intn(2) == 0 {
				truth[ranked[i]] = true
			}
		}
		k := 1 + r.Intn(10)
		p := PrecisionAtK(ranked, truth, k)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleVarianceStdDev(t *testing.T) {
	// {0.2, 0.8}: mean 0.5, sample variance 0.18, sd ~0.4243.
	xs := []float64{0.2, 0.8}
	if got := SampleVariance(xs); !approx(got, 0.18, 1e-12) {
		t.Errorf("SampleVariance = %g, want 0.18", got)
	}
	if got := SampleStdDev(xs); !approx(got, math.Sqrt(0.18), 1e-12) {
		t.Errorf("SampleStdDev = %g", got)
	}
	if got := SampleVariance([]float64{5}); got != 0 {
		t.Errorf("SampleVariance(single) = %g", got)
	}
	if got := SampleVariance(nil); got != 0 {
		t.Errorf("SampleVariance(nil) = %g", got)
	}
}

func TestSampleCV(t *testing.T) {
	xs := []float64{0.2, 0.8}
	if got := SampleCV(xs); !approx(got, math.Sqrt(0.18)/0.5, 1e-12) {
		t.Errorf("SampleCV = %g", got)
	}
	if got := SampleCV([]float64{0, 0}); got != 0 {
		t.Errorf("SampleCV of zeros = %g", got)
	}
	// Sample CV exceeds population CV for the same data (Bessel).
	if SampleCV(xs) <= CoefficientOfVariation(xs) {
		t.Error("sample CV should exceed population CV")
	}
}
