package baselines

import (
	"math/rand"
	"testing"

	"tara/internal/itemset"
	"tara/internal/rules"
	"tara/internal/tara"
	"tara/internal/txdb"
)

// testWindows builds a reproducible evolving database split into n batches.
func testWindows(t *testing.T, seed int64, nTx, nItems, batches int) ([]txdb.Window, *txdb.DB) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	db := txdb.NewDB()
	type pair struct{ a, b int }
	patterns := make([]pair, 4)
	for i := range patterns {
		patterns[i] = pair{r.Intn(nItems), r.Intn(nItems)}
	}
	for i := 0; i < nTx; i++ {
		var names []string
		if r.Float64() < 0.5 {
			p := patterns[r.Intn(len(patterns))]
			names = append(names, itemName(p.a), itemName(p.b))
		}
		for j := 0; j < 1+r.Intn(4); j++ {
			names = append(names, itemName(r.Intn(nItems)))
		}
		db.Add(int64(i), names...)
	}
	ws, err := db.PartitionByCount(batches)
	if err != nil {
		t.Fatal(err)
	}
	return ws, db
}

func itemName(i int) string { return string(rune('a'+i/10)) + string(rune('0'+i%10)) }

func ruleKeySet(rs []rules.WithStats) map[string]rules.Stats {
	out := map[string]rules.Stats{}
	for _, r := range rs {
		out[r.Rule.Key()] = r.Stats
	}
	return out
}

// TestAllSystemsAgree is the keystone property: DCTAR, the H-Mine system,
// PARAS (on its indexed window) and TARA produce identical rulesets with
// identical statistics for the same requests.
func TestAllSystemsAgree(t *testing.T) {
	const (
		genSupp = 0.01
		genConf = 0.05
		maxLen  = 4
	)
	ws, db := testWindows(t, 1, 600, 25, 3)
	dctar := NewDCTAR(ws, nil, maxLen)
	hmine, err := BuildHMine(ws, genSupp, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	paras, err := BuildPARAS(ws, genSupp, genConf, maxLen, nil)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := tara.Build(db, 0, 3, tara.Config{GenMinSupport: genSupp, GenMinConf: genConf, MaxItemsetLen: maxLen})
	if err != nil {
		t.Fatal(err)
	}

	for _, q := range []struct{ s, c float64 }{{0.02, 0.1}, {0.05, 0.25}, {0.1, 0.5}} {
		for w := 0; w < 3; w++ {
			want, err := dctar.Mine(w, q.s, q.c)
			if err != nil {
				t.Fatal(err)
			}
			wantKeys := ruleKeySet(want)

			got, err := hmine.Mine(w, q.s, q.c)
			if err != nil {
				t.Fatal(err)
			}
			compare(t, "hmine", w, q.s, q.c, ruleKeySet(got), wantKeys)

			if w == paras.Latest() {
				got, err = paras.Mine(w, q.s, q.c)
				if err != nil {
					t.Fatal(err)
				}
				compare(t, "paras-indexed", w, q.s, q.c, ruleKeySet(got), wantKeys)
			} else {
				got, err = paras.Mine(w, q.s, q.c)
				if err != nil {
					t.Fatal(err)
				}
				compare(t, "paras-fallback", w, q.s, q.c, ruleKeySet(got), wantKeys)
			}

			tviews, err := fw.Mine(w, q.s, q.c)
			if err != nil {
				t.Fatal(err)
			}
			tkeys := map[string]rules.Stats{}
			for _, v := range tviews {
				tkeys[v.Rule.Key()] = v.Stats
			}
			compare(t, "tara", w, q.s, q.c, tkeys, wantKeys)
		}
	}
}

func compare(t *testing.T, system string, w int, s, c float64, got, want map[string]rules.Stats) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s window %d (%g,%g): %d rules, want %d", system, w, s, c, len(got), len(want))
	}
	for k, st := range want {
		gst, ok := got[k]
		if !ok {
			t.Fatalf("%s window %d: missing rule", system, w)
		}
		if gst != st {
			t.Fatalf("%s window %d: stats %+v, want %+v", system, w, gst, st)
		}
	}
}

func TestDCTARWindowBounds(t *testing.T) {
	ws, _ := testWindows(t, 2, 100, 10, 2)
	d := NewDCTAR(ws, nil, 3)
	if _, err := d.Mine(5, 0.1, 0.1); err == nil {
		t.Error("out-of-range window accepted")
	}
	if d.Windows() != 2 {
		t.Errorf("Windows = %d", d.Windows())
	}
}

func TestDCTARTrajectories(t *testing.T) {
	ws, _ := testWindows(t, 3, 400, 15, 4)
	d := NewDCTAR(ws, nil, 3)
	rows, err := d.Trajectories(3, 0.05, 0.2, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no trajectory rows")
	}
	for _, row := range rows {
		for j, w := range row.Windows {
			want := statsIn(row.Rule, ws[w])
			if row.Stats[j] != want {
				t.Errorf("rule %v window %d: %+v, want %+v", row.Rule, w, row.Stats[j], want)
			}
		}
	}
}

func TestHMineTrajectoriesMatchDCTAR(t *testing.T) {
	ws, _ := testWindows(t, 4, 400, 15, 4)
	d := NewDCTAR(ws, nil, 3)
	h, err := BuildHMine(ws, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Trajectories(3, 0.05, 0.2, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Trajectories(3, 0.05, 0.2, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("row counts differ: %d vs %d", len(got), len(want))
	}
	wantBy := map[string]TrajectoryRow{}
	for _, r := range want {
		wantBy[r.Rule.Key()] = r
	}
	for _, g := range got {
		w, ok := wantBy[g.Rule.Key()]
		if !ok {
			t.Fatalf("rule %v only in H-Mine result", g.Rule)
		}
		for j := range g.Stats {
			// H-Mine reports zero stats where an itemset fell below the
			// generation threshold; where reported, they must match.
			if g.Stats[j] != (rules.Stats{}) && g.Stats[j] != w.Stats[j] {
				t.Errorf("rule %v window %d: %+v vs %+v", g.Rule, g.Windows[j], g.Stats[j], w.Stats[j])
			}
		}
	}
}

func TestHMineRejectsBelowGeneration(t *testing.T) {
	ws, _ := testWindows(t, 5, 200, 10, 2)
	h, err := BuildHMine(ws, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Mine(0, 0.01, 0.1); err == nil {
		t.Error("minsupp below generation threshold accepted")
	}
	if _, err := h.Mine(7, 0.1, 0.1); err == nil {
		t.Error("out-of-range window accepted")
	}
}

func TestHMineIndexAccounting(t *testing.T) {
	ws, _ := testWindows(t, 6, 300, 12, 3)
	h, err := BuildHMine(ws, 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumItemsets() == 0 {
		t.Fatal("no itemsets pregenerated")
	}
	if h.IndexBytes() <= 4*h.NumItemsets() {
		t.Errorf("IndexBytes %d implausibly small for %d itemsets", h.IndexBytes(), h.NumItemsets())
	}
	if len(h.PrepTimes()) != 3 {
		t.Errorf("PrepTimes = %d entries", len(h.PrepTimes()))
	}
}

func TestCompareAgainstEachOther(t *testing.T) {
	ws, _ := testWindows(t, 7, 500, 20, 4)
	d := NewDCTAR(ws, nil, 3)
	h, err := BuildHMine(ws, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPARAS(ws, 0.01, 0.05, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	wins := []int{0, 1, 2, 3}
	want, err := d.Compare(wins, 0.02, 0.1, 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []struct {
		name string
		got  []Diff
	}{
		{"hmine", mustCompare(t, func() ([]Diff, error) { return h.Compare(wins, 0.02, 0.1, 0.05, 0.3) })},
		{"paras", mustCompare(t, func() ([]Diff, error) { return p.Compare(wins, 0.02, 0.1, 0.05, 0.3) })},
	} {
		if len(sys.got) != len(want) {
			t.Fatalf("%s: %d diffs, want %d", sys.name, len(sys.got), len(want))
		}
		for i := range want {
			if len(sys.got[i].OnlyA) != len(want[i].OnlyA) || len(sys.got[i].OnlyB) != len(want[i].OnlyB) {
				t.Errorf("%s window %d: (%d,%d), want (%d,%d)", sys.name, want[i].Window,
					len(sys.got[i].OnlyA), len(sys.got[i].OnlyB), len(want[i].OnlyA), len(want[i].OnlyB))
			}
		}
	}
}

func mustCompare(t *testing.T, fn func() ([]Diff, error)) []Diff {
	t.Helper()
	d, err := fn()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPARASRegionOnlyLatest(t *testing.T) {
	ws, _ := testWindows(t, 8, 300, 12, 3)
	p, err := BuildPARAS(ws, 0.01, 0.05, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Region(0, 0.05, 0.2); err == nil {
		t.Error("region on non-indexed window accepted")
	}
	reg, err := p.Region(p.Latest(), 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Window != p.Latest() {
		t.Errorf("region window = %d", reg.Window)
	}
}

func TestPARASRejectsBelowGeneration(t *testing.T) {
	ws, _ := testWindows(t, 9, 200, 10, 2)
	p, err := BuildPARAS(ws, 0.05, 0.2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Mine(p.Latest(), 0.01, 0.3); err == nil {
		t.Error("request below generation thresholds accepted on indexed window")
	}
}

func TestBuildPARASEmpty(t *testing.T) {
	if _, err := BuildPARAS(nil, 0.1, 0.1, 3, nil); err == nil {
		t.Error("empty window list accepted")
	}
}

func TestStatsIn(t *testing.T) {
	db := txdb.NewDB()
	db.Add(1, "a", "b", "c")
	db.Add(2, "a", "b")
	db.Add(3, "c")
	ws, err := db.PartitionByCount(1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := db.Dict.Lookup("a")
	b, _ := db.Dict.Lookup("b")
	c, _ := db.Dict.Lookup("c")
	r := rules.Rule{Ant: itemset.New(a, b), Cons: itemset.New(c)}
	st := statsIn(r, ws[0])
	if st.CountXY != 1 || st.CountX != 2 || st.CountY != 2 || st.N != 3 {
		t.Errorf("statsIn = %+v", st)
	}
}

func TestPARASTrajectoriesBothPaths(t *testing.T) {
	ws, _ := testWindows(t, 11, 400, 15, 4)
	p, err := BuildPARAS(ws, 0.01, 0.05, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDCTAR(ws, nil, 3)

	// Indexed path: base window is the latest.
	want, err := d.Trajectories(3, 0.05, 0.2, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Trajectories(3, 0.05, 0.2, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("indexed path: %d rows, want %d", len(got), len(want))
	}
	wantBy := map[string]TrajectoryRow{}
	for _, r := range want {
		wantBy[r.Rule.Key()] = r
	}
	for _, g := range got {
		w, ok := wantBy[g.Rule.Key()]
		if !ok {
			t.Fatalf("rule %v only in PARAS result", g.Rule)
		}
		for j := range g.Stats {
			if g.Stats[j] != w.Stats[j] {
				t.Errorf("rule %v window %d: %+v vs %+v", g.Rule, g.Windows[j], g.Stats[j], w.Stats[j])
			}
		}
	}

	// Fallback path: base window is not the indexed one.
	want, err = d.Trajectories(1, 0.05, 0.2, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	got, err = p.Trajectories(1, 0.05, 0.2, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fallback path: %d rows, want %d", len(got), len(want))
	}
}

func TestPARASTrajectoriesExaminingLatestUsesIndex(t *testing.T) {
	ws, _ := testWindows(t, 12, 300, 12, 3)
	p, err := BuildPARAS(ws, 0.01, 0.05, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Base = latest, examined windows include the latest itself: the
	// per-rule stats for that window come from the index.
	rows, err := p.Trajectories(2, 0.05, 0.2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Stats[1] != r.Base {
			t.Errorf("rule %v: indexed stats %+v differ from base %+v", r.Rule, r.Stats[1], r.Base)
		}
	}
}

func TestHMineWindows(t *testing.T) {
	ws, _ := testWindows(t, 13, 100, 10, 2)
	h, err := BuildHMine(ws, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Windows() != 2 {
		t.Errorf("Windows = %d", h.Windows())
	}
}
