package baselines

import (
	"fmt"
	"time"

	"tara/internal/itemset"
	"tara/internal/mining"
	"tara/internal/rules"
	"tara/internal/txdb"
)

// HMineSystem is the paper's strongest preprocessing baseline: per window it
// precomputes the frequent itemsets with the H-Mine algorithm and stores
// them with their support counts; the final rule derivation remains a
// query-time task — the shortcoming TARA eliminates.
type HMineSystem struct {
	results  []*mining.Result
	prepTime []time.Duration
	genSupp  float64
	maxLen   int
}

// BuildHMine preprocesses every window at the generation support threshold.
func BuildHMine(windows []txdb.Window, genMinSupp float64, maxLen int) (*HMineSystem, error) {
	h := &HMineSystem{genSupp: genMinSupp, maxLen: maxLen}
	for _, w := range windows {
		start := time.Now()
		res, err := mining.HMine{}.Mine(w.Tx, mining.Params{
			MinCount: mining.MinCountFor(genMinSupp, len(w.Tx)),
			MaxLen:   maxLen,
		})
		if err != nil {
			return nil, fmt.Errorf("baselines: hmine window %d: %w", w.Index, err)
		}
		h.results = append(h.results, res)
		h.prepTime = append(h.prepTime, time.Since(start))
	}
	return h, nil
}

// Windows returns the number of preprocessed windows.
func (h *HMineSystem) Windows() int { return len(h.results) }

// PrepTimes returns per-window preprocessing durations (Figure 9).
func (h *HMineSystem) PrepTimes() []time.Duration { return h.prepTime }

func (h *HMineSystem) result(w int) (*mining.Result, error) {
	if w < 0 || w >= len(h.results) {
		return nil, fmt.Errorf("baselines: window %d out of range [0,%d)", w, len(h.results))
	}
	return h.results[w], nil
}

// Mine derives the ruleset for (minSupp, minConf) in window w from the
// pregenerated itemsets — the query-time rule derivation the paper measures.
func (h *HMineSystem) Mine(w int, minSupp, minConf float64) ([]rules.WithStats, error) {
	if minSupp < h.genSupp {
		return nil, fmt.Errorf("baselines: minsupp %g below itemset generation threshold %g", minSupp, h.genSupp)
	}
	res, err := h.result(w)
	if err != nil {
		return nil, err
	}
	return rules.Generate(res, rules.GenParams{
		MinCount: mining.MinCountFor(minSupp, res.N),
		MinConf:  minConf,
	})
}

// statsFromItemsets assembles a rule's statistics in window w from the
// itemset index; ok is false when any constituent itemset fell below the
// generation threshold in that window.
func (h *HMineSystem) statsFromItemsets(r rules.Rule, w int) (rules.Stats, bool) {
	res := h.results[w]
	xy, ok := res.Count(r.Items())
	if !ok {
		return rules.Stats{}, false
	}
	x, ok := res.Count(r.Ant)
	if !ok {
		return rules.Stats{}, false
	}
	y, ok := res.Count(r.Cons)
	if !ok {
		return rules.Stats{}, false
	}
	return rules.Stats{CountXY: xy, CountX: x, CountY: y, N: uint32(res.N)}, true
}

// Trajectories answers the Q1 workload: derive the qualifying rules of
// window w, then look up each rule's itemset counts in the other windows.
func (h *HMineSystem) Trajectories(w int, minSupp, minConf float64, others []int) ([]TrajectoryRow, error) {
	mined, err := h.Mine(w, minSupp, minConf)
	if err != nil {
		return nil, err
	}
	for _, o := range others {
		if _, err := h.result(o); err != nil {
			return nil, err
		}
	}
	out := make([]TrajectoryRow, len(mined))
	for i, m := range mined {
		row := TrajectoryRow{Rule: m.Rule, Base: m.Stats, Windows: others, Stats: make([]rules.Stats, len(others))}
		for j, o := range others {
			row.Stats[j], _ = h.statsFromItemsets(m.Rule, o)
		}
		out[i] = row
	}
	return out, nil
}

// Compare answers the Q2 workload from the itemset index: rules are derived
// once per window at the looser thresholds and classified against both
// settings.
func (h *HMineSystem) Compare(windows []int, suppA, confA, suppB, confB float64) ([]Diff, error) {
	looseS, looseC := min2(suppA, suppB), min2(confA, confB)
	out := make([]Diff, 0, len(windows))
	for _, w := range windows {
		all, err := h.Mine(w, looseS, looseC)
		if err != nil {
			return nil, err
		}
		diff := Diff{Window: w}
		for _, r := range all {
			inA := r.Support() >= suppA && r.Confidence() >= confA
			inB := r.Support() >= suppB && r.Confidence() >= confB
			switch {
			case inA && !inB:
				diff.OnlyA = append(diff.OnlyA, r)
			case inB && !inA:
				diff.OnlyB = append(diff.OnlyB, r)
			}
		}
		out = append(out, diff)
	}
	return out, nil
}

// IndexBytes estimates the size of the pregenerated structure for the
// Figure 12 comparison: per frequent itemset, its key bytes plus a 4-byte
// count, summed over windows.
func (h *HMineSystem) IndexBytes() int {
	n := 0
	for _, res := range h.results {
		for _, fs := range res.Sets {
			n += len(itemset.Key(fs.Items)) + 4
		}
	}
	return n
}

// NumItemsets returns the total pregenerated itemset count across windows.
func (h *HMineSystem) NumItemsets() int {
	n := 0
	for _, res := range h.results {
		n += res.Len()
	}
	return n
}
