package baselines

import (
	"fmt"

	"tara/internal/eps"
	"tara/internal/mining"
	"tara/internal/rules"
	"tara/internal/txdb"
)

// PARAS is the static-data predecessor of TARA: it pregenerates rules and a
// parameter-space index, but assumes all data is given apriori, so the index
// covers only a single window — here, as in the paper's experiments, the
// newest one. Requests against the indexed window are answered at TARA
// speed; requests touching any other window degrade to from-scratch mining.
type PARAS struct {
	slice    *eps.Slice
	dict     *rules.Dict
	stats    map[rules.ID]rules.Stats
	latest   int
	fallback *DCTAR
	genSupp  float64
	genConf  float64
}

// BuildPARAS indexes the newest window of windows at the generation
// thresholds and keeps the raw windows for fallback mining.
func BuildPARAS(windows []txdb.Window, genMinSupp, genMinConf float64, maxLen int, miner mining.Miner) (*PARAS, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("baselines: PARAS needs at least one window")
	}
	if miner == nil {
		miner = mining.Eclat{}
	}
	latest := windows[len(windows)-1]
	minCount := mining.MinCountFor(genMinSupp, len(latest.Tx))
	res, err := miner.Mine(latest.Tx, mining.Params{MinCount: minCount, MaxLen: maxLen})
	if err != nil {
		return nil, err
	}
	rs, err := rules.Generate(res, rules.GenParams{MinCount: minCount, MinConf: genMinConf})
	if err != nil {
		return nil, err
	}
	dict := rules.NewDict()
	stats := make(map[rules.ID]rules.Stats, len(rs))
	ids := make([]eps.IDStats, len(rs))
	for i, r := range rs {
		id := dict.Add(r.Rule)
		stats[id] = r.Stats
		ids[i] = eps.IDStats{ID: id, Stats: r.Stats}
	}
	slice, err := eps.BuildSlice(latest.Index, uint32(len(latest.Tx)), ids, eps.Options{})
	if err != nil {
		return nil, err
	}
	return &PARAS{
		slice:    slice,
		dict:     dict,
		stats:    stats,
		latest:   latest.Index,
		fallback: NewDCTAR(windows, miner, maxLen),
		genSupp:  genMinSupp,
		genConf:  genMinConf,
	}, nil
}

// Latest returns the index of the window covered by the parameter-space
// index.
func (p *PARAS) Latest() int { return p.latest }

// Mine answers from the index when w is the latest window, otherwise falls
// back to from-scratch mining (the behaviour the paper describes: "if
// request comes for different periods it then generates the associations
// from scratch").
func (p *PARAS) Mine(w int, minSupp, minConf float64) ([]rules.WithStats, error) {
	if w != p.latest {
		return p.fallback.Mine(w, minSupp, minConf)
	}
	if minSupp < p.genSupp || minConf < p.genConf {
		return nil, fmt.Errorf("baselines: request (%g,%g) below PARAS generation thresholds (%g,%g)",
			minSupp, minConf, p.genSupp, p.genConf)
	}
	ids := p.slice.Rules(minSupp, minConf)
	out := make([]rules.WithStats, len(ids))
	for i, id := range ids {
		r, ok := p.dict.Rule(id)
		if !ok {
			return nil, fmt.Errorf("baselines: PARAS rule id %d missing", id)
		}
		out[i] = rules.WithStats{Rule: r, Stats: p.stats[id]}
	}
	return out, nil
}

// Region returns the stable region of the latest window — PARAS supports
// parameter recommendation, but only there.
func (p *PARAS) Region(w int, minSupp, minConf float64) (eps.Region, error) {
	if w != p.latest {
		return eps.Region{}, fmt.Errorf("baselines: PARAS indexes only window %d, not %d", p.latest, w)
	}
	return p.slice.Region(minSupp, minConf), nil
}

// Trajectories answers the Q1 workload: the base window is served from the
// index when it is the latest; every other examined window requires raw
// scans, exactly the degradation the experiments show.
func (p *PARAS) Trajectories(w int, minSupp, minConf float64, others []int) ([]TrajectoryRow, error) {
	if w != p.latest {
		return p.fallback.Trajectories(w, minSupp, minConf, others)
	}
	mined, err := p.Mine(w, minSupp, minConf)
	if err != nil {
		return nil, err
	}
	wins := make([]txdb.Window, len(others))
	for i, o := range others {
		wins[i], err = p.fallback.window(o)
		if err != nil {
			return nil, err
		}
	}
	out := make([]TrajectoryRow, len(mined))
	for i, m := range mined {
		row := TrajectoryRow{Rule: m.Rule, Base: m.Stats, Windows: others, Stats: make([]rules.Stats, len(others))}
		for j, win := range wins {
			if win.Index == p.latest {
				if id, ok := p.dict.Lookup(m.Rule); ok {
					row.Stats[j] = p.stats[id]
					continue
				}
			}
			row.Stats[j] = statsIn(m.Rule, win)
		}
		out[i] = row
	}
	return out, nil
}

// Compare answers the Q2 workload. Windows other than the latest degrade to
// from-scratch comparison.
func (p *PARAS) Compare(windows []int, suppA, confA, suppB, confB float64) ([]Diff, error) {
	out := make([]Diff, 0, len(windows))
	for _, w := range windows {
		if w != p.latest {
			d, err := p.fallback.Compare([]int{w}, suppA, confA, suppB, confB)
			if err != nil {
				return nil, err
			}
			out = append(out, d...)
			continue
		}
		onlyA, onlyB := p.slice.Diff(suppA, confA, suppB, confB)
		d := Diff{Window: w}
		for _, id := range onlyA {
			r, _ := p.dict.Rule(id)
			d.OnlyA = append(d.OnlyA, rules.WithStats{Rule: r, Stats: p.stats[id]})
		}
		for _, id := range onlyB {
			r, _ := p.dict.Rule(id)
			d.OnlyB = append(d.OnlyB, rules.WithStats{Rule: r, Stats: p.stats[id]})
		}
		out = append(out, d)
	}
	return out, nil
}
