// Package baselines implements the three competitor systems the paper
// evaluates TARA against (Section 2.5.2):
//
//   - DCTAR derives the ruleset directly from the raw data for every
//     request — no preprocessing at all.
//   - The H-Mine system pregenerates the per-window frequent itemsets
//     offline (with the H-Mine algorithm) and derives rules at query time.
//   - PARAS pregenerates rules and a parameter-space index, but only for a
//     single (the newest) window; requests touching other windows fall back
//     to from-scratch mining.
//
// All three are faithful reimplementations of how the paper describes each
// competitor, sharing TARA's substrate so that timing differences reflect
// architecture, not implementation quality.
package baselines

import (
	"fmt"

	"tara/internal/itemset"
	"tara/internal/mining"
	"tara/internal/rules"
	"tara/internal/txdb"
)

// DCTAR answers each request by mining the raw transactions from scratch.
type DCTAR struct {
	windows []txdb.Window
	miner   mining.Miner
	maxLen  int
}

// NewDCTAR wraps the raw windows. miner nil selects Eclat; maxLen <= 0 means
// unlimited itemset length.
func NewDCTAR(windows []txdb.Window, miner mining.Miner, maxLen int) *DCTAR {
	if miner == nil {
		miner = mining.Eclat{}
	}
	return &DCTAR{windows: windows, miner: miner, maxLen: maxLen}
}

func (d *DCTAR) window(w int) (txdb.Window, error) {
	if w < 0 || w >= len(d.windows) {
		return txdb.Window{}, fmt.Errorf("baselines: window %d out of range [0,%d)", w, len(d.windows))
	}
	return d.windows[w], nil
}

// Windows returns the number of windows.
func (d *DCTAR) Windows() int { return len(d.windows) }

// Mine derives the ruleset for (minSupp, minConf) in window w from the raw
// transactions.
func (d *DCTAR) Mine(w int, minSupp, minConf float64) ([]rules.WithStats, error) {
	win, err := d.window(w)
	if err != nil {
		return nil, err
	}
	minCount := mining.MinCountFor(minSupp, len(win.Tx))
	res, err := d.miner.Mine(win.Tx, mining.Params{MinCount: minCount, MaxLen: d.maxLen})
	if err != nil {
		return nil, err
	}
	return rules.Generate(res, rules.GenParams{MinCount: minCount, MinConf: minConf})
}

// statsIn counts a rule's statistics in a window by scanning its raw
// transactions — the per-window examination work DCTAR performs for
// trajectory requests.
func statsIn(r rules.Rule, win txdb.Window) rules.Stats {
	var st rules.Stats
	union := r.Items()
	for _, tx := range win.Tx {
		if itemset.Subset(union, tx.Items) {
			st.CountXY++
		}
		if itemset.Subset(r.Ant, tx.Items) {
			st.CountX++
		}
		if itemset.Subset(r.Cons, tx.Items) {
			st.CountY++
		}
	}
	st.N = uint32(len(win.Tx))
	return st
}

// TrajectoryRow pairs a rule with its statistics across examined windows.
type TrajectoryRow struct {
	Rule    rules.Rule
	Base    rules.Stats
	Windows []int
	Stats   []rules.Stats
}

// Trajectories answers the Q1 workload the DCTAR way: mine window w from
// scratch, then examine each qualifying rule's parameter values in the other
// windows by processing those windows' raw transactions.
func (d *DCTAR) Trajectories(w int, minSupp, minConf float64, others []int) ([]TrajectoryRow, error) {
	mined, err := d.Mine(w, minSupp, minConf)
	if err != nil {
		return nil, err
	}
	wins := make([]txdb.Window, len(others))
	for i, o := range others {
		wins[i], err = d.window(o)
		if err != nil {
			return nil, err
		}
	}
	out := make([]TrajectoryRow, len(mined))
	for i, m := range mined {
		row := TrajectoryRow{Rule: m.Rule, Base: m.Stats, Windows: others, Stats: make([]rules.Stats, len(others))}
		for j, win := range wins {
			row.Stats[j] = statsIn(m.Rule, win)
		}
		out[i] = row
	}
	return out, nil
}

// Diff is a per-window ruleset comparison result.
type Diff struct {
	Window int
	OnlyA  []rules.WithStats
	OnlyB  []rules.WithStats
}

// Compare answers the Q2 workload: for each window, the rules satisfying one
// setting but not the other. As in the paper's experimental setup, the
// subroutine mines once at the looser thresholds and classifies each rule,
// rather than generating both overlapping rulesets.
func (d *DCTAR) Compare(windows []int, suppA, confA, suppB, confB float64) ([]Diff, error) {
	looseS, looseC := min2(suppA, suppB), min2(confA, confB)
	out := make([]Diff, 0, len(windows))
	for _, w := range windows {
		all, err := d.Mine(w, looseS, looseC)
		if err != nil {
			return nil, err
		}
		diff := Diff{Window: w}
		for _, r := range all {
			inA := r.Support() >= suppA && r.Confidence() >= confA
			inB := r.Support() >= suppB && r.Confidence() >= confB
			switch {
			case inA && !inB:
				diff.OnlyA = append(diff.OnlyA, r)
			case inB && !inA:
				diff.OnlyB = append(diff.OnlyB, r)
			}
		}
		out = append(out, diff)
	}
	return out, nil
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
