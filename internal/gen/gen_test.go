package gen

import (
	"math/rand"
	"testing"

	"tara/internal/maras"
	"tara/internal/stats"
	"tara/internal/txdb"
)

func TestQuestDeterministic(t *testing.T) {
	p := QuestParams{Transactions: 500, AvgTransLen: 8, NumItems: 50, Seed: 7}
	a, err := Quest(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Quest(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Tx {
		if len(a.Tx[i].Items) != len(b.Tx[i].Items) {
			t.Fatalf("tx %d differs", i)
		}
		for j := range a.Tx[i].Items {
			if a.Tx[i].Items[j] != b.Tx[i].Items[j] {
				t.Fatalf("tx %d item %d differs", i, j)
			}
		}
	}
}

func TestQuestShape(t *testing.T) {
	db, err := Quest(QuestParams{Transactions: 2000, AvgTransLen: 10, NumItems: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Transactions != 2000 {
		t.Errorf("Transactions = %d", s.Transactions)
	}
	if s.AvgLen < 5 || s.AvgLen > 15 {
		t.Errorf("AvgLen = %g, want near 10", s.AvgLen)
	}
	if s.UniqueItems > 100 {
		t.Errorf("UniqueItems = %d beyond N", s.UniqueItems)
	}
	// Quest patterns create correlations: some pairs co-occur far above
	// independence. Check that the most common pair count is well above
	// the expected independent co-occurrence.
	counts := map[[2]uint32]int{}
	for _, tx := range db.Tx {
		for i := 0; i < len(tx.Items); i++ {
			for j := i + 1; j < len(tx.Items); j++ {
				counts[[2]uint32{tx.Items[i], tx.Items[j]}]++
			}
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100 { // independent expectation ~ 2000*(10/100)^2 = 20
		t.Errorf("strongest pair co-occurs only %d times; patterns too weak", max)
	}
}

func TestQuestValidation(t *testing.T) {
	if _, err := Quest(QuestParams{}); err == nil {
		t.Error("zero params accepted")
	}
	if _, err := Quest(QuestParams{Transactions: 10, AvgTransLen: 5, NumItems: 10, Corruption: 1.5}); err == nil {
		t.Error("corruption > 1 accepted")
	}
}

func TestRetailShape(t *testing.T) {
	db, err := Retail(RetailParams{Transactions: 3000, NumItems: 500, AvgLen: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Transactions != 3000 {
		t.Errorf("Transactions = %d", s.Transactions)
	}
	if s.AvgLen < 5 || s.AvgLen > 15 {
		t.Errorf("AvgLen = %g", s.AvgLen)
	}
	// Zipf skew: the most popular item should dominate.
	freq := map[uint32]int{}
	for _, tx := range db.Tx {
		for _, it := range tx.Items {
			freq[it]++
		}
	}
	var fs []float64
	for _, c := range freq {
		fs = append(fs, float64(c))
	}
	if stats.Percentile(fs, 99) < 10*stats.Percentile(fs, 50) {
		t.Error("item popularity not skewed enough for a retail workload")
	}
}

func TestRetailValidation(t *testing.T) {
	if _, err := Retail(RetailParams{}); err == nil {
		t.Error("zero params accepted")
	}
	if _, err := Retail(RetailParams{Transactions: 10, NumItems: 10, AvgLen: 5, ZipfS: 0.5}); err == nil {
		t.Error("zipf <= 1 accepted")
	}
}

func TestWebdocsShape(t *testing.T) {
	db, err := Webdocs(WebdocsParams{Transactions: 500, NumItems: 5000, AvgLen: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.AvgLen < 30 || s.AvgLen > 90 {
		t.Errorf("AvgLen = %g, want near 60", s.AvgLen)
	}
	if _, err := Webdocs(WebdocsParams{}); err == nil {
		t.Error("zero params accepted")
	}
}

func TestFAERSBasics(t *testing.T) {
	ds, truth, err := FAERS(FAERSParams{Reports: 2000, NumDrugs: 60, NumADRs: 40, NumDDIs: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 || ds.Len() > 2000 {
		t.Fatalf("reports = %d", ds.Len())
	}
	if len(truth) != 8 {
		t.Fatalf("truth = %d DDIs", len(truth))
	}
	// Every planted pair must actually co-occur with its ADR somewhere.
	for _, ddi := range truth {
		a, okA := ds.Drugs.Lookup(ddi.DrugA)
		b, okB := ds.Drugs.Lookup(ddi.DrugB)
		adr, okC := ds.ADRs.Lookup(ddi.ADR)
		if !okA || !okB || !okC {
			t.Fatalf("DDI %v references unseen names", ddi)
		}
		found := false
		for _, rep := range ds.Reports {
			if rep.Drugs.Contains(a) && rep.Drugs.Contains(b) && rep.ADRs.Contains(adr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("DDI %v never materialized in the reports", ddi)
		}
	}
}

func TestFAERSValidation(t *testing.T) {
	if _, _, err := FAERS(FAERSParams{}); err == nil {
		t.Error("zero params accepted")
	}
	if _, _, err := FAERS(FAERSParams{Reports: 100, NumDrugs: 10, NumADRs: 40, NumDDIs: 8}); err == nil {
		t.Error("too many DDIs for drug count accepted")
	}
}

func TestDDIKey(t *testing.T) {
	a := DDI{DrugA: "x", DrugB: "a", ADR: "q"}
	b := DDI{DrugA: "a", DrugB: "x", ADR: "q"}
	if a.Key() != b.Key() {
		t.Error("DDI key not order-invariant")
	}
	if a.Key() != "a+x=>q" {
		t.Errorf("Key = %q", a.Key())
	}
}

// TestMARASRecoversPlantedDDIs is the end-to-end effectiveness check behind
// Figure 6: MARAS's contrast ranking on generated FAERS data should surface
// planted interactions with high precision at low K.
func TestMARASRecoversPlantedDDIs(t *testing.T) {
	ds, truth, err := FAERS(FAERSParams{Reports: 4000, NumDrugs: 60, NumADRs: 40, NumDDIs: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	signals, err := maras.Mine(ds, maras.Params{MinSupportCount: 8})
	if err != nil {
		t.Fatal(err)
	}
	truthKeys := map[string]bool{}
	for _, d := range truth {
		truthKeys[d.Key()] = true
	}
	var ranked []string
	for _, s := range maras.TopK(signals, 10) {
		hit := ""
		for _, k := range SignalKeys(ds, s) {
			if truthKeys[k] {
				hit = k
				break
			}
		}
		ranked = append(ranked, hit) // "" counts as a miss
	}
	p10 := 0.0
	for _, k := range ranked {
		if k != "" {
			p10++
		}
	}
	p10 /= 10
	if p10 < 0.6 {
		t.Errorf("precision@10 = %g, want >= 0.6 on planted data", p10)
	}
}

func TestPoisson(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += float64(poisson(r, 7))
	}
	mean := sum / float64(n)
	if mean < 6.5 || mean > 7.5 {
		t.Errorf("poisson mean = %g, want ~7", mean)
	}
	if poisson(r, 0) != 0 || poisson(r, -1) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestRetailDrift(t *testing.T) {
	static, err := Retail(RetailParams{Transactions: 6000, NumItems: 300, AvgLen: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := Retail(RetailParams{Transactions: 6000, NumItems: 300, AvgLen: 8, Seed: 9, Drift: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Measure how much the per-item frequency distribution changes between
	// the first and last thirds of the stream: drift must increase it.
	measure := func(db *txdb.DB) float64 {
		third := db.Len() / 3
		first := map[uint32]float64{}
		last := map[uint32]float64{}
		for i, tr := range db.Tx {
			for _, it := range tr.Items {
				if i < third {
					first[it]++
				} else if i >= 2*third {
					last[it]++
				}
			}
		}
		var dist float64
		seen := map[uint32]bool{}
		for it := range first {
			seen[it] = true
		}
		for it := range last {
			seen[it] = true
		}
		for it := range seen {
			dist += abs(first[it] - last[it])
		}
		return dist
	}
	if measure(drifted) < 2*measure(static) {
		t.Errorf("drifted distribution shift %g not clearly above static %g",
			measure(drifted), measure(static))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRetailDriftValidation(t *testing.T) {
	if _, err := Retail(RetailParams{Transactions: 10, NumItems: 10, AvgLen: 3, Drift: 1.5}); err == nil {
		t.Error("drift > 1 accepted")
	}
}
