package gen

import (
	"fmt"
	"math/rand"

	"tara/internal/maras"
)

// DDI is one planted drug-drug interaction: co-administration of DrugA and
// DrugB causes ADR. The generator guarantees the ADR is not part of either
// drug's own profile, so only the interaction explains it — exactly the
// signal MARAS's contrast measure is designed to surface.
type DDI struct {
	DrugA, DrugB string
	ADR          string
}

// Key returns the canonical "drugA+drugB=>adr" form (drugs sorted) used to
// match signals against ground truth.
func (d DDI) Key() string {
	a, b := d.DrugA, d.DrugB
	if b < a {
		a, b = b, a
	}
	return a + "+" + b + "=>" + d.ADR
}

// FAERSParams parameterizes the synthetic spontaneous-reporting-system
// generator. It stands in for the public FAERS quarterly extracts the paper
// uses (see DESIGN.md, Substitutions): per-drug ADR profiles, co-prescription
// patterns, planted interactions, and reporting noise.
type FAERSParams struct {
	Reports  int
	NumDrugs int
	NumADRs  int
	// NumDDIs is how many true interactions to plant (default 20).
	NumDDIs int
	// DDIRate is the probability a report draws a DDI co-prescription
	// (default 0.12).
	DDIRate float64
	// NoiseADRRate is the probability of an unrelated ADR appearing on a
	// report (default 0.15).
	NoiseADRRate float64
	Seed         int64
}

func (p FAERSParams) withDefaults() FAERSParams {
	if p.NumDDIs == 0 {
		p.NumDDIs = 20
	}
	if p.DDIRate == 0 {
		// Low enough that interacting drugs are mostly used solo, which is
		// what gives the contrast measure its discriminating power: the
		// single-drug contexts stay weakly associated with the interaction
		// ADR.
		p.DDIRate = 0.06
	}
	if p.NoiseADRRate == 0 {
		p.NoiseADRRate = 0.15
	}
	return p
}

// FAERS generates a synthetic ADR report collection with planted DDIs and
// returns the dataset together with the ground-truth interaction table.
func FAERS(p FAERSParams) (*maras.Dataset, []DDI, error) {
	p = p.withDefaults()
	if p.Reports <= 0 || p.NumDrugs < 4 || p.NumADRs < 4 {
		return nil, nil, fmt.Errorf("gen: faers params too small: %+v", p)
	}
	if 2*p.NumDDIs > p.NumDrugs {
		return nil, nil, fmt.Errorf("gen: %d DDIs need %d distinct drugs, have %d", p.NumDDIs, 2*p.NumDDIs, p.NumDrugs)
	}
	r := rand.New(rand.NewSource(p.Seed))

	drugName := func(i int) string { return fmt.Sprintf("drug%03d", i) }
	adrName := func(i int) string { return fmt.Sprintf("adr%03d", i) }

	// Reserve the first NumDDIs ADRs as interaction outcomes; drug profiles
	// draw only from the rest, so interactions are never explainable by a
	// single drug.
	interADR := make([]string, p.NumDDIs)
	for i := range interADR {
		interADR[i] = adrName(i)
	}
	profileADRs := p.NumADRs - p.NumDDIs
	if profileADRs < 2 {
		return nil, nil, fmt.Errorf("gen: need more ADRs than DDIs")
	}

	// Per-drug profile: 1-3 own ADRs with individual report probabilities.
	type profileEntry struct {
		adr  string
		prob float64
	}
	profiles := make([][]profileEntry, p.NumDrugs)
	for d := range profiles {
		n := 1 + r.Intn(3)
		for k := 0; k < n; k++ {
			profiles[d] = append(profiles[d], profileEntry{
				adr:  adrName(p.NumDDIs + r.Intn(profileADRs)),
				prob: 0.3 + 0.5*r.Float64(),
			})
		}
	}

	// Plant DDIs on disjoint drug pairs (drug 2i, 2i+1).
	truth := make([]DDI, p.NumDDIs)
	for i := range truth {
		truth[i] = DDI{DrugA: drugName(2 * i), DrugB: drugName(2*i + 1), ADR: interADR[i]}
	}

	// Benign co-prescription patterns among the remaining drugs, the
	// confounders that make confidence/RR baselines noisy.
	nPatterns := p.NumDrugs / 4
	type coRx struct{ a, b int }
	patterns := make([]coRx, nPatterns)
	for i := range patterns {
		lo := 2 * p.NumDDIs
		patterns[i] = coRx{lo + r.Intn(p.NumDrugs-lo), lo + r.Intn(p.NumDrugs-lo)}
	}

	ds := maras.NewDataset()
	for t := 0; t < p.Reports; t++ {
		var drugIdx []int
		switch x := r.Float64(); {
		case x < p.DDIRate:
			ddi := r.Intn(p.NumDDIs)
			drugIdx = append(drugIdx, 2*ddi, 2*ddi+1)
		case x < p.DDIRate+0.25 && nPatterns > 0:
			pat := patterns[r.Intn(nPatterns)]
			drugIdx = append(drugIdx, pat.a, pat.b)
		default:
			drugIdx = append(drugIdx, r.Intn(p.NumDrugs))
		}
		// Occasional extra co-medication.
		for r.Float64() < 0.15 {
			drugIdx = append(drugIdx, r.Intn(p.NumDrugs))
		}

		var drugs, adrs []string
		seenDrug := map[int]bool{}
		for _, d := range drugIdx {
			if seenDrug[d] {
				continue
			}
			seenDrug[d] = true
			drugs = append(drugs, drugName(d))
			for _, pe := range profiles[d] {
				if r.Float64() < pe.prob {
					adrs = append(adrs, pe.adr)
				}
			}
		}
		// Interaction outcomes for co-present planted pairs.
		for i, ddi := range truth {
			_ = ddi
			if seenDrug[2*i] && seenDrug[2*i+1] && r.Float64() < 0.9 {
				adrs = append(adrs, interADR[i])
			}
		}
		// Reporting noise.
		for r.Float64() < p.NoiseADRRate {
			adrs = append(adrs, adrName(p.NumDDIs+r.Intn(profileADRs)))
		}
		if len(adrs) == 0 {
			// Every SRS report names at least one reaction.
			adrs = append(adrs, adrName(p.NumDDIs+r.Intn(profileADRs)))
		}
		ds.AddReport(drugs, adrs)
	}
	return ds, truth, nil
}

// SignalKey renders a mined MARAS association in ground-truth key form when
// it is a two-drug signal whose ADR set includes a single ADR; multi-ADR
// signals match if any of their ADRs pairs with the drug combination.
// It returns all candidate keys for matching.
func SignalKeys(ds *maras.Dataset, s maras.Signal) []string {
	if len(s.Assoc.Drugs) != 2 {
		return nil
	}
	a := ds.Drugs.Name(s.Assoc.Drugs[0])
	b := ds.Drugs.Name(s.Assoc.Drugs[1])
	if b < a {
		a, b = b, a
	}
	keys := make([]string, 0, len(s.Assoc.ADRs))
	for _, adr := range s.Assoc.ADRs {
		keys = append(keys, a+"+"+b+"=>"+ds.ADRs.Name(adr))
	}
	return keys
}
