// Package gen provides the synthetic data generators behind every
// experiment: a reimplementation of the IBM Quest transaction generator
// (used by the paper for T5kL50N100 and T2kL100N1k), Zipf-skewed retail and
// webdocs-style generators matching the real datasets' shapes (Table 3),
// and a FAERS-like ADR report generator with planted drug-drug interactions
// as exact ground truth for the MARAS precision experiments (Figure 6).
//
// All generators are deterministic given their Seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"tara/internal/itemset"
	"tara/internal/txdb"
)

// QuestParams parameterizes the Quest-style generator in the usual notation:
// |D| transactions, |T| average transaction length, |I| average pattern
// length, |L| number of maximal potentially-frequent patterns, N items.
type QuestParams struct {
	Transactions int
	AvgTransLen  int
	AvgPatLen    int
	NumPatterns  int
	NumItems     int
	// Corruption is the per-item probability of dropping an item while
	// embedding a pattern (Quest's corruption level; default 0.25).
	Corruption float64
	// NoiseRate is the probability that a transaction slot is filled with
	// a uniformly random item instead of a pattern (default 0.3). It keeps
	// the co-occurrence graph from collapsing into one dense clique.
	NoiseRate float64
	// Reuse is the probability a pattern item is drawn from the previous
	// pattern instead of uniformly (Quest's correlation knob; default
	// 0.25).
	Reuse float64
	Seed  int64
}

func (p QuestParams) withDefaults() QuestParams {
	if p.AvgPatLen <= 0 {
		p.AvgPatLen = 4
	}
	if p.NumPatterns <= 0 {
		p.NumPatterns = 20
	}
	if p.Corruption == 0 {
		p.Corruption = 0.25
	}
	if p.NoiseRate == 0 {
		p.NoiseRate = 0.3
	}
	if p.Reuse == 0 {
		p.Reuse = 0.25
	}
	return p
}

func (p QuestParams) validate() error {
	if p.Transactions <= 0 || p.AvgTransLen <= 0 || p.NumItems <= 0 {
		return fmt.Errorf("gen: quest params must be positive: %+v", p)
	}
	if p.Corruption < 0 || p.Corruption >= 1 {
		return fmt.Errorf("gen: corruption %g outside [0,1)", p.Corruption)
	}
	return nil
}

// Quest generates a transaction database in the style of the IBM Quest
// synthetic data generator: maximal potential patterns are drawn first (with
// item reuse between consecutive patterns, giving correlation structure),
// then each transaction embeds exponentially-weighted patterns, corrupted
// item-wise, until its Poisson-drawn length is filled.
func Quest(p QuestParams) (*txdb.DB, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(p.Seed))
	db := txdb.NewDB()

	// Pre-register item names so ids are stable regardless of draw order.
	names := make([]string, p.NumItems)
	for i := range names {
		names[i] = fmt.Sprintf("i%d", i)
		db.Dict.Add(names[i])
	}

	// Maximal potential patterns. Each reuses a fraction of the previous
	// pattern's items (Quest's correlation knob).
	patterns := make([]itemset.Set, p.NumPatterns)
	weights := make([]float64, p.NumPatterns)
	var totalW float64
	var prev itemset.Set
	for i := range patterns {
		l := 1 + poisson(r, float64(p.AvgPatLen-1))
		s := make(itemset.Set, 0, l)
		for len(s) < l {
			if len(prev) > 0 && r.Float64() < p.Reuse {
				s = append(s, prev[r.Intn(len(prev))])
			} else {
				s = append(s, itemset.Item(r.Intn(p.NumItems)))
			}
			s = itemset.Canonicalize(s)
		}
		patterns[i] = s
		weights[i] = r.ExpFloat64()
		totalW += weights[i]
		prev = s
	}
	for i := range weights {
		weights[i] /= totalW
	}

	pick := func() itemset.Set {
		x := r.Float64()
		for i, w := range weights {
			if x < w {
				return patterns[i]
			}
			x -= w
		}
		return patterns[len(patterns)-1]
	}

	for t := 0; t < p.Transactions; t++ {
		target := 1 + poisson(r, float64(p.AvgTransLen-1))
		var items itemset.Set
		for len(items) < target {
			if r.Float64() < p.NoiseRate {
				items = append(items, itemset.Item(r.Intn(p.NumItems)))
				items = itemset.Canonicalize(items)
				continue
			}
			pat := pick()
			for _, it := range pat {
				if r.Float64() < p.Corruption {
					continue
				}
				items = append(items, it)
			}
			items = itemset.Canonicalize(items)
			// Guard against patterns that corrupt to nothing forever.
			if len(pat) == 0 {
				break
			}
		}
		if len(items) > target {
			items = items[:target]
		}
		nameList := make([]string, len(items))
		for i, it := range items {
			nameList[i] = names[it]
		}
		db.Add(int64(t), nameList...)
	}
	return db, nil
}

// poisson draws a Poisson-distributed integer with the given mean via
// Knuth's method (fine for the small means used here).
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > int(mean*20+100) { // numerical guard
			return k
		}
	}
}
