package gen

import (
	"fmt"
	"math/rand"

	"tara/internal/txdb"
)

// RetailParams parameterizes the Zipf-skewed basket generator standing in
// for the Belgian retail dataset of the paper (sparse baskets, ~10 items
// average, heavily skewed item popularity).
type RetailParams struct {
	Transactions int
	NumItems     int
	AvgLen       int
	// ZipfS is the Zipf exponent over item popularity (default 1.2).
	ZipfS float64
	// Drift rotates item popularity over time: by the end of the stream
	// the popularity ranking has shifted by Drift × NumItems positions, so
	// associations rise and fall across windows — the evolving behaviour
	// TARA's trajectory and stability operations exist for. 0 disables.
	Drift float64
	Seed  int64
}

// Retail generates a retail-style transaction database.
func Retail(p RetailParams) (*txdb.DB, error) {
	if p.Transactions <= 0 || p.NumItems <= 0 || p.AvgLen <= 0 {
		return nil, fmt.Errorf("gen: retail params must be positive: %+v", p)
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.2
	}
	if p.ZipfS <= 1 {
		return nil, fmt.Errorf("gen: zipf exponent %g must exceed 1", p.ZipfS)
	}
	if p.Drift < 0 || p.Drift > 1 {
		return nil, fmt.Errorf("gen: drift %g outside [0,1]", p.Drift)
	}
	r := rand.New(rand.NewSource(p.Seed))
	zipf := rand.NewZipf(r, p.ZipfS, 1, uint64(p.NumItems-1))
	db := txdb.NewDB()
	for i := 0; i < p.NumItems; i++ {
		db.Dict.Add(fmt.Sprintf("sku%d", i))
	}
	maxShift := p.Drift * float64(p.NumItems)
	for t := 0; t < p.Transactions; t++ {
		// Popularity ranks rotate linearly with time: the item at Zipf
		// rank k today was at rank k-shift at the start of the stream.
		shift := uint64(maxShift * float64(t) / float64(p.Transactions))
		l := 1 + poisson(r, float64(p.AvgLen-1))
		names := make([]string, 0, l)
		for len(names) < l {
			item := (zipf.Uint64() + shift) % uint64(p.NumItems)
			names = append(names, fmt.Sprintf("sku%d", item))
		}
		db.Add(int64(t), names...)
	}
	return db, nil
}

// WebdocsParams parameterizes the webdocs-style generator: very long
// transactions over a huge vocabulary, the densest workload of Table 3.
type WebdocsParams struct {
	Transactions int
	NumItems     int
	AvgLen       int
	ZipfS        float64
	Seed         int64
}

// Webdocs generates a webdocs-style database (each transaction is the
// term set of one document).
func Webdocs(p WebdocsParams) (*txdb.DB, error) {
	if p.Transactions <= 0 || p.NumItems <= 0 || p.AvgLen <= 0 {
		return nil, fmt.Errorf("gen: webdocs params must be positive: %+v", p)
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.4
	}
	if p.ZipfS <= 1 {
		return nil, fmt.Errorf("gen: zipf exponent %g must exceed 1", p.ZipfS)
	}
	r := rand.New(rand.NewSource(p.Seed))
	zipf := rand.NewZipf(r, p.ZipfS, 1, uint64(p.NumItems-1))
	db := txdb.NewDB()
	for t := 0; t < p.Transactions; t++ {
		l := 1 + poisson(r, float64(p.AvgLen-1))
		// Transactions are item sets: draw until l distinct terms (capped,
		// since a heavy Zipf head can make distinct draws scarce).
		seen := make(map[uint64]bool, l)
		names := make([]string, 0, l)
		for attempts := 0; len(names) < l && attempts < 30*l; attempts++ {
			w := zipf.Uint64()
			if seen[w] {
				continue
			}
			seen[w] = true
			names = append(names, fmt.Sprintf("w%d", w))
		}
		db.Add(int64(t), names...)
	}
	return db, nil
}
