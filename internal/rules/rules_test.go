package rules

import (
	"math"
	"math/rand"
	"testing"

	"tara/internal/itemset"
	"tara/internal/mining"
	"tara/internal/txdb"
)

func TestKeyRoundTrip(t *testing.T) {
	cases := []Rule{
		{Ant: itemset.New(1), Cons: itemset.New(2)},
		{Ant: itemset.New(1, 2, 3), Cons: itemset.New(7, 9)},
		{Ant: itemset.New(5), Cons: itemset.New()},
	}
	for _, r := range cases {
		got, err := FromKey(r.Key())
		if err != nil {
			t.Fatalf("FromKey(Key(%v)): %v", r, err)
		}
		if !got.Equal(r) {
			t.Errorf("round trip %v -> %v", r, got)
		}
	}
}

func TestKeyDistinguishesSides(t *testing.T) {
	// {1} => {2,3} versus {1,2} => {3} share the same item union.
	a := Rule{Ant: itemset.New(1), Cons: itemset.New(2, 3)}
	b := Rule{Ant: itemset.New(1, 2), Cons: itemset.New(3)}
	if a.Key() == b.Key() {
		t.Error("keys collide for rules with different splits")
	}
}

func TestFromKeyErrors(t *testing.T) {
	if _, err := FromKey(""); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := FromKey(string([]byte{2, 0, 0, 0, 1})); err == nil {
		t.Error("truncated key accepted")
	}
}

func TestRuleItemsAndString(t *testing.T) {
	r := Rule{Ant: itemset.New(2, 1), Cons: itemset.New(3)}
	if !itemset.Equal(r.Items(), itemset.New(1, 2, 3)) {
		t.Errorf("Items = %v", r.Items())
	}
	if r.String() != "{1 2} => {3}" {
		t.Errorf("String = %q", r.String())
	}
}

func TestFormat(t *testing.T) {
	d := txdb.NewDict()
	a, b, c := d.Add("aspirin"), d.Add("warfarin"), d.Add("bleeding")
	r := Rule{Ant: itemset.New(a, b), Cons: itemset.New(c)}
	if got := r.Format(d); got != "[aspirin warfarin] => [bleeding]" {
		t.Errorf("Format = %q", got)
	}
}

func TestStatsMeasures(t *testing.T) {
	s := Stats{CountXY: 20, CountX: 40, CountY: 50, N: 100}
	if got := s.Support(); got != 0.2 {
		t.Errorf("Support = %g", got)
	}
	if got := s.Confidence(); got != 0.5 {
		t.Errorf("Confidence = %g", got)
	}
	if got := s.Lift(); got != 1.0 {
		t.Errorf("Lift = %g", got)
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var s Stats
	if s.Support() != 0 || s.Confidence() != 0 || s.Lift() != 0 {
		t.Error("zero stats should yield zero measures, not NaN")
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{CountXY: 1, CountX: 2, CountY: 3, N: 10}
	b := Stats{CountXY: 4, CountX: 5, CountY: 6, N: 20}
	m := a.Merge(b)
	want := Stats{CountXY: 5, CountX: 7, CountY: 9, N: 30}
	if m != want {
		t.Errorf("Merge = %+v, want %+v", m, want)
	}
}

func TestLiftIndependence(t *testing.T) {
	// Independent items: supp(XY) = supp(X)*supp(Y) => lift == 1.
	s := Stats{CountXY: 6, CountX: 20, CountY: 30, N: 100}
	if math.Abs(s.Lift()-1.0) > 1e-12 {
		t.Errorf("Lift = %g, want 1", s.Lift())
	}
}

func mineMarket(t *testing.T) *mining.Result {
	t.Helper()
	db := txdb.NewDB()
	db.Add(1, "bread", "milk")
	db.Add(2, "bread", "diapers", "beer", "eggs")
	db.Add(3, "milk", "diapers", "beer", "cola")
	db.Add(4, "bread", "milk", "diapers", "beer")
	db.Add(5, "bread", "milk", "diapers", "cola")
	res, err := mining.Eclat{}.Mine(db.Tx, mining.Params{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGenerate(t *testing.T) {
	res := mineMarket(t)
	out, err := Generate(res, GenParams{MinCount: 3, MinConf: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no rules generated")
	}
	for _, r := range out {
		if r.Support() < 3.0/5 {
			t.Errorf("rule %v support %g below threshold", r.Rule, r.Support())
		}
		if r.Confidence() < 0.7 {
			t.Errorf("rule %v confidence %g below threshold", r.Rule, r.Confidence())
		}
		if len(itemset.Intersect(r.Ant, r.Cons)) != 0 {
			t.Errorf("rule %v has overlapping sides", r.Rule)
		}
		if r.N != 5 {
			t.Errorf("rule %v N = %d", r.Rule, r.N)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	res := mineMarket(t)
	a, err := Generate(res, GenParams{MinCount: 2, MinConf: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(res, GenParams{MinCount: 2, MinConf: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Rule.Equal(b[i].Rule) || a[i].Stats != b[i].Stats {
			t.Fatalf("output %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGenerateMaxAnt(t *testing.T) {
	res := mineMarket(t)
	out, err := Generate(res, GenParams{MinCount: 2, MinConf: 0, MaxAnt: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out {
		if len(r.Ant) > 1 {
			t.Errorf("rule %v exceeds MaxAnt", r.Rule)
		}
	}
}

func TestGenerateCountsCorrect(t *testing.T) {
	// Verify generated counts against direct containment counting.
	db := txdb.NewDB()
	db.Add(1, "a", "b", "c")
	db.Add(2, "a", "b")
	db.Add(3, "a", "c")
	db.Add(4, "b", "c")
	db.Add(5, "a", "b", "c")
	res, err := mining.Apriori{}.Mine(db.Tx, mining.Params{MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(res, GenParams{MinCount: 1, MinConf: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out {
		var xy, x, y uint32
		union := r.Items()
		for _, tx := range db.Tx {
			if itemset.Subset(union, tx.Items) {
				xy++
			}
			if itemset.Subset(r.Ant, tx.Items) {
				x++
			}
			if itemset.Subset(r.Cons, tx.Items) {
				y++
			}
		}
		if r.CountXY != xy || r.CountX != x || r.CountY != y {
			t.Errorf("rule %v counts (%d,%d,%d), want (%d,%d,%d)",
				r.Rule, r.CountXY, r.CountX, r.CountY, xy, x, y)
		}
	}
}

func TestGenerateEmptyResult(t *testing.T) {
	res := mining.NewResult(0)
	out, err := Generate(res, GenParams{MinCount: 1, MinConf: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("generated %d rules from empty result", len(out))
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	r1 := Rule{Ant: itemset.New(1), Cons: itemset.New(2)}
	r2 := Rule{Ant: itemset.New(2), Cons: itemset.New(1)}
	id1 := d.Add(r1)
	id2 := d.Add(r2)
	if id1 == id2 {
		t.Fatal("different rules share an id")
	}
	if got := d.Add(r1); got != id1 {
		t.Errorf("re-Add returned %d, want %d", got, id1)
	}
	if got, ok := d.Lookup(r2); !ok || got != id2 {
		t.Errorf("Lookup = %d,%v", got, ok)
	}
	if _, ok := d.Lookup(Rule{Ant: itemset.New(9), Cons: itemset.New(8)}); ok {
		t.Error("Lookup of unknown rule succeeded")
	}
	back, ok := d.Rule(id1)
	if !ok || !back.Equal(r1) {
		t.Errorf("Rule(%d) = %v,%v", id1, back, ok)
	}
	if _, ok := d.Rule(ID(99)); ok {
		t.Error("out-of-range id resolved")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestDictZeroValue(t *testing.T) {
	var d Dict
	id := d.Add(Rule{Ant: itemset.New(1), Cons: itemset.New(2)})
	if r, ok := d.Rule(id); !ok || !r.Equal(Rule{Ant: itemset.New(1), Cons: itemset.New(2)}) {
		t.Error("zero-value Dict unusable")
	}
}

func TestPropertyKeyInjective(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	randRule := func() Rule {
		n := 1 + r.Intn(4)
		m := 1 + r.Intn(3)
		all := make(itemset.Set, n+m)
		for i := range all {
			all[i] = itemset.Item(r.Intn(20))
		}
		all = itemset.Canonicalize(all)
		if len(all) < 2 {
			all = itemset.New(1, 2)
		}
		cut := 1 + r.Intn(len(all)-1)
		return Rule{Ant: itemset.Clone(all[:cut]), Cons: itemset.Clone(all[cut:])}
	}
	for trial := 0; trial < 200; trial++ {
		a, b := randRule(), randRule()
		if (a.Key() == b.Key()) != a.Equal(b) {
			t.Fatalf("key injectivity violated: %v vs %v", a, b)
		}
	}
}

func TestPropertyGeneratedRulesSatisfyThresholds(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		db := txdb.NewDB()
		n := 10 + r.Intn(40)
		for i := 0; i < n; i++ {
			l := 1 + r.Intn(5)
			names := make([]string, l)
			for j := range names {
				names[j] = string(rune('a' + r.Intn(8)))
			}
			db.Add(int64(i), names...)
		}
		res, err := mining.FPGrowth{}.Mine(db.Tx, mining.Params{MinCount: 2})
		if err != nil {
			t.Fatal(err)
		}
		minConf := r.Float64()
		out, err := Generate(res, GenParams{MinCount: 2, MinConf: minConf})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range out {
			if w.Confidence() < minConf {
				t.Fatalf("trial %d: rule %v conf %g < %g", trial, w.Rule, w.Confidence(), minConf)
			}
			if w.CountXY < 2 {
				t.Fatalf("trial %d: rule %v below count threshold", trial, w.Rule)
			}
		}
	}
}
