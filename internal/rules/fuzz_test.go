package rules

import (
	"testing"

	"tara/internal/itemset"
)

// FuzzFromKey checks that arbitrary byte strings never panic the rule key
// decoder, and that accepted keys round-trip.
func FuzzFromKey(f *testing.F) {
	f.Add("")
	f.Add(Rule{Ant: itemset.New(1), Cons: itemset.New(2, 3)}.Key())
	f.Add(string([]byte{1, 0, 0, 0, 1}))
	f.Add(string([]byte{5, 0, 0}))
	f.Fuzz(func(t *testing.T, k string) {
		r, err := FromKey(k)
		if err != nil {
			return
		}
		if r.Key() != k {
			t.Fatalf("accepted key %q does not round-trip", k)
		}
	})
}
