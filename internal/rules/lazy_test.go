package rules

import (
	"sync"
	"testing"

	"tara/internal/itemset"
)

func lazyFixture(t *testing.T) (*Dict, []Rule) {
	t.Helper()
	base := []Rule{
		{Ant: itemset.New(0), Cons: itemset.New(1)},
		{Ant: itemset.New(1), Cons: itemset.New(0)},
		{Ant: itemset.New(0, 1), Cons: itemset.New(2)},
		{Ant: itemset.New(2), Cons: itemset.New(0, 1)},
	}
	keys := make([][]byte, len(base))
	for i, r := range base {
		keys[i] = []byte(r.Key())
	}
	return NewLazyDict(len(base), func(i int) []byte { return keys[i] }), base
}

func TestLazyDictRule(t *testing.T) {
	d, base := lazyFixture(t)
	if d.Len() != len(base) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(base))
	}
	// Out of order, repeatedly: each id parses once and caches.
	for _, i := range []int{3, 0, 3, 2, 1, 0} {
		r, ok := d.Rule(ID(i))
		if !ok || !r.Equal(base[i]) {
			t.Fatalf("Rule(%d) = %v, %v; want %v", i, r, ok, base[i])
		}
	}
	if _, ok := d.Rule(ID(len(base))); ok {
		t.Error("out-of-range id resolved")
	}
}

func TestLazyDictLookupForces(t *testing.T) {
	d, base := lazyFixture(t)
	for i, r := range base {
		id, ok := d.Lookup(r)
		if !ok || id != ID(i) {
			t.Fatalf("Lookup(%v) = %d, %v; want %d", r, id, ok, i)
		}
	}
	if _, ok := d.Lookup(Rule{Ant: itemset.New(7), Cons: itemset.New(8)}); ok {
		t.Error("unknown rule found")
	}
}

func TestLazyDictAddExtends(t *testing.T) {
	d, base := lazyFixture(t)
	novel := Rule{Ant: itemset.New(5), Cons: itemset.New(6)}
	id := d.Add(novel)
	if id != ID(len(base)) {
		t.Fatalf("Add of novel rule = %d, want %d", id, len(base))
	}
	// Re-adding a base rule returns its base id, not a new one.
	if got := d.Add(base[2]); got != 2 {
		t.Fatalf("Add of base rule = %d, want 2", got)
	}
	if d.Len() != len(base)+1 {
		t.Fatalf("Len = %d, want %d", d.Len(), len(base)+1)
	}
	r, ok := d.Rule(id)
	if !ok || !r.Equal(novel) {
		t.Fatalf("Rule(%d) after Add = %v, %v", id, r, ok)
	}
}

func TestLazyDictBadKey(t *testing.T) {
	keys := [][]byte{[]byte("\x05garbage"), nil}
	d := NewLazyDict(2, func(i int) []byte { return keys[i] })
	if _, ok := d.Rule(0); ok {
		t.Error("corrupt key parsed")
	}
	if _, ok := d.Rule(1); ok {
		t.Error("empty key parsed")
	}
	// Forcing tolerates the bad keys: they are simply unresolvable.
	if _, ok := d.Lookup(Rule{Ant: itemset.New(1), Cons: itemset.New(2)}); ok {
		t.Error("unknown rule found in corrupt dict")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestLazyDictConcurrent(t *testing.T) {
	d, base := lazyFixture(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ID((g + i) % len(base))
				r, ok := d.Rule(id)
				if !ok || !r.Equal(base[id]) {
					t.Errorf("Rule(%d) wrong under concurrency", id)
					return
				}
				if i == 100 {
					// Mix in forcing and appending.
					d.Lookup(base[0])
					d.Add(Rule{Ant: itemset.New(itemset.Item(40 + g)), Cons: itemset.New(50)})
				}
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != len(base)+8 {
		t.Fatalf("Len after concurrent adds = %d, want %d", d.Len(), len(base)+8)
	}
}
