// Package rules defines the temporal association rule model of the paper
// (Definition 1) together with its interestingness measures — support,
// confidence and lift (Formulas 1–3) — plus rule generation from frequent
// itemsets and a rule dictionary that interns rules to dense identifiers for
// the TAR Archive and the EPS index.
package rules

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tara/internal/itemset"
	"tara/internal/mining"
	"tara/internal/txdb"
)

// Rule is an association rule Antecedent ⇒ Consequent over disjoint,
// canonical itemsets.
type Rule struct {
	Ant  itemset.Set
	Cons itemset.Set
}

// MaxAntecedentLen bounds the antecedent length a rule key can encode.
const MaxAntecedentLen = 255

// Key returns a canonical string key for the rule: one byte of antecedent
// length followed by the two itemset keys. Distinct rules produce distinct
// keys. It panics if the antecedent exceeds MaxAntecedentLen items, which is
// far beyond any mining configuration in this repository.
func (r Rule) Key() string {
	if len(r.Ant) > MaxAntecedentLen {
		panic(fmt.Sprintf("rules: antecedent of %d items exceeds key limit", len(r.Ant)))
	}
	var b strings.Builder
	b.Grow(1 + 4*(len(r.Ant)+len(r.Cons)))
	b.WriteByte(byte(len(r.Ant)))
	b.WriteString(itemset.Key(r.Ant))
	b.WriteString(itemset.Key(r.Cons))
	return b.String()
}

// FromKey decodes a rule key produced by Key.
func FromKey(k string) (Rule, error) {
	if len(k) < 1 {
		return Rule{}, fmt.Errorf("rules: empty key")
	}
	antLen := int(k[0])
	if len(k)-1 < 4*antLen || (len(k)-1)%4 != 0 {
		return Rule{}, fmt.Errorf("rules: malformed key of length %d", len(k))
	}
	ant, err := itemset.FromKey(k[1 : 1+4*antLen])
	if err != nil {
		return Rule{}, err
	}
	cons, err := itemset.FromKey(k[1+4*antLen:])
	if err != nil {
		return Rule{}, err
	}
	return Rule{Ant: ant, Cons: cons}, nil
}

// Items returns the union of antecedent and consequent.
func (r Rule) Items() itemset.Set { return itemset.Union(r.Ant, r.Cons) }

// Equal reports structural equality.
func (r Rule) Equal(o Rule) bool {
	return itemset.Equal(r.Ant, o.Ant) && itemset.Equal(r.Cons, o.Cons)
}

// String renders the rule with numeric item ids.
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v", r.Ant, r.Cons)
}

// Format renders the rule using the dictionary's item names.
func (r Rule) Format(d *txdb.Dict) string {
	var b strings.Builder
	writeNames := func(s itemset.Set) {
		b.WriteByte('[')
		for i, it := range s {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(d.Name(it))
		}
		b.WriteByte(']')
	}
	writeNames(r.Ant)
	b.WriteString(" => ")
	writeNames(r.Cons)
	return b.String()
}

// Stats holds the occurrence counts a rule's measures derive from within one
// time period: CountXY for X∪Y, CountX for the antecedent, CountY for the
// consequent, and N transactions in the period. Keeping integer counts (not
// float measures) is what makes time roll-up exact — counts add across
// windows while supports do not.
type Stats struct {
	CountXY uint32
	CountX  uint32
	CountY  uint32
	N       uint32
}

// Support is Formula 1: |F(X∪Y)| / |F(∅)|.
func (s Stats) Support() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.CountXY) / float64(s.N)
}

// Confidence is Formula 2: |F(X∪Y)| / |F(X)|.
func (s Stats) Confidence() float64 {
	if s.CountX == 0 {
		return 0
	}
	return float64(s.CountXY) / float64(s.CountX)
}

// Lift is Formula 3 (the reporting ratio RR of the MARAS evaluation):
// how many times more often X and Y co-occur than if independent.
func (s Stats) Lift() float64 {
	if s.CountX == 0 || s.CountY == 0 {
		return 0
	}
	return float64(s.CountXY) * float64(s.N) / (float64(s.CountX) * float64(s.CountY))
}

// Merge adds the counts of two periods, implementing exact roll-up.
func (s Stats) Merge(o Stats) Stats {
	return Stats{
		CountXY: s.CountXY + o.CountXY,
		CountX:  s.CountX + o.CountX,
		CountY:  s.CountY + o.CountY,
		N:       s.N + o.N,
	}
}

// WithStats couples a rule with its per-period statistics.
type WithStats struct {
	Rule
	Stats
}

// GenParams controls rule generation.
type GenParams struct {
	// MinCount is the absolute support threshold for X∪Y.
	MinCount uint32
	// MinConf is the minimum confidence in [0,1].
	MinConf float64
	// MaxAnt caps the antecedent length; non-positive means unlimited.
	MaxAnt int
}

// Generate derives all association rules from the frequent itemsets in res
// whose joint count meets p.MinCount and whose confidence meets p.MinConf.
// Every proper non-empty split of each frequent itemset is considered
// (antecedent ⇒ remainder); counts for both sides exist in res by downward
// closure. Output order is deterministic: canonical order of X∪Y, then of
// the antecedent.
func Generate(res *mining.Result, p GenParams) ([]WithStats, error) {
	var out []WithStats
	// Sort a copy of the sets for deterministic output without mutating res.
	sets := make([]mining.FrequentSet, len(res.Sets))
	copy(sets, res.Sets)
	sort.Slice(sets, func(i, j int) bool {
		return itemset.Compare(sets[i].Items, sets[j].Items) < 0
	})
	for _, fs := range sets {
		if len(fs.Items) < 2 || fs.Count < p.MinCount {
			continue
		}
		z := fs.Items
		countXY := fs.Count
		var genErr error
		err := itemset.ProperNonEmptySubsets(z, func(ant itemset.Set) {
			if p.MaxAnt > 0 && len(ant) > p.MaxAnt {
				return
			}
			countX, ok := res.Count(ant)
			if !ok {
				genErr = fmt.Errorf("rules: antecedent %v of frequent %v missing from result", ant, z)
				return
			}
			conf := float64(countXY) / float64(countX)
			if conf < p.MinConf {
				return
			}
			cons := itemset.Diff(z, ant)
			countY, ok := res.Count(cons)
			if !ok {
				genErr = fmt.Errorf("rules: consequent %v of frequent %v missing from result", cons, z)
				return
			}
			out = append(out, WithStats{
				Rule: Rule{Ant: itemset.Clone(ant), Cons: cons},
				Stats: Stats{
					CountXY: countXY,
					CountX:  countX,
					CountY:  countY,
					N:       uint32(res.N),
				},
			})
		})
		if err != nil {
			return nil, err
		}
		if genErr != nil {
			return nil, genErr
		}
	}
	return out, nil
}

// ID is a dense rule identifier assigned by a Dict.
type ID uint32

// Dict interns rules to dense IDs shared across windows, so the archive and
// index refer to rules by number. A Dict is safe for concurrent use: readers
// (Lookup, Rule, Len) may run while new windows intern rules via Add, which
// the query-serving daemon relies on when answering requests during an
// incremental append.
type Dict struct {
	mu    sync.RWMutex
	ids   map[string]ID
	rules []Rule // rules added after the lazy base (all rules for heap dicts)

	// Lazy base (see NewLazyDict): ids [0, lazyN) resolve by parsing keyAt(i)
	// on demand, cached in lazy. The key→id map and every parsed rule are
	// forced only when Add or Lookup needs the full map. forced flags that
	// the map covers the base; guarded by mu.
	lazyN  int
	keyAt  func(i int) []byte
	lazy   []atomic.Pointer[lazyRule]
	forced bool
}

// lazyRule caches one on-demand parse, including failures (a corrupt
// persisted key stays unresolvable rather than being re-parsed every call).
type lazyRule struct {
	r  Rule
	ok bool
}

// NewDict returns an empty rule dictionary.
func NewDict() *Dict { return &Dict{ids: map[string]ID{}} }

// NewLazyDict returns a dictionary pre-populated with n interned rules whose
// serialized keys are provided by keyAt (ids 0..n-1, in id order). Keys are
// parsed on first Rule lookup and cached — opening a persisted knowledge
// base pays nothing per rule until a query materializes it. Add and Lookup
// force the full key→id map (and thus every parse) on first use.
func NewLazyDict(n int, keyAt func(i int) []byte) *Dict {
	return &Dict{lazyN: n, keyAt: keyAt, lazy: make([]atomic.Pointer[lazyRule], n)}
}

// forceLocked parses every unparsed base key and builds the key→id map.
// Caller holds mu for writing. Unparseable keys (corrupt persisted data) are
// left unresolvable; their ids simply never match a Lookup.
func (d *Dict) forceLocked() {
	if d.forced || d.lazyN == 0 {
		d.forced = true
		if d.ids == nil {
			d.ids = map[string]ID{}
		}
		return
	}
	if d.ids == nil {
		d.ids = make(map[string]ID, d.lazyN)
	}
	for i := 0; i < d.lazyN; i++ {
		lr := d.lazy[i].Load()
		if lr == nil {
			r, err := FromKey(string(d.keyAt(i)))
			lr = &lazyRule{r: r, ok: err == nil}
			d.lazy[i].Store(lr)
		}
		if lr.ok {
			d.ids[lr.r.Key()] = ID(i)
		}
	}
	d.forced = true
}

// Add returns the ID for r, allocating one on first sight.
func (d *Dict) Add(r Rule) ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.forced && d.lazyN > 0 {
		d.forceLocked()
	}
	if d.ids == nil {
		d.ids = map[string]ID{}
	}
	k := r.Key()
	if id, ok := d.ids[k]; ok {
		return id
	}
	id := ID(d.lazyN + len(d.rules))
	d.ids[k] = id
	d.rules = append(d.rules, r)
	return id
}

// Lookup returns the ID for r if it has been added.
func (d *Dict) Lookup(r Rule) (ID, bool) {
	if d.lazyN > 0 {
		d.mu.Lock()
		d.forceLocked()
		d.mu.Unlock()
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[r.Key()]
	return id, ok
}

// Rule returns the rule for id. ok is false for out-of-range ids (and for
// lazy-base ids whose persisted key does not parse). Lazy-base resolution is
// lock-free: the parse result is published with an atomic pointer, so
// concurrent readers never contend with each other or with Add.
func (d *Dict) Rule(id ID) (Rule, bool) {
	if int(id) < d.lazyN {
		if lr := d.lazy[id].Load(); lr != nil {
			return lr.r, lr.ok
		}
		r, err := FromKey(string(d.keyAt(int(id))))
		lr := &lazyRule{r: r, ok: err == nil}
		// A racing parse of the same key wins or loses immaterially — both
		// compute identical values from the same immutable bytes.
		d.lazy[id].CompareAndSwap(nil, lr)
		lr = d.lazy[id].Load()
		return lr.r, lr.ok
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id)-d.lazyN >= len(d.rules) {
		return Rule{}, false
	}
	return d.rules[int(id)-d.lazyN], true
}

// Len returns the number of interned rules.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lazyN + len(d.rules)
}
