package mining

import (
	"tara/internal/itemset"
	"tara/internal/txdb"
)

// Apriori is the classic level-wise frequent-itemset miner (Agrawal &
// Srikant). Candidates of length k are joined from frequent (k-1)-itemsets
// and pruned by the downward-closure property; counting enumerates only
// transaction subsets whose every prefix is itself frequent.
type Apriori struct{}

// Name implements Miner.
func (Apriori) Name() string { return "apriori" }

// Mine implements Miner.
func (Apriori) Mine(tx []txdb.Transaction, p Params) (*Result, error) {
	minCount := p.minCount()
	res := NewResult(len(tx))
	frequent1, freq := countSingletons(tx, minCount)
	// Level 1's candidates are every distinct item seen.
	res.LevelCandidates = append(res.LevelCandidates, len(freq))
	if len(frequent1) == 0 || !p.lenOK(1) {
		return res, nil
	}
	isFrequent := make(map[itemset.Item]bool, len(frequent1))
	for _, it := range frequent1 {
		res.Add(itemset.Set{it}, freq[it])
		isFrequent[it] = true
	}

	// Filter transactions to frequent items once.
	ftx := make([]itemset.Set, 0, len(tx))
	for _, t := range tx {
		f := make(itemset.Set, 0, len(t.Items))
		for _, it := range t.Items {
			if isFrequent[it] {
				f = append(f, it)
			}
		}
		if len(f) >= 2 {
			ftx = append(ftx, f)
		}
	}

	// levels[k] maps the Key of each frequent k-itemset to its count;
	// levels[1] seeds the lattice walk used while counting.
	levels := map[int]map[string]uint32{1: {}}
	prev := make([]itemset.Set, 0, len(frequent1))
	for _, it := range frequent1 {
		s := itemset.Set{it}
		levels[1][itemset.Key(s)] = freq[it]
		prev = append(prev, s)
	}

	for k := 2; p.lenOK(k) && len(prev) > 1; k++ {
		candidates := aprioriJoin(prev, levels[k-1])
		res.LevelCandidates = append(res.LevelCandidates, len(candidates))
		if len(candidates) == 0 {
			break
		}
		// Candidate counts live in a slice; the map only resolves a key to a
		// position. Increments during counting then never store a string key,
		// so the per-subset lookups below stay allocation-free.
		candIdx := make(map[string]int32, len(candidates))
		candCounts := make([]uint32, len(candidates))
		for i, c := range candidates {
			candIdx[itemset.Key(c)] = int32(i)
		}
		buf := make(itemset.Set, 0, k)
		kb := make([]byte, 0, 4*k)
		for _, t := range ftx {
			if len(t) < k {
				continue
			}
			countSubsets(t, k, buf, kb, levels, candIdx, candCounts)
		}
		levels[k] = map[string]uint32{}
		prev = prev[:0]
		for i, c := range candidates {
			if n := candCounts[i]; n >= minCount {
				res.Add(c, n)
				levels[k][itemset.Key(c)] = n
				prev = append(prev, c)
			}
		}
		if len(levels[k]) == 0 {
			break
		}
	}
	return res, nil
}

// aprioriJoin produces the length-(k) candidates from the frequent
// (k-1)-itemsets in prev (canonically sorted within each set), applying the
// downward-closure prune against prevKeys.
func aprioriJoin(prev []itemset.Set, prevKeys map[string]uint32) []itemset.Set {
	var out []itemset.Set
	kb := make([]byte, 0, 4*len(prev[0]))
	// Group by shared (k-2)-prefix. prev is produced in ascending canonical
	// order by construction, so a double loop over prefix groups suffices.
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			a, b := prev[i], prev[j]
			if !samePrefix(a, b) {
				continue
			}
			lo, hi := a[len(a)-1], b[len(b)-1]
			if lo == hi {
				continue
			}
			if lo > hi {
				lo, hi = hi, lo
			}
			cand := make(itemset.Set, 0, len(a)+1)
			cand = append(cand, a[:len(a)-1]...)
			cand = append(cand, lo, hi)
			if aprioriPrune(cand, prevKeys, kb) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b itemset.Set) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// aprioriPrune reports whether every (k-1)-subset of cand is frequent. kb is
// a reusable key scratch buffer (callers size it to 4*(len(cand)-1)).
func aprioriPrune(cand itemset.Set, prevKeys map[string]uint32, kb []byte) bool {
	for drop := range cand {
		kb = kb[:0]
		for i, x := range cand {
			if i != drop {
				kb = itemset.AppendKey(kb, x)
			}
		}
		if _, ok := prevKeys[string(kb)]; !ok {
			return false
		}
	}
	return true
}

// countSubsets increments candCounts for every k-subset of t that is a
// candidate (present in candIdx). Branches whose running prefix is not a
// frequent itemset at its own level are pruned, which keeps the enumeration
// inside the frequent lattice. buf and kb are per-level scratch buffers (cap
// k items / 4k bytes); the recursion grows the itemset and its key encoding
// in lockstep so no lookup materializes a key string.
func countSubsets(t itemset.Set, k int, buf itemset.Set, kb []byte, levels map[int]map[string]uint32, candIdx map[string]int32, candCounts []uint32) {
	countSubsetsRec(t, k, 0, buf[:0], kb[:0], levels, candIdx, candCounts)
}

func countSubsetsRec(t itemset.Set, k, start int, prefix itemset.Set, kb []byte, levels map[int]map[string]uint32, candIdx map[string]int32, candCounts []uint32) {
	// The loop bound leaves enough items to still reach length k.
	for i := start; i <= len(t)-(k-len(prefix)); i++ {
		next := append(prefix, t[i])
		nkb := itemset.AppendKey(kb, t[i])
		if len(next) == k {
			if ci, ok := candIdx[string(nkb)]; ok {
				candCounts[ci]++
			}
			continue
		}
		if _, ok := levels[len(next)][string(nkb)]; !ok {
			continue
		}
		countSubsetsRec(t, k, i+1, next, nkb, levels, candIdx, candCounts)
	}
}
