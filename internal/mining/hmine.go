package mining

import (
	"tara/internal/itemset"
	"tara/internal/txdb"
)

// HMine is the hyper-structure miner of Pei et al. ("H-Mine: Hyper-structure
// mining of frequent patterns in large databases"), the itemset-generation
// engine of the paper's strongest preprocessing baseline. Filtered
// transactions are stored once in an arena; projections are lists of
// (transaction, position) cells rather than copied sub-databases, so memory
// stays linear in the input while the search walks prefixes in item order.
type HMine struct{}

// Name implements Miner.
func (HMine) Name() string { return "hmine" }

// hCell points into the arena: the suffix of transaction tx starting at pos
// belongs to the current projection.
type hCell struct {
	tx  int32
	pos int32
}

// Mine implements Miner.
func (HMine) Mine(tx []txdb.Transaction, p Params) (*Result, error) {
	minCount := p.minCount()
	res := NewResult(len(tx))
	if !p.lenOK(1) {
		return res, nil
	}
	frequent1, _ := countSingletons(tx, minCount)
	if len(frequent1) == 0 {
		return res, nil
	}
	isFrequent := make(map[itemset.Item]bool, len(frequent1))
	for _, it := range frequent1 {
		isFrequent[it] = true
	}

	// Arena of transactions filtered to frequent items (kept in canonical
	// ascending order, which is also the projection order).
	arena := make([]itemset.Set, 0, len(tx))
	for _, t := range tx {
		f := make(itemset.Set, 0, len(t.Items))
		for _, it := range t.Items {
			if isFrequent[it] {
				f = append(f, it)
			}
		}
		if len(f) > 0 {
			arena = append(arena, f)
		}
	}

	cells := make([]hCell, len(arena))
	for i := range arena {
		cells[i] = hCell{tx: int32(i), pos: 0}
	}
	prefix := make(itemset.Set, 0, 16)
	hMineRec(arena, cells, prefix, minCount, p, res)
	return res, nil
}

// hMineRec mines the projection given by cells under the current prefix.
// For every locally frequent item a it emits prefix ∪ {a} and recurses into
// the a-projection (cells advanced past a's position).
func hMineRec(arena []itemset.Set, cells []hCell, prefix itemset.Set, minCount uint32, p Params, res *Result) {
	// Local header table: item -> count within the projection suffixes.
	local := map[itemset.Item]uint32{}
	for _, c := range cells {
		suffix := arena[c.tx][c.pos:]
		for _, it := range suffix {
			local[it]++
		}
	}
	// Items in ascending order keep output canonical and deterministic.
	var items itemset.Set
	for it, n := range local {
		if n >= minCount {
			items = append(items, it)
		}
	}
	items = itemset.Canonicalize(items)

	for _, a := range items {
		pattern := append(prefix, a)
		res.Add(pattern, local[a])
		if !p.lenOK(len(pattern) + 1) {
			continue
		}
		// Build the a-projection by advancing each cell past a.
		var sub []hCell
		for _, c := range cells {
			t := arena[c.tx]
			for q := c.pos; q < int32(len(t)); q++ {
				if t[q] == a {
					if q+1 < int32(len(t)) {
						sub = append(sub, hCell{tx: c.tx, pos: q + 1})
					}
					break
				}
				if t[q] > a { // canonical order: a cannot appear later
					break
				}
			}
		}
		if len(sub) > 0 {
			hMineRec(arena, sub, pattern, minCount, p, res)
		}
	}
}
