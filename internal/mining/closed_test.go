package mining

import (
	"math/rand"
	"testing"

	"tara/internal/itemset"
	"tara/internal/txdb"
)

// bruteClosed computes closed itemsets by definition: frequent itemsets
// whose every proper superset (within the same universe) has a strictly
// smaller count.
func bruteClosed(res *Result) map[string]uint32 {
	out := map[string]uint32{}
	for _, x := range res.Sets {
		closed := true
		for _, y := range res.Sets {
			if len(y.Items) > len(x.Items) && itemset.Subset(x.Items, y.Items) && y.Count == x.Count {
				closed = false
				break
			}
		}
		if closed {
			out[itemset.Key(x.Items)] = x.Count
		}
	}
	return out
}

func TestFilterClosedSmall(t *testing.T) {
	db := txdb.NewDB()
	// {a,b} always occur together; {a} alone never appears, so {a} and {b}
	// are non-closed (their closure is {a,b}).
	db.Add(1, "a", "b")
	db.Add(2, "a", "b", "c")
	db.Add(3, "a", "b")
	db.Add(4, "c")
	res, err := Eclat{}.Mine(db.Tx, Params{MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	closed := FilterClosed(res)
	a, _ := db.Dict.Lookup("a")
	b, _ := db.Dict.Lookup("b")
	c, _ := db.Dict.Lookup("c")
	if _, ok := closed.Count(itemset.New(a)); ok {
		t.Error("{a} reported closed despite always co-occurring with b")
	}
	if _, ok := closed.Count(itemset.New(b)); ok {
		t.Error("{b} reported closed")
	}
	if cnt, ok := closed.Count(itemset.New(a, b)); !ok || cnt != 3 {
		t.Errorf("{a,b} count = %d, %v", cnt, ok)
	}
	if cnt, ok := closed.Count(itemset.New(c)); !ok || cnt != 2 {
		t.Errorf("{c} count = %d, %v (c appears alone, so it is closed)", cnt, ok)
	}
	if _, ok := closed.Count(itemset.New(a, b, c)); !ok {
		t.Error("maximal itemset {a,b,c} must be closed")
	}
}

func TestPropertyFilterClosedMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 25; trial++ {
		tx := randomTx(r, 5+r.Intn(30), 2+r.Intn(8), 1+r.Intn(5))
		res, err := FPGrowth{}.Mine(tx, Params{MinCount: uint32(1 + r.Intn(3))})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteClosed(res)
		got := FilterClosed(res)
		if got.Len() != len(want) {
			t.Fatalf("trial %d: %d closed sets, want %d", trial, got.Len(), len(want))
		}
		for _, fs := range got.Sets {
			if want[itemset.Key(fs.Items)] != fs.Count {
				t.Fatalf("trial %d: %v miscounted or not closed", trial, fs.Items)
			}
		}
	}
}

func TestFilterClosedPreservesRecoverability(t *testing.T) {
	// Closed itemsets compactly represent the full set: every frequent
	// itemset's count equals the count of its smallest closed superset.
	r := rand.New(rand.NewSource(56))
	tx := randomTx(r, 40, 8, 5)
	res, err := Eclat{}.Mine(tx, Params{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	closed := FilterClosed(res)
	for _, fs := range res.Sets {
		var best uint32
		found := false
		for _, cs := range closed.Sets {
			if itemset.Subset(fs.Items, cs.Items) {
				if !found || cs.Count > best {
					best, found = cs.Count, true
				}
			}
		}
		if !found {
			t.Fatalf("frequent %v has no closed superset", fs.Items)
		}
		if best != fs.Count {
			t.Errorf("%v: recovered count %d, want %d", fs.Items, best, fs.Count)
		}
	}
}

func TestClosedComposition(t *testing.T) {
	db := txdb.NewDB()
	db.Add(1, "x", "y")
	db.Add(2, "x", "y")
	db.Add(3, "z")
	got, err := Closed(HMine{}, db.Tx, Params{MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 { // {x,y} and {z}
		t.Errorf("Closed = %d sets: %v", got.Len(), got.Sets)
	}
}

func TestFilterClosedEmpty(t *testing.T) {
	if got := FilterClosed(NewResult(0)); got.Len() != 0 {
		t.Errorf("closed of empty = %d sets", got.Len())
	}
}
