package mining

import (
	"math/rand"
	"testing"

	"tara/internal/itemset"
	"tara/internal/txdb"
)

// marketDB is the textbook market-basket example with hand-verifiable
// frequent itemsets.
func marketDB() []txdb.Transaction {
	db := txdb.NewDB()
	db.Add(1, "bread", "milk")
	db.Add(2, "bread", "diapers", "beer", "eggs")
	db.Add(3, "milk", "diapers", "beer", "cola")
	db.Add(4, "bread", "milk", "diapers", "beer")
	db.Add(5, "bread", "milk", "diapers", "cola")
	return db.Tx
}

// bruteForce is the reference miner: enumerate every subset of the union of
// items and count by explicit containment checks.
func bruteForce(tx []txdb.Transaction, p Params) *Result {
	minCount := p.MinCount
	if minCount < 1 {
		minCount = 1
	}
	res := NewResult(len(tx))
	var universe itemset.Set
	for _, t := range tx {
		universe = itemset.Union(universe, t.Items)
	}
	n := len(universe)
	if n > 16 {
		panic("bruteForce universe too large")
	}
	for mask := 1; mask < 1<<n; mask++ {
		var s itemset.Set
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, universe[i])
			}
		}
		if p.MaxLen > 0 && len(s) > p.MaxLen {
			continue
		}
		var c uint32
		for _, t := range tx {
			if itemset.Subset(s, t.Items) {
				c++
			}
		}
		if c >= minCount {
			res.Add(s, c)
		}
	}
	return res
}

func TestMinCountFor(t *testing.T) {
	cases := []struct {
		supp float64
		n    int
		want uint32
	}{
		{0.5, 10, 5},
		{0.51, 10, 6},
		{0.0001, 10, 1},
		{0, 10, 1},
		{-1, 10, 1},
		{0.5, 0, 1},
		{1.0, 7, 7},
	}
	for _, c := range cases {
		if got := MinCountFor(c.supp, c.n); got != c.want {
			t.Errorf("MinCountFor(%g, %d) = %d, want %d", c.supp, c.n, got, c.want)
		}
	}
}

func TestMinCountForSatisfiesThreshold(t *testing.T) {
	// Whatever rounding happens, count/n >= supp must hold and count-1
	// must violate it (tightness) whenever count > 1.
	for _, supp := range []float64{0.01, 0.1, 0.25, 1.0 / 3, 0.5, 0.999} {
		for _, n := range []int{1, 3, 10, 97, 1000} {
			c := MinCountFor(supp, n)
			if float64(c)/float64(n) < supp {
				t.Errorf("supp=%g n=%d: count %d below threshold", supp, n, c)
			}
			if c > 1 && float64(c-1)/float64(n) >= supp {
				t.Errorf("supp=%g n=%d: count %d not tight", supp, n, c)
			}
		}
	}
}

func TestResultAddAndLookup(t *testing.T) {
	r := NewResult(10)
	r.Add(itemset.New(1, 2), 4)
	if c, ok := r.Count(itemset.New(1, 2)); !ok || c != 4 {
		t.Fatalf("Count = %d,%v", c, ok)
	}
	if s := r.Support(itemset.New(1, 2)); s != 0.4 {
		t.Errorf("Support = %g", s)
	}
	if s := r.Support(itemset.New(9)); s != 0 {
		t.Errorf("Support of absent set = %g", s)
	}
	// Overwrite.
	r.Add(itemset.New(1, 2), 7)
	if c, _ := r.Count(itemset.New(1, 2)); c != 7 {
		t.Errorf("overwritten Count = %d", c)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d after overwrite", r.Len())
	}
}

func TestResultAddClones(t *testing.T) {
	r := NewResult(1)
	buf := itemset.New(1, 2)
	r.Add(buf, 1)
	buf[0] = 99
	if !itemset.Equal(r.Sets[0].Items, itemset.New(1, 2)) {
		t.Error("Result.Add did not clone the itemset")
	}
}

func TestResultEqual(t *testing.T) {
	a, b := NewResult(5), NewResult(5)
	a.Add(itemset.New(1), 3)
	b.Add(itemset.New(1), 3)
	if !a.Equal(b) {
		t.Error("equal results reported unequal")
	}
	b.Add(itemset.New(2), 2)
	if a.Equal(b) {
		t.Error("different sizes reported equal")
	}
	a.Add(itemset.New(2), 1)
	if a.Equal(b) {
		t.Error("different counts reported equal")
	}
	c := NewResult(6)
	c.Add(itemset.New(1), 3)
	if a.Equal(c) {
		t.Error("different N reported equal")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"apriori", "eclat", "fpgrowth", "hmine"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown miner accepted")
	}
}

func TestMinersOnMarketData(t *testing.T) {
	tx := marketDB()
	want := bruteForce(tx, Params{MinCount: 3})
	for _, m := range Miners() {
		got, err := m.Mine(tx, Params{MinCount: 3})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !got.Equal(want) {
			got.Sort()
			want.Sort()
			t.Errorf("%s: got %d sets %v, want %d sets %v",
				m.Name(), got.Len(), got.Sets, want.Len(), want.Sets)
		}
	}
}

func TestMinersKnownCounts(t *testing.T) {
	tx := marketDB()
	// {bread, milk} appears in tx 1, 4, 5; {diapers, beer} in 2, 3, 4.
	dict := txdb.NewDict()
	// Rebuild ids in the order marketDB added them.
	bread, milk := dict.Add("bread"), dict.Add("milk")
	diapers, beer := dict.Add("diapers"), dict.Add("beer")
	for _, m := range Miners() {
		res, err := m.Mine(tx, Params{MinCount: 2})
		if err != nil {
			t.Fatal(err)
		}
		if c, _ := res.Count(itemset.New(bread, milk)); c != 3 {
			t.Errorf("%s: count{bread,milk} = %d, want 3", m.Name(), c)
		}
		if c, _ := res.Count(itemset.New(diapers, beer)); c != 3 {
			t.Errorf("%s: count{diapers,beer} = %d, want 3", m.Name(), c)
		}
	}
}

func TestMinersEmptyInput(t *testing.T) {
	for _, m := range Miners() {
		res, err := m.Mine(nil, Params{MinCount: 1})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.Len() != 0 || res.N != 0 {
			t.Errorf("%s: non-empty result on empty input", m.Name())
		}
	}
}

func TestMinersThresholdAboveAll(t *testing.T) {
	tx := marketDB()
	for _, m := range Miners() {
		res, err := m.Mine(tx, Params{MinCount: 100})
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 0 {
			t.Errorf("%s: %d sets above impossible threshold", m.Name(), res.Len())
		}
	}
}

func TestMinersMaxLen(t *testing.T) {
	tx := marketDB()
	for _, m := range Miners() {
		res, err := m.Mine(tx, Params{MinCount: 1, MaxLen: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, fs := range res.Sets {
			if len(fs.Items) > 2 {
				t.Errorf("%s: emitted %v beyond MaxLen", m.Name(), fs.Items)
			}
		}
		want := bruteForce(tx, Params{MinCount: 1, MaxLen: 2})
		if !res.Equal(want) {
			t.Errorf("%s: MaxLen result differs from brute force", m.Name())
		}
	}
}

func TestMinersMinCountZeroMeansOne(t *testing.T) {
	tx := marketDB()
	for _, m := range Miners() {
		a, err := m.Mine(tx, Params{MinCount: 0, MaxLen: 3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Mine(tx, Params{MinCount: 1, MaxLen: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("%s: MinCount 0 and 1 differ", m.Name())
		}
	}
}

// randomTx builds a reproducible random database over nItems items.
func randomTx(r *rand.Rand, nTx, nItems, maxLen int) []txdb.Transaction {
	tx := make([]txdb.Transaction, nTx)
	for i := range tx {
		l := 1 + r.Intn(maxLen)
		s := make(itemset.Set, l)
		for j := range s {
			s[j] = itemset.Item(r.Intn(nItems))
		}
		tx[i] = txdb.Transaction{Time: int64(i), Items: itemset.Canonicalize(s)}
	}
	return tx
}

func TestPropertyMinersAgreeWithBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		tx := randomTx(r, 3+r.Intn(25), 2+r.Intn(9), 1+r.Intn(6))
		p := Params{MinCount: uint32(1 + r.Intn(4)), MaxLen: r.Intn(5)} // MaxLen 0 = unlimited
		want := bruteForce(tx, p)
		for _, m := range Miners() {
			got, err := m.Mine(tx, p)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, m.Name(), err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d: %s disagrees with brute force (p=%+v, %d tx): got %d want %d sets",
					trial, m.Name(), p, len(tx), got.Len(), want.Len())
			}
		}
	}
}

func TestPropertyMinersAgreePairwiseLarger(t *testing.T) {
	// Larger random instances where brute force is infeasible: check the
	// four miners against each other.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		tx := randomTx(r, 300, 40, 8)
		p := Params{MinCount: 5, MaxLen: 4}
		var ref *Result
		var refName string
		for _, m := range Miners() {
			got, err := m.Mine(tx, p)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref, refName = got, m.Name()
				continue
			}
			if !got.Equal(ref) {
				t.Fatalf("trial %d: %s (%d sets) disagrees with %s (%d sets)",
					trial, m.Name(), got.Len(), refName, ref.Len())
			}
		}
	}
}

func TestPropertyDownwardClosure(t *testing.T) {
	// Every subset of a frequent itemset must be frequent with count >=
	// the superset's count.
	r := rand.New(rand.NewSource(7))
	tx := randomTx(r, 150, 20, 6)
	res, err := Eclat{}.Mine(tx, Params{MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range res.Sets {
		fsCount := fs.Count
		err := itemset.ProperNonEmptySubsets(fs.Items, func(sub itemset.Set) {
			c, ok := res.Count(sub)
			if !ok {
				t.Errorf("subset %v of frequent %v missing", sub, fs.Items)
			} else if c < fsCount {
				t.Errorf("subset %v count %d < superset %v count %d", sub, c, fs.Items, fsCount)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTidset(t *testing.T) {
	ts := newTidset(130)
	ts.set(0)
	ts.set(64)
	ts.set(129)
	if ts.count() != 3 {
		t.Errorf("count = %d, want 3", ts.count())
	}
	other := newTidset(130)
	other.set(64)
	other.set(100)
	dst := make(tidset, len(ts))
	if c := andInto(dst, ts, other); c != 1 {
		t.Errorf("andInto count = %d, want 1", c)
	}
}

func BenchmarkMiners(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tx := randomTx(r, 2000, 100, 10)
	p := Params{MinCount: 20, MaxLen: 4}
	for _, m := range Miners() {
		b.Run(m.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Mine(tx, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestPropertyMaxLenMonotone(t *testing.T) {
	// The result at MaxLen k is exactly the length-<=k subset of the
	// result at MaxLen k+1.
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		tx := randomTx(r, 100, 15, 6)
		for k := 1; k <= 3; k++ {
			small, err := Eclat{}.Mine(tx, Params{MinCount: 3, MaxLen: k})
			if err != nil {
				t.Fatal(err)
			}
			big, err := Eclat{}.Mine(tx, Params{MinCount: 3, MaxLen: k + 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, fs := range small.Sets {
				c, ok := big.Count(fs.Items)
				if !ok || c != fs.Count {
					t.Fatalf("trial %d k=%d: %v missing or miscounted in larger run", trial, k, fs.Items)
				}
			}
			for _, fs := range big.Sets {
				if len(fs.Items) <= k {
					if c, ok := small.Count(fs.Items); !ok || c != fs.Count {
						t.Fatalf("trial %d k=%d: %v missing from smaller run", trial, k, fs.Items)
					}
				}
			}
		}
	}
}
