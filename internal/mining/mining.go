// Package mining implements frequent-itemset mining, the computational core
// that TARA's offline Association Generator and the paper's baselines are
// built on. Four classic miners are provided — Apriori, Eclat, FP-Growth and
// H-Mine — behind one Miner interface; all produce identical Results (this
// equivalence is enforced by property tests), so callers pick by performance
// profile:
//
//   - Eclat (vertical bitsets) is the default generator used by TARA.
//   - FP-Growth handles dense data with long patterns well.
//   - H-Mine is the hyper-structure miner the paper benchmarks against.
//   - Apriori is the level-wise reference implementation.
package mining

import (
	"fmt"
	"sort"

	"tara/internal/itemset"
	"tara/internal/txdb"
)

// Params controls a mining run.
type Params struct {
	// MinCount is the absolute minimum occurrence count for a frequent
	// itemset. Values below 1 are treated as 1.
	MinCount uint32
	// MaxLen caps the itemset length; non-positive means unlimited.
	MaxLen int
}

// MinCountFor converts a relative minimum support into an absolute count for
// a database of n transactions, rounding up so that Count/n >= minSupp holds
// exactly for every reported itemset.
func MinCountFor(minSupp float64, n int) uint32 {
	if minSupp <= 0 || n <= 0 {
		return 1
	}
	c := uint32(minSupp * float64(n))
	if float64(c) < minSupp*float64(n) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

func (p Params) minCount() uint32 {
	if p.MinCount < 1 {
		return 1
	}
	return p.MinCount
}

func (p Params) lenOK(l int) bool { return p.MaxLen <= 0 || l <= p.MaxLen }

// FrequentSet is one frequent itemset with its occurrence count.
type FrequentSet struct {
	Items itemset.Set
	Count uint32
}

// Result holds the frequent itemsets mined from a window of transactions.
type Result struct {
	// N is the number of transactions mined.
	N int
	// Sets lists the frequent itemsets. Order is unspecified until Sort.
	Sets []FrequentSet

	// LevelCandidates reports, per itemset length (index 0 = length 1), how
	// many candidates the miner counted before support pruning. Only the
	// level-wise Apriori fills it; pattern-growth miners have no candidate
	// notion and leave it nil. Build telemetry surfaces it per window.
	LevelCandidates []int

	// index maps itemset keys to positions in Sets, so duplicate Adds and
	// Count lookups are O(1) rather than rescanning Sets.
	index map[string]int32
}

// NewResult returns an empty result over n transactions.
func NewResult(n int) *Result {
	return &Result{N: n, index: map[string]int32{}}
}

// Add records a frequent itemset. The set is cloned, so callers may reuse
// their buffer. Adding the same itemset twice overwrites the count.
func (r *Result) Add(items itemset.Set, count uint32) {
	k := itemset.Key(items)
	if i, dup := r.index[k]; dup {
		r.Sets[i].Count = count
		return
	}
	r.index[k] = int32(len(r.Sets))
	r.Sets = append(r.Sets, FrequentSet{Items: itemset.Clone(items), Count: count})
}

// Count returns the occurrence count for items, if frequent.
func (r *Result) Count(items itemset.Set) (uint32, bool) {
	i, ok := r.index[itemset.Key(items)]
	if !ok {
		return 0, false
	}
	return r.Sets[i].Count, true
}

// Support returns Count/N for items, or 0 if items is not frequent or the
// result is empty.
func (r *Result) Support(items itemset.Set) float64 {
	if r.N == 0 {
		return 0
	}
	c, ok := r.Count(items)
	if !ok {
		return 0
	}
	return float64(c) / float64(r.N)
}

// Len returns the number of frequent itemsets.
func (r *Result) Len() int { return len(r.Sets) }

// FrequentPerLevel counts the frequent itemsets per length (index 0 =
// length 1) — the surviving side of the per-level candidate telemetry.
func (r *Result) FrequentPerLevel() []int {
	var out []int
	for _, s := range r.Sets {
		l := len(s.Items)
		for len(out) < l {
			out = append(out, 0)
		}
		out[l-1]++
	}
	return out
}

// Sort orders Sets canonically (by length, then lexicographically) so that
// results from different miners compare equal.
func (r *Result) Sort() {
	sort.Slice(r.Sets, func(i, j int) bool {
		return itemset.Compare(r.Sets[i].Items, r.Sets[j].Items) < 0
	})
	// Reordering Sets invalidates the stored positions.
	for i := range r.Sets {
		r.index[itemset.Key(r.Sets[i].Items)] = int32(i)
	}
}

// Equal reports whether two results contain exactly the same itemsets with
// the same counts over the same N.
func (r *Result) Equal(o *Result) bool {
	if r.N != o.N || len(r.index) != len(o.index) {
		return false
	}
	for k, i := range r.index {
		oi, ok := o.index[k]
		if !ok || o.Sets[oi].Count != r.Sets[i].Count {
			return false
		}
	}
	return true
}

// Miner is a frequent-itemset mining algorithm.
type Miner interface {
	// Name identifies the algorithm, e.g. "eclat".
	Name() string
	// Mine returns all itemsets occurring in at least p.MinCount of the
	// transactions, up to p.MaxLen items long.
	Mine(tx []txdb.Transaction, p Params) (*Result, error)
}

// ByName returns the miner registered under name.
func ByName(name string) (Miner, error) {
	switch name {
	case "apriori":
		return Apriori{}, nil
	case "eclat":
		return Eclat{}, nil
	case "fpgrowth":
		return FPGrowth{}, nil
	case "hmine":
		return HMine{}, nil
	}
	return nil, fmt.Errorf("mining: unknown miner %q (have apriori, eclat, fpgrowth, hmine)", name)
}

// Miners lists all registered miners, for cross-checking tests and benches.
func Miners() []Miner {
	return []Miner{Apriori{}, Eclat{}, FPGrowth{}, HMine{}}
}

// countSingletons tallies item frequencies across the transactions and
// returns the items meeting minCount, sorted ascending by item id, along
// with the full frequency map.
func countSingletons(tx []txdb.Transaction, minCount uint32) ([]itemset.Item, map[itemset.Item]uint32) {
	freq := map[itemset.Item]uint32{}
	for _, t := range tx {
		for _, it := range t.Items {
			freq[it]++
		}
	}
	var frequent []itemset.Item
	for it, c := range freq {
		if c >= minCount {
			frequent = append(frequent, it)
		}
	}
	sort.Slice(frequent, func(i, j int) bool { return frequent[i] < frequent[j] })
	return frequent, freq
}
