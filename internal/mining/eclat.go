package mining

import (
	"math/bits"

	"tara/internal/itemset"
	"tara/internal/txdb"
)

// Eclat is a vertical-format frequent-itemset miner: each item carries the
// bitset of transaction ids containing it, and the depth-first search
// extends prefixes by intersecting bitsets. It is the fastest of the four
// miners on the workloads in this repository and is TARA's default
// Association Generator.
type Eclat struct{}

// Name implements Miner.
func (Eclat) Name() string { return "eclat" }

// tidset is a fixed-width bitset over transaction indexes.
type tidset []uint64

func newTidset(n int) tidset { return make(tidset, (n+63)/64) }

func (t tidset) set(i int) { t[i/64] |= 1 << (i % 64) }

func (t tidset) count() uint32 {
	var c int
	for _, w := range t {
		c += bits.OnesCount64(w)
	}
	return uint32(c)
}

// andInto stores a AND b into dst (all same length) and returns the
// population count of the result.
func andInto(dst, a, b tidset) uint32 {
	var c int
	for i := range dst {
		w := a[i] & b[i]
		dst[i] = w
		c += bits.OnesCount64(w)
	}
	return uint32(c)
}

type eclatExt struct {
	item  itemset.Item
	tids  tidset
	count uint32
}

// Mine implements Miner.
func (Eclat) Mine(tx []txdb.Transaction, p Params) (*Result, error) {
	minCount := p.minCount()
	res := NewResult(len(tx))
	if !p.lenOK(1) {
		return res, nil
	}
	frequent1, _ := countSingletons(tx, minCount)
	if len(frequent1) == 0 {
		return res, nil
	}

	// Build vertical representation for frequent items.
	tids := make(map[itemset.Item]tidset, len(frequent1))
	for _, it := range frequent1 {
		tids[it] = newTidset(len(tx))
	}
	for i, t := range tx {
		for _, it := range t.Items {
			if ts, ok := tids[it]; ok {
				ts.set(i)
			}
		}
	}

	exts := make([]eclatExt, 0, len(frequent1))
	for _, it := range frequent1 {
		ts := tids[it]
		exts = append(exts, eclatExt{item: it, tids: ts, count: ts.count()})
	}

	prefix := make(itemset.Set, 0, 16)
	eclatDFS(prefix, exts, minCount, p, res)
	return res, nil
}

// eclatDFS explores prefix extensions in ascending item order so emitted
// itemsets are canonical.
func eclatDFS(prefix itemset.Set, exts []eclatExt, minCount uint32, p Params, res *Result) {
	for i := range exts {
		e := &exts[i]
		next := append(prefix, e.item)
		res.Add(next, e.count)
		if !p.lenOK(len(next) + 1) {
			continue
		}
		var children []eclatExt
		for j := i + 1; j < len(exts); j++ {
			f := &exts[j]
			nb := make(tidset, len(e.tids))
			if c := andInto(nb, e.tids, f.tids); c >= minCount {
				children = append(children, eclatExt{item: f.item, tids: nb, count: c})
			}
		}
		if len(children) > 0 {
			eclatDFS(next, children, minCount, p, res)
		}
	}
}
