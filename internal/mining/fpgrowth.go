package mining

import (
	"sort"

	"tara/internal/itemset"
	"tara/internal/txdb"
)

// FPGrowth mines frequent itemsets with an FP-tree (Han et al.): a prefix
// tree over frequency-ordered transactions, mined recursively through
// conditional pattern bases. It avoids candidate generation entirely and is
// strong on dense data with long patterns.
type FPGrowth struct{}

// Name implements Miner.
func (FPGrowth) Name() string { return "fpgrowth" }

type fpNode struct {
	item     itemset.Item
	count    uint32
	parent   *fpNode
	children map[itemset.Item]*fpNode
	next     *fpNode // header-table sibling link
}

type fpTree struct {
	root   *fpNode
	heads  map[itemset.Item]*fpNode // head of each item's node chain
	counts map[itemset.Item]uint32  // total count per item in this tree
	order  []itemset.Item           // items by descending count (mining order is reverse)
}

// newFPTree builds a tree from weighted transactions. Each transaction's
// items must already be filtered to frequent items; ordering happens here.
func newFPTree(txs []itemset.Set, weights []uint32, counts map[itemset.Item]uint32) *fpTree {
	t := &fpTree{
		root:   &fpNode{children: map[itemset.Item]*fpNode{}},
		heads:  map[itemset.Item]*fpNode{},
		counts: counts,
	}
	for it := range counts {
		t.order = append(t.order, it)
	}
	// Descending count; ascending item id breaks ties deterministically.
	sort.Slice(t.order, func(i, j int) bool {
		a, b := t.order[i], t.order[j]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return a < b
	})
	rank := make(map[itemset.Item]int, len(t.order))
	for i, it := range t.order {
		rank[it] = i
	}

	buf := make(itemset.Set, 0, 32)
	for i, tx := range txs {
		buf = buf[:0]
		for _, it := range tx {
			if _, ok := counts[it]; ok {
				buf = append(buf, it)
			}
		}
		sort.Slice(buf, func(a, b int) bool { return rank[buf[a]] < rank[buf[b]] })
		t.insert(buf, weights[i])
	}
	return t
}

func (t *fpTree) insert(ordered itemset.Set, weight uint32) {
	node := t.root
	for _, it := range ordered {
		child, ok := node.children[it]
		if !ok {
			child = &fpNode{item: it, parent: node, children: map[itemset.Item]*fpNode{}}
			child.next = t.heads[it]
			t.heads[it] = child
			node.children[it] = child
		}
		child.count += weight
		node = child
	}
}

// Mine implements Miner.
func (FPGrowth) Mine(tx []txdb.Transaction, p Params) (*Result, error) {
	minCount := p.minCount()
	res := NewResult(len(tx))
	if !p.lenOK(1) {
		return res, nil
	}
	frequent1, freq := countSingletons(tx, minCount)
	if len(frequent1) == 0 {
		return res, nil
	}
	counts := make(map[itemset.Item]uint32, len(frequent1))
	for _, it := range frequent1 {
		counts[it] = freq[it]
	}
	txs := make([]itemset.Set, len(tx))
	weights := make([]uint32, len(tx))
	for i, t := range tx {
		txs[i] = t.Items
		weights[i] = 1
	}
	tree := newFPTree(txs, weights, counts)
	fpMine(tree, nil, minCount, p, res)
	return res, nil
}

// fpMine emits suffix ∪ {item} for every item in the tree and recurses into
// the item's conditional tree. Suffixes grow toward less frequent items, so
// every frequent itemset is produced exactly once.
func fpMine(t *fpTree, suffix itemset.Set, minCount uint32, p Params, res *Result) {
	// Iterate items from least to most frequent (reverse of t.order).
	for i := len(t.order) - 1; i >= 0; i-- {
		it := t.order[i]
		pattern := itemset.Canonicalize(append(itemset.Clone(suffix), it))
		res.Add(pattern, t.counts[it])
		if !p.lenOK(len(pattern) + 1) {
			continue
		}
		// Conditional pattern base: root paths of every node of it.
		var base []itemset.Set
		var weights []uint32
		condCounts := map[itemset.Item]uint32{}
		for node := t.heads[it]; node != nil; node = node.next {
			var path itemset.Set
			for a := node.parent; a != nil && a.parent != nil; a = a.parent {
				path = append(path, a.item)
			}
			if len(path) == 0 {
				continue
			}
			base = append(base, path)
			weights = append(weights, node.count)
			for _, x := range path {
				condCounts[x] += node.count
			}
		}
		for x, c := range condCounts {
			if c < minCount {
				delete(condCounts, x)
			}
		}
		if len(condCounts) == 0 {
			continue
		}
		cond := newFPTree(base, weights, condCounts)
		fpMine(cond, pattern, minCount, p, res)
	}
}
