package mining

import (
	"tara/internal/itemset"
	"tara/internal/txdb"
)

// FilterClosed returns the closed itemsets of res: those with no proper
// superset of equal count (Definition 5 of the paper, which Lemma 1 proves
// equivalent to the explicitly/implicitly supported associations MARAS
// keeps). Closedness is decided within the mined universe, so when the
// result was produced with a MaxLen cap, itemsets at the cap are closed
// relative to that bound.
//
// The check is linear in the result: an itemset X is non-closed iff some
// one-larger superset Y ⊇ X has count(Y) == count(X), because counts are
// antitone along the lattice — any equal-count superset implies an
// equal-count superset one level up.
func FilterClosed(res *Result) *Result {
	nonClosed := map[string]bool{}
	buf := make(itemset.Set, 0, 16)
	for _, fs := range res.Sets {
		if len(fs.Items) < 2 {
			continue
		}
		for drop := range fs.Items {
			buf = buf[:0]
			buf = append(buf, fs.Items[:drop]...)
			buf = append(buf, fs.Items[drop+1:]...)
			key := itemset.Key(buf)
			if nonClosed[key] {
				continue
			}
			if c, ok := res.Count(buf); ok && c == fs.Count {
				nonClosed[key] = true
			}
		}
	}
	out := NewResult(res.N)
	for _, fs := range res.Sets {
		if !nonClosed[itemset.Key(fs.Items)] {
			out.Add(fs.Items, fs.Count)
		}
	}
	return out
}

// Closed mines the closed frequent itemsets directly: a convenience
// composition of a miner and FilterClosed.
func Closed(m Miner, tx []txdb.Transaction, p Params) (*Result, error) {
	res, err := m.Mine(tx, p)
	if err != nil {
		return nil, err
	}
	return FilterClosed(res), nil
}
