// Package traj is the columnar trajectory engine over the TAR Archive.
//
// The archive stores one varint-encoded series per rule; every analytic that
// touches many rules through Series() pays a per-rule decode plus an []Entry
// allocation, and the interesting trajectory workloads (ranking, similarity
// search, emergence detection) touch every rule. This package transposes the
// archive once — a single decode pass over all rule payloads, heap or mapped,
// with no heap promotion — into window-major float64 columns:
//
//	supp[w*R + r]  support of rule row r in window w (0 where absent)
//	conf[w*R + r]  confidence, same layout
//	pres[w*R + r]  1 where the rule was archived in w, else 0
//
// Per-rule aggregates (coverage, mean, stddev, stability, drift) then stream
// column by column in tight branch-light loops over contiguous float64
// slices — the SIMD-friendly shape — with the shared moments (sum, centered
// square sum) hoisted so no measure re-derives the mean per rule. The
// accumulation order per rule is exactly the window order a per-rule
// Trajectory decode would use, so every aggregate is bit-identical to the
// naive Series() oracle; the differential tests in this package assert that.
//
// A Snapshot is immutable once built. The owning framework stamps it with
// its KB generation and rebuilds lazily when the generation moves (windows
// are append-only, so a snapshot is never partially stale — it is either
// current or discarded whole).
package traj

import (
	"fmt"
	"math"
	"sort"

	"tara/internal/archive"
	"tara/internal/rules"
)

// Snapshot is the columnar transpose of one archive generation.
type Snapshot struct {
	// Gen is the KB generation this snapshot was built from; the owner
	// stamps it and discards the snapshot when the generation moves.
	Gen uint64

	windows int
	nrules  int
	entries int
	ids     []rules.ID // row -> rule id, ascending
	winN    []uint32   // per-window |D_w|

	// Window-major columns, each windows*nrules long: the values of column w
	// occupy [w*nrules, (w+1)*nrules).
	supp []float64
	conf []float64
	pres []float64

	// Per-rule support envelopes over all windows (zeros for absent windows
	// included): lo[r] <= supp[w][r] <= hi[r] for every w. The similarity
	// search derives its per-rule lower bound from these.
	lo []float64
	hi []float64
}

// Build transposes the archive into a columnar snapshot in one decode pass
// over every rule payload. Mapped archives are decoded as views over the
// mapped block — building a snapshot never promotes the archive to heap.
func Build(a *archive.Archive) (*Snapshot, error) {
	w := a.Windows()
	ids := a.Rules()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	r := len(ids)
	s := &Snapshot{
		windows: w,
		nrules:  r,
		ids:     ids,
		winN:    a.WindowCardinalities(),
		supp:    make([]float64, w*r),
		conf:    make([]float64, w*r),
		pres:    make([]float64, w*r),
		lo:      make([]float64, r),
		hi:      make([]float64, r),
	}
	rowOf := make(map[rules.ID]int32, r)
	for i, id := range ids {
		rowOf[id] = int32(i)
	}
	// DecodeAll yields each rule's entries consecutively; cache the last
	// resolved row so the map is touched once per rule, not once per entry.
	lastRow := int32(-1)
	var lastID rules.ID
	err := a.DecodeAll(func(id rules.ID, e archive.Entry) error {
		if lastRow < 0 || id != lastID {
			row, ok := rowOf[id]
			if !ok {
				return fmt.Errorf("traj: decoded rule %d not in archive rule set", id)
			}
			lastID, lastRow = id, row
		}
		if e.Window >= w {
			return fmt.Errorf("traj: rule %d window %d beyond cardinality table (%d windows)", id, e.Window, w)
		}
		at := e.Window*r + int(lastRow)
		if n := s.winN[e.Window]; n > 0 {
			s.supp[at] = float64(e.CountXY) / float64(n)
		}
		if e.CountX > 0 {
			s.conf[at] = float64(e.CountXY) / float64(e.CountX)
		}
		s.pres[at] = 1
		s.entries++
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Support envelopes: stream the columns once more. Zero-filled absent
	// windows are part of the series, so they are part of the envelope.
	if w > 0 && r > 0 {
		copy(s.lo, s.supp[:r])
		copy(s.hi, s.supp[:r])
		for win := 1; win < w; win++ {
			col := s.supp[win*r : (win+1)*r]
			for i, v := range col {
				if v < s.lo[i] {
					s.lo[i] = v
				}
				if v > s.hi[i] {
					s.hi[i] = v
				}
			}
		}
	}
	return s, nil
}

// Windows returns the number of windows in the snapshot.
func (s *Snapshot) Windows() int { return s.windows }

// Rules returns the number of rule rows.
func (s *Snapshot) Rules() int { return s.nrules }

// Entries returns the number of (rule, window) records decoded at build.
func (s *Snapshot) Entries() int { return s.entries }

// ID returns the rule id of row r.
func (s *Snapshot) ID(r int) rules.ID { return s.ids[r] }

// Support returns rule row r's support in window w (0 where absent).
func (s *Snapshot) Support(r, w int) float64 { return s.supp[w*s.nrules+r] }

// Confidence returns rule row r's confidence in window w (0 where absent).
func (s *Snapshot) Confidence(r, w int) float64 { return s.conf[w*s.nrules+r] }

// Present reports whether rule row r was archived in window w.
func (s *Snapshot) Present(r, w int) bool { return s.pres[w*s.nrules+r] != 0 }

// MemBytes estimates the snapshot's resident size: the three columns, the
// envelopes, and the row/window tables.
func (s *Snapshot) MemBytes() int {
	return 8*(len(s.supp)+len(s.conf)+len(s.pres)+len(s.lo)+len(s.hi)) +
		4*len(s.ids) + 4*len(s.winN)
}

func (s *Snapshot) checkRange(from, to int) error {
	if from < 0 || to >= s.windows || from > to {
		return fmt.Errorf("traj: window range [%d,%d] out of bounds (have %d windows)", from, to, s.windows)
	}
	return nil
}

// Aggregates is one rule's trajectory summary over a window range, with the
// shared moments hoisted: the mean is computed once and every derived
// measure reuses it.
type Aggregates struct {
	// Coverage is the fraction of the range's windows where the rule was
	// archived.
	Coverage float64
	// Mean is the mean of the zero-filled support series.
	Mean float64
	// StdDev is the population standard deviation of the support series.
	StdDev float64
	// Stability is the fraction of adjacent window pairs whose support moved
	// by at most the eps given to AggregateRange (1 for single-window ranges).
	Stability float64
	// Drift is the net support change over the range: support in the last
	// window minus support in the first.
	Drift float64
}

// AggregateRange computes every rule's trajectory aggregates over windows
// [from, to] by streaming the columns: two passes (moments + stability, then
// the centered square sum), each a contiguous walk over the window columns.
// The result is indexed by rule row. eps is the stability tolerance on
// adjacent support deltas.
func (s *Snapshot) AggregateRange(from, to int, eps float64) ([]Aggregates, error) {
	if err := s.checkRange(from, to); err != nil {
		return nil, err
	}
	r := s.nrules
	nw := to - from + 1
	sum := make([]float64, r)
	cov := make([]float64, r)
	stable := make([]int32, r)
	for w := from; w <= to; w++ {
		col := s.supp[w*r : (w+1)*r]
		pcol := s.pres[w*r : (w+1)*r]
		for i := 0; i < r; i++ {
			sum[i] += col[i]
			cov[i] += pcol[i]
		}
		if w > from {
			prev := s.supp[(w-1)*r : w*r]
			for i := 0; i < r; i++ {
				if math.Abs(col[i]-prev[i]) <= eps {
					stable[i]++
				}
			}
		}
	}
	// Centered second pass: accumulating (v-mean)^2 in window order matches
	// stats.StdDev over the materialized series bit for bit.
	sq := make([]float64, r)
	mean := make([]float64, r)
	fn := float64(nw)
	for i := 0; i < r; i++ {
		mean[i] = sum[i] / fn
	}
	for w := from; w <= to; w++ {
		col := s.supp[w*r : (w+1)*r]
		for i := 0; i < r; i++ {
			d := col[i] - mean[i]
			sq[i] += d * d
		}
	}
	first := s.supp[from*r : from*r+r]
	last := s.supp[to*r : to*r+r]
	out := make([]Aggregates, r)
	for i := 0; i < r; i++ {
		a := Aggregates{
			Coverage: cov[i] / fn,
			Mean:     mean[i],
			StdDev:   math.Sqrt(sq[i] / fn),
			Drift:    last[i] - first[i],
		}
		if nw < 2 {
			a.Stability = 1
		} else {
			a.Stability = float64(stable[i]) / float64(nw-1)
		}
		out[i] = a
	}
	return out, nil
}

// qualifyRange marks every rule row that meets (minSupp, minConf) in at
// least one window of [from, to] where it was archived. The range is assumed
// validated.
func (s *Snapshot) qualifyRange(from, to int, minSupp, minConf float64) []bool {
	r := s.nrules
	out := make([]bool, r)
	for w := from; w <= to; w++ {
		scol := s.supp[w*r : (w+1)*r]
		ccol := s.conf[w*r : (w+1)*r]
		pcol := s.pres[w*r : (w+1)*r]
		for i := 0; i < r; i++ {
			out[i] = out[i] || (pcol[i] != 0 && scol[i] >= minSupp && ccol[i] >= minConf)
		}
	}
	return out
}

// Measure selects the ranking measure of TopK.
type Measure int

const (
	// ByStability ranks by the stability measure, most stable first.
	ByStability Measure = iota
	// ByDrift ranks by net support change, most rising first.
	ByDrift
	// ByVolatility ranks by support standard deviation, most volatile first.
	ByVolatility
	// ByCoverage ranks by coverage, most covered first.
	ByCoverage
)

// MeasureByName maps the textual measure names of the /topk query class.
func MeasureByName(name string) (Measure, error) {
	switch name {
	case "stability", "":
		return ByStability, nil
	case "drift":
		return ByDrift, nil
	case "volatility":
		return ByVolatility, nil
	case "coverage":
		return ByCoverage, nil
	default:
		return 0, fmt.Errorf("traj: unknown measure %q (want stability, drift, volatility or coverage)", name)
	}
}

// String returns the measure's query-syntax name.
func (m Measure) String() string {
	switch m {
	case ByStability:
		return "stability"
	case ByDrift:
		return "drift"
	case ByVolatility:
		return "volatility"
	case ByCoverage:
		return "coverage"
	}
	return fmt.Sprintf("measure(%d)", int(m))
}

// Ranked is one row of a top-K answer.
type Ranked struct {
	Row   int
	ID    rules.ID
	Score float64
	Agg   Aggregates
}

// bounded keeps the k best (score descending, id ascending on ties)
// candidates seen so far in a binary min-heap whose root is the current
// worst — the classic bounded top-K heap, so ranking R rules costs
// O(R log k) and never materializes a full sorted slice.
type bounded struct {
	k    int
	rows []Ranked
}

// worse reports whether a loses to b: lower score, or equal score and
// higher id.
func worse(a, b Ranked) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

func (h *bounded) offer(c Ranked) {
	if h.k <= 0 {
		return
	}
	if len(h.rows) < h.k {
		h.rows = append(h.rows, c)
		// Sift up.
		i := len(h.rows) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(h.rows[i], h.rows[p]) {
				break
			}
			h.rows[i], h.rows[p] = h.rows[p], h.rows[i]
			i = p
		}
		return
	}
	if !worse(h.rows[0], c) {
		return // candidate no better than the current worst
	}
	h.rows[0] = c
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.rows) && worse(h.rows[l], h.rows[m]) {
			m = l
		}
		if r < len(h.rows) && worse(h.rows[r], h.rows[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.rows[i], h.rows[m] = h.rows[m], h.rows[i]
		i = m
	}
}

// sorted drains the heap into best-first order.
func (h *bounded) sorted() []Ranked {
	out := h.rows
	sort.Slice(out, func(i, j int) bool { return worse(out[j], out[i]) })
	return out
}

// TopK ranks the rules qualifying in [from, to] (meeting minSupp/minConf in
// at least one archived window of the range) by measure m over the given
// aggregates, returning the k best, score descending with ascending rule id
// on ties. aggs must come from AggregateRange over the same [from, to].
func (s *Snapshot) TopK(aggs []Aggregates, from, to int, minSupp, minConf float64, m Measure, k int) ([]Ranked, error) {
	if err := s.checkRange(from, to); err != nil {
		return nil, err
	}
	if len(aggs) != s.nrules {
		return nil, fmt.Errorf("traj: aggregate set has %d rows, snapshot has %d", len(aggs), s.nrules)
	}
	qual := s.qualifyRange(from, to, minSupp, minConf)
	h := bounded{k: k}
	for i := 0; i < s.nrules; i++ {
		if !qual[i] {
			continue
		}
		var score float64
		switch m {
		case ByStability:
			score = aggs[i].Stability
		case ByDrift:
			score = aggs[i].Drift
		case ByVolatility:
			score = aggs[i].StdDev
		case ByCoverage:
			score = aggs[i].Coverage
		default:
			return nil, fmt.Errorf("traj: unknown measure %d", int(m))
		}
		h.offer(Ranked{Row: i, ID: s.ids[i], Score: score, Agg: aggs[i]})
	}
	return h.sorted(), nil
}

// Metric selects the similarity distance.
type Metric int

const (
	// Euclidean is the L2 distance between support series.
	Euclidean Metric = iota
	// MaxNorm is the L∞ (Chebyshev) distance.
	MaxNorm
)

// MetricByName maps the textual metric names of the /similar query class.
func MetricByName(name string) (Metric, error) {
	switch name {
	case "euclid", "euclidean", "":
		return Euclidean, nil
	case "max", "maxnorm", "chebyshev":
		return MaxNorm, nil
	default:
		return 0, fmt.Errorf("traj: unknown metric %q (want euclid or max)", name)
	}
}

// String returns the metric's query-syntax name.
func (m Metric) String() string {
	if m == MaxNorm {
		return "max"
	}
	return "euclid"
}

// Neighbor is one row of a similarity answer.
type Neighbor struct {
	Row      int
	ID       rules.ID
	Distance float64
}

// envelopeBound precomputes, from the sorted reference profile, the two 1-D
// prefix tables that make the per-rule lower bound O(log T):
//
//	Σ_w gap(q_w, [lo,hi])² = f(lo) + g(hi)
//	f(lo) = Σ_{q<lo}(lo-q)² = c·lo² − 2·lo·Σq + Σq²   over {q < lo}
//	g(hi) = Σ_{q>hi}(q-hi)² = Σq² − 2·hi·Σq + c·hi²   over {q > hi}
//
// because at each window at most one side of the envelope is violated. The
// expanded forms are evaluated with a tiny relative slack before pruning so
// float rounding can never turn the bound into an over-estimate.
type envelopeBound struct {
	sorted []float64
	pre1   []float64 // prefix sums of sorted
	pre2   []float64 // prefix sums of sorted²
}

func newEnvelopeBound(ref []float64) envelopeBound {
	s := make([]float64, len(ref))
	copy(s, ref)
	sort.Float64s(s)
	p1 := make([]float64, len(s)+1)
	p2 := make([]float64, len(s)+1)
	for i, q := range s {
		p1[i+1] = p1[i] + q
		p2[i+1] = p2[i] + q*q
	}
	return envelopeBound{sorted: s, pre1: p1, pre2: p2}
}

// euclid2 lower-bounds the squared Euclidean distance between the reference
// and any series confined to [lo, hi].
func (e envelopeBound) euclid2(lo, hi float64) float64 {
	t := len(e.sorted)
	c := sort.SearchFloat64s(e.sorted, lo) // q's strictly below lo
	f := float64(c)*lo*lo - 2*lo*e.pre1[c] + e.pre2[c]
	k := sort.Search(t, func(i int) bool { return e.sorted[i] > hi }) // q's <= hi
	m := float64(t - k)
	g := (e.pre2[t] - e.pre2[k]) - 2*hi*(e.pre1[t]-e.pre1[k]) + m*hi*hi
	b := f + g
	if b < 0 {
		return 0
	}
	return b * (1 - 1e-9)
}

// maxNorm lower-bounds the Chebyshev distance for a series confined to
// [lo, hi]: the worst per-window gap is attained at the reference's extreme
// values.
func (e envelopeBound) maxNorm(lo, hi float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	b := lo - e.sorted[0]
	if d := e.sorted[len(e.sorted)-1] - hi; d > b {
		b = d
	}
	if b < 0 {
		return 0
	}
	return b
}

// Similar returns the k rules whose zero-filled support series over
// [from, to] is nearest to the reference profile ref (len(ref) must equal
// the range length), distance ascending with ascending rule id on ties.
// Only rules qualifying in the range (minSupp/minConf in at least one
// archived window; 0,0 means "archived somewhere in the range") compete.
// The per-rule envelope lower bound is checked against the current k-th
// best distance first, so once the heap is warm most rules never compute
// the full distance; pruned reports how many were skipped that way.
func (s *Snapshot) Similar(from, to int, ref []float64, metric Metric, minSupp, minConf float64, k int) (out []Neighbor, pruned int, err error) {
	if err := s.checkRange(from, to); err != nil {
		return nil, 0, err
	}
	if len(ref) != to-from+1 {
		return nil, 0, fmt.Errorf("traj: reference profile has %d points, range [%d,%d] has %d windows", len(ref), from, to, to-from+1)
	}
	if k <= 0 {
		return nil, 0, nil
	}
	qual := s.qualifyRange(from, to, minSupp, minConf)
	eb := newEnvelopeBound(ref)
	r := s.nrules
	// The heap ranks by score = -distance (exact negation), so "best" is
	// the smallest distance; for Euclidean the squared distance orders
	// identically and saves the sqrt until reporting.
	h := bounded{k: k}
	for i := 0; i < r; i++ {
		if !qual[i] {
			continue
		}
		full := len(h.rows) == h.k
		var worst float64
		if full {
			worst = -h.rows[0].Score
		}
		var d float64
		if metric == Euclidean {
			if full {
				if lb := eb.euclid2(s.lo[i], s.hi[i]); lb > worst {
					pruned++
					continue
				}
			}
			for w := from; w <= to; w++ {
				diff := s.supp[w*r+i] - ref[w-from]
				d += diff * diff
			}
		} else {
			if full {
				if lb := eb.maxNorm(s.lo[i], s.hi[i]); lb > worst {
					pruned++
					continue
				}
			}
			for w := from; w <= to; w++ {
				diff := math.Abs(s.supp[w*r+i] - ref[w-from])
				if diff > d {
					d = diff
				}
			}
		}
		h.offer(Ranked{Row: i, ID: s.ids[i], Score: -d})
	}
	ranked := h.sorted()
	out = make([]Neighbor, len(ranked))
	for i, c := range ranked {
		d := -c.Score
		if metric == Euclidean {
			d = math.Sqrt(d)
		}
		out[i] = Neighbor{Row: c.Row, ID: c.ID, Distance: d}
	}
	return out, pruned, nil
}

// Emergent is one row of an emergence answer: a rule that newly crossed the
// threshold in the range's last window.
type Emergent struct {
	Row        int
	ID         rules.ID
	Support    float64
	Confidence float64
}

// Emerging returns the rules that qualify (archived with support >= minSupp
// and confidence >= minConf) in window `to` but in no earlier window of
// [from, to] — the signal-detection question "what newly crossed the
// threshold in the latest window". The candidate set comes from one
// contiguous scan of the last column; only candidates walk their history,
// newest first, so rules that qualified recently exit early. Results are
// ordered support descending, rule id ascending on ties.
func (s *Snapshot) Emerging(from, to int, minSupp, minConf float64) ([]Emergent, error) {
	if err := s.checkRange(from, to); err != nil {
		return nil, err
	}
	r := s.nrules
	scol := s.supp[to*r : (to+1)*r]
	ccol := s.conf[to*r : (to+1)*r]
	pcol := s.pres[to*r : (to+1)*r]
	var out []Emergent
	for i := 0; i < r; i++ {
		if pcol[i] == 0 || scol[i] < minSupp || ccol[i] < minConf {
			continue
		}
		fresh := true
		for w := to - 1; w >= from; w-- {
			at := w*r + i
			if s.pres[at] != 0 && s.supp[at] >= minSupp && s.conf[at] >= minConf {
				fresh = false
				break
			}
		}
		if fresh {
			out = append(out, Emergent{Row: i, ID: s.ids[i], Support: scol[i], Confidence: ccol[i]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}
