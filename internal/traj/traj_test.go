package traj

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"tara/internal/archive"
	"tara/internal/rules"
)

// randomArchive builds a heap archive with up to maxW windows over a rule
// pool of maxR ids, exercising the decode guards: zero-transaction windows,
// zero CountX entries, and sparse presence.
func randomArchive(rng *rand.Rand, maxW, maxR int) *archive.Archive {
	a := archive.New()
	nw := 1 + rng.Intn(maxW)
	for w := 0; w < nw; w++ {
		n := uint32(rng.Intn(2000))
		if rng.Intn(10) == 0 {
			n = 0 // zero-transaction window: support must zero-fill
		}
		a.BeginWindow(n)
		for id := 1; id <= maxR; id++ {
			if rng.Intn(3) == 0 {
				continue // absent in this window
			}
			countX := uint32(rng.Intn(int(n) + 2))
			if rng.Intn(12) == 0 {
				countX = 0 // zero-antecedent entry: confidence must zero-fill
			}
			countXY := uint32(0)
			if countX > 0 {
				countXY = uint32(rng.Intn(int(countX) + 1))
			}
			countY := countXY + uint32(rng.Intn(50))
			if err := a.Append(rules.ID(id), countXY, countX, countY); err != nil {
				panic(err)
			}
		}
	}
	return a
}

// oracleSeries materializes rule id's zero-filled support and confidence
// series over [from, to] straight from the per-rule Trajectory decode — the
// naive path the columnar engine must match bit for bit.
func oracleSeries(t *testing.T, a *archive.Archive, id rules.ID, from, to int) (supp, conf []float64, present []bool) {
	t.Helper()
	tr, err := a.Trajectory(id, from, to)
	if err != nil {
		t.Fatalf("Trajectory(%d, %d, %d): %v", id, from, to, err)
	}
	supp = tr.SupportSeries()
	conf = tr.ConfidenceSeries()
	present = make([]bool, to-from+1)
	for _, e := range tr.Entries {
		present[e.Window-from] = true
	}
	return supp, conf, present
}

// oracleAggregates recomputes one rule's Aggregates from the naive decode,
// using the exact accumulation order of AggregateRange so every field can be
// compared with == rather than a tolerance.
func oracleAggregates(t *testing.T, a *archive.Archive, id rules.ID, from, to int, eps float64) Aggregates {
	t.Helper()
	tr, err := a.Trajectory(id, from, to)
	if err != nil {
		t.Fatalf("Trajectory(%d, %d, %d): %v", id, from, to, err)
	}
	cov, stab, sd := tr.Evolution(eps)
	s := tr.SupportSeries()
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Aggregates{
		Coverage:  cov,
		Mean:      sum / float64(len(s)),
		StdDev:    sd,
		Stability: stab,
		Drift:     s[len(s)-1] - s[0],
	}
}

// oracleQualifies reports whether the rule meets (minSupp, minConf) in at
// least one archived window of [from, to], mirroring qualifyRange.
func oracleQualifies(supp, conf []float64, present []bool, minSupp, minConf float64) bool {
	for i := range supp {
		if present[i] && supp[i] >= minSupp && conf[i] >= minConf {
			return true
		}
	}
	return false
}

// TestBuildMatchesSeriesOracle is the core differential property test: over
// 1000 random archives, the columnar snapshot's cells, aggregates, top-K
// rankings, similarity answers and emergence sets must exactly match the
// naive per-rule Series()/Trajectory() oracle. Run it under -race; the build
// and query paths share no mutable state so it should stay clean.
func TestBuildMatchesSeriesOracle(t *testing.T) {
	const iters = 1000
	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(it)))
		a := randomArchive(rng, 8, 30)
		s, err := Build(a)
		if err != nil {
			t.Fatalf("iter %d: Build: %v", it, err)
		}
		nw := s.Windows()
		if nw != a.Windows() {
			t.Fatalf("iter %d: snapshot has %d windows, archive %d", it, nw, a.Windows())
		}
		from := rng.Intn(nw)
		to := from + rng.Intn(nw-from)
		eps := float64(rng.Intn(3)) * 0.01
		minSupp := float64(rng.Intn(3)) * 0.005
		minConf := float64(rng.Intn(3)) * 0.1

		checkCells(t, it, a, s, from, to)
		aggs := checkAggregates(t, it, a, s, from, to, eps)
		checkTopK(t, it, rng, a, s, aggs, from, to, minSupp, minConf)
		checkSimilar(t, it, rng, a, s, from, to, minSupp, minConf)
		checkEmerging(t, it, a, s, from, to, minSupp, minConf)
	}
}

func checkCells(t *testing.T, it int, a *archive.Archive, s *Snapshot, from, to int) {
	t.Helper()
	for r := 0; r < s.Rules(); r++ {
		id := s.ID(r)
		supp, conf, present := oracleSeries(t, a, id, from, to)
		for w := from; w <= to; w++ {
			i := w - from
			if s.Support(r, w) != supp[i] || s.Confidence(r, w) != conf[i] || s.Present(r, w) != present[i] {
				t.Fatalf("iter %d: rule %d window %d: snapshot (%v,%v,%v) vs oracle (%v,%v,%v)",
					it, id, w, s.Support(r, w), s.Confidence(r, w), s.Present(r, w), supp[i], conf[i], present[i])
			}
		}
	}
}

func checkAggregates(t *testing.T, it int, a *archive.Archive, s *Snapshot, from, to int, eps float64) []Aggregates {
	t.Helper()
	aggs, err := s.AggregateRange(from, to, eps)
	if err != nil {
		t.Fatalf("iter %d: AggregateRange(%d, %d): %v", it, from, to, err)
	}
	for r := 0; r < s.Rules(); r++ {
		want := oracleAggregates(t, a, s.ID(r), from, to, eps)
		if aggs[r] != want {
			t.Fatalf("iter %d: rule %d aggregates over [%d,%d] eps=%v:\ncolumnar %+v\noracle   %+v",
				it, s.ID(r), from, to, eps, aggs[r], want)
		}
	}
	return aggs
}

func checkTopK(t *testing.T, it int, rng *rand.Rand, a *archive.Archive, s *Snapshot, aggs []Aggregates, from, to int, minSupp, minConf float64) {
	t.Helper()
	k := 1 + rng.Intn(s.Rules()+3)
	for _, m := range []Measure{ByStability, ByDrift, ByVolatility, ByCoverage} {
		got, err := s.TopK(aggs, from, to, minSupp, minConf, m, k)
		if err != nil {
			t.Fatalf("iter %d: TopK(%v): %v", it, m, err)
		}
		// Oracle: full sort of every qualifying rule with the same comparator.
		var want []Ranked
		for r := 0; r < s.Rules(); r++ {
			supp, conf, present := oracleSeries(t, a, s.ID(r), from, to)
			if !oracleQualifies(supp, conf, present, minSupp, minConf) {
				continue
			}
			oa := oracleAggregates(t, a, s.ID(r), from, to, 0.01)
			// Scores must come from the snapshot's own aggregates so the
			// comparison below is about ranking, not float recomputation —
			// but verify the score source field matches the oracle first.
			var score, oscore float64
			switch m {
			case ByStability:
				score, oscore = aggs[r].Stability, oa.Stability
			case ByDrift:
				score, oscore = aggs[r].Drift, oa.Drift
			case ByVolatility:
				score, oscore = aggs[r].StdDev, oa.StdDev
			case ByCoverage:
				score, oscore = aggs[r].Coverage, oa.Coverage
			}
			_ = oscore // equality already asserted per-field by checkAggregates
			want = append(want, Ranked{Row: r, ID: s.ID(r), Score: score})
		}
		sort.Slice(want, func(i, j int) bool { return worse(want[j], want[i]) })
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: TopK(%v, k=%d) returned %d rows, oracle %d", it, m, k, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
				t.Fatalf("iter %d: TopK(%v) row %d: (%d, %v) vs oracle (%d, %v)",
					it, m, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
}

func checkSimilar(t *testing.T, it int, rng *rand.Rand, a *archive.Archive, s *Snapshot, from, to int, minSupp, minConf float64) {
	t.Helper()
	ref := make([]float64, to-from+1)
	for i := range ref {
		ref[i] = rng.Float64() * 0.05
	}
	k := 1 + rng.Intn(s.Rules()+3)
	for _, m := range []Metric{Euclidean, MaxNorm} {
		got, pruned, err := s.Similar(from, to, ref, m, minSupp, minConf, k)
		if err != nil {
			t.Fatalf("iter %d: Similar(%v): %v", it, m, err)
		}
		if pruned < 0 {
			t.Fatalf("iter %d: negative prune count %d", it, pruned)
		}
		// Oracle: brute-force distance per qualifying rule in the engine's
		// exact accumulation order (window ascending, sqrt at the end), then
		// a full sort ascending with id tie-break.
		type cand struct {
			id rules.ID
			d  float64
		}
		var want []cand
		for r := 0; r < s.Rules(); r++ {
			supp, conf, present := oracleSeries(t, a, s.ID(r), from, to)
			if !oracleQualifies(supp, conf, present, minSupp, minConf) {
				continue
			}
			var d float64
			if m == Euclidean {
				for i := range ref {
					diff := supp[i] - ref[i]
					d += diff * diff
				}
				d = math.Sqrt(d)
			} else {
				for i := range ref {
					if diff := math.Abs(supp[i] - ref[i]); diff > d {
						d = diff
					}
				}
			}
			want = append(want, cand{id: s.ID(r), d: d})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].d != want[j].d {
				return want[i].d < want[j].d
			}
			return want[i].id < want[j].id
		})
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: Similar(%v, k=%d) returned %d rows, oracle %d", it, m, k, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].id || got[i].Distance != want[i].d {
				t.Fatalf("iter %d: Similar(%v) row %d: (%d, %v) vs oracle (%d, %v)",
					it, m, i, got[i].ID, got[i].Distance, want[i].id, want[i].d)
			}
		}
	}
}

func checkEmerging(t *testing.T, it int, a *archive.Archive, s *Snapshot, from, to int, minSupp, minConf float64) {
	t.Helper()
	got, err := s.Emerging(from, to, minSupp, minConf)
	if err != nil {
		t.Fatalf("iter %d: Emerging(%d, %d): %v", it, from, to, err)
	}
	var want []Emergent
	for r := 0; r < s.Rules(); r++ {
		supp, conf, present := oracleSeries(t, a, s.ID(r), from, to)
		last := to - from
		if !(present[last] && supp[last] >= minSupp && conf[last] >= minConf) {
			continue
		}
		fresh := true
		for i := 0; i < last; i++ {
			if present[i] && supp[i] >= minSupp && conf[i] >= minConf {
				fresh = false
				break
			}
		}
		if fresh {
			want = append(want, Emergent{Row: r, ID: s.ID(r), Support: supp[last], Confidence: conf[last]})
		}
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].Support != want[j].Support {
			return want[i].Support > want[j].Support
		}
		return want[i].ID < want[j].ID
	})
	if len(got) != len(want) {
		t.Fatalf("iter %d: Emerging returned %d rows, oracle %d", it, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("iter %d: Emerging row %d: %+v vs oracle %+v", it, i, got[i], want[i])
		}
	}
}

// TestMappedBuildMatchesHeap asserts a snapshot built from a memory-mapped
// archive is cell-for-cell identical to one built from the heap original,
// and that building never promotes the mapped archive.
func TestMappedBuildMatchesHeap(t *testing.T) {
	for it := 0; it < 50; it++ {
		rng := rand.New(rand.NewSource(int64(1_000 + it)))
		a := randomArchive(rng, 6, 20)
		heap, err := Build(a)
		if err != nil {
			t.Fatalf("iter %d: heap Build: %v", it, err)
		}
		blob := a.AppendMapped(nil)
		m, err := archive.OpenMapped(blob)
		if err != nil {
			t.Fatalf("iter %d: OpenMapped: %v", it, err)
		}
		ms, err := Build(m)
		if err != nil {
			t.Fatalf("iter %d: mapped Build: %v", it, err)
		}
		if !m.Mapped() {
			t.Fatalf("iter %d: Build promoted the mapped archive to heap", it)
		}
		if ms.Windows() != heap.Windows() || ms.Rules() != heap.Rules() || ms.Entries() != heap.Entries() {
			t.Fatalf("iter %d: shape diverges: mapped (%d,%d,%d) heap (%d,%d,%d)", it,
				ms.Windows(), ms.Rules(), ms.Entries(), heap.Windows(), heap.Rules(), heap.Entries())
		}
		for r := 0; r < heap.Rules(); r++ {
			if ms.ID(r) != heap.ID(r) {
				t.Fatalf("iter %d: row %d id %d vs %d", it, r, ms.ID(r), heap.ID(r))
			}
			for w := 0; w < heap.Windows(); w++ {
				if ms.Support(r, w) != heap.Support(r, w) ||
					ms.Confidence(r, w) != heap.Confidence(r, w) ||
					ms.Present(r, w) != heap.Present(r, w) {
					t.Fatalf("iter %d: cell (%d,%d) diverges between mapped and heap snapshots", it, r, w)
				}
			}
		}
	}
}

// TestBuildCorruptedMapped sweeps single-byte corruptions and truncations of
// a mapped knowledge-base block: every mutation must either fail to open,
// fail to build, or build a snapshot — never panic. Successful builds are
// not compared to the oracle (a flipped payload byte can decode to a
// different but well-formed history); the property is crash-freedom.
func TestBuildCorruptedMapped(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomArchive(rng, 5, 12)
	blob := a.AppendMapped(nil)

	try := func(b []byte, desc string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: panic: %v", desc, r)
			}
		}()
		m, err := archive.OpenMapped(b)
		if err != nil {
			return // rejected at open; fine
		}
		_, _ = Build(m) // may error; must not panic
	}

	// Truncations at every length.
	for i := 0; i <= len(blob); i++ {
		try(blob[:i], "truncate")
	}
	// Single-byte corruptions at every offset, a few values each.
	for off := 0; off < len(blob); off++ {
		for _, delta := range []byte{0x01, 0x80, 0xFF} {
			mut := make([]byte, len(blob))
			copy(mut, blob)
			mut[off] ^= delta
			try(mut, "flip")
		}
	}
}

// TestSimilarPrunes pins the envelope lower bound actually firing: many
// rules with well-separated constant series, a reference equal to one of
// them, and a small k must prune most of the field — and still return the
// exact brute-force answer (checked by the differential test above; here we
// assert the prune count and the trivially-known winner).
func TestSimilarPrunes(t *testing.T) {
	a := archive.New()
	const nw, nr = 4, 200
	for w := 0; w < nw; w++ {
		a.BeginWindow(1000)
		for id := 1; id <= nr; id++ {
			a.Append(rules.ID(id), uint32(id), 1000, uint32(id)) //nolint:errcheck
		}
	}
	s, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, nw)
	for i := range ref {
		ref[i] = 0.005 // rule id 5's constant support
	}
	out, pruned, err := s.Similar(0, nw-1, ref, Euclidean, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0].ID != 5 || out[0].Distance != 0 {
		t.Fatalf("unexpected neighbors: %+v", out)
	}
	// Ids 4 and 6 tie at distance 2e-3 (over 4 windows); id tie-break.
	if out[1].ID != 4 || out[2].ID != 6 {
		t.Fatalf("expected symmetric neighbors 4,6; got %+v", out)
	}
	if pruned == 0 {
		t.Fatal("envelope lower bound never pruned on a 200-rule constant-series field")
	}
}

// TestRangeAndArgumentErrors covers the validation surface.
func TestRangeAndArgumentErrors(t *testing.T) {
	a := archive.New()
	a.BeginWindow(100)
	a.Append(1, 10, 20, 30) //nolint:errcheck
	s, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateRange(-1, 0, 0); err == nil {
		t.Error("negative from accepted")
	}
	if _, err := s.AggregateRange(0, 1, 0); err == nil {
		t.Error("to beyond windows accepted")
	}
	if _, err := s.AggregateRange(1, 0, 0); err == nil && s.Windows() == 1 {
		t.Error("inverted range accepted")
	}
	aggs, err := s.AggregateRange(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopK(aggs[:0], 0, 0, 0, 0, ByStability, 5); err == nil {
		t.Error("mismatched aggregate set accepted")
	}
	if _, err := s.TopK(aggs, 0, 0, 0, 0, Measure(99), 5); err == nil {
		t.Error("unknown measure accepted")
	}
	if _, _, err := s.Similar(0, 0, []float64{0.1, 0.2}, Euclidean, 0, 0, 5); err == nil {
		t.Error("reference length mismatch accepted")
	}
	if out, _, err := s.Similar(0, 0, []float64{0.1}, Euclidean, 0, 0, 0); err != nil || out != nil {
		t.Errorf("k=0 should return an empty answer, got %v, %v", out, err)
	}
	if _, err := s.Emerging(0, 1, 0, 0); err == nil {
		t.Error("emerging range beyond windows accepted")
	}
	if _, err := MeasureByName("bogus"); err == nil {
		t.Error("bogus measure name accepted")
	}
	if _, err := MetricByName("bogus"); err == nil {
		t.Error("bogus metric name accepted")
	}
	if m, err := MeasureByName(""); err != nil || m != ByStability {
		t.Errorf("empty measure should default to stability, got %v, %v", m, err)
	}
	if m, err := MetricByName(""); err != nil || m != Euclidean {
		t.Errorf("empty metric should default to euclid, got %v, %v", m, err)
	}
}

// TestSingleWindowConventions pins the degenerate single-window range:
// stability 1, drift 0, stddev 0 for a constant singleton series.
func TestSingleWindowConventions(t *testing.T) {
	a := archive.New()
	a.BeginWindow(50)
	a.Append(7, 5, 10, 12) //nolint:errcheck
	s, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := s.AggregateRange(0, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 1 {
		t.Fatalf("expected 1 rule row, got %d", len(aggs))
	}
	want := Aggregates{Coverage: 1, Mean: 0.1, StdDev: 0, Stability: 1, Drift: 0}
	if aggs[0] != want {
		t.Fatalf("single-window aggregates %+v, want %+v", aggs[0], want)
	}
}
