package query

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"tara/internal/tara"
)

// StreamChunkSize is the flush granularity of StreamJSON: encoded rows
// accumulate in a pooled buffer and are written through once the buffer
// crosses this size, so a large ruleset costs one ~32KB buffer instead of a
// whole-body allocation proportional to the answer.
const StreamChunkSize = 32 << 10

// Streamer is implemented by answers that can encode themselves
// incrementally. The server prefers StreamJSON over json.Marshal when a
// result supports it; the stream is the exact bytes json.Marshal would have
// produced, plus a trailing newline (matching json.Encoder's framing).
type Streamer interface {
	StreamJSON(w io.Writer) error
}

// MineStream is the mine/about answer: a lazily-encoded page of rule rows.
// It carries the framework and the raw views instead of materialized
// RuleJSON rows, so encoding converts one reused row at a time rather than
// pinning the whole materialized slice. Total is the unpaginated qualifying
// count; views holds only the [Offset, Offset+len(views)) page.
type MineStream struct {
	Window int
	Total  int
	Offset int

	f     *tara.Framework
	views []tara.RuleView
}

// NewMineStream pages views with q and wraps the page for encoding.
func NewMineStream(f *tara.Framework, q Query, views []tara.RuleView) *MineStream {
	lo, hi := q.Page(len(views))
	return &MineStream{Window: q.Window, Total: len(views), Offset: lo, f: f, views: views[lo:hi]}
}

// Count reports the number of rows on this page.
func (m *MineStream) Count() int { return len(m.views) }

var streamBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encode writes the envelope and rows, flushing buf to w whenever it exceeds
// chunk bytes. One RuleJSON row is reused across iterations (name slices
// included), and each row goes through json.Encoder so floats and strings
// are byte-identical to a json.Marshal of the equivalent materialized
// result. The trailing newline is the caller's business.
func (m *MineStream) encode(w io.Writer, buf *bytes.Buffer, chunk int) error {
	fmt.Fprintf(buf, `{"window":%d,"total":%d,"offset":%d,"count":%d,"rules":[`,
		m.Window, m.Total, m.Offset, len(m.views))
	enc := json.NewEncoder(buf)
	var row RuleJSON
	for i := range m.views {
		if i > 0 {
			buf.WriteByte(',')
		}
		row.fill(m.f, m.views[i])
		if err := enc.Encode(&row); err != nil {
			return err
		}
		buf.Truncate(buf.Len() - 1) // drop Encode's newline
		if buf.Len() >= chunk {
			if _, err := w.Write(buf.Bytes()); err != nil {
				return err
			}
			buf.Reset()
		}
	}
	buf.WriteString("]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// StreamJSON encodes the answer to w in StreamChunkSize flushes using a
// pooled scratch buffer, so steady-state serving allocates no per-request
// body buffer.
func (m *MineStream) StreamJSON(w io.Writer) error {
	buf := streamBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	err := m.encode(w, buf, StreamChunkSize)
	streamBufPool.Put(buf)
	return err
}

// MarshalJSON keeps MineStream a drop-in for json.Marshal callers (the
// traced-response envelope, tests): one buffer, no chunk flushes, newline
// stripped since Marshal output carries no framing.
func (m *MineStream) MarshalJSON() ([]byte, error) {
	var body bytes.Buffer
	if err := m.encode(&body, new(bytes.Buffer), math.MaxInt); err != nil {
		return nil, err
	}
	return bytes.TrimSuffix(body.Bytes(), []byte("\n")), nil
}
