package query

import (
	"fmt"

	"tara/internal/obs"
	"tara/internal/rules"
	"tara/internal/tara"
	"tara/internal/traj"
)

// Structured, JSON-serializable answers for every query class, used by the
// tarad daemon. Execute renders human-readable text for the CLI; Answer
// returns the same information as typed values so HTTP handlers can encode
// them directly.

// Setting is one (minsupp, minconf) request point.
type Setting struct {
	MinSupp float64 `json:"minSupp"`
	MinConf float64 `json:"minConf"`
}

// CountResult answers count requests: the qualifying ruleset's cardinality.
type CountResult struct {
	Window  int     `json:"window"`
	MinSupp float64 `json:"minSupp"`
	MinConf float64 `json:"minConf"`
	Count   int     `json:"count"`
}

// MineResult is the decoded JSON shape of mine and about answers. The server
// encodes those answers through MineStream (same fields, streamed rows); this
// struct is the client-side mirror for unmarshalling.
type MineResult struct {
	Window int        `json:"window"`
	Total  int        `json:"total"`
	Offset int        `json:"offset"`
	Count  int        `json:"count"`
	Rules  []RuleJSON `json:"rules"`
}

// TrajectoryPoint is one examined window of a rule trajectory.
type TrajectoryPoint struct {
	Window     int     `json:"window"`
	Present    bool    `json:"present"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
}

// TrajectoryRule is one Q1 answer row.
type TrajectoryRule struct {
	ID         uint32            `json:"id"`
	Antecedent []string          `json:"antecedent"`
	Consequent []string          `json:"consequent"`
	Points     []TrajectoryPoint `json:"points"`
}

// TrajectoryResult answers trajectory requests.
type TrajectoryResult struct {
	Window int              `json:"window"`
	Total  int              `json:"total"`
	Offset int              `json:"offset"`
	Count  int              `json:"count"`
	Rules  []TrajectoryRule `json:"rules"`
}

// DiffWindow is one window of a Q2 comparison.
type DiffWindow struct {
	Window int      `json:"window"`
	OnlyA  []uint32 `json:"onlyA"`
	OnlyB  []uint32 `json:"onlyB"`
}

// DiffResult answers compare requests.
type DiffResult struct {
	A       Setting      `json:"a"`
	B       Setting      `json:"b"`
	Windows []DiffWindow `json:"windows"`
}

// RegionResult answers recommend requests (Q3): the time-aware stable region.
type RegionResult struct {
	Window   int     `json:"window"`
	Empty    bool    `json:"empty"`
	LowSupp  float64 `json:"lowSupp"`
	HighSupp float64 `json:"highSupp"`
	LowConf  float64 `json:"lowConf"`
	HighConf float64 `json:"highConf"`
	CutSupp  float64 `json:"cutSupp"`
	CutConf  float64 `json:"cutConf"`
	NumRules int     `json:"numRules"`
}

// RegionNDResult answers recommend requests with a lift bound: the
// n-dimensional stable box.
type RegionNDResult struct {
	Window   int       `json:"window"`
	Empty    bool      `json:"empty"`
	Measures []string  `json:"measures"`
	Low      []float64 `json:"low"`
	High     []float64 `json:"high"`
	NumRules int       `json:"numRules"`
}

// RollUpRow is one rule of a coarse-period answer.
type RollUpRow struct {
	RuleJSON
	Present         int     `json:"presentWindows"`
	MaxSupportError float64 `json:"maxSupportError"`
}

// RollUpResult answers rollup requests (Q4 up).
type RollUpResult struct {
	From   int         `json:"from"`
	To     int         `json:"to"`
	Total  int         `json:"total"`
	Offset int         `json:"offset"`
	Count  int         `json:"count"`
	Rules  []RollUpRow `json:"rules"`
}

// DrillRow is one window of a drill-down answer.
type DrillRow struct {
	Window     int     `json:"window"`
	Start      int64   `json:"start"`
	End        int64   `json:"end"`
	Present    bool    `json:"present"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
}

// DrillResult answers drill requests (Q4 down).
type DrillResult struct {
	RuleID     uint32     `json:"ruleId"`
	Antecedent []string   `json:"antecedent"`
	Consequent []string   `json:"consequent"`
	Windows    []DrillRow `json:"windows"`
}

// RankRow is one ranked rule of an evolution-measure answer.
type RankRow struct {
	ID         uint32   `json:"id"`
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Coverage   float64  `json:"coverage"`
	Stability  float64  `json:"stability"`
	StdDev     float64  `json:"stdDev"`
}

// RankResult answers rank requests.
type RankResult struct {
	From  int       `json:"from"`
	To    int       `json:"to"`
	By    string    `json:"by"`
	Rules []RankRow `json:"rules"`
}

// PeriodicRow is one rule of a periodicity answer.
type PeriodicRow struct {
	ID            uint32    `json:"id"`
	Antecedent    []string  `json:"antecedent"`
	Consequent    []string  `json:"consequent"`
	Period        int       `json:"period"`
	BestPhase     int       `json:"bestPhase"`
	PhasePresence []float64 `json:"phasePresence"`
	Score         float64   `json:"score"`
}

// PeriodicResult answers periodic requests.
type PeriodicResult struct {
	From  int           `json:"from"`
	To    int           `json:"to"`
	Rules []PeriodicRow `json:"rules"`
}

// PlotResult carries the textual parameter-space panorama.
type PlotResult struct {
	Window   int    `json:"window"`
	Panorama string `json:"panorama"`
}

// TopKRow is one ranked trajectory of a /topk answer, carrying the full
// aggregate vector so clients need no follow-up query per rule.
type TopKRow struct {
	ID         uint32   `json:"id"`
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Score      float64  `json:"score"`
	Coverage   float64  `json:"coverage"`
	Mean       float64  `json:"mean"`
	StdDev     float64  `json:"stdDev"`
	Stability  float64  `json:"stability"`
	Drift      float64  `json:"drift"`
}

// TopKResult answers topk requests.
type TopKResult struct {
	From   int       `json:"from"`
	To     int       `json:"to"`
	By     string    `json:"by"`
	K      int       `json:"k"`
	Total  int       `json:"total"`
	Offset int       `json:"offset"`
	Count  int       `json:"count"`
	Rules  []TopKRow `json:"rules"`
}

// SimilarRow is one neighbor of a /similar answer.
type SimilarRow struct {
	ID         uint32   `json:"id"`
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Distance   float64  `json:"distance"`
}

// SimilarResult answers similar requests. Pruned reports how many candidate
// rules the envelope lower bound eliminated without a distance computation.
type SimilarResult struct {
	From   int          `json:"from"`
	To     int          `json:"to"`
	Metric string       `json:"metric"`
	K      int          `json:"k"`
	Pruned int          `json:"pruned"`
	Total  int          `json:"total"`
	Offset int          `json:"offset"`
	Count  int          `json:"count"`
	Rules  []SimilarRow `json:"rules"`
}

// EmergingRow is one newly qualifying rule of an /emerging answer.
type EmergingRow struct {
	ID         uint32   `json:"id"`
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Support    float64  `json:"support"`
	Confidence float64  `json:"confidence"`
}

// EmergingResult answers emerging requests. To is the resolved last window
// (the latest committed window when the request used the -1 default).
type EmergingResult struct {
	From   int           `json:"from"`
	To     int           `json:"to"`
	Total  int           `json:"total"`
	Offset int           `json:"offset"`
	Count  int           `json:"count"`
	Rules  []EmergingRow `json:"rules"`
}

// itemNames resolves an itemset to dictionary names.
func itemNames(f *tara.Framework, items []uint32) []string {
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = f.ItemDict().Name(it)
	}
	return out
}

// Answer runs a parsed query against a framework and returns its structured
// result — the JSON body the daemon serves. Export is excluded: it writes
// local files and stays a CLI-only operation.
func Answer(f *tara.Framework, q Query) (any, error) {
	return AnswerTraced(f, q, nil)
}

// AnswerTraced is Answer with per-stage span recording on tr for the traced
// query classes (mine, count, recommend, compare); a nil trace makes it
// identical to Answer. The daemon passes each request's trace here.
func AnswerTraced(f *tara.Framework, q Query, tr *obs.Trace) (any, error) {
	switch q.Kind {
	case Mine:
		views, err := f.MineFilteredTraced(tr, q.Window, q.MinSupp, q.MinConf, q.MinLift)
		if err != nil {
			return nil, err
		}
		// Materialization is deferred to encode time: the stream converts
		// one reused row per rule, so the paged answer never pins a
		// whole-ruleset []RuleJSON.
		return NewMineStream(f, q, views), nil

	case Count:
		n, err := f.CountTraced(tr, q.Window, q.MinSupp, q.MinConf)
		if err != nil {
			return nil, err
		}
		return CountResult{Window: q.Window, MinSupp: q.MinSupp, MinConf: q.MinConf, Count: n}, nil

	case About:
		views, err := f.RulesAbout(q.Window, q.MinSupp, q.MinConf, q.Items)
		if err != nil {
			return nil, err
		}
		return NewMineStream(f, q, views), nil

	case Trajectory:
		trs, err := f.RuleTrajectories(q.Window, q.MinSupp, q.MinConf, q.Windows)
		if err != nil {
			return nil, err
		}
		lo, hi := q.Page(len(trs))
		res := TrajectoryResult{Window: q.Window, Total: len(trs), Offset: lo, Count: hi - lo, Rules: make([]TrajectoryRule, hi-lo)}
		for i, tr := range trs[lo:hi] {
			row := TrajectoryRule{
				ID:         uint32(tr.ID),
				Antecedent: itemNames(f, tr.Rule.Ant),
				Consequent: itemNames(f, tr.Rule.Cons),
				Points:     make([]TrajectoryPoint, len(tr.Windows)),
			}
			for j, win := range tr.Windows {
				row.Points[j] = TrajectoryPoint{
					Window:     win,
					Present:    tr.Present[j],
					Support:    tr.Stats[j].Support(),
					Confidence: tr.Stats[j].Confidence(),
				}
			}
			res.Rules[i] = row
		}
		return res, nil

	case Compare:
		diffs, err := f.CompareTraced(tr, q.Windows, q.MinSupp, q.MinConf, q.MinSupp2, q.MinConf2)
		if err != nil {
			return nil, err
		}
		res := DiffResult{
			A:       Setting{MinSupp: q.MinSupp, MinConf: q.MinConf},
			B:       Setting{MinSupp: q.MinSupp2, MinConf: q.MinConf2},
			Windows: make([]DiffWindow, len(diffs)),
		}
		for i, d := range diffs {
			dw := DiffWindow{Window: d.Window, OnlyA: make([]uint32, len(d.OnlyA)), OnlyB: make([]uint32, len(d.OnlyB))}
			for j, id := range d.OnlyA {
				dw.OnlyA[j] = uint32(id)
			}
			for j, id := range d.OnlyB {
				dw.OnlyB[j] = uint32(id)
			}
			res.Windows[i] = dw
		}
		return res, nil

	case Recommend:
		if q.MinLift > 0 {
			reg, err := f.RecommendND(q.Window, q.MinSupp, q.MinConf, q.MinLift)
			if err != nil {
				return nil, err
			}
			return RegionNDResult{
				Window:   reg.Window,
				Empty:    reg.Empty,
				Measures: reg.Measures,
				Low:      reg.Low,
				High:     reg.High,
				NumRules: reg.NumRules,
			}, nil
		}
		reg, err := f.RecommendTraced(tr, q.Window, q.MinSupp, q.MinConf)
		if err != nil {
			return nil, err
		}
		return RegionResult{
			Window:   reg.Window,
			Empty:    reg.Empty,
			LowSupp:  reg.LowSupp,
			HighSupp: reg.HighSupp,
			LowConf:  reg.LowConf,
			HighConf: reg.HighConf,
			CutSupp:  reg.CutSupp,
			CutConf:  reg.CutConf,
			NumRules: reg.NumRules,
		}, nil

	case RollUp:
		out, err := f.MineRollUp(q.From, q.To, q.MinSupp, q.MinConf)
		if err != nil {
			return nil, err
		}
		lo, hi := q.Page(len(out))
		res := RollUpResult{From: q.From, To: q.To, Total: len(out), Offset: lo, Count: hi - lo, Rules: make([]RollUpRow, hi-lo)}
		for i, r := range out[lo:hi] {
			res.Rules[i] = RollUpRow{
				RuleJSON: RuleJSON{
					ID:         uint32(r.ID),
					Antecedent: itemNames(f, r.Rule.Ant),
					Consequent: itemNames(f, r.Rule.Cons),
					Support:    r.Stats.Support(),
					Confidence: r.Stats.Confidence(),
					Lift:       r.Stats.Lift(),
					CountXY:    r.Stats.CountXY,
					CountX:     r.Stats.CountX,
					CountY:     r.Stats.CountY,
					N:          r.Stats.N,
				},
				Present:         r.Present,
				MaxSupportError: r.MaxSupportError,
			}
		}
		return res, nil

	case DrillDown:
		rows, err := f.DrillDown(rules.ID(q.RuleID), q.From, q.To)
		if err != nil {
			return nil, err
		}
		r, _ := f.RuleDict().Rule(rules.ID(q.RuleID))
		res := DrillResult{
			RuleID:     q.RuleID,
			Antecedent: itemNames(f, r.Ant),
			Consequent: itemNames(f, r.Cons),
			Windows:    make([]DrillRow, len(rows)),
		}
		for i, row := range rows {
			res.Windows[i] = DrillRow{
				Window:     row.Window,
				Start:      row.Period.Start,
				End:        row.Period.End,
				Present:    row.Present,
				Support:    row.Stats.Support(),
				Confidence: row.Stats.Confidence(),
			}
		}
		return res, nil

	case Rank:
		m, err := measureByName(q.Measure)
		if err != nil {
			return nil, err
		}
		out, err := f.RankEvolution(q.From, q.To, q.MinSupp, q.MinConf, m, 0.01, q.TopK)
		if err != nil {
			return nil, err
		}
		res := RankResult{From: q.From, To: q.To, By: q.Measure, Rules: make([]RankRow, len(out))}
		for i, s := range out {
			res.Rules[i] = RankRow{
				ID:         uint32(s.ID),
				Antecedent: itemNames(f, s.Rule.Ant),
				Consequent: itemNames(f, s.Rule.Cons),
				Coverage:   s.Coverage,
				Stability:  s.Stability,
				StdDev:     s.StdDev,
			}
		}
		return res, nil

	case Periodic:
		out, err := f.FindPeriodic(q.From, q.To, q.MinSupp, q.MinConf, q.Period, q.TopK)
		if err != nil {
			return nil, err
		}
		res := PeriodicResult{From: q.From, To: q.To, Rules: make([]PeriodicRow, len(out))}
		for i, s := range out {
			res.Rules[i] = PeriodicRow{
				ID:            uint32(s.ID),
				Antecedent:    itemNames(f, s.Rule.Ant),
				Consequent:    itemNames(f, s.Rule.Cons),
				Period:        s.Period,
				BestPhase:     s.BestPhase,
				PhasePresence: s.PhasePresence,
				Score:         s.Score,
			}
		}
		return res, nil

	case Plot:
		slice, err := f.Index().Slice(q.Window)
		if err != nil {
			return nil, err
		}
		return PlotResult{Window: q.Window, Panorama: slice.Panorama(60, 16, q.MinSupp, q.MinConf)}, nil

	case TopK:
		m, err := traj.MeasureByName(q.Measure)
		if err != nil {
			return nil, err
		}
		out, err := f.TopKTrajectoriesTraced(tr, q.From, q.To, q.MinSupp, q.MinConf, m, q.TopK)
		if err != nil {
			return nil, err
		}
		lo, hi := q.Page(len(out))
		res := TopKResult{From: q.From, To: q.To, By: m.String(), K: q.TopK,
			Total: len(out), Offset: lo, Count: hi - lo, Rules: make([]TopKRow, hi-lo)}
		for i, s := range out[lo:hi] {
			res.Rules[i] = TopKRow{
				ID:         uint32(s.ID),
				Antecedent: itemNames(f, s.Rule.Ant),
				Consequent: itemNames(f, s.Rule.Cons),
				Score:      s.Score,
				Coverage:   s.Agg.Coverage,
				Mean:       s.Agg.Mean,
				StdDev:     s.Agg.StdDev,
				Stability:  s.Agg.Stability,
				Drift:      s.Agg.Drift,
			}
		}
		return res, nil

	case Similar:
		m, err := traj.MetricByName(q.Metric)
		if err != nil {
			return nil, err
		}
		out, pruned, err := f.SimilarTrajectoriesTraced(tr, q.From, q.To, q.Ref, m, q.MinSupp, q.MinConf, q.TopK)
		if err != nil {
			return nil, err
		}
		lo, hi := q.Page(len(out))
		res := SimilarResult{From: q.From, To: q.To, Metric: m.String(), K: q.TopK, Pruned: pruned,
			Total: len(out), Offset: lo, Count: hi - lo, Rules: make([]SimilarRow, hi-lo)}
		for i, s := range out[lo:hi] {
			res.Rules[i] = SimilarRow{
				ID:         uint32(s.ID),
				Antecedent: itemNames(f, s.Rule.Ant),
				Consequent: itemNames(f, s.Rule.Cons),
				Distance:   s.Distance,
			}
		}
		return res, nil

	case Emerging:
		out, err := f.EmergingRulesTraced(tr, q.From, q.To, q.MinSupp, q.MinConf)
		if err != nil {
			return nil, err
		}
		to := q.To
		if to == -1 {
			to = f.Windows() - 1
		}
		lo, hi := q.Page(len(out))
		res := EmergingResult{From: q.From, To: to,
			Total: len(out), Offset: lo, Count: hi - lo, Rules: make([]EmergingRow, hi-lo)}
		for i, s := range out[lo:hi] {
			res.Rules[i] = EmergingRow{
				ID:         uint32(s.ID),
				Antecedent: itemNames(f, s.Rule.Ant),
				Consequent: itemNames(f, s.Rule.Cons),
				Support:    s.Support,
				Confidence: s.Confidence,
			}
		}
		return res, nil

	case Export:
		return nil, fmt.Errorf("query: export is a CLI-only operation")

	default:
		return nil, fmt.Errorf("query: unsupported kind %d", q.Kind)
	}
}

// measureByName maps the textual evolution measure to its enum.
func measureByName(name string) (tara.EvolutionMeasure, error) {
	switch name {
	case "stability", "":
		return tara.ByStability, nil
	case "coverage":
		return tara.ByCoverage, nil
	case "volatility":
		return tara.ByVolatility, nil
	default:
		return 0, fmt.Errorf("query: unknown measure %q (want stability, coverage or volatility)", name)
	}
}
