package query

import (
	"fmt"
	"io"
	"time"

	"tara/internal/rules"
	"tara/internal/tara"
	"tara/internal/traj"
)

// Execute runs a parsed query against a framework, writing a human-readable
// answer (with its response time, as an interactive explorer would show).
func Execute(w io.Writer, f *tara.Framework, q Query) error {
	start := time.Now()
	var err error
	switch q.Kind {
	case Mine:
		err = execMine(w, f, q)
	case Count:
		err = execCount(w, f, q)
	case Trajectory:
		err = execTrajectory(w, f, q)
	case Compare:
		err = execCompare(w, f, q)
	case Recommend:
		err = execRecommend(w, f, q)
	case RollUp:
		err = execRollUp(w, f, q)
	case DrillDown:
		err = execDrillDown(w, f, q)
	case About:
		err = execAbout(w, f, q)
	case Rank:
		err = execRank(w, f, q)
	case Periodic:
		err = execPeriodic(w, f, q)
	case Plot:
		err = execPlot(w, f, q)
	case Export:
		err = execExport(w, f, q)
	case TopK:
		err = execTopK(w, f, q)
	case Similar:
		err = execSimilar(w, f, q)
	case Emerging:
		err = execEmerging(w, f, q)
	default:
		err = fmt.Errorf("query: unsupported kind %d", q.Kind)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "(%v)\n", time.Since(start).Round(time.Microsecond))
	return nil
}

const maxListed = 25

// pageOf clips s to q's requested page. The annotation (for the header
// line) is empty when no pagination was asked for, so default output is
// unchanged.
func pageOf[T any](q Query, s []T) ([]T, string) {
	if q.Limit == 0 && q.Offset == 0 {
		return s, ""
	}
	lo, hi := q.Page(len(s))
	return s[lo:hi], fmt.Sprintf(", showing rows [%d,%d)", lo, hi)
}

func printRule(w io.Writer, f *tara.Framework, v tara.RuleView) {
	fmt.Fprintf(w, "  #%-6d %-50s supp=%.5f conf=%.3f lift=%.2f\n",
		v.ID, v.Rule.Format(f.ItemDict()), v.Support(), v.Confidence(), v.Lift())
}

func execMine(w io.Writer, f *tara.Framework, q Query) error {
	views, err := f.MineFiltered(q.Window, q.MinSupp, q.MinConf, q.MinLift)
	if err != nil {
		return err
	}
	extra := ""
	if q.MinLift > 0 {
		extra = fmt.Sprintf(", lift>=%g", q.MinLift)
	}
	page, note := pageOf(q, views)
	fmt.Fprintf(w, "%d rules in window %d at (supp>=%g, conf>=%g%s)%s\n", len(views), q.Window, q.MinSupp, q.MinConf, extra, note)
	for i, v := range page {
		if i == maxListed {
			fmt.Fprintf(w, "  ... %d more\n", len(page)-maxListed)
			break
		}
		printRule(w, f, v)
	}
	return nil
}

func execCount(w io.Writer, f *tara.Framework, q Query) error {
	n, err := f.Count(q.Window, q.MinSupp, q.MinConf)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d rules in window %d at (supp>=%g, conf>=%g)\n", n, q.Window, q.MinSupp, q.MinConf)
	return nil
}

func execTrajectory(w io.Writer, f *tara.Framework, q Query) error {
	trs, err := f.RuleTrajectories(q.Window, q.MinSupp, q.MinConf, q.Windows)
	if err != nil {
		return err
	}
	page, note := pageOf(q, trs)
	fmt.Fprintf(w, "%d rule trajectories from window %d examined in %v%s\n", len(trs), q.Window, q.Windows, note)
	for i, tr := range page {
		if i == maxListed {
			fmt.Fprintf(w, "  ... %d more\n", len(page)-maxListed)
			break
		}
		fmt.Fprintf(w, "  #%-6d %s\n", tr.ID, tr.Rule.Format(f.ItemDict()))
		for j, win := range tr.Windows {
			if tr.Present[j] {
				fmt.Fprintf(w, "      w%-3d supp=%.5f conf=%.3f\n", win, tr.Stats[j].Support(), tr.Stats[j].Confidence())
			} else {
				fmt.Fprintf(w, "      w%-3d below generation thresholds\n", win)
			}
		}
	}
	return nil
}

func execCompare(w io.Writer, f *tara.Framework, q Query) error {
	diffs, err := f.Compare(q.Windows, q.MinSupp, q.MinConf, q.MinSupp2, q.MinConf2)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "comparison of A=(%g,%g) vs B=(%g,%g)\n", q.MinSupp, q.MinConf, q.MinSupp2, q.MinConf2)
	for _, d := range diffs {
		fmt.Fprintf(w, "  window %d: %d rules only in A, %d only in B\n", d.Window, len(d.OnlyA), len(d.OnlyB))
	}
	return nil
}

func execRecommend(w io.Writer, f *tara.Framework, q Query) error {
	if q.MinLift > 0 {
		reg, err := f.RecommendND(q.Window, q.MinSupp, q.MinConf, q.MinLift)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "window %d: stable for", reg.Window)
		for d, name := range reg.Measures {
			if d > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, " %s in (%.6g,%.6g]", name, reg.Low[d], reg.High[d])
		}
		fmt.Fprintf(w, " — %d rules\n", reg.NumRules)
		return nil
	}
	reg, err := f.Recommend(q.Window, q.MinSupp, q.MinConf)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, reg.String())
	return nil
}

func execRollUp(w io.Writer, f *tara.Framework, q Query) error {
	out, err := f.MineRollUp(q.From, q.To, q.MinSupp, q.MinConf)
	if err != nil {
		return err
	}
	page, note := pageOf(q, out)
	fmt.Fprintf(w, "%d rules over windows [%d,%d] at (supp>=%g, conf>=%g)%s\n", len(out), q.From, q.To, q.MinSupp, q.MinConf, note)
	for i, r := range page {
		if i == maxListed {
			fmt.Fprintf(w, "  ... %d more\n", len(page)-maxListed)
			break
		}
		fmt.Fprintf(w, "  #%-6d %-50s supp=%.5f conf=%.3f present=%d/%d errBound=%.5f\n",
			r.ID, r.Rule.Format(f.ItemDict()), r.Stats.Support(), r.Stats.Confidence(),
			r.Present, q.To-q.From+1, r.MaxSupportError)
	}
	return nil
}

func execDrillDown(w io.Writer, f *tara.Framework, q Query) error {
	rows, err := f.DrillDown(rules.ID(q.RuleID), q.From, q.To)
	if err != nil {
		return err
	}
	r, _ := f.RuleDict().Rule(rules.ID(q.RuleID))
	fmt.Fprintf(w, "rule #%d %s across windows [%d,%d]\n", q.RuleID, r.Format(f.ItemDict()), q.From, q.To)
	for _, row := range rows {
		if row.Present {
			fmt.Fprintf(w, "  w%-3d %v supp=%.5f conf=%.3f\n", row.Window, row.Period, row.Stats.Support(), row.Stats.Confidence())
		} else {
			fmt.Fprintf(w, "  w%-3d %v below generation thresholds\n", row.Window, row.Period)
		}
	}
	return nil
}

func execAbout(w io.Writer, f *tara.Framework, q Query) error {
	views, err := f.RulesAbout(q.Window, q.MinSupp, q.MinConf, q.Items)
	if err != nil {
		return err
	}
	page, note := pageOf(q, views)
	fmt.Fprintf(w, "%d rules about %v in window %d%s\n", len(views), q.Items, q.Window, note)
	for i, v := range page {
		if i == maxListed {
			fmt.Fprintf(w, "  ... %d more\n", len(page)-maxListed)
			break
		}
		printRule(w, f, v)
	}
	return nil
}

func execRank(w io.Writer, f *tara.Framework, q Query) error {
	m, err := measureByName(q.Measure)
	if err != nil {
		return err
	}
	out, err := f.RankEvolution(q.From, q.To, q.MinSupp, q.MinConf, m, 0.01, q.TopK)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "top %d rules over windows [%d,%d] by %s\n", len(out), q.From, q.To, q.Measure)
	for _, s := range out {
		fmt.Fprintf(w, "  #%-6d %-50s coverage=%.2f stability=%.2f stddev=%.5f\n",
			s.ID, s.Rule.Format(f.ItemDict()), s.Coverage, s.Stability, s.StdDev)
	}
	return nil
}

func execTopK(w io.Writer, f *tara.Framework, q Query) error {
	m, err := traj.MeasureByName(q.Measure)
	if err != nil {
		return err
	}
	out, err := f.TopKTrajectories(q.From, q.To, q.MinSupp, q.MinConf, m, q.TopK)
	if err != nil {
		return err
	}
	rows, note := pageOf(q, out)
	fmt.Fprintf(w, "top %d trajectories over windows [%d,%d] by %s%s\n", len(out), q.From, q.To, m, note)
	for _, s := range rows {
		fmt.Fprintf(w, "  #%-6d %-50s score=%.4f coverage=%.2f stability=%.2f stddev=%.5f drift=%+.5f\n",
			s.ID, s.Rule.Format(f.ItemDict()), s.Score, s.Agg.Coverage, s.Agg.Stability, s.Agg.StdDev, s.Agg.Drift)
	}
	return nil
}

func execSimilar(w io.Writer, f *tara.Framework, q Query) error {
	m, err := traj.MetricByName(q.Metric)
	if err != nil {
		return err
	}
	out, pruned, err := f.SimilarTrajectories(q.From, q.To, q.Ref, m, q.MinSupp, q.MinConf, q.TopK)
	if err != nil {
		return err
	}
	rows, note := pageOf(q, out)
	fmt.Fprintf(w, "%d nearest trajectories over windows [%d,%d] by %s (%d pruned)%s\n",
		len(out), q.From, q.To, m, pruned, note)
	for _, s := range rows {
		fmt.Fprintf(w, "  #%-6d %-50s distance=%.6f\n", s.ID, s.Rule.Format(f.ItemDict()), s.Distance)
	}
	return nil
}

func execEmerging(w io.Writer, f *tara.Framework, q Query) error {
	out, err := f.EmergingRules(q.From, q.To, q.MinSupp, q.MinConf)
	if err != nil {
		return err
	}
	to := q.To
	if to == -1 {
		to = f.Windows() - 1
	}
	rows, note := pageOf(q, out)
	fmt.Fprintf(w, "%d rules newly qualifying in window %d (none in [%d,%d))%s\n", len(out), to, q.From, to, note)
	for _, s := range rows {
		fmt.Fprintf(w, "  #%-6d %-50s supp=%.4f conf=%.2f\n",
			s.ID, s.Rule.Format(f.ItemDict()), s.Support, s.Confidence)
	}
	return nil
}

func execPeriodic(w io.Writer, f *tara.Framework, q Query) error {
	out, err := f.FindPeriodic(q.From, q.To, q.MinSupp, q.MinConf, q.Period, q.TopK)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "top %d rules over windows [%d,%d] by periodicity at period %d\n", len(out), q.From, q.To, q.Period)
	for _, s := range out {
		fmt.Fprintf(w, "  #%-6d %-50s score=%.2f phase=%d presence=%v\n",
			s.ID, s.Rule.Format(f.ItemDict()), s.Score, s.BestPhase, s.PhasePresence)
	}
	return nil
}

func execPlot(w io.Writer, f *tara.Framework, q Query) error {
	slice, err := f.Index().Slice(q.Window)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, slice.Panorama(60, 16, q.MinSupp, q.MinConf))
	return err
}
