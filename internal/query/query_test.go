package query

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tara/internal/tara"
	"tara/internal/txdb"
)

func TestParseMine(t *testing.T) {
	q, err := Parse("mine w=2 supp=0.01 conf=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != Mine || q.Window != 2 || q.MinSupp != 0.01 || q.MinConf != 0.2 {
		t.Errorf("parsed %+v", q)
	}
}

func TestParseTrajectory(t *testing.T) {
	q, err := Parse("traj w=3 supp=0.05 conf=0.3 in=0,1,2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != Trajectory || len(q.Windows) != 3 || q.Windows[2] != 2 {
		t.Errorf("parsed %+v", q)
	}
}

func TestParseCompare(t *testing.T) {
	q, err := Parse("compare w=0,1 a=0.01,0.2 b=0.05,0.4")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != Compare || q.MinSupp != 0.01 || q.MinConf != 0.2 || q.MinSupp2 != 0.05 || q.MinConf2 != 0.4 {
		t.Errorf("parsed %+v", q)
	}
}

func TestParseRollUpDrill(t *testing.T) {
	q, err := Parse("rollup from=0 to=3 supp=0.02 conf=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != RollUp || q.From != 0 || q.To != 3 {
		t.Errorf("parsed %+v", q)
	}
	q, err = Parse("drill rule=7 from=1 to=2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != DrillDown || q.RuleID != 7 {
		t.Errorf("parsed %+v", q)
	}
}

func TestParseAboutRank(t *testing.T) {
	q, err := Parse("about w=0 supp=0.01 conf=0.2 items=milk,bread")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != About || len(q.Items) != 2 || q.Items[1] != "bread" {
		t.Errorf("parsed %+v", q)
	}
	q, err = Parse("rank from=0 to=3 supp=0.01 conf=0.2 by=volatility k=5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != Rank || q.Measure != "volatility" || q.TopK != 5 {
		t.Errorf("parsed %+v", q)
	}
	// Defaults.
	q, err = Parse("rank from=0 to=1 supp=0.01 conf=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Measure != "stability" || q.TopK != 10 {
		t.Errorf("defaults not applied: %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"frobnicate w=0",
		"mine w=0 supp=0.01",             // missing conf
		"mine w=zero supp=0.01 conf=0.2", // bad int
		"mine w=0 supp=high conf=0.2",    // bad float
		"compare w=0 a=0.01 b=0.05,0.4",  // malformed pair
		"traj w=0 supp=0.01 conf=0.2",    // missing in=
		"about w=0 supp=0.01 conf=0.2",   // missing items=
		"mine w 0",                       // malformed field
		"compare w=0,x a=0.1,0.2 b=0.1,0.2",
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) accepted", line)
		}
	}
}

func buildFramework(t *testing.T) *tara.Framework {
	t.Helper()
	r := rand.New(rand.NewSource(5))
	db := txdb.NewDB()
	names := []string{"milk", "bread", "beer", "eggs", "jam", "tea"}
	for i := 0; i < 400; i++ {
		var tx []string
		if r.Float64() < 0.5 {
			tx = append(tx, "milk", "bread")
		}
		for j := 0; j < 1+r.Intn(3); j++ {
			tx = append(tx, names[r.Intn(len(names))])
		}
		db.Add(int64(i), tx...)
	}
	f, err := tara.Build(db, 0, 4, tara.Config{GenMinSupport: 0.01, GenMinConf: 0.05, MaxItemsetLen: 3, ContentIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestExecuteAllKinds(t *testing.T) {
	f := buildFramework(t)
	lines := []string{
		"mine w=0 supp=0.05 conf=0.2",
		"traj w=3 supp=0.05 conf=0.2 in=0,1,2",
		"compare w=0,1,2,3 a=0.05,0.2 b=0.2,0.5",
		"recommend w=0 supp=0.05 conf=0.2",
		"rollup from=0 to=3 supp=0.05 conf=0.2",
		"drill rule=0 from=0 to=3",
		"about w=0 supp=0.05 conf=0.2 items=milk",
		"rank from=0 to=3 supp=0.05 conf=0.2 by=coverage k=5",
	}
	for _, line := range lines {
		q, err := Parse(line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", line, err)
		}
		var buf bytes.Buffer
		if err := Execute(&buf, f, q); err != nil {
			t.Fatalf("Execute(%q): %v", line, err)
		}
		if buf.Len() == 0 {
			t.Errorf("Execute(%q) produced no output", line)
		}
	}
}

func TestExecuteMineOutput(t *testing.T) {
	f := buildFramework(t)
	q, _ := Parse("mine w=0 supp=0.05 conf=0.2")
	var buf bytes.Buffer
	if err := Execute(&buf, f, q); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rules in window 0") {
		t.Errorf("unexpected output: %q", out)
	}
	if !strings.Contains(out, "supp=") {
		t.Errorf("rules not listed: %q", out)
	}
}

func TestExecuteRankBadMeasure(t *testing.T) {
	f := buildFramework(t)
	q, err := Parse("rank from=0 to=3 supp=0.05 conf=0.2 by=zeal")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Execute(&buf, f, q); err == nil {
		t.Error("unknown measure accepted")
	}
}

func TestExecutePropagatesErrors(t *testing.T) {
	f := buildFramework(t)
	q, _ := Parse("mine w=99 supp=0.05 conf=0.2")
	var buf bytes.Buffer
	if err := Execute(&buf, f, q); err == nil {
		t.Error("bad window accepted")
	}
}

func TestParsePeriodic(t *testing.T) {
	q, err := Parse("periodic from=0 to=8 supp=0.01 conf=0.2 period=3 k=4")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != Periodic || q.Period != 3 || q.TopK != 4 {
		t.Errorf("parsed %+v", q)
	}
	if _, err := Parse("periodic from=0 to=8 supp=0.01 conf=0.2"); err == nil {
		t.Error("missing period accepted")
	}
}

func TestExecutePeriodic(t *testing.T) {
	f := buildFramework(t)
	q, err := Parse("periodic from=0 to=3 supp=0.05 conf=0.2 period=2 k=5")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Execute(&buf, f, q); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "periodicity") {
		t.Errorf("unexpected output: %q", buf.String())
	}
}

func TestParseAndExecutePlot(t *testing.T) {
	q, err := Parse("plot w=0")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != Plot || q.MinSupp != -1 || q.MinConf != -1 {
		t.Errorf("parsed %+v", q)
	}
	q, err = Parse("plot w=0 supp=0.05 conf=0.4")
	if err != nil {
		t.Fatal(err)
	}
	if q.MinSupp != 0.05 || q.MinConf != 0.4 {
		t.Errorf("parsed %+v", q)
	}
	f := buildFramework(t)
	var buf bytes.Buffer
	if err := Execute(&buf, f, q); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rules at") {
		t.Errorf("plot output: %q", buf.String())
	}
}

func TestParseMineWithLift(t *testing.T) {
	q, err := Parse("mine w=0 supp=0.05 conf=0.2 lift=1.5")
	if err != nil {
		t.Fatal(err)
	}
	if q.MinLift != 1.5 {
		t.Errorf("MinLift = %g", q.MinLift)
	}
	f := buildFramework(t)
	var buf bytes.Buffer
	if err := Execute(&buf, f, q); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lift>=1.5") {
		t.Errorf("output: %q", buf.String())
	}
}

func TestExecuteRecommendND(t *testing.T) {
	f := buildFramework(t)
	q, err := Parse("recommend w=0 supp=0.05 conf=0.2 lift=1.2")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Execute(&buf, f, q); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lift in (") {
		t.Errorf("ND region output: %q", buf.String())
	}
}

func TestExport(t *testing.T) {
	f := buildFramework(t)
	dir := t.TempDir()

	csvPath := filepath.Join(dir, "rules.csv")
	q, err := Parse("export w=0 supp=0.05 conf=0.2 file=" + csvPath)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Execute(&buf, f, q); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	views, _ := f.Mine(0, 0.05, 0.2)
	if len(lines) != len(views)+1 {
		t.Fatalf("CSV has %d lines, want %d rules + header", len(lines), len(views))
	}
	if !strings.HasPrefix(lines[0], "id,antecedent,consequent,support") {
		t.Errorf("header = %q", lines[0])
	}

	jsonPath := filepath.Join(dir, "rules.json")
	q, err = Parse("export w=0 supp=0.05 conf=0.2 format=json file=" + jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := Execute(&buf, f, q); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	data, err = os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rows) != len(views) {
		t.Fatalf("JSON has %d rows, want %d", len(rows), len(views))
	}
	if _, ok := rows[0]["antecedent"]; !ok {
		t.Error("JSON rows missing antecedent field")
	}
}

func TestExportParseErrors(t *testing.T) {
	if _, err := Parse("export w=0 supp=0.05 conf=0.2"); err == nil {
		t.Error("missing file= accepted")
	}
	if _, err := Parse("export w=0 supp=0.05 conf=0.2 file=x format=xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestAppendRuleJSON(t *testing.T) {
	f := buildFramework(t)
	views, err := f.Mine(0, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) == 0 {
		t.Fatal("empty ruleset")
	}
	want := make([]RuleJSON, len(views))
	for i, v := range views {
		want[i] = toRuleJSON(f, v)
	}

	// Fresh materialization matches the per-rule conversion exactly.
	got := AppendRuleJSON(nil, f, views)
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		a, _ := json.Marshal(got[i])
		b, _ := json.Marshal(want[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("row %d: got %s, want %s", i, a, b)
		}
	}

	// Appending extends rather than replaces.
	combined := AppendRuleJSON(got, f, views[:1])
	if len(combined) != len(views)+1 {
		t.Fatalf("appended length %d, want %d", len(combined), len(views)+1)
	}

	// Reusing the buffer with dst[:0] does not grow it again when capacity
	// suffices — the zero-steady-state-alloc contract of the warm path.
	buf := AppendRuleJSON(nil, f, views)
	before := cap(buf)
	buf = AppendRuleJSON(buf[:0], f, views)
	if cap(buf) != before {
		t.Fatalf("reuse reallocated: cap %d -> %d", before, cap(buf))
	}
}
