// Package query defines the typed exploration queries of the TARA Online
// Explorer and a small textual syntax for them, used by the cmd/tara CLI.
//
// Syntax (key=value fields, whitespace separated):
//
//	mine      w=0 supp=0.01 conf=0.2 [lift=1.5]
//	count     w=0 supp=0.01 conf=0.2
//	traj      w=3 supp=0.01 conf=0.2 in=0,1,2
//	compare   w=0,1,2,3 a=0.01,0.2 b=0.05,0.3
//	recommend w=0 supp=0.01 conf=0.2 [lift=1.5]
//	rollup    from=0 to=3 supp=0.01 conf=0.2
//	drill     rule=12 from=0 to=3
//	about     w=0 supp=0.01 conf=0.2 items=milk,bread
//	rank      from=0 to=3 supp=0.01 conf=0.2 by=stability k=10
//	periodic  from=0 to=8 supp=0.01 conf=0.2 period=7 k=10
//	plot      w=0 [supp=0.01 conf=0.2]
//	export    w=0 supp=0.01 conf=0.2 file=rules.csv [format=csv|json]
//	topk      from=0 to=3 supp=0.01 conf=0.2 [by=stability|drift|volatility|coverage] [k=10]
//	similar   from=0 to=3 ref=0.1,0.2,0.15,0.2 [metric=euclid|max] [supp=0 conf=0] [k=10]
//	emerging  from=0 supp=0.01 conf=0.2 [to=5]
//
// The last three are the columnar trajectory query classes, answered from
// the window-major snapshot (internal/traj) rather than per-rule decodes.
package query

import (
	"fmt"
	"math"
	"net/url"
	"strconv"
	"strings"

	"tara/internal/traj"
)

// Kind enumerates the supported exploration operations.
type Kind int

const (
	// Mine is the traditional mining request (the base of Q1).
	Mine Kind = iota
	// Count reports the qualifying ruleset's cardinality without
	// materializing it — the cheapest probe of a parameter setting.
	Count
	// Trajectory is Q1: mine one window, examine others.
	Trajectory
	// Compare is Q2: evolving ruleset comparison.
	Compare
	// Recommend is Q3: stable-region parameter recommendation.
	Recommend
	// RollUp is the coarse-granularity mining request (Q4 up).
	RollUp
	// DrillDown is the fine-granularity examination (Q4 down).
	DrillDown
	// About is Q5: content-based exploration.
	About
	// Rank is the evolution-measure ranking exploration.
	Rank
	// Periodic is the cyclic-qualification exploration.
	Periodic
	// Plot renders the parameter-space panorama of a window.
	Plot
	// Export writes a window's qualifying ruleset to a file.
	Export
	// TopK ranks trajectories over a window range by a columnar measure.
	TopK
	// Similar searches for the trajectories nearest a reference profile.
	Similar
	// Emerging reports the rules newly crossing the threshold in the
	// range's last window.
	Emerging
)

// Query is one parsed exploration request.
type Query struct {
	Kind     Kind
	Window   int
	Windows  []int
	From, To int
	MinSupp  float64
	MinConf  float64
	MinSupp2 float64
	MinConf2 float64
	Items    []string
	RuleID   uint32
	Measure  string
	TopK     int
	Period   int
	MinLift  float64
	File     string
	Format   string
	// Ref is the similarity query's reference support profile, one value
	// per window of [From, To].
	Ref []float64
	// Metric names the similarity distance ("euclid" or "max").
	Metric string
	// Limit and Offset paginate the rule-list answers (mine, about,
	// trajectory, rollup, export): the answer covers rows
	// [Offset, Offset+Limit) of the full qualifying set, and the envelope
	// reports the unpaginated total. Limit 0 means "to the end".
	Limit  int
	Offset int
}

// Page clips the [Offset, Offset+Limit) request window to a result of n rows,
// returning the half-open row range [lo, hi) to serve. An offset past the end
// yields an empty page; a zero limit runs to the end.
func (q Query) Page(n int) (lo, hi int) {
	lo = q.Offset
	if lo > n {
		lo = n
	}
	hi = n
	if q.Limit > 0 && lo+q.Limit < hi {
		hi = lo + q.Limit
	}
	return lo, hi
}

// Parse parses one query line.
func Parse(line string) (Query, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Query{}, fmt.Errorf("query: empty input")
	}
	kv := map[string]string{}
	for _, f := range fields[1:] {
		eq := strings.IndexByte(f, '=')
		if eq <= 0 {
			return Query{}, fmt.Errorf("query: malformed field %q (want key=value)", f)
		}
		kv[f[:eq]] = f[eq+1:]
	}
	return build(fields[0], kv)
}

// FromValues decodes a query from URL parameters — the same keys the textual
// syntax uses (`w`, `supp`, `conf`, ...) — so HTTP handlers and the CLI share
// one decoder. Repeated parameters take the first value.
func FromValues(op string, values url.Values) (Query, error) {
	kv := make(map[string]string, len(values))
	for k, vs := range values {
		if len(vs) > 0 {
			kv[k] = vs[0]
		}
	}
	return build(op, kv)
}

// build decodes and validates the shared key=value form of a query.
func build(op string, kv map[string]string) (Query, error) {
	var q Query
	switch op {
	case "mine":
		q.Kind = Mine
	case "count":
		q.Kind = Count
	case "traj", "trajectory":
		q.Kind = Trajectory
	case "compare":
		q.Kind = Compare
	case "recommend", "region":
		q.Kind = Recommend
	case "rollup":
		q.Kind = RollUp
	case "drill", "drilldown":
		q.Kind = DrillDown
	case "about":
		q.Kind = About
	case "rank":
		q.Kind = Rank
	case "periodic":
		q.Kind = Periodic
	case "plot", "panorama":
		q.Kind = Plot
	case "export":
		q.Kind = Export
	case "topk":
		q.Kind = TopK
	case "similar":
		q.Kind = Similar
	case "emerging":
		q.Kind = Emerging
	default:
		return Query{}, fmt.Errorf("query: unknown operation %q", op)
	}
	var err error
	getF := func(key string, dst *float64, required bool) {
		if err != nil {
			return
		}
		v, ok := kv[key]
		if !ok {
			if required {
				err = fmt.Errorf("query: missing %s=", key)
			}
			return
		}
		*dst, err = strconv.ParseFloat(v, 64)
		if err != nil {
			err = fmt.Errorf("query: bad %s: %v", key, err)
		}
	}
	getI := func(key string, dst *int, required bool) {
		if err != nil {
			return
		}
		v, ok := kv[key]
		if !ok {
			if required {
				err = fmt.Errorf("query: missing %s=", key)
			}
			return
		}
		*dst, err = strconv.Atoi(v)
		if err != nil {
			err = fmt.Errorf("query: bad %s: %v", key, err)
		}
	}
	getIs := func(key string, dst *[]int, required bool) {
		if err != nil {
			return
		}
		v, ok := kv[key]
		if !ok {
			if required {
				err = fmt.Errorf("query: missing %s=", key)
			}
			return
		}
		for _, part := range strings.Split(v, ",") {
			n, e := strconv.Atoi(strings.TrimSpace(part))
			if e != nil {
				err = fmt.Errorf("query: bad %s: %v", key, e)
				return
			}
			*dst = append(*dst, n)
		}
	}
	// getPage decodes the shared limit/offset pagination parameters. The
	// values feed slice arithmetic and cache keys, so anything that is not a
	// plain non-negative integer fitting in int32 is rejected up front with a
	// typed error — mirroring the NaN/Inf threshold validation below.
	getPage := func() {
		parse := func(key string, dst *int) {
			if err != nil {
				return
			}
			v, ok := kv[key]
			if !ok {
				return
			}
			n, e := strconv.Atoi(v)
			if e != nil || n < 0 || n > math.MaxInt32 {
				err = fmt.Errorf("query: %s %q must be an integer in [0, %d]", key, v, math.MaxInt32)
				return
			}
			*dst = n
		}
		parse("limit", &q.Limit)
		parse("offset", &q.Offset)
	}
	getFs := func(key string, dst *[]float64, required bool) {
		if err != nil {
			return
		}
		v, ok := kv[key]
		if !ok {
			if required {
				err = fmt.Errorf("query: missing %s=", key)
			}
			return
		}
		for _, part := range strings.Split(v, ",") {
			f, e := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if e != nil {
				err = fmt.Errorf("query: bad %s: %v", key, e)
				return
			}
			*dst = append(*dst, f)
		}
	}
	getPair := func(key string, s, c *float64) {
		if err != nil {
			return
		}
		v, ok := kv[key]
		if !ok {
			err = fmt.Errorf("query: missing %s=supp,conf", key)
			return
		}
		parts := strings.Split(v, ",")
		if len(parts) != 2 {
			err = fmt.Errorf("query: %s wants supp,conf", key)
			return
		}
		*s, err = strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return
		}
		*c, err = strconv.ParseFloat(parts[1], 64)
	}

	switch q.Kind {
	case Mine:
		getI("w", &q.Window, true)
		getF("supp", &q.MinSupp, true)
		getF("conf", &q.MinConf, true)
		getF("lift", &q.MinLift, false)
		getPage()
	case Recommend:
		getI("w", &q.Window, true)
		getF("supp", &q.MinSupp, true)
		getF("conf", &q.MinConf, true)
		getF("lift", &q.MinLift, false)
	case Count:
		getI("w", &q.Window, true)
		getF("supp", &q.MinSupp, true)
		getF("conf", &q.MinConf, true)
	case Trajectory:
		getI("w", &q.Window, true)
		getF("supp", &q.MinSupp, true)
		getF("conf", &q.MinConf, true)
		getIs("in", &q.Windows, true)
		getPage()
	case Compare:
		getIs("w", &q.Windows, true)
		getPair("a", &q.MinSupp, &q.MinConf)
		getPair("b", &q.MinSupp2, &q.MinConf2)
	case RollUp:
		getI("from", &q.From, true)
		getI("to", &q.To, true)
		getF("supp", &q.MinSupp, true)
		getF("conf", &q.MinConf, true)
		getPage()
	case DrillDown:
		var id int
		getI("rule", &id, true)
		q.RuleID = uint32(id)
		getI("from", &q.From, true)
		getI("to", &q.To, true)
	case About:
		getI("w", &q.Window, true)
		getF("supp", &q.MinSupp, true)
		getF("conf", &q.MinConf, true)
		if v, ok := kv["items"]; ok && v != "" {
			q.Items = strings.Split(v, ",")
		} else if err == nil {
			err = fmt.Errorf("query: missing items=")
		}
		getPage()
	case Rank:
		getI("from", &q.From, true)
		getI("to", &q.To, true)
		getF("supp", &q.MinSupp, true)
		getF("conf", &q.MinConf, true)
		q.Measure = kv["by"]
		if q.Measure == "" {
			q.Measure = "stability"
		}
		q.TopK = 10
		getI("k", &q.TopK, false)
	case Periodic:
		getI("from", &q.From, true)
		getI("to", &q.To, true)
		getF("supp", &q.MinSupp, true)
		getF("conf", &q.MinConf, true)
		getI("period", &q.Period, true)
		q.TopK = 10
		getI("k", &q.TopK, false)
	case Plot:
		getI("w", &q.Window, true)
		q.MinSupp, q.MinConf = -1, -1
		getF("supp", &q.MinSupp, false)
		getF("conf", &q.MinConf, false)
	case Export:
		getI("w", &q.Window, true)
		getF("supp", &q.MinSupp, true)
		getF("conf", &q.MinConf, true)
		q.File = kv["file"]
		if q.File == "" && err == nil {
			err = fmt.Errorf("query: missing file=")
		}
		q.Format = kv["format"]
		if q.Format == "" {
			q.Format = "csv"
		}
		if err == nil && q.Format != "csv" && q.Format != "json" {
			err = fmt.Errorf("query: unknown format %q (want csv or json)", q.Format)
		}
		getPage()
	case TopK:
		getI("from", &q.From, true)
		getI("to", &q.To, true)
		getF("supp", &q.MinSupp, true)
		getF("conf", &q.MinConf, true)
		q.Measure = kv["by"]
		if q.Measure == "" {
			q.Measure = "stability"
		}
		q.TopK = 10
		getI("k", &q.TopK, false)
		getPage()
	case Similar:
		getI("from", &q.From, true)
		getI("to", &q.To, true)
		getFs("ref", &q.Ref, true)
		q.Metric = kv["metric"]
		getF("supp", &q.MinSupp, false)
		getF("conf", &q.MinConf, false)
		q.TopK = 10
		getI("k", &q.TopK, false)
		getPage()
	case Emerging:
		getI("from", &q.From, true)
		// to defaults to the latest committed window; -1 is the sentinel the
		// framework resolves at answer time, so "what just emerged" needs no
		// window arithmetic on the client.
		q.To = -1
		getI("to", &q.To, false)
		getF("supp", &q.MinSupp, true)
		getF("conf", &q.MinConf, true)
		getPage()
	}
	if err != nil {
		return Query{}, err
	}
	if err := q.validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// validate rejects threshold values that no framework can answer sensibly —
// NaN and infinities in particular would silently pass the generation
// threshold comparison (NaN compares false) and then corrupt binary searches
// over the parameter grid. Plot's -1 sentinel ("no request marker") is the
// one allowed out-of-range value.
func (q Query) validate() error {
	checkFrac := func(name string, v float64) error {
		if q.Kind == Plot && v == -1 {
			return nil
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			return fmt.Errorf("query: %s %g outside [0,1]", name, v)
		}
		return nil
	}
	if err := checkFrac("supp", q.MinSupp); err != nil {
		return err
	}
	if err := checkFrac("conf", q.MinConf); err != nil {
		return err
	}
	if q.Kind == Compare {
		if err := checkFrac("b supp", q.MinSupp2); err != nil {
			return err
		}
		if err := checkFrac("b conf", q.MinConf2); err != nil {
			return err
		}
	}
	if math.IsNaN(q.MinLift) || math.IsInf(q.MinLift, 0) || q.MinLift < 0 {
		return fmt.Errorf("query: lift %g must be a finite non-negative number", q.MinLift)
	}
	// The trajectory classes resolve their measure/metric/profile strings at
	// answer time; rejecting bad values here keeps them client errors rather
	// than execution failures.
	if q.Kind == TopK {
		if _, err := traj.MeasureByName(q.Measure); err != nil {
			return fmt.Errorf("query: %v", err)
		}
	}
	if q.Kind == Similar {
		if _, err := traj.MetricByName(q.Metric); err != nil {
			return fmt.Errorf("query: %v", err)
		}
		for _, v := range q.Ref {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
				return fmt.Errorf("query: ref value %g outside [0,1]", v)
			}
		}
	}
	return nil
}
