package query

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestPage(t *testing.T) {
	cases := []struct {
		n, limit, offset, lo, hi int
	}{
		{n: 10, limit: 0, offset: 0, lo: 0, hi: 10},   // no pagination
		{n: 10, limit: 3, offset: 0, lo: 0, hi: 3},    // first page
		{n: 10, limit: 3, offset: 3, lo: 3, hi: 6},    // middle page
		{n: 10, limit: 3, offset: 9, lo: 9, hi: 10},   // short last page
		{n: 10, limit: 0, offset: 4, lo: 4, hi: 10},   // offset to the end
		{n: 10, limit: 3, offset: 10, lo: 10, hi: 10}, // offset at the end
		{n: 10, limit: 3, offset: 99, lo: 10, hi: 10}, // offset past the end
		{n: 0, limit: 5, offset: 0, lo: 0, hi: 0},     // empty result
		{n: 10, limit: 99, offset: 8, lo: 8, hi: 10},  // limit past the end
	}
	for _, c := range cases {
		q := Query{Limit: c.limit, Offset: c.offset}
		if lo, hi := q.Page(c.n); lo != c.lo || hi != c.hi {
			t.Errorf("Page(n=%d, limit=%d, offset=%d) = [%d,%d), want [%d,%d)",
				c.n, c.limit, c.offset, lo, hi, c.lo, c.hi)
		}
	}
}

func TestParsePagination(t *testing.T) {
	q, err := Parse("mine w=0 supp=0.01 conf=0.2 limit=5 offset=12")
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 5 || q.Offset != 12 {
		t.Fatalf("parsed limit=%d offset=%d", q.Limit, q.Offset)
	}
	// Every paginated query class accepts the keys.
	for _, line := range []string{
		"about w=0 supp=0.01 conf=0.2 items=milk limit=1",
		"traj w=2 supp=0.01 conf=0.2 in=0,1 offset=1",
		"rollup from=0 to=3 supp=0.01 conf=0.2 limit=2 offset=2",
		"export w=0 supp=0.01 conf=0.2 file=x.json limit=3",
	} {
		if _, err := Parse(line); err != nil {
			t.Errorf("Parse(%q): %v", line, err)
		}
	}

	bad := []string{
		"mine w=0 supp=0.01 conf=0.2 limit=-1",
		"mine w=0 supp=0.01 conf=0.2 offset=-7",
		"mine w=0 supp=0.01 conf=0.2 limit=abc",
		"mine w=0 supp=0.01 conf=0.2 limit=1.5",
		"mine w=0 supp=0.01 conf=0.2 offset=0x10",
		"mine w=0 supp=0.01 conf=0.2 limit=2147483648",            // > int32
		"mine w=0 supp=0.01 conf=0.2 offset=99999999999999999999", // > int64
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) accepted", line)
		} else if !strings.Contains(err.Error(), "must be an integer in [0,") {
			t.Errorf("Parse(%q): unexpected error %v", line, err)
		}
	}

	// The int32 boundary itself is valid.
	if _, err := Parse("mine w=0 supp=0.01 conf=0.2 limit=2147483647"); err != nil {
		t.Errorf("limit=MaxInt32 rejected: %v", err)
	}
}

// TestMineStreamDifferential pins the streaming encoder to the materialized
// encoding: a MineStream marshals to the exact bytes json.Marshal produces
// for the equivalent MineResult, StreamJSON is MarshalJSON plus json.Encoder
// framing, and chunked flushing cannot change the bytes.
func TestMineStreamDifferential(t *testing.T) {
	f := buildFramework(t)
	q := Query{Kind: Mine, Window: 1, MinSupp: 0.02, MinConf: 0.1}
	views, err := f.MineFilteredTraced(nil, q.Window, q.MinSupp, q.MinConf, q.MinLift)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) < 4 {
		t.Fatalf("need >= 4 rules for a meaningful differential, have %d", len(views))
	}

	for _, page := range []Query{
		q,
		{Kind: Mine, Window: 1, Limit: 2},
		{Kind: Mine, Window: 1, Limit: 2, Offset: 3},
		{Kind: Mine, Window: 1, Offset: len(views) + 5},
	} {
		page.MinSupp, page.MinConf = q.MinSupp, q.MinConf
		ms := NewMineStream(f, page, views)

		// Reference: the fully materialized result.
		lo, hi := page.Page(len(views))
		ref := MineResult{Window: page.Window, Total: len(views), Offset: lo, Count: hi - lo,
			Rules: make([]RuleJSON, 0, hi-lo)} // non-nil: empty pages serve [], not null
		for _, v := range views[lo:hi] {
			ref.Rules = append(ref.Rules, toRuleJSON(f, v))
		}
		want, err := json.Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}

		got, err := json.Marshal(ms)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("limit=%d offset=%d: Marshal diverges:\n got %s\nwant %s",
				page.Limit, page.Offset, got, want)
		}

		var streamed bytes.Buffer
		if err := ms.StreamJSON(&streamed); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(streamed.Bytes(), append(want, '\n')) {
			t.Fatalf("limit=%d offset=%d: StreamJSON diverges from Marshal+newline", page.Limit, page.Offset)
		}

		// A pathological chunk size (flush after every row) must not change
		// the bytes, only the write pattern.
		var chunked bytes.Buffer
		if err := ms.encode(&chunked, new(bytes.Buffer), 1); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(chunked.Bytes(), streamed.Bytes()) {
			t.Fatalf("limit=%d offset=%d: chunked encode diverges", page.Limit, page.Offset)
		}

		// Round trip: the stream is valid JSON with coherent bookkeeping.
		var rt MineResult
		if err := json.Unmarshal(got, &rt); err != nil {
			t.Fatal(err)
		}
		if rt.Total != len(views) || rt.Offset != lo || rt.Count != hi-lo || len(rt.Rules) != hi-lo {
			t.Fatalf("limit=%d offset=%d: round-trip envelope %+v", page.Limit, page.Offset, rt)
		}
	}
}
