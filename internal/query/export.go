package query

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"tara/internal/tara"
)

// RuleJSON is the JSON shape of one rule, shared by file export and the
// query-serving daemon's structured answers.
type RuleJSON struct {
	ID         uint32   `json:"id"`
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Support    float64  `json:"support"`
	Confidence float64  `json:"confidence"`
	Lift       float64  `json:"lift"`
	CountXY    uint32   `json:"countXY"`
	CountX     uint32   `json:"countX"`
	CountY     uint32   `json:"countY"`
	N          uint32   `json:"n"`
}

func toRuleJSON(f *tara.Framework, v tara.RuleView) RuleJSON {
	var r RuleJSON
	r.fill(f, v)
	return r
}

// fill overwrites r in place from v, reusing r's name slices when their
// capacity suffices — the zero-alloc row conversion the streaming encoder
// leans on.
func (r *RuleJSON) fill(f *tara.Framework, v tara.RuleView) {
	names := func(dst []string, items []uint32) []string {
		dst = dst[:0]
		for _, it := range items {
			dst = append(dst, f.ItemDict().Name(it))
		}
		return dst
	}
	r.ID = uint32(v.ID)
	r.Antecedent = names(r.Antecedent, v.Rule.Ant)
	r.Consequent = names(r.Consequent, v.Rule.Cons)
	r.Support = v.Support()
	r.Confidence = v.Confidence()
	r.Lift = v.Lift()
	r.CountXY = v.Stats.CountXY
	r.CountX = v.Stats.CountX
	r.CountY = v.Stats.CountY
	r.N = v.Stats.N
}

// AppendRuleJSON materializes views into dst, growing it as needed, and
// returns the extended slice — the append-style counterpart of the per-rule
// conversion, so callers serving repeated answers can reuse one buffer
// (dst[:0]) instead of allocating a fresh row slice per request.
func AppendRuleJSON(dst []RuleJSON, f *tara.Framework, views []tara.RuleView) []RuleJSON {
	if n := len(dst) + len(views); cap(dst) < n {
		grown := make([]RuleJSON, len(dst), n)
		copy(grown, dst)
		dst = grown
	}
	for _, v := range views {
		dst = append(dst, toRuleJSON(f, v))
	}
	return dst
}

// execExport writes the window's qualifying ruleset to q.File as CSV or
// JSON, reporting the row count to the interactive writer.
func execExport(w io.Writer, f *tara.Framework, q Query) error {
	views, err := f.Mine(q.Window, q.MinSupp, q.MinConf)
	if err != nil {
		return err
	}
	total := len(views)
	lo, hi := q.Page(total)
	views = views[lo:hi]
	out, err := os.Create(q.File)
	if err != nil {
		return err
	}
	defer out.Close()
	switch q.Format {
	case "json":
		rows := AppendRuleJSON(make([]RuleJSON, 0, len(views)), f, views)
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
	default: // csv
		cw := csv.NewWriter(out)
		if err := cw.Write([]string{"id", "antecedent", "consequent", "support", "confidence", "lift", "countXY", "countX", "countY", "n"}); err != nil {
			return err
		}
		for _, v := range views {
			e := toRuleJSON(f, v)
			rec := []string{
				strconv.FormatUint(uint64(e.ID), 10),
				joinNames(e.Antecedent), joinNames(e.Consequent),
				strconv.FormatFloat(e.Support, 'g', -1, 64),
				strconv.FormatFloat(e.Confidence, 'g', -1, 64),
				strconv.FormatFloat(e.Lift, 'g', -1, 64),
				strconv.FormatUint(uint64(e.CountXY), 10),
				strconv.FormatUint(uint64(e.CountX), 10),
				strconv.FormatUint(uint64(e.CountY), 10),
				strconv.FormatUint(uint64(e.N), 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	if err := out.Close(); err != nil {
		return err
	}
	if len(views) != total {
		fmt.Fprintf(w, "exported %d of %d rules from window %d to %s (%s)\n", len(views), total, q.Window, q.File, q.Format)
	} else {
		fmt.Fprintf(w, "exported %d rules from window %d to %s (%s)\n", len(views), q.Window, q.File, q.Format)
	}
	return nil
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += n
	}
	return out
}
