package query

import "testing"

// FuzzParse checks the query parser never panics and that parsed queries
// carry the requested kind.
func FuzzParse(f *testing.F) {
	f.Add("mine w=0 supp=0.01 conf=0.2")
	f.Add("compare w=0,1 a=0.1,0.2 b=0.3,0.4")
	f.Add("rank from=0 to=3 supp=1e-3 conf=.2 by=coverage k=5")
	f.Add("mine w= supp=NaN conf=+Inf")
	f.Add("about w=0 supp=0 conf=0 items=,")
	f.Fuzz(func(t *testing.T, line string) {
		_, _ = Parse(line)
	})
}
