package archive

import (
	"bytes"
	"encoding/binary"
	"testing"

	"tara/internal/rules"
)

func openMappedCopy(t *testing.T, a *Archive) *Archive {
	t.Helper()
	m, err := OpenMapped(a.AppendMapped(nil))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// sameArchive compares two archives through their full query surface.
func sameArchive(t *testing.T, want, got *Archive) {
	t.Helper()
	if want.Windows() != got.Windows() {
		t.Fatalf("windows: %d vs %d", got.Windows(), want.Windows())
	}
	if want.NumEntries() != got.NumEntries() {
		t.Fatalf("entries: %d vs %d", got.NumEntries(), want.NumEntries())
	}
	if want.NumRules() != got.NumRules() {
		t.Fatalf("rules: %d vs %d", got.NumRules(), want.NumRules())
	}
	wr, gr := want.Rules(), got.Rules()
	if len(wr) != len(gr) {
		t.Fatalf("rule lists: %d vs %d", len(gr), len(wr))
	}
	sortIDs(wr)
	sortIDs(gr)
	for i := range wr {
		if wr[i] != gr[i] {
			t.Fatalf("rule %d: %d vs %d", i, gr[i], wr[i])
		}
		ws, gs := want.Series(wr[i]), got.Series(gr[i])
		if len(ws) != len(gs) {
			t.Fatalf("rule %d series: %d vs %d entries", wr[i], len(gs), len(ws))
		}
		for j := range ws {
			if ws[j] != gs[j] {
				t.Fatalf("rule %d entry %d: %+v vs %+v", wr[i], j, gs[j], ws[j])
			}
		}
	}
}

func TestOpenMappedRoundTrip(t *testing.T) {
	a := buildRandomArchive(7, 10, 50)
	m := openMappedCopy(t, a)
	if !m.Mapped() {
		t.Fatal("opened archive not mapped")
	}
	sameArchive(t, a, m)
}

func TestMappedWriteToByteIdentical(t *testing.T) {
	a := buildRandomArchive(3, 8, 30)
	m := openMappedCopy(t, a)
	var wantBuf, gotBuf bytes.Buffer
	if _, err := a.WriteTo(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteTo(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatal("legacy stream from mapped archive differs from heap original")
	}
}

func TestMappedAppendPromotes(t *testing.T) {
	a := buildRandomArchive(5, 6, 25)
	m := openMappedCopy(t, a)

	// Appending a window transparently promotes the mapped payloads to heap
	// copies; both archives must then agree entry for entry and byte for
	// byte on the legacy stream.
	for _, ar := range []*Archive{a, m} {
		ar.BeginWindow(123)
		if err := ar.Append(2, 9, 18, 27); err != nil {
			t.Fatal(err)
		}
		if err := ar.Append(100, 1, 2, 3); err != nil {
			t.Fatal(err)
		}
	}
	if m.Mapped() {
		t.Fatal("archive still mapped after append")
	}
	sameArchive(t, a, m)
	var wantBuf, gotBuf bytes.Buffer
	a.WriteTo(&wantBuf)
	m.WriteTo(&gotBuf)
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatal("legacy stream differs after promote")
	}
}

func TestMappedAppendMappedStable(t *testing.T) {
	// Re-emitting the mapped layout from a mapped archive is byte-identical:
	// table and payload pass through verbatim.
	a := buildRandomArchive(11, 5, 20)
	img := a.AppendMapped(nil)
	m, err := OpenMapped(img)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, m.AppendMapped(nil)) {
		t.Fatal("mapped layout not stable across reopen")
	}
}

func TestOpenMappedRejects(t *testing.T) {
	a := buildRandomArchive(9, 4, 12)
	img := a.AppendMapped(nil)

	// Any truncation fails.
	for n := 0; n < len(img); n += 3 {
		if _, err := OpenMapped(img[:n:n]); err == nil {
			t.Fatalf("truncation to %d of %d accepted", n, len(img))
		}
	}

	corrupt := func(name string, mutate func([]byte)) {
		b := append([]byte(nil), img...)
		mutate(b)
		if _, err := OpenMapped(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	corrupt("huge window count", func(b []byte) {
		binary.LittleEndian.PutUint32(b, 1<<31)
	})
	wc := binary.LittleEndian.Uint32(img)
	seriesCountOff := 4 + 4*int(wc)
	corrupt("huge series count", func(b []byte) {
		binary.LittleEndian.PutUint32(b[seriesCountOff:], 1<<31)
	})
	corrupt("descending ids", func(b []byte) {
		// First table entry id above the second's.
		binary.LittleEndian.PutUint32(b[seriesCountOff+4:], 1<<30)
	})
	corrupt("entry count zero", func(b []byte) {
		binary.LittleEndian.PutUint32(b[seriesCountOff+4+4:], 0)
	})
	corrupt("offset gap", func(b []byte) {
		// Second entry's offset bumped: payloads must be contiguous.
		binary.LittleEndian.PutUint64(b[seriesCountOff+4+mappedEntrySize+8:], 1<<40)
	})
	corrupt("payload bytes flipped", func(b []byte) {
		// Flip the final payload byte: the strict decode walk must notice
		// (entry count, window bounds or append-state recovery breaks).
		b[len(b)-1] ^= 0xFF
	})
	b := append(append([]byte(nil), img...), 0xEE)
	if _, err := OpenMapped(b); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestOpenMappedEmptyArchive(t *testing.T) {
	a := New()
	m := openMappedCopy(t, a)
	if m.Windows() != 0 || m.NumRules() != 0 {
		t.Fatalf("empty archive reopened as %d windows, %d rules", m.Windows(), m.NumRules())
	}
	// An empty mapped archive accepts its first window.
	m.BeginWindow(10)
	if err := m.Append(1, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if m.NumRules() != 1 {
		t.Fatalf("rules after first append = %d", m.NumRules())
	}
}

func TestMappedTrajectoryAndRollUp(t *testing.T) {
	a := buildRandomArchive(13, 6, 10)
	m := openMappedCopy(t, a)
	for id := 0; id < 10; id++ {
		wt, werr := a.Trajectory(rules.ID(id), 0, a.Windows()-1)
		gt, gerr := m.Trajectory(rules.ID(id), 0, m.Windows()-1)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("rule %d: trajectory errors diverge: %v vs %v", id, gerr, werr)
		}
		if werr != nil {
			continue
		}
		if len(wt.Entries) != len(gt.Entries) {
			t.Fatalf("rule %d: %d vs %d entries", id, len(gt.Entries), len(wt.Entries))
		}
		for i := range wt.Entries {
			if wt.Entries[i] != gt.Entries[i] {
				t.Fatalf("rule %d entry %d differs", id, i)
			}
		}
		ws, wn, werr := a.RollUp(rules.ID(id), 0, a.Windows()-1)
		gs, gn, gerr := m.RollUp(rules.ID(id), 0, m.Windows()-1)
		if (werr == nil) != (gerr == nil) || ws != gs || wn != gn {
			t.Fatalf("rule %d: roll-up differs: %+v/%d vs %+v/%d", id, gs, gn, ws, wn)
		}
	}
}
