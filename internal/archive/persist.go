package archive

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"tara/internal/rules"
)

// Serialization format (all integers as uvarints unless noted):
//
//	magic "TARC1\n"
//	windowCount, then windowCount window cardinalities
//	seriesCount, then per series:
//	    ruleID, entryCount,
//	    prevW(+1), prevXY, prevX, prevY  (append state)
//	    bufLen, raw encoded payload
//
// The payload is stored verbatim — the on-disk format IS the in-memory
// compressed encoding, so saving and loading are O(bytes).

const archiveMagic = "TARC1\n"

// WriteTo serializes the archive. It implements io.WriterTo.
func (a *Archive) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	writeUvarint := func(u uint64) error {
		k := binary.PutUvarint(tmp[:], u)
		return write(tmp[:k])
	}
	if err := write([]byte(archiveMagic)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(a.windowN))); err != nil {
		return n, err
	}
	for _, wn := range a.windowN {
		if err := writeUvarint(uint64(wn)); err != nil {
			return n, err
		}
	}
	if a.mapped != nil {
		// Mapped archives emit the same legacy stream byte for byte; the
		// append state the header wants is recovered from each payload.
		if err := a.writeToMapped(write, writeUvarint); err != nil {
			return n, err
		}
		return n, bw.Flush()
	}
	if err := writeUvarint(uint64(len(a.entries))); err != nil {
		return n, err
	}
	// Deterministic order: ascending rule id.
	ids := a.Rules()
	sortIDs(ids)
	for _, id := range ids {
		s := a.entries[id]
		for _, u := range []uint64{
			uint64(id), uint64(s.n),
			uint64(s.prevW + 1), uint64(s.prevXY), uint64(s.prevX), uint64(s.prevY),
			uint64(len(s.buf)),
		} {
			if err := writeUvarint(u); err != nil {
				return n, err
			}
		}
		if err := write(s.buf); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadArchive deserializes an archive written by WriteTo.
func ReadArchive(r io.Reader) (*Archive, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(archiveMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("archive: reading magic: %w", err)
	}
	if string(magic) != archiveMagic {
		return nil, fmt.Errorf("archive: bad magic %q", magic)
	}
	readUvarint := func(what string) (uint64, error) {
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("archive: reading %s: %w", what, err)
		}
		return u, nil
	}
	a := New()
	wc, err := readUvarint("window count")
	if err != nil {
		return nil, err
	}
	if wc > 1<<32 {
		return nil, fmt.Errorf("archive: implausible window count %d", wc)
	}
	for i := uint64(0); i < wc; i++ {
		wn, err := readUvarint("window cardinality")
		if err != nil {
			return nil, err
		}
		if wn > math.MaxUint32 {
			return nil, fmt.Errorf("archive: window %d cardinality %d exceeds uint32", i, wn)
		}
		a.windowN = append(a.windowN, uint32(wn))
	}
	sc, err := readUvarint("series count")
	if err != nil {
		return nil, err
	}
	if sc > 1<<32 {
		return nil, fmt.Errorf("archive: implausible series count %d", sc)
	}
	for i := uint64(0); i < sc; i++ {
		id, err := readUvarint("rule id")
		if err != nil {
			return nil, err
		}
		if id > math.MaxUint32 {
			return nil, fmt.Errorf("archive: rule id %d exceeds uint32", id)
		}
		if _, dup := a.entries[rules.ID(id)]; dup {
			return nil, fmt.Errorf("archive: duplicate series for rule %d", id)
		}
		entries, err := readUvarint("entry count")
		if err != nil {
			return nil, err
		}
		prevW1, err := readUvarint("prevW")
		if err != nil {
			return nil, err
		}
		prevXY, err := readUvarint("prevXY")
		if err != nil {
			return nil, err
		}
		prevX, err := readUvarint("prevX")
		if err != nil {
			return nil, err
		}
		prevY, err := readUvarint("prevY")
		if err != nil {
			return nil, err
		}
		// The append state must reference a recorded window; note the
		// comparison is on the raw uvarint, so a huge value cannot wrap to a
		// plausible-looking negative prevW via int conversion.
		if prevW1 > uint64(len(a.windowN)) {
			return nil, fmt.Errorf("archive: series %d references window %d beyond %d", id, int64(prevW1)-1, len(a.windowN))
		}
		if prevXY > math.MaxUint32 || prevX > math.MaxUint32 || prevY > math.MaxUint32 {
			return nil, fmt.Errorf("archive: series %d append state exceeds uint32", id)
		}
		bufLen, err := readUvarint("payload length")
		if err != nil {
			return nil, err
		}
		// Every encoded entry takes at least four varint bytes, so an entry
		// count that the payload cannot possibly hold is rejected before any
		// allocation sized from it.
		if entries > bufLen/4 {
			return nil, fmt.Errorf("archive: series %d claims %d entries in a %d-byte payload", id, entries, bufLen)
		}
		if entries == 0 {
			return nil, fmt.Errorf("archive: series %d has no entries", id)
		}
		buf, err := readN(br, bufLen)
		if err != nil {
			return nil, fmt.Errorf("archive: reading payload: %w", err)
		}
		s := &series{
			buf:    buf,
			prevW:  int(prevW1) - 1,
			prevXY: uint32(prevXY),
			prevX:  uint32(prevX),
			prevY:  uint32(prevY),
			n:      int(entries),
		}
		if err := validateSeries(id, s, len(a.windowN)); err != nil {
			return nil, err
		}
		a.entries[rules.ID(id)] = s
		a.total += s.n
	}
	return a, nil
}

// validateSeries fully decodes a deserialized payload and cross-checks it
// against the series header: the entry count must match, every window must
// exist, and the final decoded state must equal the recorded append state
// (so future Appends continue the encoding consistently). Accepted series
// are therefore safe for every decoding path — Series, Trajectory, roll-ups
// — which would otherwise loop, panic or index out of range on adversarial
// payload bytes.
func validateSeries(id uint64, s *series, numWindows int) error {
	count := 0
	lastW := -1
	var lastXY, lastX, lastY uint32
	err := decodePayload(s.buf, func(e Entry) error {
		if e.Window >= numWindows {
			return fmt.Errorf("archive: series %d entry references window %d beyond %d", id, e.Window, numWindows)
		}
		count++
		lastW, lastXY, lastX, lastY = e.Window, e.CountXY, e.CountX, e.CountY
		return nil
	})
	if err != nil {
		return fmt.Errorf("archive: series %d: %w", id, err)
	}
	if count != s.n {
		return fmt.Errorf("archive: series %d payload holds %d entries, header says %d", id, count, s.n)
	}
	if lastW != s.prevW || lastXY != s.prevXY || lastX != s.prevX || lastY != s.prevY {
		return fmt.Errorf("archive: series %d append state (w=%d, %d/%d/%d) disagrees with payload (w=%d, %d/%d/%d)",
			id, s.prevW, s.prevXY, s.prevX, s.prevY, lastW, lastXY, lastX, lastY)
	}
	return nil
}

// readN reads exactly n bytes, growing the buffer chunk-wise so that a
// corrupt length field fails at end-of-stream instead of pre-allocating an
// attacker-chosen amount of memory.
func readN(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	out := make([]byte, 0, min64(n, chunk))
	for uint64(len(out)) < n {
		c := n - uint64(len(out))
		if c > chunk {
			c = chunk
		}
		start := len(out)
		out = append(out, make([]byte, c)...)
		if _, err := io.ReadFull(r, out[start:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func sortIDs(ids []rules.ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
