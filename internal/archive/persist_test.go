package archive

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"tara/internal/rules"
)

func buildRandomArchive(seed int64, windows, rulesN int) *Archive {
	r := rand.New(rand.NewSource(seed))
	a := New()
	for w := 0; w < windows; w++ {
		a.BeginWindow(uint32(50 + r.Intn(200)))
		for id := 0; id < rulesN; id++ {
			if r.Intn(3) == 0 {
				continue
			}
			xy := uint32(r.Intn(1000))
			a.Append(rules.ID(id), xy, xy+uint32(r.Intn(100)), uint32(r.Intn(1000)))
		}
	}
	return a
}

func TestArchiveWriteReadRoundTrip(t *testing.T) {
	a := buildRandomArchive(1, 12, 40)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Windows() != a.Windows() || b.NumEntries() != a.NumEntries() {
		t.Fatalf("shape: %d/%d vs %d/%d", b.Windows(), b.NumEntries(), a.Windows(), a.NumEntries())
	}
	for _, id := range a.Rules() {
		as, bs := a.Series(id), b.Series(id)
		if len(as) != len(bs) {
			t.Fatalf("rule %d: %d vs %d entries", id, len(bs), len(as))
		}
		for i := range as {
			if as[i] != bs[i] {
				t.Fatalf("rule %d entry %d: %+v vs %+v", id, i, bs[i], as[i])
			}
		}
	}
}

func TestArchiveReloadedStillAppendable(t *testing.T) {
	a := New()
	a.BeginWindow(100)
	a.Append(1, 10, 20, 30)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b.BeginWindow(200)
	if err := b.Append(1, 15, 25, 35); err != nil {
		t.Fatal(err)
	}
	got := b.Series(1)
	if len(got) != 2 || got[1].Window != 1 || got[1].CountXY != 15 {
		t.Fatalf("Series after reload+append = %v", got)
	}
	// Double-append within the restored window is still rejected.
	if err := b.Append(1, 1, 1, 1); err == nil {
		t.Error("double append accepted after reload")
	}
}

func TestReadArchiveErrors(t *testing.T) {
	if _, err := ReadArchive(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadArchive(strings.NewReader("XXXXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	a := buildRandomArchive(2, 4, 5)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadArchive(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestArchiveSaveDeterministic(t *testing.T) {
	a := buildRandomArchive(3, 6, 20)
	var x, y bytes.Buffer
	if _, err := a.WriteTo(&x); err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteTo(&y); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x.Bytes(), y.Bytes()) {
		t.Error("WriteTo not deterministic")
	}
}

func TestPropertyArchivePersistRoundTrip(t *testing.T) {
	for seed := int64(10); seed < 20; seed++ {
		a := buildRandomArchive(seed, 1+int(seed%7), 1+int(seed%13))
		var buf bytes.Buffer
		if _, err := a.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		b, err := ReadArchive(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if b.SizeBytes() != a.SizeBytes() {
			t.Errorf("seed %d: size %d vs %d", seed, b.SizeBytes(), a.SizeBytes())
		}
		for w := 0; w < a.Windows(); w++ {
			an, _ := a.WindowN(w)
			bn, _ := b.WindowN(w)
			if an != bn {
				t.Errorf("seed %d window %d: N %d vs %d", seed, w, bn, an)
			}
		}
	}
}
