package archive

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateFuzzCorpus materializes the adversarial inputs as seed files
// under testdata/fuzz/FuzzReadArchive, in the standard Go fuzzing corpus
// encoding, so `go test -fuzz=FuzzReadArchive` starts from the known-bad
// streams even when the in-test f.Add seeds change.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") == "" {
		t.Skip("set GEN_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReadArchive")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, in := range adversarialInputs() {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", in)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
