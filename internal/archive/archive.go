// Package archive implements the TAR Archive — the temporal association rule
// archive of the TARA knowledge base. For every rule it compactly encodes
// the per-window occurrence counts from which all parameter values (support,
// confidence, lift) across time derive, so that "the parameter values of a
// particular association w.r.t. various fine granularities can be quickly
// computed without processing the raw data again" (Section 2.1.4).
//
// Encoding: per rule, a byte stream of (window-gap, ΔcountXY, ΔcountX,
// ΔcountY) tuples, gaps as uvarints and deltas as zigzag varints. Window
// cardinalities |D_w| are stored once, globally. Integer counts make time
// roll-up exact: counts add across windows while float measures do not.
package archive

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"tara/internal/rules"
	"tara/internal/stats"
)

// Entry is one decoded archive record: the rule's occurrence counts in one
// window.
type Entry struct {
	Window  int
	CountXY uint32
	CountX  uint32
	CountY  uint32
}

// series is the per-rule append state plus encoded payload.
type series struct {
	buf    []byte
	prevW  int
	prevXY uint32
	prevX  uint32
	prevY  uint32
	n      int // number of encoded entries
}

// Archive is the TAR Archive. Build it window by window with BeginWindow +
// Append; afterwards it is safe for concurrent readers.
//
// An archive restored with OpenMapped serves every read path directly from
// the mapped block (see mapped.go) instead of the entries map; the first
// Append promotes the mapped block to heap copies so mutation never touches
// file-backed memory.
type Archive struct {
	windowN []uint32
	entries map[rules.ID]*series
	total   int
	mapped  *mappedSeries // non-nil while reads are served from a mapped block
}

// New returns an empty archive.
func New() *Archive {
	return &Archive{entries: map[rules.ID]*series{}}
}

// BeginWindow opens the next window, recording its transaction count, and
// returns the window index. Windows are strictly sequential.
func (a *Archive) BeginWindow(n uint32) int {
	a.windowN = append(a.windowN, n)
	return len(a.windowN) - 1
}

// Windows returns the number of windows recorded so far.
func (a *Archive) Windows() int { return len(a.windowN) }

// WindowN returns the transaction count |D_w| of window w.
func (a *Archive) WindowN(w int) (uint32, error) {
	if w < 0 || w >= len(a.windowN) {
		return 0, fmt.Errorf("archive: window %d out of range [0,%d)", w, len(a.windowN))
	}
	return a.windowN[w], nil
}

// Append records the counts of rule id in the current (latest) window. Each
// rule may be appended at most once per window.
func (a *Archive) Append(id rules.ID, countXY, countX, countY uint32) error {
	if len(a.windowN) == 0 {
		return fmt.Errorf("archive: Append before BeginWindow")
	}
	if err := a.Promote(); err != nil {
		return err
	}
	w := len(a.windowN) - 1
	s := a.entries[id]
	if s == nil {
		s = &series{prevW: -1}
		a.entries[id] = s
	}
	if s.prevW >= w {
		return fmt.Errorf("archive: rule %d already appended in window %d", id, w)
	}
	var tmp [binary.MaxVarintLen64]byte
	put := func(u uint64) {
		n := binary.PutUvarint(tmp[:], u)
		s.buf = append(s.buf, tmp[:n]...)
	}
	put(uint64(w - s.prevW)) // gap >= 1
	put(zigzag(int64(countXY) - int64(s.prevXY)))
	put(zigzag(int64(countX) - int64(s.prevX)))
	put(zigzag(int64(countY) - int64(s.prevY)))
	s.prevW, s.prevXY, s.prevX, s.prevY = w, countXY, countX, countY
	s.n++
	a.total++
	return nil
}

// Record is one rule's occurrence counts for a batched window append.
type Record struct {
	ID                      rules.ID
	CountXY, CountX, CountY uint32
}

// AppendWindow opens the next window and appends every record to it,
// returning the archive's compressed byte growth. It is exactly equivalent
// to BeginWindow followed by Append per record in slice order — the ordered
// committer of the parallel build uses it so one window lands as a single
// call, and the byte growth feeds the per-window build telemetry.
func (a *Archive) AppendWindow(n uint32, recs []Record) (int, error) {
	before := a.SizeBytes()
	a.BeginWindow(n)
	for _, r := range recs {
		if err := a.Append(r.ID, r.CountXY, r.CountX, r.CountY); err != nil {
			return a.SizeBytes() - before, err
		}
	}
	return a.SizeBytes() - before, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// decodePayload walks an encoded series payload, calling fn for every
// decoded entry. It fails on structural corruption — truncated or overlong
// varints, a zero window gap, or running counts escaping the uint32 range —
// none of which the in-memory encoder produces, but all of which a corrupt
// or adversarial persisted payload can contain. Without these checks a bad
// payload could loop forever (a truncated varint decodes as zero bytes
// consumed) or panic (an overlong varint yields a negative byte count).
func decodePayload(buf []byte, fn func(Entry) error) error {
	w := -1
	var xy, x, y int64
	for len(buf) > 0 {
		var fields [4]uint64
		for i := range fields {
			v, n := binary.Uvarint(buf)
			if n <= 0 {
				return fmt.Errorf("archive: malformed varint in series payload")
			}
			buf = buf[n:]
			fields[i] = v
		}
		gap := fields[0]
		if gap == 0 || gap > uint64(math.MaxInt32) {
			return fmt.Errorf("archive: invalid window gap %d", gap)
		}
		w += int(gap)
		xy += unzigzag(fields[1])
		x += unzigzag(fields[2])
		y += unzigzag(fields[3])
		if xy < 0 || xy > math.MaxUint32 || x < 0 || x > math.MaxUint32 || y < 0 || y > math.MaxUint32 {
			return fmt.Errorf("archive: counts out of uint32 range in window %d", w)
		}
		if err := fn(Entry{Window: w, CountXY: uint32(xy), CountX: uint32(x), CountY: uint32(y)}); err != nil {
			return err
		}
	}
	return nil
}

// Series decodes the full per-window record list of rule id, in window
// order. A nil slice means the rule was never archived. Payloads built by
// Append are always well-formed; should the backing buffer be corrupted
// anyway, decoding stops at the corruption instead of panicking.
func (a *Archive) Series(id rules.ID) []Entry {
	buf, n, ok := a.seriesPayload(id)
	if !ok {
		return nil
	}
	out := make([]Entry, 0, n)
	_ = decodePayload(buf, func(e Entry) error {
		out = append(out, e)
		return nil
	})
	return out
}

// Range decodes the records of rule id with from <= Window <= to.
func (a *Archive) Range(id rules.ID, from, to int) []Entry {
	all := a.Series(id)
	out := all[:0:0]
	for _, e := range all {
		if e.Window >= from && e.Window <= to {
			out = append(out, e)
		}
	}
	return out
}

// StatsAt returns the rule's full statistics (including the window's N) in
// window w. ok is false if the rule was not archived in that window.
func (a *Archive) StatsAt(id rules.ID, w int) (rules.Stats, bool) {
	if w < 0 || w >= len(a.windowN) {
		return rules.Stats{}, false
	}
	for _, e := range a.Series(id) {
		if e.Window == w {
			return rules.Stats{CountXY: e.CountXY, CountX: e.CountX, CountY: e.CountY, N: a.windowN[w]}, true
		}
		if e.Window > w {
			break
		}
	}
	return rules.Stats{}, false
}

// RollUp sums the rule's counts over windows [from, to], yielding the exact
// statistics of the coarser period restricted to windows where the rule was
// archived. Present reports in how many of the period's windows the rule
// appeared; callers use it with the generation threshold to bound the
// roll-up approximation error (see tara.Explorer.RollUp).
func (a *Archive) RollUp(id rules.ID, from, to int) (s rules.Stats, present int, err error) {
	if from < 0 || to >= len(a.windowN) || from > to {
		return rules.Stats{}, 0, fmt.Errorf("archive: roll-up range [%d,%d] out of bounds (have %d windows)", from, to, len(a.windowN))
	}
	for w := from; w <= to; w++ {
		s.N += a.windowN[w]
	}
	for _, e := range a.Range(id, from, to) {
		s.CountXY += e.CountXY
		s.CountX += e.CountX
		s.CountY += e.CountY
		present++
	}
	return s, present, nil
}

// WindowCardinalities returns a copy of the per-window transaction counts
// |D_w|, indexed by window. Columnar consumers take this once per snapshot
// instead of calling WindowN per (rule, window) probe.
func (a *Archive) WindowCardinalities() []uint32 {
	out := make([]uint32, len(a.windowN))
	copy(out, a.windowN)
	return out
}

// DecodeAll walks every archived series in ascending rule-id order, calling
// fn once per decoded (rule, window) record. Each payload is decoded exactly
// once, directly off its backing bytes — for a mapped archive that is the
// file-backed block, with no heap promotion and no []Entry materialization.
// This is the batch path the columnar trajectory snapshot is built from; a
// structurally corrupt payload stops the walk with the decoder's error.
func (a *Archive) DecodeAll(fn func(id rules.ID, e Entry) error) error {
	if a.mapped != nil {
		for i := 0; i < a.mapped.count(); i++ {
			id, _, _, _ := a.mapped.entry(i)
			buf, _ := a.mapped.seriesAt(i)
			if err := decodePayload(buf, func(e Entry) error {
				return fn(id, e)
			}); err != nil {
				return fmt.Errorf("archive: rule %d: %w", id, err)
			}
		}
		return nil
	}
	ids := make([]rules.ID, 0, len(a.entries))
	for id := range a.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := decodePayload(a.entries[id].buf, func(e Entry) error {
			return fn(id, e)
		}); err != nil {
			return fmt.Errorf("archive: rule %d: %w", id, err)
		}
	}
	return nil
}

// StatsIn fills the rule's statistics for each requested window in a single
// decode pass over the series payload, writing into the caller's slices
// (both len(windows) long): out[j] and present[j] describe windows[j].
// Unlike per-window StatsAt probes — which re-decode the full series once
// per window — the payload is walked exactly once, as a view over the
// backing bytes (mapped or heap) with no intermediate []Entry allocation.
// Out-of-range windows are reported absent.
func (a *Archive) StatsIn(id rules.ID, windows []int, out []rules.Stats, present []bool) {
	for j := range present {
		present[j] = false
	}
	buf, _, ok := a.seriesPayload(id)
	if !ok {
		return
	}
	_ = decodePayload(buf, func(e Entry) error {
		if e.Window >= len(a.windowN) {
			return fmt.Errorf("archive: window %d beyond cardinality table", e.Window)
		}
		for j, w := range windows {
			if w == e.Window {
				out[j] = rules.Stats{CountXY: e.CountXY, CountX: e.CountX, CountY: e.CountY, N: a.windowN[w]}
				present[j] = true
			}
		}
		return nil
	})
}

// Rules returns the ids of all archived rules in unspecified order (mapped
// archives happen to yield ascending ids).
func (a *Archive) Rules() []rules.ID {
	if a.mapped != nil {
		out := make([]rules.ID, a.mapped.count())
		for i := range out {
			out[i], _, _, _ = a.mapped.entry(i)
		}
		return out
	}
	out := make([]rules.ID, 0, len(a.entries))
	for id := range a.entries {
		out = append(out, id)
	}
	return out
}

// NumRules returns the number of distinct archived rules.
func (a *Archive) NumRules() int {
	if a.mapped != nil {
		return a.mapped.count()
	}
	return len(a.entries)
}

// NumEntries returns the total number of (rule, window) records.
func (a *Archive) NumEntries() int { return a.total }

// SizeBytes returns the compressed payload size: the encoded byte streams
// plus the window cardinality table. Per-rule bookkeeping structs are
// excluded; they are O(rules) regardless of encoding.
func (a *Archive) SizeBytes() int {
	n := 4 * len(a.windowN)
	if a.mapped != nil {
		return n + len(a.mapped.payload)
	}
	for _, s := range a.entries {
		n += len(s.buf)
	}
	return n
}

// UncompressedBytes returns what the same information would occupy stored
// naively: 16 bytes per record (window, countXY, countX, countY as uint32),
// the comparison baseline of Figure 12.
func (a *Archive) UncompressedBytes() int {
	return 16*a.total + 4*len(a.windowN)
}

// Telemetry is a point-in-time storage snapshot of the archive, the offline
// build accounting surfaced by tara's build output and tarad startup logs.
type Telemetry struct {
	// Entries is the number of (rule, window) records archived.
	Entries int `json:"entries"`
	// Rules is the number of distinct rules with at least one record.
	Rules int `json:"rules"`
	// Windows is the number of windows begun.
	Windows int `json:"windows"`
	// Bytes is the compressed payload size (SizeBytes).
	Bytes int `json:"bytes"`
	// UncompressedBytes is the naive 16-bytes-per-record baseline.
	UncompressedBytes int `json:"uncompressed_bytes"`
	// CompressionRatio is UncompressedBytes/Bytes (0 when empty).
	CompressionRatio float64 `json:"compression_ratio"`
}

// Telemetry summarizes the archive's storage state.
func (a *Archive) Telemetry() Telemetry {
	t := Telemetry{
		Entries:           a.total,
		Rules:             a.NumRules(),
		Windows:           len(a.windowN),
		Bytes:             a.SizeBytes(),
		UncompressedBytes: a.UncompressedBytes(),
	}
	if t.Bytes > 0 {
		t.CompressionRatio = float64(t.UncompressedBytes) / float64(t.Bytes)
	}
	return t
}

// Trajectory is a rule's decoded path through the evolving parameter space
// over a window range (Definition 10), with absent windows materialized as
// zero support so evolution measures see the full time axis.
type Trajectory struct {
	From, To int
	Entries  []Entry
	windowN  []uint32
}

// Trajectory decodes rule id over [from, to].
func (a *Archive) Trajectory(id rules.ID, from, to int) (Trajectory, error) {
	if from < 0 || to >= len(a.windowN) || from > to {
		return Trajectory{}, fmt.Errorf("archive: trajectory range [%d,%d] out of bounds (have %d windows)", from, to, len(a.windowN))
	}
	return Trajectory{
		From:    from,
		To:      to,
		Entries: a.Range(id, from, to),
		windowN: a.windowN,
	}, nil
}

// SupportSeries returns the rule's support in every window of the range,
// with 0 for windows where the rule is absent.
func (t Trajectory) SupportSeries() []float64 {
	out := make([]float64, t.To-t.From+1)
	for _, e := range t.Entries {
		if n := t.windowN[e.Window]; n > 0 {
			out[e.Window-t.From] = float64(e.CountXY) / float64(n)
		}
	}
	return out
}

// ConfidenceSeries returns per-window confidence, 0 where absent.
func (t Trajectory) ConfidenceSeries() []float64 {
	out := make([]float64, t.To-t.From+1)
	for _, e := range t.Entries {
		if e.CountX > 0 {
			out[e.Window-t.From] = float64(e.CountXY) / float64(e.CountX)
		}
	}
	return out
}

// Coverage is the fraction of the range's windows in which the rule was
// archived (the coverage measure of [95] referenced by Definition 10).
func (t Trajectory) Coverage() float64 {
	return float64(len(t.Entries)) / float64(t.To-t.From+1)
}

// Stability is the fraction of adjacent window pairs whose support changed
// by at most eps (the stability notion of [67]): 1 means perfectly stable.
// Ranges with a single window are perfectly stable by convention.
func (t Trajectory) Stability(eps float64) float64 {
	s := t.SupportSeries()
	if len(s) < 2 {
		return 1
	}
	stable := 0
	for i := 1; i < len(s); i++ {
		if math.Abs(s[i]-s[i-1]) <= eps {
			stable++
		}
	}
	return float64(stable) / float64(len(s)-1)
}

// SupportStdDev is the standard deviation of the support series, a summary
// of how much the rule's prominence fluctuates over the range.
func (t Trajectory) SupportStdDev() float64 {
	return stats.StdDev(t.SupportSeries())
}

// Evolution computes coverage, stability and support standard deviation in
// one pass over a single materialized support series. Calling Coverage,
// Stability and SupportStdDev separately rebuilds the series (and re-derives
// its mean) per measure; ranking loops that need all three per rule use this
// instead, so the shared moments are computed exactly once.
func (t Trajectory) Evolution(eps float64) (coverage, stability, stddev float64) {
	s := t.SupportSeries()
	coverage = float64(len(t.Entries)) / float64(len(s))
	var sum float64
	stable := 0
	for i, v := range s {
		sum += v
		if i > 0 && math.Abs(v-s[i-1]) <= eps {
			stable++
		}
	}
	if len(s) < 2 {
		stability = 1
	} else {
		stability = float64(stable) / float64(len(s)-1)
	}
	// Centered second pass over the already-materialized series, matching
	// stats.StdDev bit for bit (sums accumulate in the same order).
	mean := sum / float64(len(s))
	var sq float64
	for _, v := range s {
		d := v - mean
		sq += d * d
	}
	stddev = math.Sqrt(sq / float64(len(s)))
	return coverage, stability, stddev
}
