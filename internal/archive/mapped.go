package archive

import (
	"encoding/binary"
	"fmt"

	"tara/internal/rules"
)

// Mapped archive layout — the query-ready on-disk form of the TAR Archive,
// stored inside one section of the TARAKB2 container. Unlike the legacy
// "TARC1\n" stream (persist.go), which interleaves variable-width headers
// with payloads and must be decoded front to back, the mapped layout places
// a fixed-width, id-sorted series table in front of one contiguous payload
// blob, so a rule's encoded series is found by binary search and served as
// an offset/length pair into the mapped file — no per-series allocation, no
// map construction, no payload copy at open.
//
// Layout (all integers little-endian, fixed width):
//
//	u32 windowCount, then windowCount × u32 window cardinalities
//	u32 seriesCount
//	seriesCount × 16 bytes: ruleID u32, entryCount u32,
//	                        payload offset u64 (relative to blob start)
//	u64 payload blob length
//	payload blob (the per-series delta-varint streams, id-ascending,
//	              byte-identical to the in-memory / legacy encoding)
//
// The per-series append state of the legacy stream (prevW, prevXY, ...) is
// not stored: it equals the final decoded entry, which OpenMapped verifies
// and Promote recovers when an append needs it.

const mappedEntrySize = 16

// mappedSeries is the read-side view of the mapped layout: the table and
// payload alias the opened container's bytes.
type mappedSeries struct {
	table   []byte // seriesCount × mappedEntrySize, id-ascending
	payload []byte
}

func (m *mappedSeries) count() int { return len(m.table) / mappedEntrySize }

// entry returns the i-th table row and the byte range of its payload.
func (m *mappedSeries) entry(i int) (id rules.ID, n int, off, end uint64) {
	e := m.table[mappedEntrySize*i:]
	id = rules.ID(binary.LittleEndian.Uint32(e))
	n = int(binary.LittleEndian.Uint32(e[4:]))
	off = binary.LittleEndian.Uint64(e[8:])
	if next := mappedEntrySize * (i + 1); next < len(m.table) {
		end = binary.LittleEndian.Uint64(m.table[next+8:])
	} else {
		end = uint64(len(m.payload))
	}
	return id, n, off, end
}

// find binary-searches the table for id, returning its index or -1.
func (m *mappedSeries) find(id rules.ID) int {
	lo, hi := 0, m.count()
	for lo < hi {
		mid := (lo + hi) / 2
		got := rules.ID(binary.LittleEndian.Uint32(m.table[mappedEntrySize*mid:]))
		switch {
		case got < id:
			lo = mid + 1
		case got > id:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// seriesAt returns the payload bytes and entry count of table row i.
func (m *mappedSeries) seriesAt(i int) (buf []byte, n int) {
	_, n, off, end := m.entry(i)
	return m.payload[off:end:end], n
}

// AppendMapped appends the archive's mapped-layout block to dst. The output
// is deterministic (id-ascending) and identical whether the archive is
// heap-resident or itself mapped.
func (a *Archive) AppendMapped(dst []byte) []byte {
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		dst = append(dst, tmp[:4]...)
	}
	put32(uint32(len(a.windowN)))
	for _, wn := range a.windowN {
		put32(wn)
	}
	if a.mapped != nil {
		put32(uint32(a.mapped.count()))
		dst = append(dst, a.mapped.table...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(len(a.mapped.payload)))
		dst = append(dst, tmp[:]...)
		return append(dst, a.mapped.payload...)
	}
	ids := a.Rules()
	sortIDs(ids)
	put32(uint32(len(ids)))
	var off uint64
	for _, id := range ids {
		s := a.entries[id]
		put32(uint32(id))
		put32(uint32(s.n))
		binary.LittleEndian.PutUint64(tmp[:], off)
		dst = append(dst, tmp[:]...)
		off += uint64(len(s.buf))
	}
	binary.LittleEndian.PutUint64(tmp[:], off)
	dst = append(dst, tmp[:]...)
	for _, id := range ids {
		dst = append(dst, a.entries[id].buf...)
	}
	return dst
}

// OpenMapped opens a mapped-layout block produced by AppendMapped. The
// returned archive serves all read paths directly off b (which usually
// aliases a memory-mapped file and must stay valid for the archive's
// lifetime); the first Append promotes it to heap form. The table is
// structurally validated — sorted unique ids, monotonic in-bounds offsets,
// plausible entry counts — and every payload is walked once by the strict
// delta-varint decoder, so later decodes cannot loop, panic or over-read.
func OpenMapped(b []byte) (*Archive, error) {
	need := func(n int, what string) error {
		if len(b) < n {
			return fmt.Errorf("archive: mapped block truncated in %s", what)
		}
		return nil
	}
	if err := need(4, "window count"); err != nil {
		return nil, err
	}
	wc := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint64(wc)*4 > uint64(len(b)) {
		return nil, fmt.Errorf("archive: mapped block claims %d windows in %d bytes", wc, len(b))
	}
	a := New()
	a.windowN = make([]uint32, wc)
	for i := range a.windowN {
		a.windowN[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	b = b[4*wc:]
	if err := need(4, "series count"); err != nil {
		return nil, err
	}
	sc := binary.LittleEndian.Uint32(b)
	b = b[4:]
	tableLen := uint64(sc) * mappedEntrySize
	if tableLen+8 > uint64(len(b)) {
		return nil, fmt.Errorf("archive: mapped block claims %d series in %d bytes", sc, len(b))
	}
	table := b[:tableLen:tableLen]
	payloadLen := binary.LittleEndian.Uint64(b[tableLen:])
	rest := b[tableLen+8:]
	if payloadLen != uint64(len(rest)) {
		return nil, fmt.Errorf("archive: mapped payload length %d disagrees with block (%d bytes)", payloadLen, len(rest))
	}
	m := &mappedSeries{table: table, payload: rest[:payloadLen:payloadLen]}
	prevID := int64(-1)
	prevOff := uint64(0)
	for i := 0; i < m.count(); i++ {
		id, n, off, end := m.entry(i)
		if int64(id) <= prevID {
			return nil, fmt.Errorf("archive: mapped table not id-ascending at row %d", i)
		}
		prevID = int64(id)
		if off != prevOff {
			return nil, fmt.Errorf("archive: series %d payload offset %d not contiguous (want %d)", id, off, prevOff)
		}
		if end < off || end > payloadLen {
			return nil, fmt.Errorf("archive: series %d payload [%d,%d) out of bounds", id, off, end)
		}
		prevOff = end
		if n == 0 {
			return nil, fmt.Errorf("archive: series %d has no entries", id)
		}
		if uint64(n) > (end-off)/4 {
			return nil, fmt.Errorf("archive: series %d claims %d entries in %d bytes", id, n, end-off)
		}
		count := 0
		err := decodePayload(m.payload[off:end], func(e Entry) error {
			if e.Window >= len(a.windowN) {
				return fmt.Errorf("archive: series %d entry references window %d beyond %d", id, e.Window, len(a.windowN))
			}
			count++
			return nil
		})
		if err != nil {
			return nil, err
		}
		if count != n {
			return nil, fmt.Errorf("archive: series %d payload holds %d entries, table says %d", id, count, n)
		}
		a.total += n
	}
	if prevOff != payloadLen {
		return nil, fmt.Errorf("archive: mapped payload has %d trailing bytes", payloadLen-prevOff)
	}
	a.mapped = m
	return a, nil
}

// Mapped reports whether the archive currently serves reads from a mapped
// block (false after Promote or for heap-built archives).
func (a *Archive) Mapped() bool { return a.mapped != nil }

// Promote converts a mapped archive to the heap representation: every series
// payload is copied off the mapped bytes and its append state recovered from
// the final decoded entry, after which the archive no longer references the
// mapped block and appends proceed as usual. No-op for heap archives.
func (a *Archive) Promote() error {
	if a.mapped == nil {
		return nil
	}
	m := a.mapped
	entries := make(map[rules.ID]*series, m.count())
	for i := 0; i < m.count(); i++ {
		id, n, off, end := m.entry(i)
		s := &series{buf: append([]byte(nil), m.payload[off:end]...), n: n, prevW: -1}
		// OpenMapped validated the payload; this walk only recovers the
		// final append state.
		err := decodePayload(s.buf, func(e Entry) error {
			s.prevW, s.prevXY, s.prevX, s.prevY = e.Window, e.CountXY, e.CountX, e.CountY
			return nil
		})
		if err != nil {
			return fmt.Errorf("archive: promoting series %d: %w", id, err)
		}
		entries[id] = s
	}
	a.entries = entries
	a.mapped = nil
	return nil
}

// writeToMapped is WriteTo for a mapped archive: it emits the legacy
// "TARC1\n" stream byte-identically to what the heap-resident equivalent
// would write, recovering each series' append state from its payload.
func (a *Archive) writeToMapped(put func([]byte) error, putUvarint func(uint64) error) error {
	m := a.mapped
	if err := putUvarint(uint64(m.count())); err != nil {
		return err
	}
	for i := 0; i < m.count(); i++ {
		id, n, off, end := m.entry(i)
		buf := m.payload[off:end]
		var s series
		s.prevW = -1
		if err := decodePayload(buf, func(e Entry) error {
			s.prevW, s.prevXY, s.prevX, s.prevY = e.Window, e.CountXY, e.CountX, e.CountY
			return nil
		}); err != nil {
			return fmt.Errorf("archive: serializing mapped series %d: %w", id, err)
		}
		for _, u := range []uint64{
			uint64(id), uint64(n),
			uint64(s.prevW + 1), uint64(s.prevXY), uint64(s.prevX), uint64(s.prevY),
			uint64(len(buf)),
		} {
			if err := putUvarint(u); err != nil {
				return err
			}
		}
		if err := put(buf); err != nil {
			return err
		}
	}
	return nil
}

// seriesPayload returns the encoded payload and entry count of rule id from
// whichever representation holds it.
func (a *Archive) seriesPayload(id rules.ID) (buf []byte, n int, ok bool) {
	if a.mapped != nil {
		i := a.mapped.find(id)
		if i < 0 {
			return nil, 0, false
		}
		buf, n = a.mapped.seriesAt(i)
		return buf, n, true
	}
	s := a.entries[id]
	if s == nil {
		return nil, 0, false
	}
	return s.buf, s.n, true
}
