package archive

import (
	"bytes"
	"testing"
)

// FuzzReadArchive checks the archive deserializer never panics on arbitrary
// bytes and that accepted archives re-serialize deterministically.
func FuzzReadArchive(f *testing.F) {
	var valid bytes.Buffer
	a := New()
	a.BeginWindow(10)
	a.Append(1, 2, 3, 4)
	a.WriteTo(&valid)
	f.Add(valid.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("TARC1\n"))
	f.Add([]byte("TARC1\n\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := ReadArchive(bytes.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("WriteTo of accepted archive: %v", err)
		}
	})
}
