package archive

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// evilArchiveLen builds a syntactically framed archive stream with one
// window (cardinality 10) and a single series whose header fields, declared
// payload length and payload bytes are caller-controlled — the shape every
// decoder attack in the corpus uses.
func evilArchiveLen(entries, prevW1, prevXY, bufLen uint64, payload []byte) []byte {
	var b bytes.Buffer
	b.WriteString(archiveMagic)
	var tmp [binary.MaxVarintLen64]byte
	put := func(u uint64) {
		n := binary.PutUvarint(tmp[:], u)
		b.Write(tmp[:n])
	}
	put(1)  // window count
	put(10) // window cardinality
	put(1)  // series count
	put(7)  // rule id
	put(entries)
	put(prevW1)
	put(prevXY)
	put(0) // prevX
	put(0) // prevY
	put(bufLen)
	b.Write(payload)
	return b.Bytes()
}

func evilArchive(entries, prevW1, prevXY uint64, payload []byte) []byte {
	return evilArchiveLen(entries, prevW1, prevXY, uint64(len(payload)), payload)
}

// adversarialInputs are streams that crashed, hung or over-allocated in the
// pre-hardening decoder; they seed both the fuzz corpus and the regression
// test below.
func adversarialInputs() map[string][]byte {
	enc := func(vals ...uint64) []byte {
		var out []byte
		var tmp [binary.MaxVarintLen64]byte
		for _, v := range vals {
			n := binary.PutUvarint(tmp[:], v)
			out = append(out, tmp[:n]...)
		}
		return out
	}
	return map[string][]byte{
		// Overlong varints in the payload made Series slice with a negative
		// index (panic); truncated varints decoded as zero bytes consumed
		// (infinite loop).
		"payload-overlong-varint":  evilArchive(1, 1, 5, bytes.Repeat([]byte{0xFF}, 12)),
		"payload-truncated-varint": evilArchive(1, 1, 5, []byte{0x01, 0x80}),
		// A gap of zero claims two records in one window.
		"payload-zero-gap": evilArchive(2, 1, 0, enc(1, 0, 0, 0, 0, 0, 0, 0)),
		// Entry counts and append state the payload does not back up.
		"entry-count-mismatch": evilArchive(3, 1, 10, enc(1, zigzag(10), 0, 0)),
		"state-mismatch":       evilArchive(1, 1, 99, enc(1, zigzag(10), 0, 0)),
		// Attacker-chosen sizes that pre-allocated before any data arrived.
		"huge-entry-count": evilArchive(1<<40, 1, 5, enc(1, zigzag(5), 0, 0)),
		// Declares a multi-terabyte payload backed by four real bytes; the
		// pre-hardening decoder's only defence was chunked reading, and the
		// entry-count cross-check now rejects it before any decode.
		"huge-payload-length": evilArchiveLen(1, 1, 5, 1<<42, enc(1, zigzag(5), 0, 0)),
		// References beyond the recorded windows, id/count overflow, dup ids.
		"prevw-beyond-windows": evilArchive(1, 2, 5, enc(2, zigzag(5), 0, 0)),
		"prevw-wraps-negative": evilArchive(1, 1<<63, 5, enc(1, zigzag(5), 0, 0)),
		"window-gap-escape":    evilArchive(1, 1, 5, enc(5, zigzag(5), 0, 0)),
		"negative-count":       evilArchive(1, 1, 5, enc(1, zigzag(-3), 0, 0)),
	}
}

// FuzzReadArchive checks the archive deserializer never panics, loops or
// over-allocates on arbitrary bytes, and that accepted archives are fully
// decodable and re-serialize deterministically.
func FuzzReadArchive(f *testing.F) {
	var valid bytes.Buffer
	a := New()
	a.BeginWindow(10)
	a.Append(1, 2, 3, 4)
	a.WriteTo(&valid)
	f.Add(valid.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("TARC1\n"))
	f.Add([]byte("TARC1\n\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	for _, in := range adversarialInputs() {
		f.Add(in)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := ReadArchive(bytes.NewReader(in))
		if err != nil {
			return
		}
		// Everything the online query path decodes must be safe on an
		// accepted archive: series, per-window stats, roll-ups.
		for _, id := range got.Rules() {
			series := got.Series(id)
			for _, e := range series {
				if e.Window < 0 || e.Window >= got.Windows() {
					t.Fatalf("rule %d decoded entry in window %d of %d", id, e.Window, got.Windows())
				}
			}
			if got.Windows() > 0 {
				if _, _, err := got.RollUp(id, 0, got.Windows()-1); err != nil {
					t.Fatalf("RollUp over accepted archive: %v", err)
				}
				if tr, err := got.Trajectory(id, 0, got.Windows()-1); err != nil {
					t.Fatalf("Trajectory over accepted archive: %v", err)
				} else {
					tr.SupportSeries() // must not index out of range
				}
			}
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("WriteTo of accepted archive: %v", err)
		}
		// Accepted archives round-trip: the re-serialized form is accepted
		// and identical on the second pass.
		again, err := ReadArchive(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read of accepted archive: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := again.WriteTo(&out2); err != nil {
			t.Fatalf("WriteTo of re-read archive: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("accepted archive does not re-serialize deterministically")
		}
	})
}

// TestReadArchiveRejectsAdversarialStreams locks in that each known-bad
// stream is rejected with an error — not a panic, hang or huge allocation.
func TestReadArchiveRejectsAdversarialStreams(t *testing.T) {
	for name, in := range adversarialInputs() {
		a, err := ReadArchive(bytes.NewReader(in))
		if err == nil {
			// Acceptance is only tolerable if every decode path stays safe;
			// the fuzz target checks that, but these inputs are all malformed
			// on purpose and must not load.
			t.Errorf("%s: accepted (archive %d windows, %d entries)", name, a.Windows(), a.NumEntries())
		}
	}
}
