package archive

import (
	"math"
	"math/rand"
	"testing"

	"tara/internal/rules"
)

func TestAppendAndSeries(t *testing.T) {
	a := New()
	a.BeginWindow(100)
	if err := a.Append(1, 10, 20, 30); err != nil {
		t.Fatal(err)
	}
	a.BeginWindow(200)
	if err := a.Append(1, 15, 25, 35); err != nil {
		t.Fatal(err)
	}
	a.BeginWindow(150)
	// rule 1 absent in window 2
	a.BeginWindow(120)
	if err := a.Append(1, 5, 6, 7); err != nil {
		t.Fatal(err)
	}

	got := a.Series(1)
	want := []Entry{
		{Window: 0, CountXY: 10, CountX: 20, CountY: 30},
		{Window: 1, CountXY: 15, CountX: 25, CountY: 35},
		{Window: 3, CountXY: 5, CountX: 6, CountY: 7},
	}
	if len(got) != len(want) {
		t.Fatalf("Series = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSeriesUnknownRule(t *testing.T) {
	a := New()
	a.BeginWindow(10)
	if got := a.Series(42); got != nil {
		t.Errorf("Series of unknown rule = %v", got)
	}
}

func TestAppendErrors(t *testing.T) {
	a := New()
	if err := a.Append(1, 1, 1, 1); err == nil {
		t.Error("Append before BeginWindow accepted")
	}
	a.BeginWindow(10)
	if err := a.Append(1, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(1, 2, 2, 2); err == nil {
		t.Error("double Append in one window accepted")
	}
}

func TestWindowN(t *testing.T) {
	a := New()
	a.BeginWindow(7)
	if n, err := a.WindowN(0); err != nil || n != 7 {
		t.Errorf("WindowN = %d, %v", n, err)
	}
	if _, err := a.WindowN(1); err == nil {
		t.Error("out-of-range window accepted")
	}
	if _, err := a.WindowN(-1); err == nil {
		t.Error("negative window accepted")
	}
}

func TestRange(t *testing.T) {
	a := New()
	for w := 0; w < 5; w++ {
		a.BeginWindow(10)
		if err := a.Append(3, uint32(w+1), uint32(w+2), uint32(w+3)); err != nil {
			t.Fatal(err)
		}
	}
	got := a.Range(3, 1, 3)
	if len(got) != 3 || got[0].Window != 1 || got[2].Window != 3 {
		t.Errorf("Range = %v", got)
	}
}

func TestStatsAt(t *testing.T) {
	a := New()
	a.BeginWindow(50)
	a.Append(9, 10, 20, 25)
	a.BeginWindow(60)

	s, ok := a.StatsAt(9, 0)
	if !ok {
		t.Fatal("StatsAt(9, 0) not found")
	}
	if s.CountXY != 10 || s.CountX != 20 || s.CountY != 25 || s.N != 50 {
		t.Errorf("StatsAt = %+v", s)
	}
	if s.Support() != 0.2 || s.Confidence() != 0.5 {
		t.Errorf("measures: supp=%g conf=%g", s.Support(), s.Confidence())
	}
	if _, ok := a.StatsAt(9, 1); ok {
		t.Error("StatsAt found rule in window it was absent from")
	}
	if _, ok := a.StatsAt(9, 7); ok {
		t.Error("StatsAt accepted out-of-range window")
	}
}

func TestRollUp(t *testing.T) {
	a := New()
	a.BeginWindow(100)
	a.Append(1, 10, 20, 30)
	a.BeginWindow(100)
	a.Append(1, 20, 30, 40)
	a.BeginWindow(100) // absent window

	s, present, err := a.RollUp(1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if present != 2 {
		t.Errorf("present = %d, want 2", present)
	}
	want := rules.Stats{CountXY: 30, CountX: 50, CountY: 70, N: 300}
	if s != want {
		t.Errorf("RollUp = %+v, want %+v", s, want)
	}
	if s.Support() != 0.1 {
		t.Errorf("rolled-up support = %g", s.Support())
	}
}

func TestRollUpErrors(t *testing.T) {
	a := New()
	a.BeginWindow(10)
	if _, _, err := a.RollUp(1, 0, 5); err == nil {
		t.Error("out-of-range roll-up accepted")
	}
	if _, _, err := a.RollUp(1, 1, 0); err == nil {
		t.Error("inverted roll-up range accepted")
	}
	if _, _, err := a.RollUp(1, -1, 0); err == nil {
		t.Error("negative roll-up range accepted")
	}
}

func TestSizeAccounting(t *testing.T) {
	a := New()
	a.BeginWindow(1000)
	for id := rules.ID(0); id < 100; id++ {
		if err := a.Append(id, 500, 600, 700); err != nil {
			t.Fatal(err)
		}
	}
	if a.NumEntries() != 100 {
		t.Errorf("NumEntries = %d", a.NumEntries())
	}
	if a.SizeBytes() >= a.UncompressedBytes() {
		t.Errorf("compression ineffective: %d >= %d", a.SizeBytes(), a.UncompressedBytes())
	}
}

func TestRules(t *testing.T) {
	a := New()
	a.BeginWindow(10)
	a.Append(1, 1, 1, 1)
	a.Append(5, 1, 1, 1)
	ids := a.Rules()
	if len(ids) != 2 {
		t.Fatalf("Rules = %v", ids)
	}
	seen := map[rules.ID]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if !seen[1] || !seen[5] {
		t.Errorf("Rules = %v", ids)
	}
}

func TestTrajectoryMeasures(t *testing.T) {
	a := New()
	// windows of 10 tx each; rule present in 0,1,3 with counts 2,2,6
	a.BeginWindow(10)
	a.Append(1, 2, 4, 5)
	a.BeginWindow(10)
	a.Append(1, 2, 4, 5)
	a.BeginWindow(10)
	a.BeginWindow(10)
	a.Append(1, 6, 8, 9)

	tr, err := a.Trajectory(1, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	supp := tr.SupportSeries()
	wantSupp := []float64{0.2, 0.2, 0, 0.6}
	for i := range wantSupp {
		if math.Abs(supp[i]-wantSupp[i]) > 1e-12 {
			t.Errorf("supp[%d] = %g, want %g", i, supp[i], wantSupp[i])
		}
	}
	conf := tr.ConfidenceSeries()
	wantConf := []float64{0.5, 0.5, 0, 0.75}
	for i := range wantConf {
		if math.Abs(conf[i]-wantConf[i]) > 1e-12 {
			t.Errorf("conf[%d] = %g, want %g", i, conf[i], wantConf[i])
		}
	}
	if got := tr.Coverage(); got != 0.75 {
		t.Errorf("Coverage = %g", got)
	}
	// Deltas: 0, -0.2, +0.6 -> with eps 0.25, two of three stable.
	if got := tr.Stability(0.25); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Stability = %g, want 2/3", got)
	}
	if got := tr.Stability(1); got != 1 {
		t.Errorf("Stability(eps=1) = %g", got)
	}
	if tr.SupportStdDev() <= 0 {
		t.Error("SupportStdDev should be positive for varying series")
	}
}

func TestTrajectorySingleWindow(t *testing.T) {
	a := New()
	a.BeginWindow(10)
	a.Append(1, 2, 4, 5)
	tr, err := a.Trajectory(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stability(0) != 1 {
		t.Error("single-window trajectory should be perfectly stable")
	}
	if tr.Coverage() != 1 {
		t.Error("Coverage of fully present single window should be 1")
	}
}

func TestTrajectoryErrors(t *testing.T) {
	a := New()
	a.BeginWindow(10)
	if _, err := a.Trajectory(1, 0, 3); err == nil {
		t.Error("out-of-range trajectory accepted")
	}
}

func TestPropertyRoundTripRandomSeries(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		a := New()
		nWindows := 1 + r.Intn(30)
		type rec struct{ w, xy, x, y uint32 }
		truth := map[rules.ID][]rec{}
		for w := 0; w < nWindows; w++ {
			a.BeginWindow(uint32(50 + r.Intn(100)))
			for id := rules.ID(0); id < 20; id++ {
				if r.Intn(3) == 0 {
					continue // absent this window
				}
				xy := uint32(r.Intn(1 << 20))
				x := xy + uint32(r.Intn(100))
				y := uint32(r.Intn(1 << 20))
				if err := a.Append(id, xy, x, y); err != nil {
					t.Fatal(err)
				}
				truth[id] = append(truth[id], rec{uint32(w), xy, x, y})
			}
		}
		for id, recs := range truth {
			got := a.Series(id)
			if len(got) != len(recs) {
				t.Fatalf("trial %d rule %d: %d entries, want %d", trial, id, len(got), len(recs))
			}
			for i, want := range recs {
				e := got[i]
				if e.Window != int(want.w) || e.CountXY != want.xy || e.CountX != want.x || e.CountY != want.y {
					t.Fatalf("trial %d rule %d entry %d: %+v, want %+v", trial, id, i, e, want)
				}
			}
		}
	}
}

func TestPropertyRollUpMatchesManualSum(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	a := New()
	n := 20
	var windowN []uint32
	series := map[int][4]uint32{} // window -> counts for rule 1
	for w := 0; w < n; w++ {
		wn := uint32(10 + r.Intn(90))
		windowN = append(windowN, wn)
		a.BeginWindow(wn)
		if r.Intn(4) != 0 {
			xy := uint32(r.Intn(100))
			series[w] = [4]uint32{xy, xy + uint32(r.Intn(50)), uint32(r.Intn(100)), wn}
			a.Append(1, series[w][0], series[w][1], series[w][2])
		}
	}
	for trial := 0; trial < 40; trial++ {
		from := r.Intn(n)
		to := from + r.Intn(n-from)
		got, present, err := a.RollUp(1, from, to)
		if err != nil {
			t.Fatal(err)
		}
		var want rules.Stats
		wantPresent := 0
		for w := from; w <= to; w++ {
			want.N += windowN[w]
			if c, ok := series[w]; ok {
				want.CountXY += c[0]
				want.CountX += c[1]
				want.CountY += c[2]
				wantPresent++
			}
		}
		if got != want || present != wantPresent {
			t.Fatalf("RollUp[%d,%d] = %+v/%d, want %+v/%d", from, to, got, present, want, wantPresent)
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip %d -> %d", v, got)
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	a := New()
	a.BeginWindow(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.BeginWindow(1000)
		if err := a.Append(1, uint32(i%1000), uint32(i%1000+10), uint32(i%500)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeriesDecode(b *testing.B) {
	a := New()
	for w := 0; w < 1000; w++ {
		a.BeginWindow(1000)
		a.Append(1, uint32(w), uint32(w+10), uint32(w+5))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := a.Series(1); len(got) != 1000 {
			b.Fatal("bad decode")
		}
	}
}
