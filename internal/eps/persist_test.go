package eps

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"tara/internal/itemset"
	"tara/internal/rules"
)

func restore(t *testing.T, s *Slice, numRules int, opts Options) *Slice {
	t.Helper()
	r, err := RestoreSlice(s.Window, s.AppendMapped(nil), numRules, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// sameIDs fails unless two id lists are identical element for element.
func sameIDs(t *testing.T, what string, want, got []rules.ID) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d ids", what, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: id %d is %d, want %d", what, i, got[i], want[i])
		}
	}
}

func TestRestoreSliceFixedExample(t *testing.T) {
	built, d := fixedSlice(t, Options{ContentIndex: true})
	rest := restore(t, built, d.Len(), Options{ContentIndex: true, Dict: d})

	if rest.Window != built.Window || rest.N != built.N {
		t.Fatalf("identity: window %d N %d, want %d %d", rest.Window, rest.N, built.Window, built.N)
	}
	if rest.NumLocations() != built.NumLocations() || rest.NumRuleRefs() != built.NumRuleRefs() {
		t.Fatalf("shape differs")
	}
	bs, bc := built.GridDims()
	rs, rc := rest.GridDims()
	if bs != rs || bc != rc {
		t.Fatalf("grid: %dx%d vs %dx%d", rs, rc, bs, bc)
	}
	probes := []struct{ supp, conf float64 }{
		{0, 0}, {0.2, 0}, {0, 0.4}, {0.2, 0.6}, {0.5, 0}, {0, 0.8}, {0.33, 0.75},
	}
	for _, p := range probes {
		sameIDs(t, "Rules", built.Rules(p.supp, p.conf), rest.Rules(p.supp, p.conf))
		if built.Count(p.supp, p.conf) != rest.Count(p.supp, p.conf) {
			t.Fatalf("Count(%g,%g) differs", p.supp, p.conf)
		}
		if built.ScanCount(p.supp, p.conf) != rest.ScanCount(p.supp, p.conf) {
			t.Fatalf("ScanCount(%g,%g) differs", p.supp, p.conf)
		}
		br, rr := built.Region(p.supp, p.conf), rest.Region(p.supp, p.conf)
		if br != rr {
			t.Fatalf("Region(%g,%g): %+v vs %+v", p.supp, p.conf, rr, br)
		}
		bi, bj := built.CutIndex(p.supp, p.conf)
		ri, rj := rest.CutIndex(p.supp, p.conf)
		if bi != ri || bj != rj {
			t.Fatalf("CutIndex(%g,%g) differs", p.supp, p.conf)
		}
		sameIDs(t, "Postings", built.Postings(p.supp, p.conf).AppendTo(nil), rest.Postings(p.supp, p.conf).AppendTo(nil))
	}

	// Content-based paths through the lazily built per-location item index.
	got, err := rest.RulesWithItems(0, 0, itemset.New(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := built.RulesWithItems(0, 0, itemset.New(2))
	if err != nil {
		t.Fatal(err)
	}
	sameIDs(t, "RulesWithItems", want, got)

	gm, err := rest.RulesMerged(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := built.RulesMerged(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameIDs(t, "RulesMerged", wm, gm)

	// Diff both ways.
	wa, wb := built.Diff(0, 0, 0.2, 0.6)
	ga, gb := rest.Diff(0, 0, 0.2, 0.6)
	sameIDs(t, "Diff onlyA", wa, ga)
	sameIDs(t, "Diff onlyB", wb, gb)

	// Domination graph is coordinate-only but must survive restore.
	we, ge := built.DominationGraph(), rest.DominationGraph()
	if len(we) != len(ge) {
		t.Fatalf("DominationGraph: %d vs %d edges", len(ge), len(we))
	}
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("edge %d differs", i)
		}
	}

	// Panorama exercises locNumRules over every location.
	if built.Panorama(30, 10, 0.2, 0.6) != rest.Panorama(30, 10, 0.2, 0.6) {
		t.Fatal("Panorama differs")
	}

	// Locations materializes everything; the views must agree.
	bl, rl := built.Locations(), rest.Locations()
	if len(bl) != len(rl) {
		t.Fatalf("Locations: %d vs %d", len(rl), len(bl))
	}
	for i := range bl {
		if bl[i].Supp != rl[i].Supp || bl[i].Conf != rl[i].Conf ||
			bl[i].CountXY != rl[i].CountXY || bl[i].CountX != rl[i].CountX {
			t.Fatalf("location %d header differs", i)
		}
		sameIDs(t, "location rules", bl[i].Rules, rl[i].Rules)
	}
}

func TestRestoreSliceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := uint32(20 + r.Intn(100))
		rs := randomIDStats(r, n, 1+r.Intn(80))
		built, err := BuildSlice(trial, n, rs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rest := restore(t, built, len(rs), Options{})
		for probe := 0; probe < 25; probe++ {
			ms, mc := r.Float64(), r.Float64()
			sameIDs(t, "Rules", built.Rules(ms, mc), rest.Rules(ms, mc))
			if built.Count(ms, mc) != rest.Count(ms, mc) {
				t.Fatalf("trial %d: Count(%g,%g) differs", trial, ms, mc)
			}
			sameIDs(t, "AppendRules", built.AppendRules(nil, ms, mc), rest.AppendRules(nil, ms, mc))
		}
	}
}

func TestAppendMappedStableAcrossRestore(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	rs := randomIDStats(r, 100, 60)
	built, err := BuildSlice(0, 100, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	img := built.AppendMapped(nil)
	rest, err := RestoreSlice(0, img, len(rs), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, rest.AppendMapped(nil)) {
		t.Fatal("mapped block not stable across restore")
	}
}

func TestRestoreSliceConcurrentLazyAccess(t *testing.T) {
	// Many goroutines race the lazy materialization paths; under -race this
	// proves the sync.Once publication is sound.
	built, d := fixedSlice(t, Options{ContentIndex: true})
	rest := restore(t, built, d.Len(), Options{ContentIndex: true, Dict: d})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rest.Rules(0, 0)
				rest.Count(0.2, 0.6)
				rest.RulesWithItems(0, 0, itemset.New(itemset.Item(g%3)))
				rest.Postings(0, 0.4)
			}
		}(g)
	}
	wg.Wait()
	sameIDs(t, "after race", built.Rules(0, 0), rest.Rules(0, 0))
}

func TestRestoreSliceRejectsCorrupt(t *testing.T) {
	built, d := fixedSlice(t, Options{ContentIndex: true})
	img := built.AppendMapped(nil)
	numRules := d.Len()

	for n := 0; n < len(img); n++ {
		if _, err := RestoreSlice(0, img[:n:n], numRules, Options{}); err == nil {
			t.Fatalf("truncation to %d of %d accepted", n, len(img))
		}
	}
	// Every single-byte corruption either fails at restore or yields a slice
	// whose reads do not panic (values may legitimately differ: flipped
	// float bytes that stay sorted are still a valid slice).
	for i := 0; i < len(img); i++ {
		b := append([]byte(nil), img...)
		b[i] ^= 0xFF
		s, err := RestoreSlice(0, b, numRules, Options{})
		if err != nil {
			continue
		}
		s.Rules(0, 0)
		s.Count(0.2, 0.6)
		s.Postings(0, 0).AppendTo(nil)
		s.Locations()
	}
	// numRules below the ids actually referenced must be rejected — it is
	// the bound that keeps every decoded posting in range.
	if _, err := RestoreSlice(0, img, 1, Options{}); err == nil {
		t.Fatal("postings referencing out-of-range rules accepted")
	}
	// ContentIndex without a dictionary cannot restore.
	if _, err := RestoreSlice(0, img, numRules, Options{ContentIndex: true}); err == nil {
		t.Fatal("ContentIndex restore without dict accepted")
	}
}
