package eps

import (
	"math"
	"math/rand"
	"testing"

	"tara/internal/rules"
)

// ndStats builds IDStats with all three standard coordinates meaningful.
func ndStats(r *rand.Rand, n uint32, numRules int) []IDStats {
	out := make([]IDStats, numRules)
	for i := range out {
		xy := uint32(1 + r.Intn(int(n)/2))
		x := xy + uint32(r.Intn(int(n-xy)+1))
		y := xy + uint32(r.Intn(int(n-xy)+1))
		out[i] = IDStats{
			ID:    rules.ID(i),
			Stats: rules.Stats{CountXY: xy, CountX: x, CountY: y, N: n},
		}
	}
	return out
}

func TestBuildSliceNDValidation(t *testing.T) {
	if _, err := BuildSliceND(0, 1, nil, nil); err == nil {
		t.Error("empty measure list accepted")
	}
}

func TestSliceNDRulesMatchLinearFilter(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	measures := StandardMeasures()
	for trial := 0; trial < 20; trial++ {
		n := uint32(20 + r.Intn(60))
		rs := ndStats(r, n, 1+r.Intn(50))
		s, err := BuildSliceND(0, n, rs, measures)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 15; probe++ {
			mins := []float64{r.Float64(), r.Float64(), r.Float64() * 3}
			got, err := s.Rules(mins)
			if err != nil {
				t.Fatal(err)
			}
			want := map[rules.ID]bool{}
			for _, x := range rs {
				if x.Stats.Support() >= mins[0] && x.Stats.Confidence() >= mins[1] && x.Stats.Lift() >= mins[2] {
					want[x.ID] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d rules, want %d (mins %v)", trial, len(got), len(want), mins)
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("trial %d: unexpected rule %d", trial, id)
				}
			}
		}
	}
}

func TestSliceNDThresholdArity(t *testing.T) {
	s, err := BuildSliceND(0, 10, nil, StandardMeasures())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rules([]float64{0.1}); err == nil {
		t.Error("wrong threshold arity accepted")
	}
	if _, err := s.Region([]float64{0.1, 0.2}); err == nil {
		t.Error("wrong region arity accepted")
	}
	if _, err := s.Count([]float64{0.1, 0.2, 0.3, 0.4}); err == nil {
		t.Error("excess arity accepted")
	}
}

func TestSliceNDRegionStability(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	measures := StandardMeasures()
	for trial := 0; trial < 10; trial++ {
		n := uint32(30 + r.Intn(40))
		rs := ndStats(r, n, 1+r.Intn(40))
		s, err := BuildSliceND(0, n, rs, measures)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 10; probe++ {
			mins := []float64{r.Float64(), r.Float64(), r.Float64() * 2}
			reg, err := s.Region(mins)
			if err != nil {
				t.Fatal(err)
			}
			base, err := s.Count(mins)
			if err != nil {
				t.Fatal(err)
			}
			if reg.NumRules != base || reg.Empty != (base == 0) {
				t.Fatalf("trial %d: region %+v vs count %d", trial, reg, base)
			}
			// Random points inside the cell yield the same count.
			for k := 0; k < 5; k++ {
				probeMins := make([]float64, len(mins))
				for d := range probeMins {
					hi := reg.High[d]
					if math.IsInf(hi, 1) {
						hi = reg.Low[d] + 1 // any point above Low is inside
					}
					probeMins[d] = reg.Low[d] + (hi-reg.Low[d])*(1e-7+r.Float64()*(1-2e-7))
				}
				got, err := s.Count(probeMins)
				if err != nil {
					t.Fatal(err)
				}
				if got != base {
					t.Fatalf("trial %d: count changed inside ND region at %v: %d vs %d (region %+v)",
						trial, probeMins, got, base, reg)
				}
			}
		}
	}
}

func TestSliceNDMatches2DSliceOnTwoMeasures(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	n := uint32(50)
	rs := randomIDStats(r, n, 40)
	two, err := BuildSlice(0, n, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nd, err := BuildSliceND(0, n, rs, StandardMeasures()[:2])
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 30; probe++ {
		ms, mc := r.Float64(), r.Float64()
		want := two.Count(ms, mc)
		got, err := nd.Count([]float64{ms, mc})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("ND %d vs 2D %d at (%g,%g)", got, want, ms, mc)
		}
	}
}

func TestRegionNDBounds(t *testing.T) {
	rs := []IDStats{
		{ID: 1, Stats: rules.Stats{CountXY: 2, CountX: 4, CountY: 5, N: 10}}, // supp .2 conf .5 lift 1
		{ID: 2, Stats: rules.Stats{CountXY: 5, CountX: 5, CountY: 5, N: 10}}, // supp .5 conf 1 lift 2
	}
	s, err := BuildSliceND(3, 10, rs, StandardMeasures())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := s.Region([]float64{0.3, 0.7, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if reg.NumRules != 1 || reg.Empty {
		t.Fatalf("region = %+v", reg)
	}
	if reg.Low[0] != 0.2 || reg.High[0] != 0.5 {
		t.Errorf("support bounds (%g,%g]", reg.Low[0], reg.High[0])
	}
	if reg.Low[1] != 0.5 || reg.High[1] != 1 {
		t.Errorf("confidence bounds (%g,%g]", reg.Low[1], reg.High[1])
	}
	if reg.Low[2] != 1 || reg.High[2] != 2 {
		t.Errorf("lift bounds (%g,%g]", reg.Low[2], reg.High[2])
	}
	// Above all lift values: region extends to +Inf on the lift axis.
	reg, err = s.Region([]float64{0.3, 0.7, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Empty || !math.IsInf(reg.High[2], 1) {
		t.Errorf("open lift region = %+v", reg)
	}
	if reg.Window != 3 || reg.Measures[2] != "lift" {
		t.Errorf("metadata = %+v", reg)
	}
}
