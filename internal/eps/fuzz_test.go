package eps

import (
	"testing"

	"tara/internal/rules"
)

// FuzzPostings drives the strict posting-stream decoder with adversarial
// bytes. Properties checked:
//   - the decoder never panics and never allocates beyond the byte budget
//     implied by the stream (each id costs >= 1 byte, enforced by the count
//     bound);
//   - any stream it accepts, re-encoded segment by segment, decodes to the
//     same ids (value round-trip; byte identity is not required because
//     varints admit non-minimal encodings);
//   - ids within a segment come out strictly ascending and within uint32.
func FuzzPostings(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodePostings([][]rules.ID{{1, 2, 3}}))
	f.Add(EncodePostings([][]rules.ID{{}, {7}, {0, 4294967295}}))
	f.Add([]byte{0x80})                            // truncated count varint
	f.Add([]byte{10, 1})                           // count beyond stream
	f.Add([]byte{2, 1, 0})                         // zero delta
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0xff, 0x7f}) // id overflow
	f.Fuzz(func(t *testing.T, data []byte) {
		flat, err := DecodePostings(data)
		if err != nil {
			return
		}
		if len(flat) > len(data) {
			t.Fatalf("decoded %d ids from %d bytes; count bound violated", len(flat), len(data))
		}
		// Re-walk the accepted stream segment by segment so the original
		// segmentation is preserved, then re-encode and decode again.
		var segs [][]rules.ID
		rest := data
		for len(rest) > 0 {
			seg, n, err := decodeSegment(nil, rest)
			if err != nil {
				t.Fatalf("DecodePostings accepted a stream decodeSegment rejects: %v", err)
			}
			for i := 1; i < len(seg); i++ {
				if seg[i] <= seg[i-1] {
					t.Fatalf("segment ids not strictly ascending: %v", seg)
				}
			}
			segs = append(segs, seg)
			rest = rest[n:]
		}
		back, err := DecodePostings(EncodePostings(segs))
		if err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		if !idsEqual(back, flat) {
			t.Fatalf("value round trip mismatch: %v -> %v", flat, back)
		}
	})
}
