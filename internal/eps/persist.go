// Mapped slice layout — the query-ready on-disk form of one window's EPS
// slice, stored inside the TARAKB2 container's EPS section. The grid
// metadata (locations, axes, skip/count acceleration) is tiny and decoded
// eagerly at restore; the region posting streams — the bulk of the bytes —
// are aliased zero-copy, so a stable region's ruleset remains what it is in
// memory: offset/length pairs into the (mapped) file. Per-location rule
// lists and the content index are materialized lazily, per support row and
// per location respectively, the first time a query touches them.
//
// Layout (little-endian float64s, uvarints elsewhere):
//
//	N                      window cardinality
//	L                      location count
//	L × locations:         supp f64, conf f64, countXY, countX, numRules
//	C                      confidence column count
//	C × columns:           length, then loc indexes (first absolute, then
//	                       strictly positive deltas — indexes ascend within
//	                       a column)
//	per support row:       len(row) segment lengths (the posting fence)
//	blobLen, blob          concatenated per-row posting streams
//
// Support rows are not stored: locations are (supp, conf)-sorted, so rows
// are the runs of equal support. Restore validates everything it will later
// trust without error checks: strict ordering of locations and columns, the
// column permutation, fence/stream agreement, and a full strict walk of
// every posting segment (counts, id bounds, ascending ids). After that walk
// the streams are exactly as trusted as build-time streams, so the shared
// query paths stay panic-free-by-validation on both.
package eps

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"tara/internal/itemset"
	"tara/internal/rules"
)

// lazySlice is the deferred-materialization state of a restored slice.
// locs[i].Rules is filled one support row at a time under rowOnce (decoding
// a row stream yields every location in the row); itemIdx is built one
// location at a time under idxOnce. sync.Once gives lock-free readers the
// happens-before edge the Framework's immutable-slice contract relies on.
type lazySlice struct {
	dict    *rules.Dict
	locRow  []int32 // location index -> its support row
	rowOnce []sync.Once
	idxOnce []sync.Once
}

// AppendMapped appends the slice's mapped-layout block to dst. The output
// is deterministic and identical for a built slice and its restored twin
// (nothing lazy needs materializing — rule counts come from the suffix
// count table, the streams are re-emitted verbatim).
func (s *Slice) AppendMapped(dst []byte) []byte {
	var f8 [8]byte
	putF := func(v float64) {
		binary.LittleEndian.PutUint64(f8[:], math.Float64bits(v))
		dst = append(dst, f8[:]...)
	}
	dst = binary.AppendUvarint(dst, uint64(s.N))
	dst = binary.AppendUvarint(dst, uint64(len(s.locs)))
	for i := range s.locs {
		l := &s.locs[i]
		putF(l.Supp)
		putF(l.Conf)
		dst = binary.AppendUvarint(dst, uint64(l.CountXY))
		dst = binary.AppendUvarint(dst, uint64(l.CountX))
		dst = binary.AppendUvarint(dst, uint64(s.locNumRules(int32(i))))
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.cols)))
	for _, col := range s.cols {
		dst = binary.AppendUvarint(dst, uint64(len(col)))
		prev := int32(0)
		for j, li := range col {
			if j == 0 {
				dst = binary.AppendUvarint(dst, uint64(li))
			} else {
				dst = binary.AppendUvarint(dst, uint64(li-prev))
			}
			prev = li
		}
	}
	var blobLen uint64
	for i := range s.rows {
		off := s.rowPostOff[i]
		for j := 0; j+1 < len(off); j++ {
			dst = binary.AppendUvarint(dst, uint64(off[j+1]-off[j]))
		}
		blobLen += uint64(len(s.rowPost[i]))
	}
	dst = binary.AppendUvarint(dst, blobLen)
	for i := range s.rows {
		dst = append(dst, s.rowPost[i]...)
	}
	return dst
}

// RestoreSlice reconstructs a slice from a mapped-layout block produced by
// AppendMapped. numRules bounds the rule ids the postings may reference
// (the dictionary size). The posting streams alias b — typically a
// memory-mapped file that must outlive the slice; everything else is decoded
// into O(locations) heap memory. Rule lists and the content index stay
// unmaterialized until first use.
func RestoreSlice(window int, b []byte, numRules int, opts Options) (*Slice, error) {
	if opts.ContentIndex && opts.Dict == nil {
		return nil, fmt.Errorf("eps: ContentIndex requires a rule dictionary")
	}
	r := sliceReader{b: b, window: window}
	n, err := r.uvarint("window cardinality")
	if err != nil {
		return nil, err
	}
	if n > math.MaxUint32 {
		return nil, r.corrupt("window cardinality %d exceeds uint32", n)
	}
	s := &Slice{Window: window, N: uint32(n), contentIndexed: opts.ContentIndex}
	locCount, err := r.uvarint("location count")
	if err != nil {
		return nil, err
	}
	// Each location occupies at least 16 fixed bytes, so a count the block
	// cannot hold is rejected before any allocation sized from it.
	if locCount > uint64(len(r.b))/16 {
		return nil, r.corrupt("%d locations cannot fit in %d bytes", locCount, len(r.b))
	}
	s.locs = make([]Location, locCount)
	nRules := make([]int32, locCount)
	for i := range s.locs {
		l := &s.locs[i]
		if l.Supp, err = r.float64("location support"); err != nil {
			return nil, err
		}
		if l.Conf, err = r.float64("location confidence"); err != nil {
			return nil, err
		}
		if l.CountXY, err = r.uint32("location countXY"); err != nil {
			return nil, err
		}
		if l.CountX, err = r.uint32("location countX"); err != nil {
			return nil, err
		}
		nr, err := r.uint32("location rule count")
		if err != nil {
			return nil, err
		}
		if nr == 0 || nr > uint32(math.MaxInt32) {
			return nil, r.corrupt("location %d has invalid rule count %d", i, nr)
		}
		nRules[i] = int32(nr)
		if i > 0 {
			p := &s.locs[i-1]
			if l.Supp < p.Supp || (l.Supp == p.Supp && l.Conf <= p.Conf) {
				return nil, r.corrupt("locations not strictly (supp, conf)-sorted at %d", i)
			}
		}
		if !(l.Supp >= 0 && l.Supp <= 1) || !(l.Conf >= 0 && l.Conf <= 1) {
			return nil, r.corrupt("location %d coordinates (%g, %g) outside [0,1]", i, l.Supp, l.Conf)
		}
	}
	// Support rows are the runs of equal support (locations are sorted).
	for i := range s.locs {
		if len(s.supports) == 0 || s.supports[len(s.supports)-1] != s.locs[i].Supp {
			s.supports = append(s.supports, s.locs[i].Supp)
			s.rows = append(s.rows, nil)
		}
		row := len(s.rows) - 1
		s.rows[row] = append(s.rows[row], int32(i))
	}
	if err := r.readCols(s, int(locCount)); err != nil {
		return nil, err
	}
	// Acceleration structures, from the persisted per-location rule counts.
	s.rowMaxConf = make([]float64, len(s.rows))
	s.rowSkip = make([]int32, len(s.rows))
	s.rowCum = make([][]int32, len(s.rows))
	for i, idx := range s.rows {
		s.rowMaxConf[i] = s.locs[idx[len(idx)-1]].Conf
		cum := make([]int32, len(idx)+1)
		for j := len(idx) - 1; j >= 0; j-- {
			cum[j] = cum[j+1] + nRules[idx[j]]
		}
		s.rowCum[i] = cum
	}
	for i := len(s.rows) - 1; i >= 0; i-- {
		j := int32(i + 1)
		for j < int32(len(s.rows)) && s.rowMaxConf[j] <= s.rowMaxConf[i] {
			j = s.rowSkip[j]
		}
		s.rowSkip[i] = j
	}
	if err := r.readPostings(s, nRules, numRules); err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, r.corrupt("%d trailing bytes after slice block", len(r.b))
	}
	lz := &lazySlice{
		dict:    opts.Dict,
		locRow:  make([]int32, locCount),
		rowOnce: make([]sync.Once, len(s.rows)),
	}
	if opts.ContentIndex {
		lz.idxOnce = make([]sync.Once, locCount)
	}
	for row, idx := range s.rows {
		for _, li := range idx {
			lz.locRow[li] = int32(row)
		}
	}
	s.lazy = lz
	return s, nil
}

// readCols decodes and validates the confidence columns: together they must
// be a permutation of the locations, each column holding ascending location
// indexes of a single confidence value, with column confidences strictly
// ascending (the order BuildSlice produces).
func (r *sliceReader) readCols(s *Slice, locCount int) error {
	colCount, err := r.uvarint("column count")
	if err != nil {
		return err
	}
	if colCount > uint64(locCount) || (locCount > 0 && colCount == 0) {
		return r.corrupt("implausible column count %d for %d locations", colCount, locCount)
	}
	seen := make([]bool, locCount)
	s.cols = make([][]int32, colCount)
	s.confs = make([]float64, colCount)
	total := 0
	for j := range s.cols {
		clen, err := r.uvarint("column length")
		if err != nil {
			return err
		}
		if clen == 0 || clen > uint64(locCount-total) {
			return r.corrupt("column %d length %d out of bounds", j, clen)
		}
		col := make([]int32, clen)
		prev := int64(-1)
		for k := range col {
			v, err := r.uvarint("column entry")
			if err != nil {
				return err
			}
			var li int64
			if k == 0 {
				li = int64(v)
			} else {
				if v == 0 {
					return r.corrupt("column %d entries not strictly ascending", j)
				}
				li = prev + int64(v)
			}
			if li >= int64(locCount) {
				return r.corrupt("column %d references location %d beyond %d", j, li, locCount)
			}
			if seen[li] {
				return r.corrupt("location %d appears in two columns", li)
			}
			seen[li] = true
			col[k] = int32(li)
			prev = li
		}
		conf := s.locs[col[0]].Conf
		for _, li := range col {
			if s.locs[li].Conf != conf {
				return r.corrupt("column %d mixes confidences", j)
			}
		}
		if j > 0 && conf <= s.confs[j-1] {
			return r.corrupt("column confidences not strictly ascending at %d", j)
		}
		s.confs[j] = conf
		s.cols[j] = col
		total += int(clen)
	}
	if total != locCount {
		return r.corrupt("columns cover %d of %d locations", total, locCount)
	}
	return nil
}

// readPostings decodes the per-row posting fences, aliases the stream blob,
// and walks every segment with the strict decoder so the streams earn the
// same trust as build-time ones: per-segment byte ranges and rule counts
// must match the fences and the suffix count table, ids must ascend and stay
// below numRules.
func (r *sliceReader) readPostings(s *Slice, nRules []int32, numRules int) error {
	segLens := make([][]uint64, len(s.rows))
	var blobNeed uint64
	for i, idx := range s.rows {
		lens := make([]uint64, len(idx))
		for j := range lens {
			v, err := r.uvarint("posting segment length")
			if err != nil {
				return err
			}
			if v < 2 { // a segment is at least a count byte and one id byte
				return r.corrupt("row %d segment %d implausibly short (%d bytes)", i, j, v)
			}
			lens[j] = v
			blobNeed += v
			if blobNeed > uint64(len(r.b)) {
				return r.corrupt("posting fences exceed block size")
			}
		}
		segLens[i] = lens
	}
	blobLen, err := r.uvarint("posting blob length")
	if err != nil {
		return err
	}
	if blobLen != blobNeed {
		return r.corrupt("posting blob length %d disagrees with fences (%d)", blobLen, blobNeed)
	}
	if blobLen > uint64(len(r.b)) {
		return r.corrupt("posting blob truncated (%d of %d bytes)", len(r.b), blobLen)
	}
	blob := r.b[:blobLen:blobLen]
	r.b = r.b[blobLen:]
	s.rowPost = make([][]byte, len(s.rows))
	s.rowPostOff = make([][]int32, len(s.rows))
	var streamOff uint64
	for i, idx := range s.rows {
		off := make([]int32, len(idx)+1)
		var rowLen uint64
		for j, l := range segLens[i] {
			off[j] = int32(rowLen)
			rowLen += l
			if rowLen > uint64(math.MaxInt32) {
				return r.corrupt("row %d stream exceeds 2 GiB", i)
			}
			off[j+1] = int32(rowLen)
		}
		stream := blob[streamOff : streamOff+rowLen : streamOff+rowLen]
		streamOff += rowLen
		for j, li := range idx {
			seg := stream[off[j]:off[j+1]]
			if err := validateSegment(seg, int(nRules[li]), numRules); err != nil {
				return r.corrupt("row %d location %d: %v", i, li, err)
			}
		}
		s.rowPost[i] = stream
		s.rowPostOff[i] = off
	}
	return nil
}

// validateSegment strictly walks one posting segment: it must decode to
// exactly wantCount ascending ids below numRules and consume every byte.
func validateSegment(seg []byte, wantCount, numRules int) error {
	count, n := binary.Uvarint(seg)
	if n <= 0 {
		return fmt.Errorf("segment count truncated")
	}
	if count != uint64(wantCount) {
		return fmt.Errorf("segment holds %d ids, location table says %d", count, wantCount)
	}
	off := n
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		v, n := binary.Uvarint(seg[off:])
		if n <= 0 {
			return fmt.Errorf("id %d/%d truncated", i, count)
		}
		off += n
		if i == 0 {
			prev = v
		} else {
			if v == 0 || v > math.MaxUint32-prev {
				return fmt.Errorf("delta %d invalid after id %d", v, prev)
			}
			prev += v
		}
		if prev >= uint64(numRules) {
			return fmt.Errorf("id %d beyond dictionary (%d rules)", prev, numRules)
		}
	}
	if off != len(seg) {
		return fmt.Errorf("segment has %d trailing bytes", len(seg)-off)
	}
	return nil
}

// sliceReader is a bounds-checked cursor over a slice block.
type sliceReader struct {
	b      []byte
	window int
}

func (r *sliceReader) corrupt(format string, args ...any) error {
	return fmt.Errorf("eps: window %d: %s", r.window, fmt.Sprintf(format, args...))
}

func (r *sliceReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, r.corrupt("%s truncated", what)
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *sliceReader) uint32(what string) (uint32, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint32 {
		return 0, r.corrupt("%s %d exceeds uint32", what, v)
	}
	return uint32(v), nil
}

func (r *sliceReader) float64(what string) (float64, error) {
	if len(r.b) < 8 {
		return 0, r.corrupt("%s truncated", what)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v, nil
}

// locNumRules returns the number of rules at location li without touching
// (possibly unmaterialized) rule lists: a row's locations are consecutive
// indexes, so the count is a difference of adjacent suffix counts.
func (s *Slice) locNumRules(li int32) int {
	row := s.rowOf(li)
	j := li - s.rows[row][0]
	return int(s.rowCum[row][j] - s.rowCum[row][j+1])
}

// rowOf returns the support row holding location li.
func (s *Slice) rowOf(li int32) int32 {
	if s.lazy != nil {
		return s.lazy.locRow[li]
	}
	// Built slices rarely need this; derive by binary search on the row
	// starts (rows hold consecutive location indexes).
	lo, hi := 0, len(s.rows)
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if s.rows[mid][0] <= li {
			lo = mid
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// locRules returns location li's rule ids, materializing the owning row's
// lists on first touch for restored slices. The returned slice must not be
// mutated.
func (s *Slice) locRules(li int32) []rules.ID {
	if s.lazy == nil {
		return s.locs[li].Rules
	}
	row := s.lazy.locRow[li]
	s.lazy.rowOnce[row].Do(func() { s.fillRowRules(int(row)) })
	return s.locs[li].Rules
}

// fillRowRules decodes row's posting stream into its locations' Rules
// fields. Streams were fully validated at restore, so a decode failure here
// means memory corruption — same contract as appendDecodedStream.
func (s *Slice) fillRowRules(row int) {
	idx := s.rows[row]
	off := s.rowPostOff[row]
	stream := s.rowPost[row]
	for j, li := range idx {
		seg := stream[off[j]:off[j+1]]
		ids, _, err := decodeSegment(make([]rules.ID, 0, s.locNumRules(li)), seg)
		if err != nil {
			panic(fmt.Sprintf("eps: corrupt posting stream after validation: %v", err))
		}
		s.locs[li].Rules = ids
	}
}

// locItemIdx returns location li's item → rules content index, building it
// on first touch for restored slices. Rules whose ids no longer resolve in
// the dictionary are skipped (only possible with a corrupt rule-key blob;
// the materialization paths report those ids properly).
func (s *Slice) locItemIdx(li int32) map[itemset.Item][]rules.ID {
	if s.lazy == nil || s.lazy.idxOnce == nil {
		return s.locs[li].itemIdx
	}
	s.lazy.idxOnce[li].Do(func() {
		idx := map[itemset.Item][]rules.ID{}
		for _, id := range s.locRules(li) {
			rl, ok := s.lazy.dict.Rule(id)
			if !ok {
				continue
			}
			for _, it := range rl.Items() {
				idx[it] = append(idx[it], id)
			}
		}
		s.locs[li].itemIdx = idx
	})
	return s.locs[li].itemIdx
}

// materializeRules forces every location's rule list (Locations exposes
// them to callers that read Rules directly).
func (s *Slice) materializeRules() {
	if s.lazy == nil {
		return
	}
	for row := range s.rows {
		s.lazy.rowOnce[row].Do(func() { s.fillRowRules(row) })
	}
}
